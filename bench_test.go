// Benchmarks that regenerate every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index), plus ablations of the
// design choices the paper motivates. Each benchmark runs a reduced-scale
// campaign (the paper uses 5,000 runs on 1,024 cores; cmd/campaign scales
// up) and reports the exhibit's headline numbers as benchmark metrics.
//
// Run with:
//
//	go test -bench=. -benchmem .
package faultprop_test

import (
	"os"
	"strings"
	"testing"

	faultprop "repro"
	"repro/internal/apps"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/recovery"
	"repro/internal/stats"
	"repro/internal/transform"
	"repro/internal/vm"
	"repro/internal/xrand"
)

const benchRuns = 30 // experiments per app per benchmark iteration

// TestMain wires the package's perf-ablation switches: FAULTPROP_NOCLEAN=1
// disables the clean-mode interpreter for the whole process, so the same
// binary can bench (and differentially run) the full dual-chain
// interpreter against the default fast path.
func TestMain(m *testing.M) {
	if os.Getenv("FAULTPROP_NOCLEAN") != "" {
		vm.SetCleanInterp(false)
	}
	os.Exit(m.Run())
}

// BenchmarkExperimentThroughput is the campaign hot-path yardstick: one op
// is one fault-injection experiment of a fixed-seed hydro campaign on a
// single worker (build, instrumentation and the golden run are amortized
// across the op count by running them once per campaign invocation). The
// runs/s metric is the number future perf PRs must not regress; allocs/op
// tracks the steady-state experiment loop (the 8 MiB-per-experiment
// address-space tax shows up here).
func BenchmarkExperimentThroughput(b *testing.B) {
	app := apps.NewHydro()
	b.ReportAllocs()
	res, err := harness.RunCampaign(harness.CampaignConfig{
		App:    app,
		Params: app.TestParams(), Sampling: harness.Sampling{Runs: b.N, Seed: 2015}, Execution: harness.Execution{SampleEvery: 64, Workers: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	if res.Tally.Total != b.N {
		b.Fatalf("tally covers %d runs, want %d", res.Tally.Total, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "runs/s")
}

// BenchmarkExperimentThroughputSnapshot is BenchmarkExperimentThroughput
// with the snapshot-fork fast path on: the campaign pays two extra golden
// executions up front (quiesce profiling + state capture), then each
// experiment forks from the latest snapshot preceding its faults instead
// of re-executing the clean prefix. Results are byte-identical to the
// baseline benchmark's campaign (see TestSnapshotForkByteIdentical); the
// runs/s ratio between the two is the fast path's speedup.
//
// FAULTPROP_FULLCOPY=1 disables delta restores for the duration, so CI
// can bench the block-granular dirty-tracking path against the
// full-copy fallback from the same binary. FAULTPROP_NOCLEAN=1 (see
// TestMain) additionally forces the full dual-chain interpreter, isolating
// the clean-mode interpreter's share of the speedup.
func BenchmarkExperimentThroughputSnapshot(b *testing.B) {
	if os.Getenv("FAULTPROP_FULLCOPY") != "" {
		vm.SetDeltaRestore(false)
		defer vm.SetDeltaRestore(true)
	}
	app := apps.NewHydro()
	b.ReportAllocs()
	res, err := harness.RunCampaign(harness.CampaignConfig{
		App:    app,
		Params: app.TestParams(), Sampling: harness.Sampling{Runs: b.N, Seed: 2015}, Execution: harness.Execution{SampleEvery: 64, Workers: 1, Snapshots: 64},
	})
	if err != nil {
		b.Fatal(err)
	}
	if res.Tally.Total != b.N {
		b.Fatalf("tally covers %d runs, want %d", res.Tally.Total, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "runs/s")
}

func benchCampaign(b *testing.B, app apps.App, runs int) *harness.CampaignResult {
	b.Helper()
	res, err := harness.RunCampaign(harness.CampaignConfig{
		App:    app,
		Params: app.TestParams(), Sampling: harness.Sampling{Runs: runs, Seed: 2015}, Execution: harness.Execution{SampleEvery: 64},
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1PropagationCases regenerates Table 1: the four
// operand-dependent propagation cases executed under the FPM.
func BenchmarkTable1PropagationCases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table1()
		if err != nil {
			b.Fatal(err)
		}
		want := []bool{true, false, true, false}
		for j, r := range rows {
			if r.Contaminates != want[j] {
				b.Fatalf("row %d: contaminates=%v, want %v", j+1, r.Contaminates, want[j])
			}
		}
	}
}

// BenchmarkFig1MatVec regenerates Fig. 1: the iterative matrix-vector
// product contaminating 37.5% of its state in three iterations.
func BenchmarkFig1MatVec(b *testing.B) {
	bld := faultpropMatVec()
	inst, err := transform.Instrument(bld, transform.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	var pct float64
	for i := 0; i < b.N; i++ {
		v := vm.New(inst, vm.Config{
			MemFaults: []vm.MemFault{{AtCycle: 1, AddrUnit: 15.0 / 24.0, Bit: 51}},
		})
		if err := v.Run(); err != nil {
			b.Fatal(err)
		}
		pct = 100 * float64(v.Table().Len()) / float64(v.Mem().AllocatedWords())
	}
	b.ReportMetric(pct, "%state")
}

// faultpropMatVec builds the Fig. 1 program (same as examples/quickstart).
func faultpropMatVec() *ir.Program {
	bld := ir.NewBuilder()
	aAddr := bld.Global("A", 16)
	xAddr := bld.Global("x", 4)
	bAddr := bld.Global("b", 4)
	bld.GlobalInitF("A", []float64{1, 2, 3, 4, 4, 2, 3, 1, 2, 4, 3, 3, 1, 1, 2, 6})
	bld.GlobalInitF("x", []float64{1, 2, 2, 3})
	f := bld.Func("main", 0, 0)
	it, row, col := f.NewReg(), f.NewReg(), f.NewReg()
	f.For(it, ir.ImmI(0), ir.ImmI(3), func() {
		f.Tick(ir.R(it))
		f.For(row, ir.ImmI(0), ir.ImmI(4), func() {
			acc := f.CF(0)
			f.For(col, ir.ImmI(0), ir.ImmI(4), func() {
				aij := f.Ld(ir.ImmI(aAddr), ir.R(f.Add(ir.R(f.Mul(ir.R(row), ir.ImmI(4))), ir.R(col))))
				xj := f.Ld(ir.ImmI(xAddr), ir.R(col))
				f.Op3(ir.FAdd, acc, ir.R(acc), ir.R(f.FMul(ir.R(aij), ir.R(xj))))
			})
			f.St(ir.R(acc), ir.ImmI(bAddr), ir.R(row))
		})
		f.For(row, ir.ImmI(0), ir.ImmI(4), func() {
			f.St(ir.R(f.Ld(ir.ImmI(bAddr), ir.R(row))), ir.ImmI(xAddr), ir.R(row))
		})
	})
	f.Ret()
	return bld.MustBuild()
}

// BenchmarkFig3Instrumentation measures the FPM pass itself over the five
// applications.
func BenchmarkFig3Instrumentation(b *testing.B) {
	var progs []*ir.Program
	for _, app := range faultprop.Apps() {
		p, err := app.Build(app.TestParams())
		if err != nil {
			b.Fatal(err)
		}
		progs = append(progs, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			if _, err := transform.Instrument(p, transform.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig5InjectionCoverage regenerates Fig. 5: injection times must
// be uniform over the execution (χ² at the 1% level).
func BenchmarkFig5InjectionCoverage(b *testing.B) {
	var chi2 float64
	var ok bool
	for i := 0; i < b.N; i++ {
		res := benchCampaign(b, apps.NewHydro(), 100)
		h := stats.NewHistogram(0, 1, 20)
		for _, e := range res.Experiments {
			if e.Fired && res.Golden.Cycles > 0 {
				h.Add(float64(e.InjCycle) / float64(res.Golden.Cycles))
			}
		}
		chi2, _ = h.ChiSquareUniform()
		ok = h.ChiSquareUniformOK()
	}
	if !ok {
		b.Errorf("injection coverage not uniform: chi2=%.1f", chi2)
	}
	b.ReportMetric(chi2, "chi2")
}

// BenchmarkFig6OutcomeBreakdown regenerates Fig. 6 for all five apps.
func BenchmarkFig6OutcomeBreakdown(b *testing.B) {
	var results []*harness.CampaignResult
	for i := 0; i < b.N; i++ {
		results = results[:0]
		for _, app := range faultprop.Apps() {
			results = append(results, benchCampaign(b, app, benchRuns))
		}
	}
	text := harness.FormatFig6(results)
	if !strings.Contains(text, "LULESH") {
		b.Fatal("malformed figure")
	}
	b.Logf("\n%s", text)
	b.ReportMetric(results[0].Tally.PercentCO(), "LULESH-CO%")
	b.ReportMetric(results[1].Tally.Percent(classify.WrongOutput), "LAMMPS-WO%")
}

// BenchmarkFig7PropagationProfiles regenerates the per-app propagation
// profiles and the 7f contamination maxima.
func BenchmarkFig7PropagationProfiles(b *testing.B) {
	var results []*harness.CampaignResult
	for i := 0; i < b.N; i++ {
		results = results[:0]
		for _, app := range faultprop.Apps() {
			results = append(results, benchCampaign(b, app, benchRuns))
		}
	}
	profiles := 0
	for _, r := range results {
		profiles += len(r.Profiles)
		b.Logf("\n%s", harness.FormatFig7(r))
	}
	if profiles == 0 {
		b.Error("no propagation profiles recorded")
	}
	b.Logf("\n%s", harness.FormatFig7f(results))
	b.ReportMetric(float64(profiles), "profiles")
}

// BenchmarkFig7fMaxContamination reports the largest contaminated-state
// percentage seen for the LULESH proxy (the paper reports up to 25%).
func BenchmarkFig7fMaxContamination(b *testing.B) {
	var maxPct float64
	for i := 0; i < b.N; i++ {
		res := benchCampaign(b, apps.NewHydro(), 60)
		maxPct = 0
		for _, e := range res.Experiments {
			if e.ContamPct > maxPct {
				maxPct = e.ContamPct
			}
		}
	}
	b.ReportMetric(maxPct, "max%state")
}

// BenchmarkFig8RankSpread regenerates Fig. 8: contamination crossing MPI
// rank boundaries for the hydro and FE proxies.
func BenchmarkFig8RankSpread(b *testing.B) {
	var spreadH, spreadF int
	for i := 0; i < b.N; i++ {
		h := benchCampaign(b, apps.NewHydro(), 40)
		f := benchCampaign(b, apps.NewFE(), 40)
		spreadH = len(h.BestSpread.Points)
		spreadF = len(f.BestSpread.Points)
		b.Logf("\n%s", harness.FormatFig8([]*harness.CampaignResult{h, f}))
	}
	if spreadH < 2 || spreadF < 2 {
		b.Errorf("contamination did not cross ranks: hydro=%d fe=%d", spreadH, spreadF)
	}
	b.ReportMetric(float64(spreadH), "hydro-ranks")
	b.ReportMetric(float64(spreadF), "fe-ranks")
}

// BenchmarkTable2FPSFactors regenerates Table 2: the fault propagation
// speed factor per application.
func BenchmarkTable2FPSFactors(b *testing.B) {
	var results []*harness.CampaignResult
	for i := 0; i < b.N; i++ {
		results = results[:0]
		for _, app := range faultprop.Apps() {
			results = append(results, benchCampaign(b, app, benchRuns))
		}
	}
	b.Logf("\n%s", harness.FormatTable2(results))
	b.Logf("FPS order: %s", strings.Join(harness.SortedFPS(results), " > "))
	for _, r := range results {
		if len(r.Model.Fits) > 0 && r.Model.FPS <= 0 {
			b.Errorf("%s: non-positive FPS with fits", r.App)
		}
	}
	b.ReportMetric(results[0].Model.FPS, "LULESH-FPS")
}

// BenchmarkCOBreakdownVvsONA regenerates the §4.3 analysis: correct-output
// runs whose memory was nevertheless contaminated.
func BenchmarkCOBreakdownVvsONA(b *testing.B) {
	var results []*harness.CampaignResult
	for i := 0; i < b.N; i++ {
		results = results[:0]
		for _, app := range faultprop.Apps() {
			results = append(results, benchCampaign(b, app, benchRuns))
		}
	}
	b.Logf("\n%s", harness.FormatCOBreakdown(results))
	onaShare := 0.0
	co := 0
	for _, r := range results {
		co += r.Tally.Counts[classify.Vanished] + r.Tally.Counts[classify.OutputNotAffected]
		onaShare += float64(r.Tally.Counts[classify.OutputNotAffected])
	}
	if co > 0 {
		b.ReportMetric(100*onaShare/float64(co), "ONA/CO%")
	}
}

// BenchmarkAblationNaiveTaint compares the exact dual-chain tracker against
// the naive "any tainted input taints the output" baseline the paper argues
// against (§3.2): the metric is the taint overestimation factor.
func BenchmarkAblationNaiveTaint(b *testing.B) {
	app := apps.NewHydro()
	prog, err := app.Build(apps.Params{Ranks: 1, Size: 16, Steps: 10})
	if err != nil {
		b.Fatal(err)
	}
	inst, err := transform.Instrument(prog, transform.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	golden := core.Run(inst, core.RunConfig{Ranks: 1})
	if golden.Err != nil {
		b.Fatal(golden.Err)
	}
	var taintSum, exactSum float64
	for i := 0; i < b.N; i++ {
		r := xrand.New(uint64(i) + 9)
		taintSum, exactSum = 0, 0
		for k := 0; k < 40; k++ {
			plan, err := inject.UniformSinglePlan(r, golden.SiteCounts())
			if err != nil {
				b.Fatal(err)
			}
			run := core.Run(inst, core.RunConfig{
				Ranks: 1, Plan: plan,
				CycleLimit: golden.Cycles * 4,
				TrackTaint: true,
			})
			if run.Err != nil {
				continue
			}
			taintSum += float64(run.TaintPeakTotal)
			exactSum += float64(run.MaxCMLTotal)
			if run.TaintPeakTotal < run.MaxCMLTotal {
				b.Fatalf("taint %d < exact %d", run.TaintPeakTotal, run.MaxCMLTotal)
			}
		}
	}
	if exactSum > 0 {
		b.ReportMetric(taintSum/exactSum, "overestimate×")
	}
}

// BenchmarkAblationMemoryInjection contrasts register-level injection (the
// paper's model) with direct memory injection (the Li et al. model): the
// memory model cannot vanish at processor level, so its Vanished share is
// zero while register-level injection masks a meaningful fraction.
func BenchmarkAblationMemoryInjection(b *testing.B) {
	app := apps.NewHydro()
	p := app.TestParams()
	prog, err := app.Build(p)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := transform.Instrument(prog, transform.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	golden := core.Run(inst, core.RunConfig{Ranks: p.Ranks})
	if golden.Err != nil {
		b.Fatal(golden.Err)
	}
	var memVanished, memApplied int
	for i := 0; i < b.N; i++ {
		r := xrand.New(77)
		memVanished, memApplied = 0, 0
		for k := 0; k < 30; k++ {
			mf := map[int][]vm.MemFault{
				r.Intn(p.Ranks): {{
					AtCycle:  r.Uint64n(golden.Cycles),
					AddrUnit: r.Float64(),
					Bit:      uint(r.Intn(64)),
				}},
			}
			run := core.Run(inst, core.RunConfig{
				Ranks: p.Ranks, MemFaults: mf,
				CycleLimit: golden.Cycles * 4,
			})
			applied := 0
			for _, rr := range run.Ranks {
				applied += rr.MemFaultsApplied
			}
			if applied == 0 {
				continue
			}
			memApplied++
			if !run.Ever {
				memVanished++
			}
		}
	}
	if memApplied > 0 {
		b.ReportMetric(100*float64(memVanished)/float64(memApplied), "mem-V%")
	}
}

// BenchmarkAblationMultiFault exercises LLFI++'s zero-or-more-faults-per-
// rank mode and reports how outcome severity shifts against single-fault
// injection.
func BenchmarkAblationMultiFault(b *testing.B) {
	var single, multi *harness.CampaignResult
	for i := 0; i < b.N; i++ {
		var err error
		single, err = harness.RunCampaign(harness.CampaignConfig{
			App: apps.NewHydro(), Params: apps.NewHydro().TestParams(), Sampling: harness.Sampling{Runs: benchRuns, Seed: 5},
		})
		if err != nil {
			b.Fatal(err)
		}
		multi, err = harness.RunCampaign(harness.CampaignConfig{
			App: apps.NewHydro(), Params: apps.NewHydro().TestParams(), Sampling: harness.Sampling{Runs: benchRuns, Seed: 5, MultiFaultLambda: 3},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(single.Tally.PercentCO(), "single-CO%")
	b.ReportMetric(multi.Tally.PercentCO(), "multi-CO%")
}

// BenchmarkAblationInjectionClasses compares the paper's default
// arithmetic-class injection sites against also injecting into load/store
// operands (§3.1 says both classes are supported; §4.2 uses arithmetic):
// address-register flips raise the crash rate.
func BenchmarkAblationInjectionClasses(b *testing.B) {
	app := apps.NewHydro()
	p := app.TestParams()
	prog, err := app.Build(p)
	if err != nil {
		b.Fatal(err)
	}
	crashRate := func(opts transform.Options, seed uint64) float64 {
		inst, err := transform.Instrument(prog, opts)
		if err != nil {
			b.Fatal(err)
		}
		golden := core.Run(inst, core.RunConfig{Ranks: p.Ranks})
		if golden.Err != nil {
			b.Fatal(golden.Err)
		}
		r := xrand.New(seed)
		crashes, runs := 0, 30
		for k := 0; k < runs; k++ {
			plan, err := inject.UniformSinglePlan(r, golden.SiteCounts())
			if err != nil {
				b.Fatal(err)
			}
			run := core.Run(inst, core.RunConfig{
				Ranks: p.Ranks, Plan: plan, CycleLimit: golden.Cycles * 4,
			})
			if run.Err != nil {
				crashes++
			}
		}
		return 100 * float64(crashes) / float64(runs)
	}
	var arith, withMem float64
	for i := 0; i < b.N; i++ {
		arith = crashRate(transform.Options{InjectClasses: ir.ClassArith}, 21)
		withMem = crashRate(transform.Options{InjectClasses: ir.ClassArith | ir.ClassMem}, 21)
	}
	b.ReportMetric(arith, "arith-C%")
	b.ReportMetric(withMem, "arith+mem-C%")
}

// BenchmarkRecoveryPolicy evaluates the paper's §5 use case: FPS-model-
// driven rollback decisions versus always/never rolling back, reporting
// the compute wasted by each strategy over a campaign.
func BenchmarkRecoveryPolicy(b *testing.B) {
	var rep recovery.Report
	for i := 0; i < b.N; i++ {
		res := benchCampaign(b, apps.NewHydro(), 60)
		cfg := recovery.Config{
			Model:              res.Model,
			ThresholdCML:       20,
			DetectionLatency:   2e-6,
			CheckpointInterval: 5e-6,
		}
		rep = recovery.Evaluate(cfg, res)
		b.Logf("\n%s", rep.Format())
	}
	b.ReportMetric(rep.WastePolicy*1e6, "policy-waste-us")
	b.ReportMetric(rep.WasteAlways*1e6, "always-waste-us")
	b.ReportMetric(rep.WasteNever*1e6, "never-waste-us")
}

// BenchmarkDVFStructureBreakdown regenerates the per-data-structure
// vulnerability analysis (the §6 DVF comparison): which structures
// accumulate the contamination.
func BenchmarkDVFStructureBreakdown(b *testing.B) {
	var res *harness.CampaignResult
	for i := 0; i < b.N; i++ {
		res = benchCampaign(b, apps.NewFE(), benchRuns)
	}
	text := harness.FormatStructVulnerability([]*harness.CampaignResult{res})
	b.Logf("\n%s", text)
	total := 0
	for _, v := range res.StructTotals {
		total += v
	}
	b.ReportMetric(float64(total), "struct-CML")
}
