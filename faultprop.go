// Package faultprop is a Go reproduction of "Understanding the Propagation
// of Transient Errors in HPC Applications" (Ashraf et al., SC '15): a fault
// propagation framework that injects single-bit flips into live registers
// of running MPI applications (LLFI++), tracks exactly which memory
// locations the fault contaminates through a dual-chain compiler
// transformation plus runtime checker (FPM), follows contamination across
// process boundaries through message piggyback headers, classifies outcomes
// (Vanished / ONA / WO / PEX / Crashed), and fits linear fault-propagation
// models whose slope is the application's fault propagation speed (FPS).
//
// The package is a facade over the implementation packages:
//
//	internal/ir         the compiler IR applications are written in
//	internal/transform  the FPM instrumentation pass (paper Fig. 3)
//	internal/vm         the interpreter and runtime checker
//	internal/inject     LLFI++ fault planning and bit flips
//	internal/fpm        contamination tables and message headers (Fig. 4)
//	internal/mpi        the in-process message-passing runtime
//	internal/apps       the five proxy applications of the evaluation
//	internal/core       the per-experiment analysis pipeline
//	internal/harness    campaigns, sharding/merging, the paper's figures/tables
//	internal/model      propagation models, FPS, rollback estimators (§5)
//	internal/service    faultpropd: the campaign daemon + shard coordinator
//	internal/service/client  the typed /v1 HTTP client
//
// Quick start:
//
//	app := faultprop.AppByName("LULESH")
//	prog, _ := app.Build(app.TestParams())
//	an, _ := faultprop.NewAnalyzer(prog, app.TestParams().Ranks)
//	plan, _ := an.PlanUniform(xrand.New(1))
//	outcome := an.Analyze(plan)
//
// or run a whole campaign with RunCampaign and render the paper's exhibits
// with the Format* helpers.
package faultprop

import (
	"context"

	"repro/internal/apps"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/transform"
)

// Re-exported types. These aliases are the stable public surface; the
// internal packages carry the implementation detail.
type (
	// Program is an IR program authored with NewProgramBuilder.
	Program = ir.Program
	// ProgramBuilder assembles IR programs.
	ProgramBuilder = ir.Builder
	// App is one proxy application of the paper's evaluation.
	App = apps.App
	// Params sizes an application run.
	Params = apps.Params
	// Outcome is the experiment classification (V/ONA/WO/PEX/C).
	Outcome = classify.Outcome
	// Analyzer runs and classifies individual injection experiments.
	Analyzer = core.Analyzer
	// Plan is a set of planned bit flips.
	Plan = inject.Plan
	// Fault is one planned bit flip.
	Fault = inject.Fault
	// AppModel is the per-application propagation model (Table 2).
	AppModel = model.AppModel
	// CampaignConfig parameterizes a statistical injection campaign.
	CampaignConfig = harness.CampaignConfig
	// Sampling is the statistical section of a CampaignConfig: budget,
	// seed, fault model, and the adaptive stopping policy (TargetCI).
	Sampling = harness.Sampling
	// Execution groups a CampaignConfig's scheduling knobs (workers,
	// snapshots, hang budget, trace sampling).
	Execution = harness.Execution
	// Retention bounds what a campaign's aggregate keeps.
	Retention = harness.Retention
	// Persistence groups a CampaignConfig's checkpoint-journal settings.
	Persistence = harness.Persistence
	// StratumReport is one row of a stratified campaign's per-stratum
	// vulnerability table (CampaignResult.Strata).
	StratumReport = harness.StratumReport
	// CampaignResult aggregates a campaign.
	CampaignResult = harness.CampaignResult
	// ShardSpec is one fingerprint-guarded slice [From,To) of a campaign's
	// experiment IDs, produced by PlanShards.
	ShardSpec = harness.ShardSpec
	// PartialResult is the mergeable aggregate of one shard; merge with
	// MergePartials and finalize into a CampaignResult byte-identical to
	// an unsharded run.
	PartialResult = harness.PartialResult
	// FieldError is a typed CampaignConfig.Validate violation.
	FieldError = harness.FieldError
	// JobSpec is a campaign submission to a faultpropd daemon.
	JobSpec = service.JobSpec
	// JobStatus is the daemon-side record of one submitted campaign.
	JobStatus = service.JobStatus
	// ServiceClient is the typed HTTP client for faultpropd's /v1 API.
	ServiceClient = client.Client
)

// Sentinel errors of the campaign and service layers, re-exported so
// external callers never import internal/... paths.
var (
	// ErrInterrupted wraps errors returned by cancelled campaigns.
	ErrInterrupted = harness.ErrInterrupted
	// ErrFingerprintMismatch: a shard, journal, or partial belongs to a
	// different campaign configuration.
	ErrFingerprintMismatch = harness.ErrFingerprintMismatch
	// ErrShardOverlap: merged partials cover overlapping experiment IDs.
	ErrShardOverlap = harness.ErrShardOverlap
	// ErrIncompleteCampaign: a merged result does not cover [0, Runs).
	ErrIncompleteCampaign = harness.ErrIncompleteCampaign
	// ErrJobNotFound: a daemon call named an unknown job.
	ErrJobNotFound = service.ErrJobNotFound
	// ErrQueueFull: the daemon's bounded queue rejected a submission.
	ErrQueueFull = service.ErrQueueFull
)

// Outcome classes (paper §2).
const (
	Vanished           = classify.Vanished
	OutputNotAffected  = classify.OutputNotAffected
	WrongOutput        = classify.WrongOutput
	ProlongedExecution = classify.ProlongedExecution
	Crashed            = classify.Crashed
)

// NominalHz converts virtual cycles to seconds in FPS units.
const NominalHz = model.NominalHz

// NewProgramBuilder returns an empty IR program builder.
func NewProgramBuilder() *ProgramBuilder { return ir.NewBuilder() }

// Apps returns the five proxy applications in the paper's order.
func Apps() []App { return apps.All() }

// AppByName returns the proxy for the given paper application name
// (LULESH, LAMMPS, miniFE, AMG2013, MCB), or nil.
func AppByName(name string) App { return apps.ByName(name) }

// Instrument applies the FPM pass (paper Fig. 3) with default options.
func Instrument(prog *Program) (*Program, error) {
	return transform.Instrument(prog, transform.DefaultOptions())
}

// NewAnalyzer instruments prog and establishes the fault-free baseline.
func NewAnalyzer(prog *Program, ranks int) (*Analyzer, error) {
	return core.NewAnalyzer(prog, ranks, transform.DefaultOptions())
}

// RunCampaign executes a statistical fault-injection campaign.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	return harness.RunCampaign(cfg)
}

// RunCampaignContext is RunCampaign with cancellation: a cancelled campaign
// journals its finished experiments (when cfg.Checkpoint is set) and
// returns an error wrapping ErrInterrupted.
func RunCampaignContext(ctx context.Context, cfg CampaignConfig) (*CampaignResult, error) {
	return harness.RunCampaignContext(ctx, cfg)
}

// PlanShards carves cfg's [0, Runs) experiment IDs into n contiguous,
// fingerprint-guarded shard specs. Each shard runs independently (the
// position-addressable RNG needs no coordination) and MergePartials
// reassembles the whole campaign.
func PlanShards(cfg CampaignConfig, n int) ([]ShardSpec, error) {
	return harness.PlanShards(cfg, n)
}

// RunShard executes one shard of a campaign and returns its mergeable
// partial aggregate.
func RunShard(cfg CampaignConfig, spec ShardSpec) (*PartialResult, error) {
	return harness.RunShard(cfg, spec)
}

// RunShardContext is RunShard with cancellation.
func RunShardContext(ctx context.Context, cfg CampaignConfig, spec ShardSpec) (*PartialResult, error) {
	return harness.RunShardContext(ctx, cfg, spec)
}

// MergePartials merges shard partials (any order) and finalizes them into
// a CampaignResult byte-identical to running the campaign unsharded.
func MergePartials(parts ...*PartialResult) (*CampaignResult, error) {
	return harness.MergePartials(parts...)
}

// NewServiceClient returns a typed client for the faultpropd daemon at
// base (host:port or URL), speaking the versioned /v1 API.
func NewServiceClient(base string) (*ServiceClient, error) {
	return client.New(base)
}
