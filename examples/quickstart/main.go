// Quickstart reproduces the paper's Fig. 1: an iterative matrix-vector
// product A·xᵢ = bᵢ where a single bit flip in A[3][3] (value 6 -> 2, third
// least significant bit) progressively contaminates the application's
// memory state — 25% after two iterations and 37.5% after three, with 100%
// of the output vector corrupted.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/ir"
	"repro/internal/transform"
	"repro/internal/vm"
)

const iterations = 3

// buildMatVec authors the Fig. 1 program in the framework IR: three
// iterations of b = A·x; x = b, with a timestep marker per iteration.
func buildMatVec() *ir.Program {
	b := ir.NewBuilder()
	aAddr := b.Global("A", 16)
	xAddr := b.Global("x", 4)
	bAddr := b.Global("b", 4)
	b.GlobalInitF("A", []float64{
		1, 2, 3, 4,
		4, 2, 3, 1,
		2, 4, 3, 3,
		1, 1, 2, 6,
	})
	b.GlobalInitF("x", []float64{1, 2, 2, 3})

	f := b.Func("main", 0, 0)
	it := f.NewReg()
	row := f.NewReg()
	col := f.NewReg()
	f.For(it, ir.ImmI(0), ir.ImmI(iterations), func() {
		f.Tick(ir.R(it))
		f.For(row, ir.ImmI(0), ir.ImmI(4), func() {
			acc := f.CF(0)
			f.For(col, ir.ImmI(0), ir.ImmI(4), func() {
				aij := f.Ld(ir.ImmI(aAddr), ir.R(f.Add(ir.R(f.Mul(ir.R(row), ir.ImmI(4))), ir.R(col))))
				xj := f.Ld(ir.ImmI(xAddr), ir.R(col))
				f.Op3(ir.FAdd, acc, ir.R(acc), ir.R(f.FMul(ir.R(aij), ir.R(xj))))
			})
			f.St(ir.R(acc), ir.ImmI(bAddr), ir.R(row))
		})
		f.For(row, ir.ImmI(0), ir.ImmI(4), func() {
			f.St(ir.R(f.Ld(ir.ImmI(bAddr), ir.R(row))), ir.ImmI(xAddr), ir.R(row))
		})
	})
	f.For(row, ir.ImmI(0), ir.ImmI(4), func() {
		f.OutputF(ir.R(f.Ld(ir.ImmI(bAddr), ir.R(row))))
	})
	f.Ret()
	return b.MustBuild()
}

func main() {
	prog := buildMatVec()
	inst, err := transform.Instrument(prog, transform.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Fault-free execution for reference.
	golden := vm.New(inst, vm.Config{})
	if err := golden.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free b after %d iterations: %v\n", iterations, golden.Outputs())

	// Fig. 1's fault corrupts A[3][3] before iteration 0 (the figure flips
	// the integer 6 to 2; here the matrix is stored as IEEE-754 doubles,
	// so the single-bit flip of mantissa bit 51 turns 6.0 into 4.0 — the
	// propagation dynamics are identical). A[3][3] is the 16th word of the
	// 24-word state (A, x, b), fractional position 15/24.
	faulty := vm.New(inst, vm.Config{
		MemFaults: []vm.MemFault{{AtCycle: 1, AddrUnit: 15.0 / 24.0, Bit: 51}},
	})
	if err := faulty.Run(); err != nil {
		log.Fatal(err)
	}

	state := faulty.Mem().AllocatedWords()
	fmt.Printf("\nwith the A[3][3] fault injected:\n")
	fmt.Printf("corrupted b: %v\n", faulty.Outputs())
	fmt.Printf("corrupted memory locations: %d of %d state words (%.1f%%)\n",
		faulty.Table().Len(), state,
		100*float64(faulty.Table().Len())/float64(state))
	fmt.Println("\ncontaminated addresses (addr: corrupted -> pristine):")
	for _, addr := range faulty.Table().Addresses() {
		cur, _ := faulty.Mem().Read(addr)
		pv, _ := faulty.Table().Pristine(addr)
		fmt.Printf("  @%2d: %g -> %g\n", addr, f64(cur), f64(pv))
	}
}

func f64(w uint64) float64 { return math.Float64frombits(w) }
