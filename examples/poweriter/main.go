// Poweriter authors a new workload against the public IR surface — power
// iteration for the dominant eigenvalue of a dense matrix, composed from
// the reusable numeric kernels — and studies its fault sensitivity with a
// handful of injections. It shows what adopting the framework for your own
// application looks like: build the IR, hand it to the analyzer, inject.
//
// Run with:
//
//	go run ./examples/poweriter [-n 12] [-iters 40] [-faults 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/transform"
	"repro/internal/xrand"
)

func buildPowerIter(n int64, iters int64) *ir.Program {
	b := ir.NewBuilder()
	aAddr := b.Global("A", n*n)
	xAddr := b.Global("x", n)
	yAddr := b.Global("y", n)
	// A symmetric positive matrix with a known dominant direction.
	initA := make([]float64, n*n)
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			initA[i*n+j] = 1.0 / (1.0 + math.Abs(float64(i-j)))
		}
	}
	b.GlobalInitF("A", initA)
	f := b.Func("main", 0, 0)
	kernels.Fill(f, xAddr, n, 1)
	it := f.NewReg()
	lambda := f.CF(0)
	f.For(it, ir.ImmI(0), ir.ImmI(iters), func() {
		f.Tick(ir.R(it))
		kernels.MatVec(f, aAddr, xAddr, yAddr, n)
		// lambda = ||y|| (2-norm); x = y / lambda.
		norm := f.Sqrt(ir.R(kernels.Norm2Sq(f, yAddr, n)))
		f.Mov(lambda, ir.R(norm))
		inv := f.FDiv(ir.ImmF(1), ir.R(norm))
		kernels.Scale(f, inv, yAddr, n)
		kernels.Copy(f, xAddr, yAddr, n)
	})
	f.OutputF(ir.R(lambda))
	f.OutputF(ir.R(kernels.SumAbs(f, xAddr, n)))
	f.Iterations(ir.ImmI(iters))
	f.Ret()
	return b.MustBuild()
}

func main() {
	n := flag.Int64("n", 12, "matrix dimension")
	iters := flag.Int64("iters", 40, "power iterations")
	faults := flag.Int("faults", 8, "injections to try")
	flag.Parse()

	prog := buildPowerIter(*n, *iters)
	an, err := core.NewAnalyzer(prog, 1, transform.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	golden := an.Golden()
	fmt.Printf("golden dominant eigenvalue estimate: %.9f (%d cycles, %d sites)\n",
		golden.Outputs[0], golden.Cycles, an.SiteCounts()[0])

	r := xrand.New(99)
	for k := 0; k < *faults; k++ {
		plan, err := an.PlanUniform(r)
		if err != nil {
			log.Fatal(err)
		}
		out := an.Analyze(plan)
		verdict := out.Class.String()
		detail := ""
		if out.Run.Err == nil && len(out.Run.Outputs) > 0 {
			detail = fmt.Sprintf("lambda=%.9f peakCML=%d", out.Run.Outputs[0], out.Run.MaxCMLTotal)
		} else if out.Run.Err != nil {
			detail = out.Run.Err.Error()
		}
		fmt.Printf("fault %-28v -> %-3s  %s\n", plan.Faults[0], verdict, detail)
	}
	fmt.Println("\nnote: power iteration is self-correcting — most surviving faults are")
	fmt.Println("washed out by renormalization (ONA), a property the per-run CML")
	fmt.Println("profiles make visible.")
}
