// Mpiprop demonstrates cross-process fault propagation (paper Figs. 4 and
// 8): a single register-level fault injected into one MPI rank of the MCB
// proxy travels to other ranks through message payloads carrying
// <displacement, pristine value> contamination headers, until every rank's
// memory state is corrupted. The example also shows the wire format of one
// piggybacked message.
//
// Run with:
//
//	go run ./examples/mpiprop [-ranks N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/fpm"
	"repro/internal/model"
	"repro/internal/transform"
	"repro/internal/xrand"
)

func main() {
	ranks := flag.Int("ranks", 8, "MPI ranks")
	seed := flag.Uint64("seed", 41, "fault selection seed")
	flag.Parse()

	// First, the wire format of paper Fig. 4: a message with two
	// contaminated words.
	payload := []uint64{100, 200, 300, 400}
	table := fpm.NewTable()
	table.Record(1001, 250) // suppose words 1 and 3 of a buffer at 1000
	table.Record(1003, 450) // are contaminated
	recs := table.CollectRange(1000, 4)
	msg := fpm.EncodeMessage(payload, recs)
	fmt.Printf("Fig. 4 message: payload %v + header %v = %d bytes on the wire\n",
		payload, recs, len(msg))

	// Now the full pipeline: inject into rank 0 of the MCB proxy and
	// watch contamination cross rank boundaries.
	app := apps.NewMCB()
	params := app.TestParams()
	params.Ranks = *ranks
	prog, err := app.Build(params)
	if err != nil {
		log.Fatal(err)
	}
	analyzer, err := core.NewAnalyzer(prog, params.Ranks, transform.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	r := xrand.New(*seed)
	attempts := 0
	for {
		attempts++
		plan, err := analyzer.PlanUniform(r)
		if err != nil {
			log.Fatal(err)
		}
		out := analyzer.Analyze(plan)
		if out.Run.Spread.Count() < 2 && attempts < 50 {
			continue // this fault stayed local; try another
		}
		fmt.Printf("\nfault %v -> outcome %v (attempt %d)\n", plan.Faults[0], out.Class, attempts)
		fmt.Printf("corrupted MPI ranks over global time (paper Fig. 8):\n")
		for _, p := range out.Run.Spread.Series() {
			fmt.Printf("  t=%.4f ms : %d rank(s) contaminated\n",
				model.CyclesToSeconds(p.Time)*1e3, p.Ranks)
		}
		for rk := range out.Run.Ranks {
			rr := out.Run.Ranks[rk]
			fmt.Printf("rank %d: peak CML %d (%d words state)\n",
				rk, rr.MaxCML, rr.AllocatedWords)
		}
		return
	}
}
