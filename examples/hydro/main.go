// Hydro runs the LULESH proxy under the fault propagation framework: it
// injects a single register-level bit flip into a randomly selected MPI
// rank, tracks how the contamination spreads through the rank's memory
// state and across ranks, classifies the outcome, and applies the paper's
// runtime rollback policy (§5) using the fitted propagation model.
//
// Run with:
//
//	go run ./examples/hydro [-seed N] [-ranks N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/transform"
	"repro/internal/xrand"
)

func main() {
	seed := flag.Uint64("seed", 3, "fault selection seed")
	ranks := flag.Int("ranks", 4, "MPI ranks")
	flag.Parse()

	app := apps.NewHydro()
	params := app.TestParams()
	params.Ranks = *ranks
	prog, err := app.Build(params)
	if err != nil {
		log.Fatal(err)
	}
	analyzer, err := core.NewAnalyzer(prog, params.Ranks, transform.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: %d application cycles, outputs %v\n",
		analyzer.Golden().Cycles, analyzer.Golden().Outputs)

	r := xrand.New(*seed)
	plan, err := analyzer.PlanUniform(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injecting: %v\n", plan.Faults[0])

	out := analyzer.Analyze(plan)
	fmt.Printf("outcome class: %v\n", out.Class)
	if out.Run.Err != nil {
		fmt.Printf("job died: %v\n", out.Run.Err)
	}
	fmt.Printf("peak corrupted locations (all ranks): %d of %d words\n",
		out.Run.MaxCMLTotal, out.Run.AllocatedTotal)
	fmt.Printf("ranks contaminated: %d/%d\n", out.Run.Spread.Count(), params.Ranks)
	if len(out.Points) > 0 {
		fmt.Println("propagation profile of the injected rank (time ms : CML):")
		for _, p := range out.Points {
			fmt.Printf("  %.4f : %d\n", model.CyclesToSeconds(p.Cycles)*1e3, p.CML)
		}
	}
	if out.HasFit {
		fmt.Printf("fitted CML(t) = %.3g·t + %.3g  (R²=%.3f)\n", out.Fit.A, out.Fit.B, out.Fit.R2)
		// Rollback policy: a fault detected within a 50 µs detection
		// window; roll back if the estimated contamination exceeds 16
		// locations.
		m := model.AppModel{App: app.Name(), FPS: out.Fit.A}
		t1, t2 := 0.0, 50e-6
		fmt.Printf("estimated max CML in a %.0f µs detection window: %.1f\n",
			(t2-t1)*1e6, m.MaxCML(t1, t2))
		fmt.Printf("rollback recommended (threshold 16): %v\n", m.ShouldRollback(t1, t2, 16))
	}
}
