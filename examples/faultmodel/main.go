// Faultmodel derives an application fault propagation model (paper §5) from
// a small injection campaign over the miniFE proxy, then exercises the
// model's runtime estimators: the intercept of a detected fault (Eq. 2) and
// the worst-case/average corrupted-memory-location estimates over a
// detection interval (Eq. 3), which drive the rollback decision.
//
// Run with:
//
//	go run ./examples/faultmodel [-runs N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/model"
)

func main() {
	runs := flag.Int("runs", 60, "experiments in the calibration campaign")
	flag.Parse()

	app := apps.NewFE()
	res, err := harness.RunCampaign(harness.CampaignConfig{
		App:      app,
		Params:   app.TestParams(),
		Sampling: harness.Sampling{Runs: *runs, Seed: 2015},
	})
	if err != nil {
		log.Fatal(err)
	}
	m := res.Model
	fmt.Printf("campaign: %d runs of %s, outcome tally V/ONA/WO/PEX/C = %v\n",
		res.Runs, res.App, res.Tally.Counts)
	fmt.Printf("fault propagation speed: FPS = %.4g CML/s (stddev %.4g, %d fits, mean R² %.3f)\n",
		m.FPS, m.StdDev, len(m.Fits), m.MeanR2)
	fmt.Printf("model validation error: %.2f%% of actual CML\n", 100*m.ValidationErr)

	// Runtime use: a fault is detected at t2 = 120 µs; the last clean
	// check was at t1 = 20 µs.
	t1, t2 := 20e-6, 120e-6
	fmt.Printf("\ndetection interval (%.0f µs, %.0f µs):\n", t1*1e6, t2*1e6)
	fmt.Printf("  max CML estimate (Eq. 3): %.1f\n", m.MaxCML(t1, t2))
	fmt.Printf("  avg CML estimate:         %.1f\n", m.AvgCML(t1, t2))
	// If the fault is known to have occurred at tf, Eq. 2 gives the model
	// intercept of this run's CML(t) line.
	tf := 60e-6
	fmt.Printf("  intercept for tf=%.0f µs (Eq. 2): b = %.2f\n", tf*1e6, model.FaultTimeIntercept(m.FPS, tf))
	for _, threshold := range []float64{8, 64, 512} {
		fmt.Printf("  rollback at threshold %4.0f: %v\n", threshold, m.ShouldRollback(t1, t2, threshold))
	}
}
