package faultprop_test

import (
	"testing"

	faultprop "repro"
	"repro/internal/ir"
	"repro/internal/xrand"
)

func TestFacadeApps(t *testing.T) {
	apps := faultprop.Apps()
	if len(apps) != 5 {
		t.Fatalf("Apps() returned %d apps", len(apps))
	}
	for _, name := range []string{"LULESH", "LAMMPS", "miniFE", "AMG2013", "MCB"} {
		if faultprop.AppByName(name) == nil {
			t.Errorf("AppByName(%q) = nil", name)
		}
	}
	if faultprop.AppByName("HPL") != nil {
		t.Error("unknown app resolved")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	// The facade must support the README workflow end to end.
	app := faultprop.AppByName("miniFE")
	params := app.TestParams()
	prog, err := app.Build(params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := faultprop.Instrument(prog); err != nil {
		t.Fatal(err)
	}
	an, err := faultprop.NewAnalyzer(prog, params.Ranks)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := an.PlanUniform(xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	out := an.Analyze(plan)
	switch out.Class {
	case faultprop.Vanished, faultprop.OutputNotAffected, faultprop.WrongOutput,
		faultprop.ProlongedExecution, faultprop.Crashed:
	default:
		t.Errorf("unexpected class %v", out.Class)
	}
}

func TestFacadeProgramBuilder(t *testing.T) {
	b := faultprop.NewProgramBuilder()
	g := b.Global("x", 2)
	f := b.Func("main", 0, 0)
	f.Store(ir.ImmI(5), ir.ImmI(g))
	f.OutputI(ir.R(f.Load(ir.ImmI(g))))
	f.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	an, err := faultprop.NewAnalyzer(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := an.Golden().Outputs; len(got) != 1 || got[0] != 5 {
		t.Errorf("outputs = %v", got)
	}
}

func TestFacadeCampaign(t *testing.T) {
	app := faultprop.AppByName("LULESH")
	res, err := faultprop.RunCampaign(faultprop.CampaignConfig{
		App:    app,
		Params: app.TestParams(), Sampling: faultprop.Sampling{Runs: 10, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Total != 10 {
		t.Errorf("tally = %+v", res.Tally)
	}
	if faultprop.NominalHz != 1e9 {
		t.Errorf("NominalHz = %v", float64(faultprop.NominalHz))
	}
}
