// Command faultpropd is the campaign service daemon: a long-running HTTP
// server that queues, schedules, checkpoints, and streams fault-injection
// campaigns (see internal/service for the API).
//
// Usage:
//
//	faultpropd [-addr HOST:PORT] [-data DIR] [-jobs N] [-pool N]
//	           [-progress INTERVAL] [-drain-timeout D] [-pprof HOST:PORT]
//	           [-peers URL,URL,...] [-heartbeat D] [-max-queue N]
//	           [-log-level LEVEL] [-log-format text|json] [-slow-experiment D]
//	           [-archive-dir DIR] [-tenant-quota N] [-tenant-rate R] [-tenant-burst N]
//
// Every job is journaled under -data: killing the daemon (SIGINT/SIGTERM)
// drains gracefully — running campaigns checkpoint and return to the
// queue — and the next start resumes them without re-running completed
// experiments. Submit with any HTTP client or with cmd/campaign -remote:
//
//	faultpropd -addr 127.0.0.1:7207 -data ./faultpropd-data &
//	campaign -remote 127.0.0.1:7207 -apps LULESH -runs 500 -seed 1
//
// A daemon with registered peers (-peers, or POST /v1/workers at runtime)
// also acts as a coordinator: a job submitted with shards > 1 is split
// into per-shard jobs dispatched across the peers and merged into one
// result, byte-identical to running the campaign unsharded. Any plain
// faultpropd is a valid peer — workers need no special mode.
//
// The actual listen address is printed on startup ("faultpropd listening
// on ..."), which makes -addr with port 0 usable in scripts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
)

// buildLogger assembles the daemon's structured logger from the -log-*
// flags. Logs go to stderr so they never mix with the startup lines
// scripts parse from stdout.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7207", "listen address (port 0 picks a free port)")
	data := flag.String("data", "faultpropd-data", "job store directory (status records, journals, results)")
	jobs := flag.Int("jobs", 2, "concurrently running campaigns")
	pool := flag.Int("pool", 0, "experiment workers shared across campaigns (0: GOMAXPROCS)")
	progressEvery := flag.Duration("progress", 500*time.Millisecond, "interval between streamed progress events")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "max wait for running campaigns to checkpoint on shutdown")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof diagnostics on this address (empty: off)")
	peers := flag.String("peers", "", "comma-separated peer worker URLs for coordinated (sharded) jobs")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "interval between peer worker liveness probes")
	maxQueue := flag.Int("max-queue", 0, "reject submissions beyond this many queued jobs (0: unbounded)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	slowExp := flag.Duration("slow-experiment", 0, "warn about experiments slower than this (0: off)")
	archiveDir := flag.String("archive-dir", "", "campaign archive directory: completed jobs are archived by fingerprint and identical resubmissions are served from it (empty: off)")
	tenantQuota := flag.Int("tenant-quota", 0, "max concurrently active jobs per tenant (0: unlimited)")
	tenantRate := flag.Float64("tenant-rate", 0, "sustained submissions per second per tenant (0: unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "submission burst capacity per tenant (0: max(rate, 1))")
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultpropd: %v\n", err)
		os.Exit(1)
	}

	if *pprofAddr != "" {
		// The pprof handlers register on http.DefaultServeMux; serve them
		// on their own listener so profiling never mixes with the API.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultpropd: pprof listen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("faultpropd pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "faultpropd: pprof: %v\n", err)
			}
		}()
	}

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	srv, err := service.New(service.Config{
		Dir:            *data,
		JobSlots:       *jobs,
		WorkerPool:     *pool,
		ProgressEvery:  *progressEvery,
		MaxQueue:       *maxQueue,
		Peers:          peerList,
		Heartbeat:      *heartbeat,
		Log:            logger,
		SlowExperiment: *slowExp,
		ArchiveDir:     *archiveDir,
		TenantQuota:    *tenantQuota,
		TenantRate:     *tenantRate,
		TenantBurst:    *tenantBurst,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultpropd: %v\n", err)
		os.Exit(1)
	}
	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "faultpropd: start: %v\n", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultpropd: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("faultpropd listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "faultpropd: draining (campaigns checkpoint and requeue)...")
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "faultpropd: serve: %v\n", err)
		os.Exit(1)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "faultpropd: %v\n", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = hs.Shutdown(shutCtx)
	fmt.Fprintln(os.Stderr, "faultpropd: stopped")
}
