// Command fpmdis disassembles a proxy application before and after the FPM
// instrumentation pass, making the paper's Fig. 3 transformation visible on
// real code: the primary chain with fim_inj injection points, the secondary
// (pristine) chain marked with '~', fpm_fetch after loads and fpm_store in
// place of stores.
//
// Usage:
//
//	fpmdis [-app LULESH] [-func main] [-instrumented] [-head N]
//	fpmdis -fig3            (the paper's c = 2*a + b example)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/ir"
	"repro/internal/transform"
)

func main() {
	appName := flag.String("app", "LULESH", "application to disassemble")
	funcName := flag.String("func", "main", "function to show")
	instrumented := flag.Bool("instrumented", true, "show the FPM-instrumented form")
	head := flag.Int("head", 60, "lines to print (0: all)")
	fig3 := flag.Bool("fig3", false, "show the paper's Fig. 3 example instead")
	flag.Parse()

	var prog *ir.Program
	if *fig3 {
		b := ir.NewBuilder()
		a := b.Global("a", 1)
		bb := b.Global("b", 1)
		c := b.Global("c", 1)
		f := b.Func("main", 0, 0)
		r1 := f.Load(ir.ImmI(a))
		r2 := f.Load(ir.ImmI(bb))
		r3 := f.Mul(ir.R(r1), ir.ImmI(2))
		r4 := f.Add(ir.R(r2), ir.R(r3))
		f.Store(ir.R(r4), ir.ImmI(c))
		f.Ret()
		prog = b.MustBuild()
		*funcName = "main"
		*head = 0
		fmt.Println("statement: c = 2*a + b (paper Fig. 3)")
		fmt.Println("\n--- original IR ---")
		fmt.Print(ir.Disassemble(prog, prog.FuncNamed("main")))
	} else {
		app := apps.ByName(*appName)
		if app == nil {
			fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
			os.Exit(2)
		}
		var err error
		prog, err = app.Build(app.TestParams())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	show := prog
	if *instrumented || *fig3 {
		inst, err := transform.Instrument(prog, transform.DefaultOptions())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		show = inst
		if *fig3 {
			fmt.Println("\n--- FPM-instrumented IR (primary + '~' secondary chain) ---")
		}
	}
	fn := show.FuncNamed(*funcName)
	if fn == nil {
		fmt.Fprintf(os.Stderr, "no function %q; have:", *funcName)
		for _, f := range show.Funcs {
			fmt.Fprintf(os.Stderr, " %s", f.Name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	text := ir.Disassemble(show, fn)
	if *head > 0 {
		lines := strings.SplitAfter(text, "\n")
		if len(lines) > *head {
			lines = append(lines[:*head], fmt.Sprintf("... (%d more lines)\n", len(lines)-*head))
		}
		text = strings.Join(lines, "")
	}
	fmt.Print(text)
	st := show.CollectStats()
	fmt.Printf("\n%d functions, %d instructions, %d static fim_inj sites\n",
		st.Funcs, st.Instructions, transform.CountStaticSites(show))
}
