// Command fpmrun executes one fault-injection experiment against a proxy
// application and reports everything the framework observes: the applied
// fault, the outcome class, the contamination profile of the injected rank,
// the cross-rank spread, and the fitted propagation model.
//
// Usage:
//
//	fpmrun -app LULESH [-seed N] [-ranks N] [-size N] [-steps N]
//	       [-rank R -site S -bit B]   (explicit fault instead of a random one)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/model"
	"repro/internal/transform"
	"repro/internal/xrand"
)

func main() {
	appName := flag.String("app", "LULESH", "application: LULESH, LAMMPS, miniFE, AMG2013, MCB")
	seed := flag.Uint64("seed", 1, "random fault selection seed")
	ranks := flag.Int("ranks", 0, "override MPI ranks")
	size := flag.Int("size", 0, "override per-rank problem size")
	steps := flag.Int("steps", 0, "override timesteps / iteration cap")
	fRank := flag.Int("rank", -1, "explicit fault: target rank")
	fSite := flag.Uint64("site", 0, "explicit fault: dynamic site index")
	fBit := flag.Uint("bit", 0, "explicit fault: bit to flip")
	flag.Parse()

	app := apps.ByName(*appName)
	if app == nil {
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
		os.Exit(2)
	}
	params := app.DefaultParams()
	if *ranks > 0 {
		params.Ranks = *ranks
	}
	if *size > 0 {
		params.Size = *size
	}
	if *steps > 0 {
		params.Steps = *steps
	}
	prog, err := app.Build(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	analyzer, err := core.NewAnalyzer(prog, params.Ranks, transform.DefaultOptions())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: ranks=%d size=%d steps=%d\n", app.Name(), params.Ranks, params.Size, params.Steps)
	fmt.Printf("golden: %d cycles, %d outputs, sites per rank %v\n",
		analyzer.Golden().Cycles, len(analyzer.Golden().Outputs), analyzer.SiteCounts())

	var plan inject.Plan
	if *fRank >= 0 {
		plan = inject.Plan{Faults: []inject.Fault{{Rank: *fRank, Site: *fSite, Bit: *fBit}}}
	} else {
		plan, err = analyzer.PlanUniform(xrand.New(*seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("fault: %v\n", plan.Faults[0])
	out := analyzer.Analyze(plan)
	fmt.Printf("outcome: %v\n", out.Class)
	if out.Run.Err != nil {
		fmt.Printf("failure: %v\n", out.Run.Err)
	}
	fmt.Printf("contamination: peak %d locations over %d state words (%.2f%%), %d/%d ranks\n",
		out.Run.MaxCMLTotal, out.Run.AllocatedTotal,
		100*float64(out.Run.MaxCMLTotal)/float64(out.Run.AllocatedTotal),
		out.Run.Spread.Count(), params.Ranks)
	if len(out.Points) > 1 {
		fmt.Println("injected rank CML profile (ms : CML):")
		step := len(out.Points)/20 + 1
		for i := 0; i < len(out.Points); i += step {
			p := out.Points[i]
			fmt.Printf("  %8.4f : %d\n", model.CyclesToSeconds(p.Cycles)*1e3, p.CML)
		}
	}
	if out.HasFit {
		fmt.Printf("propagation model: CML(t) = %.4g*t %+.4g (R²=%.3f, validation err %.2f%%)\n",
			out.Fit.A, out.Fit.B, out.Fit.R2, 100*out.Fit.ValidationErr)
	}
}
