// Command figures renders the paper's figures and tables from a saved
// campaign results file (produced with `campaign -json results.json`),
// so expensive campaigns can be re-rendered without re-running.
//
// Usage:
//
//	figures -in results.json [-only fig6,table2]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	in := flag.String("in", "results.json", "saved campaign results (.json or .json.gz)")
	only := flag.String("only", "", "comma-separated subset: fig5,fig6,fig7,fig7f,fig8,table1,table2,co,dvf")
	flag.Parse()

	results, err := harness.LoadResults(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "no results in file")
		os.Exit(1)
	}
	for _, r := range results {
		// Campaigns run with a summary cap (-max-summaries) tally every
		// run but retain only a prefix of per-experiment records; figures
		// derived from individual experiments then cover a subset.
		if r.Runs > len(r.Experiments) {
			fmt.Fprintf(os.Stderr,
				"note: %s retained %d of %d experiment summaries; per-experiment figures (fig5, fig7f) cover that subset\n",
				r.App, len(r.Experiments), r.Runs)
		}
	}
	want := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[k] = true
		}
	}
	show := func(k string) bool { return len(want) == 0 || want[k] }

	if show("table1") {
		if t1, err := harness.FormatTable1(); err == nil {
			fmt.Println(t1)
		}
	}
	if show("fig5") {
		fmt.Println(harness.FormatFig5(results[0], 50))
	}
	if show("fig6") {
		fmt.Println(harness.FormatFig6(results))
	}
	if show("fig7") {
		for _, r := range results {
			fmt.Println(harness.FormatFig7(r))
		}
	}
	if show("fig7f") {
		fmt.Println(harness.FormatFig7f(results))
	}
	if show("fig8") {
		fmt.Println(harness.FormatFig8(results))
	}
	if show("table2") {
		fmt.Println(harness.FormatTable2(results))
		fmt.Printf("FPS ordering: %s\n\n", strings.Join(harness.SortedFPS(results), " > "))
	}
	if show("co") {
		fmt.Println(harness.FormatCOBreakdown(results))
	}
	if show("dvf") {
		fmt.Println(harness.FormatStructVulnerability(results))
	}
}
