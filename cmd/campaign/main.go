// Command campaign runs the paper's full fault-injection study: for each
// proxy application it executes a statistical injection campaign and prints
// every figure and table of the evaluation (Figs. 5-8, Tables 1-2, and the
// §4.3 CO breakdown).
//
// Usage:
//
//	campaign [-runs N] [-seed S] [-apps LULESH,miniFE] [-scale test|default]
//	         [-multifault LAMBDA] [-target-ci W] [-strata P] [-workers N]
//	         [-sites] [-protect-top PCT]
//	         [-checkpoint PATH] [-resume] [-progress INTERVAL]
//	         [-remote ADDR] [-priority N] [-shards N]
//	         [-cpuprofile FILE] [-memprofile FILE]
//
// The paper uses 5,000 runs per application on 1,024 cores; the default
// here is sized for a laptop. Increase -runs for tighter statistics — or
// pass -target-ci to let the adaptive planner stop early: experiments are
// stratified by instruction class × golden-execution phase, spent in
// deterministic rounds on the strata whose outcome rates are still
// uncertain, and the campaign stops when every stratum's rates are pinned
// within ± the target 95% CI half-width (spending at most -runs). The
// result additionally carries a per-stratum vulnerability table, and the
// executed subset is byte-identical to the same experiments of a fixed
// -runs campaign with the same seed.
//
// Long campaigns can be journaled with -checkpoint and, after a crash or a
// kill, restarted with -resume: completed experiments replay from the
// journal and the final results are identical to an uninterrupted run.
// SIGINT/SIGTERM are trapped: in-flight experiments finish, the journal is
// flushed, and the partial tallies print before exit, so an interrupted
// campaign is always resumable.
// -progress prints a live status line (runs/sec, ETA, per-outcome counts,
// worker utilization) to stderr on the given interval.
//
// With -remote ADDR the campaigns run on a faultpropd daemon instead of
// locally: each app is submitted as a job (at -priority), its event stream
// is followed, and the rendered output is identical to a local run with the
// same seed — the daemon journals every job, so worker counts, scheduling,
// and daemon restarts cannot change the results. -workers, -checkpoint and
// -resume are daemon-side concerns and are ignored with a note.
//
// With -sites each experiment additionally records its propagation
// pattern (first-contamination site, CML trajectory shape, cleanse cause)
// and the study gains a per-site vulnerability ranking: for every static
// injection site, P(WO or Crash | flip at site) with a 95% Wilson
// interval, most vulnerable first. -protect-top PCT runs the selective-
// protection evaluation on top of that: a baseline campaign ranks the
// sites, the top PCT% are re-instrumented with operand duplication, and
// an identically-seeded second campaign measures the achieved WO+Crash
// reduction against the instruction overhead. -protect-top runs locally
// only.
//
// With -shards N (N > 1) each campaign is split into N experiment-ID
// shards and merged back into one result — byte-identical to the
// unsharded run, because the position-addressable RNG makes every shard
// independently computable and the merge recomputes the fits. Locally,
// -workers picks how many worker processes are spawned (default 2): the
// command re-executes itself as short-lived faultpropd-style workers and
// coordinates them over loopback HTTP. With -remote, the shard fan-out
// happens on the daemon, across its registered peer workers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/recovery"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/transform"
)

func main() {
	runs := flag.Int("runs", 200, "injection experiments per application (the budget ceiling with -target-ci)")
	seed := flag.Uint64("seed", 2015, "campaign master seed")
	appsFlag := flag.String("apps", "", "comma-separated app names (default: all)")
	scale := flag.String("scale", "default", "workload scale: test or default")
	multi := flag.Float64("multifault", 0, "Poisson lambda for multi-fault mode (0: single fault)")
	targetCI := flag.Float64("target-ci", 0, "adaptive stopping: stop each stratum once every outcome rate is within ± this 95% CI half-width, spending at most -runs experiments (0: fixed-size campaign)")
	strata := flag.Int("strata", 0, "golden-execution phases per instruction class for stratified sampling (0: default; implies stratified reporting even without -target-ci)")
	sample := flag.Uint64("sample", 256, "CML trace sampling interval in cycles")
	sites := flag.Bool("sites", false, "record per-site propagation patterns and rank every static injection site by P(WO or Crash | flip)")
	protectTop := flag.Float64("protect-top", 0, "selective protection: rank sites with a baseline campaign (implies -sites), duplicate the operands of the top PCT% most-vulnerable sites, and re-run to report coverage vs overhead; local runs only (0: off)")
	jsonOut := flag.String("json", "", "also save results to this file (.json or .json.gz)")
	workers := flag.Int("workers", 0, "concurrent experiments (0: GOMAXPROCS)")
	snapshots := flag.Int("snapshots", 0, "golden-state snapshots per campaign for the fork fast path (0: re-execute every experiment from step 0; results are byte-identical either way)")
	checkpoint := flag.String("checkpoint", "", "journal completed experiments to this JSONL path (per-app suffix added when several apps run)")
	resume := flag.Bool("resume", false, "replay the -checkpoint journal, skipping completed experiments")
	progressEvery := flag.Duration("progress", 0, "print a status line to stderr on this interval (0: off)")
	maxSummaries := flag.Int("max-summaries", 0, "retain at most this many per-experiment summaries (0: all)")
	remote := flag.String("remote", "", "submit to a faultpropd daemon at this address instead of running locally")
	priority := flag.Int("priority", 0, "job priority for -remote submissions (higher runs first)")
	shards := flag.Int("shards", 0, "split each campaign into this many mergeable shards (locally: across -workers processes; with -remote: across the daemon's peer workers)")
	serveWorker := flag.String("serve-worker", "", "internal: serve as a local shard worker with this data directory")
	stopAfter := flag.Int("stop-after", 0, "internal: halt the local campaign after this many completed experiments, as a deterministic stand-in for a mid-run kill (0: off)")
	logLevel := flag.String("log-level", "", "structured coordinator logs to stderr at this level in -shards mode (debug, info, warn, error; empty: off)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
	memProfile := flag.String("memprofile", "", "write an end-of-campaign heap profile to this file")
	flag.Usage = groupedUsage
	flag.Parse()

	if *serveWorker != "" {
		serveWorkerMain(*serveWorker)
		return
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -checkpoint")
		os.Exit(2)
	}
	if *targetCI < 0 || *targetCI >= 1 {
		fmt.Fprintln(os.Stderr, "-target-ci must be in [0, 1)")
		os.Exit(2)
	}
	if *strata < 0 {
		fmt.Fprintln(os.Stderr, "-strata must be >= 0")
		os.Exit(2)
	}
	if *protectTop < 0 || *protectTop > 100 {
		fmt.Fprintln(os.Stderr, "-protect-top must be a percentage in [0, 100]")
		os.Exit(2)
	}
	if *protectTop > 0 && (*remote != "" || *shards > 1) {
		fmt.Fprintln(os.Stderr, "-protect-top runs its paired baseline/protected campaigns locally; drop -remote/-shards")
		os.Exit(2)
	}

	selected := apps.All()
	if *appsFlag != "" {
		selected = nil
		for _, name := range strings.Split(*appsFlag, ",") {
			a := apps.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "unknown app %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	// A SIGINT/SIGTERM cancels the campaign context: in-flight experiments
	// finish, the checkpoint journal is flushed, and partial tallies print
	// before exit instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	var results []*harness.CampaignResult
	switch {
	case *remote != "":
		results = runRemote(ctx, *remote, selected, remoteOpts{
			runs: *runs, seed: *seed, scale: *scale, multi: *multi,
			sample: *sample, maxSummaries: *maxSummaries, priority: *priority,
			shards: *shards, snapshots: *snapshots, progressEvery: *progressEvery,
			targetCI: *targetCI, strata: *strata, sites: *sites,
			localFlags: *workers != 0 || *checkpoint != "" || *resume,
		})
	case *shards > 1:
		results = runSharded(ctx, selected, shardedOpts{
			runs: *runs, seed: *seed, scale: *scale, multi: *multi,
			sample: *sample, maxSummaries: *maxSummaries,
			shards: *shards, snapshots: *snapshots, procs: *workers, progressEvery: *progressEvery,
			targetCI: *targetCI, strata: *strata, sites: *sites,
			localFlags: *checkpoint != "" || *resume, logLevel: *logLevel,
		})
	case *protectTop > 0:
		results = runProtectTop(ctx, selected, localOpts{
			runs: *runs, seed: *seed, scale: *scale, multi: *multi,
			sample: *sample, maxSummaries: *maxSummaries, workers: *workers,
			snapshots: *snapshots, targetCI: *targetCI, strata: *strata,
			checkpoint: *checkpoint, resume: *resume, stopAfter: *stopAfter,
			progressEvery: *progressEvery,
		}, *protectTop)
	default:
		results = runLocal(ctx, selected, localOpts{
			runs: *runs, seed: *seed, scale: *scale, multi: *multi,
			sample: *sample, maxSummaries: *maxSummaries, workers: *workers,
			snapshots: *snapshots, targetCI: *targetCI, strata: *strata,
			sites:      *sites,
			checkpoint: *checkpoint, resume: *resume, stopAfter: *stopAfter,
			progressEvery: *progressEvery,
		})
	}

	if *cpuProfile != "" {
		// Stop explicitly so the profile covers the campaigns, not the
		// rendering below (the deferred stop then no-ops).
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}

	render(results)

	if *jsonOut != "" {
		if err := harness.SaveResults(*jsonOut, results); err != nil {
			fmt.Fprintf(os.Stderr, "save: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("results saved to %s\n", *jsonOut)
	}
}

type localOpts struct {
	runs          int
	seed          uint64
	scale         string
	multi         float64
	sample        uint64
	maxSummaries  int
	workers       int
	snapshots     int
	targetCI      float64
	strata        int
	sites         bool
	protect       []int
	checkpoint    string
	resume        bool
	stopAfter     int
	progressEvery time.Duration
}

func runLocal(ctx context.Context, selected []apps.App, o localOpts) []*harness.CampaignResult {
	var results []*harness.CampaignResult
	for _, app := range selected {
		p := app.DefaultParams()
		if o.scale == "test" {
			p = app.TestParams()
		}
		start := time.Now()
		prog := &harness.Progress{}
		stopTicker := prog.Ticker(os.Stderr, o.progressEvery)
		ckpt := checkpointPath(o.checkpoint, app.Name(), len(selected))
		res, err := harness.RunCampaignContext(ctx, harness.CampaignConfig{
			App:    app,
			Params: p,
			Sampling: harness.Sampling{
				Runs:             o.runs,
				Seed:             o.seed,
				MultiFaultLambda: o.multi,
				TargetCI:         o.targetCI,
				Strata:           o.strata,
				Sites:            o.sites,
			},
			Protect: o.protect,
			Execution: harness.Execution{
				SampleEvery: o.sample,
				Workers:     o.workers,
				Snapshots:   o.snapshots,
			},
			Retention:   harness.Retention{MaxSummaries: o.maxSummaries},
			Persistence: harness.Persistence{Checkpoint: ckpt, Resume: o.resume},
			StopAfter:   o.stopAfter,
			Progress:    prog,
		})
		stopTicker()
		if errors.Is(err, harness.ErrInterrupted) {
			snap := prog.Snapshot()
			fmt.Fprintf(os.Stderr, "campaign %s interrupted: %v\n", app.Name(), err)
			fmt.Fprintf(os.Stderr, "partial tally: %s\n", snap)
			if ckpt != "" {
				fmt.Fprintf(os.Stderr, "journal flushed to %s; rerun with -resume to continue\n", ckpt)
			}
			os.Exit(130)
		}
		if err != nil {
			// Typed config violations (a bad flag combination, or -resume
			// pointing -target-ci at a journal written by a non-adaptive
			// campaign) are usage errors, not crashes.
			var fe *harness.FieldError
			if errors.As(err, &fe) {
				fmt.Fprintf(os.Stderr, "campaign %s: %v\n", app.Name(), fe)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "campaign %s: %v\n", app.Name(), err)
			os.Exit(1)
		}
		snap := prog.Snapshot()
		ran := o.runs
		if o.targetCI > 0 {
			ran = res.Tally.Total
		}
		fmt.Printf("# %s: %d runs in %v (golden cycles %d, %d ranks, %.1f runs/s",
			app.Name(), ran, time.Since(start).Round(time.Millisecond),
			res.Golden.Cycles, p.Ranks, snap.RunsPerSec)
		if o.targetCI > 0 {
			fmt.Printf(", adaptive: spent %d of %d budget at ±%g", ran, o.runs, o.targetCI)
		}
		if snap.Resumed > 0 {
			fmt.Printf(", %d resumed", snap.Resumed)
		}
		fmt.Println(")")
		results = append(results, res)
	}
	return results
}

// runProtectTop drives the selective-protection evaluation: per app, a
// baseline campaign with per-site analytics ranks every static injection
// site, the top pct% are protected by operand duplication, and an
// identically-configured second campaign measures the protected WO+Crash
// rate against the instruction overhead. Both campaigns share the seed,
// and protection never changes injection plans, so the two runs flip the
// same bits at the same dynamic sites — the rate delta is the protection
// effect. The baseline results are returned for the standard study
// rendering; the coverage-vs-overhead tables print here.
func runProtectTop(ctx context.Context, selected []apps.App, o localOpts, pct float64) []*harness.CampaignResult {
	o.sites = true
	var results []*harness.CampaignResult
	for _, app := range selected {
		one := []apps.App{app}
		base := runLocal(ctx, one, o)[0]
		total, err := staticSiteCount(app, o.scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "protect-top %s: %v\n", app.Name(), err)
			os.Exit(1)
		}
		po := o
		po.protect = harness.ProtectTop(base.Sites, pct, total)
		// The protected campaign has its own fingerprint (the protect set
		// is result-determining); journaling it over the baseline's path
		// would clobber that journal, so it runs unjournaled.
		po.checkpoint, po.resume = "", false
		prot := runLocal(ctx, one, po)[0]
		fmt.Println()
		fmt.Print(harness.FormatProtection(pct, len(po.protect), total, base, prot))
		results = append(results, base)
	}
	return results
}

// staticSiteCount instruments the app's program the way the campaigns do
// and counts its static fim_inj sites — the protection coverage
// denominator (the ranking only lists sites some experiment hit).
func staticSiteCount(app apps.App, scale string) (int, error) {
	p := app.DefaultParams()
	if scale == "test" {
		p = app.TestParams()
	}
	prog, err := app.Build(p)
	if err != nil {
		return 0, err
	}
	inst, err := transform.Instrument(prog, transform.DefaultOptions())
	if err != nil {
		return 0, err
	}
	return transform.CountStaticSites(inst), nil
}

type remoteOpts struct {
	runs          int
	seed          uint64
	scale         string
	multi         float64
	sample        uint64
	maxSummaries  int
	priority      int
	shards        int
	snapshots     int
	targetCI      float64
	strata        int
	sites         bool
	progressEvery time.Duration
	localFlags    bool
}

// samplingSpec translates the sampling-policy flags into the /v1
// sampling object, or nil when none is set (legacy daemons reject
// unknown fields nowhere, but a nil object keeps the wire spec
// byte-identical to pre-adaptive submissions).
func samplingSpec(targetCI float64, strata int, sites bool) *service.SamplingSpec {
	if targetCI == 0 && strata == 0 && !sites {
		return nil
	}
	return &service.SamplingSpec{TargetCI: targetCI, Strata: strata, Sites: sites}
}

// runRemote submits one job per app to a faultpropd daemon, follows each
// job's event stream, and fetches the final results. An interrupt detaches
// from the stream but leaves the jobs running daemon-side.
func runRemote(ctx context.Context, addr string, selected []apps.App, o remoteOpts) []*harness.CampaignResult {
	if o.localFlags {
		fmt.Fprintln(os.Stderr, "note: -workers/-checkpoint/-resume are managed by the daemon and ignored with -remote")
	}
	c, err := client.New(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "remote: %v\n", err)
		os.Exit(2)
	}
	var results []*harness.CampaignResult
	for _, app := range selected {
		start := time.Now()
		lastProgress := time.Time{}
		spec := service.JobSpec{
			App:              app.Name(),
			Scale:            o.scale,
			Runs:             o.runs,
			Seed:             o.seed,
			MultiFaultLambda: o.multi,
			SampleEvery:      o.sample,
			MaxSummaries:     o.maxSummaries,
			Snapshots:        o.snapshots,
			Priority:         o.priority,
			Shards:           o.shards,
			Label:            "cmd/campaign",
			Sampling:         samplingSpec(o.targetCI, o.strata, o.sites),
		}
		var lastSnap *harness.Snapshot
		res, err := c.Run(ctx, spec, func(ev service.Event) error {
			if ev.Kind == service.EventProgress && ev.Progress != nil {
				lastSnap = ev.Progress
				if o.progressEvery > 0 && time.Since(lastProgress) >= o.progressEvery {
					lastProgress = time.Now()
					fmt.Fprintf(os.Stderr, "%s: %s\n", app.Name(), ev.Progress)
				}
			}
			return nil
		})
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "remote campaign %s: detached (%v); the job keeps running on %s\n",
					app.Name(), ctx.Err(), addr)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "remote campaign %s: %v\n", app.Name(), err)
			os.Exit(1)
		}
		fmt.Printf("# %s: %d runs in %v via %s (golden cycles %d, %d ranks",
			app.Name(), o.runs, time.Since(start).Round(time.Millisecond), addr,
			res.Golden.Cycles, res.Params.Ranks)
		if lastSnap != nil {
			fmt.Printf(", %.1f runs/s", lastSnap.RunsPerSec)
			if lastSnap.Resumed > 0 {
				fmt.Printf(", %d resumed", lastSnap.Resumed)
			}
		}
		fmt.Println(")")
		results = append(results, res)
	}
	return results
}

// render prints every figure and table of the paper's evaluation.
func render(results []*harness.CampaignResult) {
	fmt.Println()
	t1, err := harness.FormatTable1()
	if err != nil {
		fmt.Fprintf(os.Stderr, "table 1: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(t1)
	fmt.Println(harness.FormatFig5(results[0], 50))
	fmt.Println(harness.FormatFig6(results))
	for _, r := range results {
		fmt.Println(harness.FormatFig7(r))
	}
	fmt.Println(harness.FormatFig7f(results))
	fmt.Println(harness.FormatFig8(results))
	fmt.Println(harness.FormatTable2(results))
	fmt.Println(harness.FormatCOBreakdown(results))
	fmt.Println(harness.FormatStructVulnerability(results))
	for _, r := range results {
		if s := harness.FormatStrata(r); s != "" {
			fmt.Println(s)
		}
	}
	for _, r := range results {
		if s := harness.FormatSites(r); s != "" {
			fmt.Println(s)
		}
	}
	for _, r := range results {
		rep := recovery.Evaluate(recovery.Config{
			Model:              r.Model,
			ThresholdCML:       20,
			DetectionLatency:   2e-6,
			CheckpointInterval: 10e-6,
		}, r)
		fmt.Println(rep.Format())
	}
	fmt.Printf("FPS ordering (fastest propagation first): %s\n",
		strings.Join(harness.SortedFPS(results), " > "))
}

// flagSections groups the command's flags by the CampaignConfig section
// they fill, so -h reads like the configuration it builds.
var flagSections = []struct {
	title string
	names []string
}{
	{"Workload", []string{"apps", "scale"}},
	{"Sampling (statistical design)", []string{"runs", "seed", "multifault", "target-ci", "strata"}},
	{"Analytics and protection", []string{"sites", "protect-top"}},
	{"Execution (scheduling)", []string{"workers", "snapshots", "sample"}},
	{"Retention", []string{"max-summaries"}},
	{"Persistence (checkpoint journal)", []string{"checkpoint", "resume"}},
	{"Remote and sharding", []string{"remote", "priority", "shards", "log-level"}},
	{"Output and profiling", []string{"json", "progress", "cpuprofile", "memprofile"}},
}

// groupedUsage prints -h grouped by config section instead of the flat
// alphabetical default.
func groupedUsage() {
	w := flag.CommandLine.Output()
	fmt.Fprint(w, "Usage: campaign [flags]\n\nRuns the paper's fault-injection study. Flags are grouped by the\nconfiguration section they fill:\n")
	seen := map[string]bool{"serve-worker": true, "stop-after": true} // internal, not advertised
	for _, sec := range flagSections {
		fmt.Fprintf(w, "\n%s:\n", sec.title)
		for _, name := range sec.names {
			if f := flag.Lookup(name); f != nil {
				seen[name] = true
				printFlag(w, f)
			}
		}
	}
	var rest []*flag.Flag
	flag.VisitAll(func(f *flag.Flag) {
		if !seen[f.Name] {
			rest = append(rest, f)
		}
	})
	if len(rest) > 0 {
		fmt.Fprint(w, "\nOther:\n")
		for _, f := range rest {
			printFlag(w, f)
		}
	}
}

func printFlag(w io.Writer, f *flag.Flag) {
	typ, usage := flag.UnquoteUsage(f)
	if typ != "" {
		fmt.Fprintf(w, "  -%s %s\n", f.Name, typ)
	} else {
		fmt.Fprintf(w, "  -%s\n", f.Name)
	}
	fmt.Fprintf(w, "    \t%s", usage)
	if f.DefValue != "" && f.DefValue != "0" && f.DefValue != "false" {
		fmt.Fprintf(w, " (default %v)", f.DefValue)
	}
	fmt.Fprintln(w)
}

// checkpointPath derives the journal path for one app. With several apps in
// one invocation each needs its own journal, so the app name is suffixed
// before the extension.
func checkpointPath(base, app string, apps int) string {
	if base == "" || apps == 1 {
		return base
	}
	if i := strings.LastIndex(base, "."); i > 0 {
		return base[:i] + "-" + app + base[i:]
	}
	return base + "-" + app
}
