// Command campaign runs the paper's full fault-injection study: for each
// proxy application it executes a statistical injection campaign and prints
// every figure and table of the evaluation (Figs. 5-8, Tables 1-2, and the
// §4.3 CO breakdown).
//
// Usage:
//
//	campaign [-runs N] [-seed S] [-apps LULESH,miniFE] [-scale test|default]
//	         [-multifault LAMBDA] [-workers N] [-checkpoint PATH] [-resume]
//	         [-progress INTERVAL]
//
// The paper uses 5,000 runs per application on 1,024 cores; the default
// here is sized for a laptop. Increase -runs for tighter statistics.
//
// Long campaigns can be journaled with -checkpoint and, after a crash or a
// kill, restarted with -resume: completed experiments replay from the
// journal and the final results are identical to an uninterrupted run.
// -progress prints a live status line (runs/sec, ETA, per-outcome counts,
// worker utilization) to stderr on the given interval.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/recovery"
)

func main() {
	runs := flag.Int("runs", 200, "injection experiments per application")
	seed := flag.Uint64("seed", 2015, "campaign master seed")
	appsFlag := flag.String("apps", "", "comma-separated app names (default: all)")
	scale := flag.String("scale", "default", "workload scale: test or default")
	multi := flag.Float64("multifault", 0, "Poisson lambda for multi-fault mode (0: single fault)")
	sample := flag.Uint64("sample", 256, "CML trace sampling interval in cycles")
	jsonOut := flag.String("json", "", "also save results to this file (.json or .json.gz)")
	workers := flag.Int("workers", 0, "concurrent experiments (0: GOMAXPROCS)")
	checkpoint := flag.String("checkpoint", "", "journal completed experiments to this JSONL path (per-app suffix added when several apps run)")
	resume := flag.Bool("resume", false, "replay the -checkpoint journal, skipping completed experiments")
	progressEvery := flag.Duration("progress", 0, "print a status line to stderr on this interval (0: off)")
	maxSummaries := flag.Int("max-summaries", 0, "retain at most this many per-experiment summaries (0: all)")
	flag.Parse()

	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -checkpoint")
		os.Exit(2)
	}

	selected := apps.All()
	if *appsFlag != "" {
		selected = nil
		for _, name := range strings.Split(*appsFlag, ",") {
			a := apps.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "unknown app %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	var results []*harness.CampaignResult
	for _, app := range selected {
		p := app.DefaultParams()
		if *scale == "test" {
			p = app.TestParams()
		}
		start := time.Now()
		prog := &harness.Progress{}
		stopTicker := prog.Ticker(os.Stderr, *progressEvery)
		res, err := harness.RunCampaign(harness.CampaignConfig{
			App:              app,
			Params:           p,
			Runs:             *runs,
			Seed:             *seed,
			MultiFaultLambda: *multi,
			SampleEvery:      *sample,
			Workers:          *workers,
			MaxSummaries:     *maxSummaries,
			Checkpoint:       checkpointPath(*checkpoint, app.Name(), len(selected)),
			Resume:           *resume,
			Progress:         prog,
		})
		stopTicker()
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign %s: %v\n", app.Name(), err)
			os.Exit(1)
		}
		snap := prog.Snapshot()
		fmt.Printf("# %s: %d runs in %v (golden cycles %d, %d ranks, %.1f runs/s",
			app.Name(), *runs, time.Since(start).Round(time.Millisecond),
			res.Golden.Cycles, p.Ranks, snap.RunsPerSec)
		if snap.Resumed > 0 {
			fmt.Printf(", %d resumed", snap.Resumed)
		}
		fmt.Println(")")
		results = append(results, res)
	}

	fmt.Println()
	t1, err := harness.FormatTable1()
	if err != nil {
		fmt.Fprintf(os.Stderr, "table 1: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(t1)
	fmt.Println(harness.FormatFig5(results[0], 50))
	fmt.Println(harness.FormatFig6(results))
	for _, r := range results {
		fmt.Println(harness.FormatFig7(r))
	}
	fmt.Println(harness.FormatFig7f(results))
	fmt.Println(harness.FormatFig8(results))
	fmt.Println(harness.FormatTable2(results))
	fmt.Println(harness.FormatCOBreakdown(results))
	fmt.Println(harness.FormatStructVulnerability(results))
	for _, r := range results {
		rep := recovery.Evaluate(recovery.Config{
			Model:              r.Model,
			ThresholdCML:       20,
			DetectionLatency:   2e-6,
			CheckpointInterval: 10e-6,
		}, r)
		fmt.Println(rep.Format())
	}
	fmt.Printf("FPS ordering (fastest propagation first): %s\n",
		strings.Join(harness.SortedFPS(results), " > "))

	if *jsonOut != "" {
		if err := harness.SaveResults(*jsonOut, results); err != nil {
			fmt.Fprintf(os.Stderr, "save: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("results saved to %s\n", *jsonOut)
	}
}

// checkpointPath derives the journal path for one app. With several apps in
// one invocation each needs its own journal, so the app name is suffixed
// before the extension.
func checkpointPath(base, app string, apps int) string {
	if base == "" || apps == 1 {
		return base
	}
	if i := strings.LastIndex(base, "."); i > 0 {
		return base[:i] + "-" + app + base[i:]
	}
	return base + "-" + app
}
