// Command campaign runs the paper's full fault-injection study: for each
// proxy application it executes a statistical injection campaign and prints
// every figure and table of the evaluation (Figs. 5-8, Tables 1-2, and the
// §4.3 CO breakdown).
//
// Usage:
//
//	campaign [-runs N] [-seed S] [-apps LULESH,miniFE] [-scale test|default]
//	         [-multifault LAMBDA]
//
// The paper uses 5,000 runs per application on 1,024 cores; the default
// here is sized for a laptop. Increase -runs for tighter statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/recovery"
)

func main() {
	runs := flag.Int("runs", 200, "injection experiments per application")
	seed := flag.Uint64("seed", 2015, "campaign master seed")
	appsFlag := flag.String("apps", "", "comma-separated app names (default: all)")
	scale := flag.String("scale", "default", "workload scale: test or default")
	multi := flag.Float64("multifault", 0, "Poisson lambda for multi-fault mode (0: single fault)")
	sample := flag.Uint64("sample", 256, "CML trace sampling interval in cycles")
	jsonOut := flag.String("json", "", "also save results to this file (.json or .json.gz)")
	flag.Parse()

	selected := apps.All()
	if *appsFlag != "" {
		selected = nil
		for _, name := range strings.Split(*appsFlag, ",") {
			a := apps.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "unknown app %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	var results []*harness.CampaignResult
	for _, app := range selected {
		p := app.DefaultParams()
		if *scale == "test" {
			p = app.TestParams()
		}
		start := time.Now()
		res, err := harness.RunCampaign(harness.CampaignConfig{
			App:              app,
			Params:           p,
			Runs:             *runs,
			Seed:             *seed,
			MultiFaultLambda: *multi,
			SampleEvery:      *sample,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign %s: %v\n", app.Name(), err)
			os.Exit(1)
		}
		fmt.Printf("# %s: %d runs in %v (golden cycles %d, %d ranks)\n",
			app.Name(), *runs, time.Since(start).Round(time.Millisecond),
			res.Golden.Cycles, p.Ranks)
		results = append(results, res)
	}

	fmt.Println()
	t1, err := harness.FormatTable1()
	if err != nil {
		fmt.Fprintf(os.Stderr, "table 1: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(t1)
	fmt.Println(harness.FormatFig5(results[0], 50))
	fmt.Println(harness.FormatFig6(results))
	for _, r := range results {
		fmt.Println(harness.FormatFig7(r))
	}
	fmt.Println(harness.FormatFig7f(results))
	fmt.Println(harness.FormatFig8(results))
	fmt.Println(harness.FormatTable2(results))
	fmt.Println(harness.FormatCOBreakdown(results))
	fmt.Println(harness.FormatStructVulnerability(results))
	for _, r := range results {
		rep := recovery.Evaluate(recovery.Config{
			Model:              r.Model,
			ThresholdCML:       20,
			DetectionLatency:   2e-6,
			CheckpointInterval: 10e-6,
		}, r)
		fmt.Println(rep.Format())
	}
	fmt.Printf("FPS ordering (fastest propagation first): %s\n",
		strings.Join(harness.SortedFPS(results), " > "))

	if *jsonOut != "" {
		if err := harness.SaveResults(*jsonOut, results); err != nil {
			fmt.Fprintf(os.Stderr, "save: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("results saved to %s\n", *jsonOut)
	}
}
