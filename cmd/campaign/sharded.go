package main

import (
	"bufio"
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/service"
)

// Local multi-process sharding: the command re-executes itself as N
// short-lived worker daemons (the hidden -serve-worker mode below), runs
// an in-process coordinator Server with those workers registered as
// peers, and submits each campaign with Shards set. The coordinator
// dispatches the shards over loopback HTTP and merges the partials, so
// the local path and the -remote path exercise exactly the same code —
// and the merged result is byte-identical to an unsharded run.

type shardedOpts struct {
	runs          int
	seed          uint64
	scale         string
	multi         float64
	sample        uint64
	maxSummaries  int
	shards        int
	snapshots     int
	procs         int
	targetCI      float64
	strata        int
	sites         bool
	progressEvery time.Duration
	localFlags    bool
	// logLevel enables the in-process coordinator's structured logs on
	// stderr (shard dispatch/requeue, worker liveness); empty disables.
	logLevel string
}

// coordLogger builds the coordinator's slog handler for -log-level, or
// nil (discard) when the flag is unset or unrecognized.
func coordLogger(level string) *slog.Logger {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
}

func runSharded(ctx context.Context, selected []apps.App, o shardedOpts) []*harness.CampaignResult {
	if o.localFlags {
		fmt.Fprintln(os.Stderr, "note: -checkpoint/-resume journal daemon-side and are ignored with -shards (the shard journal lives in a temp dir)")
	}
	if o.procs <= 0 {
		o.procs = 2
	}
	if o.procs > o.shards {
		o.procs = o.shards
	}

	tmp, err := os.MkdirTemp("", "campaign-shards-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sharded: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(tmp)

	fleet, peers, err := spawnWorkers(tmp, o.procs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sharded: %v\n", err)
		os.Exit(1)
	}
	defer stopWorkers(fleet)

	srv, err := service.New(service.Config{
		Dir:           filepath.Join(tmp, "coordinator"),
		ProgressEvery: 100 * time.Millisecond,
		Heartbeat:     500 * time.Millisecond,
		Peers:         peers,
		Log:           coordLogger(o.logLevel),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sharded: coordinator: %v\n", err)
		os.Exit(1)
	}
	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "sharded: coordinator: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(dctx)
	}()

	var results []*harness.CampaignResult
	for _, app := range selected {
		start := time.Now()
		st, err := srv.Submit(service.JobSpec{
			App:              app.Name(),
			Scale:            o.scale,
			Runs:             o.runs,
			Seed:             o.seed,
			MultiFaultLambda: o.multi,
			SampleEvery:      o.sample,
			MaxSummaries:     o.maxSummaries,
			Snapshots:        o.snapshots,
			Shards:           o.shards,
			Label:            "cmd/campaign -shards",
			Sampling:         samplingSpec(o.targetCI, o.strata, o.sites),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sharded campaign %s: %v\n", app.Name(), err)
			os.Exit(1)
		}
		final, err := waitForJob(ctx, srv, st.ID, app.Name(), o.progressEvery)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sharded campaign %s: %v\n", app.Name(), err)
			os.Exit(1)
		}
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "sharded campaign %s: interrupted\n", app.Name())
			os.Exit(130)
		}
		if final.State != service.StateDone {
			fmt.Fprintf(os.Stderr, "sharded campaign %s: job settled as %s: %s\n",
				app.Name(), final.State, final.Error)
			os.Exit(1)
		}
		res, err := srv.Result(st.ID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sharded campaign %s: %v\n", app.Name(), err)
			os.Exit(1)
		}
		ran := o.runs
		if o.targetCI > 0 {
			ran = res.Tally.Total
		}
		fmt.Printf("# %s: %d runs in %v across %d shards on %d workers (golden cycles %d, %d ranks",
			app.Name(), ran, time.Since(start).Round(time.Millisecond),
			o.shards, o.procs, res.Golden.Cycles, res.Params.Ranks)
		if o.targetCI > 0 {
			fmt.Printf(", adaptive: spent %d of %d budget at ±%g", ran, o.runs, o.targetCI)
		}
		fmt.Println(")")
		results = append(results, res)
	}
	return results
}

// waitForJob polls the in-process coordinator until the job settles,
// printing progress on the requested interval.
func waitForJob(ctx context.Context, srv *service.Server, id, app string,
	progressEvery time.Duration) (service.JobStatus, error) {

	lastProgress := time.Time{}
	for {
		st, err := srv.Job(id)
		if err != nil {
			return service.JobStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if progressEvery > 0 && st.Progress != nil && time.Since(lastProgress) >= progressEvery {
			lastProgress = time.Now()
			fmt.Fprintf(os.Stderr, "%s: %s\n", app, st.Progress)
		}
		select {
		case <-ctx.Done():
			// Cancel daemon-side too; shard workers stop via peer cancels.
			_, _ = srv.Cancel(id)
			st, _ := srv.Job(id)
			return st, nil
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// spawnWorkers re-executes this binary n times in -serve-worker mode and
// collects the addresses the workers report on stdout.
func spawnWorkers(tmp string, n int) ([]*exec.Cmd, []string, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, fmt.Errorf("worker exec path: %w", err)
	}
	var fleet []*exec.Cmd
	var peers []string
	for i := 0; i < n; i++ {
		dir := filepath.Join(tmp, fmt.Sprintf("worker-%d", i))
		cmd := exec.Command(exe, "-serve-worker", dir)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			stopWorkers(fleet)
			return nil, nil, fmt.Errorf("worker %d: %w", i, err)
		}
		if err := cmd.Start(); err != nil {
			stopWorkers(fleet)
			return nil, nil, fmt.Errorf("worker %d: %w", i, err)
		}
		fleet = append(fleet, cmd)
		sc := bufio.NewScanner(stdout)
		if !sc.Scan() {
			stopWorkers(fleet)
			return nil, nil, fmt.Errorf("worker %d exited before reporting its address", i)
		}
		line := sc.Text() // "worker listening on HOST:PORT"
		fields := strings.Fields(line)
		addr := fields[len(fields)-1]
		peers = append(peers, addr)
		go func() { // drain any further output
			for sc.Scan() {
			}
		}()
	}
	return fleet, peers, nil
}

func stopWorkers(fleet []*exec.Cmd) {
	for _, c := range fleet {
		_ = c.Process.Signal(syscall.SIGTERM)
	}
	for _, c := range fleet {
		_ = c.Wait()
	}
}

// serveHTTP starts the server's handler on an ephemeral loopback port.
func serveHTTP(srv *service.Server) (string, <-chan error, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	return ln.Addr().String(), errCh, nil
}

// serveWorkerMain is the hidden -serve-worker mode: a minimal faultpropd
// on an ephemeral loopback port, used as a shard worker by runSharded.
// It prints "worker listening on HOST:PORT" on stdout and serves until
// SIGTERM/SIGINT.
func serveWorkerMain(dir string) {
	srv, err := service.New(service.Config{
		Dir:           dir,
		JobSlots:      4,
		ProgressEvery: 100 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
		os.Exit(1)
	}
	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
		os.Exit(1)
	}
	addr, errCh, err := serveHTTP(srv)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("worker listening on %s\n", addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "worker: serve: %v\n", err)
		os.Exit(1)
	}
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Drain(dctx)
}
