#!/bin/sh
# bench.sh — run the perf-trajectory benchmarks and emit machine-readable
# JSON so successive PRs can diff throughput and allocation numbers.
#
# Usage:
#
#	scripts/bench.sh [OUT.json] [BENCH_REGEX] [COUNT]
#
# Defaults: OUT=BENCH.json, BENCH_REGEX covers the experiment hot path
# (BenchmarkExperimentThroughput plus the interpreter microbenchmarks),
# COUNT=3. BENCHTIME overrides -benchtime (CI smoke uses BENCHTIME=1x).
# The raw `go test -bench` output is kept next to the JSON as OUT.txt.
# Compare two snapshots with e.g.:
#
#	scripts/bench.sh BENCH_before.json && <apply change> && \
#	scripts/bench.sh BENCH_after.json
set -eu

OUT="${1:-BENCH.json}"
PATTERN="${2:-^(BenchmarkExperimentThroughput|BenchmarkInterp)}"
COUNT="${3:-3}"
BENCHTIME="${BENCHTIME:-1s}"

cd "$(dirname "$0")/.."
RAW="${OUT%.json}.txt"

# No pipeline here: under plain `sh -eu` (no pipefail) `go test | tee`
# would exit with tee's status and silently swallow a failed build or
# bench panic, emitting an empty-but-plausible JSON.
if ! go test -run '^$' -bench "$PATTERN" -benchmem -count="$COUNT" \
	-benchtime "$BENCHTIME" -timeout 30m ./... > "$RAW" 2>&1; then
	cat "$RAW" >&2
	echo "bench.sh: go test -bench failed" >&2
	exit 1
fi
cat "$RAW"
if ! grep -q '^Benchmark' "$RAW"; then
	echo "bench.sh: no benchmarks matched pattern '$PATTERN'" >&2
	exit 1
fi

# Convert the benchmark lines to JSON. A line looks like:
#   BenchmarkExperimentThroughput-8  1200  950000 ns/op  12000 B/op  150 allocs/op  1050 runs/s
# i.e. name, iterations, then (value, unit) pairs.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^goos:/    { goos = $2 }
/^goarch:/  { goarch = $2 }
/^pkg:/     { pkg = $2 }
/^Benchmark/ {
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"pkg\": \"%s\", \"iterations\": %s", $1, pkg, $2
	for (i = 3; i + 1 <= NF; i += 2) {
		unit = $(i + 1)
		gsub(/[^A-Za-z0-9%\/]/, "_", unit)
		printf ", \"%s\": %s", unit, $i
	}
	printf "}"
}
BEGIN { printf "{\n \"date\": \"" date "\",\n \"benchmarks\": [\n" }
END {
	printf "\n ],\n"
	printf " \"goos\": \"%s\", \"goarch\": \"%s\"\n}\n", goos, goarch
}' "$RAW" > "$OUT"

echo "wrote $OUT (raw output in $RAW)"
