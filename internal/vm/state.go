package vm

import "repro/internal/fpm"

// State is a reusable bundle of the allocation-heavy pieces of a VM: the
// address space, the contamination table, the register file and the frame
// stack. A campaign worker keeps one State per rank and threads it through
// consecutive experiments, so the dominant per-experiment cost — allocating
// and faulting in an 8 MiB address space per rank — is paid once per worker
// instead of once per run.
//
// Deliberately NOT part of a State: the output vector, trace points and
// injection-cycle list, which escape into results and must stay owned by
// the run that produced them.
//
// Usage: pass via Config.State to New, then call Reclaim with the finished
// VM once every observation has been extracted. A State must not be shared
// by two live VMs.
type State struct {
	mem    *Memory
	table  *fpm.Table
	regs   []uint64
	frames []frame
	ret    []uint64
	// outHint remembers the previous run's output count so the next run's
	// escaping output vector is allocated once at the right size.
	outHint int
}

// NewState returns an empty State; the first VM that adopts it populates
// the buffers.
func NewState() *State { return &State{} }

// adopt installs st's buffers (reset) into v, allocating any the State does
// not hold yet. When forkRestore is set the memory and table skip their
// Reset: the caller restores a snapshot over them before the VM runs, and
// keeping the previous run's state intact is exactly what lets that
// restore take the delta path (the dirty bitmap/journal describe the
// state relative to the last restored snapshot).
func (st *State) adopt(v *VM, memWords, globalWords int64, forkRestore bool) {
	if st.mem == nil {
		st.mem = NewMemory(memWords, globalWords)
	} else if !forkRestore {
		st.mem.Reset(memWords, globalWords)
	}
	if st.table == nil {
		st.table = fpm.NewTable()
	} else if !forkRestore {
		st.table.Reset()
	}
	v.mem = st.mem
	v.table = st.table
	v.regs = st.regs[:0]
	v.frames = st.frames[:0]
	v.ret = st.ret[:0]
	v.outputs = make([]float64, 0, st.outHint)
}

// Reclaim recaptures v's buffers — which may have grown or been replaced
// during the run — so the next New(Config{State: st}) reuses them. Call
// only after the run has finished and all observations have been read; the
// VM must not be used afterwards.
func (st *State) Reclaim(v *VM) {
	st.mem = v.mem
	st.table = v.table
	st.regs = v.regs
	// Frames hold pointers into the program (fn, decoded code, retRegs);
	// drop them so a pooled State does not pin a retired program.
	clear(v.frames)
	st.frames = v.frames
	st.ret = v.ret
	st.outHint = len(v.outputs)
}
