package vm

import (
	"fmt"

	"repro/internal/fpm"
)

// Snapshot-fork support (ZOFI-style): a campaign runs its golden execution
// once, captures the complete VM state at quiesce points, and starts each
// injection experiment by restoring the nearest snapshot that precedes the
// planned injection site instead of re-executing the clean prefix from
// step 0. The paper's determinism contract carries over unchanged because a
// restored VM is byte-identical — memory, contamination table, register
// file, frame stack, counters and trace-visible history — to a VM that
// re-executed the prefix.
//
// A quiesce point is a moment where the rank's execution state is a pure
// function of the program: immediately after a collective completes (all
// ranks of the job are at the same logical point, making a multi-rank cut
// consistent), and, for single-process jobs, additionally at timestep
// boundaries. The Quiesce hook fires at those points; Snapshot may only be
// called from inside the hook, and the captured frame stack resumes at the
// instruction after the quiescing intrinsic.
//
// Not snapshotted (callers must not combine them with snapshot forking):
// the naive-taint ablation state, direct memory faults, the in-VM
// checkpoint/rollback facility, and the job-global Clock.

// QuiesceHook observes quiesce points. seq is the running quiesce-point
// index of this rank's execution (0-based); for a multi-rank job every rank
// observes the same seq sequence — the collective-round order — as long as
// execution is deterministic, which golden runs are. The hook runs on the
// rank's goroutine with the VM paused in a resumable state; it may call
// v.Snapshot and may block (snapshot capture parks every rank of a job to
// cut a consistent world state).
type QuiesceHook interface {
	Quiesce(v *VM, seq uint64)
}

// armQuiesce schedules the Quiesce hook to fire once the current intrinsic
// has fully retired (see the interpreter loop). Collective intrinsics arm
// it unconditionally — every rank of the job passes the same rendezvous
// round — while timestep boundaries arm it only for single-process runs.
func (v *VM) armQuiesce() {
	if v.cfg.Quiesce != nil {
		v.qarm = true
	}
}

// Snapshot is the complete resumable state of one VM at a quiesce point.
// Program-owned immutables (function bodies, pre-decoded code, return
// register lists) are shared, everything mutable is deeply copied: mutating
// the VM after capture — or mutating a VM restored from the snapshot —
// never writes through into the snapshot, so one snapshot can fork any
// number of experiments.
type Snapshot struct {
	mem        *MemSnap
	table      *fpm.TableSnap
	regs       []uint64
	frames     []frame
	cycles     uint64
	sites      uint64
	injCycles  []uint64
	outputs    []float64
	iterations int64
	ticks      int64
	qseq       uint64
	// clean records the interpreter mode at capture. A snapshot captured
	// in clean mode has stale shadow registers — semantically equal to
	// their primaries but not byte-equal — so a fork must resume in clean
	// mode (where nothing reads them) and reconstruct them on its own
	// clean->full switch, exactly as the captured VM would have.
	clean bool
}

// Sites returns the dynamic fim_inj site count at the snapshot: the first
// site index that has NOT yet executed. An experiment may fork from this
// snapshot iff every planned fault targets site >= Sites().
func (s *Snapshot) Sites() uint64 { return s.sites }

// Cycles returns the application cycle count at the snapshot.
func (s *Snapshot) Cycles() uint64 { return s.cycles }

// Snapshot captures the VM into s (reusing s's backing where possible; nil
// allocates). It must be called from inside a Quiesce hook: the stored
// frame stack resumes at the instruction following the quiescing
// intrinsic.
func (v *VM) Snapshot(s *Snapshot) *Snapshot {
	if s == nil {
		s = &Snapshot{}
	}
	s.mem = v.mem.Snapshot(s.mem)
	s.table = v.table.Snapshot(s.table)
	s.regs = append(s.regs[:0], v.regs...)
	// Frame structs copy by value; fn, code and retRegs are program-owned
	// immutables, safe to share across every fork of this snapshot.
	s.frames = append(s.frames[:0], v.frames...)
	s.frames[len(s.frames)-1].pc++
	s.cycles = v.cycles
	s.sites = v.sites
	s.injCycles = append(s.injCycles[:0], v.injCycles...)
	s.outputs = append(s.outputs[:0], v.outputs...)
	s.iterations = v.iterations
	s.ticks = v.ticks
	s.qseq = v.qseq
	s.clean = v.clean
	return s
}

// RestoreSnap forks this VM from the snapshot and reports the restore
// cost (memory stats plus table bytes). Call it on a freshly constructed
// VM (New, typically with a pooled State and Config.ForkRestore), before
// Resume. The VM must target the same program the snapshot was taken
// from and must not use the unsupported features listed in the package
// comment above.
func (v *VM) RestoreSnap(s *Snapshot) RestoreStats {
	if v.cfg.TrackTaint || len(v.cfg.MemFaults) > 0 || v.cfg.CheckpointEvery > 0 || v.cfg.Clock != nil {
		panic("vm: RestoreSnap with taint, memory faults, checkpointing or a global clock")
	}
	stats := v.mem.RestoreSnap(s.mem)
	stats.Bytes += v.table.RestoreSnap(s.table)
	v.regs = append(v.regs[:0], s.regs...)
	v.frames = append(v.frames[:0], s.frames...)
	v.cycles = s.cycles
	v.pushed = s.cycles
	v.sites = s.sites
	v.injCycles = append(v.injCycles[:0], s.injCycles...)
	// The output vector escapes into run results; appending into the
	// run-owned buffer (pre-sized by the State pool's hint) keeps it so.
	v.outputs = append(v.outputs[:0], s.outputs...)
	v.iterations = s.iterations
	v.ticks = s.ticks
	v.qseq = s.qseq
	// Adopt the capture-time interpreter mode (capped by this VM's own
	// eligibility — e.g. its injector may not be able to plan sites) and
	// normalize the restored frames' code arrays to it: the snapshot's
	// frames carry whichever array the captured VM was running. When a
	// clean-mode snapshot lands on a VM that cannot run clean, the
	// snapshot's stale shadow registers must be rebuilt before the full
	// interpreter reads them — toFullMode's reconstruction is exactly
	// that, because a clean capture's primaries are the pristine values.
	v.clean = s.clean
	if v.clean && !v.cleanOK {
		v.toFullMode()
		v.reframe = false
	} else {
		for i := range v.frames {
			v.frames[i].code = v.frames[i].df.codeFor(v.clean)
		}
	}
	return stats
}

// Resume executes a VM forked via RestoreSnap to completion. Error
// semantics match Run.
func (v *VM) Resume() (err error) {
	if len(v.frames) == 0 {
		return fmt.Errorf("vm: Resume without a restored frame stack")
	}
	return v.execute()
}
