package vm

// In-VM checkpoint/rollback makes the paper's recovery story executable:
// the VM snapshots its complete execution state at timestep boundaries
// (IntrinCheckpointT), and — playing the role of a fault detector with a
// one-timestep granularity — rolls back to the previous snapshot when the
// contamination table exceeds a threshold. Because the injector's dynamic
// site pointer is deliberately NOT restored, the re-executed region runs
// fault-free, which is exactly the transient-fault semantics the paper's
// rollback targets: the redone work costs cycles (a PEX-shaped signature)
// but the corrupted state is gone.
//
// The detector here is an oracle (it reads the contamination table, which
// a production system does not have); the paper's §5 models exist
// precisely to estimate this quantity from FPS instead.
//
// Limitations: checkpointing is per-process — rolling back one rank of an
// MPI job would break message lockstep, so this facility is intended for
// single-process runs (coordinated distributed checkpointing is out of
// scope). The naive-taint ablation state is not snapshotted.

type vmSnapshot struct {
	words      []uint64
	brk, sp    int64
	regs       []uint64
	frames     []frame
	sites      uint64
	outputs    int
	iterations int64
	ticks      int64
	table      map[int64]uint64
}

// Rollbacks reports how many checkpoint restorations happened.
func (v *VM) Rollbacks() int { return v.rollbacks }

// takeSnapshot captures the full execution state. The top frame's pc is
// stored pre-incremented so a restored execution resumes at the
// instruction after the checkpoint intrinsic.
func (v *VM) takeSnapshot() {
	s := &vmSnapshot{
		brk:        v.mem.brk,
		sp:         v.mem.sp,
		sites:      v.sites,
		outputs:    len(v.outputs),
		iterations: v.iterations,
		ticks:      v.ticks,
	}
	s.words = append(s.words[:0], v.mem.words...)
	s.regs = append(s.regs[:0], v.regs...)
	// Frame structs copy by value; their retRegs slices are never mutated
	// after emission, so sharing them is safe.
	s.frames = append(s.frames[:0], v.frames...)
	s.frames[len(s.frames)-1].pc++
	s.table = make(map[int64]uint64, v.table.Len())
	for _, addr := range v.table.Addresses() {
		pv, _ := v.table.Pristine(addr)
		s.table[addr] = pv
	}
	v.snap = s
}

// restoreSnapshot rewinds the VM to the last snapshot. Application cycles
// are NOT rewound: re-executed work costs time, exactly as a real rollback
// does. The injector's site counter is not rewound either, so a transient
// fault does not re-fire during replay.
func (v *VM) restoreSnapshot() {
	s := v.snap
	copy(v.mem.words, s.words)
	// The bulk copy bypasses the dirty bitmap; drop any delta-restore base
	// so a later fork restore cannot trust a stale one. (Checkpointed runs
	// are never forked — this is defense in depth.)
	v.mem.invalidateBase()
	v.mem.brk = s.brk
	v.mem.sp = s.sp
	v.regs = append(v.regs[:0], s.regs...)
	v.frames = append(v.frames[:0], s.frames...)
	v.outputs = v.outputs[:s.outputs]
	v.iterations = s.iterations
	v.ticks = s.ticks
	// Rebuild the table in place from the snapshot. The contamination
	// happened even though it was undone: keep the historical peak and
	// ever-contaminated flags.
	peak, ever := v.table.Peak(), v.table.Ever()
	v.table.Reset()
	for addr, pv := range s.table {
		v.table.Record(addr, pv)
	}
	v.table.CarryHistory(peak, ever)
	v.rollbacks++
	v.restored = true
	if v.cfg.Tracer != nil {
		v.cfg.Tracer.OnCMLChange(v.cycles, v.globalTime(), v.table.Len())
	}
}

// checkpointTick runs the rollback policy and snapshotting at a timestep
// boundary. Returns true when execution state was replaced and the
// interpreter must refetch its frame.
func (v *VM) checkpointTick() bool {
	if v.cfg.CheckpointEvery <= 0 {
		return false
	}
	if v.cfg.RollbackCML > 0 && v.snap != nil && v.table.Len() >= v.cfg.RollbackCML {
		v.restoreSnapshot()
		return true
	}
	if v.ticks%v.cfg.CheckpointEvery == 0 {
		v.takeSnapshot()
	}
	return false
}
