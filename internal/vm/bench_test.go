package vm

import (
	"testing"

	"repro/internal/ir"
)

// Interpreter throughput benchmarks, per instruction class.

func benchLoop(b *testing.B, emit func(f *ir.FuncBuilder)) {
	bld := ir.NewBuilder()
	bld.Global("g", 64)
	f := bld.Func("main", 0, 0)
	i := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(int64(b.N)), func() { emit(f) })
	f.Ret()
	prog := bld.MustBuild()
	b.ResetTimer()
	v := New(prog, Config{})
	if err := v.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkInterpIntegerALU(b *testing.B) {
	benchLoop(b, func(f *ir.FuncBuilder) {
		x := f.Add(ir.ImmI(3), ir.ImmI(4))
		y := f.Mul(ir.R(x), ir.ImmI(5))
		f.Xor(ir.R(y), ir.R(x))
	})
}

func BenchmarkInterpFloatALU(b *testing.B) {
	benchLoop(b, func(f *ir.FuncBuilder) {
		x := f.FAdd(ir.ImmF(1.5), ir.ImmF(2.5))
		y := f.FMul(ir.R(x), ir.ImmF(0.5))
		f.FDiv(ir.R(y), ir.ImmF(3))
	})
}

func BenchmarkInterpLoadStore(b *testing.B) {
	benchLoop(b, func(f *ir.FuncBuilder) {
		v := f.Load(ir.ImmI(1))
		f.Store(ir.R(v), ir.ImmI(2))
	})
}

func BenchmarkInterpCallReturn(b *testing.B) {
	bld := ir.NewBuilder()
	callee := bld.Func("id", 1, 1)
	callee.Ret(ir.R(callee.Param(0)))
	f := bld.Func("main", 0, 0)
	i := f.NewReg()
	r := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(int64(b.N)), func() {
		f.Call("id", []ir.Reg{r}, ir.R(i))
	})
	f.Ret()
	bld.SetEntry("main")
	prog := bld.MustBuild()
	b.ResetTimer()
	v := New(prog, Config{})
	if err := v.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkInterpInstrumentedOverhead measures the wall-time cost of the
// dual-chain instrumentation relative to the plain program (the virtual
// cycle count is identical by design; real time is not).
func BenchmarkInterpInstrumentedOverhead(b *testing.B) {
	bld := ir.NewBuilder()
	g := bld.Global("g", 64)
	f := bld.Func("main", 0, 0)
	i := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(int64(b.N)), func() {
		idx := f.And(ir.R(i), ir.ImmI(63))
		v := f.Ld(ir.ImmI(g), ir.R(idx))
		f.St(ir.R(f.FAdd(ir.R(v), ir.ImmF(1))), ir.ImmI(g), ir.R(idx))
	})
	f.Ret()
	prog := bld.MustBuild()
	b.ResetTimer()
	v := New(prog, Config{})
	if err := v.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkInterpDeepRecursion exercises the call path at depth: each
// iteration makes a 4000-deep recursive descent (just under the VM's
// 4096-frame limit), growing the register file and frame stack far past
// their initial sizes. It guards the pushFrame
// growth fix (one amortized-doubling grow + a single memclr of the callee
// window) and keeps the flat per-call overhead visible in CI.
func BenchmarkInterpDeepRecursion(b *testing.B) {
	const depth = 4000
	bld := ir.NewBuilder()
	down := bld.Func("down", 1, 1)
	n := down.Param(0)
	base := down.NewLabel()
	cond := down.ICmp(ir.ICmpSLT, ir.R(n), ir.ImmI(1))
	down.Bnz(ir.R(cond), base)
	sub := down.Sub(ir.R(n), ir.ImmI(1))
	rec := down.NewReg()
	down.Call("down", []ir.Reg{rec}, ir.R(sub))
	sum := down.Add(ir.R(rec), ir.ImmI(1))
	down.Ret(ir.R(sum))
	down.Bind(base)
	down.Ret(ir.ImmI(0))
	f := bld.Func("main", 0, 0)
	i := f.NewReg()
	r := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(int64(b.N)), func() {
		f.Call("down", []ir.Reg{r}, ir.ImmI(depth))
	})
	f.Ret()
	bld.SetEntry("main")
	prog := bld.MustBuild()
	b.ResetTimer()
	v := New(prog, Config{})
	if err := v.Run(); err != nil {
		b.Fatal(err)
	}
}
