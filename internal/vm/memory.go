package vm

// Memory is the word-addressed address space of one simulated process.
//
// Layout (word addresses):
//
//	0                     null word (traps)
//	[1, 1+globalWords)    global data segment
//	[globalEnd, brk)      heap (bump allocated, grows up)
//	[sp, size)            stack (grows down; frames carved by calls)
//
// The heap and stack trap when they would collide. "Application memory
// state" for contamination percentages (paper Fig. 7f) is the allocated
// extent: globals plus heap, the segments that hold application data
// structures.
type Memory struct {
	words     []uint64
	globalEnd int64
	brk       int64 // heap break (next free heap word)
	sp        int64 // stack pointer (lowest in-use stack word)
}

// NewMemory builds an address space of size words with the given global
// segment extent. The global segment begins at address 1.
func NewMemory(size, globalWords int64) *Memory {
	if size < globalWords+64 {
		size = globalWords + 64
	}
	m := &Memory{
		words:     make([]uint64, size),
		globalEnd: 1 + globalWords,
		sp:        size,
	}
	m.brk = m.globalEnd
	return m
}

// Size returns the total address-space size in words.
func (m *Memory) Size() int64 { return int64(len(m.words)) }

// AllocatedWords returns the extent of application data (globals + heap),
// the denominator for contamination percentages.
func (m *Memory) AllocatedWords() int64 { return m.brk - 1 }

// HeapUsed returns the number of heap words allocated so far.
func (m *Memory) HeapUsed() int64 { return m.brk - m.globalEnd }

// InBounds reports whether addr names an accessible word.
func (m *Memory) InBounds(addr int64) bool {
	return addr >= 1 && addr < int64(len(m.words))
}

// Read returns the word at addr; ok is false when the access traps.
func (m *Memory) Read(addr int64) (uint64, bool) {
	if !m.InBounds(addr) {
		return 0, false
	}
	return m.words[addr], true
}

// Write stores the word at addr; ok is false when the access traps.
func (m *Memory) Write(addr int64, v uint64) bool {
	if !m.InBounds(addr) {
		return false
	}
	m.words[addr] = v
	return true
}

// Alloc bump-allocates n words on the heap and returns the base address;
// ok is false when the heap would meet the stack.
func (m *Memory) Alloc(n int64) (int64, bool) {
	if n < 0 || m.brk+n > m.sp {
		return 0, false
	}
	base := m.brk
	m.brk += n
	return base, true
}

// PushFrame reserves n stack words and returns the new frame base; ok is
// false on stack overflow.
func (m *Memory) PushFrame(n int64) (int64, bool) {
	if n < 0 || m.sp-n < m.brk {
		return 0, false
	}
	m.sp -= n
	// Stack frames are reused across calls; clear to keep runs
	// deterministic regardless of earlier frame contents.
	for i := m.sp; i < m.sp+n; i++ {
		m.words[i] = 0
	}
	return m.sp, true
}

// PopFrame releases n stack words.
func (m *Memory) PopFrame(n int64) { m.sp += n }

// CopyOut copies count words starting at base into a new slice; ok is false
// when the range is not fully in bounds.
func (m *Memory) CopyOut(base, count int64) ([]uint64, bool) {
	if count < 0 || !m.InBounds(base) || (count > 0 && !m.InBounds(base+count-1)) {
		return nil, false
	}
	out := make([]uint64, count)
	copy(out, m.words[base:base+count])
	return out, true
}

// CopyIn writes the words at base; ok is false when the range is not fully
// in bounds.
func (m *Memory) CopyIn(base int64, data []uint64) bool {
	count := int64(len(data))
	if !m.InBounds(base) || (count > 0 && !m.InBounds(base+count-1)) {
		return false
	}
	copy(m.words[base:base+count], data)
	return true
}

// InitGlobals installs initial global contents (used once before a run).
func (m *Memory) InitGlobals(base int64, data []uint64) bool { return m.CopyIn(base, data) }
