package vm

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/fpm"
)

// Restore granularity. One dirty bit covers a block of 64 words (512
// bytes): fine enough that a short forked suffix dirties a small
// fraction of the footprint, coarse enough that the bitmap for an 8 MiB
// address space is 16 KiB and the store-path cost is one shift+or.
const (
	blockShift = 6                        // log2 words per block
	blockWords = 1 << blockShift          // words per dirty block
	dirtyShift = blockShift + 6           // log2 words covered by one bitmap word
	maxDeltaChainHops = 64                // bound on snapshot-chain walks
)

// dirtyWords returns the bitmap length (in uint64 words) covering a
// size-word address space.
func dirtyWords(size int64) int { return int(uint64(size-1)>>dirtyShift) + 1 }

// totalBlocks returns the number of dirty-trackable blocks in a
// size-word address space.
func totalBlocks(size int64) int { return int((size + blockWords - 1) >> blockShift) }

// memGen hands out process-unique snapshot generations. A generation is
// never reused, so a recycled *MemSnap whose backing was recaptured is
// always detected by a gen mismatch rather than trusted as a stale base.
var memGen atomic.Uint64

// fullCopyRestore forces the full-copy restore path when set. The zero
// value — delta restores enabled — is the default; benches and the
// differential tests flip it to compare the two paths.
var fullCopyRestore atomic.Bool

// SetDeltaRestore toggles block-granular delta restores for memory and
// contamination tables (default on). Full-copy restore remains the
// fallback either way; the toggle exists so benches and CI can measure
// and differentially test both paths.
func SetDeltaRestore(on bool) {
	fullCopyRestore.Store(!on)
	fpm.SetDeltaRestore(on)
}

// DeltaRestoreEnabled reports whether delta restores are enabled.
func DeltaRestoreEnabled() bool { return !fullCopyRestore.Load() }

// RestoreStats summarizes one restore: how many bytes were copied back
// from the snapshot and what fraction of the address-space blocks were
// dirty. Full-copy restores report every live block dirty.
type RestoreStats struct {
	Bytes       int64 // bytes written while restoring
	DirtyBlocks int   // blocks restored
	TotalBlocks int   // blocks in the address space
	Delta       bool  // delta path taken (false: full copy)
}

// Memory is the word-addressed address space of one simulated process.
//
// Layout (word addresses):
//
//	0                     null word (traps)
//	[1, 1+globalWords)    global data segment
//	[globalEnd, brk)      heap (bump allocated, grows up)
//	[sp, size)            stack (grows down; frames carved by calls)
//
// The heap and stack trap when they would collide. "Application memory
// state" for contamination percentages (paper Fig. 7f) is the allocated
// extent: globals plus heap, the segments that hold application data
// structures.
type Memory struct {
	words     []uint64
	globalEnd int64
	brk       int64 // heap break (next free heap word)
	sp        int64 // stack pointer (lowest in-use stack word)

	// Write watermarks, so Reset zeroes only the segments a run actually
	// touched instead of the whole address space. Writes below the stack
	// pointer (globals + heap + wild addresses) raise loHi; writes at or
	// above it (stack frames) lower hiLo. Both are monotone within a run:
	// after PopFrame a stale frame word sits below the new sp, but it was
	// at or above sp when written, so hiLo still covers it.
	loHi int64 // exclusive upper bound of dirty low-segment words
	hiLo int64 // inclusive lower bound of dirty stack-segment words

	// Delta-restore state. dirty has one bit per blockWords-sized block,
	// set before (well, as) any write to that block lands; it records
	// exactly the blocks that may differ from base. base/baseGen name the
	// snapshot this memory last equalled (just after Snapshot or
	// RestoreSnap); the base is trusted only while base.gen == baseGen,
	// so recapturing a pooled snapshot elsewhere invalidates it.
	dirty   []uint64
	scratch []uint64 // union-bitmap scratch for delta restores
	base    *MemSnap
	baseGen uint64
}

// NewMemory builds an address space of size words with the given global
// segment extent. The global segment begins at address 1.
func NewMemory(size, globalWords int64) *Memory {
	if size < globalWords+64 {
		size = globalWords + 64
	}
	m := &Memory{
		words:     make([]uint64, size),
		dirty:     make([]uint64, dirtyWords(size)),
		globalEnd: 1 + globalWords,
		sp:        size,
		loHi:      1,
		hiLo:      size,
	}
	m.brk = m.globalEnd
	return m
}

// Reset rewinds the address space to its NewMemory(size, globalWords) state
// so one allocation serves many runs. Only the watermarked dirty segments
// are zeroed; an untouched 8 MiB address space costs nothing to recycle.
func (m *Memory) Reset(size, globalWords int64) {
	if size < globalWords+64 {
		size = globalWords + 64
	}
	if int64(len(m.words)) != size {
		m.words = make([]uint64, size)
		m.dirty = make([]uint64, dirtyWords(size))
	} else {
		if m.loHi > 1 {
			clear(m.words[1:m.loHi])
		}
		if m.hiLo < size {
			clear(m.words[m.hiLo:])
		}
	}
	m.globalEnd = 1 + globalWords
	m.brk = m.globalEnd
	m.sp = size
	m.loHi = 1
	m.hiLo = size
	// The bitmap only means "dirty since base"; with no base it may hold
	// garbage, and both Snapshot and a full RestoreSnap clear it before
	// establishing one.
	m.base, m.baseGen = nil, 0
}

// invalidateBase drops the delta-restore base, forcing the next
// RestoreSnap onto the full-copy path. Called by every mutation that
// bypasses the dirty bitmap (checkpoint rollback).
func (m *Memory) invalidateBase() { m.base, m.baseGen = nil, 0 }

func (m *Memory) baseValid() bool {
	return m.base != nil && m.baseGen != 0 && m.base.gen == m.baseGen
}

// markRange sets the dirty bits covering words [base, base+count).
func (m *Memory) markRange(base, count int64) {
	if count <= 0 {
		return
	}
	first := uint64(base) >> blockShift
	last := uint64(base+count-1) >> blockShift
	for blk := first; blk <= last; blk++ {
		m.dirty[blk>>6] |= 1 << (blk & 63)
	}
}

// Size returns the total address-space size in words.
func (m *Memory) Size() int64 { return int64(len(m.words)) }

// AllocatedWords returns the extent of application data (globals + heap),
// the denominator for contamination percentages.
func (m *Memory) AllocatedWords() int64 { return m.brk - 1 }

// HeapUsed returns the number of heap words allocated so far.
func (m *Memory) HeapUsed() int64 { return m.brk - m.globalEnd }

// InBounds reports whether addr names an accessible word.
func (m *Memory) InBounds(addr int64) bool {
	return addr >= 1 && addr < int64(len(m.words))
}

// Read returns the word at addr; ok is false when the access traps.
func (m *Memory) Read(addr int64) (uint64, bool) {
	if !m.InBounds(addr) {
		return 0, false
	}
	return m.words[addr], true
}

// Write stores the word at addr; ok is false when the access traps.
func (m *Memory) Write(addr int64, v uint64) bool {
	if !m.InBounds(addr) {
		return false
	}
	m.words[addr] = v
	m.dirty[uint64(addr)>>dirtyShift] |= 1 << ((uint64(addr) >> blockShift) & 63)
	if addr >= m.sp {
		if addr < m.hiLo {
			m.hiLo = addr
		}
	} else if addr >= m.loHi {
		m.loHi = addr + 1
	}
	return true
}

// Alloc bump-allocates n words on the heap and returns the base address;
// ok is false when the heap would meet the stack.
func (m *Memory) Alloc(n int64) (int64, bool) {
	if n < 0 || m.brk+n > m.sp {
		return 0, false
	}
	base := m.brk
	m.brk += n
	return base, true
}

// PushFrame reserves n stack words and returns the new frame base; ok is
// false on stack overflow.
func (m *Memory) PushFrame(n int64) (int64, bool) {
	if n < 0 || m.sp-n < m.brk {
		return 0, false
	}
	m.sp -= n
	// Stack frames are reused across calls; clear to keep runs
	// deterministic regardless of earlier frame contents. The clear is a
	// write like any other and must reach the dirty bitmap.
	clear(m.words[m.sp : m.sp+n])
	m.markRange(m.sp, n)
	return m.sp, true
}

// PopFrame releases n stack words.
func (m *Memory) PopFrame(n int64) { m.sp += n }

// Words returns a read-only view of [base, base+count); ok is false when
// the range is not fully in bounds. The view aliases the address space —
// it is invalidated by the next write, so callers must fully consume or
// copy it before resuming execution.
func (m *Memory) Words(base, count int64) ([]uint64, bool) {
	if count < 0 || !m.InBounds(base) || (count > 0 && !m.InBounds(base+count-1)) {
		return nil, false
	}
	return m.words[base : base+count], true
}

// CopyOut copies count words starting at base into a new slice; ok is false
// when the range is not fully in bounds.
func (m *Memory) CopyOut(base, count int64) ([]uint64, bool) {
	if count < 0 || !m.InBounds(base) || (count > 0 && !m.InBounds(base+count-1)) {
		return nil, false
	}
	out := make([]uint64, count)
	copy(out, m.words[base:base+count])
	return out, true
}

// CopyIn writes the words at base; ok is false when the range is not fully
// in bounds.
func (m *Memory) CopyIn(base int64, data []uint64) bool {
	count := int64(len(data))
	if !m.InBounds(base) || (count > 0 && !m.InBounds(base+count-1)) {
		return false
	}
	copy(m.words[base:base+count], data)
	m.markRange(base, count)
	if base >= m.sp {
		if base < m.hiLo {
			m.hiLo = base
		}
	} else if base+count > m.loHi {
		// A range crossing into the stack segment is fully covered by the
		// low watermark; Reset zeroes [1, loHi) regardless of sp.
		m.loHi = base + count
	}
	return true
}

// InitGlobals installs initial global contents (used once before a run).
func (m *Memory) InitGlobals(base int64, data []uint64) bool { return m.CopyIn(base, data) }

// MemSnap is a watermark-bounded copy of an address space: only the dirty
// low segment (globals + heap + wild writes) and the dirty stack segment
// are copied, so the cost of a snapshot scales with the memory a run
// actually touched, not with the 8 MiB address-space size. Everything
// outside those two segments is zero by the Memory invariant, which is what
// makes restoring from the two segments exact.
type MemSnap struct {
	lo        []uint64 // words [1, loHi)
	hi        []uint64 // words [hiLo, size)
	size      int64
	globalEnd int64
	brk, sp   int64
	loHi      int64
	hiLo      int64

	// Chain link for delta restores. When this snapshot was captured from
	// a memory whose content was last equal to another snapshot (the
	// usual case during a multi-cut golden capture run), sincePrev is the
	// dirty bitmap accumulated between that snapshot and this one, and
	// prev/prevGen name it. RestoreSnap can then move the memory between
	// any two snapshots on one chain by copying only the union of the
	// per-hop bitmaps. gen is process-unique; a prev whose gen no longer
	// matches prevGen was recaptured and the chain is treated as broken.
	gen       uint64
	prev      *MemSnap
	prevGen   uint64
	sincePrev []uint64
}

// Snapshot captures the address space into s (reusing s's backing when
// possible; nil allocates). Later writes to the memory never alias the
// snapshot.
func (m *Memory) Snapshot(s *MemSnap) *MemSnap {
	if s == nil {
		s = &MemSnap{}
	}
	s.lo = append(s.lo[:0], m.words[1:m.loHi]...)
	s.hi = append(s.hi[:0], m.words[m.hiLo:]...)
	s.size = int64(len(m.words))
	s.globalEnd = m.globalEnd
	s.brk = m.brk
	s.sp = m.sp
	s.loHi = m.loHi
	s.hiLo = m.hiLo
	if m.baseValid() && m.base != s {
		// Link into the base's chain: the live bitmap is exactly the set
		// of blocks on which this snapshot may differ from the base.
		s.prev = m.base
		s.prevGen = m.baseGen
		s.sincePrev = append(s.sincePrev[:0], m.dirty...)
	} else {
		s.prev = nil
		s.prevGen = 0
		s.sincePrev = s.sincePrev[:0]
	}
	s.gen = memGen.Add(1)
	// The memory now equals s word for word; future writes are dirt
	// relative to it.
	m.base, m.baseGen = s, s.gen
	clear(m.dirty)
	return s
}

// RestoreSnap rewinds the address space to the snapshotted state and
// reports what the restore cost. When the memory's last-known-equal base
// snapshot sits on the same chain as s, only the union of blocks dirtied
// between the two states is copied back (delta path); otherwise — first
// restore, size change, broken chain, or delta restores disabled — the
// full-copy path runs. Either way the result equals the snapshotted
// memory word for word and the snapshot stays reusable across any number
// of restores.
func (m *Memory) RestoreSnap(s *MemSnap) RestoreStats {
	if DeltaRestoreEnabled() && int64(len(m.words)) == s.size && m.baseValid() {
		if un, ok := m.deltaUnion(s); ok {
			return m.restoreDelta(s, un)
		}
	}
	if int64(len(m.words)) != s.size {
		m.words = make([]uint64, s.size)
		m.dirty = make([]uint64, dirtyWords(s.size))
	} else {
		if m.loHi > 1 {
			clear(m.words[1:m.loHi])
		}
		if m.hiLo < int64(len(m.words)) {
			clear(m.words[m.hiLo:])
		}
	}
	copy(m.words[1:], s.lo)
	copy(m.words[s.hiLo:], s.hi)
	m.globalEnd = s.globalEnd
	m.brk = s.brk
	m.sp = s.sp
	m.loHi = s.loHi
	m.hiLo = s.hiLo
	clear(m.dirty)
	m.base, m.baseGen = s, s.gen
	total := totalBlocks(s.size)
	return RestoreStats{
		Bytes:       int64(len(s.lo)+len(s.hi)) * 8,
		DirtyBlocks: total,
		TotalBlocks: total,
	}
}

// deltaUnion assembles into m.scratch the union of every block that may
// differ between the live memory and snapshot s: the live dirty bitmap
// plus the per-hop sincePrev bitmaps along the chain between s and the
// base, walked from the younger snapshot down to the older. ok is false
// when the two are not connected by an intact chain.
func (m *Memory) deltaUnion(s *MemSnap) ([]uint64, bool) {
	nd := len(m.dirty)
	un := m.scratch
	if cap(un) < nd {
		un = make([]uint64, nd)
		m.scratch = un
	} else {
		un = un[:nd]
	}
	copy(un, m.dirty)
	from, to := s, m.base
	if from == to {
		return un, true
	}
	if from.gen < to.gen {
		from, to = to, from
	}
	for hops := 0; from != to; hops++ {
		p := from.prev
		if hops >= maxDeltaChainHops || p == nil || p.gen != from.prevGen ||
			p.gen < to.gen || len(from.sincePrev) != nd {
			return nil, false
		}
		for i, w := range from.sincePrev {
			un[i] |= w
		}
		from = p
	}
	return un, true
}

// restoreDelta rewrites exactly the blocks named by the union bitmap
// with their content under snapshot s. Per the Memory invariant a word
// of s is s.lo[addr-1] for addr in [1, s.loHi), s.hi[addr-s.hiLo] for
// addr in [s.hiLo, size), and zero in between — so each dirty block is
// reconstructed from up to three subranges.
func (m *Memory) restoreDelta(s *MemSnap, un []uint64) RestoreStats {
	size := s.size
	var blocks int
	var bytes int64
	for wi, w := range un {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			w &^= 1 << bit
			start := (int64(wi)<<6 | int64(bit)) << blockShift
			if start >= size {
				continue
			}
			end := min(start+blockWords, size)
			if a, b := max(start, 1), min(end, s.loHi); a < b {
				copy(m.words[a:b], s.lo[a-1:b-1])
			}
			if a, b := max(start, s.loHi), min(end, s.hiLo); a < b {
				clear(m.words[a:b])
			}
			if a, b := max(start, s.hiLo), end; a < b {
				copy(m.words[a:b], s.hi[a-s.hiLo:b-s.hiLo])
			}
			blocks++
			bytes += (end - start) * 8
		}
	}
	m.globalEnd = s.globalEnd
	m.brk = s.brk
	m.sp = s.sp
	m.loHi = s.loHi
	m.hiLo = s.hiLo
	clear(m.dirty)
	m.base, m.baseGen = s, s.gen
	return RestoreStats{Bytes: bytes, DirtyBlocks: blocks, TotalBlocks: totalBlocks(size), Delta: true}
}
