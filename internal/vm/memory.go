package vm

// Memory is the word-addressed address space of one simulated process.
//
// Layout (word addresses):
//
//	0                     null word (traps)
//	[1, 1+globalWords)    global data segment
//	[globalEnd, brk)      heap (bump allocated, grows up)
//	[sp, size)            stack (grows down; frames carved by calls)
//
// The heap and stack trap when they would collide. "Application memory
// state" for contamination percentages (paper Fig. 7f) is the allocated
// extent: globals plus heap, the segments that hold application data
// structures.
type Memory struct {
	words     []uint64
	globalEnd int64
	brk       int64 // heap break (next free heap word)
	sp        int64 // stack pointer (lowest in-use stack word)

	// Write watermarks, so Reset zeroes only the segments a run actually
	// touched instead of the whole address space. Writes below the stack
	// pointer (globals + heap + wild addresses) raise loHi; writes at or
	// above it (stack frames) lower hiLo. Both are monotone within a run:
	// after PopFrame a stale frame word sits below the new sp, but it was
	// at or above sp when written, so hiLo still covers it.
	loHi int64 // exclusive upper bound of dirty low-segment words
	hiLo int64 // inclusive lower bound of dirty stack-segment words
}

// NewMemory builds an address space of size words with the given global
// segment extent. The global segment begins at address 1.
func NewMemory(size, globalWords int64) *Memory {
	if size < globalWords+64 {
		size = globalWords + 64
	}
	m := &Memory{
		words:     make([]uint64, size),
		globalEnd: 1 + globalWords,
		sp:        size,
		loHi:      1,
		hiLo:      size,
	}
	m.brk = m.globalEnd
	return m
}

// Reset rewinds the address space to its NewMemory(size, globalWords) state
// so one allocation serves many runs. Only the watermarked dirty segments
// are zeroed; an untouched 8 MiB address space costs nothing to recycle.
func (m *Memory) Reset(size, globalWords int64) {
	if size < globalWords+64 {
		size = globalWords + 64
	}
	if int64(len(m.words)) != size {
		m.words = make([]uint64, size)
	} else {
		if m.loHi > 1 {
			clear(m.words[1:m.loHi])
		}
		if m.hiLo < size {
			clear(m.words[m.hiLo:])
		}
	}
	m.globalEnd = 1 + globalWords
	m.brk = m.globalEnd
	m.sp = size
	m.loHi = 1
	m.hiLo = size
}

// Size returns the total address-space size in words.
func (m *Memory) Size() int64 { return int64(len(m.words)) }

// AllocatedWords returns the extent of application data (globals + heap),
// the denominator for contamination percentages.
func (m *Memory) AllocatedWords() int64 { return m.brk - 1 }

// HeapUsed returns the number of heap words allocated so far.
func (m *Memory) HeapUsed() int64 { return m.brk - m.globalEnd }

// InBounds reports whether addr names an accessible word.
func (m *Memory) InBounds(addr int64) bool {
	return addr >= 1 && addr < int64(len(m.words))
}

// Read returns the word at addr; ok is false when the access traps.
func (m *Memory) Read(addr int64) (uint64, bool) {
	if !m.InBounds(addr) {
		return 0, false
	}
	return m.words[addr], true
}

// Write stores the word at addr; ok is false when the access traps.
func (m *Memory) Write(addr int64, v uint64) bool {
	if !m.InBounds(addr) {
		return false
	}
	m.words[addr] = v
	if addr >= m.sp {
		if addr < m.hiLo {
			m.hiLo = addr
		}
	} else if addr >= m.loHi {
		m.loHi = addr + 1
	}
	return true
}

// Alloc bump-allocates n words on the heap and returns the base address;
// ok is false when the heap would meet the stack.
func (m *Memory) Alloc(n int64) (int64, bool) {
	if n < 0 || m.brk+n > m.sp {
		return 0, false
	}
	base := m.brk
	m.brk += n
	return base, true
}

// PushFrame reserves n stack words and returns the new frame base; ok is
// false on stack overflow.
func (m *Memory) PushFrame(n int64) (int64, bool) {
	if n < 0 || m.sp-n < m.brk {
		return 0, false
	}
	m.sp -= n
	// Stack frames are reused across calls; clear to keep runs
	// deterministic regardless of earlier frame contents.
	clear(m.words[m.sp : m.sp+n])
	return m.sp, true
}

// PopFrame releases n stack words.
func (m *Memory) PopFrame(n int64) { m.sp += n }

// Words returns a read-only view of [base, base+count); ok is false when
// the range is not fully in bounds. The view aliases the address space —
// it is invalidated by the next write, so callers must fully consume or
// copy it before resuming execution.
func (m *Memory) Words(base, count int64) ([]uint64, bool) {
	if count < 0 || !m.InBounds(base) || (count > 0 && !m.InBounds(base+count-1)) {
		return nil, false
	}
	return m.words[base : base+count], true
}

// CopyOut copies count words starting at base into a new slice; ok is false
// when the range is not fully in bounds.
func (m *Memory) CopyOut(base, count int64) ([]uint64, bool) {
	if count < 0 || !m.InBounds(base) || (count > 0 && !m.InBounds(base+count-1)) {
		return nil, false
	}
	out := make([]uint64, count)
	copy(out, m.words[base:base+count])
	return out, true
}

// CopyIn writes the words at base; ok is false when the range is not fully
// in bounds.
func (m *Memory) CopyIn(base int64, data []uint64) bool {
	count := int64(len(data))
	if !m.InBounds(base) || (count > 0 && !m.InBounds(base+count-1)) {
		return false
	}
	copy(m.words[base:base+count], data)
	if base >= m.sp {
		if base < m.hiLo {
			m.hiLo = base
		}
	} else if base+count > m.loHi {
		// A range crossing into the stack segment is fully covered by the
		// low watermark; Reset zeroes [1, loHi) regardless of sp.
		m.loHi = base + count
	}
	return true
}

// InitGlobals installs initial global contents (used once before a run).
func (m *Memory) InitGlobals(base int64, data []uint64) bool { return m.CopyIn(base, data) }

// MemSnap is a watermark-bounded copy of an address space: only the dirty
// low segment (globals + heap + wild writes) and the dirty stack segment
// are copied, so the cost of a snapshot scales with the memory a run
// actually touched, not with the 8 MiB address-space size. Everything
// outside those two segments is zero by the Memory invariant, which is what
// makes restoring from the two segments exact.
type MemSnap struct {
	lo        []uint64 // words [1, loHi)
	hi        []uint64 // words [hiLo, size)
	size      int64
	globalEnd int64
	brk, sp   int64
	loHi      int64
	hiLo      int64
}

// Snapshot captures the address space into s (reusing s's backing when
// possible; nil allocates). Later writes to the memory never alias the
// snapshot.
func (m *Memory) Snapshot(s *MemSnap) *MemSnap {
	if s == nil {
		s = &MemSnap{}
	}
	s.lo = append(s.lo[:0], m.words[1:m.loHi]...)
	s.hi = append(s.hi[:0], m.words[m.hiLo:]...)
	s.size = int64(len(m.words))
	s.globalEnd = m.globalEnd
	s.brk = m.brk
	s.sp = m.sp
	s.loHi = m.loHi
	s.hiLo = m.hiLo
	return s
}

// RestoreSnap rewinds the address space to the snapshotted state. The
// receiver may hold the dirt of an unrelated run: its own dirty segments
// are cleared first, then the snapshot segments are copied in, so the
// result equals the snapshotted memory word for word. The snapshot is
// reusable across any number of restores.
func (m *Memory) RestoreSnap(s *MemSnap) {
	if int64(len(m.words)) != s.size {
		m.words = make([]uint64, s.size)
	} else {
		if m.loHi > 1 {
			clear(m.words[1:m.loHi])
		}
		if m.hiLo < int64(len(m.words)) {
			clear(m.words[m.hiLo:])
		}
	}
	copy(m.words[1:], s.lo)
	copy(m.words[s.hiLo:], s.hi)
	m.globalEnd = s.globalEnd
	m.brk = s.brk
	m.sp = s.sp
	m.loHi = s.loHi
	m.hiLo = s.hiLo
}
