package vm

import (
	"errors"
	"math"
	"testing"

	"repro/internal/fpm"
	"repro/internal/ir"
)

// fakeEndpoint is a single-process MPI endpoint with scripted behavior,
// for exercising the VM's MPI intrinsic paths without a real job.
type fakeEndpoint struct {
	rank, size int
	sent       []struct {
		dst, tag int
		msg      []byte
	}
	recvQueue [][]byte
	recvErr   error
	sendErr   error
	bcastMsg  []byte

	allreduceFn func(prim, prist []uint64, op ir.ReduceOp, isFloat bool) ([]uint64, []uint64, error)
}

func (f *fakeEndpoint) Rank() int { return f.rank }
func (f *fakeEndpoint) Size() int { return f.size }

func (f *fakeEndpoint) Send(dst, tag int, msg []byte) error {
	if f.sendErr != nil {
		return f.sendErr
	}
	f.sent = append(f.sent, struct {
		dst, tag int
		msg      []byte
	}{dst, tag, msg})
	return nil
}

func (f *fakeEndpoint) Recv(src, tag int) ([]byte, error) {
	if f.recvErr != nil {
		return nil, f.recvErr
	}
	if len(f.recvQueue) == 0 {
		return nil, errors.New("fake: no message")
	}
	m := f.recvQueue[0]
	f.recvQueue = f.recvQueue[1:]
	return m, nil
}

func (f *fakeEndpoint) Allreduce(prim, prist []uint64, op ir.ReduceOp, isFloat bool) ([]uint64, []uint64, error) {
	if f.allreduceFn != nil {
		return f.allreduceFn(prim, prist, op, isFloat)
	}
	return prim, prist, nil
}

func (f *fakeEndpoint) Barrier() error { return nil }

func (f *fakeEndpoint) Bcast(root int, msg []byte) ([]byte, error) {
	if msg != nil {
		return msg, nil
	}
	return f.bcastMsg, nil
}

func (f *fakeEndpoint) Abort(code int64) {}

func TestMPISendCollectsContamination(t *testing.T) {
	b := ir.NewBuilder()
	buf := b.Global("buf", 4)
	b.GlobalInit("buf", []uint64{10, 20, 30, 40})
	f := b.Func("main", 0, 0)
	f.MPISend(ir.ImmI(buf), ir.ImmI(4), ir.ImmI(1), ir.ImmI(7))
	f.Ret()
	ep := &fakeEndpoint{rank: 0, size: 2}
	v := New(b.MustBuild(), Config{MPI: ep})
	// Pre-contaminate word 2 of the buffer.
	v.Table().Record(int64(buf)+2, 99)
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ep.sent) != 1 || ep.sent[0].dst != 1 || ep.sent[0].tag != 7 {
		t.Fatalf("sent = %+v", ep.sent)
	}
	payload, recs, err := fpm.DecodeMessage(ep.sent[0].msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 4 || payload[2] != 30 {
		t.Errorf("payload = %v", payload)
	}
	if len(recs) != 1 || recs[0].Displacement != 2 || recs[0].Pristine != 99 {
		t.Errorf("records = %v", recs)
	}
}

func TestMPIRecvInstallsContamination(t *testing.T) {
	b := ir.NewBuilder()
	buf := b.Global("buf", 3)
	f := b.Func("main", 0, 0)
	f.MPIRecv(ir.ImmI(buf), ir.ImmI(3), ir.ImmI(1), ir.ImmI(0))
	f.OutputF(ir.R(f.Ld(ir.ImmI(buf), ir.ImmI(1))))
	f.Ret()
	msg := fpm.EncodeMessage(
		[]uint64{fbits(1), fbits(2), fbits(3)},
		[]fpm.MsgRecord{{Displacement: 1, Pristine: fbits(9)}},
	)
	ep := &fakeEndpoint{rank: 0, size: 2, recvQueue: [][]byte{msg}}
	v := New(b.MustBuild(), Config{MPI: ep})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Outputs()[0] != 2 {
		t.Errorf("received value = %v", v.Outputs()[0])
	}
	pv, ok := v.Table().Pristine(int64(buf) + 1)
	if !ok || math.Float64frombits(pv) != 9 {
		t.Errorf("contamination not installed: %v %v", pv, ok)
	}
}

func TestMPIRecvSizeMismatchTraps(t *testing.T) {
	b := ir.NewBuilder()
	buf := b.Global("buf", 3)
	f := b.Func("main", 0, 0)
	f.MPIRecv(ir.ImmI(buf), ir.ImmI(3), ir.ImmI(1), ir.ImmI(0))
	f.Ret()
	msg := fpm.EncodeMessage([]uint64{1}, nil) // 1 word, expected 3
	ep := &fakeEndpoint{rank: 0, size: 2, recvQueue: [][]byte{msg}}
	v := New(b.MustBuild(), Config{MPI: ep})
	err := v.Run()
	tr := AsTrap(err)
	if tr == nil || tr.Kind != TrapPeerFailure {
		t.Errorf("err = %v, want peer-failure trap", err)
	}
}

func TestMPIRecvMalformedMessageTraps(t *testing.T) {
	b := ir.NewBuilder()
	buf := b.Global("buf", 1)
	f := b.Func("main", 0, 0)
	f.MPIRecv(ir.ImmI(buf), ir.ImmI(1), ir.ImmI(1), ir.ImmI(0))
	f.Ret()
	ep := &fakeEndpoint{rank: 0, size: 2, recvQueue: [][]byte{{1, 2, 3}}}
	v := New(b.MustBuild(), Config{MPI: ep})
	err := v.Run()
	tr := AsTrap(err)
	if tr == nil || tr.Kind != TrapInvalid {
		t.Errorf("err = %v, want invalid trap", err)
	}
}

func TestMPISendFailurePropagates(t *testing.T) {
	b := ir.NewBuilder()
	buf := b.Global("buf", 1)
	f := b.Func("main", 0, 0)
	f.MPISend(ir.ImmI(buf), ir.ImmI(1), ir.ImmI(1), ir.ImmI(0))
	f.Ret()
	ep := &fakeEndpoint{rank: 0, size: 2, sendErr: errors.New("job aborted")}
	v := New(b.MustBuild(), Config{MPI: ep})
	err := v.Run()
	tr := AsTrap(err)
	if tr == nil || tr.Kind != TrapPeerFailure {
		t.Errorf("err = %v, want peer-failure trap", err)
	}
}

func TestMPISendInvalidRankTraps(t *testing.T) {
	b := ir.NewBuilder()
	buf := b.Global("buf", 1)
	f := b.Func("main", 0, 0)
	f.MPISend(ir.ImmI(buf), ir.ImmI(1), ir.ImmI(9), ir.ImmI(0))
	f.Ret()
	ep := &fakeEndpoint{rank: 0, size: 2}
	v := New(b.MustBuild(), Config{MPI: ep})
	err := v.Run()
	tr := AsTrap(err)
	if tr == nil || tr.Kind != TrapInvalid {
		t.Errorf("err = %v, want invalid trap", err)
	}
}

func TestMPIAllreduceTracksPristine(t *testing.T) {
	b := ir.NewBuilder()
	send := b.Global("send", 1)
	recv := b.Global("recv", 1)
	b.GlobalInitF("send", []float64{5})
	f := b.Func("main", 0, 0)
	f.MPIAllreduceF(ir.ImmI(send), ir.ImmI(recv), ir.ImmI(1), ir.ReduceSum)
	f.Ret()
	// The endpoint returns diverging primary/pristine sums (some other
	// rank contributed corrupted data).
	ep := &fakeEndpoint{rank: 0, size: 2,
		allreduceFn: func(prim, prist []uint64, op ir.ReduceOp, isFloat bool) ([]uint64, []uint64, error) {
			return []uint64{fbits(12)}, []uint64{fbits(10)}, nil
		}}
	v := New(b.MustBuild(), Config{MPI: ep})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	w, _ := v.Mem().Read(int64(recv))
	if math.Float64frombits(w) != 12 {
		t.Errorf("recv = %v, want 12 (primary)", math.Float64frombits(w))
	}
	pv, ok := v.Table().Pristine(int64(recv))
	if !ok || math.Float64frombits(pv) != 10 {
		t.Errorf("pristine = %v %v, want 10", math.Float64frombits(pv), ok)
	}
}

func TestMPIAllreduceSizeMismatchTraps(t *testing.T) {
	b := ir.NewBuilder()
	send := b.Global("send", 1)
	recv := b.Global("recv", 1)
	f := b.Func("main", 0, 0)
	f.MPIAllreduceF(ir.ImmI(send), ir.ImmI(recv), ir.ImmI(1), ir.ReduceSum)
	f.Ret()
	ep := &fakeEndpoint{rank: 0, size: 2,
		allreduceFn: func(prim, prist []uint64, op ir.ReduceOp, isFloat bool) ([]uint64, []uint64, error) {
			return []uint64{1, 2, 3}, []uint64{1, 2, 3}, nil
		}}
	v := New(b.MustBuild(), Config{MPI: ep})
	err := v.Run()
	tr := AsTrap(err)
	if tr == nil || tr.Kind != TrapPeerFailure {
		t.Errorf("err = %v, want peer-failure trap", err)
	}
}

func TestMPIBcastRootAndLeaf(t *testing.T) {
	build := func() *ir.Program {
		b := ir.NewBuilder()
		buf := b.Global("buf", 2)
		b.GlobalInit("buf", []uint64{7, 8})
		f := b.Func("main", 0, 0)
		f.MPIBcast(ir.ImmI(buf), ir.ImmI(2), ir.ImmI(0))
		f.OutputI(ir.R(f.Ld(ir.ImmI(buf), ir.ImmI(0))))
		f.Ret()
		return b.MustBuild()
	}
	// Root: broadcasts its own contents; they come back unchanged.
	root := New(build(), Config{MPI: &fakeEndpoint{rank: 0, size: 2}})
	if err := root.Run(); err != nil {
		t.Fatal(err)
	}
	if root.Outputs()[0] != 7 {
		t.Errorf("root buf = %v", root.Outputs()[0])
	}
	// Leaf: receives the root's (different) contents plus contamination.
	msg := fpm.EncodeMessage([]uint64{100, 200}, []fpm.MsgRecord{{Displacement: 0, Pristine: 42}})
	leaf := New(build(), Config{MPI: &fakeEndpoint{rank: 1, size: 2, bcastMsg: msg}})
	if err := leaf.Run(); err != nil {
		t.Fatal(err)
	}
	if leaf.Outputs()[0] != 100 {
		t.Errorf("leaf buf = %v", leaf.Outputs()[0])
	}
	if _, ok := leaf.Table().Pristine(2); !ok {
		// buf base is 1; displacement 0 -> address 1.
		if _, ok := leaf.Table().Pristine(1); !ok {
			t.Error("bcast contamination not installed")
		}
	}
}
