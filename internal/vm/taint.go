package vm

import "repro/internal/ir"

// Naive taint tracking implements the baseline the paper argues against
// (§3.2): "the general assumption that the output of an instruction becomes
// corrupted if at least one of the inputs is corrupted". Unlike the exact
// dual-chain FPM, taint can never be cleansed by value agreement — a store
// whose tainted value happens to equal the pristine value still marks the
// location — so it overestimates the corrupted memory locations. Enabled
// with Config.TrackTaint, it runs alongside the FPM so one run yields both
// counts for the ablation benchmark. The taint model is within-process
// only (no message piggyback), so the ablation compares single-process
// runs.

type taintState struct {
	regs    []bool
	mem     map[int64]bool
	peak    int
	scratch []bool
}

func newTaintState() *taintState {
	return &taintState{mem: make(map[int64]bool)}
}

func (t *taintState) markMem(addr int64, tainted bool) {
	if tainted {
		t.mem[addr] = true
		if len(t.mem) > t.peak {
			t.peak = len(t.mem)
		}
		return
	}
	delete(t.mem, addr)
}

// TaintCML returns the current naive-taint corrupted-location count.
func (v *VM) TaintCML() int {
	if v.taint == nil {
		return 0
	}
	return len(v.taint.mem)
}

// TaintPeak returns the peak naive-taint corrupted-location count.
func (v *VM) TaintPeak() int {
	if v.taint == nil {
		return 0
	}
	return v.taint.peak
}

func (v *VM) taintGrow(n int) {
	for len(v.taint.regs) < n {
		v.taint.regs = append(v.taint.regs, false)
	}
}

func (v *VM) taintOf(base int, o ir.Operand) bool {
	return o.IsReg() && v.taint.regs[base+int(o.Reg)]
}

// taintStep applies the naive propagation rule for one instruction, using
// pre-execution register values (the address of a load/store is evaluated
// before the instruction mutates anything). FimInj, Call and Ret are
// handled inline in the interpreter loop because they need information
// local to those cases.
func (v *VM) taintStep(fr *frame, in *ir.Instr) {
	t := v.taint
	base := fr.regBase
	setDst := func(b bool) {
		if in.Dst != ir.NoReg {
			t.regs[base+int(in.Dst)] = b
		}
	}
	switch in.Op {
	case ir.ConstI, ir.ConstF, ir.FrameAddr:
		setDst(false)
	case ir.Mov:
		setDst(v.taintOf(base, in.A))
	case ir.Add, ir.Sub, ir.Mul, ir.SDiv, ir.SRem, ir.Shl, ir.LShr, ir.AShr,
		ir.And, ir.Or, ir.Xor, ir.FAdd, ir.FSub, ir.FMul, ir.FDiv,
		ir.SIToFP, ir.FPToSI,
		ir.ICmpEQ, ir.ICmpNE, ir.ICmpSLT, ir.ICmpSLE, ir.ICmpSGT, ir.ICmpSGE,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE,
		ir.Select:
		setDst(v.taintOf(base, in.A) || v.taintOf(base, in.B) || v.taintOf(base, in.C))
	case ir.Load:
		addr := int64(v.val(base, in.A))
		setDst(t.mem[addr] || v.taintOf(base, in.A))
	case ir.FpmFetch:
		setDst(false)
	case ir.Store:
		addr := int64(v.val(base, in.B))
		t.markMem(addr, v.taintOf(base, in.A) || v.taintOf(base, in.B))
	case ir.FpmStore:
		addr := int64(v.val(base, in.C))
		tainted := v.taintOf(base, in.A) || v.taintOf(base, in.C)
		t.markMem(addr, tainted)
		if v.taintOf(base, in.C) {
			// Corrupted store address: the location that should have
			// been written is corrupted too (the duplicate effect).
			t.markMem(int64(v.val(base, in.D)), true)
		}
	case ir.Intrin:
		id := ir.IntrinID(in.Target)
		switch id {
		case ir.IntrinMPIAllreduceF, ir.IntrinMPIAllreduceI:
			// Within-process rule: the reduction result is tainted when
			// any local contribution is. Remote taint is unknowable
			// without piggyback, so cleansing is only sound on
			// single-process jobs.
			send := int64(v.val(base, in.Args[0]))
			recv := int64(v.val(base, in.Args[1]))
			count := int64(v.val(base, in.Args[2]))
			tainted := v.taintOf(base, in.Args[0]) || v.taintOf(base, in.Args[2])
			for a := send; a < send+count; a++ {
				tainted = tainted || t.mem[a]
			}
			soloJob := v.cfg.MPI == nil || v.cfg.MPI.Size() == 1
			for a := recv; a < recv+count; a++ {
				if tainted {
					t.markMem(a, true)
				} else if soloJob {
					t.markMem(a, false)
				}
			}
		default:
			tainted := false
			if ir.IntrinPure(id) {
				for _, a := range in.Args {
					tainted = tainted || v.taintOf(base, a)
				}
			}
			for _, r := range in.Rets {
				t.regs[base+int(r)] = tainted
			}
		}
	}
}

// MemFault is a direct memory-level fault (the Li et al.-style injection
// model the paper contrasts with register-level injection, §6): at the
// given application cycle, flip a bit of the word at the given fractional
// position of the allocated data segment.
type MemFault struct {
	// AtCycle is the application cycle at (or shortly after) which the
	// fault applies.
	AtCycle uint64
	// AddrUnit in [0,1) selects the target word within the allocated
	// globals+heap extent.
	AddrUnit float64
	// Bit is the bit to flip.
	Bit uint
}

// applyMemFaults fires due memory faults; called from housekeep, so
// application is quantized to the housekeeping interval, which is the
// paper's accelerated-injection granularity rather than a per-cycle one.
func (v *VM) applyMemFaults() {
	for i := range v.cfg.MemFaults {
		mf := &v.cfg.MemFaults[i]
		if v.memFaultsDone[i] || v.cycles < mf.AtCycle {
			continue
		}
		v.memFaultsDone[i] = true
		alloc := v.mem.AllocatedWords()
		if alloc <= 0 {
			continue
		}
		frac := mf.AddrUnit
		if frac < 0 {
			frac = 0
		}
		if frac >= 1 {
			frac = 0.999999
		}
		addr := 1 + int64(frac*float64(alloc))
		old, ok := v.mem.Read(addr)
		if !ok {
			continue
		}
		pristine := v.table.PristineOr(addr, old)
		now := old ^ (1 << (mf.Bit & 63))
		v.mem.Write(addr, now)
		before := v.table.Len()
		v.table.Observe(addr, now, pristine)
		v.noteCML(before)
		if v.taint != nil {
			v.taint.markMem(addr, true)
		}
		v.memFaultsApplied++
	}
}

// MemFaultsApplied returns how many configured memory faults fired.
func (v *VM) MemFaultsApplied() int { return v.memFaultsApplied }
