package vm

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ir"
)

// runMain builds the program, runs it with cfg, and returns the VM and error.
func runProg(t *testing.T, prog *ir.Program, cfg Config) (*VM, error) {
	t.Helper()
	v := New(prog, cfg)
	err := v.Run()
	return v, err
}

func mustOutputs(t *testing.T, prog *ir.Program) []float64 {
	t.Helper()
	v, err := runProg(t, prog, Config{})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return v.Outputs()
}

func TestArithmeticInteger(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	f.OutputI(ir.R(f.Add(ir.ImmI(2), ir.ImmI(3))))
	f.OutputI(ir.R(f.Sub(ir.ImmI(2), ir.ImmI(5))))
	f.OutputI(ir.R(f.Mul(ir.ImmI(-4), ir.ImmI(6))))
	f.OutputI(ir.R(f.SDiv(ir.ImmI(-7), ir.ImmI(2))))
	f.OutputI(ir.R(f.SRem(ir.ImmI(-7), ir.ImmI(2))))
	f.OutputI(ir.R(f.Shl(ir.ImmI(3), ir.ImmI(4))))
	f.OutputI(ir.R(f.LShr(ir.ImmI(-1), ir.ImmI(60))))
	f.OutputI(ir.R(f.AShr(ir.ImmI(-16), ir.ImmI(2))))
	f.OutputI(ir.R(f.And(ir.ImmI(0b1100), ir.ImmI(0b1010))))
	f.OutputI(ir.R(f.Or(ir.ImmI(0b1100), ir.ImmI(0b1010))))
	f.OutputI(ir.R(f.Xor(ir.ImmI(0b1100), ir.ImmI(0b1010))))
	f.Ret()
	got := mustOutputs(t, b.MustBuild())
	want := []float64{5, -3, -24, -3, -1, 48, 15, -4, 8, 14, 6}
	if len(got) != len(want) {
		t.Fatalf("outputs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("output %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestArithmeticFloat(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	f.OutputF(ir.R(f.FAdd(ir.ImmF(1.5), ir.ImmF(2.25))))
	f.OutputF(ir.R(f.FSub(ir.ImmF(1), ir.ImmF(0.5))))
	f.OutputF(ir.R(f.FMul(ir.ImmF(3), ir.ImmF(-2))))
	f.OutputF(ir.R(f.FDiv(ir.ImmF(1), ir.ImmF(4))))
	f.OutputF(ir.R(f.SIToFP(ir.ImmI(-3))))
	f.OutputI(ir.R(f.FPToSI(ir.ImmF(3.9))))
	f.OutputI(ir.R(f.FPToSI(ir.ImmF(-3.9))))
	f.Ret()
	got := mustOutputs(t, b.MustBuild())
	want := []float64{3.75, 0.5, -6, 0.25, -3, 3, -3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("output %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFPToSIHardwareSemantics(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	nan := f.FDiv(ir.ImmF(0), ir.ImmF(0))
	f.OutputI(ir.R(f.FPToSI(ir.R(nan))))
	inf := f.FDiv(ir.ImmF(1), ir.ImmF(0))
	f.OutputI(ir.R(f.FPToSI(ir.R(inf))))
	f.Ret()
	got := mustOutputs(t, b.MustBuild())
	for i, g := range got {
		if g != float64(math.MinInt64) {
			t.Errorf("conversion %d = %v, want INT64_MIN", i, g)
		}
	}
}

func TestComparisonsAndSelect(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	f.OutputI(ir.R(f.ICmp(ir.ICmpSLT, ir.ImmI(-1), ir.ImmI(1))))
	f.OutputI(ir.R(f.ICmp(ir.ICmpSGE, ir.ImmI(5), ir.ImmI(5))))
	f.OutputI(ir.R(f.ICmp(ir.ICmpEQ, ir.ImmI(3), ir.ImmI(4))))
	f.OutputI(ir.R(f.FCmp(ir.FCmpLT, ir.ImmF(1.5), ir.ImmF(2))))
	f.OutputI(ir.R(f.FCmp(ir.FCmpNE, ir.ImmF(1), ir.ImmF(1))))
	f.OutputI(ir.R(f.Select(ir.ImmI(1), ir.ImmI(10), ir.ImmI(20))))
	f.OutputI(ir.R(f.Select(ir.ImmI(0), ir.ImmI(10), ir.ImmI(20))))
	f.Ret()
	got := mustOutputs(t, b.MustBuild())
	want := []float64{1, 1, 0, 1, 0, 10, 20}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("output %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGlobalsLoadStore(t *testing.T) {
	b := ir.NewBuilder()
	g := b.Global("v", 3)
	b.GlobalInitF("v", []float64{1.5, 2.5, 3.5})
	f := b.Func("main", 0, 0)
	i := f.NewReg()
	sum := f.CF(0)
	f.For(i, ir.ImmI(0), ir.ImmI(3), func() {
		f.Op3(ir.FAdd, sum, ir.R(sum), ir.R(f.Ld(ir.ImmI(g), ir.R(i))))
	})
	f.OutputF(ir.R(sum))
	f.St(ir.R(sum), ir.ImmI(g), ir.ImmI(0))
	f.OutputF(ir.R(f.Ld(ir.ImmI(g), ir.ImmI(0))))
	f.Ret()
	got := mustOutputs(t, b.MustBuild())
	if got[0] != 7.5 || got[1] != 7.5 {
		t.Errorf("outputs = %v, want [7.5 7.5]", got)
	}
}

func TestCallsAndRecursion(t *testing.T) {
	b := ir.NewBuilder()
	main := b.Func("main", 0, 0)
	r := main.NewReg()
	main.Call("fib", []ir.Reg{r}, ir.ImmI(12))
	main.OutputI(ir.R(r))
	main.Ret()

	fib := b.Func("fib", 1, 1)
	n := fib.Param(0)
	fib.IfElse(ir.R(fib.ICmp(ir.ICmpSLE, ir.R(n), ir.ImmI(1))),
		func() { fib.Ret(ir.R(n)) },
		func() {
			a, bb := fib.NewReg(), fib.NewReg()
			fib.Call("fib", []ir.Reg{a}, ir.R(fib.Sub(ir.R(n), ir.ImmI(1))))
			fib.Call("fib", []ir.Reg{bb}, ir.R(fib.Sub(ir.R(n), ir.ImmI(2))))
			fib.Ret(ir.R(fib.Add(ir.R(a), ir.R(bb))))
		})
	// Unreachable terminator to satisfy validation.
	fib.Ret(ir.ImmI(0))
	got := mustOutputs(t, b.MustBuild())
	if got[0] != 144 {
		t.Errorf("fib(12) = %v, want 144", got[0])
	}
}

func TestFrameLocals(t *testing.T) {
	b := ir.NewBuilder()
	main := b.Func("main", 0, 0)
	r := main.NewReg()
	main.Call("work", []ir.Reg{r}, ir.ImmI(7))
	main.OutputI(ir.R(r))
	main.Ret()

	work := b.Func("work", 1, 1)
	off := work.Local(4)
	base := work.FrameAddr(off)
	i := work.NewReg()
	work.For(i, ir.ImmI(0), ir.ImmI(4), func() {
		work.St(ir.R(work.Mul(ir.R(work.Param(0)), ir.R(i))), ir.R(base), ir.R(i))
	})
	sum := work.CI(0)
	work.For(i, ir.ImmI(0), ir.ImmI(4), func() {
		work.Op3(ir.Add, sum, ir.R(sum), ir.R(work.Ld(ir.R(base), ir.R(i))))
	})
	work.Ret(ir.R(sum))
	got := mustOutputs(t, b.MustBuild())
	if got[0] != 42 { // 7*(0+1+2+3)
		t.Errorf("result = %v, want 42", got[0])
	}
}

func TestAllocAndHeap(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	p := f.Alloc(ir.ImmI(10))
	f.St(ir.ImmI(99), ir.R(p), ir.ImmI(9))
	f.OutputI(ir.R(f.Ld(ir.R(p), ir.ImmI(9))))
	q := f.Alloc(ir.ImmI(5))
	f.OutputI(ir.R(f.Sub(ir.R(q), ir.R(p)))) // contiguous bump: q = p+10
	f.Ret()
	v, err := runProg(t, b.MustBuild(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := v.Outputs()
	if got[0] != 99 || got[1] != 10 {
		t.Errorf("outputs = %v, want [99 10]", got)
	}
	if v.Mem().HeapUsed() != 15 {
		t.Errorf("heap used = %d, want 15", v.Mem().HeapUsed())
	}
}

func TestMathIntrinsics(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	f.OutputF(ir.R(f.Sqrt(ir.ImmF(9))))
	f.OutputF(ir.R(f.Fabs(ir.ImmF(-2.5))))
	f.OutputF(ir.R(f.Floor(ir.ImmF(2.9))))
	f.OutputF(ir.R(f.Pow(ir.ImmF(2), ir.ImmF(10))))
	f.OutputF(ir.R(f.FMin(ir.ImmF(3), ir.ImmF(-1))))
	f.OutputF(ir.R(f.FMax(ir.ImmF(3), ir.ImmF(-1))))
	f.OutputF(ir.R(f.Exp(ir.ImmF(0))))
	f.OutputF(ir.R(f.Log(ir.ImmF(1))))
	f.OutputF(ir.R(f.Sin(ir.ImmF(0))))
	f.OutputF(ir.R(f.Cos(ir.ImmF(0))))
	f.Ret()
	got := mustOutputs(t, b.MustBuild())
	want := []float64{3, 2.5, 2, 1024, -1, 3, 1, 0, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("output %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func trapKindOf(t *testing.T, prog *ir.Program, cfg Config) TrapKind {
	t.Helper()
	_, err := runProg(t, prog, cfg)
	if err == nil {
		t.Fatal("expected trap, run succeeded")
	}
	tr := AsTrap(err)
	if tr == nil {
		t.Fatalf("expected *Trap, got %T: %v", err, err)
	}
	return tr.Kind
}

func TestTrapNullAccess(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	f.Load(ir.ImmI(0))
	f.Ret()
	if k := trapKindOf(t, b.MustBuild(), Config{}); k != TrapNull {
		t.Errorf("kind = %v, want TrapNull", k)
	}
}

func TestTrapOOB(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	f.Store(ir.ImmI(1), ir.ImmI(1<<40))
	f.Ret()
	if k := trapKindOf(t, b.MustBuild(), Config{}); k != TrapOOB {
		t.Errorf("kind = %v, want TrapOOB", k)
	}
}

func TestTrapDivZero(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	z := f.CI(0)
	f.SDiv(ir.ImmI(1), ir.R(z))
	f.Ret()
	if k := trapKindOf(t, b.MustBuild(), Config{}); k != TrapDivZero {
		t.Errorf("kind = %v, want TrapDivZero", k)
	}
}

func TestTrapDivOverflow(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	f.SDiv(ir.ImmI(math.MinInt64), ir.ImmI(-1))
	f.Ret()
	if k := trapKindOf(t, b.MustBuild(), Config{}); k != TrapDivOverflow {
		t.Errorf("kind = %v, want TrapDivOverflow", k)
	}
}

func TestTrapCycleLimit(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	l := f.NewLabel()
	f.Bind(l)
	f.Jmp(l) // infinite loop
	f.Ret()
	if k := trapKindOf(t, b.MustBuild(), Config{CycleLimit: 10000}); k != TrapCycleLimit {
		t.Errorf("kind = %v, want TrapCycleLimit", k)
	}
}

func TestTrapHeapExhausted(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	f.Alloc(ir.ImmI(1 << 40))
	f.Ret()
	if k := trapKindOf(t, b.MustBuild(), Config{}); k != TrapHeapExhausted {
		t.Errorf("kind = %v, want TrapHeapExhausted", k)
	}
}

func TestTrapStackOverflowDeepRecursion(t *testing.T) {
	b := ir.NewBuilder()
	main := b.Func("main", 0, 0)
	main.Call("down", nil, ir.ImmI(1<<40))
	main.Ret()
	down := b.Func("down", 1, 0)
	down.Local(64)
	down.Call("down", nil, ir.R(down.Sub(ir.R(down.Param(0)), ir.ImmI(1))))
	down.Ret()
	if k := trapKindOf(t, b.MustBuild(), Config{}); k != TrapStackOverflow {
		t.Errorf("kind = %v, want TrapStackOverflow", k)
	}
}

func TestOutputOverflow(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	i := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(100), func() { f.OutputI(ir.R(i)) })
	f.Ret()
	if k := trapKindOf(t, b.MustBuild(), Config{OutputLimit: 10}); k != TrapOutputOverflow {
		t.Errorf("kind = %v, want TrapOutputOverflow", k)
	}
}

func TestPrintIntrinsics(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	f.Intrin(ir.IntrinPrintI, nil, ir.ImmI(42))
	f.Intrin(ir.IntrinPrintF, nil, ir.ImmF(1.5))
	f.Ret()
	var sb strings.Builder
	v := New(b.MustBuild(), Config{Stdout: &sb})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "42\n1.5\n" {
		t.Errorf("stdout = %q", sb.String())
	}
}

func TestTicksAndIterations(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	i := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(5), func() { f.Tick(ir.R(i)) })
	f.Iterations(ir.ImmI(17))
	f.Ret()
	v, err := runProg(t, b.MustBuild(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Ticks() != 5 {
		t.Errorf("ticks = %d, want 5", v.Ticks())
	}
	if v.Iterations() != 17 {
		t.Errorf("iterations = %d, want 17", v.Iterations())
	}
}

func TestCyclesDeterministic(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	i := f.NewReg()
	sum := f.CI(0)
	f.For(i, ir.ImmI(0), ir.ImmI(1000), func() {
		f.Op3(ir.Add, sum, ir.R(sum), ir.R(i))
	})
	f.OutputI(ir.R(sum))
	f.Ret()
	prog := b.MustBuild()
	v1, err1 := runProg(t, prog, Config{})
	v2, err2 := runProg(t, prog, Config{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if v1.Cycles() != v2.Cycles() {
		t.Errorf("cycles differ: %d vs %d", v1.Cycles(), v2.Cycles())
	}
	if v1.Outputs()[0] != 499500 {
		t.Errorf("sum = %v", v1.Outputs()[0])
	}
	if v1.Cycles() == 0 {
		t.Error("no cycles accounted")
	}
}

func TestMPIIntrinsicsWithoutEndpoint(t *testing.T) {
	// Rank/Size degrade gracefully to 0/1 without an endpoint.
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	f.OutputI(ir.R(f.MPIRank()))
	f.OutputI(ir.R(f.MPISize()))
	f.Ret()
	got := mustOutputs(t, b.MustBuild())
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("rank/size = %v, want [0 1]", got)
	}
	// Send without endpoint is invalid.
	b2 := ir.NewBuilder()
	f2 := b2.Func("main", 0, 0)
	f2.MPISend(ir.ImmI(1), ir.ImmI(0), ir.ImmI(0), ir.ImmI(0))
	f2.Ret()
	if k := trapKindOf(t, b2.MustBuild(), Config{}); k != TrapInvalid {
		t.Errorf("kind = %v, want TrapInvalid", k)
	}
}

func TestGlobalClockAccumulates(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	i := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(5000), func() {})
	f.Ret()
	var clk Clock
	v := New(b.MustBuild(), Config{Clock: &clk})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if clk.Now() != v.Cycles() {
		t.Errorf("clock = %d, cycles = %d", clk.Now(), v.Cycles())
	}
}

func TestAbortFlagStopsRun(t *testing.T) {
	b := ir.NewBuilder()
	f := b.Func("main", 0, 0)
	l := f.NewLabel()
	f.Bind(l)
	f.Jmp(l)
	f.Ret()
	var flag AbortFlag
	flag.Raise()
	v := New(b.MustBuild(), Config{Abort: &flag})
	err := v.Run()
	tr := AsTrap(err)
	if tr == nil || tr.Kind != TrapPeerFailure {
		t.Errorf("err = %v, want peer failure trap", err)
	}
}

func TestMemoryBasics(t *testing.T) {
	m := NewMemory(1024, 16)
	if m.Size() != 1024 {
		t.Errorf("size = %d", m.Size())
	}
	if _, ok := m.Read(0); ok {
		t.Error("null read allowed")
	}
	if ok := m.Write(1024, 1); ok {
		t.Error("oob write allowed")
	}
	if !m.Write(17, 5) {
		t.Error("valid write failed")
	}
	if w, ok := m.Read(17); !ok || w != 5 {
		t.Errorf("read = %v %v", w, ok)
	}
	base, ok := m.Alloc(8)
	if !ok || base != 17 {
		t.Errorf("alloc = %d %v, want 17", base, ok)
	}
	if m.AllocatedWords() != 24 {
		t.Errorf("allocated = %d, want 24", m.AllocatedWords())
	}
	fb, ok := m.PushFrame(16)
	if !ok || fb != 1024-16 {
		t.Errorf("frame = %d %v", fb, ok)
	}
	m.PopFrame(16)
	if _, ok := m.CopyOut(1000, 100); ok {
		t.Error("oob CopyOut allowed")
	}
	if m.CopyIn(1000, make([]uint64, 100)) {
		t.Error("oob CopyIn allowed")
	}
}

func TestFrameZeroedAcrossCalls(t *testing.T) {
	// A function writing its frame must not leak values into the next call.
	b := ir.NewBuilder()
	main := b.Func("main", 0, 0)
	r1, r2 := main.NewReg(), main.NewReg()
	main.Call("probe", []ir.Reg{r1}, ir.ImmI(9))
	main.Call("probe", []ir.Reg{r2}, ir.ImmI(0))
	main.OutputI(ir.R(r1))
	main.OutputI(ir.R(r2))
	main.Ret()

	probe := b.Func("probe", 1, 1)
	off := probe.Local(1)
	addr := probe.FrameAddr(off)
	// If the arg is nonzero, write it; either way return the local.
	probe.If(ir.R(probe.ICmp(ir.ICmpNE, ir.R(probe.Param(0)), ir.ImmI(0))), func() {
		probe.Store(ir.R(probe.Param(0)), ir.R(addr))
	})
	probe.Ret(ir.R(probe.Load(ir.R(addr))))

	got := mustOutputs(t, b.MustBuild())
	if got[0] != 9 || got[1] != 0 {
		t.Errorf("outputs = %v, want [9 0] (frame not zeroed)", got)
	}
}
