package vm

import "repro/internal/ir"

// Pre-decoded interpreter form. ir.Instr is built for construction and
// transformation: operands carry a Kind tag inspected on every read, the
// cycle-accounting class is derived from flags per step, and the struct
// (with its Args/Rets slices) is far larger than a cache line. The decode
// step lowers each function once into a flat []dinstr whose operand kinds
// are resolved into a bitmask, whose immediates are pre-split from register
// indices, and whose cycle-accounting classification (FlagSecondary /
// FimInj / FpmFetch are free; everything else costs one application cycle)
// is precomputed into a single byte — so the hot loop dispatches on the
// opcode and never re-inspects flags or operand tags.
//
// The lowering is strictly 1:1 with the original code: pc values, jump
// targets and frame semantics are unchanged, which keeps traps, checkpoint
// snapshots and the taint ablation (which walks the original ir.Instr)
// byte-identical to the previous interpreter.

// Operand-kind bits in dinstr.kinds: bit set means the payload holds a
// register index, clear means it is the immediate value itself.
const (
	kA uint8 = 1 << iota
	kB
	kC
	kD
)

// dinstr is one lowered instruction. Field order keeps the struct at 56
// bytes (vs ~128 for ir.Instr), so more of the working code fits in cache.
type dinstr struct {
	a, b, c, d uint64    // operand payloads: register index or immediate
	src        *ir.Instr // original instruction: Args/Rets for call-like ops
	dst        int32
	target     int32
	// next is the fall-through successor pc. In full code it is always
	// pc+1; in clean code it is the next *retained* pc, so the interpreter
	// steps straight over skipped instrumentation without dispatching the
	// opSkip chain in between (threaded fall-through).
	next  int32
	op    ir.Op
	cost  uint8 // 1 when the instruction counts an application cycle
	kinds uint8
	// nsites is non-zero only in clean-mode code: this instruction absorbed
	// the nsites fim_inj instructions immediately preceding it (see
	// buildClean fusion). The interpreter advances the dynamic site counter
	// by nsites in one step, or — if a planned fault falls inside the
	// absorbed range — re-executes the group at pc-nsites under the full
	// interpreter.
	nsites uint8
}

// opSkip is a vm-private pseudo-opcode used only in clean-mode code arrays:
// it replaces an instruction whose execution is provably redundant while the
// rank is fault-free, and its target points at the next non-skipped pc, so
// one dispatch hops over a whole run of skipped instructions.
const opSkip = ir.Op(255)

// dfunc is one decoded function. code is the full lowering; clean is the
// clean-mode variant (see buildClean) with identical pc numbering, sharing
// code's backing when the function has nothing to skip.
type dfunc struct {
	fn    *ir.Func
	code  []dinstr
	clean []dinstr
}

// codeFor selects the code array for the given interpreter mode.
func (df *dfunc) codeFor(clean bool) []dinstr {
	if clean {
		return df.clean
	}
	return df.code
}

// dprog is the decoded program, cached on the ir.Program so every VM (and
// every experiment of a campaign) shares one decode.
type dprog struct {
	funcs []dfunc
	// cleanOK reports that every function is either uninstrumented or
	// carries the PairedRegs dual-chain layout declaration, so the
	// clean-mode interpreter's shadow-register reconstruction is sound
	// program-wide. Instrumented programs loaded through a path that does
	// not set PairedRegs (e.g. the text parser) get cleanOK=false and run
	// the full interpreter everywhere.
	cleanOK bool
}

// decodedOf returns prog's decoded form, lowering it on first use.
func decodedOf(prog *ir.Program) *dprog {
	if d, ok := prog.Exec().(*dprog); ok && d != nil {
		return d
	}
	d := &dprog{funcs: make([]dfunc, len(prog.Funcs)), cleanOK: true}
	for i, f := range prog.Funcs {
		code := decodeFunc(f)
		clean, ok := buildClean(f, code)
		d.funcs[i] = dfunc{fn: f, code: code, clean: clean}
		d.cleanOK = d.cleanOK && ok
	}
	prog.StoreExec(d)
	return d
}

// buildClean lowers f's clean-mode code array: while a rank's state is
// provably fault-free (empty contamination table, shadow registers
// mirroring primaries), the entire secondary chain is redundant — every
// FlagSecondary instruction and fpm_fetch only (re)computes a shadow value
// equal to its primary twin, and fpm_store's table lookup can never observe
// a divergence. So secondary instructions and fpm_fetch become opSkip
// chains, and fpm_store becomes the plain store it replaced (same cost, so
// cycle accounting is unchanged). pc numbering is preserved: branch
// targets, trap pcs and captured frame stacks are valid in both arrays,
// which is what lets the interpreter flip modes mid-function.
//
// The second return value reports whether clean-mode execution of this
// function is sound: true when the function has no instrumentation at all
// (clean aliases code) or declares its register pairing via PairedRegs.
func buildClean(f *ir.Func, code []dinstr) ([]dinstr, bool) {
	instrumented := false
	for pc := range f.Code {
		in := &f.Code[pc]
		if in.Flags&ir.FlagSecondary != 0 || in.Op == ir.FpmFetch || in.Op == ir.FpmStore || in.Op == ir.FimInj {
			instrumented = true
			break
		}
	}
	if !instrumented {
		return code, true
	}
	if f.PairedRegs == 0 {
		// Instrumented but pairing unknown: shadow reconstruction is
		// impossible, so the clean interpreter must never run this code.
		return code, false
	}
	clean := make([]dinstr, len(code))
	copy(clean, code)
	for pc := range f.Code {
		in := &f.Code[pc]
		d := &clean[pc]
		switch {
		case in.Flags&ir.FlagSecondary != 0 || in.Op == ir.FpmFetch:
			*d = dinstr{op: opSkip, src: in}
		case in.Op == ir.FpmStore:
			// fpm_store(valP, valS, addrP, addrS) degenerates to
			// Store val=A addr=C: with an empty table and converged
			// shadows, addrP==addrS, valS==valP and Observe removes
			// nothing it would have recorded.
			nd := dinstr{op: ir.Store, src: in, cost: 1, a: d.a, b: d.c}
			if d.kinds&kA != 0 {
				nd.kinds |= kA
			}
			if d.kinds&kC != 0 {
				nd.kinds |= kB
			}
			*d = nd
		}
	}
	fuseInj(f, clean)
	// Thread the fall-through chain: every instruction's next (and every
	// opSkip's target) points directly at the next retained pc, so
	// straight-line flow never dispatches a skipped instruction. A function
	// always ends with a retained Ret, so the chain terminates.
	next := len(clean)
	for pc := len(clean) - 1; pc >= 0; pc-- {
		if clean[pc].op == opSkip {
			clean[pc].target = int32(next)
			clean[pc].next = int32(next)
		} else {
			clean[pc].next = int32(next)
			next = pc
		}
	}
	// Redirect branch targets that land on a skipped pc to the first
	// retained pc after it (the skips compute nothing in clean mode, so the
	// jump is equivalent). Chained targets make this a single hop.
	for pc := range clean {
		d := &clean[pc]
		switch d.op {
		case ir.Jmp, ir.Bnz, ir.Bz:
			if t := int(d.target); t < len(clean) && clean[t].op == opSkip {
				d.target = clean[t].target
			}
		}
	}
	return clean, true
}

// fuseInj folds fim_inj groups into their consumers. The instrumentation
// emits, for every injectable instruction, one fim_inj per source operand
// into a fresh temporary register immediately before the instruction that
// consumes those temporaries. While no planned fault targets the group's
// site range, each fim_inj is a pure register move — so the consumer can
// read the original operands directly and advance the site counter by the
// group size in one step, turning (group size + 1) dispatches into one.
// The fused fim_injs become opSkip so straight-line flow hops over them;
// their pcs stay valid (a branch can land on one) and the full-mode bail
// path re-executes the group from pc-nsites, where the full array still
// holds the original fim_injs.
//
// Fusion is conservative: the consumer must carry all of its operands in
// decoded payloads (ruling out Intrin/Call/Ret, which read src.Args), every
// temporary in the group must be consumed by it, and the temporaries must
// lie outside the paired-register region (no shadow twin loses its write).
// Unfused groups simply keep their per-instruction fast path.
func fuseInj(f *ir.Func, clean []dinstr) {
	for pc := 0; pc < len(clean); pc++ {
		if clean[pc].op != ir.FimInj {
			continue
		}
		start := pc
		for pc < len(clean) && clean[pc].op == ir.FimInj {
			pc++
		}
		n := pc - start
		if pc >= len(clean) || n > 255 {
			continue
		}
		con := &clean[pc]
		switch con.op {
		case ir.Intrin, ir.Call, ir.Ret, ir.FimInj, opSkip, ir.Nop:
			continue
		}
		// Substitute each temporary with its fim_inj source on a copy, and
		// verify every group member is consumed exactly there.
		nd := *con
		used := make([]bool, n)
		ok := true
		sub := func(payload uint64, bit uint8) (uint64, uint8, bool) {
			for i := 0; i < n; i++ {
				inj := &clean[start+i]
				if payload != uint64(inj.dst) {
					continue
				}
				used[i] = true
				if inj.kinds&kA != 0 {
					return inj.a, bit, true
				}
				return inj.a, 0, true
			}
			return payload, bit, true
		}
		for i := 0; i < n; i++ {
			inj := &clean[start+i]
			if int(inj.dst) < f.PairedRegs || inj.kinds&(kB|kC|kD) != 0 {
				ok = false // not a throwaway temp, or unexpected shape
			}
		}
		if ok {
			if nd.kinds&kA != 0 {
				var bit uint8
				nd.a, bit, _ = sub(nd.a, kA)
				nd.kinds = nd.kinds&^kA | bit
			}
			if nd.kinds&kB != 0 {
				var bit uint8
				nd.b, bit, _ = sub(nd.b, kB)
				nd.kinds = nd.kinds&^kB | bit
			}
			if nd.kinds&kC != 0 {
				var bit uint8
				nd.c, bit, _ = sub(nd.c, kC)
				nd.kinds = nd.kinds&^kC | bit
			}
			if nd.kinds&kD != 0 {
				var bit uint8
				nd.d, bit, _ = sub(nd.d, kD)
				nd.kinds = nd.kinds&^kD | bit
			}
			for i := range used {
				if !used[i] {
					ok = false // a group member the consumer never reads
				}
			}
		}
		if !ok {
			continue
		}
		nd.nsites = uint8(n)
		*con = nd
		for i := 0; i < n; i++ {
			clean[start+i] = dinstr{op: opSkip, src: clean[start+i].src}
		}
	}
}

func decodeFunc(f *ir.Func) []dinstr {
	code := make([]dinstr, len(f.Code))
	for pc := range f.Code {
		in := &f.Code[pc]
		d := &code[pc]
		d.op = in.Op
		d.src = in
		d.dst = int32(in.Dst)
		d.target = in.Target
		d.next = int32(pc + 1)
		if in.Flags&ir.FlagSecondary == 0 && in.Op != ir.FimInj && in.Op != ir.FpmFetch {
			d.cost = 1
		}
		d.a = payload(in.A, &d.kinds, kA)
		d.b = payload(in.B, &d.kinds, kB)
		d.c = payload(in.C, &d.kinds, kC)
		d.d = payload(in.D, &d.kinds, kD)
	}
	return code
}

func payload(o ir.Operand, kinds *uint8, bit uint8) uint64 {
	if o.Kind == ir.KindReg {
		*kinds |= bit
		return uint64(o.Reg)
	}
	return o.Imm
}
