package vm

import "repro/internal/ir"

// Pre-decoded interpreter form. ir.Instr is built for construction and
// transformation: operands carry a Kind tag inspected on every read, the
// cycle-accounting class is derived from flags per step, and the struct
// (with its Args/Rets slices) is far larger than a cache line. The decode
// step lowers each function once into a flat []dinstr whose operand kinds
// are resolved into a bitmask, whose immediates are pre-split from register
// indices, and whose cycle-accounting classification (FlagSecondary /
// FimInj / FpmFetch are free; everything else costs one application cycle)
// is precomputed into a single byte — so the hot loop dispatches on the
// opcode and never re-inspects flags or operand tags.
//
// The lowering is strictly 1:1 with the original code: pc values, jump
// targets and frame semantics are unchanged, which keeps traps, checkpoint
// snapshots and the taint ablation (which walks the original ir.Instr)
// byte-identical to the previous interpreter.

// Operand-kind bits in dinstr.kinds: bit set means the payload holds a
// register index, clear means it is the immediate value itself.
const (
	kA uint8 = 1 << iota
	kB
	kC
	kD
)

// dinstr is one lowered instruction. Field order keeps the struct at 56
// bytes (vs ~128 for ir.Instr), so more of the working code fits in cache.
type dinstr struct {
	a, b, c, d uint64    // operand payloads: register index or immediate
	src        *ir.Instr // original instruction: Args/Rets for call-like ops
	dst        int32
	target     int32
	op         ir.Op
	cost       uint8 // 1 when the instruction counts an application cycle
	kinds      uint8
}

// dfunc is one decoded function.
type dfunc struct {
	fn   *ir.Func
	code []dinstr
}

// dprog is the decoded program, cached on the ir.Program so every VM (and
// every experiment of a campaign) shares one decode.
type dprog struct {
	funcs []dfunc
}

// decodedOf returns prog's decoded form, lowering it on first use.
func decodedOf(prog *ir.Program) *dprog {
	if d, ok := prog.Exec().(*dprog); ok && d != nil {
		return d
	}
	d := &dprog{funcs: make([]dfunc, len(prog.Funcs))}
	for i, f := range prog.Funcs {
		d.funcs[i] = dfunc{fn: f, code: decodeFunc(f)}
	}
	prog.StoreExec(d)
	return d
}

func decodeFunc(f *ir.Func) []dinstr {
	code := make([]dinstr, len(f.Code))
	for pc := range f.Code {
		in := &f.Code[pc]
		d := &code[pc]
		d.op = in.Op
		d.src = in
		d.dst = int32(in.Dst)
		d.target = in.Target
		if in.Flags&ir.FlagSecondary == 0 && in.Op != ir.FimInj && in.Op != ir.FpmFetch {
			d.cost = 1
		}
		d.a = payload(in.A, &d.kinds, kA)
		d.b = payload(in.B, &d.kinds, kB)
		d.c = payload(in.C, &d.kinds, kC)
		d.d = payload(in.D, &d.kinds, kD)
	}
	return code
}

func payload(o ir.Operand, kinds *uint8, bit uint8) uint64 {
	if o.Kind == ir.KindReg {
		*kinds |= bit
		return uint64(o.Reg)
	}
	return o.Imm
}
