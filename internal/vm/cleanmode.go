package vm

import "sync/atomic"

// Clean-mode interpreter. The dual-chain instrumentation (package
// transform) makes every run pay for its own verifiability: each
// value-producing instruction executes twice and every store consults the
// contamination table — even though the overwhelming majority of executed
// instructions belong to phases where the rank is provably fault-free (the
// golden run, the prefix before an injection fires, and the long tail after
// a fault's contamination has been overwritten). Clean mode exploits a
// structural invariant of the instrumentation to skip all of that work
// without changing a single observable byte:
//
//   - The secondary chain is register-only. Stores bridge the chains
//     through fpm_store and loads through fpm_fetch; no FlagSecondary
//     instruction ever writes memory. So while the contamination table is
//     empty and every shadow register equals its primary twin, every
//     FlagSecondary instruction and every fpm_fetch merely recomputes a
//     value equal to the one the primary chain already holds, and
//     fpm_store(v, v, a, a) is exactly Store v -> a (Observe of equal
//     values records nothing). Skipping them is invisible: cycle
//     accounting (they cost 0; fpm_store and its Store replacement both
//     cost 1), injection-site numbering (fim_inj still executes), outputs,
//     MPI traffic and trace events are all bit-for-bit unchanged.
//
//   - The pairing is static: transform maps original register r to primary
//     2r and shadow 2r+1 and records the paired extent in ir.Func. So the
//     moment the fault-free assumption is about to break, the shadow file
//     is reconstructible in one pass — copy each even register over its
//     odd twin in every live frame — precisely because the primaries ARE
//     the pristine values up to that instant.
//
// Mode transitions:
//
//   clean -> full: just BEFORE the injector may corrupt a value (the
//     fim_inj fast path falls through when the dynamic site reaches the
//     injector's announced NextSite), and just AFTER incoming MPI data
//     installs contamination records from a diverged peer (checked when an
//     intrinsic retires). Both reconstruct shadows from primaries first.
//
//   full -> clean: when the rank is again provably fault-free — the table
//     is empty AND a scan confirms every shadow register equals its
//     primary. Checked where the condition can become true: when an
//     fpm_store empties the table, and at timestep boundaries (which also
//     catch register-only divergence that dies without ever touching
//     memory). The scan is exact, so switching back is always sound.
//
// While in clean mode the shadow registers go stale (skipped instructions
// would have refreshed them). That staleness is invisible by construction:
// nothing reads a shadow register except skipped instructions, substituted
// fpm_stores, and call/ret argument shuffling — which only moves stale
// values into other stale slots that the reconstruction pass overwrites
// wholesale. Snapshots taken in clean mode record the mode (vm.Snapshot),
// so forks resume clean and reconstruct exactly as the parent would have.
//
// Clean mode is per-VM (per rank) and needs no cross-rank coordination: a
// rank's table can only become non-empty through its own injector or
// through message records, both of which are local switch triggers.

// cleanSwitches counts clean->full transitions process-wide. Both switch
// paths are cold (they bracket injection and contamination episodes), so
// the atomic costs nothing measurable; differential tests read it to prove
// a campaign actually exercised both interpreters.
var cleanSwitches atomic.Uint64

// CleanModeSwitches returns the process-wide count of clean->full
// interpreter transitions.
func CleanModeSwitches() uint64 { return cleanSwitches.Load() }

// toFullMode leaves clean mode: reconstructs every live frame's shadow
// registers from their (still pristine) primaries and swaps all frames to
// the full code array. Sets reframe so loop call-outs refetch their cached
// code slice; paths that refetch anyway must clear it.
func (v *VM) toFullMode() {
	cleanSwitches.Add(1)
	v.clean = false
	v.reframe = true
	for i := range v.frames {
		fr := &v.frames[i]
		fr.code = fr.df.code
		regs := v.regs[fr.regBase:]
		for r := 0; r+1 < fr.fn.PairedRegs; r += 2 {
			regs[r+1] = regs[r]
		}
	}
}

// tryCleanMode re-enters clean mode if the rank is provably fault-free:
// empty contamination table and every shadow register equal to its primary
// twin in every live frame. Cheap relative to its call sites (table-empty
// transitions and timestep boundaries).
func (v *VM) tryCleanMode() {
	if v.clean || !v.cleanOK || v.table.Len() != 0 {
		return
	}
	for i := range v.frames {
		fr := &v.frames[i]
		regs := v.regs[fr.regBase:]
		for r := 0; r+1 < fr.fn.PairedRegs; r += 2 {
			if regs[r+1] != regs[r] {
				return
			}
		}
	}
	v.clean = true
	v.reframe = true
	for i := range v.frames {
		v.frames[i].code = v.frames[i].df.clean
	}
}
