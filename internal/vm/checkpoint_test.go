package vm

import (
	"testing"

	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/transform"
)

// buildTickedAccum builds a single-process program: each of `steps`
// timesteps adds step-dependent values into an accumulator array and
// outputs the final checksum. All arithmetic flows through memory, so an
// injected fault contaminates the array and a rollback must undo it.
func buildTickedAccum(steps int64) *ir.Program {
	b := ir.NewBuilder()
	acc := b.Global("acc", 8)
	f := b.Func("main", 0, 0)
	s := f.NewReg()
	i := f.NewReg()
	f.For(s, ir.ImmI(0), ir.ImmI(steps), func() {
		f.Tick(ir.R(s))
		f.For(i, ir.ImmI(0), ir.ImmI(8), func() {
			old := f.Ld(ir.ImmI(acc), ir.R(i))
			inc := f.FMul(ir.R(f.SIToFP(ir.R(f.Add(ir.R(s), ir.ImmI(1))))), ir.ImmF(0.25))
			f.St(ir.R(f.FAdd(ir.R(old), ir.R(inc))), ir.ImmI(acc), ir.R(i))
		})
	})
	sum := f.CF(0)
	f.For(i, ir.ImmI(0), ir.ImmI(8), func() {
		f.Op3(ir.FAdd, sum, ir.R(sum), ir.R(f.Ld(ir.ImmI(acc), ir.R(i))))
	})
	f.OutputF(ir.R(sum))
	f.Iterations(ir.ImmI(steps))
	f.Ret()
	return b.MustBuild()
}

func instrumentT(t *testing.T, prog *ir.Program) *ir.Program {
	t.Helper()
	inst, err := transform.Instrument(prog, transform.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestCheckpointRollbackRecoversGoldenOutput(t *testing.T) {
	inst := instrumentT(t, buildTickedAccum(12))
	golden := New(inst, Config{})
	if err := golden.Run(); err != nil {
		t.Fatal(err)
	}
	sites := golden.Sites()
	if sites == 0 {
		t.Fatal("no sites")
	}
	// Find a fault that corrupts the output when unprotected, then show
	// the checkpointed run recovers the golden output.
	recovered := 0
	for seed := uint64(0); seed < 40 && recovered < 3; seed++ {
		plan := inject.Plan{Faults: []inject.Fault{{
			Site: (sites * seed) / 40, Bit: uint(50 - seed%20),
		}}}
		plain := New(inst, Config{Injector: inject.NewRankInjector(plan, 0)})
		if err := plain.Run(); err != nil {
			continue // crashed; rollback-on-trap is out of scope here
		}
		if len(plain.Outputs()) == 0 || plain.Outputs()[0] == golden.Outputs()[0] {
			continue // fault masked; uninteresting
		}
		prot := New(inst, Config{
			Injector:        inject.NewRankInjector(plan, 0),
			CheckpointEvery: 1,
			RollbackCML:     1, // any contamination triggers a rollback
		})
		if err := prot.Run(); err != nil {
			continue
		}
		if prot.Rollbacks() == 0 {
			continue // contamination stayed within tolerance
		}
		if got := prot.Outputs()[0]; got != golden.Outputs()[0] {
			t.Errorf("fault %v: rollback did not recover: got %v, want %v",
				plan.Faults[0], got, golden.Outputs()[0])
			continue
		}
		// Re-executed work must cost cycles.
		if prot.Cycles() <= golden.Cycles() {
			t.Errorf("fault %v: no re-execution cost: %d <= %d",
				plan.Faults[0], prot.Cycles(), golden.Cycles())
		}
		// History is preserved even though the state was cleaned.
		if !prot.Table().Ever() {
			t.Error("rollback erased contamination history")
		}
		recovered++
	}
	if recovered == 0 {
		t.Fatal("no corrupting fault found to exercise rollback")
	}
}

func TestCheckpointDisabledByDefault(t *testing.T) {
	inst := instrumentT(t, buildTickedAccum(5))
	v := New(inst, Config{})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Rollbacks() != 0 || v.snap != nil {
		t.Error("checkpointing active without configuration")
	}
}

func TestCheckpointFaultFreeIsHarmless(t *testing.T) {
	inst := instrumentT(t, buildTickedAccum(10))
	plain := New(inst, Config{})
	if err := plain.Run(); err != nil {
		t.Fatal(err)
	}
	ck := New(inst, Config{CheckpointEvery: 2, RollbackCML: 4})
	if err := ck.Run(); err != nil {
		t.Fatal(err)
	}
	if ck.Rollbacks() != 0 {
		t.Errorf("fault-free run rolled back %d times", ck.Rollbacks())
	}
	if ck.Outputs()[0] != plain.Outputs()[0] {
		t.Errorf("checkpointing changed the result: %v vs %v",
			ck.Outputs()[0], plain.Outputs()[0])
	}
	if ck.Cycles() != plain.Cycles() {
		t.Errorf("checkpointing changed cycle accounting: %d vs %d",
			ck.Cycles(), plain.Cycles())
	}
}

func TestCheckpointIntervalRespected(t *testing.T) {
	// With a high threshold nothing rolls back, but snapshots keep being
	// taken; nothing should corrupt determinism.
	inst := instrumentT(t, buildTickedAccum(9))
	a := New(inst, Config{CheckpointEvery: 3, RollbackCML: 1 << 30})
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	b := New(inst, Config{})
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Outputs()[0] != b.Outputs()[0] {
		t.Error("snapshot-only run diverged")
	}
}
