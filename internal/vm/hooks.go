package vm

import (
	"sync/atomic"

	"repro/internal/ir"
)

// Injector decides, at each dynamic fim_inj execution, whether to corrupt
// the operand value. site is the running dynamic site index (0-based) within
// this process's execution; the returned bool reports whether a flip was
// applied. Implementations live in package inject; a nil Injector leaves all
// values untouched (golden and profiling runs).
type Injector interface {
	OnSite(site uint64, val uint64) (uint64, bool)
}

// SitePlanner is an optional Injector extension: an injector whose flips
// are planned in advance can reveal the next dynamic site it will act on,
// letting the VM pass through every earlier fim_inj without an interface
// call — and letting the clean-mode interpreter run until the very
// instruction that corrupts state. NextSite returns NoSite when no planned
// fault remains. The value must be refreshed after every OnSite call that
// was allowed through.
type SitePlanner interface {
	Injector
	NextSite() uint64
}

// NoSite is SitePlanner's "no remaining faults" sentinel.
const NoSite = ^uint64(0)

// SiteObserver profiles the dynamic injection-site space: it is called at
// every fim_inj execution with the running dynamic site index, the static
// site ordinal the transform stamped into the fim_inj (its global index in
// the transform.SiteInfo table), and the injection class of the instruction
// consuming the (possibly corrupted) operand — the axes campaigns stratify
// and rank on. Observation forces the full interpreter over every site, so
// it belongs in one-off golden profiling runs, never in injection
// experiments. Sites arrive strictly in order (0, 1, 2, …).
type SiteObserver func(site uint64, static int32, class ir.Class)

// MPIEndpoint is the VM's view of the message-passing runtime. Messages are
// encoded with fpm.EncodeMessage so contamination headers travel with the
// payload exactly as in the paper's Fig. 4. Collectives carry primary and
// pristine values side by side, since the pristine reduction result must be
// computed from pristine contributions.
type MPIEndpoint interface {
	Rank() int
	Size() int
	Send(dst, tag int, msg []byte) error
	Recv(src, tag int) ([]byte, error)
	// Allreduce combines primary and pristine word vectors across ranks.
	// isFloat selects IEEE-754 interpretation of the words.
	Allreduce(prim, prist []uint64, op ir.ReduceOp, isFloat bool) ([]uint64, []uint64, error)
	Barrier() error
	// Bcast distributes root's message to every rank. Non-root ranks pass
	// a nil msg and receive root's; root receives its own back.
	Bcast(root int, msg []byte) ([]byte, error)
	Abort(code int64)
}

// WireBufs is an optional extension of MPIEndpoint: a transport that
// recycles wire buffers. The VM draws send buffers from GetBuf and returns
// point-to-point receive buffers through PutBuf once fully decoded, so
// steady-state message traffic allocates nothing. Broadcast buffers are
// never returned — they are shared by every rank.
type WireBufs interface {
	// GetBuf returns a recycled buffer to encode into, or nil.
	GetBuf() []byte
	// PutBuf hands back a buffer this VM was the sole consumer of.
	PutBuf([]byte)
}

// Tracer observes propagation-relevant events. Implementations live in
// package trace; a nil Tracer disables observation.
type Tracer interface {
	// OnCMLChange fires whenever the contamination table size changes.
	OnCMLChange(localCycles, globalTime uint64, cml int)
	// OnTick fires at application timestep boundaries (IntrinCheckpointT).
	OnTick(localCycles, globalTime uint64, tick int64)
}

// Clock is a global monotone virtual clock shared by all ranks of a job.
// Each VM batches its instruction count into the clock so that cross-rank
// event ordering (paper Fig. 8) has a common time base.
type Clock struct {
	t atomic.Uint64
}

// Add advances the clock by n cycles and returns the new time.
func (c *Clock) Add(n uint64) uint64 { return c.t.Add(n) }

// Now returns the current global time.
func (c *Clock) Now() uint64 { return c.t.Load() }

// AbortFlag is a job-wide flag raised when any rank crashes or aborts, so
// sibling ranks stop instead of hanging.
type AbortFlag struct {
	f atomic.Bool
}

// Raise sets the flag.
func (a *AbortFlag) Raise() { a.f.Store(true) }

// Lower clears the flag, for reuse of a job's infrastructure between runs.
// Only call while no VM is observing the flag.
func (a *AbortFlag) Lower() { a.f.Store(false) }

// Raised reports whether the flag is set.
func (a *AbortFlag) Raised() bool { return a.f.Load() }
