package vm

import (
	"fmt"
	"math"

	"repro/internal/fpm"
	"repro/internal/ir"
)

// intrin executes one intrinsic call. Math intrinsics are pure and simply
// compute; observability intrinsics record into the VM; MPI intrinsics
// bridge to the endpoint with contamination piggyback (paper Fig. 4).
func (v *VM) intrin(fr *frame, in *ir.Instr) {
	base := fr.regBase
	arg := func(i int) uint64 {
		if i >= len(in.Args) {
			v.trap(TrapInvalid, fmt.Sprintf("intrinsic %v: missing arg %d", ir.IntrinID(in.Target), i))
		}
		return v.val(base, in.Args[i])
	}
	argF := func(i int) float64 { return f64(arg(i)) }
	argI := func(i int) int64 { return int64(arg(i)) }
	ret := func(w uint64) {
		if len(in.Rets) > 0 {
			v.regs[base+int(in.Rets[0])] = w
		}
	}

	id := ir.IntrinID(in.Target)
	switch id {
	case ir.IntrinSqrt:
		ret(fbits(math.Sqrt(argF(0))))
	case ir.IntrinSin:
		ret(fbits(math.Sin(argF(0))))
	case ir.IntrinCos:
		ret(fbits(math.Cos(argF(0))))
	case ir.IntrinExp:
		ret(fbits(math.Exp(argF(0))))
	case ir.IntrinLog:
		ret(fbits(math.Log(argF(0))))
	case ir.IntrinFabs:
		ret(fbits(math.Abs(argF(0))))
	case ir.IntrinFloor:
		ret(fbits(math.Floor(argF(0))))
	case ir.IntrinPow:
		ret(fbits(math.Pow(argF(0), argF(1))))
	case ir.IntrinFMin:
		ret(fbits(math.Min(argF(0), argF(1))))
	case ir.IntrinFMax:
		ret(fbits(math.Max(argF(0), argF(1))))

	case ir.IntrinAlloc:
		n := argI(0)
		addr, ok := v.mem.Alloc(n)
		if !ok {
			v.trap(TrapHeapExhausted, fmt.Sprintf("alloc %d words", n))
		}
		ret(uint64(addr))

	case ir.IntrinOutputF:
		if len(v.outputs) >= v.cfg.OutputLimit {
			v.trap(TrapOutputOverflow, "")
		}
		v.outputs = append(v.outputs, argF(0))
	case ir.IntrinOutputI:
		if len(v.outputs) >= v.cfg.OutputLimit {
			v.trap(TrapOutputOverflow, "")
		}
		v.outputs = append(v.outputs, float64(argI(0)))
	case ir.IntrinIterations:
		v.iterations = argI(0)
	case ir.IntrinPrintF:
		fmt.Fprintf(v.cfg.Stdout, "%g\n", argF(0))
	case ir.IntrinPrintI:
		fmt.Fprintf(v.cfg.Stdout, "%d\n", argI(0))
	case ir.IntrinCheckpointT:
		v.ticks++
		// Timestep boundaries are natural fault-application points for
		// the memory-level injection model.
		if v.memFaultsDone != nil {
			v.applyMemFaults()
		}
		if v.cfg.Tracer != nil {
			v.cfg.Tracer.OnTick(v.cycles, v.globalTime(), argI(0))
		}
		if v.checkpointTick() {
			return
		}
		// Timestep boundaries also catch fault-free reconvergence that
		// never touched the table (a flipped register overwritten before
		// any store): re-enter the clean interpreter when provable.
		v.tryCleanMode()
		// Single-process runs have no rendezvous; timestep boundaries are
		// their quiesce points.
		if v.cfg.MPI == nil || v.cfg.MPI.Size() == 1 {
			v.armQuiesce()
		}

	case ir.IntrinMPIRank:
		if v.cfg.MPI != nil {
			ret(uint64(int64(v.cfg.MPI.Rank())))
		} else {
			ret(0)
		}
	case ir.IntrinMPISize:
		if v.cfg.MPI != nil {
			ret(uint64(int64(v.cfg.MPI.Size())))
		} else {
			ret(1)
		}
	case ir.IntrinMPISend:
		v.mpiSend(arg(0), arg(1), arg(2), arg(3))
	case ir.IntrinMPIRecv:
		v.mpiRecv(arg(0), arg(1), arg(2), arg(3))
	case ir.IntrinMPIAllreduceF:
		v.mpiAllreduce(arg(0), arg(1), arg(2), arg(3), true)
		v.armQuiesce()
	case ir.IntrinMPIAllreduceI:
		v.mpiAllreduce(arg(0), arg(1), arg(2), arg(3), false)
		v.armQuiesce()
	case ir.IntrinMPIBarrier:
		if v.cfg.MPI != nil {
			if err := v.cfg.MPI.Barrier(); err != nil {
				v.trap(TrapPeerFailure, err.Error())
			}
		}
		v.armQuiesce()
	case ir.IntrinMPIBcast:
		v.mpiBcast(arg(0), arg(1), arg(2))
		v.armQuiesce()
	case ir.IntrinMPIAbort:
		if v.cfg.MPI != nil {
			v.cfg.MPI.Abort(argI(0))
		}
		v.trap(TrapAbort, fmt.Sprintf("code %d", argI(0)))

	default:
		v.trap(TrapInvalid, fmt.Sprintf("intrinsic %d", in.Target))
	}
}

func (v *VM) endpoint() MPIEndpoint {
	if v.cfg.MPI == nil {
		v.trap(TrapInvalid, "MPI intrinsic without an endpoint")
	}
	return v.cfg.MPI
}

// mpiSend reads the payload from memory, assembles the contamination
// header from the hash table (paper Fig. 4, sender side), and ships both.
func (v *VM) mpiSend(addrW, countW, dstW, tagW uint64) {
	ep := v.endpoint()
	addr, count := int64(addrW), int64(countW)
	// The payload view and the record scratch are both fully copied into
	// the wire buffer by EncodeMessage before execution resumes.
	payload, ok := v.mem.Words(addr, count)
	if !ok {
		v.trapMem(addr)
	}
	v.txRecs = v.table.AppendRange(v.txRecs[:0], addr, count)
	var wire []byte
	if v.wire != nil {
		wire = v.wire.GetBuf()
	}
	msg := fpm.AppendEncodeMessage(wire[:0], payload, v.txRecs)
	dst, tag := int(int64(dstW)), int(int64(tagW))
	if dst < 0 || dst >= ep.Size() {
		v.trap(TrapInvalid, fmt.Sprintf("send to rank %d of %d", dst, ep.Size()))
	}
	if err := ep.Send(dst, tag, msg); err != nil {
		v.trap(TrapPeerFailure, err.Error())
	}
}

// mpiRecv receives a message, installs the payload at the destination
// address, and translates displacement records into local contamination
// entries (paper Fig. 4, receiver side).
func (v *VM) mpiRecv(addrW, countW, srcW, tagW uint64) {
	ep := v.endpoint()
	addr, count := int64(addrW), int64(countW)
	src, tag := int(int64(srcW)), int(int64(tagW))
	if src < 0 || src >= ep.Size() {
		v.trap(TrapInvalid, fmt.Sprintf("recv from rank %d of %d", src, ep.Size()))
	}
	buf, err := ep.Recv(src, tag)
	if err != nil {
		v.trap(TrapPeerFailure, err.Error())
	}
	payload, recs, err := fpm.AppendDecodeMessage(v.rxWords[:0], v.rxRecs[:0], buf)
	if err != nil {
		v.trap(TrapInvalid, err.Error())
	}
	v.rxWords, v.rxRecs = payload, recs
	if v.wire != nil {
		// This VM is the message's sole consumer and the decode copied
		// everything out, so the wire buffer can carry a future message.
		v.wire.PutBuf(buf)
	}
	if int64(len(payload)) != count {
		// A corrupted count on either side surfaces as a size mismatch,
		// which a real MPI would report as a truncation error.
		v.trap(TrapPeerFailure, fmt.Sprintf("message size %d, expected %d", len(payload), count))
	}
	if !v.mem.CopyIn(addr, payload) {
		v.trapMem(addr)
	}
	before := v.table.Len()
	v.table.ApplyRange(addr, payload, recs)
	v.noteCML(before)
}

// mpiAllreduce reduces primary and pristine vectors side by side so the
// pristine result reflects what fault-free ranks would have computed.
func (v *VM) mpiAllreduce(sendW, recvW, countW, opW uint64, isFloat bool) {
	ep := v.endpoint()
	send, recv, count := int64(sendW), int64(recvW), int64(countW)
	// Contribution vectors alias this rank's memory view and scratch. The
	// collective's last arrival reads them while this rank is parked inside
	// Allreduce, and no rank touches contributions after the round result
	// is published — so the buffers are ours again when the call returns.
	prim, ok := v.mem.Words(send, count)
	if !ok {
		v.trapMem(send)
	}
	prist := v.prist[:0]
	for i := int64(0); i < count; i++ {
		prist = append(prist, v.table.PristineOr(send+i, prim[i]))
	}
	v.prist = prist
	rp, rs, err := ep.Allreduce(prim, prist, ir.ReduceOp(int64(opW)), isFloat)
	if err != nil {
		v.trap(TrapPeerFailure, err.Error())
	}
	if int64(len(rp)) != count || int64(len(rs)) != count {
		v.trap(TrapPeerFailure, "allreduce size mismatch")
	}
	if !v.mem.CopyIn(recv, rp) {
		v.trapMem(recv)
	}
	before := v.table.Len()
	for i := int64(0); i < count; i++ {
		v.table.Observe(recv+i, rp[i], rs[i])
	}
	v.noteCML(before)
}

// mpiBcast broadcasts count words at addr from root. All ranks, including
// the root, install the resulting payload and contamination records.
func (v *VM) mpiBcast(addrW, countW, rootW uint64) {
	ep := v.endpoint()
	addr, count := int64(addrW), int64(countW)
	root := int(int64(rootW))
	if root < 0 || root >= ep.Size() {
		v.trap(TrapInvalid, fmt.Sprintf("bcast root %d of %d", root, ep.Size()))
	}
	var msg []byte
	if ep.Rank() == root {
		payload, ok := v.mem.Words(addr, count)
		if !ok {
			v.trapMem(addr)
		}
		v.txRecs = v.table.AppendRange(v.txRecs[:0], addr, count)
		msg = fpm.EncodeMessage(payload, v.txRecs)
	}
	out, err := ep.Bcast(root, msg)
	if err != nil {
		v.trap(TrapPeerFailure, err.Error())
	}
	payload, recs, err := fpm.AppendDecodeMessage(v.rxWords[:0], v.rxRecs[:0], out)
	if err != nil {
		v.trap(TrapInvalid, err.Error())
	}
	v.rxWords, v.rxRecs = payload, recs
	if int64(len(payload)) != count {
		v.trap(TrapPeerFailure, fmt.Sprintf("bcast size %d, expected %d", len(payload), count))
	}
	if !v.mem.CopyIn(addr, payload) {
		v.trapMem(addr)
	}
	before := v.table.Len()
	v.table.ApplyRange(addr, payload, recs)
	v.noteCML(before)
}
