package vm

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/transform"
)

// siteFlipper flips one bit at one dynamic site (a minimal Injector).
type siteFlipper struct {
	site uint64
	bit  uint
	n    uint64
}

func (s *siteFlipper) OnSite(site uint64, val uint64) (uint64, bool) {
	s.n++
	if site == s.site {
		return val ^ (1 << s.bit), true
	}
	return val, false
}

// buildTaintProg builds `b = op(a, operandB)` and instruments it via the
// FPM pass; the single fim_inj site is the op's use of a.
func buildTaintProg(t *testing.T, op ir.Op, operandB int64) *ir.Program {
	t.Helper()
	b := ir.NewBuilder()
	aAddr := b.Global("a", 1)
	bAddr := b.Global("b", 1)
	b.GlobalInit("a", []uint64{19})
	f := b.Func("main", 0, 0)
	a := f.Load(ir.ImmI(aAddr))
	res := f.Bin(op, ir.R(a), ir.ImmI(operandB))
	f.Store(ir.R(res), ir.ImmI(bAddr))
	f.Ret()
	inst, err := transform.Instrument(b.MustBuild(), transform.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestTaintOverestimatesMaskedShift(t *testing.T) {
	// b = a >> 2 with a bit-1 flip: value identical (Table 1 row 4), so
	// the exact tracker records nothing — but taint marks the location.
	prog := buildTaintProg(t, ir.AShr, 2)
	v := New(prog, Config{Injector: &siteFlipper{site: 0, bit: 1}, TrackTaint: true})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Table().Len() != 0 {
		t.Errorf("exact tracker recorded %d locations, want 0 (masked)", v.Table().Len())
	}
	if v.TaintCML() != 1 {
		t.Errorf("taint = %d, want 1 (overestimate)", v.TaintCML())
	}
}

func TestTaintAgreesOnRealPropagation(t *testing.T) {
	// b = a + 5: both trackers must flag the store.
	prog := buildTaintProg(t, ir.Add, 5)
	v := New(prog, Config{Injector: &siteFlipper{site: 0, bit: 1}, TrackTaint: true})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Table().Len() != 1 || v.TaintCML() != 1 {
		t.Errorf("exact=%d taint=%d, want 1 and 1", v.Table().Len(), v.TaintCML())
	}
	if v.TaintPeak() != 1 {
		t.Errorf("taint peak = %d", v.TaintPeak())
	}
}

func TestTaintDisabledByDefault(t *testing.T) {
	prog := buildTaintProg(t, ir.Add, 5)
	v := New(prog, Config{Injector: &siteFlipper{site: 0, bit: 1}})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.TaintCML() != 0 || v.TaintPeak() != 0 {
		t.Error("taint counters nonzero with tracking disabled")
	}
}

func TestMemFaultAppliesAndTracks(t *testing.T) {
	b := ir.NewBuilder()
	g := b.Global("g", 8)
	b.GlobalInit("g", []uint64{1, 2, 3, 4, 5, 6, 7, 8})
	f := b.Func("main", 0, 0)
	i := f.NewReg()
	// Enough work to pass a housekeeping boundary.
	f.For(i, ir.ImmI(0), ir.ImmI(3000), func() {})
	sum := f.CI(0)
	f.For(i, ir.ImmI(0), ir.ImmI(8), func() {
		f.Op3(ir.Add, sum, ir.R(sum), ir.R(f.Ld(ir.ImmI(g), ir.R(i))))
	})
	f.OutputI(ir.R(sum))
	f.Ret()
	prog := b.MustBuild()

	clean := New(prog, Config{})
	if err := clean.Run(); err != nil {
		t.Fatal(err)
	}
	v := New(prog, Config{
		MemFaults:  []MemFault{{AtCycle: 10, AddrUnit: 0.5, Bit: 4}},
		TrackTaint: true,
	})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.MemFaultsApplied() != 1 {
		t.Fatalf("applied = %d", v.MemFaultsApplied())
	}
	if !v.Table().Ever() {
		t.Error("memory fault not recorded in contamination table")
	}
	if v.TaintCML() == 0 {
		t.Error("memory fault not recorded in taint set")
	}
	if v.Outputs()[0] == clean.Outputs()[0] {
		t.Error("flipped word did not change the checksum")
	}
	// The contamination table must hold the pristine value.
	for _, addr := range v.Table().Addresses() {
		w, _ := v.Mem().Read(addr)
		pv, _ := v.Table().Pristine(addr)
		cw, _ := clean.Mem().Read(addr)
		if pv != cw {
			t.Errorf("addr %d: pristine %d, clean run has %d", addr, pv, cw)
		}
		if pv == w {
			t.Errorf("addr %d: table entry equals memory", addr)
		}
	}
}

func TestMemFaultAddrUnitClamping(t *testing.T) {
	b := ir.NewBuilder()
	b.Global("g", 4)
	f := b.Func("main", 0, 0)
	i := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(3000), func() {})
	f.Ret()
	prog := b.MustBuild()
	for _, unit := range []float64{-1, 0, 0.999, 2} {
		v := New(prog, Config{MemFaults: []MemFault{{AtCycle: 1, AddrUnit: unit, Bit: 0}}})
		if err := v.Run(); err != nil {
			t.Fatalf("unit %v: %v", unit, err)
		}
		if v.MemFaultsApplied() != 1 {
			t.Errorf("unit %v: applied = %d", unit, v.MemFaultsApplied())
		}
	}
}
