// Package vm interprets IR programs. It executes both plain programs and
// FPM-instrumented programs (produced by package transform): the FPM
// pseudo-ops fim_inj, fpm_fetch and fpm_store are implemented here against
// the contamination table, forming the paper's "runtime checker".
//
// Cycle accounting counts only application instructions — the secondary
// (pristine) chain and the FPM bookkeeping ops are free — so the virtual
// time base of an instrumented run matches the uninstrumented program and
// the fault propagation speed is expressed in application time.
package vm

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"repro/internal/fpm"
	"repro/internal/ir"
)

// Config parameterizes one VM (one simulated MPI process).
type Config struct {
	// MemWords is the address-space size (default 1<<20 words = 8 MiB).
	MemWords int64
	// CycleLimit kills the run as a hang when exceeded; 0 means no limit.
	CycleLimit uint64
	// Injector applies LLFI++ bit flips at fim_inj sites; nil disables.
	Injector Injector
	// MPI connects the VM to its job; nil runs single-process.
	MPI MPIEndpoint
	// Tracer observes contamination changes and timesteps; nil disables.
	Tracer Tracer
	// Clock is the job-global virtual clock; nil uses local cycles.
	Clock *Clock
	// Abort is the job-wide failure flag; nil disables peer-failure checks.
	Abort *AbortFlag
	// Stdout receives debug prints (default: discarded).
	Stdout io.Writer
	// OutputLimit bounds the observable output vector (default 1<<20).
	OutputLimit int
	// TrackTaint enables the naive taint tracker alongside the FPM (for
	// the overestimation ablation).
	TrackTaint bool
	// MemFaults are direct memory-level faults (the injection-model
	// ablation); they fire at housekeeping granularity.
	MemFaults []MemFault
	// CheckpointEvery snapshots the full execution state every N timestep
	// boundaries (0 disables checkpointing).
	CheckpointEvery int64
	// RollbackCML rolls back to the last snapshot when the contamination
	// table reaches this size at a timestep boundary (0 disables; requires
	// CheckpointEvery). The re-executed work costs application cycles.
	RollbackCML int
	// State, when non-nil, donates reusable buffers (address space, table,
	// registers, frames) to this VM instead of allocating fresh ones; see
	// State. Observable behaviour is identical either way.
	State *State
	// Quiesce, when non-nil, observes quiesce points (see snapshot.go); it
	// is how golden runs profile and capture snapshot-fork state.
	Quiesce QuiesceHook
	// SiteObserver, when non-nil, observes every dynamic injection site
	// with its consumer's instruction class (see hooks.go). Profiling
	// only: it disables the clean-mode interpreter and the site fast path
	// so no site is skipped.
	SiteObserver SiteObserver
	// ForkRestore declares that the caller will RestoreSnap a snapshot
	// onto this VM before running it. New then skips resetting the pooled
	// State and skips global initialization — the restore overwrites both
	// — which preserves the State's delta-restore base so the restore can
	// copy only dirtied blocks instead of the whole golden state.
	ForkRestore bool
}

// VM executes one IR program in one address space.
type VM struct {
	prog  *ir.Program
	dprog *dprog
	cfg   Config
	mem   *Memory
	table *fpm.Table

	regs   []uint64
	frames []frame
	// ret carries call arguments and return values between frames; it is
	// fully overwritten before each use.
	ret    []uint64
	cycles uint64
	pushed uint64 // cycles already added to the global clock

	sites      uint64
	injCycles  []uint64
	outputs    []float64
	iterations int64
	ticks      int64

	taint            *taintState
	memFaultsDone    []bool
	memFaultsApplied int

	// MPI scratch, reused across the many messages of a run (see intrin.go
	// for the aliasing rules that make each reuse safe).
	txRecs  []fpm.MsgRecord
	rxWords []uint64
	rxRecs  []fpm.MsgRecord
	prist   []uint64
	// wire is cfg.MPI's buffer-recycling extension, when it has one.
	wire WireBufs

	snap      *vmSnapshot
	rollbacks int
	restored  bool

	// Clean-mode interpreter state (see cleanmode.go). clean is the
	// current mode; cleanOK caps it (program layout + config allow clean
	// execution at all); reframe asks the loop to refetch its cached code
	// slice after a mode switch that happened inside a call-out.
	clean   bool
	cleanOK bool
	reframe bool
	// nextSite is the next dynamic fim_inj site at which the injector may
	// act: sites below it take a pass-through fast path. NoSite when no
	// injector (or no remaining fault) is armed; 0 when the injector
	// cannot plan ahead and must see every site.
	nextSite uint64
	planner  SitePlanner

	// Quiesce-point bookkeeping (see snapshot.go). qarm is set by an
	// intrinsic that completed at a consistent cut; the loop fires the hook
	// once the intrinsic has fully retired.
	qseq uint64
	qarm bool
}

type frame struct {
	fn        *ir.Func
	df        *dfunc   // fn's decoded forms (shared, immutable)
	code      []dinstr // df's body for the current interpreter mode
	pc        int
	regBase   int
	frameBase int64
	retRegs   []ir.Reg
}

type trapPanic struct{ t *Trap }

// New prepares a VM for prog. The program must have been validated.
func New(prog *ir.Program, cfg Config) *VM {
	if cfg.MemWords == 0 {
		cfg.MemWords = 1 << 20
	}
	if cfg.OutputLimit == 0 {
		cfg.OutputLimit = 1 << 20
	}
	if cfg.Stdout == nil {
		cfg.Stdout = io.Discard
	}
	v := &VM{
		prog:  prog,
		dprog: decodedOf(prog),
		cfg:   cfg,
	}
	if cfg.State != nil {
		cfg.State.adopt(v, cfg.MemWords, prog.GlobalWords, cfg.ForkRestore)
	} else {
		v.mem = NewMemory(cfg.MemWords, prog.GlobalWords)
		v.table = fpm.NewTable()
	}
	if !cfg.ForkRestore || cfg.State == nil {
		for _, g := range prog.Globals {
			if len(g.Init) > 0 {
				v.mem.InitGlobals(g.Base, g.Init)
			}
		}
	}
	if cfg.TrackTaint {
		v.taint = newTaintState()
	}
	if wb, ok := cfg.MPI.(WireBufs); ok {
		v.wire = wb
	}
	if len(cfg.MemFaults) > 0 {
		v.memFaultsDone = make([]bool, len(cfg.MemFaults))
	}
	v.planner, _ = cfg.Injector.(SitePlanner)
	v.refreshNextSite()
	// Clean mode needs: a program whose dual-chain register pairing is
	// declared, no ablation that observes the skipped instructions (taint)
	// or mutates memory behind the table's back (memory faults), no in-VM
	// checkpointing (its snapshots are not mode-aware), and an injector
	// that can announce its next site — otherwise the very first fim_inj
	// would bounce the VM out of clean mode anyway.
	v.cleanOK = v.dprog.cleanOK && !cleanInterpOff.Load() &&
		!cfg.TrackTaint && len(cfg.MemFaults) == 0 && cfg.CheckpointEvery == 0 &&
		cfg.SiteObserver == nil && (cfg.Injector == nil || v.planner != nil)
	// A fresh run starts fault-free with an all-zero register file, so
	// shadows trivially mirror primaries. Fork restores overwrite the mode
	// from the snapshot (see RestoreSnap).
	v.clean = v.cleanOK
	return v
}

// cleanInterpOff disables the clean-mode interpreter when set. The zero
// value — clean mode enabled — is the default; benches and the
// differential tests flip it to compare the two interpreters.
var cleanInterpOff atomic.Bool

// SetCleanInterp toggles the clean-mode interpreter (default on): while a
// rank is provably fault-free the VM skips the redundant secondary chain.
// Takes effect for VMs constructed after the call. The full interpreter
// remains the fallback either way; the toggle exists so benches and CI can
// measure and differentially test both paths.
func SetCleanInterp(on bool) { cleanInterpOff.Store(!on) }

// CleanInterpEnabled reports whether the clean-mode interpreter is enabled.
func CleanInterpEnabled() bool { return !cleanInterpOff.Load() }

// refreshNextSite re-reads the injector's next planned site after any call
// that may have advanced it.
func (v *VM) refreshNextSite() {
	switch {
	case v.cfg.SiteObserver != nil:
		v.nextSite = 0 // profiling: every site takes the observed slow path
	case v.planner != nil:
		v.nextSite = v.planner.NextSite()
	case v.cfg.Injector != nil:
		v.nextSite = 0 // unplannable: every site goes to the injector
	default:
		v.nextSite = NoSite
	}
}

// Mem exposes the address space (for tests and the harness).
func (v *VM) Mem() *Memory { return v.mem }

// Tracer exposes the configured tracer (used by snapshot capture hooks).
func (v *VM) Tracer() Tracer { return v.cfg.Tracer }

// Table exposes the contamination table.
func (v *VM) Table() *fpm.Table { return v.table }

// Outputs returns the observable output vector produced by the run.
func (v *VM) Outputs() []float64 { return v.outputs }

// Cycles returns the application cycles executed.
func (v *VM) Cycles() uint64 { return v.cycles }

// Sites returns the number of dynamic fim_inj sites executed; after a
// fault-free profiling run this is the injection-site space size.
func (v *VM) Sites() uint64 { return v.sites }

// InjectionCycles returns the application-cycle timestamps at which faults
// were actually applied during the run (paper Fig. 5's time axis).
func (v *VM) InjectionCycles() []uint64 { return v.injCycles }

// Iterations returns the solver iteration count reported by the program
// (0 when never reported).
func (v *VM) Iterations() int64 { return v.iterations }

// Ticks returns the number of timestep boundaries the program marked.
func (v *VM) Ticks() int64 { return v.ticks }

func (v *VM) trap(kind TrapKind, detail string) {
	fn, pc := "?", -1
	if n := len(v.frames); n > 0 {
		fn = v.frames[n-1].fn.Name
		pc = v.frames[n-1].pc
	}
	panic(trapPanic{&Trap{Kind: kind, Func: fn, PC: pc, Cycles: v.cycles, Detail: detail}})
}

// val evaluates an undecoded operand; used off the hot path (intrinsic
// arguments, call/ret argument lists, the taint ablation).
func (v *VM) val(base int, o ir.Operand) uint64 {
	if o.Kind == ir.KindReg {
		return v.regs[base+int(o.Reg)]
	}
	return o.Imm
}

// opA..opD evaluate pre-decoded operand payloads: one precomputed bit says
// whether the payload is a register index or the immediate itself. They
// take the register file as an argument so the interpreter loop's cached
// local slice is used instead of re-loading v.regs per operand.
func opA(regs []uint64, base int, in *dinstr) uint64 {
	if in.kinds&kA != 0 {
		return regs[base+int(in.a)]
	}
	return in.a
}

func opB(regs []uint64, base int, in *dinstr) uint64 {
	if in.kinds&kB != 0 {
		return regs[base+int(in.b)]
	}
	return in.b
}

func opC(regs []uint64, base int, in *dinstr) uint64 {
	if in.kinds&kC != 0 {
		return regs[base+int(in.c)]
	}
	return in.c
}

func opD(regs []uint64, base int, in *dinstr) uint64 {
	if in.kinds&kD != 0 {
		return regs[base+int(in.d)]
	}
	return in.d
}

func f64(bits uint64) float64 { return math.Float64frombits(bits) }
func fbits(f float64) uint64  { return math.Float64bits(f) }

func b2w(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// fptosi emulates hardware float->int conversion: NaN and out-of-range
// values produce INT64_MIN (x86 cvttsd2si semantics) instead of trapping,
// so corrupted floats become wild indices that crash at the memory access,
// as on real machines.
func fptosi(f float64) int64 {
	if math.IsNaN(f) || f >= 9.223372036854776e18 || f < -9.223372036854776e18 {
		return math.MinInt64
	}
	return int64(f)
}

func (v *VM) globalTime() uint64 {
	if v.cfg.Clock != nil {
		return v.cfg.Clock.Now()
	}
	return v.cycles
}

func (v *VM) housekeep() {
	if v.cfg.Clock != nil {
		v.cfg.Clock.Add(v.cycles - v.pushed)
		v.pushed = v.cycles
	}
	if v.cfg.CycleLimit > 0 && v.cycles > v.cfg.CycleLimit {
		v.trap(TrapCycleLimit, "")
	}
	if v.cfg.Abort != nil && v.cfg.Abort.Raised() {
		v.trap(TrapPeerFailure, "job aborted")
	}
	if v.memFaultsDone != nil {
		v.applyMemFaults()
	}
}

func (v *VM) noteCML(before int) {
	if v.cfg.Tracer != nil && v.table.Len() != before {
		v.cfg.Tracer.OnCMLChange(v.cycles, v.globalTime(), v.table.Len())
	}
}

// pushFrame prepares a frame for callee (function index fi) with the
// argument values already evaluated into args.
func (v *VM) pushFrame(fi int, args []uint64, retRegs []ir.Reg) {
	df := &v.dprog.funcs[fi]
	callee := df.fn
	regBase := 0
	if n := len(v.frames); n > 0 {
		top := &v.frames[n-1]
		regBase = top.regBase + top.fn.NumRegs
	}
	need := regBase + callee.NumRegs
	// Grow the register file in one step (amortized doubling), then clear
	// the callee's window with a single memclr. The window always covers
	// any capacity newly exposed by reslicing, so a pooled register file
	// cannot leak values between runs.
	if need > len(v.regs) {
		if need <= cap(v.regs) {
			v.regs = v.regs[:need]
		} else {
			grown := make([]uint64, need, max(need, 2*cap(v.regs)))
			copy(grown, v.regs)
			v.regs = grown
		}
	}
	rf := v.regs[regBase:need]
	clear(rf)
	copy(rf, args)
	if v.taint != nil {
		v.taintGrow(need)
		tf := v.taint.regs[regBase : regBase+callee.NumRegs]
		for i := range tf {
			tf[i] = false
		}
		copy(tf, v.taint.scratch)
	}
	fb := int64(0)
	if callee.Frame > 0 {
		var ok bool
		fb, ok = v.mem.PushFrame(int64(callee.Frame))
		if !ok {
			v.trap(TrapStackOverflow, callee.Name)
		}
	}
	v.frames = append(v.frames, frame{
		fn: callee, df: df, code: df.codeFor(v.clean),
		regBase: regBase, frameBase: fb, retRegs: retRegs,
	})
	if len(v.frames) > 4096 {
		v.trap(TrapStackOverflow, "call depth")
	}
}

// Run executes the entry function to completion. It returns nil on success
// or the *Trap / wrapped MPI failure that killed the run.
func (v *VM) Run() error {
	entry := v.prog.Funcs[v.prog.Entry]
	if entry.NumParams != 0 {
		return fmt.Errorf("vm: entry %q takes parameters", entry.Name)
	}
	return v.execute()
}

// execute drives the interpreter with trap containment; it pushes the entry
// frame unless a snapshot restore already installed a frame stack.
func (v *VM) execute() (err error) {
	defer func() {
		if r := recover(); r != nil {
			tp, ok := r.(trapPanic)
			if !ok {
				panic(r)
			}
			err = tp.t
			if v.cfg.Abort != nil {
				v.cfg.Abort.Raise()
			}
		}
		// Push any remaining cycles so the global clock is exact.
		if v.cfg.Clock != nil && v.cycles > v.pushed {
			v.cfg.Clock.Add(v.cycles - v.pushed)
			v.pushed = v.cycles
		}
	}()
	if len(v.frames) == 0 {
		v.pushFrame(v.prog.Entry, nil, nil)
	}
	v.loop()
	return nil
}

// loop is the interpreter. It runs until the entry function returns. It
// executes the pre-decoded form (see decode.go): cycle accounting is a
// single precomputed byte and operand fetches dispatch on a precomputed
// kind bit instead of re-inspecting ir.Operand tags.
//
// The hot state — program counter, register window base, code slice,
// register file and memory — lives in locals for the duration of a frame;
// the inner loop touches the VM and frame structs only on the cold paths.
// fr.pc is therefore stale between sync points and MUST be re-synced
// (fr.pc = pc) before anything that can observe it: every trap, housekeep
// (cycle limit / abort / memory faults can trap), and intrinsics (whose
// checkpoint and quiesce hooks capture the frame stack). Frame changes
// (Call, Ret, checkpoint rollback) and anything that may swap the register
// file restart the outer loop, which refetches all cached state.
func (v *VM) loop() {
frames:
	for {
		fr := &v.frames[len(v.frames)-1]
		code := fr.code
		base := fr.regBase
		regs := v.regs
		mem := v.mem
		taint := v.taint
		pc := fr.pc
		for {
			if uint(pc) >= uint(len(code)) {
				fr.pc = pc
				v.trap(TrapInvalid, "pc out of range")
			}
			in := &code[pc]

			if taint != nil {
				fr.pc = pc
				v.taintStep(fr, &fr.fn.Code[pc])
			}

			// Fused fim_inj groups (clean-mode code only): this instruction
			// absorbed the nsites injection sites emitted just before it. If
			// a planned fault falls inside that range, replay the group from
			// its first fim_inj under the full interpreter; otherwise retire
			// all of its sites in one step. Checked before cycle accounting
			// so the replay does not count this instruction's cycle twice.
			if in.nsites != 0 {
				ns := v.sites + uint64(in.nsites)
				if ns > v.nextSite {
					fr.pc = pc - int(in.nsites)
					v.toFullMode()
					v.reframe = false
					continue frames
				}
				v.sites = ns
			}

			// Application cycle accounting, precomputed at decode time:
			// secondary-chain instructions and FPM bookkeeping are free;
			// fpm_store counts as the store it replaced.
			if in.cost != 0 {
				v.cycles++
				if v.cycles&1023 == 0 {
					fr.pc = pc
					v.housekeep()
				}
			}

			switch in.op {
			case ir.Nop:

			case opSkip:
				// Clean mode only: this instruction is redundant while the
				// rank is fault-free; hop over the whole skipped run.
				pc = int(in.target)
				continue

			case ir.ConstI, ir.ConstF:
				regs[base+int(in.dst)] = in.a
			case ir.Mov:
				regs[base+int(in.dst)] = opA(regs, base, in)

			case ir.Add:
				regs[base+int(in.dst)] = uint64(int64(opA(regs, base, in)) + int64(opB(regs, base, in)))
			case ir.Sub:
				regs[base+int(in.dst)] = uint64(int64(opA(regs, base, in)) - int64(opB(regs, base, in)))
			case ir.Mul:
				regs[base+int(in.dst)] = uint64(int64(opA(regs, base, in)) * int64(opB(regs, base, in)))
			case ir.SDiv:
				a, b := int64(opA(regs, base, in)), int64(opB(regs, base, in))
				if b == 0 {
					fr.pc = pc
					v.trap(TrapDivZero, "sdiv")
				}
				if a == math.MinInt64 && b == -1 {
					fr.pc = pc
					v.trap(TrapDivOverflow, "sdiv")
				}
				regs[base+int(in.dst)] = uint64(a / b)
			case ir.SRem:
				a, b := int64(opA(regs, base, in)), int64(opB(regs, base, in))
				if b == 0 {
					fr.pc = pc
					v.trap(TrapDivZero, "srem")
				}
				if a == math.MinInt64 && b == -1 {
					fr.pc = pc
					v.trap(TrapDivOverflow, "srem")
				}
				regs[base+int(in.dst)] = uint64(a % b)
			case ir.Shl:
				regs[base+int(in.dst)] = opA(regs, base, in) << (opB(regs, base, in) & 63)
			case ir.LShr:
				regs[base+int(in.dst)] = opA(regs, base, in) >> (opB(regs, base, in) & 63)
			case ir.AShr:
				regs[base+int(in.dst)] = uint64(int64(opA(regs, base, in)) >> (opB(regs, base, in) & 63))
			case ir.And:
				regs[base+int(in.dst)] = opA(regs, base, in) & opB(regs, base, in)
			case ir.Or:
				regs[base+int(in.dst)] = opA(regs, base, in) | opB(regs, base, in)
			case ir.Xor:
				regs[base+int(in.dst)] = opA(regs, base, in) ^ opB(regs, base, in)

			case ir.FAdd:
				regs[base+int(in.dst)] = fbits(f64(opA(regs, base, in)) + f64(opB(regs, base, in)))
			case ir.FSub:
				regs[base+int(in.dst)] = fbits(f64(opA(regs, base, in)) - f64(opB(regs, base, in)))
			case ir.FMul:
				regs[base+int(in.dst)] = fbits(f64(opA(regs, base, in)) * f64(opB(regs, base, in)))
			case ir.FDiv:
				regs[base+int(in.dst)] = fbits(f64(opA(regs, base, in)) / f64(opB(regs, base, in)))

			case ir.SIToFP:
				regs[base+int(in.dst)] = fbits(float64(int64(opA(regs, base, in))))
			case ir.FPToSI:
				regs[base+int(in.dst)] = uint64(fptosi(f64(opA(regs, base, in))))

			case ir.ICmpEQ:
				regs[base+int(in.dst)] = b2w(int64(opA(regs, base, in)) == int64(opB(regs, base, in)))
			case ir.ICmpNE:
				regs[base+int(in.dst)] = b2w(int64(opA(regs, base, in)) != int64(opB(regs, base, in)))
			case ir.ICmpSLT:
				regs[base+int(in.dst)] = b2w(int64(opA(regs, base, in)) < int64(opB(regs, base, in)))
			case ir.ICmpSLE:
				regs[base+int(in.dst)] = b2w(int64(opA(regs, base, in)) <= int64(opB(regs, base, in)))
			case ir.ICmpSGT:
				regs[base+int(in.dst)] = b2w(int64(opA(regs, base, in)) > int64(opB(regs, base, in)))
			case ir.ICmpSGE:
				regs[base+int(in.dst)] = b2w(int64(opA(regs, base, in)) >= int64(opB(regs, base, in)))

			case ir.FCmpEQ:
				regs[base+int(in.dst)] = b2w(f64(opA(regs, base, in)) == f64(opB(regs, base, in)))
			case ir.FCmpNE:
				regs[base+int(in.dst)] = b2w(f64(opA(regs, base, in)) != f64(opB(regs, base, in)))
			case ir.FCmpLT:
				regs[base+int(in.dst)] = b2w(f64(opA(regs, base, in)) < f64(opB(regs, base, in)))
			case ir.FCmpLE:
				regs[base+int(in.dst)] = b2w(f64(opA(regs, base, in)) <= f64(opB(regs, base, in)))
			case ir.FCmpGT:
				regs[base+int(in.dst)] = b2w(f64(opA(regs, base, in)) > f64(opB(regs, base, in)))
			case ir.FCmpGE:
				regs[base+int(in.dst)] = b2w(f64(opA(regs, base, in)) >= f64(opB(regs, base, in)))

			case ir.Select:
				if opA(regs, base, in) != 0 {
					regs[base+int(in.dst)] = opB(regs, base, in)
				} else {
					regs[base+int(in.dst)] = opC(regs, base, in)
				}

			case ir.Load:
				addr := int64(opA(regs, base, in))
				w, ok := mem.Read(addr)
				if !ok {
					fr.pc = pc
					v.trapMem(addr)
				}
				regs[base+int(in.dst)] = w
			case ir.Store:
				addr := int64(opB(regs, base, in))
				if !mem.Write(addr, opA(regs, base, in)) {
					fr.pc = pc
					v.trapMem(addr)
				}
			case ir.FrameAddr:
				regs[base+int(in.dst)] = uint64(fr.frameBase + int64(in.a))

			case ir.Jmp:
				pc = int(in.target)
				continue
			case ir.Bnz:
				if opA(regs, base, in) != 0 {
					pc = int(in.target)
					continue
				}
			case ir.Bz:
				if opA(regs, base, in) == 0 {
					pc = int(in.target)
					continue
				}

			case ir.Call:
				args := in.src.Args
				v.ret = v.ret[:0]
				for _, a := range args {
					v.ret = append(v.ret, v.val(base, a))
				}
				if v.taint != nil {
					v.taint.scratch = v.taint.scratch[:0]
					for _, a := range args {
						v.taint.scratch = append(v.taint.scratch, v.taintOf(base, a))
					}
				}
				fr.pc = pc + 1
				v.pushFrame(int(in.target), v.ret, in.src.Rets)
				continue frames

			case ir.Ret:
				args := in.src.Args
				v.ret = v.ret[:0]
				for _, a := range args {
					v.ret = append(v.ret, v.val(base, a))
				}
				popped := v.frames[len(v.frames)-1]
				if popped.fn.Frame > 0 {
					v.mem.PopFrame(int64(popped.fn.Frame))
				}
				v.frames = v.frames[:len(v.frames)-1]
				if len(v.frames) == 0 {
					return // entry returned: program complete
				}
				caller := &v.frames[len(v.frames)-1]
				for i, r := range popped.retRegs {
					if i < len(v.ret) {
						v.regs[caller.regBase+int(r)] = v.ret[i]
						if v.taint != nil && i < len(args) {
							v.taint.regs[caller.regBase+int(r)] = v.taintOf(base, args[i])
						}
					}
				}
				continue frames

			case ir.Intrin:
				fr.pc = pc
				v.intrin(fr, in.src)
				if v.restored {
					// A checkpoint rollback replaced the frame stack;
					// refetch everything.
					v.restored = false
					v.qarm = false
					continue frames
				}
				if v.clean && v.table.Len() != 0 {
					// Incoming MPI data installed contamination records
					// while the secondary chain was parked: rebuild the
					// shadows and fall back to the full interpreter before
					// the next instruction runs.
					v.toFullMode()
				}
				if v.qarm {
					// The intrinsic completed at a consistent cut: fire the
					// quiesce hook before retiring it, so a snapshot taken
					// here resumes at the next instruction.
					v.qarm = false
					seq := v.qseq
					v.qseq++
					v.cfg.Quiesce.Quiesce(v, seq)
				}
				if v.reframe {
					// A mode switch inside the intrinsic (or just above)
					// swapped the frames' code arrays; the intrinsic has
					// retired, so resume at the next pc under the new mode.
					v.reframe = false
					fr.pc = pc + 1
					continue frames
				}
				// Intrinsics write results through v.regs; hooks above may
				// capture or adjust state. Neither swaps the register file,
				// but refetch defensively — this path is not hot.
				regs = v.regs

			case ir.FimInj:
				site := v.sites
				if site < v.nextSite {
					// No planned fault can fire here: pass the operand
					// through without consulting the injector.
					v.sites++
					if v.taint != nil {
						v.taint.regs[base+int(in.dst)] = v.taintOf(base, in.src.A)
					}
					regs[base+int(in.dst)] = opA(regs, base, in)
					break
				}
				if v.clean {
					// The injector may corrupt state at this very site:
					// leave clean mode first (reconstructing the shadow
					// registers from their still-pristine primaries), then
					// re-execute this fim_inj under the full interpreter.
					// v.sites is untouched, so no site is double-counted.
					fr.pc = pc
					v.toFullMode()
					v.reframe = false // this path refetches via continue
					continue frames
				}
				val := opA(regs, base, in)
				v.sites++
				if v.taint != nil {
					v.taint.regs[base+int(in.dst)] = v.taintOf(base, in.src.A)
				}
				if v.cfg.SiteObserver != nil {
					v.cfg.SiteObserver(site, in.target, siteClass(fr.fn, pc))
				}
				if v.cfg.Injector != nil {
					var flipped bool
					val, flipped = v.cfg.Injector.OnSite(site, val)
					if flipped {
						v.injCycles = append(v.injCycles, v.cycles)
						if v.taint != nil {
							v.taint.regs[base+int(in.dst)] = true
						}
					}
					v.refreshNextSite()
				}
				regs[base+int(in.dst)] = val

			case ir.FpmFetch:
				addr := int64(opA(regs, base, in))
				w, ok := mem.Read(addr)
				if !ok {
					fr.pc = pc
					v.trapMem(addr)
				}
				regs[base+int(in.dst)] = v.table.PristineOr(addr, w)

			case ir.FpmStore:
				fr.pc = pc
				v.fpmStore(regs, base, in)
				if v.reframe {
					// The store emptied the table and the VM re-entered
					// clean mode: resume at the next pc under the new code.
					v.reframe = false
					fr.pc = pc + 1
					continue frames
				}

			default:
				fr.pc = pc
				v.trap(TrapInvalid, in.op.String())
			}
			// Threaded fall-through: pc+1 in full code, the next retained pc
			// in clean code (stepping over skipped instrumentation).
			pc = int(in.next)
		}
	}
}

// siteClass resolves the injection class of the fim_inj at pc: the
// instrumentation emits one fim_inj per source operand immediately before
// the instruction consuming the guarded temporaries, so the first
// non-fim_inj opcode after pc is the site's consumer. Selective protection
// (transform.Options.Protect) interposes a correction Mov that rewrites a
// fim_inj temporary; such moves are part of the site, not its consumer, and
// are skipped.
func siteClass(fn *ir.Func, pc int) ir.Class {
	for i := pc + 1; i < len(fn.Code); i++ {
		in := &fn.Code[i]
		if in.Op == ir.FimInj {
			continue
		}
		if in.Op == ir.Mov && in.Flags == 0 && protectsInj(fn, pc, i) {
			continue
		}
		return ir.ClassOf(in.Op)
	}
	return ir.ClassNone
}

// protectsInj reports whether the Mov at pc i restores the destination of a
// fim_inj in [from, i) — the selective-protection idiom — rather than being
// an ordinary move.
func protectsInj(fn *ir.Func, from, i int) bool {
	dst := fn.Code[i].Dst
	for j := from; j < i; j++ {
		if fn.Code[j].Op == ir.FimInj && fn.Code[j].Dst == dst {
			return true
		}
	}
	return false
}

func (v *VM) trapMem(addr int64) {
	if addr == 0 {
		v.trap(TrapNull, "")
	}
	v.trap(TrapOOB, fmt.Sprintf("address %d", addr))
}

// fpmStore implements the paper's fpm_store runtime call, including the
// duplicate effect of corrupted store addresses (§3.2 "Store addresses").
func (v *VM) fpmStore(regs []uint64, base int, in *dinstr) {
	vP := opA(regs, base, in) // primary value
	vS := opB(regs, base, in) // pristine value
	aP := int64(opC(regs, base, in))
	aS := int64(opD(regs, base, in))
	before := v.table.Len()
	if aP == aS {
		if !v.mem.Write(aP, vP) {
			v.trapMem(aP)
		}
		v.table.Observe(aP, vP, vS)
		v.noteCML(before)
		if before > 0 && v.table.Len() == 0 {
			// The store cleansed the last contaminated location: the rank
			// may be fault-free again.
			v.tryCleanMode()
		}
		return
	}
	// The address register is corrupted: the location actually written
	// (aP) now holds a value it should not, and the location that should
	// have been written (aS) was not.
	oldPristine, ok := v.mem.Read(aP)
	if !ok {
		v.trapMem(aP)
	}
	oldPristine = v.table.PristineOr(aP, oldPristine)
	if !v.mem.Write(aP, vP) {
		v.trapMem(aP)
	}
	v.table.Observe(aP, vP, oldPristine)
	cur, ok := v.mem.Read(aS)
	if !ok {
		// The pristine address is the one the fault-free program would
		// use; if it is invalid the original program was broken. Trap.
		v.trapMem(aS)
	}
	v.table.Observe(aS, cur, vS)
	v.noteCML(before)
}
