package vm

import (
	"testing"
)

// snapWords reconstructs the full word array a snapshot denotes: lo at
// [1, loHi), hi at [hiLo, size), zero everywhere else (the Memory
// watermark invariant).
func snapWords(s *MemSnap) []uint64 {
	w := make([]uint64, s.size)
	copy(w[1:], s.lo)
	copy(w[s.hiLo:], s.hi)
	return w
}

// checkEqualsSnap asserts the memory is word-for-word and
// scalar-for-scalar the snapshotted state, with a clean dirty bitmap and
// s installed as the delta base.
func checkEqualsSnap(t *testing.T, m *Memory, s *MemSnap) {
	t.Helper()
	want := snapWords(s)
	if int64(len(m.words)) != s.size {
		t.Fatalf("size %d after restore, snapshot has %d", len(m.words), s.size)
	}
	for a, w := range want {
		if m.words[a] != w {
			t.Fatalf("word %d = %#x after restore, want %#x", a, m.words[a], w)
		}
	}
	if m.globalEnd != s.globalEnd || m.brk != s.brk || m.sp != s.sp ||
		m.loHi != s.loHi || m.hiLo != s.hiLo {
		t.Fatalf("scalars (%d,%d,%d,%d,%d) after restore, want (%d,%d,%d,%d,%d)",
			m.globalEnd, m.brk, m.sp, m.loHi, m.hiLo,
			s.globalEnd, s.brk, s.sp, s.loHi, s.hiLo)
	}
	for i, w := range m.dirty {
		if w != 0 {
			t.Fatalf("dirty bitmap word %d = %#x after restore, want clean", i, w)
		}
	}
	if m.base != s || m.baseGen != s.gen {
		t.Fatalf("restore did not re-base on the snapshot")
	}
}

// TestDeltaRestoreAboveWatermark forks writes above the golden low
// watermark — into the zero gap the snapshot never copied, and into
// stack frames deeper than the snapshot ever pushed — and checks the
// delta restore re-zeroes them.
func TestDeltaRestoreAboveWatermark(t *testing.T) {
	m := NewMemory(4096, 64)
	for a := int64(1); a < 65; a++ {
		m.Write(a, uint64(a)*3)
	}
	s := m.Snapshot(nil)
	if s.loHi != 65 || s.hiLo != int64(len(m.words)) {
		t.Fatalf("unexpected golden watermarks loHi=%d hiLo=%d", s.loHi, s.hiLo)
	}
	// Wild write far above the golden low watermark.
	if !m.Write(3000, 7) {
		t.Fatal("write trapped")
	}
	// Ordinary dirt inside the copied segment.
	m.Write(30, 9)
	// Stack dirt below the golden high watermark.
	fb, ok := m.PushFrame(32)
	if !ok {
		t.Fatal("push trapped")
	}
	m.Write(fb+1, 11)
	m.PopFrame(32)
	st := m.RestoreSnap(s)
	if !st.Delta {
		t.Fatalf("expected delta restore, got %+v", st)
	}
	if st.DirtyBlocks == 0 || st.DirtyBlocks >= st.TotalBlocks {
		t.Fatalf("delta restore touched %d of %d blocks", st.DirtyBlocks, st.TotalBlocks)
	}
	checkEqualsSnap(t, m, s)
}

// TestDeltaRestoreWatermarkShrink runs two successive forks off one
// snapshot where the second dirties far less than the first: the live
// watermarks shrink back between forks and the second restore must pay
// only for the second fork's dirt.
func TestDeltaRestoreWatermarkShrink(t *testing.T) {
	m := NewMemory(4096, 64)
	m.Write(1, 42)
	s := m.Snapshot(nil)
	// Fork 1: wide — long heap run plus a deep frame.
	if _, ok := m.Alloc(512); !ok {
		t.Fatal("alloc trapped")
	}
	for a := int64(65); a < 577; a += 7 {
		m.Write(a, uint64(a))
	}
	fb, ok := m.PushFrame(256)
	if !ok {
		t.Fatal("push trapped")
	}
	m.Write(fb, 5)
	st := m.RestoreSnap(s)
	if !st.Delta {
		t.Fatalf("expected delta restore, got %+v", st)
	}
	wide := st.DirtyBlocks
	checkEqualsSnap(t, m, s)
	// Fork 2: narrow — a single word next to the golden watermark.
	m.Write(2, 3)
	st = m.RestoreSnap(s)
	if !st.Delta {
		t.Fatalf("expected delta restore, got %+v", st)
	}
	if st.DirtyBlocks != 1 {
		t.Fatalf("narrow fork restored %d blocks, want 1 (wide fork took %d)", st.DirtyBlocks, wide)
	}
	if st.DirtyBlocks >= wide {
		t.Fatalf("watermark shrink not reflected: narrow %d >= wide %d blocks", st.DirtyBlocks, wide)
	}
	checkEqualsSnap(t, m, s)
}

// TestDeltaRestoreZeroWriteFork checks that restoring with nothing
// dirtied — immediately after Snapshot, and again immediately after a
// restore — is a no-op with zero-cost stats.
func TestDeltaRestoreZeroWriteFork(t *testing.T) {
	m := NewMemory(4096, 64)
	for a := int64(1); a < 300; a++ {
		m.Write(a, uint64(a)^0x9e)
	}
	s := m.Snapshot(nil)
	for round := 0; round < 2; round++ {
		st := m.RestoreSnap(s)
		if !st.Delta || st.DirtyBlocks != 0 || st.Bytes != 0 {
			t.Fatalf("round %d: zero-write restore cost %+v, want free delta", round, st)
		}
		checkEqualsSnap(t, m, s)
	}
}

// TestDeltaRestoreChain snapshots twice with dirt in between and moves
// the memory back and forth along the chain.
func TestDeltaRestoreChain(t *testing.T) {
	m := NewMemory(4096, 64)
	m.Write(5, 50)
	s1 := m.Snapshot(nil)
	m.Write(5, 51)
	m.Write(700, 70)
	s2 := m.Snapshot(nil)
	if s2.prev != s1 {
		t.Fatal("second snapshot did not chain to the first")
	}
	m.Write(9, 90)
	// Down the chain: base is s2, target s1; union must cover the live
	// dirt and the s1→s2 hop.
	st := m.RestoreSnap(s1)
	if !st.Delta {
		t.Fatalf("expected delta restore down the chain, got %+v", st)
	}
	checkEqualsSnap(t, m, s1)
	if v, _ := m.Read(700); v != 0 {
		t.Fatalf("word 700 = %d after rewind to s1, want 0", v)
	}
	// Back up: base is s1, target s2.
	st = m.RestoreSnap(s2)
	if !st.Delta {
		t.Fatalf("expected delta restore up the chain, got %+v", st)
	}
	checkEqualsSnap(t, m, s2)
	if v, _ := m.Read(700); v != 70 {
		t.Fatalf("word 700 = %d after restore to s2, want 70", v)
	}
}

// TestFullCopyFallbacks checks the paths that must refuse the delta:
// delta restores disabled, and a base invalidated by Reset.
func TestFullCopyFallbacks(t *testing.T) {
	m := NewMemory(4096, 64)
	m.Write(3, 33)
	s := m.Snapshot(nil)
	m.Write(3, 44)

	SetDeltaRestore(false)
	st := m.RestoreSnap(s)
	SetDeltaRestore(true)
	if st.Delta {
		t.Fatalf("restore took the delta path while disabled: %+v", st)
	}
	checkEqualsSnap(t, m, s)

	m.Reset(4096, 64)
	m.Write(3, 55)
	st = m.RestoreSnap(s)
	if st.Delta {
		t.Fatalf("restore trusted a base across Reset: %+v", st)
	}
	checkEqualsSnap(t, m, s)
}

// FuzzDeltaRestore drives a random interleaving of writes, allocations,
// frames, snapshots, and full-copy and delta restores, asserting after
// every restore that the memory is word-identical to the snapshot it
// restored (the semantic spec both paths must meet).
func FuzzDeltaRestore(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{4, 0, 10, 1, 4, 0, 20, 2, 5, 0, 0, 5, 1, 1})
	f.Add([]byte{2, 8, 0, 100, 3, 4, 2, 4, 4, 5, 0, 0, 5, 1, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		const size = 2048
		m := NewMemory(size, 32)
		var snaps []*MemSnap
		var frames []int64
		i := 0
		next := func() byte {
			if i >= len(data) {
				return 0
			}
			b := data[i]
			i++
			return b
		}
		for i < len(data) {
			switch next() % 6 {
			case 0: // write
				addr := (int64(next())<<8 | int64(next())) % size
				m.Write(addr, uint64(next())+1)
			case 1: // heap alloc
				m.Alloc(int64(next()) % 128)
			case 2: // push a frame
				n := int64(next())%128 + 1
				if _, ok := m.PushFrame(n); ok {
					frames = append(frames, n)
				}
			case 3: // pop the newest frame
				if len(frames) > 0 {
					m.PopFrame(frames[len(frames)-1])
					frames = frames[:len(frames)-1]
				}
			case 4: // snapshot
				if len(snaps) < 8 {
					snaps = append(snaps, m.Snapshot(nil))
				}
			case 5: // restore: even selector byte = delta, odd = forced full copy
				if len(snaps) == 0 {
					continue
				}
				s := snaps[int(next())%len(snaps)]
				if next()%2 == 1 {
					m.invalidateBase()
				}
				st := m.RestoreSnap(s)
				want := snapWords(s)
				for a, w := range want {
					if m.words[a] != w {
						t.Fatalf("word %d = %#x after restore (delta=%v), want %#x",
							a, m.words[a], st.Delta, w)
					}
				}
				if m.loHi != s.loHi || m.hiLo != s.hiLo || m.brk != s.brk || m.sp != s.sp {
					t.Fatalf("scalars diverged after restore (delta=%v)", st.Delta)
				}
				// Restored frames stack is the snapshot's; ours no longer applies.
				frames = frames[:0]
			}
		}
	})
}
