package vm

import (
	"reflect"
	"testing"

	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/trace"
)

// snapAt runs prog fault-free, capturing a snapshot (and the paired
// recorder snapshot) at quiesce point seq; the run continues to completion
// afterwards, so the captured state has been mutated past the cut — any
// aliasing between the snapshot and the live VM shows up as a diff later.
func snapAt(t *testing.T, prog *ir.Program, seq uint64, sampleEvery uint64) (*Snapshot, *trace.RecorderSnap) {
	t.Helper()
	var snap *Snapshot
	var recSnap *trace.RecorderSnap
	rec := &trace.Recorder{SampleEvery: sampleEvery}
	hook := quiesceFunc(func(v *VM, s uint64) {
		if s == seq {
			snap = v.Snapshot(snap)
			recSnap = rec.Snapshot(recSnap)
		}
	})
	v := New(prog, Config{Tracer: rec, Quiesce: hook})
	if err := v.Run(); err != nil {
		t.Fatalf("golden run: %v", err)
	}
	if snap == nil {
		t.Fatalf("quiesce point %d never fired", seq)
	}
	return snap, recSnap
}

type quiesceFunc func(v *VM, seq uint64)

func (f quiesceFunc) Quiesce(v *VM, seq uint64) { f(v, seq) }

// observe condenses the observables that must be byte-identical between a
// from-scratch run and a snapshot-forked run.
type observed struct {
	Outputs   []float64
	Cycles    uint64
	Sites     uint64
	Ticks     int64
	Iters     int64
	InjCycles []uint64
	TableLen  int
	TablePeak int
	Ever      bool
	Alloc     int64
	Points    []trace.Point
	TickPts   []trace.TickPoint
	Err       string
}

func observeRun(v *VM, rec *trace.Recorder, err error) observed {
	o := observed{
		Outputs:   append([]float64(nil), v.Outputs()...),
		Cycles:    v.Cycles(),
		Sites:     v.Sites(),
		Ticks:     v.Ticks(),
		Iters:     v.Iterations(),
		InjCycles: append([]uint64(nil), v.InjectionCycles()...),
		TableLen:  v.Table().Len(),
		TablePeak: v.Table().Peak(),
		Ever:      v.Table().Ever(),
		Alloc:     v.Mem().AllocatedWords(),
	}
	if rec != nil {
		rec.Finish(v.Cycles(), v.Cycles(), v.Table().Len())
		o.Points = append([]trace.Point(nil), rec.Points()...)
		o.TickPts = append([]trace.TickPoint(nil), rec.Ticks()...)
	}
	if err != nil {
		o.Err = err.Error()
	}
	return o
}

func runScratch(t *testing.T, prog *ir.Program, plan inject.Plan, sampleEvery uint64) observed {
	t.Helper()
	rec := &trace.Recorder{SampleEvery: sampleEvery}
	v := New(prog, Config{Tracer: rec, Injector: inject.NewRankInjector(plan, 0)})
	err := v.Run()
	return observeRun(v, rec, err)
}

func runForked(t *testing.T, prog *ir.Program, plan inject.Plan, snap *Snapshot, recSnap *trace.RecorderSnap) observed {
	t.Helper()
	rec := &trace.Recorder{}
	rec.RestoreSnap(recSnap, 0, 0)
	v := New(prog, Config{Tracer: rec, Injector: inject.NewRankInjector(plan, 0)})
	v.RestoreSnap(snap)
	err := v.Resume()
	return observeRun(v, rec, err)
}

// TestSnapshotRoundTripSingleProcess is the per-package round-trip property
// test: for a spread of faults at or after the cut, a run forked from the
// snapshot must match a from-scratch run of the same plan in every
// observable — and forking the same snapshot repeatedly must keep working
// (mutations through one fork must not leak into the snapshot).
func TestSnapshotRoundTripSingleProcess(t *testing.T) {
	inst := instrumentT(t, buildTickedAccum(12))
	const sampleEvery = 16
	snap, recSnap := snapAt(t, inst, 5, sampleEvery)
	if snap.Sites() == 0 {
		t.Fatal("cut at seq 5 saw no executed sites")
	}
	total := runScratch(t, inst, inject.Plan{}, sampleEvery).Sites

	// Fault-free fork must reproduce the golden tail.
	goldenRef := runScratch(t, inst, inject.Plan{}, sampleEvery)
	if got := runForked(t, inst, inject.Plan{}, snap, recSnap); !reflect.DeepEqual(got, goldenRef) {
		t.Errorf("fault-free fork diverged:\n got %+v\nwant %+v", got, goldenRef)
	}

	lo, hi := snap.Sites(), total
	for k := uint64(0); k < 8; k++ {
		site := lo + k*(hi-lo)/8
		plan := inject.Plan{Faults: []inject.Fault{{Site: site, Bit: uint(13 + 5*k)}}}
		want := runScratch(t, inst, plan, sampleEvery)
		got := runForked(t, inst, plan, snap, recSnap)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("site %d bit %d: forked run diverged:\n got %+v\nwant %+v",
				site, plan.Faults[0].Bit, got, want)
		}
	}
}

// TestSnapshotImmuneToForkMutation mutates a forked VM's state directly and
// checks a second fork of the same snapshot is unaffected — the
// shallow-copy-aliasing regression test.
func TestSnapshotImmuneToForkMutation(t *testing.T) {
	inst := instrumentT(t, buildTickedAccum(10))
	snap, recSnap := snapAt(t, inst, 3, 0)

	first := New(inst, Config{})
	first.RestoreSnap(snap)
	// Scribble over the fork's memory and contamination table.
	for addr := int64(1); addr < 64; addr++ {
		first.Mem().Write(addr, 0xDEAD)
		first.Table().Observe(addr, 0xDEAD, 0)
	}

	want := runForked(t, inst, inject.Plan{}, snap, recSnap)
	got := runForked(t, inst, inject.Plan{}, snap, recSnap)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("second fork saw first fork's mutations:\n got %+v\nwant %+v", got, want)
	}
	if want.TableLen != 0 && want.Ever {
		t.Errorf("fault-free fork ended contaminated: %+v", want)
	}
}

// buildDeepRec builds a program whose only quiesce point sits at the bottom
// of a recursion `depth` frames deep, so the snapshot captures a tall frame
// stack mid-unwind.
func buildDeepRec(depth int64) *ir.Program {
	b := ir.NewBuilder()
	acc := b.Global("acc", 4)
	f := b.Func("rec", 1, 1)
	n := f.Param(0)
	res := f.NewReg()
	f.IfElse(ir.R(f.ICmp(ir.ICmpSLE, ir.R(n), ir.ImmI(0))), func() {
		f.Tick(ir.ImmI(0)) // quiesce at maximum depth
		f.Mov(res, ir.ImmI(1))
	}, func() {
		sub := f.NewReg()
		f.Call("rec", []ir.Reg{sub}, ir.R(f.Sub(ir.R(n), ir.ImmI(1))))
		// Touch memory on the way back up so the unwound frames do real
		// work a bad restore would corrupt.
		slot := f.And(ir.R(n), ir.ImmI(3))
		old := f.Ld(ir.ImmI(acc), ir.R(slot))
		f.St(ir.R(f.Add(ir.R(old), ir.R(sub))), ir.ImmI(acc), ir.R(slot))
		f.Mov(res, ir.R(f.Add(ir.R(sub), ir.R(n))))
	})
	f.Ret(ir.R(res))

	m := b.Func("main", 0, 0)
	out := m.NewReg()
	m.Call("rec", []ir.Reg{out}, ir.ImmI(depth))
	m.OutputI(ir.R(out))
	i := m.NewReg()
	m.For(i, ir.ImmI(0), ir.ImmI(4), func() {
		m.OutputI(ir.R(m.Ld(ir.ImmI(acc), ir.R(i))))
	})
	m.Ret()
	b.SetEntry("main")
	return b.MustBuild()
}

// TestSnapshotDeepRecursionFrameStack snapshots at the bottom of a
// 60-frame recursion and checks the forked run unwinds identically to a
// from-scratch run, with and without faults in the tail.
func TestSnapshotDeepRecursionFrameStack(t *testing.T) {
	inst := instrumentT(t, buildDeepRec(60))
	snap, recSnap := snapAt(t, inst, 0, 0)
	total := runScratch(t, inst, inject.Plan{}, 0).Sites

	want := runScratch(t, inst, inject.Plan{}, 0)
	got := runForked(t, inst, inject.Plan{}, snap, recSnap)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("deep-recursion fork diverged:\n got %+v\nwant %+v", got, want)
	}
	if want.Outputs[0] == 0 {
		t.Fatal("recursion produced no result")
	}

	for k := uint64(0); k < 4; k++ {
		site := snap.Sites() + k*(total-snap.Sites())/4
		plan := inject.Plan{Faults: []inject.Fault{{Site: site, Bit: 7}}}
		w := runScratch(t, inst, plan, 0)
		g := runForked(t, inst, plan, snap, recSnap)
		if !reflect.DeepEqual(g, w) {
			t.Errorf("site %d: forked unwind diverged:\n got %+v\nwant %+v", site, g, w)
		}
	}
}

// TestResumeWithoutRestoreErrors pins the Resume precondition.
func TestResumeWithoutRestoreErrors(t *testing.T) {
	inst := instrumentT(t, buildTickedAccum(3))
	v := New(inst, Config{})
	if err := v.Resume(); err == nil {
		t.Fatal("Resume on a fresh VM succeeded")
	}
}
