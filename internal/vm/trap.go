package vm

import "fmt"

// TrapKind enumerates the ways an execution can die. Any trap classifies
// the run as Crashed (paper §2): corrupted pointers dereferencing
// unallocated memory, division faults, application-initiated MPI aborts,
// exhausted cycle budgets (hangs), and failures propagated from peer ranks.
type TrapKind int

// Trap kinds.
const (
	TrapNone           TrapKind = iota
	TrapOOB                     // memory access outside the address space
	TrapNull                    // access to the null word (address 0)
	TrapDivZero                 // integer division or remainder by zero
	TrapDivOverflow             // INT64_MIN / -1
	TrapHeapExhausted           // heap met the stack
	TrapStackOverflow           // stack met the heap
	TrapCycleLimit              // cycle budget exceeded (hang)
	TrapAbort                   // application called MPI_Abort
	TrapPeerFailure             // another rank crashed or aborted the job
	TrapInvalid                 // malformed instruction reached the interpreter
	TrapOutputOverflow          // output vector limit exceeded
)

var trapNames = map[TrapKind]string{
	TrapOOB: "out-of-bounds access", TrapNull: "null access",
	TrapDivZero: "integer division by zero", TrapDivOverflow: "integer division overflow",
	TrapHeapExhausted: "heap exhausted", TrapStackOverflow: "stack overflow",
	TrapCycleLimit: "cycle limit exceeded (hang)", TrapAbort: "MPI_Abort",
	TrapPeerFailure: "peer rank failure", TrapInvalid: "invalid instruction",
	TrapOutputOverflow: "output overflow",
}

// String returns a description of the trap kind.
func (k TrapKind) String() string {
	if s, ok := trapNames[k]; ok {
		return s
	}
	return "unknown trap"
}

// Trap is the error produced when execution dies.
type Trap struct {
	Kind   TrapKind
	Func   string
	PC     int
	Cycles uint64
	Detail string
}

// Error implements the error interface.
func (t *Trap) Error() string {
	s := fmt.Sprintf("vm: trap %v in %s@%d after %d cycles", t.Kind, t.Func, t.PC, t.Cycles)
	if t.Detail != "" {
		s += ": " + t.Detail
	}
	return s
}

// AsTrap extracts a *Trap from an error, or nil.
func AsTrap(err error) *Trap {
	if t, ok := err.(*Trap); ok {
		return t
	}
	return nil
}
