package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMomentsMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
	}
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	if m.N != len(xs) {
		t.Fatalf("N = %d, want %d", m.N, len(xs))
	}
	if !almostEqual(m.Mean, Mean(xs), 1e-12) {
		t.Errorf("Mean = %v, want %v", m.Mean, Mean(xs))
	}
	if !almostEqual(m.Variance(), Variance(xs), 1e-12) {
		t.Errorf("Variance = %v, want %v", m.Variance(), Variance(xs))
	}
	if m.Min() != Min(xs) || m.Max() != Max(xs) {
		t.Errorf("extrema (%v, %v), want (%v, %v)", m.Min(), m.Max(), Min(xs), Max(xs))
	}
}

// TestMomentsMergeEqualsUnion is the sharding property: accumulators over
// arbitrary disjoint slices, merged in any order, must match the
// accumulator of the whole sample set.
func TestMomentsMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 100
	}
	var whole Moments
	for _, x := range xs {
		whole.Add(x)
	}
	for trial := 0; trial < 20; trial++ {
		// Random partition into 1..8 contiguous pieces.
		k := 1 + rng.Intn(8)
		cuts := map[int]bool{0: true, len(xs): true}
		for i := 0; i < k; i++ {
			cuts[rng.Intn(len(xs) + 1)] = true
		}
		var bounds []int
		for c := range cuts {
			bounds = append(bounds, c)
		}
		for i := 1; i < len(bounds); i++ { // insertion sort
			for j := i; j > 0 && bounds[j] < bounds[j-1]; j-- {
				bounds[j], bounds[j-1] = bounds[j-1], bounds[j]
			}
		}
		parts := make([]Moments, 0, len(bounds)-1)
		for i := 0; i+1 < len(bounds); i++ {
			var p Moments
			for _, x := range xs[bounds[i]:bounds[i+1]] {
				p.Add(x)
			}
			parts = append(parts, p)
		}
		var merged Moments
		for _, i := range rng.Perm(len(parts)) {
			merged.Merge(parts[i])
		}
		if merged.N != whole.N {
			t.Fatalf("trial %d: N = %d, want %d", trial, merged.N, whole.N)
		}
		if !almostEqual(merged.Mean, whole.Mean, 1e-10) {
			t.Errorf("trial %d: Mean %v vs %v", trial, merged.Mean, whole.Mean)
		}
		if !almostEqual(merged.Variance(), whole.Variance(), 1e-9) {
			t.Errorf("trial %d: Variance %v vs %v", trial, merged.Variance(), whole.Variance())
		}
		if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			t.Errorf("trial %d: extrema differ", trial)
		}
	}
}

func TestMomentsMergeEmptyAndJSON(t *testing.T) {
	var a, b Moments
	a.Merge(b) // empty ∪ empty
	if a.N != 0 || a.Variance() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Fatalf("empty merge mutated: %+v", a)
	}
	b.Add(2)
	b.Add(4)
	a.Merge(b) // empty ∪ {2,4}
	if a.N != 2 || a.Mean != 3 {
		t.Fatalf("merge into empty: %+v", a)
	}
	var c Moments
	a.Merge(c) // {2,4} ∪ empty
	if a.N != 2 || a.Mean != 3 {
		t.Fatalf("merge of empty: %+v", a)
	}

	raw, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var rt Moments
	if err := json.Unmarshal(raw, &rt); err != nil {
		t.Fatal(err)
	}
	if rt != a {
		t.Fatalf("JSON round-trip: %+v vs %+v", rt, a)
	}
}
