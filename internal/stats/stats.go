// Package stats provides the statistical machinery used by the fault
// propagation study: descriptive statistics, histograms, a χ² uniformity
// test for injection coverage (paper Fig. 5), and the least-squares and
// piece-wise linear regression used to derive fault propagation models
// (paper §5).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned by estimators that need more samples than
// were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than two
// samples).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Z95 is the two-sided 95% normal quantile used by the campaign planner's
// confidence intervals.
const Z95 = 1.959963984540054

// WilsonHalfWidth returns the half-width of the Wilson score interval for
// a binomial proportion of k successes in n trials at normal quantile z.
// Unlike the Wald interval it stays informative at p̂ near 0 or 1 — exactly
// where outcome rates live — and it is 1 for n == 0 (nothing is known).
func WilsonHalfWidth(k, n int, z float64) float64 {
	if n <= 0 {
		return 1
	}
	nf := float64(n)
	p := float64(k) / nf
	z2 := z * z
	return (z / (1 + z2/nf)) * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
}

// WaldSampleSize returns the number of trials needed for a Wald interval
// on a proportion near p to reach half-width target at quantile z. It is
// the planner's cheap forward estimate (the stop decision itself uses the
// Wilson interval); p is clamped away from 0 and 1 so a stratum that has
// only seen one outcome still plans a sane follow-up.
func WaldSampleSize(p, target, z float64) int {
	if target <= 0 {
		return math.MaxInt32
	}
	const floor = 0.02
	if p < floor {
		p = floor
	}
	if p > 1-floor {
		p = 1 - floor
	}
	n := z * z * p * (1 - p) / (target * target)
	if n >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int(math.Ceil(n))
}

// Histogram bins n observations in [lo, hi) into bins equal-width buckets.
// Observations outside the range are clamped into the first or last bin, so
// the counts always sum to the number of observations.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram creates a histogram over [lo, hi) with the given number of
// bins. It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with bins <= 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	bin := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.Counts) {
		bin = len(h.Counts) - 1
	}
	h.Counts[bin]++
	h.N++
}

// ExpectedUniform returns the per-bin expected count for a uniform
// distribution over the histogram range.
func (h *Histogram) ExpectedUniform() float64 {
	return float64(h.N) / float64(len(h.Counts))
}

// ChiSquareUniform computes the χ² statistic of the histogram against a
// uniform distribution and its degrees of freedom (bins-1).
func (h *Histogram) ChiSquareUniform() (chi2 float64, dof int) {
	exp := h.ExpectedUniform()
	if exp == 0 {
		return 0, len(h.Counts) - 1
	}
	for _, c := range h.Counts {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	return chi2, len(h.Counts) - 1
}

// ChiSquareUniformOK reports whether the histogram is consistent with a
// uniform distribution at roughly the 1% significance level, using the
// Wilson–Hilferty normal approximation of the χ² distribution (adequate for
// the large degrees of freedom used by the coverage test).
func (h *Histogram) ChiSquareUniformOK() bool {
	chi2, dof := h.ChiSquareUniform()
	if dof <= 0 {
		return true
	}
	// Wilson–Hilferty: (chi2/dof)^(1/3) ~ Normal(1 - 2/(9dof), 2/(9dof)).
	k := float64(dof)
	z := (math.Cbrt(chi2/k) - (1 - 2/(9*k))) / math.Sqrt(2/(9*k))
	return z < 2.33 // one-sided 1% critical value
}

// LinearFit is a least-squares line y = A*x + B with goodness-of-fit data.
type LinearFit struct {
	A, B float64 // slope, intercept
	R2   float64 // coefficient of determination
	N    int     // samples used
}

// Eval returns A*x + B.
func (f LinearFit) Eval(x float64) float64 { return f.A*x + f.B }

// FitLine computes the ordinary least squares fit of ys against xs.
// It returns ErrInsufficientData for fewer than two points, and fits a
// horizontal line when all xs coincide.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: FitLine length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return LinearFit{}, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	fit := LinearFit{N: n}
	if sxx == 0 {
		fit.A = 0
		fit.B = my
		if syy == 0 {
			fit.R2 = 1
		}
		return fit, nil
	}
	fit.A = sxy / sxx
	fit.B = my - fit.A*mx
	if syy == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// PiecewiseFit models the paper's observed propagation profile: linear
// growth from the fault time up to a knee, then a constant plateau.
//
//	y(x) = Line.A*x + Line.B  for x <= Knee
//	y(x) = Plateau            for x >  Knee
type PiecewiseFit struct {
	Line    LinearFit
	Knee    float64
	Plateau float64
	// SSE is the sum of squared residuals of the piece-wise model.
	SSE float64
}

// Eval evaluates the piece-wise model at x.
func (p PiecewiseFit) Eval(x float64) float64 {
	if x <= p.Knee {
		return p.Line.Eval(x)
	}
	return p.Plateau
}

// FitPiecewise fits a linear-then-constant model by scanning candidate knee
// positions over the sample points and minimizing total squared error.
// xs must be sorted in increasing order.
func FitPiecewise(xs, ys []float64) (PiecewiseFit, error) {
	if len(xs) != len(ys) {
		return PiecewiseFit{}, errors.New("stats: FitPiecewise length mismatch")
	}
	n := len(xs)
	if n < 3 {
		return PiecewiseFit{}, ErrInsufficientData
	}
	best := PiecewiseFit{SSE: math.Inf(1)}
	// Knee at index k means points [0..k] form the ramp, (k..n) the plateau.
	for k := 1; k < n-1; k++ {
		line, err := FitLine(xs[:k+1], ys[:k+1])
		if err != nil {
			continue
		}
		plateau := Mean(ys[k+1:])
		sse := 0.0
		for i := 0; i <= k; i++ {
			d := ys[i] - line.Eval(xs[i])
			sse += d * d
		}
		for i := k + 1; i < n; i++ {
			d := ys[i] - plateau
			sse += d * d
		}
		if sse < best.SSE {
			best = PiecewiseFit{Line: line, Knee: xs[k], Plateau: plateau, SSE: sse}
		}
	}
	// Also consider the pure-linear model (knee at the end).
	if line, err := FitLine(xs, ys); err == nil {
		sse := 0.0
		for i := range xs {
			d := ys[i] - line.Eval(xs[i])
			sse += d * d
		}
		if sse < best.SSE {
			best = PiecewiseFit{Line: line, Knee: xs[n-1], Plateau: line.Eval(xs[n-1]), SSE: sse}
		}
	}
	if math.IsInf(best.SSE, 1) {
		return PiecewiseFit{}, ErrInsufficientData
	}
	return best, nil
}

// MeanAbsRelError returns mean(|pred-actual| / max(|actual|, floor)), a
// scale-free validation error used to check fitted propagation models
// against observed CML series (the paper reports errors within 0.5%).
func MeanAbsRelError(pred, actual []float64, floor float64) float64 {
	if len(pred) != len(actual) || len(pred) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range pred {
		den := math.Abs(actual[i])
		if den < floor {
			den = floor
		}
		sum += math.Abs(pred[i]-actual[i]) / den
	}
	return sum / float64(len(pred))
}
