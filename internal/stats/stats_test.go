package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEq(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	// Sample variance of the classic dataset: population var is 4,
	// sample var is 32/7.
	if v := Variance(xs); !almostEq(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if s := StdDev(xs); !almostEq(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v, want 0", m)
	}
	if v := Variance([]float64{1}); v != 0 {
		t.Errorf("Variance(single) = %v, want 0", v)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if m := Min(xs); m != -1 {
		t.Errorf("Min = %v", m)
	}
	if m := Max(xs); m != 5 {
		t.Errorf("Max = %v", m)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -3, 12} {
		h.Add(x)
	}
	want := []int{3, 1, 1, 0, 2} // -3 clamps to bin 0, 12 clamps to bin 4
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, c, want[i], h.Counts)
		}
	}
	if h.N != 7 {
		t.Errorf("N = %d, want 7", h.N)
	}
}

func TestChiSquareUniformAcceptsUniform(t *testing.T) {
	r := xrand.New(42)
	h := NewHistogram(0, 1, 100)
	for i := 0; i < 50000; i++ {
		h.Add(r.Float64())
	}
	if !h.ChiSquareUniformOK() {
		chi2, dof := h.ChiSquareUniform()
		t.Errorf("uniform data rejected: chi2=%v dof=%d", chi2, dof)
	}
}

func TestChiSquareUniformRejectsSkewed(t *testing.T) {
	r := xrand.New(42)
	h := NewHistogram(0, 1, 100)
	for i := 0; i < 50000; i++ {
		f := r.Float64()
		h.Add(f * f) // heavily skewed toward 0
	}
	if h.ChiSquareUniformOK() {
		t.Error("skewed data accepted as uniform")
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x - 7
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.A, 2.5, 1e-12) || !almostEq(fit.B, -7, 1e-12) {
		t.Errorf("fit = %+v, want A=2.5 B=-7", fit)
	}
	if !almostEq(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	r := xrand.New(9)
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 0.01*x+3+0.1*r.NormFloat64())
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.A, 0.01, 1e-3) {
		t.Errorf("slope = %v, want ~0.01", fit.A)
	}
	if fit.R2 < 0.9 {
		t.Errorf("R2 = %v, want > 0.9", fit.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{2}); err != ErrInsufficientData {
		t.Errorf("want ErrInsufficientData, got %v", err)
	}
	// Vertical data: all x equal.
	fit, err := FitLine([]float64{3, 3, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if fit.A != 0 || !almostEq(fit.B, 2, 1e-12) {
		t.Errorf("vertical fit = %+v, want horizontal line at mean", fit)
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch not rejected")
	}
}

func TestFitPiecewiseRampPlateau(t *testing.T) {
	// y ramps with slope 3 until x=10, then is flat at 30.
	var xs, ys []float64
	for x := 0.0; x <= 20; x++ {
		xs = append(xs, x)
		if x <= 10 {
			ys = append(ys, 3*x)
		} else {
			ys = append(ys, 30)
		}
	}
	fit, err := FitPiecewise(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Line.A, 3, 1e-9) {
		t.Errorf("ramp slope = %v, want 3", fit.Line.A)
	}
	if !almostEq(fit.Plateau, 30, 1e-9) {
		t.Errorf("plateau = %v, want 30", fit.Plateau)
	}
	if fit.Knee < 9 || fit.Knee > 11 {
		t.Errorf("knee = %v, want ~10", fit.Knee)
	}
	if fit.SSE > 1e-9 {
		t.Errorf("SSE = %v, want ~0", fit.SSE)
	}
}

func TestFitPiecewisePureLinear(t *testing.T) {
	var xs, ys []float64
	for x := 0.0; x < 30; x++ {
		xs = append(xs, x)
		ys = append(ys, 1.5*x+2)
	}
	fit, err := FitPiecewise(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Line.A, 1.5, 1e-9) {
		t.Errorf("slope = %v, want 1.5", fit.Line.A)
	}
	if fit.SSE > 1e-9 {
		t.Errorf("SSE = %v, want ~0", fit.SSE)
	}
}

func TestFitPiecewiseInsufficient(t *testing.T) {
	if _, err := FitPiecewise([]float64{1, 2}, []float64{1, 2}); err != ErrInsufficientData {
		t.Errorf("want ErrInsufficientData, got %v", err)
	}
}

func TestMeanAbsRelError(t *testing.T) {
	pred := []float64{10, 20}
	actual := []float64{10, 25}
	// errors: 0 and 5/25=0.2 -> mean 0.1
	if e := MeanAbsRelError(pred, actual, 1); !almostEq(e, 0.1, 1e-12) {
		t.Errorf("error = %v, want 0.1", e)
	}
	if e := MeanAbsRelError([]float64{1}, []float64{1, 2}, 1); !math.IsNaN(e) {
		t.Errorf("mismatched lengths: got %v, want NaN", e)
	}
}

func TestFitLineRecoversSlopeProperty(t *testing.T) {
	// Property: FitLine recovers arbitrary slope/intercept from exact data.
	f := func(a8, b8 int8) bool {
		a, b := float64(a8)/8, float64(b8)/8
		xs := []float64{0, 1, 2, 3, 7, 11}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a*x + b
		}
		fit, err := FitLine(xs, ys)
		if err != nil {
			return false
		}
		return almostEq(fit.A, a, 1e-9) && almostEq(fit.B, b, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		p := float64(pRaw) / 255 * 100
		v := Percentile(xs, p)
		return v >= Min(xs) && v <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkFitLine(b *testing.B) {
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2*float64(i) + 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = FitLine(xs, ys)
	}
}
