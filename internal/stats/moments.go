package stats

import "math"

// Moments is a mergeable running-moments accumulator (count, mean, and sum
// of squared deviations) using Welford's online update and the Chan et al.
// parallel-merge formula. Two accumulators built over disjoint sample sets
// merge into exactly the accumulator of the union, which is what lets
// sharded campaign runtimes, queue waits, and worker utilization aggregate
// across processes without shipping raw samples.
//
// The zero value is ready to use, and it JSON-round-trips, so a Moments
// can travel inside a partial result.
type Moments struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	// M2 is the sum of squared deviations from the mean.
	M2 float64 `json:"m2"`
	// MinV and MaxV track the sample extrema (meaningless when N == 0).
	MinV float64 `json:"min"`
	MaxV float64 `json:"max"`
}

// Add folds one observation in.
func (m *Moments) Add(x float64) {
	m.N++
	if m.N == 1 {
		m.Mean, m.MinV, m.MaxV = x, x, x
		m.M2 = 0
		return
	}
	d := x - m.Mean
	m.Mean += d / float64(m.N)
	m.M2 += d * (x - m.Mean)
	if x < m.MinV {
		m.MinV = x
	}
	if x > m.MaxV {
		m.MaxV = x
	}
}

// Merge folds other into m; the result is the accumulator of the union of
// both sample sets. Merging is commutative up to floating-point rounding.
func (m *Moments) Merge(other Moments) {
	if other.N == 0 {
		return
	}
	if m.N == 0 {
		*m = other
		return
	}
	n1, n2 := float64(m.N), float64(other.N)
	d := other.Mean - m.Mean
	n := n1 + n2
	m.Mean += d * n2 / n
	m.M2 += other.M2 + d*d*n1*n2/n
	m.N += other.N
	if other.MinV < m.MinV {
		m.MinV = other.MinV
	}
	if other.MaxV > m.MaxV {
		m.MaxV = other.MaxV
	}
}

// Variance returns the unbiased sample variance (0 for fewer than two
// samples).
func (m Moments) Variance() float64 {
	if m.N < 2 {
		return 0
	}
	return m.M2 / float64(m.N-1)
}

// StdDev returns the unbiased sample standard deviation.
func (m Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Min returns the smallest observation (0 when empty).
func (m Moments) Min() float64 {
	if m.N == 0 {
		return 0
	}
	return m.MinV
}

// Max returns the largest observation (0 when empty).
func (m Moments) Max() float64 {
	if m.N == 0 {
		return 0
	}
	return m.MaxV
}
