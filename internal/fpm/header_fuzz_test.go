package fpm

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzHeaderDecode pins the contamination-header codec's robustness
// contract: DecodeMessage must never panic on arbitrary input, and every
// message it accepts must re-encode byte-identically (the wire format has
// exactly one canonical encoding per message).
func FuzzHeaderDecode(f *testing.F) {
	f.Add(EncodeMessage(nil, nil))
	f.Add(EncodeMessage([]uint64{1, 2, 3}, nil))
	f.Add(EncodeMessage([]uint64{0xdeadbeef}, []MsgRecord{
		{Displacement: -4, Pristine: 9},
		{Displacement: 1 << 40, Pristine: ^uint64(0)},
	}))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	// Header claiming 2^60 records: 16*n overflows uint64.
	huge := make([]byte, 16)
	binary.LittleEndian.PutUint64(huge, 1<<60)
	f.Add(huge)
	// Header claiming max records.
	maxed := make([]byte, 24)
	binary.LittleEndian.PutUint64(maxed, ^uint64(0))
	f.Add(maxed)

	f.Fuzz(func(t *testing.T, buf []byte) {
		payload, recs, err := DecodeMessage(buf)
		if err != nil {
			return
		}
		if rt := EncodeMessage(payload, recs); !bytes.Equal(rt, buf) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", buf, rt)
		}
	})
}

func TestDecodeMessageRejectsOverflowingRecordCount(t *testing.T) {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, 1<<60) // 16*n wraps to 0
	if _, _, err := DecodeMessage(buf); err == nil {
		t.Fatal("overflowing record count accepted")
	}
}
