// Package fpm implements the runtime half of the paper's Fault Propagation
// Module: the contamination hash table that maps corrupted memory locations
// to their pristine values (paper §3.2), and the message-header records used
// to carry contamination metadata across MPI process boundaries (paper
// Fig. 4).
//
// Invariant maintained by the table: a location address is present if and
// only if the memory word at that address differs from the word a fault-free
// execution would hold there, and the stored value is that fault-free word.
// Stores that write a value equal to the pristine value therefore *cleanse*
// the location (paper Table 1, row 2), which is what separates this exact
// tracker from an overestimating taint analysis.
package fpm

import "sort"

// Table is the contamination hash table of one process: corrupted word
// address -> pristine value. The zero value is not usable; call NewTable.
type Table struct {
	m map[int64]uint64
	// peak tracks the maximum number of simultaneously contaminated
	// locations observed, for Fig. 7f-style reporting.
	peak int
	// everContaminated records whether any location was ever contaminated,
	// which distinguishes Vanished from ONA outcomes even when later
	// stores cleanse everything.
	everContaminated bool
}

// NewTable returns an empty contamination table.
func NewTable() *Table {
	return &Table{m: make(map[int64]uint64)}
}

// Len returns the current number of contaminated locations (the paper's
// CML, corrupted memory locations).
func (t *Table) Len() int { return len(t.m) }

// Peak returns the maximum CML observed so far.
func (t *Table) Peak() int { return t.peak }

// Ever reports whether any location was ever contaminated.
func (t *Table) Ever() bool { return t.everContaminated }

// Pristine returns the pristine value for addr and whether addr is
// contaminated.
func (t *Table) Pristine(addr int64) (uint64, bool) {
	v, ok := t.m[addr]
	return v, ok
}

// PristineOr returns the pristine value for addr, or fallback when addr is
// not contaminated. This implements fpm_fetch: the fallback is the actual
// memory content, which for a clean location is the pristine content.
func (t *Table) PristineOr(addr int64, fallback uint64) uint64 {
	if v, ok := t.m[addr]; ok {
		return v
	}
	return fallback
}

// Record notes that memory at addr now holds a corrupted word whose
// fault-free content is pristine.
func (t *Table) Record(addr int64, pristine uint64) {
	t.m[addr] = pristine
	t.everContaminated = true
	if len(t.m) > t.peak {
		t.peak = len(t.m)
	}
}

// Cleanse removes addr from the table (memory now matches the pristine
// execution there).
func (t *Table) Cleanse(addr int64) { delete(t.m, addr) }

// Observe implements the fpm_store decision for a store whose primary and
// pristine addresses agree: the location becomes contaminated when the
// primary and pristine values differ, and cleansed when they match.
func (t *Table) Observe(addr int64, primary, pristine uint64) {
	if primary == pristine {
		t.Cleanse(addr)
		return
	}
	t.Record(addr, pristine)
}

// Addresses returns the contaminated addresses in ascending order. Intended
// for tests, snapshots and message assembly; O(n log n).
func (t *Table) Addresses() []int64 {
	addrs := make([]int64, 0, len(t.m))
	for a := range t.m {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// CountInRange returns how many contaminated locations fall within
// [base, base+count).
func (t *Table) CountInRange(base, count int64) int {
	// For small ranges scanning the range beats scanning the table and
	// vice versa; pick by size.
	if count < int64(len(t.m)) {
		n := 0
		for a := base; a < base+count; a++ {
			if _, ok := t.m[a]; ok {
				n++
			}
		}
		return n
	}
	n := 0
	for a := range t.m {
		if a >= base && a < base+count {
			n++
		}
	}
	return n
}

// CarryHistory folds another table's observation history (peak CML and the
// ever-contaminated flag) into this one without adding entries. Used when
// a rollback reconstructs the table from a snapshot: the contamination
// happened even though it was undone.
func (t *Table) CarryHistory(peak int, ever bool) {
	if peak > t.peak {
		t.peak = peak
	}
	t.everContaminated = t.everContaminated || ever
}

// Reset empties the table and clears the peak and ever-contaminated state.
func (t *Table) Reset() {
	t.m = make(map[int64]uint64)
	t.peak = 0
	t.everContaminated = false
}

// Record is one entry of an MPI contamination header: the displacement of a
// contaminated word relative to the start of the message payload, and its
// pristine value (paper Fig. 4).
type MsgRecord struct {
	Displacement int64
	Pristine     uint64
}

// CollectRange assembles the contamination header for an outgoing message
// covering memory [base, base+count): one MsgRecord per contaminated word,
// with displacements relative to base, in ascending order.
func (t *Table) CollectRange(base, count int64) []MsgRecord {
	var recs []MsgRecord
	if int64(len(t.m)) < count {
		for a, p := range t.m {
			if a >= base && a < base+count {
				recs = append(recs, MsgRecord{Displacement: a - base, Pristine: p})
			}
		}
		sort.Slice(recs, func(i, j int) bool {
			return recs[i].Displacement < recs[j].Displacement
		})
		return recs
	}
	for a := base; a < base+count; a++ {
		if p, ok := t.m[a]; ok {
			recs = append(recs, MsgRecord{Displacement: a - base, Pristine: p})
		}
	}
	return recs
}

// ApplyRange installs contamination records for an incoming message copied
// to memory at [base, base+count). Every word in the range is first
// considered clean (the incoming payload overwrites whatever was there);
// words named by a record are contaminated unless the payload word already
// equals the pristine value. payload must hold the received words.
func (t *Table) ApplyRange(base int64, payload []uint64, recs []MsgRecord) {
	// The incoming payload overwrites the whole range: stale entries for
	// the range must go, exactly as a local store of a clean value would
	// cleanse a location.
	for a := base; a < base+int64(len(payload)); a++ {
		t.Cleanse(a)
	}
	for _, r := range recs {
		if r.Displacement < 0 || r.Displacement >= int64(len(payload)) {
			continue // malformed record; ignore defensively
		}
		if payload[r.Displacement] == r.Pristine {
			continue // arrived corrupted-flagged but value matches pristine
		}
		t.Record(base+r.Displacement, r.Pristine)
	}
}
