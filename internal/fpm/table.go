// Package fpm implements the runtime half of the paper's Fault Propagation
// Module: the contamination hash table that maps corrupted memory locations
// to their pristine values (paper §3.2), and the message-header records used
// to carry contamination metadata across MPI process boundaries (paper
// Fig. 4).
//
// Invariant maintained by the table: a location address is present if and
// only if the memory word at that address differs from the word a fault-free
// execution would hold there, and the stored value is that fault-free word.
// Stores that write a value equal to the pristine value therefore *cleanse*
// the location (paper Table 1, row 2), which is what separates this exact
// tracker from an overestimating taint analysis.
package fpm

import (
	"math"
	"math/bits"
	"slices"
	"sync/atomic"
)

// tableFullCopy forces verbatim-copy restores when set; the zero value
// (delta restores on) is the default. vm.SetDeltaRestore flips both
// packages together.
var tableFullCopy atomic.Bool

// SetDeltaRestore toggles journal-replay delta restores (default on).
func SetDeltaRestore(on bool) { tableFullCopy.Store(!on) }

func deltaEnabled() bool { return !tableFullCopy.Load() }

// tableGen hands out process-unique snapshot generations, mirroring the
// vm memory scheme: a recycled snapshot whose backing was recaptured is
// detected by gen mismatch instead of trusted as a stale restore base.
var tableGen atomic.Uint64

// Table is the contamination hash table of one process: corrupted word
// address -> pristine value. It is an open-addressed linear-probing table
// (the fpm_fetch/fpm_store fast path runs once per instrumented memory
// access, so lookup cost matters more than space): power-of-two slot count,
// Fibonacci hashing, and backward-shift deletion so Cleanse leaves no
// tombstones to slow later probes. The zero value is not usable; call
// NewTable.
type Table struct {
	keys []int64
	vals []uint64
	// n is the number of occupied slots (excluding the sentinel entry).
	n     int
	shift uint // 64 - log2(len(keys)): Fibonacci hash shift
	// The empty-slot marker is math.MinInt64; an entry for that address —
	// unreachable through the VM (all VM addresses are in-bounds, hence
	// non-negative) but accepted defensively — lives out of band.
	hasMin bool
	minVal uint64
	// peak tracks the maximum number of simultaneously contaminated
	// locations observed, for Fig. 7f-style reporting.
	peak int
	// everContaminated records whether any location was ever contaminated,
	// which distinguishes Vanished from ONA outcomes even when later
	// stores cleanse everything.
	everContaminated bool

	// Delta-restore state: journal holds the address of every logical
	// transition (insert, value change, removal) since the table last
	// equalled base, bounded by tableJournalCap — overflow flips
	// journalFull and the next restore falls back to the verbatim copy.
	// Replaying "make this table agree with the snapshot at address k"
	// for the journalled keys is idempotent and order-independent, which
	// is what lets chained journals union safely.
	journal     []int64
	journalFull bool
	scratchKeys []int64
	base        *TableSnap
	baseGen     uint64
}

const (
	emptySlot = math.MinInt64
	// fibMult is 2^64 / phi, the multiplicative hashing constant.
	fibMult = 0x9E3779B97F4A7C15
	// tableMinSlots sizes a fresh table; most experiments contaminate at
	// most a few dozen locations.
	tableMinSlots = 32
	// tableResetCap bounds the capacity a Reset retains: a pathological
	// experiment must not pin a huge table inside a long-lived worker pool.
	tableResetCap = 1 << 15
	// tableJournalCap bounds the per-epoch dirty-key journal; experiments
	// that churn more contamination than this restore by full copy.
	tableJournalCap = 512
	// tableDeltaMax bounds the total replay length across a chain of
	// journals; past it the verbatim copy is cheaper.
	tableDeltaMax = 2048
	// tableChainHops bounds snapshot-chain walks.
	tableChainHops = 64
)

// NewTable returns an empty contamination table.
func NewTable() *Table {
	t := &Table{}
	t.initSlots(tableMinSlots)
	return t
}

func (t *Table) initSlots(slots int) {
	t.keys = make([]int64, slots)
	t.vals = make([]uint64, slots)
	for i := range t.keys {
		t.keys[i] = emptySlot
	}
	t.shift = 64 - uint(bits.Len(uint(slots-1)))
	t.n = 0
}

func (t *Table) home(key int64) int {
	return int((uint64(key) * fibMult) >> t.shift)
}

// slot probes for key: it returns the key's slot when present, otherwise
// the empty slot where it would be inserted.
func (t *Table) slot(key int64) (int, bool) {
	mask := len(t.keys) - 1
	i := t.home(key)
	for {
		switch t.keys[i] {
		case key:
			return i, true
		case emptySlot:
			return i, false
		}
		i = (i + 1) & mask
	}
}

// Len returns the current number of contaminated locations (the paper's
// CML, corrupted memory locations).
func (t *Table) Len() int {
	if t.hasMin {
		return t.n + 1
	}
	return t.n
}

// Peak returns the maximum CML observed so far.
func (t *Table) Peak() int { return t.peak }

// Ever reports whether any location was ever contaminated.
func (t *Table) Ever() bool { return t.everContaminated }

// Pristine returns the pristine value for addr and whether addr is
// contaminated.
func (t *Table) Pristine(addr int64) (uint64, bool) {
	if addr == emptySlot {
		return t.minVal, t.hasMin
	}
	i, ok := t.slot(addr)
	if !ok {
		return 0, false
	}
	return t.vals[i], true
}

// PristineOr returns the pristine value for addr, or fallback when addr is
// not contaminated. This implements fpm_fetch: the fallback is the actual
// memory content, which for a clean location is the pristine content.
func (t *Table) PristineOr(addr int64, fallback uint64) uint64 {
	if t.n == 0 && !t.hasMin {
		// Empty table: nothing is contaminated. This is the steady state
		// of golden runs and of every run whose fault has been overwritten,
		// and this call sits on the allreduce contribution path — skip the
		// hash probe entirely.
		return fallback
	}
	if addr == emptySlot {
		if t.hasMin {
			return t.minVal
		}
		return fallback
	}
	i, ok := t.slot(addr)
	if !ok {
		return fallback
	}
	return t.vals[i]
}

// journalKey notes a logical transition at key for delta restores.
func (t *Table) journalKey(key int64) {
	if t.journalFull {
		return
	}
	if len(t.journal) >= tableJournalCap {
		t.journalFull = true
		return
	}
	t.journal = append(t.journal, key)
}

// Record notes that memory at addr now holds a corrupted word whose
// fault-free content is pristine.
func (t *Table) Record(addr int64, pristine uint64) {
	if addr == emptySlot {
		if !t.hasMin || t.minVal != pristine {
			t.journalKey(addr)
		}
		t.hasMin = true
		t.minVal = pristine
	} else {
		i, ok := t.slot(addr)
		if !ok {
			t.journalKey(addr)
			// Grow at 3/4 occupancy, before the insert, so the probe chain
			// found by slot() stays valid.
			if (t.n+1)*4 > len(t.keys)*3 {
				t.grow()
				i, _ = t.slot(addr)
			}
			t.keys[i] = addr
			t.n++
		} else if t.vals[i] != pristine {
			t.journalKey(addr)
		}
		t.vals[i] = pristine
	}
	t.everContaminated = true
	if l := t.Len(); l > t.peak {
		t.peak = l
	}
}

// rawSet installs key -> val without touching the journal or the
// observation history; used only when replaying a restore, where the
// target state's history scalars are copied separately.
func (t *Table) rawSet(key int64, val uint64) {
	i, ok := t.slot(key)
	if !ok {
		if (t.n+1)*4 > len(t.keys)*3 {
			t.grow()
			i, _ = t.slot(key)
		}
		t.keys[i] = key
		t.n++
	}
	t.vals[i] = val
}

// rawDel removes key with backward-shift deletion, without touching the
// journal; the replay counterpart of Cleanse.
func (t *Table) rawDel(key int64) {
	i, ok := t.slot(key)
	if !ok {
		return
	}
	mask := len(t.keys) - 1
	j := i
	for {
		j = (j + 1) & mask
		k := t.keys[j]
		if k == emptySlot {
			break
		}
		if (j-t.home(k))&mask >= (j-i)&mask {
			t.keys[i], t.vals[i] = k, t.vals[j]
			i = j
		}
	}
	t.keys[i] = emptySlot
	t.n--
}

func (t *Table) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.initSlots(len(oldKeys) * 2)
	mask := len(t.keys) - 1
	for i, k := range oldKeys {
		if k == emptySlot {
			continue
		}
		j := t.home(k)
		for t.keys[j] != emptySlot {
			j = (j + 1) & mask
		}
		t.keys[j] = k
		t.vals[j] = oldVals[i]
		t.n++
	}
}

// Cleanse removes addr from the table (memory now matches the pristine
// execution there). Deletion backward-shifts the following probe chain, so
// no tombstones accumulate across the millions of contaminate/cleanse
// cycles of a campaign.
func (t *Table) Cleanse(addr int64) {
	if addr == emptySlot {
		if t.hasMin {
			t.journalKey(addr)
		}
		t.hasMin = false
		return
	}
	i, ok := t.slot(addr)
	if !ok {
		return
	}
	t.journalKey(addr)
	mask := len(t.keys) - 1
	j := i
	for {
		j = (j + 1) & mask
		k := t.keys[j]
		if k == emptySlot {
			break
		}
		// The entry at j can fill the hole at i only if its home position
		// precedes i on the cyclic probe path ending at j.
		if (j-t.home(k))&mask >= (j-i)&mask {
			t.keys[i], t.vals[i] = k, t.vals[j]
			i = j
		}
	}
	t.keys[i] = emptySlot
	t.n--
}

// Observe implements the fpm_store decision for a store whose primary and
// pristine addresses agree: the location becomes contaminated when the
// primary and pristine values differ, and cleansed when they match.
func (t *Table) Observe(addr int64, primary, pristine uint64) {
	if primary == pristine {
		t.Cleanse(addr)
		return
	}
	t.Record(addr, pristine)
}

// Addresses returns the contaminated addresses in ascending order. Intended
// for tests, snapshots and message assembly; O(n log n).
func (t *Table) Addresses() []int64 {
	addrs := make([]int64, 0, t.Len())
	if t.hasMin {
		addrs = append(addrs, emptySlot)
	}
	for _, k := range t.keys {
		if k != emptySlot {
			addrs = append(addrs, k)
		}
	}
	slices.Sort(addrs)
	return addrs
}

// CountInRange returns how many contaminated locations fall within
// [base, base+count).
func (t *Table) CountInRange(base, count int64) int {
	// For small ranges scanning the range beats scanning the table and
	// vice versa; pick by size.
	if count < int64(t.Len()) {
		n := 0
		for a := base; a < base+count; a++ {
			if _, ok := t.Pristine(a); ok {
				n++
			}
		}
		return n
	}
	n := 0
	if t.hasMin && emptySlot >= base && emptySlot < base+count {
		n++
	}
	for _, k := range t.keys {
		if k != emptySlot && k >= base && k < base+count {
			n++
		}
	}
	return n
}

// CarryHistory folds another table's observation history (peak CML and the
// ever-contaminated flag) into this one without adding entries. Used when
// a rollback reconstructs the table from a snapshot: the contamination
// happened even though it was undone.
func (t *Table) CarryHistory(peak int, ever bool) {
	if peak > t.peak {
		t.peak = peak
	}
	t.everContaminated = t.everContaminated || ever
}

// Reset empties the table and clears the peak and ever-contaminated state.
// The slot array is retained (bounded) so a pooled table re-used across
// experiments does not reallocate.
func (t *Table) Reset() {
	if len(t.keys) > tableResetCap {
		t.initSlots(tableMinSlots)
	} else {
		for i := range t.keys {
			t.keys[i] = emptySlot
		}
		t.n = 0
	}
	t.hasMin = false
	t.peak = 0
	t.everContaminated = false
	t.journal = t.journal[:0]
	t.journalFull = false
	t.base, t.baseGen = nil, 0
}

// TableSnap is a deep copy of a Table's complete state, including the slot
// layout and the observation history (peak CML, ever-contaminated). Because
// the slot array is copied verbatim, a restored table is indistinguishable
// from the original in every observable — including iteration order — so
// snapshot-forked runs stay byte-identical to from-scratch executions.
type TableSnap struct {
	keys   []int64
	vals   []uint64
	n      int
	shift  uint
	hasMin bool
	minVal uint64
	peak   int
	ever   bool

	// Chain link for delta restores, mirroring vm.MemSnap: sincePrev is
	// the dirty-key journal accumulated between prev and this snapshot
	// (sinceFull when it overflowed), and gen/prevGen guard against
	// recycled snapshot objects.
	gen       uint64
	prev      *TableSnap
	prevGen   uint64
	sincePrev []int64
	sinceFull bool
}

// lookup probes the snapshot's slot array for key (same Fibonacci probe
// as the live table, under the snapshot's own shift).
func (s *TableSnap) lookup(key int64) (uint64, bool) {
	mask := len(s.keys) - 1
	i := int((uint64(key) * fibMult) >> s.shift)
	for {
		switch s.keys[i] {
		case key:
			return s.vals[i], true
		case emptySlot:
			return 0, false
		}
		i = (i + 1) & mask
	}
}

// Len returns the number of contaminated locations in the snapshot.
func (s *TableSnap) Len() int {
	if s.hasMin {
		return s.n + 1
	}
	return s.n
}

// Snapshot captures the table into s, reusing s's backing arrays when they
// are large enough. A nil s allocates a fresh snapshot. The table remains
// untouched; later mutations of the table do not alias the snapshot.
func (t *Table) Snapshot(s *TableSnap) *TableSnap {
	if s == nil {
		s = &TableSnap{}
	}
	s.keys = append(s.keys[:0], t.keys...)
	s.vals = append(s.vals[:0], t.vals...)
	s.n = t.n
	s.shift = t.shift
	s.hasMin = t.hasMin
	s.minVal = t.minVal
	s.peak = t.peak
	s.ever = t.everContaminated
	if t.baseValid() && t.base != s {
		s.prev = t.base
		s.prevGen = t.baseGen
		s.sincePrev = append(s.sincePrev[:0], t.journal...)
		s.sinceFull = t.journalFull
	} else {
		s.prev = nil
		s.prevGen = 0
		s.sincePrev = s.sincePrev[:0]
		s.sinceFull = false
	}
	s.gen = tableGen.Add(1)
	t.base, t.baseGen = s, s.gen
	t.journal = t.journal[:0]
	t.journalFull = false
	return s
}

func (t *Table) baseValid() bool {
	return t.base != nil && t.baseGen != 0 && t.base.gen == t.baseGen
}

// deltaKeys assembles into t.scratchKeys every address that may differ
// between the live table and snapshot s: the live journal plus the
// per-hop journals along the chain between s and the base. ok is false
// when the chain is broken, any hop overflowed, or the total replay
// would cost more than a verbatim copy.
func (t *Table) deltaKeys(s *TableSnap) ([]int64, bool) {
	if t.journalFull {
		return nil, false
	}
	keys := append(t.scratchKeys[:0], t.journal...)
	from, to := s, t.base
	if from != to {
		if from.gen < to.gen {
			from, to = to, from
		}
		for hops := 0; from != to; hops++ {
			p := from.prev
			if hops >= tableChainHops || p == nil || p.gen != from.prevGen ||
				p.gen < to.gen || from.sinceFull {
				t.scratchKeys = keys
				return nil, false
			}
			keys = append(keys, from.sincePrev...)
			from = p
		}
	}
	t.scratchKeys = keys
	if len(keys) > tableDeltaMax {
		return nil, false
	}
	return keys, true
}

// RestoreSnap rewinds the table to the snapshotted state and returns the
// bytes it copied. When the table's last-known-equal base snapshot sits
// on the same chain as s and the combined journals are small, the
// restore replays "agree with s at address k" for just the journalled
// keys — idempotent and order-independent, so chained journals union
// safely; the slot layout may then differ from s's, which is fine
// because every Table observable (sorted iteration, counts, probes) is
// layout-independent. Otherwise the slot arrays are copied verbatim.
// The snapshot is not consumed: one snapshot can seed any number of
// restores, and mutating the restored table never writes through into
// the snapshot.
func (t *Table) RestoreSnap(s *TableSnap) int64 {
	if deltaEnabled() && t.baseValid() {
		if keys, ok := t.deltaKeys(s); ok {
			for _, k := range keys {
				if k == emptySlot {
					continue // carried by the hasMin/minVal scalars below
				}
				if pv, ok := s.lookup(k); ok {
					t.rawSet(k, pv)
				} else {
					t.rawDel(k)
				}
			}
			t.hasMin = s.hasMin
			t.minVal = s.minVal
			t.peak = s.peak
			t.everContaminated = s.ever
			t.base, t.baseGen = s, s.gen
			t.journal = t.journal[:0]
			t.journalFull = false
			return int64(len(keys)) * 16
		}
	}
	if len(t.keys) != len(s.keys) {
		t.keys = make([]int64, len(s.keys))
		t.vals = make([]uint64, len(s.vals))
	}
	copy(t.keys, s.keys)
	copy(t.vals, s.vals)
	t.n = s.n
	t.shift = s.shift
	t.hasMin = s.hasMin
	t.minVal = s.minVal
	t.peak = s.peak
	t.everContaminated = s.ever
	t.base, t.baseGen = s, s.gen
	t.journal = t.journal[:0]
	t.journalFull = false
	return int64(len(s.keys)) * 16
}

// Record is one entry of an MPI contamination header: the displacement of a
// contaminated word relative to the start of the message payload, and its
// pristine value (paper Fig. 4).
type MsgRecord struct {
	Displacement int64
	Pristine     uint64
}

// CollectRange assembles the contamination header for an outgoing message
// covering memory [base, base+count): one MsgRecord per contaminated word,
// with displacements relative to base, in ascending order.
func (t *Table) CollectRange(base, count int64) []MsgRecord {
	return t.AppendRange(nil, base, count)
}

// AppendRange is CollectRange appending into recs, so a caller issuing many
// messages can reuse one scratch slice.
func (t *Table) AppendRange(recs []MsgRecord, base, count int64) []MsgRecord {
	if int64(t.Len()) < count {
		start := len(recs)
		if t.hasMin && emptySlot >= base && emptySlot < base+count {
			recs = append(recs, MsgRecord{Displacement: emptySlot - base, Pristine: t.minVal})
		}
		for i, k := range t.keys {
			if k != emptySlot && k >= base && k < base+count {
				recs = append(recs, MsgRecord{Displacement: k - base, Pristine: t.vals[i]})
			}
		}
		added := recs[start:]
		slices.SortFunc(added, func(a, b MsgRecord) int {
			switch {
			case a.Displacement < b.Displacement:
				return -1
			case a.Displacement > b.Displacement:
				return 1
			}
			return 0
		})
		return recs
	}
	for a := base; a < base+count; a++ {
		if p, ok := t.Pristine(a); ok {
			recs = append(recs, MsgRecord{Displacement: a - base, Pristine: p})
		}
	}
	return recs
}

// ApplyRange installs contamination records for an incoming message copied
// to memory at [base, base+count). Every word in the range is first
// considered clean (the incoming payload overwrites whatever was there);
// words named by a record are contaminated unless the payload word already
// equals the pristine value. payload must hold the received words.
func (t *Table) ApplyRange(base int64, payload []uint64, recs []MsgRecord) {
	// The incoming payload overwrites the whole range: stale entries for
	// the range must go, exactly as a local store of a clean value would
	// cleanse a location.
	for a := base; a < base+int64(len(payload)); a++ {
		t.Cleanse(a)
	}
	for _, r := range recs {
		if r.Displacement < 0 || r.Displacement >= int64(len(payload)) {
			continue // malformed record; ignore defensively
		}
		if payload[r.Displacement] == r.Pristine {
			continue // arrived corrupted-flagged but value matches pristine
		}
		t.Record(base+r.Displacement, r.Pristine)
	}
}
