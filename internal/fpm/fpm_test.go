package fpm

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTableRecordCleanse(t *testing.T) {
	tb := NewTable()
	if tb.Len() != 0 || tb.Ever() {
		t.Fatal("new table not empty")
	}
	tb.Record(100, 42)
	if tb.Len() != 1 || !tb.Ever() || tb.Peak() != 1 {
		t.Errorf("after record: len=%d ever=%v peak=%d", tb.Len(), tb.Ever(), tb.Peak())
	}
	if v, ok := tb.Pristine(100); !ok || v != 42 {
		t.Errorf("Pristine(100) = %v, %v", v, ok)
	}
	tb.Cleanse(100)
	if tb.Len() != 0 {
		t.Error("cleanse did not remove entry")
	}
	if !tb.Ever() {
		t.Error("Ever must remain true after cleanse")
	}
	if tb.Peak() != 1 {
		t.Error("Peak must remain 1 after cleanse")
	}
}

func TestTableObserveSemantics(t *testing.T) {
	tb := NewTable()
	// Differing values contaminate.
	tb.Observe(7, 10, 11)
	if _, ok := tb.Pristine(7); !ok {
		t.Error("differing store did not contaminate")
	}
	// Equal values cleanse (paper Table 1 row 2: overwrite with constant).
	tb.Observe(7, 13, 13)
	if _, ok := tb.Pristine(7); ok {
		t.Error("clean overwrite did not cleanse")
	}
	// Equal values on a clean location: still clean.
	tb.Observe(8, 5, 5)
	if tb.Len() != 0 {
		t.Error("clean store contaminated a location")
	}
}

func TestPristineOr(t *testing.T) {
	tb := NewTable()
	if v := tb.PristineOr(1, 99); v != 99 {
		t.Errorf("clean PristineOr = %d, want fallback 99", v)
	}
	tb.Record(1, 7)
	if v := tb.PristineOr(1, 99); v != 7 {
		t.Errorf("contaminated PristineOr = %d, want 7", v)
	}
}

func TestAddressesSorted(t *testing.T) {
	tb := NewTable()
	for _, a := range []int64{5, 1, 9, 3} {
		tb.Record(a, 0)
	}
	got := tb.Addresses()
	want := []int64{1, 3, 5, 9}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Addresses = %v, want %v", got, want)
	}
}

func TestCountInRangeBothPaths(t *testing.T) {
	tb := NewTable()
	for a := int64(10); a < 20; a++ {
		tb.Record(a, 0)
	}
	// Small range: scans the range.
	if n := tb.CountInRange(12, 4); n != 4 {
		t.Errorf("CountInRange(12,4) = %d, want 4", n)
	}
	// Large range: scans the table.
	if n := tb.CountInRange(0, 1000); n != 10 {
		t.Errorf("CountInRange(0,1000) = %d, want 10", n)
	}
	if n := tb.CountInRange(20, 1000); n != 0 {
		t.Errorf("CountInRange(20,1000) = %d, want 0", n)
	}
}

func TestReset(t *testing.T) {
	tb := NewTable()
	tb.Record(1, 2)
	tb.Reset()
	if tb.Len() != 0 || tb.Ever() || tb.Peak() != 0 {
		t.Error("reset did not clear state")
	}
}

func TestCollectRange(t *testing.T) {
	tb := NewTable()
	tb.Record(100, 1)
	tb.Record(102, 2)
	tb.Record(200, 3) // outside
	recs := tb.CollectRange(100, 5)
	want := []MsgRecord{{0, 1}, {2, 2}}
	if !reflect.DeepEqual(recs, want) {
		t.Errorf("CollectRange = %v, want %v", recs, want)
	}
}

func TestCollectRangeLargeTablePath(t *testing.T) {
	tb := NewTable()
	for a := int64(0); a < 100; a++ {
		tb.Record(a, uint64(a))
	}
	recs := tb.CollectRange(10, 3) // count < len(table): range scan
	want := []MsgRecord{{0, 10}, {1, 11}, {2, 12}}
	if !reflect.DeepEqual(recs, want) {
		t.Errorf("CollectRange = %v, want %v", recs, want)
	}
}

func TestApplyRangeSeedsAndCleanses(t *testing.T) {
	tb := NewTable()
	// Receiver had stale contamination in the target range.
	tb.Record(51, 999)
	payload := []uint64{10, 20, 30}
	recs := []MsgRecord{{Displacement: 2, Pristine: 33}}
	tb.ApplyRange(50, payload, recs)
	// 51 was overwritten by clean word 20 -> cleansed.
	if _, ok := tb.Pristine(51); ok {
		t.Error("stale entry not cleansed by incoming clean data")
	}
	// 52 holds 30 but pristine is 33 -> contaminated.
	if v, ok := tb.Pristine(52); !ok || v != 33 {
		t.Errorf("record not applied: %v %v", v, ok)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
}

func TestApplyRangeIgnoresMalformedAndMatching(t *testing.T) {
	tb := NewTable()
	payload := []uint64{5}
	recs := []MsgRecord{
		{Displacement: -1, Pristine: 0}, // malformed
		{Displacement: 7, Pristine: 0},  // out of range
		{Displacement: 0, Pristine: 5},  // matches payload: clean
	}
	tb.ApplyRange(10, payload, recs)
	if tb.Len() != 0 {
		t.Errorf("Len = %d, want 0", tb.Len())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payload := []uint64{1, 2, 3, ^uint64(0)}
	recs := []MsgRecord{{0, 9}, {3, 8}}
	buf := EncodeMessage(payload, recs)
	gotPayload, gotRecs, err := DecodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotPayload, payload) {
		t.Errorf("payload = %v, want %v", gotPayload, payload)
	}
	if !reflect.DeepEqual(gotRecs, recs) {
		t.Errorf("recs = %v, want %v", gotRecs, recs)
	}
}

func TestDecodeRejectsCorruptMessages(t *testing.T) {
	if _, _, err := DecodeMessage([]byte{1, 2}); err == nil {
		t.Error("truncated message accepted")
	}
	// Claims 5 records but has none.
	buf := EncodeMessage(nil, nil)
	buf[0] = 5
	if _, _, err := DecodeMessage(buf); err == nil {
		t.Error("short record section accepted")
	}
	// Misaligned payload.
	buf = append(EncodeMessage([]uint64{1}, nil), 0xFF)
	if _, _, err := DecodeMessage(buf); err == nil {
		t.Error("misaligned payload accepted")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(payload []uint64, disps []uint8, prist []uint64) bool {
		n := len(disps)
		if len(prist) < n {
			n = len(prist)
		}
		recs := make([]MsgRecord, n)
		for i := 0; i < n; i++ {
			recs[i] = MsgRecord{Displacement: int64(disps[i]), Pristine: prist[i]}
		}
		buf := EncodeMessage(payload, recs)
		p2, r2, err := DecodeMessage(buf)
		if err != nil {
			return false
		}
		if len(p2) != len(payload) || len(r2) != len(recs) {
			return false
		}
		for i := range payload {
			if p2[i] != payload[i] {
				return false
			}
		}
		for i := range recs {
			if r2[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableInvariantProperty(t *testing.T) {
	// Property: after any sequence of Observe calls, an address is present
	// iff its last Observe had primary != pristine.
	type op struct {
		Addr     int8
		Prim     uint8
		Pristine uint8
	}
	f := func(ops []op) bool {
		tb := NewTable()
		last := make(map[int64]op)
		for _, o := range ops {
			tb.Observe(int64(o.Addr), uint64(o.Prim), uint64(o.Pristine))
			last[int64(o.Addr)] = o
		}
		for a, o := range last {
			_, present := tb.Pristine(a)
			wantPresent := o.Prim != o.Pristine
			if present != wantPresent {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkObserve(b *testing.B) {
	tb := NewTable()
	for i := 0; i < b.N; i++ {
		tb.Observe(int64(i%4096), uint64(i), uint64(i+1))
	}
}

func BenchmarkCollectRange(b *testing.B) {
	tb := NewTable()
	for a := int64(0); a < 4096; a += 3 {
		tb.Record(a, uint64(a))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tb.CollectRange(1024, 512)
	}
}
