package fpm

import (
	"testing"
)

// checkEqualsTableSnap asserts the table's logical state — the
// contamination map plus the observation-history scalars — matches the
// snapshot's. Slot layout is deliberately NOT compared: a delta restore
// may land the same logical state in a different layout, and every Table
// observable is layout-independent.
func checkEqualsTableSnap(t *testing.T, tb *Table, s *TableSnap) {
	t.Helper()
	want := make(map[int64]uint64, s.n)
	for i, k := range s.keys {
		if k != emptySlot {
			want[k] = s.vals[i]
		}
	}
	got := make(map[int64]uint64, tb.n)
	for i, k := range tb.keys {
		if k != emptySlot {
			got[k] = tb.vals[i]
		}
	}
	if len(got) != len(want) || tb.n != s.n {
		t.Fatalf("restored table holds %d entries, snapshot has %d", len(got), len(want))
	}
	for k, v := range want {
		if gv, ok := got[k]; !ok || gv != v {
			t.Fatalf("restored table at %d = (%d, %v), want (%d, true)", k, gv, ok, v)
		}
	}
	if tb.hasMin != s.hasMin || (s.hasMin && tb.minVal != s.minVal) ||
		tb.peak != s.peak || tb.everContaminated != s.ever {
		t.Fatalf("restored scalars (%v,%d,%d,%v) want (%v,%d,%d,%v)",
			tb.hasMin, tb.minVal, tb.peak, tb.everContaminated,
			s.hasMin, s.minVal, s.peak, s.ever)
	}
}

// TestTableDeltaRestore checks a small fork restores by journal replay
// and lands the snapshot's exact logical state.
func TestTableDeltaRestore(t *testing.T) {
	tb := NewTable()
	for a := int64(10); a < 20; a++ {
		tb.Record(a, uint64(a)*7)
	}
	s := tb.Snapshot(nil)
	tb.Record(10, 999) // value change
	tb.Record(50, 1)   // insert
	tb.Cleanse(15)     // removal
	bytes := tb.RestoreSnap(s)
	if want := int64(3) * 16; bytes != want {
		t.Fatalf("delta restore copied %d bytes, want %d (3 journalled keys)", bytes, want)
	}
	checkEqualsTableSnap(t, tb, s)
	// No-transition stores must not enter the journal: re-recording the
	// same pristine value and cleansing an absent key are free.
	tb.Record(12, 12*7) // same pristine value as already stored
	tb.Cleanse(7777)    // absent key
	if n := len(tb.journal); n != 0 {
		t.Fatalf("no-op mutations journalled %d keys, want 0", n)
	}
}

// TestTableJournalOverflow pushes more transitions than the journal cap
// and checks the restore degrades to a correct verbatim copy.
func TestTableJournalOverflow(t *testing.T) {
	tb := NewTable()
	tb.Record(1, 11)
	s := tb.Snapshot(nil)
	for a := int64(0); a < tableJournalCap+10; a++ {
		tb.Record(1000+a, uint64(a))
	}
	if !tb.journalFull {
		t.Fatal("journal did not overflow")
	}
	bytes := tb.RestoreSnap(s)
	if want := int64(len(s.keys)) * 16; bytes != want {
		t.Fatalf("overflowed restore copied %d bytes, want full copy %d", bytes, want)
	}
	checkEqualsTableSnap(t, tb, s)
}

// TestTableDeltaChain moves a table between two chained snapshots in
// both directions via journal replay.
func TestTableDeltaChain(t *testing.T) {
	tb := NewTable()
	tb.Record(5, 50)
	s1 := tb.Snapshot(nil)
	tb.Record(5, 51)
	tb.Record(6, 60)
	s2 := tb.Snapshot(nil)
	if s2.prev != s1 {
		t.Fatal("second snapshot did not chain to the first")
	}
	tb.Cleanse(5)
	if b := tb.RestoreSnap(s1); b >= int64(len(s1.keys))*16 {
		t.Fatalf("chain restore to s1 cost %d bytes, full copy is %d", b, int64(len(s1.keys))*16)
	}
	checkEqualsTableSnap(t, tb, s1)
	if b := tb.RestoreSnap(s2); b >= int64(len(s2.keys))*16 {
		t.Fatalf("chain restore to s2 cost %d bytes, full copy is %d", b, int64(len(s2.keys))*16)
	}
	checkEqualsTableSnap(t, tb, s2)
}

// FuzzTableDeltaRestore interleaves records, cleanses, snapshots, and
// full-copy and delta restores, asserting after every restore that the
// table's logical state equals the restored snapshot's.
func FuzzTableDeltaRestore(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 3, 4, 2, 3, 0, 1})
	f.Add([]byte{0, 10, 1, 0, 10, 2, 0, 11, 3, 3, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		tb := NewTable()
		var snaps []*TableSnap
		i := 0
		next := func() byte {
			if i >= len(data) {
				return 0
			}
			b := data[i]
			i++
			return b
		}
		for i < len(data) {
			switch next() % 4 {
			case 0: // record
				tb.Record(int64(next())%64, uint64(next()))
			case 1: // cleanse
				tb.Cleanse(int64(next()) % 64)
			case 2: // snapshot
				if len(snaps) < 8 {
					snaps = append(snaps, tb.Snapshot(nil))
				}
			case 3: // restore; odd selector forces the full-copy path
				if len(snaps) == 0 {
					continue
				}
				s := snaps[int(next())%len(snaps)]
				if next()%2 == 1 {
					tb.base, tb.baseGen = nil, 0
				}
				tb.RestoreSnap(s)
				checkEqualsTableSnap(t, tb, s)
			}
		}
	})
}
