package fpm

import (
	"encoding/binary"
	"fmt"
)

// The wire format of a message with contamination piggyback mirrors the
// paper's Fig. 4: a header holding the number of contaminated locations and
// one <displacement, pristine value> record per location, followed by the
// original payload. The simulated MPI layer could pass Go slices directly,
// but the framework encodes messages to the paper's wire shape so the
// header handling (and its cost) is real and testable.

// EncodeMessage serializes payload plus contamination records:
//
//	[8B record count N] [N × (8B displacement, 8B pristine)] [payload words]
func EncodeMessage(payload []uint64, recs []MsgRecord) []byte {
	return AppendEncodeMessage(nil, payload, recs)
}

// AppendEncodeMessage is EncodeMessage appending to dst (usually a recycled
// wire buffer sliced to length zero). Every byte of the returned message is
// freshly written, so buffer reuse cannot leak prior message content.
func AppendEncodeMessage(dst []byte, payload []uint64, recs []MsgRecord) []byte {
	need := 8 + 16*len(recs) + 8*len(payload)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(recs)))
	for _, r := range recs {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Displacement))
		dst = binary.LittleEndian.AppendUint64(dst, r.Pristine)
	}
	for _, w := range payload {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// DecodeMessage parses a message produced by EncodeMessage.
func DecodeMessage(buf []byte) (payload []uint64, recs []MsgRecord, err error) {
	return AppendDecodeMessage(nil, nil, buf)
}

// AppendDecodeMessage is DecodeMessage appending into caller scratch, so a
// receiver consuming many messages can reuse its buffers. The returned
// slices alias the scratch (regrown as needed); on error both are nil.
func AppendDecodeMessage(payloadDst []uint64, recsDst []MsgRecord, buf []byte) (payload []uint64, recs []MsgRecord, err error) {
	if len(buf) < 8 {
		return nil, nil, fmt.Errorf("fpm: message truncated: %d bytes", len(buf))
	}
	n := binary.LittleEndian.Uint64(buf)
	off := 8
	// Divide rather than multiply: 16*n overflows uint64 for adversarial
	// counts (n ≥ 2^60), which would slip past the bound and panic in make.
	if n > uint64(len(buf)-off)/16 {
		return nil, nil, fmt.Errorf("fpm: header claims %d records, message too short", n)
	}
	recs = recsDst
	for i := uint64(0); i < n; i++ {
		recs = append(recs, MsgRecord{
			Displacement: int64(binary.LittleEndian.Uint64(buf[off:])),
			Pristine:     binary.LittleEndian.Uint64(buf[off+8:]),
		})
		off += 16
	}
	rest := len(buf) - off
	if rest%8 != 0 {
		return nil, nil, fmt.Errorf("fpm: payload not word-aligned: %d bytes", rest)
	}
	payload = payloadDst
	for i := 0; i < rest/8; i++ {
		payload = append(payload, binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return payload, recs, nil
}
