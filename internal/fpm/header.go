package fpm

import (
	"encoding/binary"
	"fmt"
)

// The wire format of a message with contamination piggyback mirrors the
// paper's Fig. 4: a header holding the number of contaminated locations and
// one <displacement, pristine value> record per location, followed by the
// original payload. The simulated MPI layer could pass Go slices directly,
// but the framework encodes messages to the paper's wire shape so the
// header handling (and its cost) is real and testable.

// EncodeMessage serializes payload plus contamination records:
//
//	[8B record count N] [N × (8B displacement, 8B pristine)] [payload words]
func EncodeMessage(payload []uint64, recs []MsgRecord) []byte {
	buf := make([]byte, 8+16*len(recs)+8*len(payload))
	binary.LittleEndian.PutUint64(buf, uint64(len(recs)))
	off := 8
	for _, r := range recs {
		binary.LittleEndian.PutUint64(buf[off:], uint64(r.Displacement))
		binary.LittleEndian.PutUint64(buf[off+8:], r.Pristine)
		off += 16
	}
	for _, w := range payload {
		binary.LittleEndian.PutUint64(buf[off:], w)
		off += 8
	}
	return buf
}

// DecodeMessage parses a message produced by EncodeMessage.
func DecodeMessage(buf []byte) (payload []uint64, recs []MsgRecord, err error) {
	if len(buf) < 8 {
		return nil, nil, fmt.Errorf("fpm: message truncated: %d bytes", len(buf))
	}
	n := binary.LittleEndian.Uint64(buf)
	off := 8
	// Divide rather than multiply: 16*n overflows uint64 for adversarial
	// counts (n ≥ 2^60), which would slip past the bound and panic in make.
	if n > uint64(len(buf)-off)/16 {
		return nil, nil, fmt.Errorf("fpm: header claims %d records, message too short", n)
	}
	recs = make([]MsgRecord, n)
	for i := range recs {
		recs[i].Displacement = int64(binary.LittleEndian.Uint64(buf[off:]))
		recs[i].Pristine = binary.LittleEndian.Uint64(buf[off+8:])
		off += 16
	}
	rest := len(buf) - off
	if rest%8 != 0 {
		return nil, nil, fmt.Errorf("fpm: payload not word-aligned: %d bytes", rest)
	}
	payload = make([]uint64, rest/8)
	for i := range payload {
		payload[i] = binary.LittleEndian.Uint64(buf[off:])
		off += 8
	}
	return payload, recs, nil
}
