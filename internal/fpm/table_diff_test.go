package fpm

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

// refTable is the original map-backed contamination table, kept as a
// test-only reference implementation. The open-addressed Table must be
// observationally identical to it under every operation sequence.
type refTable struct {
	m    map[int64]uint64
	peak int
	ever bool
}

func newRefTable() *refTable { return &refTable{m: make(map[int64]uint64)} }

func (t *refTable) Len() int   { return len(t.m) }
func (t *refTable) Peak() int  { return t.peak }
func (t *refTable) Ever() bool { return t.ever }

func (t *refTable) Pristine(addr int64) (uint64, bool) {
	v, ok := t.m[addr]
	return v, ok
}

func (t *refTable) PristineOr(addr int64, fallback uint64) uint64 {
	if v, ok := t.m[addr]; ok {
		return v
	}
	return fallback
}

func (t *refTable) Record(addr int64, pristine uint64) {
	t.m[addr] = pristine
	t.ever = true
	if len(t.m) > t.peak {
		t.peak = len(t.m)
	}
}

func (t *refTable) Cleanse(addr int64) { delete(t.m, addr) }

func (t *refTable) Observe(addr int64, primary, pristine uint64) {
	if primary == pristine {
		t.Cleanse(addr)
		return
	}
	t.Record(addr, pristine)
}

func (t *refTable) Addresses() []int64 {
	addrs := make([]int64, 0, len(t.m))
	for a := range t.m {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

func (t *refTable) CountInRange(base, count int64) int {
	n := 0
	for a := range t.m {
		if a >= base && a < base+count {
			n++
		}
	}
	return n
}

func (t *refTable) CollectRange(base, count int64) []MsgRecord {
	var recs []MsgRecord
	for a, p := range t.m {
		if a >= base && a < base+count {
			recs = append(recs, MsgRecord{Displacement: a - base, Pristine: p})
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Displacement < recs[j].Displacement })
	return recs
}

func (t *refTable) ApplyRange(base int64, payload []uint64, recs []MsgRecord) {
	for a := base; a < base+int64(len(payload)); a++ {
		t.Cleanse(a)
	}
	for _, r := range recs {
		if r.Displacement < 0 || r.Displacement >= int64(len(payload)) {
			continue
		}
		if payload[r.Displacement] == r.Pristine {
			continue
		}
		t.Record(base+r.Displacement, r.Pristine)
	}
}

// checkEquiv compares every observable of the two implementations.
func checkEquiv(t *testing.T, step int, got *Table, want *refTable) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("step %d: Len = %d, want %d", step, got.Len(), want.Len())
	}
	if got.Peak() != want.Peak() {
		t.Fatalf("step %d: Peak = %d, want %d", step, got.Peak(), want.Peak())
	}
	if got.Ever() != want.Ever() {
		t.Fatalf("step %d: Ever = %v, want %v", step, got.Ever(), want.Ever())
	}
	ga, wa := got.Addresses(), want.Addresses()
	if len(ga) == 0 && len(wa) == 0 {
		return
	}
	if !reflect.DeepEqual(ga, wa) {
		t.Fatalf("step %d: Addresses = %v, want %v", step, ga, wa)
	}
	for _, a := range wa {
		gv, gok := got.Pristine(a)
		wv, wok := want.Pristine(a)
		if gok != wok || gv != wv {
			t.Fatalf("step %d: Pristine(%d) = %d,%v want %d,%v", step, a, gv, gok, wv, wok)
		}
	}
}

// splitmix is a tiny deterministic PRNG for the differential driver.
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// diffAddr draws addresses from a small universe so Record/Cleanse collide
// often (probe chains and backward shifts get exercised), with occasional
// extreme keys including the empty-slot sentinel value.
func diffAddr(r *splitmix) int64 {
	switch v := r.next(); v % 16 {
	case 0:
		return math.MinInt64 // the open-addressed table's empty marker
	case 1:
		return math.MaxInt64
	case 2:
		return -int64(v % 64)
	default:
		return int64(v % 97)
	}
}

// TestTableDifferential drives random Record/Observe/Cleanse/range-op
// sequences through both implementations and requires identical
// observables after every step.
func TestTableDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		r := splitmix(seed)
		got, want := NewTable(), newRefTable()
		for step := 0; step < 400; step++ {
			switch r.next() % 10 {
			case 0, 1, 2:
				a, p := diffAddr(&r), r.next()%8
				got.Record(a, p)
				want.Record(a, p)
			case 3, 4:
				a := diffAddr(&r)
				got.Cleanse(a)
				want.Cleanse(a)
			case 5, 6, 7:
				a, prim, prist := diffAddr(&r), r.next()%4, r.next()%4
				got.Observe(a, prim, prist)
				want.Observe(a, prim, prist)
			case 8:
				base, count := diffAddr(&r), int64(r.next()%128)
				if gc, wc := got.CountInRange(base, count), want.CountInRange(base, count); gc != wc {
					t.Fatalf("seed %d step %d: CountInRange(%d,%d) = %d, want %d",
						seed, step, base, count, gc, wc)
				}
				if gr, wr := got.CollectRange(base, count), want.CollectRange(base, count); !reflect.DeepEqual(gr, wr) && (len(gr) > 0 || len(wr) > 0) {
					t.Fatalf("seed %d step %d: CollectRange(%d,%d) = %v, want %v",
						seed, step, base, count, gr, wr)
				}
			case 9:
				base := int64(r.next() % 64)
				payload := make([]uint64, 1+r.next()%8)
				for i := range payload {
					payload[i] = r.next() % 4
				}
				var recs []MsgRecord
				for i := uint64(0); i < r.next()%4; i++ {
					recs = append(recs, MsgRecord{
						Displacement: int64(r.next()%12) - 2, // includes malformed
						Pristine:     r.next() % 4,
					})
				}
				got.ApplyRange(base, payload, recs)
				want.ApplyRange(base, payload, recs)
			}
			checkEquiv(t, step, got, want)
		}
	}
}

// TestTableDifferentialDuplicateStoreAddress replays the paper's Table 1
// duplicate-contamination case — a store through a corrupted address
// contaminates the written location AND the location that should have been
// written — through both implementations, exactly as vm.fpmStore issues it.
func TestTableDifferentialDuplicateStoreAddress(t *testing.T) {
	got, want := NewTable(), newRefTable()
	// Corrupted store address: primary addr 40, pristine addr 44.
	// Location 40 now holds vP (pristine content was 7); location 44 kept
	// its current content 9 but should hold vS.
	for _, tb := range []interface {
		Observe(int64, uint64, uint64)
	}{got, want} {
		tb.Observe(40, 123, 7) // written location vs its fault-free content
		tb.Observe(44, 9, 456) // skipped location vs what should be there
		// A later clean overwrite of 40 cleanses only that entry.
		tb.Observe(40, 7, 7)
	}
	checkEquiv(t, 0, got, want)
	if _, ok := got.Pristine(44); !ok {
		t.Fatal("duplicate contamination at the pristine address was lost")
	}
	if _, ok := got.Pristine(40); ok {
		t.Fatal("cleansed primary address still contaminated")
	}
}

// FuzzTableDifferential lets the fuzzer drive the same differential: the
// input bytes are decoded as an op stream over both implementations.
func FuzzTableDifferential(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55})
	f.Add([]byte{0xFF, 0x01, 0x80, 0x7F, 0x00, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, want := NewTable(), newRefTable()
		for i := 0; i+2 < len(data); i += 3 {
			op, a, v := data[i]%4, int64(int8(data[i+1])), uint64(data[i+2]%8)
			switch op {
			case 0:
				got.Record(a, v)
				want.Record(a, v)
			case 1:
				got.Cleanse(a)
				want.Cleanse(a)
			case 2:
				got.Observe(a, v, uint64(data[i+2]%3))
				want.Observe(a, v, uint64(data[i+2]%3))
			case 3:
				if gc, wc := got.CountInRange(a, 16), want.CountInRange(a, 16); gc != wc {
					t.Fatalf("CountInRange(%d,16) = %d, want %d", a, gc, wc)
				}
			}
		}
		if got.Len() != want.Len() || got.Peak() != want.Peak() || got.Ever() != want.Ever() {
			t.Fatalf("state diverged: len %d/%d peak %d/%d ever %v/%v",
				got.Len(), want.Len(), got.Peak(), want.Peak(), got.Ever(), want.Ever())
		}
		if !reflect.DeepEqual(got.Addresses(), want.Addresses()) &&
			(got.Len() > 0 || want.Len() > 0) {
			t.Fatalf("addresses diverged: %v vs %v", got.Addresses(), want.Addresses())
		}
	})
}
