// Package trace records fault-propagation observables during a run: the
// corrupted-memory-locations time series of each rank (paper Fig. 7), and
// the job-level spread of contamination across ranks (paper Fig. 8).
//
// All retained observables are expressed in rank-local application cycles.
// The ranks of a lockstep MPI job advance in near-unison, so local cycles
// are comparable across ranks — and unlike a shared wall-clock proxy they
// are a pure function of the program and the fault plan, never of
// goroutine scheduling. That determinism is what lets campaign results be
// checkpointed and replayed byte-for-byte.
package trace

import (
	"sort"
	"sync"
)

// Point is one CML sample of one rank.
type Point struct {
	Cycles int64 // rank-local application cycles
	CML    int   // corrupted memory locations at that moment
}

// TickPoint marks an application timestep boundary.
type TickPoint struct {
	Cycles int64
	Tick   int64
}

// Recorder observes one rank's VM. It implements vm.Tracer. Not safe for
// concurrent use; each rank owns one.
type Recorder struct {
	// SampleEvery subsamples CML changes: a new point is retained only
	// when at least this many local cycles have passed since the last
	// retained point (transitions from zero are always retained). Zero
	// retains every change.
	SampleEvery uint64

	points []Point
	ticks  []TickPoint

	firstContam       int64
	hasFirstContam    bool
	lastSampledCycles uint64
	lastCML           int
	maxCML            int
}

// Reset readies a pooled Recorder for a new run. The retained series
// escape into run results, so Reset does not reuse their backing: it
// allocates fresh slices sized by the caller's capacity hints (typically
// the previous run's lengths), replacing the append-grow churn of a cold
// recorder with one right-sized allocation each.
func (r *Recorder) Reset(sampleEvery uint64, pointsCap, ticksCap int) {
	*r = Recorder{
		SampleEvery: sampleEvery,
		points:      make([]Point, 0, pointsCap),
		ticks:       make([]TickPoint, 0, ticksCap),
	}
}

// OnCMLChange implements vm.Tracer. The globalTime argument is ignored:
// it reads a clock shared across concurrently-running ranks, so its value
// depends on goroutine interleaving.
func (r *Recorder) OnCMLChange(localCycles, globalTime uint64, cml int) {
	if cml > r.maxCML {
		r.maxCML = cml
	}
	becameContaminated := r.lastCML == 0 && cml > 0
	if becameContaminated && !r.hasFirstContam {
		r.firstContam = int64(localCycles)
		r.hasFirstContam = true
	}
	r.lastCML = cml
	if !becameContaminated && r.SampleEvery > 0 &&
		localCycles-r.lastSampledCycles < r.SampleEvery && len(r.points) > 0 {
		return
	}
	r.lastSampledCycles = localCycles
	r.points = append(r.points, Point{Cycles: int64(localCycles), CML: cml})
}

// OnTick implements vm.Tracer.
func (r *Recorder) OnTick(localCycles, globalTime uint64, tick int64) {
	r.ticks = append(r.ticks, TickPoint{Cycles: int64(localCycles), Tick: tick})
}

// Finish appends a final sample so the series extends to the end of the run.
func (r *Recorder) Finish(localCycles, globalTime uint64, cml int) {
	if cml > r.maxCML {
		r.maxCML = cml
	}
	r.lastCML = cml
	r.points = append(r.points, Point{Cycles: int64(localCycles), CML: cml})
}

// RecorderSnap is a deep copy of a Recorder's state at one moment of a
// run, so a snapshot-forked execution resumes with exactly the trace a
// from-scratch run would have accumulated by that point.
type RecorderSnap struct {
	sampleEvery       uint64
	points            []Point
	ticks             []TickPoint
	firstContam       int64
	hasFirstContam    bool
	lastSampledCycles uint64
	lastCML           int
	maxCML            int
}

// Snapshot captures the recorder into s (reusing s's backing when possible;
// nil allocates). Later recording does not alias the snapshot.
func (r *Recorder) Snapshot(s *RecorderSnap) *RecorderSnap {
	if s == nil {
		s = &RecorderSnap{}
	}
	s.sampleEvery = r.SampleEvery
	s.points = append(s.points[:0], r.points...)
	s.ticks = append(s.ticks[:0], r.ticks...)
	s.firstContam = r.firstContam
	s.hasFirstContam = r.hasFirstContam
	s.lastSampledCycles = r.lastSampledCycles
	s.lastCML = r.lastCML
	s.maxCML = r.maxCML
	return s
}

// RestoreSnap rewinds the recorder to the snapshotted state. Like Reset, it
// gives the retained series fresh backing — they escape into run results —
// sized by the caller's capacity hints (at least the snapshot lengths are
// always reserved). The snapshot is reusable across any number of restores.
func (r *Recorder) RestoreSnap(s *RecorderSnap, pointsCap, ticksCap int) {
	r.SampleEvery = s.sampleEvery
	r.points = append(make([]Point, 0, max(pointsCap, len(s.points))), s.points...)
	r.ticks = append(make([]TickPoint, 0, max(ticksCap, len(s.ticks))), s.ticks...)
	r.firstContam = s.firstContam
	r.hasFirstContam = s.hasFirstContam
	r.lastSampledCycles = s.lastSampledCycles
	r.lastCML = s.lastCML
	r.maxCML = s.maxCML
}

// Points returns the retained CML series.
func (r *Recorder) Points() []Point { return r.points }

// Ticks returns the timestep marks.
func (r *Recorder) Ticks() []TickPoint { return r.ticks }

// MaxCML returns the peak CML observed.
func (r *Recorder) MaxCML() int { return r.maxCML }

// FirstContamination returns the rank-local cycle count at which the rank
// first became contaminated, and whether it ever did.
func (r *Recorder) FirstContamination() (int64, bool) {
	return r.firstContam, r.hasFirstContam
}

// RankSpread aggregates per-rank first-contamination times (rank-local
// cycles) into the corrupted-ranks-over-time series of paper Fig. 8.
type RankSpread struct {
	mu    sync.Mutex
	times []int64
}

// Note records that a rank became contaminated at rank-local cycle t.
// Safe for concurrent use.
func (s *RankSpread) Note(t int64) {
	s.mu.Lock()
	s.times = append(s.times, t)
	s.mu.Unlock()
}

// SpreadPoint is one step of the corrupted-rank-count series.
type SpreadPoint struct {
	Time  int64
	Ranks int
}

// Series returns the cumulative corrupted-rank counts in time order.
func (s *RankSpread) Series() []SpreadPoint {
	s.mu.Lock()
	ts := append([]int64(nil), s.times...)
	s.mu.Unlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := make([]SpreadPoint, len(ts))
	for i, t := range ts {
		out[i] = SpreadPoint{Time: t, Ranks: i + 1}
	}
	return out
}

// Count returns how many ranks became contaminated.
func (s *RankSpread) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.times)
}
