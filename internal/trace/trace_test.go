package trace

import (
	"sync"
	"testing"
)

func TestRecorderRetainsChanges(t *testing.T) {
	var r Recorder
	r.OnCMLChange(10, 100, 1)
	r.OnCMLChange(20, 200, 2)
	r.OnCMLChange(30, 300, 0)
	r.Finish(40, 400, 0)
	pts := r.Points()
	if len(pts) != 4 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0] != (Point{Cycles: 10, CML: 1}) {
		t.Errorf("first point = %+v", pts[0])
	}
	if r.MaxCML() != 2 {
		t.Errorf("max = %d, want 2", r.MaxCML())
	}
	// First contamination is reported in rank-local cycles (the first
	// argument), never the scheduling-dependent shared clock.
	if ft, ok := r.FirstContamination(); !ok || ft != 10 {
		t.Errorf("first contamination = %d %v, want 10", ft, ok)
	}
}

func TestRecorderSubsampling(t *testing.T) {
	r := Recorder{SampleEvery: 100}
	for c := uint64(0); c < 1000; c += 10 {
		r.OnCMLChange(c, c, int(c))
	}
	pts := r.Points()
	if len(pts) < 5 || len(pts) > 15 {
		t.Errorf("retained %d points, want ~10", len(pts))
	}
	// Max is tracked exactly even when subsampled.
	if r.MaxCML() != 990 {
		t.Errorf("max = %d, want 990", r.MaxCML())
	}
}

func TestRecorderZeroTransitionAlwaysRetained(t *testing.T) {
	r := Recorder{SampleEvery: 1 << 40}
	r.OnCMLChange(5, 5, 3) // first contamination: retained
	r.OnCMLChange(6, 6, 0) // cleansed: subsampled away
	r.OnCMLChange(7, 7, 1) // re-contaminated from zero: retained
	pts := r.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %v, want 2 retained", pts)
	}
	if ft, ok := r.FirstContamination(); !ok || ft != 5 {
		t.Errorf("first contamination = %d %v, want 5", ft, ok)
	}
}

func TestRecorderTicks(t *testing.T) {
	var r Recorder
	r.OnTick(100, 100, 1)
	r.OnTick(200, 200, 2)
	if n := len(r.Ticks()); n != 2 {
		t.Errorf("ticks = %d", n)
	}
}

func TestRankSpreadSeries(t *testing.T) {
	var s RankSpread
	var wg sync.WaitGroup
	for _, tm := range []int64{300, 100, 200} {
		wg.Add(1)
		go func(tm int64) {
			defer wg.Done()
			s.Note(tm)
		}(tm)
	}
	wg.Wait()
	series := s.Series()
	if len(series) != 3 || s.Count() != 3 {
		t.Fatalf("series = %v", series)
	}
	want := []SpreadPoint{{100, 1}, {200, 2}, {300, 3}}
	for i, p := range series {
		if p != want[i] {
			t.Errorf("series[%d] = %+v, want %+v", i, p, want[i])
		}
	}
}
