package trace

import (
	"sync"
	"testing"
)

func TestRecorderRetainsChanges(t *testing.T) {
	var r Recorder
	r.OnCMLChange(10, 100, 1)
	r.OnCMLChange(20, 200, 2)
	r.OnCMLChange(30, 300, 0)
	r.Finish(40, 400, 0)
	pts := r.Points()
	if len(pts) != 4 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0] != (Point{Cycles: 10, CML: 1}) {
		t.Errorf("first point = %+v", pts[0])
	}
	if r.MaxCML() != 2 {
		t.Errorf("max = %d, want 2", r.MaxCML())
	}
	// First contamination is reported in rank-local cycles (the first
	// argument), never the scheduling-dependent shared clock.
	if ft, ok := r.FirstContamination(); !ok || ft != 10 {
		t.Errorf("first contamination = %d %v, want 10", ft, ok)
	}
}

func TestRecorderSubsampling(t *testing.T) {
	r := Recorder{SampleEvery: 100}
	for c := uint64(0); c < 1000; c += 10 {
		r.OnCMLChange(c, c, int(c))
	}
	pts := r.Points()
	if len(pts) < 5 || len(pts) > 15 {
		t.Errorf("retained %d points, want ~10", len(pts))
	}
	// Max is tracked exactly even when subsampled.
	if r.MaxCML() != 990 {
		t.Errorf("max = %d, want 990", r.MaxCML())
	}
}

func TestRecorderZeroTransitionAlwaysRetained(t *testing.T) {
	r := Recorder{SampleEvery: 1 << 40}
	r.OnCMLChange(5, 5, 3) // first contamination: retained
	r.OnCMLChange(6, 6, 0) // cleansed: subsampled away
	r.OnCMLChange(7, 7, 1) // re-contaminated from zero: retained
	pts := r.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %v, want 2 retained", pts)
	}
	if ft, ok := r.FirstContamination(); !ok || ft != 5 {
		t.Errorf("first contamination = %d %v, want 5", ft, ok)
	}
}

func TestRecorderTicks(t *testing.T) {
	var r Recorder
	r.OnTick(100, 100, 1)
	r.OnTick(200, 200, 2)
	if n := len(r.Ticks()); n != 2 {
		t.Errorf("ticks = %d", n)
	}
}

// TestRecorderRestoreSnapOverCapacity pins the capacity edge of the
// snapshot round-trip: restoring a snapshot whose series are longer than
// the caller's capacity hints must keep every snapshotted point (the hint
// is a floor, not a cap) and must give the recorder fresh backing — later
// recording may never alias into the snapshot, which stays reusable
// across restores.
func TestRecorderRestoreSnapOverCapacity(t *testing.T) {
	var r Recorder
	r.Reset(0, 4, 4)
	for c := uint64(1); c <= 32; c++ {
		r.OnCMLChange(c, c, int(c))
		r.OnTick(c, c, int64(c))
	}
	snap := r.Snapshot(nil)

	// Restore with capacity hints far below the snapshot lengths.
	r.RestoreSnap(snap, 2, 2)
	if got := len(r.Points()); got != 32 {
		t.Fatalf("restored %d points, want 32 (over-capacity restore truncated)", got)
	}
	if got := len(r.Ticks()); got != 32 {
		t.Fatalf("restored %d ticks, want 32", got)
	}
	if ft, ok := r.FirstContamination(); !ok || ft != 1 {
		t.Errorf("first contamination after restore = %d %v, want 1", ft, ok)
	}

	// Recording past the restored length must not write into the
	// snapshot's backing.
	r.OnCMLChange(100, 100, 7)
	r.Finish(200, 200, 7)
	if got := len(snap.points); got != 32 {
		t.Fatalf("snapshot grew to %d points after post-restore recording", got)
	}
	for i, p := range snap.points {
		if want := (Point{Cycles: int64(i + 1), CML: i + 1}); p != want {
			t.Fatalf("snapshot point %d = %+v, want %+v (aliased by restored recorder)", i, p, want)
		}
	}

	// The same snapshot restores again, byte-identically.
	var r2 Recorder
	r2.RestoreSnap(snap, 0, 0)
	if len(r2.Points()) != 32 || r2.MaxCML() != 32 {
		t.Errorf("second restore: %d points, max %d, want 32/32", len(r2.Points()), r2.MaxCML())
	}
}

// TestRecorderFirstContaminationSubsampled pins that first-contamination
// tracking is exact under subsampling: the zero→nonzero transition is
// always retained and stamped, and cleanse/re-contaminate churn inside a
// sampling window neither loses the original timestamp nor re-stamps it.
func TestRecorderFirstContaminationSubsampled(t *testing.T) {
	r := Recorder{SampleEvery: 1000}
	r.OnCMLChange(10, 10, 0) // still clean: no contamination recorded
	if _, ok := r.FirstContamination(); ok {
		t.Fatal("contamination reported before any nonzero CML")
	}
	r.OnCMLChange(42, 42, 3) // first contamination, mid-window
	r.OnCMLChange(50, 50, 0) // cleansed within the window
	r.OnCMLChange(60, 60, 5) // re-contaminated: must not re-stamp
	r.OnCMLChange(70, 70, 9) // same window: subsampled away
	if ft, ok := r.FirstContamination(); !ok || ft != 42 {
		t.Errorf("first contamination = %d %v, want 42", ft, ok)
	}
	if r.MaxCML() != 9 {
		t.Errorf("max = %d, want 9 (tracked exactly despite subsampling)", r.MaxCML())
	}
}

// TestRankSpreadSingleRank pins the one-rank degenerate series: a single
// contamination yields exactly one cumulative step.
func TestRankSpreadSingleRank(t *testing.T) {
	var s RankSpread
	s.Note(500)
	series := s.Series()
	if len(series) != 1 || s.Count() != 1 {
		t.Fatalf("series = %v, want one point", series)
	}
	if series[0] != (SpreadPoint{Time: 500, Ranks: 1}) {
		t.Errorf("series[0] = %+v, want {500 1}", series[0])
	}
}

func TestRankSpreadSeries(t *testing.T) {
	var s RankSpread
	var wg sync.WaitGroup
	for _, tm := range []int64{300, 100, 200} {
		wg.Add(1)
		go func(tm int64) {
			defer wg.Done()
			s.Note(tm)
		}(tm)
	}
	wg.Wait()
	series := s.Series()
	if len(series) != 3 || s.Count() != 3 {
		t.Fatalf("series = %v", series)
	}
	want := []SpreadPoint{{100, 1}, {200, 2}, {300, 3}}
	for i, p := range series {
		if p != want[i] {
			t.Errorf("series[%d] = %+v, want %+v", i, p, want[i])
		}
	}
}
