package transform

import "math"

func float64frombits(w uint64) float64 { return math.Float64frombits(w) }
