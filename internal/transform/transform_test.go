package transform

import (
	"strings"
	"testing"

	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/vm"
)

// buildFig3 builds the paper's running example: c = 2*a + b.
func buildFig3() *ir.Program {
	b := ir.NewBuilder()
	a := b.Global("a", 1)
	bb := b.Global("b", 1)
	c := b.Global("c", 1)
	b.GlobalInit("a", []uint64{19})
	b.GlobalInit("b", []uint64{5})
	f := b.Func("main", 0, 0)
	r1 := f.Load(ir.ImmI(a))
	r2 := f.Load(ir.ImmI(bb))
	r3 := f.Mul(ir.R(r1), ir.ImmI(2))
	r4 := f.Add(ir.R(r2), ir.R(r3))
	f.Store(ir.R(r4), ir.ImmI(c))
	f.Ret()
	return b.MustBuild()
}

func TestInstrumentFig3Shape(t *testing.T) {
	prog := buildFig3()
	inst, err := Instrument(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	text := ir.Disassemble(inst, inst.FuncNamed("main"))
	for _, want := range []string{"fim_inj", "fpm_fetch", "fpm_store", "mul", "add"} {
		if !strings.Contains(text, want) {
			t.Errorf("instrumented code missing %q:\n%s", want, text)
		}
	}
	// The secondary chain must replicate mul and add.
	mulCount := strings.Count(text, "mul")
	if mulCount != 2 {
		t.Errorf("mul appears %d times, want 2 (primary + secondary):\n%s", mulCount, text)
	}
	// Plain store must be gone, replaced by fpm_store.
	if strings.Contains(text, "store ") && !strings.Contains(text, "fpm_store") {
		t.Errorf("plain store survived instrumentation:\n%s", text)
	}
	// Arith sources: mul has one register source (r1), add has two -> 3 sites.
	if n := CountStaticSites(inst); n != 3 {
		t.Errorf("static fim_inj sites = %d, want 3:\n%s", n, text)
	}
}

func TestInstrumentRejectsDoubleInstrumentation(t *testing.T) {
	prog := buildFig3()
	inst, err := Instrument(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Instrument(inst, DefaultOptions()); err == nil {
		t.Error("double instrumentation accepted")
	}
}

// buildMixed exercises calls, recursion, intrinsics, selects, locals and
// loops for differential testing.
func buildMixed() *ir.Program {
	b := ir.NewBuilder()
	data := b.Global("data", 8)
	b.GlobalInitF("data", []float64{3, 1, 4, 1, 5, 9, 2, 6})

	main := b.Func("main", 0, 0)
	i := main.NewReg()
	acc := main.CF(0)
	main.For(i, ir.ImmI(0), ir.ImmI(8), func() {
		x := main.Ld(ir.ImmI(data), ir.R(i))
		s := main.Sqrt(ir.R(x))
		main.Op3(ir.FAdd, acc, ir.R(acc), ir.R(s))
	})
	main.OutputF(ir.R(acc))
	fr := main.NewReg()
	main.Call("fib", []ir.Reg{fr}, ir.ImmI(10))
	main.OutputI(ir.R(fr))
	sel := main.Select(ir.R(main.FCmp(ir.FCmpGT, ir.R(acc), ir.ImmF(10))), ir.ImmI(1), ir.ImmI(2))
	main.OutputI(ir.R(sel))
	// Exercise frame locals through a helper.
	hr := main.NewReg()
	main.Call("sumsq", []ir.Reg{hr}, ir.ImmI(5))
	main.OutputI(ir.R(hr))
	main.Ret()

	fib := b.Func("fib", 1, 1)
	n := fib.Param(0)
	fib.IfElse(ir.R(fib.ICmp(ir.ICmpSLE, ir.R(n), ir.ImmI(1))),
		func() { fib.Ret(ir.R(n)) },
		func() {
			a, c := fib.NewReg(), fib.NewReg()
			fib.Call("fib", []ir.Reg{a}, ir.R(fib.Sub(ir.R(n), ir.ImmI(1))))
			fib.Call("fib", []ir.Reg{c}, ir.R(fib.Sub(ir.R(n), ir.ImmI(2))))
			fib.Ret(ir.R(fib.Add(ir.R(a), ir.R(c))))
		})
	fib.Ret(ir.ImmI(0))

	sumsq := b.Func("sumsq", 1, 1)
	off := sumsq.Local(8)
	base := sumsq.FrameAddr(off)
	j := sumsq.NewReg()
	sumsq.For(j, ir.ImmI(0), ir.R(sumsq.Param(0)), func() {
		sumsq.St(ir.R(sumsq.Mul(ir.R(j), ir.R(j))), ir.R(base), ir.R(j))
	})
	tot := sumsq.CI(0)
	sumsq.For(j, ir.ImmI(0), ir.R(sumsq.Param(0)), func() {
		sumsq.Op3(ir.Add, tot, ir.R(tot), ir.R(sumsq.Ld(ir.R(base), ir.R(j))))
	})
	sumsq.Ret(ir.R(tot))
	return b.MustBuild()
}

func TestInstrumentedMatchesPlainWithoutFaults(t *testing.T) {
	prog := buildMixed()
	inst, err := Instrument(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vPlain := vm.New(prog, vm.Config{})
	if err := vPlain.Run(); err != nil {
		t.Fatalf("plain run: %v", err)
	}
	vInst := vm.New(inst, vm.Config{})
	if err := vInst.Run(); err != nil {
		t.Fatalf("instrumented run: %v", err)
	}
	po, io_ := vPlain.Outputs(), vInst.Outputs()
	if len(po) != len(io_) {
		t.Fatalf("output lengths differ: %d vs %d", len(po), len(io_))
	}
	for i := range po {
		if po[i] != io_[i] {
			t.Errorf("output %d: plain %v, instrumented %v", i, po[i], io_[i])
		}
	}
	// Application cycle accounting excludes instrumentation, so both runs
	// must report identical cycles.
	if vPlain.Cycles() != vInst.Cycles() {
		t.Errorf("cycles: plain %d, instrumented %d", vPlain.Cycles(), vInst.Cycles())
	}
	// Without faults the contamination table must stay empty forever.
	if vInst.Table().Ever() {
		t.Error("fault-free instrumented run contaminated memory")
	}
	if vInst.Sites() == 0 {
		t.Error("no dynamic injection sites counted")
	}
}

func TestSiteCountDeterministic(t *testing.T) {
	inst, err := Instrument(buildMixed(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]uint64, 2)
	for i := range counts {
		v := vm.New(inst, vm.Config{})
		if err := v.Run(); err != nil {
			t.Fatal(err)
		}
		counts[i] = v.Sites()
	}
	if counts[0] != counts[1] {
		t.Errorf("site counts differ across identical runs: %v", counts)
	}
}

// runTable1Case runs a one-operation program with a bit-1 flip on the
// loaded value of a, and reports whether the destination was contaminated.
// This reproduces the paper's Table 1 (a=19, flip second least significant
// bit: a'=17).
func runTable1Case(t *testing.T, emit func(f *ir.FuncBuilder, aReg ir.Reg) ir.Reg) (contaminated bool, primVal, pristVal uint64) {
	t.Helper()
	b := ir.NewBuilder()
	aAddr := b.Global("a", 1)
	bAddr := b.Global("b", 1)
	b.GlobalInit("a", []uint64{19})
	b.GlobalInit("b", []uint64{5})
	f := b.Func("main", 0, 0)
	aReg := f.Load(ir.ImmI(aAddr))
	res := emit(f, aReg)
	f.Store(ir.R(res), ir.ImmI(bAddr))
	f.Ret()
	prog := b.MustBuild()
	inst, err := Instrument(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Site 0 is the first fim_inj: the arith op's use of aReg.
	inj := inject.NewRankInjector(inject.Plan{Faults: []inject.Fault{{Rank: 0, Site: 0, Bit: 1}}}, 0)
	v := vm.New(inst, vm.Config{Injector: inj})
	if err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(inj.Applied()) != 1 {
		t.Fatalf("fault not applied: %+v", inj.Applied())
	}
	w, _ := v.Mem().Read(int64(bAddr))
	pv, ok := v.Table().Pristine(int64(bAddr))
	if !ok {
		pv = w
	}
	return ok, w, pv
}

func TestTable1PropagationCases(t *testing.T) {
	// Row 1: b = a + 5 -> 24 pristine, 22 faulty: contaminates.
	cont, prim, prist := runTable1Case(t, func(f *ir.FuncBuilder, a ir.Reg) ir.Reg {
		return f.Add(ir.R(a), ir.ImmI(5))
	})
	if !cont || prim != 22 || prist != 24 {
		t.Errorf("row 1: cont=%v prim=%d prist=%d, want true 22 24", cont, prim, prist)
	}
	// Row 2: b = 13 (constant overwrite): no contamination. The flip on a
	// is consumed by an unrelated add whose result is discarded.
	cont, prim, _ = runTable1Case(t, func(f *ir.FuncBuilder, a ir.Reg) ir.Reg {
		f.Add(ir.R(a), ir.ImmI(5)) // consumes the fault, result unused
		return f.CI(13)
	})
	if cont || prim != 13 {
		t.Errorf("row 2: cont=%v prim=%d, want false 13", cont, prim)
	}
	// Row 3: b = a >> 1 -> 9 pristine, 8 faulty: contaminates.
	cont, prim, prist = runTable1Case(t, func(f *ir.FuncBuilder, a ir.Reg) ir.Reg {
		return f.AShr(ir.R(a), ir.ImmI(1))
	})
	if !cont || prim != 8 || prist != 9 {
		t.Errorf("row 3: cont=%v prim=%d prist=%d, want true 8 9", cont, prim, prist)
	}
	// Row 4: b = a >> 2 -> 4 both ways: masked, no contamination.
	cont, prim, _ = runTable1Case(t, func(f *ir.FuncBuilder, a ir.Reg) ir.Reg {
		return f.AShr(ir.R(a), ir.ImmI(2))
	})
	if cont || prim != 4 {
		t.Errorf("row 4: cont=%v prim=%d, want false 4", cont, prim)
	}
}

func TestCleansingStore(t *testing.T) {
	// A contaminated location overwritten with a clean value is cleansed
	// (paper Table 1 row 2 applied to an already-contaminated b).
	b := ir.NewBuilder()
	aAddr := b.Global("a", 1)
	bAddr := b.Global("b", 1)
	b.GlobalInit("a", []uint64{19})
	f := b.Func("main", 0, 0)
	a := f.Load(ir.ImmI(aAddr))
	sum := f.Add(ir.R(a), ir.ImmI(5))
	f.Store(ir.R(sum), ir.ImmI(bAddr)) // contaminates b
	f.Store(ir.ImmI(13), ir.ImmI(bAddr))
	f.Ret()
	inst, err := Instrument(b.MustBuild(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	inj := inject.NewRankInjector(inject.Plan{Faults: []inject.Fault{{Site: 0, Bit: 1}}}, 0)
	v := vm.New(inst, vm.Config{Injector: inj})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Table().Len() != 0 {
		t.Errorf("table has %d entries after cleansing store", v.Table().Len())
	}
	if !v.Table().Ever() {
		t.Error("Ever() must be true: b was contaminated before the cleanse")
	}
	if v.Table().Peak() != 1 {
		t.Errorf("peak = %d, want 1", v.Table().Peak())
	}
}

func TestStoreAddressCorruptionDuplicateEffect(t *testing.T) {
	// Paper §3.2 "Store addresses": a corrupted address register makes the
	// store hit the wrong location; both the wrongly-written word and the
	// word that should have been written become contaminated.
	b := ir.NewBuilder()
	arr := b.Global("arr", 16)
	f := b.Func("main", 0, 0)
	// addr = arr + 2, computed arithmetically so the ClassArith site is
	// the address computation.
	addr := f.Add(ir.ImmI(arr), ir.ImmI(2))
	f.Store(ir.ImmI(77), ir.R(addr))
	f.Ret()
	inst, err := Instrument(b.MustBuild(), Options{InjectClasses: ir.ClassArith | ir.ClassMem})
	if err != nil {
		t.Fatal(err)
	}
	// Sites: add has no register sources (both imm), so the first site is
	// the store's address register. Flip bit 0: arr+2 becomes arr+3.
	inj := inject.NewRankInjector(inject.Plan{Faults: []inject.Fault{{Site: 0, Bit: 0}}}, 0)
	v := vm.New(inst, vm.Config{Injector: inj})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if len(inj.Applied()) != 1 {
		t.Fatalf("fault not applied; sites=%d", v.Sites())
	}
	target := int64(arr) + 2 // should have been written with 77
	wrong := target ^ 1      // actually written
	if got, _ := v.Mem().Read(wrong); got != 77 {
		t.Errorf("wrong location holds %d, want 77", got)
	}
	if got, _ := v.Mem().Read(target); got != 0 {
		t.Errorf("target location holds %d, want 0 (never written)", got)
	}
	if p, ok := v.Table().Pristine(wrong); !ok || p != 0 {
		t.Errorf("wrong location pristine = %d,%v, want 0,true", p, ok)
	}
	if p, ok := v.Table().Pristine(target); !ok || p != 77 {
		t.Errorf("target location pristine = %d,%v, want 77,true", p, ok)
	}
	if v.Table().Len() != 2 {
		t.Errorf("table len = %d, want 2 (duplicate effect)", v.Table().Len())
	}
}

func TestPureIntrinsicDualExecution(t *testing.T) {
	// sqrt of a corrupted value must yield a corrupted store, with the
	// pristine chain computing sqrt of the pristine input (library calls
	// executed twice, paper §3.2).
	b := ir.NewBuilder()
	xAddr := b.Global("x", 1)
	yAddr := b.Global("y", 1)
	b.GlobalInitF("x", []float64{16})
	f := b.Func("main", 0, 0)
	x := f.Load(ir.ImmI(xAddr))
	doubled := f.FMul(ir.R(x), ir.ImmF(1)) // arith site to inject into
	s := f.Sqrt(ir.R(doubled))
	f.Store(ir.R(s), ir.ImmI(yAddr))
	f.Ret()
	inst, err := Instrument(b.MustBuild(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Flip the exponent region of 16.0 to change its value.
	inj := inject.NewRankInjector(inject.Plan{Faults: []inject.Fault{{Site: 0, Bit: 54}}}, 0)
	v := vm.New(inst, vm.Config{Injector: inj})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	p, ok := v.Table().Pristine(int64(yAddr))
	if !ok {
		t.Fatal("y not contaminated")
	}
	if got := f64bits(p); got != 4 {
		t.Errorf("pristine sqrt = %v, want 4", got)
	}
}

func f64bits(w uint64) float64 {
	return float64frombits(w)
}

func TestMultiFaultInjection(t *testing.T) {
	// LLFI++ extension: several faults in one run all apply.
	b := ir.NewBuilder()
	out := b.Global("out", 4)
	f := b.Func("main", 0, 0)
	one := f.CI(1)
	for k := 0; k < 4; k++ {
		val := f.Add(ir.R(one), ir.ImmI(int64(10*k)))
		f.St(ir.R(val), ir.ImmI(out), ir.ImmI(int64(k)))
	}
	f.Ret()
	inst, err := Instrument(b.MustBuild(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plan := inject.Plan{Faults: []inject.Fault{
		{Site: 0, Bit: 3},
		{Site: 2, Bit: 4},
	}}
	inj := inject.NewRankInjector(plan, 0)
	v := vm.New(inst, vm.Config{Injector: inj})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if len(inj.Applied()) != 2 {
		t.Fatalf("applied %d faults, want 2", len(inj.Applied()))
	}
	if v.Table().Len() != 2 {
		t.Errorf("table len = %d, want 2", v.Table().Len())
	}
}

func TestInjectionClassSelection(t *testing.T) {
	prog := buildFig3()
	arithOnly, err := Instrument(prog, Options{InjectClasses: ir.ClassArith})
	if err != nil {
		t.Fatal(err)
	}
	withMem, err := Instrument(prog, Options{InjectClasses: ir.ClassArith | ir.ClassMem})
	if err != nil {
		t.Fatal(err)
	}
	a := CountStaticSites(arithOnly)
	m := CountStaticSites(withMem)
	if m <= a {
		t.Errorf("mem sites (%d) must exceed arith-only sites (%d)", m, a)
	}
}

// TestFunctionCallDualChain exercises the paper's §3.2 "Function Calls"
// rule on a user function that both returns a value and writes a global:
// the callee's shadow parameters must carry pristine values so the global
// side effect is tracked exactly.
func TestFunctionCallDualChain(t *testing.T) {
	b := ir.NewBuilder()
	inAddr := b.Global("in", 1)
	outAddr := b.Global("out", 1)
	sideAddr := b.Global("side", 1)
	b.GlobalInit("in", []uint64{8})

	main := b.Func("main", 0, 0)
	v := main.Load(ir.ImmI(inAddr))
	doubled := main.Mul(ir.R(v), ir.ImmI(1)) // injection site
	r := main.NewReg()
	main.Call("work", []ir.Reg{r}, ir.R(doubled))
	main.Store(ir.R(r), ir.ImmI(outAddr))
	main.Ret()

	work := b.Func("work", 1, 1)
	p := work.Param(0)
	// Side effect: write p+1 to a global the caller never touches.
	work.Store(ir.R(work.Add(ir.R(p), ir.ImmI(1))), ir.ImmI(sideAddr))
	work.Ret(ir.R(work.Mul(ir.R(p), ir.ImmI(3))))

	inst, err := Instrument(b.MustBuild(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The instrumented callee must have doubled params and rets.
	wf := inst.FuncNamed("work")
	if wf.NumParams != 2 || wf.NumRets != 2 {
		t.Fatalf("instrumented work has params=%d rets=%d, want 2 and 2",
			wf.NumParams, wf.NumRets)
	}
	// Inject: flip bit 1 of the mul's source (8 -> 10).
	inj := inject.NewRankInjector(inject.Plan{Faults: []inject.Fault{{Site: 0, Bit: 1}}}, 0)
	v2 := vm.New(inst, vm.Config{Injector: inj})
	if err := v2.Run(); err != nil {
		t.Fatal(err)
	}
	// out = 3*p: corrupted 30, pristine 24.
	pv, ok := v2.Table().Pristine(int64(outAddr))
	if !ok || pv != 24 {
		t.Errorf("out pristine = %d %v, want 24", pv, ok)
	}
	if w, _ := v2.Mem().Read(int64(outAddr)); w != 30 {
		t.Errorf("out = %d, want 30", w)
	}
	// side = p+1: corrupted 11, pristine 9 — tracked inside the callee.
	pv, ok = v2.Table().Pristine(int64(sideAddr))
	if !ok || pv != 9 {
		t.Errorf("side pristine = %d %v, want 9", pv, ok)
	}
	if w, _ := v2.Mem().Read(int64(sideAddr)); w != 11 {
		t.Errorf("side = %d, want 11", w)
	}
}

// TestControlFlowDivergenceTracked: a fault that flips a branch takes the
// primary chain down a different path; stores on that path must still be
// tracked against pristine values (the secondary chain replays the taken
// path with pristine operands).
func TestControlFlowDivergenceTracked(t *testing.T) {
	b := ir.NewBuilder()
	inAddr := b.Global("in", 1)
	outAddr := b.Global("out", 1)
	b.GlobalInit("in", []uint64{4})
	f := b.Func("main", 0, 0)
	v := f.Load(ir.ImmI(inAddr))
	biased := f.Add(ir.R(v), ir.ImmI(0)) // injection site
	big := f.ICmp(ir.ICmpSGT, ir.R(biased), ir.ImmI(100))
	f.IfElse(ir.R(big),
		func() { f.Store(ir.ImmI(777), ir.ImmI(outAddr)) },
		func() { f.Store(ir.ImmI(1), ir.ImmI(outAddr)) },
	)
	f.Ret()
	inst, err := Instrument(b.MustBuild(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Flip a high bit so biased > 100 and the branch diverges.
	inj := inject.NewRankInjector(inject.Plan{Faults: []inject.Fault{{Site: 0, Bit: 20}}}, 0)
	v2 := vm.New(inst, vm.Config{Injector: inj})
	if err := v2.Run(); err != nil {
		t.Fatal(err)
	}
	w, _ := v2.Mem().Read(int64(outAddr))
	if w != 777 {
		t.Fatalf("branch did not diverge: out = %d", w)
	}
	// The store of 777 is a constant store on both chains of the taken
	// path, so the tracker reports the location as clean even though the
	// path diverged — the documented one-path limitation shared with the
	// paper's source-level replication. What must never happen is a
	// phantom entry whose pristine value equals memory.
	if pv, ok := v2.Table().Pristine(int64(outAddr)); ok && pv == w {
		t.Errorf("non-minimal table entry: %d", pv)
	}
}
