package transform

import (
	"testing"

	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/vm"
	"repro/internal/xrand"
)

// The framework's central correctness property (what makes the tracker
// "exact" rather than an overestimate): at any store boundary, overlaying
// the contamination table's pristine values onto the corrupted memory
// reconstructs the fault-free memory image. For straight-line programs
// (where a fault cannot divert control flow) the property holds exactly at
// program end, whatever fault is injected.
//
// randomProgram generates straight-line programs over a global array:
// loads, integer/float arithmetic on a small register pool, and stores back
// through immediate addresses (no corrupted pointers, no branches, no
// divisions — nothing that can trap or diverge).
func randomProgram(r *xrand.Rand, words int64, steps int) *ir.Program {
	b := ir.NewBuilder()
	g := b.Global("data", words)
	init := make([]uint64, words)
	for i := range init {
		init[i] = r.Uint64()
	}
	b.GlobalInit("data", init)
	f := b.Func("main", 0, 0)
	pool := make([]ir.Reg, 6)
	for i := range pool {
		pool[i] = f.CI(int64(r.Uint64n(100)))
	}
	pick := func() ir.Reg { return pool[r.Intn(len(pool))] }
	for s := 0; s < steps; s++ {
		switch r.Intn(6) {
		case 0: // load
			addr := g + int64(r.Uint64n(uint64(words)))
			pool[r.Intn(len(pool))] = f.Load(ir.ImmI(addr))
		case 1: // store a register
			addr := g + int64(r.Uint64n(uint64(words)))
			f.Store(ir.R(pick()), ir.ImmI(addr))
		case 2: // store a constant (cleansing candidate)
			addr := g + int64(r.Uint64n(uint64(words)))
			f.Store(ir.ImmI(int64(r.Uint64n(1000))), ir.ImmI(addr))
		case 3: // integer arithmetic
			ops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.Xor, ir.And, ir.Or, ir.Shl, ir.AShr}
			op := ops[r.Intn(len(ops))]
			pool[r.Intn(len(pool))] = f.Bin(op, ir.R(pick()), ir.R(pick()))
		case 4: // float arithmetic
			ops := []ir.Op{ir.FAdd, ir.FSub, ir.FMul}
			op := ops[r.Intn(len(ops))]
			pool[r.Intn(len(pool))] = f.Bin(op, ir.R(pick()), ir.R(pick()))
		case 5: // conversion round trip keeps values interesting
			pool[r.Intn(len(pool))] = f.SIToFP(ir.R(pick()))
		}
	}
	f.Ret()
	return b.MustBuild()
}

func TestRandomStraightLineReconstruction(t *testing.T) {
	const words = 24
	master := xrand.New(20150101)
	for trial := 0; trial < 60; trial++ {
		r := master.Split()
		prog := randomProgram(r, words, 80)
		inst, err := Instrument(prog, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		// Fault-free image.
		vp := vm.New(prog, vm.Config{})
		if err := vp.Run(); err != nil {
			t.Fatalf("trial %d: plain run: %v", trial, err)
		}
		pristine := make([]uint64, words)
		for i := int64(0); i < words; i++ {
			w, _ := vp.Mem().Read(1 + i)
			pristine[i] = w
		}
		// Count sites, then inject at a random one.
		vProfile := vm.New(inst, vm.Config{})
		if err := vProfile.Run(); err != nil {
			t.Fatalf("trial %d: profile run: %v", trial, err)
		}
		sites := vProfile.Sites()
		if sites == 0 {
			continue // no arithmetic reached; nothing to inject
		}
		plan := inject.Plan{Faults: []inject.Fault{{
			Site: r.Uint64n(sites),
			Bit:  uint(r.Intn(64)),
		}}}
		inj := inject.NewRankInjector(plan, 0)
		vi := vm.New(inst, vm.Config{Injector: inj})
		if err := vi.Run(); err != nil {
			t.Fatalf("trial %d: injected run: %v", trial, err)
		}
		// Reconstruction property.
		for i := int64(0); i < words; i++ {
			addr := 1 + i
			w, _ := vi.Mem().Read(addr)
			got := vi.Table().PristineOr(addr, w)
			if got != pristine[i] {
				t.Errorf("trial %d (%v): word %d: reconstruction %#x, pristine %#x, mem %#x",
					trial, plan.Faults[0], i, got, pristine[i], w)
			}
			// Table minimality: entries exist only where memory differs.
			if pv, ok := vi.Table().Pristine(addr); ok && pv == w {
				t.Errorf("trial %d: word %d: table entry equals memory (not minimal)", trial, i)
			}
		}
	}
}

// TestReconstructionWithMultipleFaults extends the property to LLFI++
// multi-fault plans.
func TestRandomStraightLineReconstructionMultiFault(t *testing.T) {
	const words = 16
	master := xrand.New(77)
	for trial := 0; trial < 30; trial++ {
		r := master.Split()
		prog := randomProgram(r, words, 60)
		inst, err := Instrument(prog, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		vp := vm.New(prog, vm.Config{})
		if err := vp.Run(); err != nil {
			t.Fatal(err)
		}
		pristine := make([]uint64, words)
		for i := int64(0); i < words; i++ {
			pristine[i], _ = vp.Mem().Read(1 + i)
		}
		vProfile := vm.New(inst, vm.Config{})
		if err := vProfile.Run(); err != nil {
			t.Fatal(err)
		}
		if vProfile.Sites() == 0 {
			continue
		}
		plan := inject.MultiFaultPlan(r, []uint64{vProfile.Sites()}, 2)
		inj := inject.NewRankInjector(plan, 0)
		vi := vm.New(inst, vm.Config{Injector: inj})
		if err := vi.Run(); err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < words; i++ {
			addr := 1 + i
			w, _ := vi.Mem().Read(addr)
			if got := vi.Table().PristineOr(addr, w); got != pristine[i] {
				t.Errorf("trial %d (%d faults): word %d: got %#x, want %#x",
					trial, len(plan.Faults), i, got, pristine[i])
			}
		}
	}
}
