// Package transform implements the FPM compiler pass of the paper (§3.2,
// Fig. 3). It rewrites a plain IR program into the dual-chain instrumented
// form:
//
//   - every virtual register r gains a shadow register holding the pristine
//     value the fault-free execution would have produced;
//   - every value-producing instruction is replicated: the primary copy
//     computes with potentially-corrupted operands, the secondary copy
//     (FlagSecondary) recomputes with pristine operands;
//   - register source operands of injectable instructions (arithmetic and
//     load/store by default) are routed through fim_inj, the LLFI++
//     injection point;
//   - loads gain an fpm_fetch that obtains the pristine value of the loaded
//     location from the contamination table;
//   - stores become fpm_store, which writes the primary value and compares
//     it against the pristine value to update the contamination table,
//     handling corrupted store addresses (the "duplicate effect");
//   - function signatures are doubled (primary and shadow for every
//     parameter and result), the paper's "extra parameter for each input
//     parameter" and two-field return struct;
//   - pure library calls (math intrinsics) are executed twice, once per
//     chain; impure intrinsics execute once on the primary chain and copy
//     their results to the shadow registers.
//
// Register mapping: original register r maps to primary register 2r and
// shadow register 2r+1, so interleaved argument and result lists line up
// with the doubled parameter counts without any per-function remapping
// table.
package transform

import (
	"fmt"

	"repro/internal/ir"
)

// Options configures the pass.
type Options struct {
	// InjectClasses selects which original instruction classes receive
	// fim_inj sites on their register source operands. The paper injects
	// into arithmetic and load/store instructions (§2); its experiments
	// use the arithmetic class (§4.2).
	InjectClasses ir.Class

	// Protect lists static fim_inj site ordinals (the value Instrument
	// stamps into each fim_inj's Target, also the index into the SiteInfo
	// table) whose injected operand is restored from its source register
	// immediately after the injection point. A flip at a protected site is
	// corrected before its consumer reads it, at the cost of one extra
	// application cycle per dynamic execution of the site — the
	// selective-protection scenario of "Not All Errors Are Equal".
	// Protection never changes the number or order of fim_inj sites, so
	// injection plans drawn from a given seed target the same sites in the
	// protected and unprotected programs.
	Protect []int
}

// DefaultOptions matches the paper's experimental setup: injection sites on
// arithmetic instructions only.
func DefaultOptions() Options {
	return Options{InjectClasses: ir.ClassArith}
}

// prim maps an original register to its primary instrumented register.
func prim(r ir.Reg) ir.Reg { return 2 * r }

// shad maps an original register to its shadow (pristine) register.
func shad(r ir.Reg) ir.Reg { return 2*r + 1 }

func primOp(o ir.Operand) ir.Operand {
	if o.IsReg() {
		return ir.R(prim(o.Reg))
	}
	return o
}

func shadOp(o ir.Operand) ir.Operand {
	if o.IsReg() {
		return ir.R(shad(o.Reg))
	}
	return o
}

// SiteInfo describes one static fim_inj site, indexed by the global
// ordinal Instrument stamps into the fim_inj's Target field. The table is a
// pure function of (program, InjectClasses) — Protect inserts correction
// moves but never adds, removes, or reorders sites — so baseline and
// protected campaigns agree on every ordinal.
type SiteInfo struct {
	// Func is the name of the containing function.
	Func string
	// Index is the site's ordinal within the function.
	Index int
	// Class is the injection class of the consuming instruction, recorded
	// at rewrite time (runtime scanning would misattribute protected sites
	// to their correction move).
	Class ir.Class
}

// Instrument applies the FPM pass to prog and returns the instrumented
// program. The input program is not modified.
func Instrument(prog *ir.Program, opts Options) (*ir.Program, error) {
	p, _, err := InstrumentSites(prog, opts)
	return p, err
}

// InstrumentSites is Instrument, additionally returning the static site
// table indexed by the global fim_inj ordinal.
func InstrumentSites(prog *ir.Program, opts Options) (*ir.Program, []SiteInfo, error) {
	out := &ir.Program{
		ByName:      make(map[string]int, len(prog.ByName)),
		Globals:     append([]ir.Global(nil), prog.Globals...),
		GlobalWords: prog.GlobalWords,
		Entry:       prog.Entry,
	}
	for name, idx := range prog.ByName {
		out.ByName[name] = idx
	}
	protect := make(map[int]bool, len(opts.Protect))
	for _, s := range opts.Protect {
		protect[s] = true
	}
	var sites []SiteInfo
	for _, f := range prog.Funcs {
		nf, err := instrumentFunc(f, opts, &sites, protect)
		if err != nil {
			return nil, nil, fmt.Errorf("transform: func %q: %w", f.Name, err)
		}
		out.Funcs = append(out.Funcs, nf)
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("transform: instrumented program invalid: %w", err)
	}
	return out, sites, nil
}

// MustInstrument is Instrument with the default options, panicking on
// error; for statically known-good app programs.
func MustInstrument(prog *ir.Program) *ir.Program {
	p, err := Instrument(prog, DefaultOptions())
	if err != nil {
		panic(err)
	}
	return p
}

type funcRewriter struct {
	opts    Options
	in      *ir.Func
	out     *ir.Func
	nextTmp ir.Reg
	// pcMap maps original pc -> first instrumented pc of that
	// instruction, for branch target fixup.
	pcMap []int
	// branchFix lists instrumented pcs whose Target is an original pc.
	branchFix []int
	// sites is the program-wide static site table; len(*sites) is the next
	// global ordinal. funcBase is its length when this function started.
	sites    *[]SiteInfo
	funcBase int
	protect  map[int]bool
}

func instrumentFunc(f *ir.Func, opts Options, sites *[]SiteInfo, protect map[int]bool) (*ir.Func, error) {
	rw := &funcRewriter{
		opts: opts,
		in:   f,
		out: &ir.Func{
			Name:       f.Name,
			NumParams:  2 * f.NumParams,
			NumRets:    2 * f.NumRets,
			Frame:      f.Frame,
			PairedRegs: 2 * f.NumRegs,
		},
		nextTmp:  ir.Reg(2 * f.NumRegs),
		pcMap:    make([]int, len(f.Code)),
		sites:    sites,
		funcBase: len(*sites),
		protect:  protect,
	}
	for pc := range f.Code {
		rw.pcMap[pc] = len(rw.out.Code)
		if err := rw.rewrite(&f.Code[pc]); err != nil {
			return nil, fmt.Errorf("pc %d: %w", pc, err)
		}
	}
	for _, pc := range rw.branchFix {
		orig := rw.out.Code[pc].Target
		if int(orig) >= len(rw.pcMap) {
			return nil, fmt.Errorf("branch target %d out of range", orig)
		}
		rw.out.Code[pc].Target = int32(rw.pcMap[orig])
	}
	rw.out.NumRegs = int(rw.nextTmp)
	return rw.out, nil
}

func (rw *funcRewriter) emit(in ir.Instr) int {
	rw.out.Code = append(rw.out.Code, in)
	return len(rw.out.Code) - 1
}

func (rw *funcRewriter) tmp() ir.Reg {
	t := rw.nextTmp
	rw.nextTmp++
	return t
}

// inj routes a primary operand through fim_inj when the enclosing
// instruction class is injectable and the operand is a register. It returns
// the operand the primary instruction should use. Each emitted fim_inj
// carries its global static ordinal in Target (unused by execution, read by
// profiling observers) and appends its SiteInfo to the pass-wide table.
func (rw *funcRewriter) inj(class ir.Class, o ir.Operand) ir.Operand {
	if !o.IsReg() || rw.opts.InjectClasses&class == 0 {
		return primOp(o)
	}
	ord := len(*rw.sites)
	*rw.sites = append(*rw.sites, SiteInfo{
		Func:  rw.in.Name,
		Index: ord - rw.funcBase,
		Class: class,
	})
	t := rw.tmp()
	rw.emit(ir.Instr{Op: ir.FimInj, Dst: t, A: primOp(o), Target: int32(ord)})
	if rw.protect[ord] {
		// Selective protection: rewrite the temporary from its (shadow-free)
		// source before the consumer reads it, correcting any flip here.
		rw.emit(ir.Instr{Op: ir.Mov, Dst: t, A: primOp(o)})
	}
	return ir.R(t)
}

func (rw *funcRewriter) rewrite(in *ir.Instr) error {
	class := ir.ClassOf(in.Op)
	switch in.Op {
	case ir.Nop:
		rw.emit(ir.Instr{Op: ir.Nop})

	case ir.ConstI, ir.ConstF, ir.Mov, ir.FrameAddr:
		rw.emit(ir.Instr{Op: in.Op, Dst: prim(in.Dst), A: primOp(in.A)})
		rw.emit(ir.Instr{Op: in.Op, Dst: shad(in.Dst), A: shadOp(in.A), Flags: ir.FlagSecondary})

	case ir.Add, ir.Sub, ir.Mul, ir.SDiv, ir.SRem, ir.Shl, ir.LShr, ir.AShr,
		ir.And, ir.Or, ir.Xor, ir.FAdd, ir.FSub, ir.FMul, ir.FDiv,
		ir.ICmpEQ, ir.ICmpNE, ir.ICmpSLT, ir.ICmpSLE, ir.ICmpSGT, ir.ICmpSGE,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE:
		a := rw.inj(class, in.A)
		b := rw.inj(class, in.B)
		rw.emit(ir.Instr{Op: in.Op, Dst: prim(in.Dst), A: a, B: b, Flags: ir.FlagInjectable})
		rw.emit(ir.Instr{Op: in.Op, Dst: shad(in.Dst), A: shadOp(in.A), B: shadOp(in.B), Flags: ir.FlagSecondary})

	case ir.SIToFP, ir.FPToSI:
		a := rw.inj(class, in.A)
		rw.emit(ir.Instr{Op: in.Op, Dst: prim(in.Dst), A: a, Flags: ir.FlagInjectable})
		rw.emit(ir.Instr{Op: in.Op, Dst: shad(in.Dst), A: shadOp(in.A), Flags: ir.FlagSecondary})

	case ir.Select:
		c := rw.inj(class, in.A)
		a := rw.inj(class, in.B)
		b := rw.inj(class, in.C)
		rw.emit(ir.Instr{Op: ir.Select, Dst: prim(in.Dst), A: c, B: a, C: b, Flags: ir.FlagInjectable})
		rw.emit(ir.Instr{Op: ir.Select, Dst: shad(in.Dst), A: shadOp(in.A), B: shadOp(in.B), C: shadOp(in.C), Flags: ir.FlagSecondary})

	case ir.Load:
		a := rw.inj(class, in.A)
		rw.emit(ir.Instr{Op: ir.Load, Dst: prim(in.Dst), A: a, Flags: ir.FlagInjectable})
		rw.emit(ir.Instr{Op: ir.FpmFetch, Dst: shad(in.Dst), A: shadOp(in.A), Flags: ir.FlagSecondary})

	case ir.Store:
		v := rw.inj(class, in.A)
		a := rw.inj(class, in.B)
		rw.emit(ir.Instr{
			Op: ir.FpmStore,
			A:  v, B: shadOp(in.A),
			C: a, D: shadOp(in.B),
			Flags: ir.FlagInjectable,
		})

	case ir.Jmp:
		pc := rw.emit(ir.Instr{Op: ir.Jmp, Target: in.Target})
		rw.branchFix = append(rw.branchFix, pc)
	case ir.Bnz, ir.Bz:
		pc := rw.emit(ir.Instr{Op: in.Op, A: primOp(in.A), Target: in.Target})
		rw.branchFix = append(rw.branchFix, pc)

	case ir.Call:
		args := make([]ir.Operand, 0, 2*len(in.Args))
		for _, a := range in.Args {
			args = append(args, primOp(a), shadOp(a))
		}
		rets := make([]ir.Reg, 0, 2*len(in.Rets))
		for _, r := range in.Rets {
			rets = append(rets, prim(r), shad(r))
		}
		rw.emit(ir.Instr{Op: ir.Call, Target: in.Target, Args: args, Rets: rets})

	case ir.Ret:
		args := make([]ir.Operand, 0, 2*len(in.Args))
		for _, a := range in.Args {
			args = append(args, primOp(a), shadOp(a))
		}
		rw.emit(ir.Instr{Op: ir.Ret, Args: args})

	case ir.Intrin:
		rw.rewriteIntrin(in)

	case ir.FimInj, ir.FpmFetch, ir.FpmStore:
		return fmt.Errorf("program already instrumented (%v)", in.Op)

	default:
		return fmt.Errorf("unhandled opcode %v", in.Op)
	}
	return nil
}

// rewriteIntrin handles the paper's function-call rules: pure library
// functions are executed twice (once per chain); impure functions execute
// once on the primary chain and their results' shadows are copies, since
// replicating side effects would corrupt the simulation (I/O, allocation)
// or is handled by the runtime itself (MPI piggyback).
func (rw *funcRewriter) rewriteIntrin(in *ir.Instr) {
	id := ir.IntrinID(in.Target)
	primArgs := make([]ir.Operand, len(in.Args))
	for i, a := range in.Args {
		primArgs[i] = primOp(a)
	}
	primRets := make([]ir.Reg, len(in.Rets))
	for i, r := range in.Rets {
		primRets[i] = prim(r)
	}
	rw.emit(ir.Instr{Op: ir.Intrin, Target: in.Target, Args: primArgs, Rets: primRets})
	if ir.IntrinPure(id) {
		shadArgs := make([]ir.Operand, len(in.Args))
		for i, a := range in.Args {
			shadArgs[i] = shadOp(a)
		}
		shadRets := make([]ir.Reg, len(in.Rets))
		for i, r := range in.Rets {
			shadRets[i] = shad(r)
		}
		rw.emit(ir.Instr{Op: ir.Intrin, Target: in.Target, Args: shadArgs, Rets: shadRets, Flags: ir.FlagSecondary})
		return
	}
	for _, r := range in.Rets {
		rw.emit(ir.Instr{Op: ir.Mov, Dst: shad(r), A: ir.R(prim(r)), Flags: ir.FlagSecondary})
	}
}

// CountStaticSites returns the number of static fim_inj sites in an
// instrumented program, a sanity metric for coverage reporting.
func CountStaticSites(prog *ir.Program) int {
	n := 0
	for _, f := range prog.Funcs {
		for i := range f.Code {
			if f.Code[i].Op == ir.FimInj {
				n++
			}
		}
	}
	return n
}
