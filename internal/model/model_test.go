package model

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func mkSeries(slopePerSec float64, startCycles, stepCycles int64, n int) []trace.Point {
	pts := make([]trace.Point, n)
	for i := range pts {
		c := startCycles + int64(i)*stepCycles
		pts[i] = trace.Point{Cycles: c, CML: int(slopePerSec * CyclesToSeconds(c))}
	}
	return pts
}

func TestFitRunLinear(t *testing.T) {
	// 2000 CML per second of virtual time.
	pts := mkSeries(2000e6, 1e6, 1e6, 50)
	fit, err := FitRun(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.A-2000e6)/2000e6 > 0.01 {
		t.Errorf("slope = %v, want ~2e9", fit.A)
	}
	if fit.ValidationErr > 0.05 {
		t.Errorf("validation error = %v", fit.ValidationErr)
	}
}

func TestFitRunPlateau(t *testing.T) {
	var pts []trace.Point
	// Ramp to 100 then flat.
	for i := 0; i < 20; i++ {
		pts = append(pts, trace.Point{Cycles: int64(i) * 1e6, CML: 5 * i})
	}
	for i := 20; i < 40; i++ {
		pts = append(pts, trace.Point{Cycles: int64(i) * 1e6, CML: 95})
	}
	fit, err := FitRun(pts)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Plateau < 90 || fit.Plateau > 100 {
		t.Errorf("plateau = %v, want ~95", fit.Plateau)
	}
	if fit.A <= 0 {
		t.Errorf("ramp slope = %v, want positive", fit.A)
	}
}

func TestFitRunTooFew(t *testing.T) {
	if _, err := FitRun([]trace.Point{{Cycles: 1, CML: 1}}); err == nil {
		t.Error("accepted too few points")
	}
}

func TestFaultTimeIntercept(t *testing.T) {
	if b := FaultTimeIntercept(10, 3); b != -30 {
		t.Errorf("b = %v, want -30 (Eq. 2)", b)
	}
}

func TestBuildAppModel(t *testing.T) {
	fits := []RunFit{
		{A: 100, R2: 0.99, ValidationErr: 0.001},
		{A: 120, R2: 0.98, ValidationErr: 0.002},
		{A: 80, R2: 0.97, ValidationErr: 0.003},
		{A: -5}, // non-propagating: excluded
		{A: 0},  // excluded
	}
	m := BuildAppModel("app", fits)
	if m.FPS != 100 {
		t.Errorf("FPS = %v, want 100", m.FPS)
	}
	if m.StdDev != 20 {
		t.Errorf("stddev = %v, want 20", m.StdDev)
	}
	if len(m.Fits) != 3 {
		t.Errorf("kept %d fits, want 3", len(m.Fits))
	}
}

func TestBuildAppModelEmpty(t *testing.T) {
	m := BuildAppModel("app", nil)
	if m.FPS != 0 || len(m.Fits) != 0 {
		t.Errorf("empty model = %+v", m)
	}
}

func TestIntervalEstimators(t *testing.T) {
	m := AppModel{FPS: 50}
	if got := m.MaxCML(2, 6); got != 200 {
		t.Errorf("MaxCML = %v, want 200 (Eq. 3)", got)
	}
	if got := m.AvgCML(2, 6); got != 100 {
		t.Errorf("AvgCML = %v, want 100", got)
	}
	// Swapped interval bounds normalize.
	if got := m.MaxCML(6, 2); got != 200 {
		t.Errorf("MaxCML swapped = %v, want 200", got)
	}
	if !m.ShouldRollback(0, 10, 400) {
		t.Error("500 estimated CML must exceed 400 threshold")
	}
	if m.ShouldRollback(0, 10, 600) {
		t.Error("500 estimated CML must not exceed 600 threshold")
	}
}

func TestCyclesToSeconds(t *testing.T) {
	if s := CyclesToSeconds(1e9); s != 1 {
		t.Errorf("1e9 cycles = %v s, want 1", s)
	}
}
