// Package model derives the paper's fault propagation models (§5): for each
// experiment a linear fit CML(t) = a·t + b of the corrupted-memory-locations
// series, aggregated per application into the fault propagation speed (FPS)
// factor — the mean growth rate a — with the interval estimators
//
//	max CML(t1,t2) = FPS · (t2 − t1)          (paper Eq. 3)
//	avg CML(t1,t2) = max CML(t1,t2) / 2
//
// used at runtime to decide whether a detected fault warrants a rollback.
package model

import (
	"errors"
	"fmt"

	"repro/internal/stats"
	"repro/internal/trace"
)

// NominalHz converts virtual cycles (one IR instruction each) to seconds so
// FPS is expressed in CML/second as in the paper's Table 2.
const NominalHz = 1e9

// CyclesToSeconds converts a cycle count to virtual seconds.
func CyclesToSeconds(c int64) float64 { return float64(c) / NominalHz }

// RunFit is the propagation model of a single experiment.
type RunFit struct {
	// A is the growth rate in CML per second; B the intercept (Eq. 1).
	A, B float64
	// Knee and Plateau describe the piece-wise tail (growth then steady
	// state) when present.
	Knee    float64
	Plateau float64
	// R2 of the linear segment, ValidationErr the mean relative error of
	// the piece-wise model against the observed series.
	R2            float64
	ValidationErr float64
	Points        int
}

// ErrTooFewPoints indicates the run contaminated too little to fit.
var ErrTooFewPoints = errors.New("model: too few propagation points to fit")

// FitRun fits the piece-wise propagation model to one run's recorded CML
// series (times from rank-local cycles).
func FitRun(points []trace.Point) (RunFit, error) {
	if len(points) < 3 {
		return RunFit{}, ErrTooFewPoints
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i] = CyclesToSeconds(p.Cycles)
		ys[i] = float64(p.CML)
	}
	pw, err := stats.FitPiecewise(xs, ys)
	if err != nil {
		return RunFit{}, fmt.Errorf("model: %w", err)
	}
	fit := RunFit{
		A:       pw.Line.A,
		B:       pw.Line.B,
		Knee:    pw.Knee,
		Plateau: pw.Plateau,
		R2:      pw.Line.R2,
		Points:  len(points),
	}
	pred := make([]float64, len(xs))
	for i, x := range xs {
		pred[i] = pw.Eval(x)
	}
	fit.ValidationErr = stats.MeanAbsRelError(pred, ys, 1)
	return fit, nil
}

// FaultTimeIntercept returns b for a fault detected (and assumed to have
// occurred) at time tf: b = −a·tf (paper Eq. 2).
func FaultTimeIntercept(a, tf float64) float64 { return -a * tf }

// AppModel is the per-application propagation model: the FPS factor and its
// spread over the campaign's run fits (paper Table 2).
type AppModel struct {
	App           string
	FPS           float64 // mean growth rate, CML/second
	StdDev        float64
	Fits          []RunFit
	MeanR2        float64
	ValidationErr float64 // mean over runs
}

// BuildAppModel aggregates run fits into the application model. Runs whose
// fitted growth is non-positive (faults that never propagated) do not
// characterize propagation speed and are excluded, as in the paper's focus
// on the linear growth segment.
func BuildAppModel(app string, fits []RunFit) AppModel {
	m := AppModel{App: app}
	var slopes, r2s, errs []float64
	for _, f := range fits {
		if f.A <= 0 {
			continue
		}
		m.Fits = append(m.Fits, f)
		slopes = append(slopes, f.A)
		r2s = append(r2s, f.R2)
		errs = append(errs, f.ValidationErr)
	}
	if len(slopes) == 0 {
		return m
	}
	m.FPS = stats.Mean(slopes)
	m.StdDev = stats.StdDev(slopes)
	m.MeanR2 = stats.Mean(r2s)
	m.ValidationErr = stats.Mean(errs)
	return m
}

// MaxCML estimates the worst-case corrupted memory locations accumulated in
// the detection interval (t1, t2), per paper Eq. 3 (assumes the fault
// happened right after t1).
func (m AppModel) MaxCML(t1, t2 float64) float64 {
	if t2 < t1 {
		t1, t2 = t2, t1
	}
	return m.FPS * (t2 - t1)
}

// AvgCML estimates the expected corrupted memory locations for a fault time
// uniformly distributed in the interval.
func (m AppModel) AvgCML(t1, t2 float64) float64 { return m.MaxCML(t1, t2) / 2 }

// ShouldRollback applies the paper's runtime policy sketch: trigger a
// rollback when the estimated contamination at detection exceeds the safe
// threshold of corrupted locations.
func (m AppModel) ShouldRollback(t1, t2 float64, threshold float64) bool {
	return m.MaxCML(t1, t2) > threshold
}
