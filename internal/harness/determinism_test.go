package harness

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/apps"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/ir"
)

// assertResultsIdentical requires two campaign results to be byte-identical
// in every paper-facing aggregate.
func assertResultsIdentical(t *testing.T, label string, a, b *CampaignResult) {
	t.Helper()
	if !reflect.DeepEqual(a.Tally, b.Tally) {
		t.Errorf("%s: Tally differs: %v vs %v", label, a.Tally, b.Tally)
	}
	if !reflect.DeepEqual(a.Experiments, b.Experiments) {
		t.Errorf("%s: Experiments differ (%d vs %d records)", label, len(a.Experiments), len(b.Experiments))
		for i := range a.Experiments {
			if i < len(b.Experiments) && !reflect.DeepEqual(a.Experiments[i], b.Experiments[i]) {
				t.Errorf("%s: first divergence at experiment %d:\n  %+v\n  %+v",
					label, i, a.Experiments[i], b.Experiments[i])
				break
			}
		}
	}
	if !reflect.DeepEqual(a.Model, b.Model) {
		t.Errorf("%s: Model differs: FPS %v vs %v (%d vs %d fits)",
			label, a.Model.FPS, b.Model.FPS, len(a.Model.Fits), len(b.Model.Fits))
	}
	if !reflect.DeepEqual(a.Profiles, b.Profiles) {
		t.Errorf("%s: Profiles differ (%d vs %d)", label, len(a.Profiles), len(b.Profiles))
		for i := range a.Profiles {
			if i < len(b.Profiles) && !reflect.DeepEqual(a.Profiles[i], b.Profiles[i]) {
				t.Errorf("%s: first differing profile [%d]:\n  %+v\n  %+v",
					label, i, a.Profiles[i], b.Profiles[i])
				break
			}
		}
	}
	if !reflect.DeepEqual(a.BestSpread, b.BestSpread) {
		t.Errorf("%s: BestSpread differs", label)
	}
	if !reflect.DeepEqual(a.StructTotals, b.StructTotals) {
		t.Errorf("%s: StructTotals differ: %v vs %v", label, a.StructTotals, b.StructTotals)
	}
}

// TestCampaignWorkerCountInvariance pins the engine's core determinism
// contract: the same seed yields identical Tally, Experiments, and Model
// whether experiments run serially or race across eight workers.
func TestCampaignWorkerCountInvariance(t *testing.T) {
	cases := []struct {
		name   string
		app    apps.App
		runs   int
		seed   uint64
		lambda float64
	}{
		{"hydro-single", apps.NewHydro(), 16, 99, 0},
		{"fe-multifault", apps.NewFE(), 12, 7, 1.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := CampaignConfig{
				App:    tc.app,
				Params: tc.app.TestParams(), Sampling: Sampling{Runs: tc.runs, Seed: tc.seed, MultiFaultLambda: tc.lambda}, Execution: Execution{SampleEvery: 64},
			}
			serial := base
			serial.Workers = 1
			wide := base
			wide.Workers = 8
			a, err := RunCampaign(serial)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunCampaign(wide)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsIdentical(t, "workers 1 vs 8", a, b)
		})
	}
}

// TestCampaignResumeMatchesUninterrupted kills a campaign at 50% (via the
// StopAfter hook), resumes it from its checkpoint journal, and requires the
// resumed result to be identical to an uninterrupted run of the same seed.
func TestCampaignResumeMatchesUninterrupted(t *testing.T) {
	cases := []struct {
		name   string
		app    apps.App
		runs   int
		seed   uint64
		lambda float64
	}{
		{"hydro-single", apps.NewHydro(), 16, 5, 0},
		{"fe-multifault", apps.NewFE(), 12, 21, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ck := filepath.Join(t.TempDir(), "campaign.ckpt.jsonl")
			base := CampaignConfig{
				App:    tc.app,
				Params: tc.app.TestParams(), Sampling: Sampling{Runs: tc.runs, Seed: tc.seed, MultiFaultLambda: tc.lambda}, Execution: Execution{SampleEvery: 64, Workers: 4},
			}
			full, err := RunCampaign(base)
			if err != nil {
				t.Fatal(err)
			}

			interrupted := base
			interrupted.Checkpoint = ck
			interrupted.StopAfter = tc.runs / 2
			if _, err := RunCampaign(interrupted); !errors.Is(err, ErrInterrupted) {
				t.Fatalf("interrupted campaign returned %v, want ErrInterrupted", err)
			}

			resume := base
			resume.Checkpoint = ck
			resume.Resume = true
			got, err := RunCampaign(resume)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsIdentical(t, "resumed vs uninterrupted", full, got)
		})
	}
}

// TestCampaignResumeToleratesTruncatedTail simulates a kill mid-write: the
// journal's final line is cut short. Resume must drop the partial record,
// re-run that experiment, and still match the uninterrupted result.
func TestCampaignResumeToleratesTruncatedTail(t *testing.T) {
	app := apps.NewHydro()
	ck := filepath.Join(t.TempDir(), "ck.jsonl")
	base := CampaignConfig{
		App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 10, Seed: 13}, Execution: Execution{SampleEvery: 64, Workers: 2},
	}
	full, err := RunCampaign(base)
	if err != nil {
		t.Fatal(err)
	}
	interrupted := base
	interrupted.Checkpoint = ck
	interrupted.StopAfter = 5
	if _, err := RunCampaign(interrupted); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	f, err := os.OpenFile(ck, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"exp","sum":{"ID":9,"Outc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	resume := base
	resume.Checkpoint = ck
	resume.Resume = true
	got, err := RunCampaign(resume)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "resume after truncated tail", full, got)
}

// TestCampaignResumeRejectsMismatchedConfig: a journal written under one
// seed must refuse to seed a campaign with another.
func TestCampaignResumeRejectsMismatchedConfig(t *testing.T) {
	app := apps.NewHydro()
	ck := filepath.Join(t.TempDir(), "ck.jsonl")
	base := CampaignConfig{
		App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 6, Seed: 1}, Execution: Execution{Workers: 2},
	}
	withCk := base
	withCk.Checkpoint = ck
	if _, err := RunCampaign(withCk); err != nil {
		t.Fatal(err)
	}
	other := base
	other.Seed = 2
	other.Checkpoint = ck
	other.Resume = true
	if _, err := RunCampaign(other); err == nil {
		t.Fatal("resume under a different seed was accepted")
	}
	if _, err := RunCampaign(CampaignConfig{
		App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 6, Seed: 1}, Persistence: Persistence{Resume: true},
	}); err == nil {
		t.Fatal("Resume without Checkpoint was accepted")
	}
}

// TestCampaignCancelLeavesResumableJournal cancels a campaign through its
// context after a few live completions and requires (a) ErrInterrupted
// with the cancellation cause, (b) a journal that resumes to results
// byte-identical to an uninterrupted run.
func TestCampaignCancelLeavesResumableJournal(t *testing.T) {
	app := apps.NewHydro()
	ck := filepath.Join(t.TempDir(), "cancel.ckpt.jsonl")
	base := CampaignConfig{
		App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 16, Seed: 31}, Execution: Execution{SampleEvery: 64, Workers: 2},
	}
	full, err := RunCampaign(base)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var live atomic.Int32
	interrupted := base
	interrupted.Checkpoint = ck
	interrupted.OnExperiment = func(sum ExperimentSummary, resumed bool) {
		if resumed {
			t.Errorf("fresh campaign replayed experiment %d from a journal", sum.ID)
		}
		if live.Add(1) == 3 {
			cancel()
		}
	}
	_, err = RunCampaignContext(ctx, interrupted)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("cancelled campaign returned %v, want ErrInterrupted", err)
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("interrupt error %q does not carry the cancellation cause", err)
	}
	if n := live.Load(); n >= 16 {
		t.Fatalf("campaign ran all %d experiments despite cancellation", n)
	}

	resume := base
	resume.Checkpoint = ck
	resume.Resume = true
	var resumed atomic.Int32
	resume.OnExperiment = func(sum ExperimentSummary, wasResumed bool) {
		if wasResumed {
			resumed.Add(1)
		}
	}
	got, err := RunCampaign(resume)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Load() == 0 {
		t.Error("resume replayed no journal records")
	}
	assertResultsIdentical(t, "resume after cancel", full, got)
}

// TestCampaignJournalRejectionPaths covers every way a checkpoint journal
// can be refused: wrong version, wrong fingerprint, missing header, and an
// empty file.
func TestCampaignJournalRejectionPaths(t *testing.T) {
	app := apps.NewHydro()
	base := CampaignConfig{
		App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 6, Seed: 11}, Execution: Execution{Workers: 2},
	}
	write := func(t *testing.T) (string, []string) {
		ck := filepath.Join(t.TempDir(), "ck.jsonl")
		cfg := base
		cfg.Checkpoint = ck
		if _, err := RunCampaign(cfg); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(ck)
		if err != nil {
			t.Fatal(err)
		}
		return ck, strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	}
	rewrite := func(t *testing.T, ck string, lines []string) {
		if err := os.WriteFile(ck, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	resumeErr := func(t *testing.T, ck string) error {
		cfg := base
		cfg.Checkpoint = ck
		cfg.Resume = true
		_, err := RunCampaign(cfg)
		return err
	}

	t.Run("wrong-version", func(t *testing.T) {
		ck, lines := write(t)
		lines[0] = strings.Replace(lines[0], `"version":1`, `"version":99`, 1)
		rewrite(t, ck, lines)
		err := resumeErr(t, ck)
		if err == nil || !strings.Contains(err.Error(), "journal version") {
			t.Fatalf("resume of version-99 journal returned %v, want version error", err)
		}
	})
	t.Run("wrong-fingerprint", func(t *testing.T) {
		ck, lines := write(t)
		hdr := lines[0]
		i := strings.Index(hdr, `"fingerprint":"`)
		if i < 0 {
			t.Fatalf("no fingerprint in header %q", hdr)
		}
		lines[0] = hdr[:i] + `"fingerprint":"0000000000000000"}`
		rewrite(t, ck, lines)
		err := resumeErr(t, ck)
		if err == nil || !strings.Contains(err.Error(), "different campaign") {
			t.Fatalf("resume under forged fingerprint returned %v, want fingerprint error", err)
		}
	})
	t.Run("missing-header", func(t *testing.T) {
		ck, lines := write(t)
		rewrite(t, ck, lines[1:]) // first line is now an exp record
		err := resumeErr(t, ck)
		if err == nil || !strings.Contains(err.Error(), "malformed header") {
			t.Fatalf("resume of headerless journal returned %v, want header error", err)
		}
	})
	t.Run("empty-journal", func(t *testing.T) {
		ck, _ := write(t)
		if err := os.WriteFile(ck, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		err := resumeErr(t, ck)
		if err == nil || !strings.Contains(err.Error(), "empty journal") {
			t.Fatalf("resume of empty journal returned %v, want empty-journal error", err)
		}
	})
}

// TestCampaignGateBoundsParallelism runs a campaign whose Workers exceed
// its shared gate and requires (a) experiment concurrency never exceeds
// the gate's capacity, (b) the gate does not change results.
func TestCampaignGateBoundsParallelism(t *testing.T) {
	orig := coreRun
	defer func() { coreRun = orig }()
	var inFlight, peak atomic.Int32
	coreRun = func(prog *ir.Program, cfg core.RunConfig) core.RunOutcome {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer inFlight.Add(-1)
		return orig(prog, cfg)
	}

	app := apps.NewHydro()
	base := CampaignConfig{
		App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 12, Seed: 77}, Execution: Execution{SampleEvery: 64},
	}
	ungated, err := RunCampaign(base)
	if err != nil {
		t.Fatal(err)
	}

	peak.Store(0)
	gated := base
	gated.Workers = 8
	gated.Gate = make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		gated.Gate <- struct{}{}
	}
	got, err := RunCampaign(gated)
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("gate of 2 tokens allowed %d concurrent experiments", p)
	}
	assertResultsIdentical(t, "gated vs ungated", ungated, got)
}

// TestCampaignBoundedSummaryRetention: with MaxSummaries set, the resident
// summary set is bounded by the retention config while whole-campaign
// aggregates still cover every run.
func TestCampaignBoundedSummaryRetention(t *testing.T) {
	app := apps.NewHydro()
	res, err := RunCampaign(CampaignConfig{
		App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 20, Seed: 42}, Retention: Retention{MaxSummaries: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Experiments) != 5 {
		t.Fatalf("retained %d summaries, want 5", len(res.Experiments))
	}
	for i, e := range res.Experiments {
		if e.ID != i {
			t.Fatalf("retained summary %d has ID %d, want the lowest-ID prefix", i, e.ID)
		}
	}
	if res.Tally.Total != 20 {
		t.Fatalf("tally total = %d, want 20 (aggregates must cover all runs)", res.Tally.Total)
	}

	// The bounded result must agree with the unbounded one on everything
	// that is not summary retention.
	unbounded, err := RunCampaign(CampaignConfig{
		App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 20, Seed: 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tally, unbounded.Tally) {
		t.Error("bounded retention changed the tally")
	}
	if !reflect.DeepEqual(res.Model, unbounded.Model) {
		t.Error("bounded retention changed the model")
	}
	if !reflect.DeepEqual(res.Experiments, unbounded.Experiments[:5]) {
		t.Error("bounded summaries are not the lowest-ID prefix of the full set")
	}
}

// TestUnplannedRunNotAttributedToRankZero is the regression test for the
// empty-plan bug: a zero-fault plan must yield Planned=false and must not
// report rank 0 as injected, and FormatFig5 must exclude such runs.
func TestUnplannedRunNotAttributedToRankZero(t *testing.T) {
	app := apps.NewHydro()
	p := app.TestParams()
	inst := buildInstrumented(t, app, p)
	goldenRun := core.Run(inst, core.RunConfig{Ranks: p.Ranks})
	if goldenRun.Err != nil {
		t.Fatal(goldenRun.Err)
	}
	golden := classify.Golden{
		Outputs:    goldenRun.Outputs,
		Cycles:     goldenRun.Cycles,
		Iterations: goldenRun.Iterations,
	}
	cfg := CampaignConfig{App: app, Params: p, Execution: Execution{HangFactor: 4}}
	out := runExperiment(0, inst, inject.Plan{}, cfg,
		classify.DefaultCriteria(), golden, goldenRun.Cycles*4, nil, nil)
	sum := out.sum
	if sum.Planned {
		t.Error("empty plan reported Planned=true")
	}
	if sum.Fired {
		t.Error("empty plan reported a fired fault")
	}
	if sum.MaxCML != 0 || sum.HasFit {
		t.Errorf("empty plan attributed rank-0 observations: MaxCML=%d HasFit=%v",
			sum.MaxCML, sum.HasFit)
	}
	if sum.Outcome != classify.Vanished {
		t.Errorf("fault-free run classified %v, want V", sum.Outcome)
	}

	planned := runExperiment(1, inst,
		inject.Plan{Faults: []inject.Fault{{Rank: 1, Site: 0, Bit: 3}}}, cfg,
		classify.DefaultCriteria(), golden, goldenRun.Cycles*4, nil, nil)
	if !planned.sum.Planned || planned.sum.InjRank != 1 {
		t.Errorf("planned run: Planned=%v InjRank=%d, want true/1",
			planned.sum.Planned, planned.sum.InjRank)
	}

	// Fig. 5 must count only planned, fired injections.
	res := &CampaignResult{
		App:         "x",
		Golden:      classify.Golden{Cycles: 100},
		GoldenSites: []uint64{10, 10},
		Experiments: []ExperimentSummary{
			{ID: 0}, // unplanned
			{ID: 1, Planned: true, Fired: true, InjCycle: 50},             // counts
			{ID: 2, Planned: true, Fired: false},                          // never fired
			{ID: 3, Planned: true, Fired: true, InjCycle: 75, InjRank: 1}, // counts
		},
	}
	fig5 := FormatFig5(res, 10)
	if want := "2 injections"; !strings.Contains(fig5, want) {
		t.Errorf("Fig. 5 header does not report %q:\n%s", want, fig5)
	}
}

// TestCampaignContainsExperimentPanic injects an infrastructure panic into
// every experiment (via the coreRun seam) and requires the campaign to
// classify them as Crashed with diagnostics instead of dying.
func TestCampaignContainsExperimentPanic(t *testing.T) {
	orig := coreRun
	defer func() { coreRun = orig }()
	coreRun = func(prog *ir.Program, cfg core.RunConfig) core.RunOutcome {
		if len(cfg.Plan.Faults) > 0 {
			panic("synthetic interpreter bug")
		}
		return orig(prog, cfg)
	}
	app := apps.NewHydro()
	res, err := RunCampaign(CampaignConfig{
		App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 6, Seed: 3}, Execution: Execution{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Counts[classify.Crashed] != 6 {
		t.Fatalf("tally = %v, want 6 crashed", res.Tally.Counts)
	}
	for _, e := range res.Experiments {
		if e.Outcome != classify.Crashed {
			t.Errorf("experiment %d outcome %v, want Crashed", e.ID, e.Outcome)
		}
		if e.Diag == "" {
			t.Errorf("experiment %d lost its panic diagnostic", e.ID)
		}
	}
}
