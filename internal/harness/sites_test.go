package harness

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/classify"
)

// TestSitesLegacyBytes pins the "empty for legacy results" rule for the
// per-site additions: a campaign run without Sites — and any archived
// result or wire partial predating the fields — must render and encode
// byte-identically to releases that had no per-site analytics.
func TestSitesLegacyBytes(t *testing.T) {
	app := apps.NewHydro()
	cfg := CampaignConfig{
		App:    app,
		Params: app.TestParams(), Sampling: Sampling{Runs: 8, Seed: 99}, Execution: Execution{SampleEvery: 64},
	}
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sites != nil {
		t.Fatalf("sites-off campaign produced per-site reports: %v", res.Sites)
	}
	if s := FormatSites(res); s != "" {
		t.Errorf("FormatSites of a sites-off result = %q, want empty", s)
	}
	if study := RenderStudy(res); strings.Contains(study, "Per-site vulnerability") {
		t.Error("rendered study of a sites-off campaign contains the per-site section")
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"sites"`) {
		t.Error("sites-off result JSON carries a sites key (breaks legacy byte-identity)")
	}

	// A cache-hit replay of the stored bytes renders identically.
	var rt CampaignResult
	if err := json.Unmarshal(raw, &rt); err != nil {
		t.Fatal(err)
	}
	if RenderStudy(&rt) != RenderStudy(res) {
		t.Error("JSON round-trip changed the rendered study")
	}

	// Legacy wire partials (no sites key) merge and finalize with Sites
	// still absent.
	spec := ShardSpec{Index: 0, Shards: 1, From: 0, To: cfg.Runs, Runs: cfg.Runs, Fingerprint: cfg.Fingerprint()}
	part, err := RunShard(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	praw, err := json.Marshal(part)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(praw), `"sites"`) {
		t.Error("sites-off partial JSON carries a sites key")
	}
	var legacy PartialResult
	if err := json.Unmarshal(praw, &legacy); err != nil {
		t.Fatal(err)
	}
	merged, err := MergePartials(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Sites != nil {
		t.Errorf("finalizing a legacy partial fabricated sites: %v", merged.Sites)
	}
}

// TestSitesFingerprint pins the append-only fingerprint rule: legacy
// configurations keep their historical fingerprints, while turning on
// site analytics or protection — both result-determining — changes them.
func TestSitesFingerprint(t *testing.T) {
	app := apps.NewHydro()
	base := CampaignConfig{
		App:    app,
		Params: app.TestParams(), Sampling: Sampling{Runs: 8, Seed: 99},
	}
	plain := base.Fingerprint()

	emptyProtect := base
	emptyProtect.Protect = []int{}
	if emptyProtect.Fingerprint() != plain {
		t.Error("empty Protect changed the fingerprint")
	}

	sites := base
	sites.Sites = true
	if sites.Fingerprint() == plain {
		t.Error("Sites=true did not change the fingerprint (journal mixing hazard)")
	}

	prot := base
	prot.Protect = []int{1, 4}
	if prot.Fingerprint() == plain || prot.Fingerprint() == sites.Fingerprint() {
		t.Error("Protect did not produce a distinct fingerprint")
	}
	prot2 := base
	prot2.Protect = []int{1, 5}
	if prot2.Fingerprint() == prot.Fingerprint() {
		t.Error("different Protect sets share a fingerprint")
	}
}

func TestProtectValidation(t *testing.T) {
	app := apps.NewHydro()
	for _, protect := range [][]int{{-1}, {3, 3}, {5, 2}} {
		cfg := CampaignConfig{
			App:    app,
			Params: app.TestParams(), Sampling: Sampling{Runs: 4, Seed: 1},
			Protect: protect,
		}
		var fe *FieldError
		if err := cfg.Validate(); !errors.As(err, &fe) || fe.Field != "Protect" {
			t.Errorf("Protect=%v: Validate() = %v, want FieldError{Protect}", protect, err)
		}
	}
}

// TestMergeSiteTallies covers the per-site merge algebra directly:
// commutativity, empty sides, and the label-mismatch guard.
func TestMergeSiteTallies(t *testing.T) {
	mk := func(site int, label string, outcome classify.Outcome, n int) SiteTally {
		st := SiteTally{Site: site, Label: label}
		st.Tally.Counts[outcome] = n
		st.Tally.Total = n
		return st
	}
	a := []SiteTally{mk(1, "f#1/arith", classify.Vanished, 3), mk(4, "f#4/arith", classify.Crashed, 1)}
	b := []SiteTally{mk(4, "f#4/arith", classify.WrongOutput, 2), mk(7, "g#0/mem", classify.Vanished, 5)}

	ab, err := mergeSiteTallies(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := mergeSiteTallies(b, a)
	if err != nil {
		t.Fatal(err)
	}
	abj, _ := json.Marshal(ab)
	baj, _ := json.Marshal(ba)
	if string(abj) != string(baj) {
		t.Errorf("merge not commutative:\n%s\n%s", abj, baj)
	}
	if len(ab) != 3 || ab[1].Site != 4 || ab[1].Tally.Total != 3 {
		t.Errorf("merged tallies wrong: %+v", ab)
	}

	if got, err := mergeSiteTallies(nil, b); err != nil || len(got) != len(b) {
		t.Errorf("nil-left merge = %v, %v", got, err)
	}
	if got, err := mergeSiteTallies(a, nil); err != nil || len(got) != len(a) {
		t.Errorf("nil-right merge = %v, %v", got, err)
	}

	conflict := []SiteTally{mk(4, "other#9/cmp", classify.Vanished, 1)}
	if _, err := mergeSiteTallies(a, conflict); !errors.Is(err, ErrMergeMismatch) {
		t.Errorf("label conflict merge = %v, want ErrMergeMismatch", err)
	}
}

// TestProtectionCampaign is the selective-protection integration check:
// protecting sites never changes the experiment plans (same sites hit,
// same per-site totals), strictly adds golden cycles (the overhead
// metric), and the per-site rankings of both runs stay internally
// consistent.
func TestProtectionCampaign(t *testing.T) {
	app := apps.NewHydro()
	cfg := CampaignConfig{
		App:    app,
		Params: app.TestParams(), Sampling: Sampling{Runs: 16, Seed: 321, Sites: true}, Execution: Execution{SampleEvery: 64},
	}
	base, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Sites) == 0 {
		t.Fatal("baseline produced no site reports")
	}

	pcfg := cfg
	pcfg.Protect = ProtectTop(base.Sites, 20, len(base.Sites))
	if len(pcfg.Protect) == 0 {
		t.Fatal("ProtectTop selected nothing")
	}
	prot, err := RunCampaign(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if prot.Golden.Cycles <= base.Golden.Cycles {
		t.Errorf("protection added no golden cycles: %d vs %d", prot.Golden.Cycles, base.Golden.Cycles)
	}

	// Identical plans: every experiment targets the same static site in
	// both runs, so the per-site totals line up exactly.
	totals := func(res *CampaignResult) map[int]int {
		m := make(map[int]int, len(res.Sites))
		for _, s := range res.Sites {
			m[s.Site] = s.Tally.Total
		}
		return m
	}
	bt, pt := totals(base), totals(prot)
	if len(bt) != len(pt) {
		t.Fatalf("site sets differ: %d vs %d sites", len(bt), len(pt))
	}
	for site, n := range bt {
		if pt[site] != n {
			t.Errorf("site %d: %d experiments baseline, %d protected (plans diverged)", site, n, pt[site])
		}
	}
}
