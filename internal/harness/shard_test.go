package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/apps"
)

// runShardedVariant executes cfg as the given partition of shard specs,
// round-trips every partial through JSON (the wire format the service
// ships between workers and coordinator), merges them in the given order,
// and finalizes.
func runShardedVariant(t *testing.T, cfg CampaignConfig, specs []ShardSpec, order []int) *CampaignResult {
	t.Helper()
	parts := make([]*PartialResult, len(specs))
	for i, spec := range specs {
		p, err := RunShard(cfg, spec)
		if err != nil {
			t.Fatalf("shard %d [%d,%d): %v", spec.Index, spec.From, spec.To, err)
		}
		raw, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshal shard %d: %v", spec.Index, err)
		}
		var rt PartialResult
		if err := json.Unmarshal(raw, &rt); err != nil {
			t.Fatalf("unmarshal shard %d: %v", spec.Index, err)
		}
		parts[i] = &rt
	}
	ordered := make([]*PartialResult, len(parts))
	for i, j := range order {
		ordered[i] = parts[j]
	}
	res, err := MergePartials(ordered...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return res
}

// assertStudyIdentical requires the rendered study and the JSON encoding
// of two results to be byte-identical — the acceptance bar for sharding.
func assertStudyIdentical(t *testing.T, label string, want, got *CampaignResult) {
	t.Helper()
	assertResultsIdentical(t, label, want, got)
	wj, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	gj, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wj, gj) {
		t.Errorf("%s: JSON differs (%d vs %d bytes)", label, len(wj), len(gj))
	}
	// RenderStudy is the single shared byte-identity surface (every
	// figure and table); the per-exhibit loop below only localizes a
	// failure to one render for readable diagnostics.
	if w, g := RenderStudy(want), RenderStudy(got); w == g {
		return
	}
	for _, render := range []struct {
		name string
		f    func(*CampaignResult) string
	}{
		{"Fig5", func(r *CampaignResult) string { return FormatFig5(r, 10) }},
		{"Fig6", func(r *CampaignResult) string { return FormatFig6([]*CampaignResult{r}) }},
		{"Fig7", FormatFig7},
		{"Fig7f", func(r *CampaignResult) string { return FormatFig7f([]*CampaignResult{r}) }},
		{"Fig8", func(r *CampaignResult) string { return FormatFig8([]*CampaignResult{r}) }},
		{"Table2", func(r *CampaignResult) string { return FormatTable2([]*CampaignResult{r}) }},
		{"CO", func(r *CampaignResult) string { return FormatCOBreakdown([]*CampaignResult{r}) }},
		{"Structs", func(r *CampaignResult) string { return FormatStructVulnerability([]*CampaignResult{r}) }},
		{"Strata", FormatStrata},
		{"Sites", FormatSites},
	} {
		if w, g := render.f(want), render.f(got); w != g {
			t.Errorf("%s: rendered %s differs:\n--- unsharded\n%s\n--- merged\n%s", label, render.name, w, g)
		}
	}
	t.Errorf("%s: rendered study differs", label)
}

// TestShardMergeByteIdentical is the merge-correctness property test: a
// fixed-seed campaign split at arbitrary shard boundaries — including
// 1-experiment and empty shards — and merged in shuffled order must
// finalize byte-identical (rendered study and JSON, FPS fits included) to
// the unsharded run.
func TestShardMergeByteIdentical(t *testing.T) {
	app := apps.NewHydro()
	cfg := CampaignConfig{
		App:    app,
		Params: app.TestParams(), Sampling: Sampling{Runs: 24, Seed: 424242}, Execution: Execution{SampleEvery: 64, Workers: 2},
	}
	want, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7)) // fixed seed: deterministic partitions
	shuffled := func(n int) []int {
		order := rng.Perm(n)
		return order
	}

	t.Run("planned-4-shards", func(t *testing.T) {
		specs, err := PlanShards(cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		got := runShardedVariant(t, cfg, specs, shuffled(len(specs)))
		assertStudyIdentical(t, "4 shards", want, got)
	})

	t.Run("one-experiment-shards", func(t *testing.T) {
		// Every shard holds exactly one experiment.
		specs, err := PlanShards(cfg, cfg.Runs)
		if err != nil {
			t.Fatal(err)
		}
		got := runShardedVariant(t, cfg, specs, shuffled(len(specs)))
		assertStudyIdentical(t, "1-exp shards", want, got)
	})

	t.Run("empty-shards", func(t *testing.T) {
		// More shards than runs: the tail shards are empty and must merge
		// as no-ops.
		specs, err := PlanShards(cfg, cfg.Runs+5)
		if err != nil {
			t.Fatal(err)
		}
		empties := 0
		for _, s := range specs {
			if s.Size() == 0 {
				empties++
			}
		}
		if empties != 5 {
			t.Fatalf("want 5 empty shards, got %d", empties)
		}
		got := runShardedVariant(t, cfg, specs, shuffled(len(specs)))
		assertStudyIdentical(t, "empty shards", want, got)
	})

	t.Run("arbitrary-boundaries", func(t *testing.T) {
		// Random uneven partitions of [0, Runs), merged in random order.
		fp := cfg.Fingerprint()
		for trial := 0; trial < 3; trial++ {
			cuts := map[int]bool{0: true, cfg.Runs: true}
			for i := 0; i < 1+rng.Intn(6); i++ {
				cuts[rng.Intn(cfg.Runs+1)] = true
			}
			var bounds []int
			for c := range cuts {
				bounds = append(bounds, c)
			}
			sortInts(bounds)
			var specs []ShardSpec
			for i := 0; i+1 < len(bounds); i++ {
				specs = append(specs, ShardSpec{
					Index: i, Shards: len(bounds) - 1,
					From: bounds[i], To: bounds[i+1],
					Runs: cfg.Runs, Fingerprint: fp,
				})
			}
			got := runShardedVariant(t, cfg, specs, shuffled(len(specs)))
			assertStudyIdentical(t, "arbitrary boundaries", want, got)
		}
	})

	t.Run("sites-enabled", func(t *testing.T) {
		// Per-site tallies must fold like every other mergeable slice:
		// forward and reverse merge orders, 1-experiment shards, and empty
		// shards all finalize to the unsharded bytes (ranking included).
		scfg := cfg
		scfg.Sites = true
		swant, err := RunCampaign(scfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(swant.Sites) == 0 {
			t.Fatal("sites-enabled campaign produced no per-site ranking")
		}
		specs, err := PlanShards(scfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		assertStudyIdentical(t, "sites forward order", swant,
			runShardedVariant(t, scfg, specs, []int{0, 1, 2, 3}))
		assertStudyIdentical(t, "sites reverse order", swant,
			runShardedVariant(t, scfg, specs, []int{3, 2, 1, 0}))

		specs, err = PlanShards(scfg, scfg.Runs+3)
		if err != nil {
			t.Fatal(err)
		}
		got := runShardedVariant(t, scfg, specs, shuffled(len(specs)))
		assertStudyIdentical(t, "sites 1-exp and empty shards", swant, got)
	})
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestShardMergeWithRetentionCaps checks the capped-retention merge rules:
// lowest-K summaries and per-outcome profile caps must select the same
// records whether the campaign ran whole or sharded.
func TestShardMergeWithRetentionCaps(t *testing.T) {
	app := apps.NewFE()
	cfg := CampaignConfig{
		App:    app,
		Params: app.TestParams(), Sampling: Sampling{Runs: 18, Seed: 1717}, Execution: Execution{SampleEvery: 64, Workers: 2}, Retention: Retention{MaxSummaries: 5, KeepProfiles: 1},
	}
	want, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := PlanShards(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := runShardedVariant(t, cfg, specs, []int{2, 0, 1})
	assertStudyIdentical(t, "capped retention", want, got)
	if len(got.Experiments) != 5 {
		t.Fatalf("retained %d summaries, want 5", len(got.Experiments))
	}
}

// TestPlanShards pins the planner's contract: contiguous cover of [0,
// Runs), near-equal sizes, fingerprint on every spec.
func TestPlanShards(t *testing.T) {
	app := apps.NewHydro()
	cfg := CampaignConfig{App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 10, Seed: 1}}
	specs, err := PlanShards(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantRanges := [][2]int{{0, 4}, {4, 7}, {7, 10}}
	for i, s := range specs {
		if s.From != wantRanges[i][0] || s.To != wantRanges[i][1] {
			t.Errorf("shard %d: [%d,%d), want [%d,%d)", i, s.From, s.To, wantRanges[i][0], wantRanges[i][1])
		}
		if s.Fingerprint != cfg.Fingerprint() {
			t.Errorf("shard %d: fingerprint %q, want %q", i, s.Fingerprint, cfg.Fingerprint())
		}
		if s.Runs != cfg.Runs || s.Shards != 3 || s.Index != i {
			t.Errorf("shard %d: bad metadata %+v", i, s)
		}
	}
	if _, err := PlanShards(cfg, 0); err == nil {
		t.Error("PlanShards(0) should fail")
	}
	var fe *FieldError
	if _, err := PlanShards(CampaignConfig{App: app, Params: app.TestParams()}, 2); !errors.As(err, &fe) {
		t.Errorf("PlanShards with Runs=0: want FieldError, got %v", err)
	}
}

// TestShardMergeGuards checks that Merge and Finalize refuse incompatible
// or incomplete inputs with the exported sentinels.
func TestShardMergeGuards(t *testing.T) {
	base := func() *PartialResult {
		return &PartialResult{
			Fingerprint: "abc", Runs: 10,
			Ranges: []IDRange{{From: 0, To: 5}},
		}
	}
	t.Run("overlap", func(t *testing.T) {
		p, q := base(), base()
		q.Ranges = []IDRange{{From: 4, To: 10}}
		if err := p.Merge(q); !errors.Is(err, ErrShardOverlap) {
			t.Errorf("want ErrShardOverlap, got %v", err)
		}
	})
	t.Run("fingerprint", func(t *testing.T) {
		p, q := base(), base()
		q.Fingerprint = "xyz"
		q.Ranges = []IDRange{{From: 5, To: 10}}
		if err := p.Merge(q); !errors.Is(err, ErrFingerprintMismatch) {
			t.Errorf("want ErrFingerprintMismatch, got %v", err)
		}
	})
	t.Run("retention", func(t *testing.T) {
		p, q := base(), base()
		q.MaxSummaries = 3
		q.Ranges = []IDRange{{From: 5, To: 10}}
		if err := p.Merge(q); !errors.Is(err, ErrMergeMismatch) {
			t.Errorf("want ErrMergeMismatch, got %v", err)
		}
	})
	t.Run("incomplete", func(t *testing.T) {
		if _, err := base().Finalize(); !errors.Is(err, ErrIncompleteCampaign) {
			t.Errorf("want ErrIncompleteCampaign, got %v", err)
		}
	})
	t.Run("spec-fingerprint", func(t *testing.T) {
		app := apps.NewHydro()
		cfg := CampaignConfig{App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 4, Seed: 9}}
		spec := ShardSpec{Shards: 1, To: 4, Runs: 4, Fingerprint: "0000000000000000"}
		if _, err := RunShard(cfg, spec); !errors.Is(err, ErrFingerprintMismatch) {
			t.Errorf("want ErrFingerprintMismatch, got %v", err)
		}
	})
	t.Run("bad-range", func(t *testing.T) {
		app := apps.NewHydro()
		cfg := CampaignConfig{App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 4, Seed: 9}}
		var fe *FieldError
		if _, err := RunShard(cfg, ShardSpec{From: 2, To: 9, Runs: 4}); !errors.As(err, &fe) {
			t.Errorf("want FieldError, got %v", err)
		}
	})
}

// TestShardCheckpointResume checks a shard's own checkpoint journal: a
// shard interrupted mid-range resumes from its journal and still merges
// byte-identical with its siblings; a sibling shard refuses that journal.
func TestShardCheckpointResume(t *testing.T) {
	app := apps.NewHydro()
	cfg := CampaignConfig{
		App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 12, Seed: 31}, Execution: Execution{SampleEvery: 64, Workers: 1},
	}
	want, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := PlanShards(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// Interrupt shard 0 after 2 experiments, then resume it.
	c0 := cfg
	c0.Checkpoint = dir + "/shard0.ckpt.jsonl"
	c0.StopAfter = 2
	if _, err := RunShard(c0, specs[0]); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	c0.StopAfter = 0
	c0.Resume = true
	p0, err := RunShard(c0, specs[0])
	if err != nil {
		t.Fatal(err)
	}

	// Shard 1 must refuse shard 0's journal: same campaign, different range.
	c1 := cfg
	c1.Checkpoint = c0.Checkpoint
	c1.Resume = true
	if _, err := RunShard(c1, specs[1]); err == nil ||
		!strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("sibling journal: want fingerprint rejection, got %v", err)
	}

	p1, err := RunShard(cfg, specs[1])
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergePartials(p1, p0) // reversed order on purpose
	if err != nil {
		t.Fatal(err)
	}
	assertStudyIdentical(t, "resumed shard merge", want, got)
}

// TestCampaignConfigValidate pins the typed-field-error API.
func TestCampaignConfigValidate(t *testing.T) {
	app := apps.NewHydro()
	ok := CampaignConfig{App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 5}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name  string
		mut   func(*CampaignConfig)
		field string
	}{
		{"nil-app", func(c *CampaignConfig) { c.App = nil }, "App"},
		{"no-runs", func(c *CampaignConfig) { c.Runs = 0 }, "Runs"},
		{"neg-lambda", func(c *CampaignConfig) { c.MultiFaultLambda = -1 }, "MultiFaultLambda"},
		{"neg-hang", func(c *CampaignConfig) { c.HangFactor = -2 }, "HangFactor"},
		{"resume-no-ckpt", func(c *CampaignConfig) { c.Resume = true }, "Resume"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := ok
			tc.mut(&c)
			err := c.Validate()
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("want FieldError, got %v", err)
			}
			if fe.Field != tc.field {
				t.Errorf("field %q, want %q", fe.Field, tc.field)
			}
			if !reflect.DeepEqual(c.Validate(), err) {
				t.Error("Validate not deterministic")
			}
		})
	}
}
