package harness

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/apps"
	"repro/internal/classify"
	"repro/internal/model"
)

// Sharded campaigns. Experiment i draws from the position-addressable
// stream xrand.At(Seed, i), so any ID range [From, To) of a campaign is
// independently computable: a shard needs no coordination with its
// siblings while it runs. PlanShards carves [0, Runs) into contiguous,
// fingerprint-guarded shard specs; RunShardContext executes one of them
// into a PartialResult; Merge combines partials deterministically and
// order-independently; Finalize recomputes the propagation model from the
// merged fit inputs, so a merged result is byte-identical to the
// equivalent single-process run.

// ShardSpec identifies one contiguous slice of a campaign's experiment ID
// space. Specs are self-describing enough to dispatch to a remote worker:
// the Fingerprint binds the spec to the exact result-determining campaign
// configuration, so a worker running a different workload, seed, or fault
// model refuses the shard instead of silently producing unmergeable
// results.
type ShardSpec struct {
	// Index and Shards locate this shard in the plan ([0, Shards)).
	Index  int `json:"index"`
	Shards int `json:"shards"`
	// From (inclusive) and To (exclusive) bound the experiment IDs this
	// shard executes. From == To is a legal empty shard.
	From int `json:"from"`
	To   int `json:"to"`
	// IDs, when non-empty, enumerates the exact experiment IDs this shard
	// executes instead of the contiguous [From, To) range. This is the
	// dispatch vehicle for adaptive coordinators: the planner chooses a
	// round of IDs, splits it across workers as explicit-ID shards, and the
	// workers execute them without knowing any policy. IDs must be strictly
	// ascending and lie within [0, Runs); From and To are ignored.
	IDs []int `json:"ids,omitempty"`
	// Runs is the whole campaign's run count (the union of all shards).
	Runs int `json:"runs"`
	// Fingerprint is CampaignConfig.Fingerprint() of the campaign this
	// shard belongs to.
	Fingerprint string `json:"fingerprint"`
}

// Size returns the number of experiments in the shard.
func (s ShardSpec) Size() int {
	if len(s.IDs) > 0 {
		return len(s.IDs)
	}
	return s.To - s.From
}

// ids enumerates the shard's experiment IDs in ascending order.
func (s ShardSpec) ids() []int {
	if len(s.IDs) > 0 {
		return s.IDs
	}
	out := make([]int, 0, s.To-s.From)
	for id := s.From; id < s.To; id++ {
		out = append(out, id)
	}
	return out
}

// validate checks the spec against the campaign it claims to belong to.
func (s ShardSpec) validate(cfg CampaignConfig) error {
	if len(s.IDs) > 0 {
		prev := -1
		for _, id := range s.IDs {
			if id <= prev {
				return &FieldError{Field: "Shard.IDs", Reason: "must be strictly ascending"}
			}
			if id < 0 || id >= cfg.Runs {
				return &FieldError{Field: "Shard.IDs", Reason: fmt.Sprintf(
					"ID %d outside campaign [0,%d)", id, cfg.Runs)}
			}
			prev = id
		}
	} else if s.From < 0 || s.From > s.To || s.To > cfg.Runs {
		return &FieldError{Field: "Shard", Reason: fmt.Sprintf(
			"range [%d,%d) outside campaign [0,%d)", s.From, s.To, cfg.Runs)}
	}
	if s.Runs != 0 && s.Runs != cfg.Runs {
		return &FieldError{Field: "Shard.Runs", Reason: fmt.Sprintf(
			"spec covers a %d-run campaign, config has %d", s.Runs, cfg.Runs)}
	}
	if s.Fingerprint != "" {
		if fp := cfg.Fingerprint(); s.Fingerprint != fp {
			return fmt.Errorf("harness: shard %d [%d,%d): %w: spec %s, config %s",
				s.Index, s.From, s.To, ErrFingerprintMismatch, s.Fingerprint, fp)
		}
	}
	return nil
}

// PlanShards carves the campaign's experiment IDs [0, Runs) into n
// contiguous shard specs of near-equal size (the first Runs mod n shards
// get one extra experiment). When n exceeds Runs the tail shards are
// empty; every spec carries the campaign fingerprint.
func PlanShards(cfg CampaignConfig, n int) ([]ShardSpec, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, &FieldError{Field: "Shards", Reason: "must be > 0"}
	}
	fp := cfg.Fingerprint()
	base, rem := cfg.Runs/n, cfg.Runs%n
	specs := make([]ShardSpec, n)
	from := 0
	for i := range specs {
		size := base
		if i < rem {
			size++
		}
		specs[i] = ShardSpec{
			Index:       i,
			Shards:      n,
			From:        from,
			To:          from + size,
			Runs:        cfg.Runs,
			Fingerprint: fp,
		}
		from += size
	}
	return specs, nil
}

// IDRange is a half-open, merged range of completed experiment IDs.
type IDRange struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// IDFit is one run's propagation fit keyed by experiment ID, retained so a
// merged campaign rebuilds its model from fits in ID order — float
// accumulation is order-sensitive, and recomputing from the merged inputs
// is what makes the merged model byte-identical to a single-process run.
type IDFit struct {
	ID  int          `json:"id"`
	Fit model.RunFit `json:"fit"`
	// Stratum is the experiment's sampling stratum when the campaign is
	// stratified (0 otherwise, omitted from JSON so unstratified partials
	// keep their historical bytes).
	Stratum int `json:"stratum,omitempty"`
}

// Merge and shard errors.
var (
	// ErrIncompleteCampaign reports a Finalize over partials that do not
	// cover the whole experiment ID space.
	ErrIncompleteCampaign = errors.New("harness: partial results do not cover the campaign")
	// ErrShardOverlap reports merging partials whose ID ranges intersect.
	ErrShardOverlap = errors.New("harness: shard ID ranges overlap")
	// ErrMergeMismatch reports merging partials from incompatible
	// aggregation configurations (retention caps, golden run).
	ErrMergeMismatch = errors.New("harness: partial results disagree")
)

// PartialResult is the mergeable aggregate of a campaign slice: everything
// the streaming aggregator accumulates for the experiments in Ranges, plus
// the campaign metadata a finalized CampaignResult needs. Partials
// round-trip JSON exactly, merge deterministically in any order, and
// Finalize recomputes the propagation model from the merged fit inputs, so
//
//	merge(shard results in any order).Finalize()
//
// is byte-identical to RunCampaign over the whole ID space.
type PartialResult struct {
	// Fingerprint guards merges: only partials of the same
	// result-determining campaign configuration combine.
	Fingerprint string `json:"fingerprint"`
	// Ranges are the completed experiment ID ranges, normalized (sorted,
	// disjoint, adjacent ranges coalesced).
	Ranges []IDRange `json:"ranges"`

	App            string          `json:"app"`
	Params         apps.Params     `json:"params"`
	Runs           int             `json:"runs"`
	Golden         classify.Golden `json:"golden"`
	GoldenSites    []uint64        `json:"goldenSites"`
	AllocatedWords int64           `json:"allocatedWords"`

	// KeepProfiles and MaxSummaries echo the retention configuration the
	// partial was aggregated under; partials with different retention do
	// not merge (the retained sets would not be comparable).
	KeepProfiles int `json:"keepProfiles"`
	MaxSummaries int `json:"maxSummaries"`

	Tally        classify.Tally      `json:"tally"`
	StructTotals map[string]int      `json:"structTotals"`
	Experiments  []ExperimentSummary `json:"experiments"`
	// Profiles holds the retained CML profiles, ID-sorted; per-outcome
	// retention caps are re-applied on merge using each profile's Outcome.
	Profiles []Profile `json:"profiles"`
	// Fits are the FPS fit inputs, ID-sorted; the model itself is only
	// computed at Finalize, never merged.
	Fits   []IDFit      `json:"fits"`
	Spread SpreadSeries `json:"spread"`
	// HasSpread distinguishes "no experiment produced a spread series"
	// from a zero-valued one.
	HasSpread bool `json:"hasSpread"`

	// Strata holds the per-stratum outcome tallies when the campaign is
	// stratified (Sampling.TargetCI or Sampling.Strata set). Integer counts
	// only, so merging stays commutative and associative; empty — and
	// omitted from JSON — for unstratified campaigns.
	Strata []StratumTally `json:"strata,omitempty"`
	// Sites holds the per-static-site outcome and propagation-pattern
	// tallies when per-site analytics are enabled (Sampling.Sites). Like
	// Strata, pure integer counts: merging stays commutative and
	// associative, and the slice is empty — and omitted from JSON — for
	// campaigns without site analytics, so legacy partials keep their
	// historical bytes.
	Sites []SiteTally `json:"sites,omitempty"`
	// AdaptiveDone marks a partial whose adaptive planner reached its
	// stopping criterion: every stratum's outcome rates are within the
	// target CI (or its ID pool is exhausted). Finalize accepts partial ID
	// coverage from such a result — the uncovered IDs were deliberately
	// not spent. ORed on merge; a coordinator sets it on the merged partial
	// when its own planner stops.
	AdaptiveDone bool `json:"adaptiveDone,omitempty"`

	// Timings carries the shard's phase-latency histograms when the run
	// was traced (CampaignConfig.Timings). Observability only: merged
	// like every other aggregate but never fingerprinted, never part of
	// the finalized CampaignResult, and absent unless tracing was on —
	// so untraced partials stay byte-identical to earlier releases.
	Timings *CampaignTimings `json:"timings,omitempty"`
}

// Merge folds other into p. The operation is commutative and associative
// over a set of disjoint partials: every retention rule depends only on
// experiment IDs and contents, so any merge order yields the same bytes.
// Partials must share a fingerprint, retention configuration, and golden
// run; overlapping ID ranges are refused.
func (p *PartialResult) Merge(other *PartialResult) error {
	if other == nil {
		return fmt.Errorf("%w: nil partial", ErrMergeMismatch)
	}
	if p.Fingerprint != other.Fingerprint {
		return fmt.Errorf("%w: %s vs %s", ErrFingerprintMismatch, p.Fingerprint, other.Fingerprint)
	}
	if p.KeepProfiles != other.KeepProfiles || p.MaxSummaries != other.MaxSummaries {
		return fmt.Errorf("%w: retention caps differ (profiles %d vs %d, summaries %d vs %d)",
			ErrMergeMismatch, p.KeepProfiles, other.KeepProfiles, p.MaxSummaries, other.MaxSummaries)
	}
	if p.Golden.Cycles != other.Golden.Cycles || p.Runs != other.Runs {
		return fmt.Errorf("%w: golden cycles %d vs %d, runs %d vs %d",
			ErrMergeMismatch, p.Golden.Cycles, other.Golden.Cycles, p.Runs, other.Runs)
	}
	merged, err := mergeRanges(p.Ranges, other.Ranges)
	if err != nil {
		return err
	}
	p.Ranges = merged

	for o := 0; o < classify.NumOutcomes; o++ {
		p.Tally.Counts[o] += other.Tally.Counts[o]
	}
	p.Tally.Total += other.Tally.Total
	if p.StructTotals == nil && other.StructTotals != nil {
		p.StructTotals = make(map[string]int, len(other.StructTotals))
	}
	for k, v := range other.StructTotals {
		p.StructTotals[k] += v
	}

	// Summaries: the global lowest-K-by-ID set is the lowest K of the
	// union of per-shard lowest-K sets, because any globally retained ID
	// is necessarily retained by its own shard.
	p.Experiments = mergeSortedByID(p.Experiments, other.Experiments, p.MaxSummaries,
		func(e ExperimentSummary) int { return e.ID })

	// Profiles: same argument, but the cap is per outcome class.
	p.Profiles = mergeProfiles(p.Profiles, other.Profiles, p.KeepProfiles)

	// Fits merge uncapped; the model is rebuilt from them at Finalize.
	p.Fits = mergeSortedByID(p.Fits, other.Fits, 0, func(f IDFit) int { return f.ID })

	// Per-stratum tallies are pure integer counts: union by stratum index.
	strata, err := mergeStratumTallies(p.Strata, other.Strata)
	if err != nil {
		return err
	}
	p.Strata = strata

	// Per-site tallies merge the same way: union by static site ordinal.
	sites, err := mergeSiteTallies(p.Sites, other.Sites)
	if err != nil {
		return err
	}
	p.Sites = sites
	p.AdaptiveDone = p.AdaptiveDone || other.AdaptiveDone

	// Widest spread wins; ties go to the lowest experiment ID, exactly as
	// the streaming aggregator decides.
	if other.HasSpread {
		on, pn := len(other.Spread.Points), len(p.Spread.Points)
		if !p.HasSpread || on > pn || (on == pn && other.Spread.ID < p.Spread.ID) {
			p.Spread = other.Spread
			p.HasSpread = true
		}
	}

	// Timings fold like any other aggregate; a shard that ran untraced
	// simply contributes nothing.
	if other.Timings != nil {
		if p.Timings == nil {
			p.Timings = NewCampaignTimings()
		}
		if err := p.Timings.Merge(other.Timings); err != nil {
			return fmt.Errorf("%w: %v", ErrMergeMismatch, err)
		}
	}
	return nil
}

// MergePartials merges the given partials (any order, any boundaries) and
// finalizes them into a complete campaign result.
func MergePartials(parts ...*PartialResult) (*CampaignResult, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: no partials", ErrIncompleteCampaign)
	}
	acc := parts[0].Clone()
	for _, p := range parts[1:] {
		if err := acc.Merge(p); err != nil {
			return nil, err
		}
	}
	return acc.Finalize()
}

// Clone returns a deep-enough copy: the retained slices are copied so
// merging into the clone never aliases the source partial's backing
// arrays. Summary, profile and fit elements themselves are immutable once
// aggregated and are shared.
func (p *PartialResult) Clone() *PartialResult {
	c := *p
	c.Ranges = append([]IDRange(nil), p.Ranges...)
	c.Experiments = append([]ExperimentSummary(nil), p.Experiments...)
	c.Profiles = append([]Profile(nil), p.Profiles...)
	c.Fits = append([]IDFit(nil), p.Fits...)
	c.Strata = append([]StratumTally(nil), p.Strata...)
	c.Sites = append([]SiteTally(nil), p.Sites...)
	if p.StructTotals != nil {
		c.StructTotals = make(map[string]int, len(p.StructTotals))
		for k, v := range p.StructTotals {
			c.StructTotals[k] = v
		}
	}
	c.Timings = p.Timings.Clone()
	return &c
}

// Complete reports whether the partial covers the whole campaign.
func (p *PartialResult) Complete() bool {
	return len(p.Ranges) == 1 && p.Ranges[0].From == 0 && p.Ranges[0].To == p.Runs
}

// Finalize converts a complete partial into the campaign result. The
// propagation model is recomputed here from the merged per-run fits in ID
// order — fits are never merged as aggregates, because FPS and its spread
// are means over runs whose floating-point accumulation must happen in one
// deterministic order to be byte-identical with a single-process run.
// Adaptive partials (AdaptiveDone) finalize with partial ID coverage: the
// planner stopped on purpose, and the per-stratum moments are likewise
// rebuilt here from the merged fits in ID order.
func (p *PartialResult) Finalize() (*CampaignResult, error) {
	if !p.Complete() && !p.AdaptiveDone {
		return nil, fmt.Errorf("%w: covered %v of [0,%d)", ErrIncompleteCampaign, p.Ranges, p.Runs)
	}
	fits := make([]model.RunFit, len(p.Fits))
	for i := range p.Fits {
		fits[i] = p.Fits[i].Fit
	}
	return &CampaignResult{
		App:            p.App,
		Params:         p.Params,
		Runs:           p.Runs,
		Golden:         p.Golden,
		GoldenSites:    p.GoldenSites,
		AllocatedWords: p.AllocatedWords,
		Tally:          p.Tally,
		Experiments:    p.Experiments,
		Profiles:       p.Profiles,
		BestSpread:     p.Spread,
		Model:          model.BuildAppModel(p.App, fits),
		StructTotals:   p.StructTotals,
		Strata:         buildStrataReports(p.Strata, p.Fits),
		Sites:          buildSiteReports(p.Sites),
	}, nil
}

// mergeRanges unions two normalized range sets, refusing overlaps (a
// double-counted experiment would corrupt every aggregate).
func mergeRanges(a, b []IDRange) ([]IDRange, error) {
	all := make([]IDRange, 0, len(a)+len(b))
	all = append(all, a...)
	all = append(all, b...)
	sort.Slice(all, func(i, j int) bool {
		if all[i].From != all[j].From {
			return all[i].From < all[j].From
		}
		return all[i].To < all[j].To
	})
	var out []IDRange
	for _, r := range all {
		if r.From == r.To {
			continue // empty shard contributes no coverage
		}
		if n := len(out); n > 0 {
			last := &out[n-1]
			if r.From < last.To {
				return nil, fmt.Errorf("%w: [%d,%d) and [%d,%d)",
					ErrShardOverlap, last.From, last.To, r.From, r.To)
			}
			if r.From == last.To {
				last.To = r.To
				continue
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// mergeSortedByID merges two ID-sorted slices, keeping the lowest-ID cap
// elements (cap <= 0: keep all).
func mergeSortedByID[T any](a, b []T, cap int, id func(T) int) []T {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]T(nil), b...)
	}
	out := make([]T, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if id(a[i]) <= id(b[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	if cap > 0 && len(out) > cap {
		out = out[:cap]
	}
	return out
}

// mergeProfiles merges two ID-sorted profile sets, re-applying the
// per-outcome retention cap, and returns the survivors ID-sorted.
func mergeProfiles(a, b []Profile, keep int) []Profile {
	if len(b) == 0 {
		return a
	}
	byClass := make(map[classify.Outcome][]Profile)
	for _, p := range a {
		byClass[p.Outcome] = append(byClass[p.Outcome], p)
	}
	for _, p := range b {
		byClass[p.Outcome] = insertByID(byClass[p.Outcome], p, keep,
			func(e Profile) int { return e.ID })
	}
	var out []Profile
	for _, ps := range byClass {
		out = append(out, ps...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
