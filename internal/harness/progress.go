package harness

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/classify"
)

// Progress collects live metrics from a running campaign: completed-run
// counts per outcome class, throughput, ETA, and worker utilization. Wire
// one into CampaignConfig.Progress and either poll Snapshot or start a
// Ticker that prints to stderr on an interval. All methods are safe for
// concurrent use and safe on a nil receiver, so the campaign engine calls
// them unconditionally.
type Progress struct {
	mu       sync.Mutex
	total    int
	workers  int
	started  time.Time
	resumed  int
	done     int
	running  int
	busy     time.Duration
	outcomes [classify.NumOutcomes]int
}

// Snapshot is a point-in-time view of campaign progress.
type Snapshot struct {
	// Total is the campaign's configured run count; Done counts completed
	// experiments including the Resumed ones replayed from a checkpoint.
	Total   int
	Done    int
	Resumed int
	// Running counts experiments currently executing on workers.
	Running int
	// Elapsed is wall time since the campaign's execution phase started.
	Elapsed time.Duration
	// RunsPerSec is the throughput of newly executed (non-resumed) runs.
	RunsPerSec float64
	// ETA estimates the remaining wall time at the current throughput
	// (zero until a rate is established).
	ETA time.Duration
	// Outcomes holds per-class running counts, indexed by classify.Outcome.
	Outcomes [classify.NumOutcomes]int
	// Utilization is completed busy worker-time over elapsed wall-time
	// times workers, in [0, 1].
	Utilization float64
}

// begin (re)arms the Progress for one campaign. A Progress may be
// reused across sequential campaigns or shard runs, so every counter
// from the previous campaign is zeroed here — carrying done/resumed/
// outcome counts over would double-count and corrupt throughput, ETA,
// and utilization.
func (p *Progress) begin(total, workers int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total = total
	p.workers = workers
	p.started = time.Now()
	p.resumed = 0
	p.done = 0
	p.running = 0
	p.busy = 0
	p.outcomes = [classify.NumOutcomes]int{}
}

func (p *Progress) noteResumed(n int) {
	if p == nil || n == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.resumed += n
	p.done += n
}

func (p *Progress) noteStart() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.running++
}

func (p *Progress) noteDone(o classify.Outcome, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.running--
	p.done++
	p.busy += d
	if o >= 0 && int(o) < classify.NumOutcomes {
		p.outcomes[o]++
	}
}

// Snapshot returns the current metrics.
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Snapshot{
		Total:    p.total,
		Done:     p.done,
		Resumed:  p.resumed,
		Running:  p.running,
		Outcomes: p.outcomes,
	}
	if p.started.IsZero() {
		return s
	}
	s.Elapsed = time.Since(p.started)
	executed := p.done - p.resumed
	if s.Elapsed > 0 && executed > 0 {
		s.RunsPerSec = float64(executed) / s.Elapsed.Seconds()
		if remaining := p.total - p.done; remaining > 0 {
			s.ETA = time.Duration(float64(remaining) / s.RunsPerSec * float64(time.Second))
		}
	}
	if s.Elapsed > 0 && p.workers > 0 {
		s.Utilization = p.busy.Seconds() / (s.Elapsed.Seconds() * float64(p.workers))
		if s.Utilization > 1 {
			s.Utilization = 1
		}
	}
	return s
}

// String renders the snapshot as a one-line status report.
func (s Snapshot) String() string {
	var sb strings.Builder
	pct := 0.0
	if s.Total > 0 {
		pct = 100 * float64(s.Done) / float64(s.Total)
	}
	fmt.Fprintf(&sb, "%d/%d (%.1f%%)", s.Done, s.Total, pct)
	if s.Resumed > 0 {
		fmt.Fprintf(&sb, " [%d resumed]", s.Resumed)
	}
	fmt.Fprintf(&sb, " %.1f runs/s", s.RunsPerSec)
	if s.ETA > 0 {
		fmt.Fprintf(&sb, " eta %s", s.ETA.Round(time.Second))
	}
	fmt.Fprintf(&sb, " util %.0f%%", 100*s.Utilization)
	for o := classify.Outcome(0); int(o) < classify.NumOutcomes; o++ {
		if s.Outcomes[o] > 0 {
			fmt.Fprintf(&sb, " %s:%d", o, s.Outcomes[o])
		}
	}
	return sb.String()
}

// Ticker prints a snapshot line to w every interval until the returned stop
// function is called. A nil receiver or non-positive interval yields a
// no-op stop function.
func (p *Progress) Ticker(w io.Writer, every time.Duration) (stop func()) {
	if p == nil || every <= 0 {
		return func() {}
	}
	t := time.NewTicker(every)
	quit := make(chan struct{})
	var once sync.Once
	go func() {
		for {
			select {
			case <-t.C:
				fmt.Fprintln(w, p.Snapshot())
			case <-quit:
				return
			}
		}
	}()
	return func() {
		once.Do(func() {
			t.Stop()
			close(quit)
		})
	}
}
