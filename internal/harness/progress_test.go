package harness

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/classify"
)

func TestProgressNilReceiverIsSafe(t *testing.T) {
	var p *Progress
	p.begin(10, 2)
	p.noteResumed(3)
	p.noteStart()
	p.noteDone(classify.Vanished, time.Millisecond)
	if s := p.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil Snapshot = %+v, want zero", s)
	}
	p.Ticker(&bytes.Buffer{}, time.Millisecond)() // stop must also be a no-op
}

func TestProgressSnapshotCounts(t *testing.T) {
	p := &Progress{}
	p.begin(10, 4)
	p.noteResumed(2)
	for i := 0; i < 3; i++ {
		p.noteStart()
	}
	p.noteDone(classify.Vanished, 5*time.Millisecond)
	p.noteDone(classify.Crashed, 5*time.Millisecond)

	s := p.Snapshot()
	if s.Total != 10 || s.Done != 4 || s.Resumed != 2 || s.Running != 1 {
		t.Errorf("snapshot = %+v, want Total 10, Done 4, Resumed 2, Running 1", s)
	}
	if s.Outcomes[classify.Vanished] != 1 || s.Outcomes[classify.Crashed] != 1 {
		t.Errorf("outcomes = %v", s.Outcomes)
	}
	if s.Elapsed <= 0 {
		t.Errorf("elapsed = %v, want > 0", s.Elapsed)
	}
	// Two executed runs over positive elapsed time: rate and ETA appear.
	if s.RunsPerSec <= 0 {
		t.Errorf("runs/sec = %v, want > 0", s.RunsPerSec)
	}
	if s.ETA <= 0 {
		t.Errorf("eta = %v, want > 0", s.ETA)
	}
	if s.Utilization < 0 || s.Utilization > 1 {
		t.Errorf("utilization = %v, want in [0,1]", s.Utilization)
	}
	if !strings.Contains(s.String(), "4/10") {
		t.Errorf("String() = %q, want to mention 4/10", s.String())
	}
}

func TestProgressUtilizationClamped(t *testing.T) {
	p := &Progress{}
	p.begin(1, 1)
	p.noteStart()
	// Report far more busy time than has elapsed: utilization clamps to 1.
	p.noteDone(classify.Vanished, time.Hour)
	if u := p.Snapshot().Utilization; u != 1 {
		t.Errorf("utilization = %v, want clamped to 1", u)
	}
}

func TestProgressConcurrentUse(t *testing.T) {
	p := &Progress{}
	p.begin(100, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				p.noteStart()
				p.Snapshot()
				p.noteDone(classify.WrongOutput, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := p.Snapshot()
	if s.Done != 200 || s.Running != 0 {
		t.Errorf("after concurrent updates: Done %d Running %d, want 200 and 0", s.Done, s.Running)
	}
}

func TestProgressTickerWritesAndStops(t *testing.T) {
	p := &Progress{}
	p.begin(5, 1)
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(b []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(b)
	})
	stop := p.Ticker(w, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := buf.Len()
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ticker wrote nothing within 2s")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(buf.String(), "0/5") {
		t.Errorf("ticker output = %q, want a 0/5 status line", buf.String())
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(b []byte) (int, error) { return f(b) }

// TestProgressReuseAcrossCampaigns is the regression test for the
// begin-does-not-reset bug: a Progress reused across sequential
// campaigns (or shard runs) must start each one from zero instead of
// double-counting the previous campaign's done/resumed/outcome tallies.
func TestProgressReuseAcrossCampaigns(t *testing.T) {
	p := &Progress{}

	// Campaign one: 10 runs, 2 resumed, 8 executed.
	p.begin(10, 4)
	p.noteResumed(2)
	for i := 0; i < 8; i++ {
		p.noteStart()
		p.noteDone(classify.WrongOutput, 50*time.Millisecond)
	}
	if s := p.Snapshot(); s.Done != 10 {
		t.Fatalf("first campaign Done = %d, want 10", s.Done)
	}

	// Campaign two on the same Progress: everything restarts from zero.
	p.begin(5, 2)
	s := p.Snapshot()
	if s.Total != 5 || s.Done != 0 || s.Resumed != 0 || s.Running != 0 {
		t.Errorf("reused Progress carried counts over: %+v", s)
	}
	if s.Outcomes != ([classify.NumOutcomes]int{}) {
		t.Errorf("reused Progress carried outcomes over: %v", s.Outcomes)
	}
	if s.Utilization != 0 {
		t.Errorf("reused Progress carried busy time over: utilization %v", s.Utilization)
	}

	p.noteStart()
	p.noteDone(classify.Vanished, 10*time.Millisecond)
	s = p.Snapshot()
	if s.Done != 1 || s.Outcomes[classify.Vanished] != 1 || s.Outcomes[classify.WrongOutput] != 0 {
		t.Errorf("second campaign counts wrong: %+v", s)
	}
}

// TestProgressReuseEndToEnd runs two real campaigns through one shared
// Progress and checks the second campaign's snapshot stands alone.
func TestProgressReuseEndToEnd(t *testing.T) {
	app := apps.NewHydro()
	p := &Progress{}
	cfg := CampaignConfig{
		App:    app,
		Params: app.TestParams(),

		Progress: p, Sampling: Sampling{Runs: 6, Seed: 7}, Execution: Execution{Workers: 2},
	}
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Runs = 4
	cfg.Seed = 8
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
	s := p.Snapshot()
	if s.Total != 4 || s.Done != 4 || s.Resumed != 0 {
		t.Errorf("after second campaign: Total=%d Done=%d Resumed=%d, want 4/4/0", s.Total, s.Done, s.Resumed)
	}
	total := 0
	for _, n := range s.Outcomes {
		total += n
	}
	if total != 4 {
		t.Errorf("outcome counts sum to %d, want 4 (%v)", total, s.Outcomes)
	}
}
