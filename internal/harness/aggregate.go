package harness

import (
	"sort"

	"repro/internal/analytics"
	"repro/internal/classify"
	"repro/internal/model"
)

// aggregator folds completed experiments into campaign-level results in a
// single streaming pass, so the campaign's memory footprint is bounded by
// the retention configuration (profiles per class, summary cap) rather
// than by the run count.
//
// Every retention rule is order-independent: it depends only on experiment
// IDs and contents, never on arrival order. Any interleaving of workers —
// and any split between journal replay and live execution on resume —
// therefore yields byte-identical results, matching what the historical
// sequential aggregation produced.
type aggregator struct {
	keepProfiles int
	maxSummaries int // 0: retain every summary

	tally        classify.Tally
	structTotals map[string]int
	summaries    []ExperimentSummary
	profiles     map[classify.Outcome][]Profile
	fits         []idFit
	spread       SpreadSeries
	hasSpread    bool

	// strata accumulates per-stratum outcome tallies; nil unless the
	// campaign is stratified. phases labels the indices.
	strata map[int]classify.Tally
	phases int

	// sites accumulates per-static-site outcome and pattern tallies; nil
	// unless per-site analytics are enabled (Sampling.Sites). siteMap
	// labels the ordinals at intoPartial time; every shard derives the
	// same labels from the same golden profile.
	sites   map[int]*siteAgg
	siteMap *siteMap
}

// siteAgg is one static site's running aggregate.
type siteAgg struct {
	tally  classify.Tally
	shapes analytics.ShapeCounts
	causes analytics.CauseCounts
}

// idFit carries a run fit with its experiment ID so the model is built
// from fits in ID order regardless of completion order (floating-point
// accumulation is order-sensitive).
type idFit struct {
	id      int
	fit     model.RunFit
	stratum int
}

func newAggregator(cfg CampaignConfig) *aggregator {
	a := &aggregator{
		keepProfiles: cfg.KeepProfiles,
		maxSummaries: cfg.MaxSummaries,
		structTotals: make(map[string]int),
		profiles:     make(map[classify.Outcome][]Profile),
	}
	if cfg.stratified() {
		a.strata = make(map[int]classify.Tally)
		a.phases = cfg.Sampling.phases()
	}
	if cfg.Sites {
		a.sites = make(map[int]*siteAgg)
	}
	return a
}

// add folds one completed experiment in. Not safe for concurrent use; the
// campaign engine funnels every completion through one goroutine.
func (a *aggregator) add(o expOut) {
	a.tally.Add(o.sum.Outcome)
	for k, v := range o.structCML {
		a.structTotals[k] += v
	}
	a.addSummary(o.sum)
	if a.strata != nil {
		t := a.strata[o.sum.Stratum]
		t.Add(o.sum.Outcome)
		a.strata[o.sum.Stratum] = t
	}
	if a.sites != nil && o.sum.Pattern != nil {
		p := o.sum.Pattern
		s := a.sites[p.Site]
		if s == nil {
			s = &siteAgg{}
			a.sites[p.Site] = s
		}
		s.tally.Add(o.sum.Outcome)
		if p.Shape >= 0 && int(p.Shape) < analytics.NumShapes {
			s.shapes[p.Shape]++
		}
		if p.Cause >= 0 && int(p.Cause) < analytics.NumCauses {
			s.causes[p.Cause]++
		}
	}
	if o.sum.HasFit {
		a.fits = append(a.fits, idFit{id: o.sum.ID, fit: o.sum.Fit, stratum: o.sum.Stratum})
	}
	if len(o.points) >= 3 {
		a.addProfile(Profile{ID: o.sum.ID, Outcome: o.sum.Outcome, Points: o.points})
	}
	// Widest spread wins; ties go to the lowest experiment ID, as the
	// historical in-order scan did.
	if n := len(o.spread); n > 0 {
		if !a.hasSpread || n > len(a.spread.Points) ||
			(n == len(a.spread.Points) && o.sum.ID < a.spread.ID) {
			a.spread = SpreadSeries{ID: o.sum.ID, Points: o.spread}
			a.hasSpread = true
		}
	}
}

// addSummary retains the summary, honoring the cap by keeping the
// lowest-ID maxSummaries records.
func (a *aggregator) addSummary(s ExperimentSummary) {
	if a.maxSummaries <= 0 {
		a.summaries = append(a.summaries, s)
		return
	}
	a.summaries = insertByID(a.summaries, s, a.maxSummaries,
		func(e ExperimentSummary) int { return e.ID })
}

// addProfile retains per outcome class the keepProfiles qualifying
// profiles with the lowest IDs — the same set the historical sequential
// "first K in ID order" scan selected.
func (a *aggregator) addProfile(p Profile) {
	a.profiles[p.Outcome] = insertByID(a.profiles[p.Outcome], p, a.keepProfiles,
		func(e Profile) int { return e.ID })
}

// insertByID inserts v into the ID-sorted slice s, then truncates to cap,
// dropping the highest ID.
func insertByID[T any](s []T, v T, cap int, id func(T) int) []T {
	if cap <= 0 {
		return s
	}
	i := sort.Search(len(s), func(i int) bool { return id(s[i]) >= id(v) })
	if i == len(s) && len(s) >= cap {
		return s
	}
	var zero T
	s = append(s, zero)
	copy(s[i+1:], s[i:])
	s[i] = v
	if len(s) > cap {
		s = s[:cap]
	}
	return s
}

// intoPartial writes the aggregate into the mergeable partial, every
// retained slice sorted by experiment ID. The propagation model is NOT
// built here — PartialResult.Finalize rebuilds it from the (merged) fits,
// so sharded and single-process campaigns go through the same code path.
func (a *aggregator) intoPartial(p *PartialResult) {
	sort.Slice(a.summaries, func(i, j int) bool { return a.summaries[i].ID < a.summaries[j].ID })
	p.Tally = a.tally
	p.Experiments = a.summaries
	p.StructTotals = a.structTotals

	var profs []Profile
	for _, ps := range a.profiles {
		profs = append(profs, ps...)
	}
	sort.Slice(profs, func(i, j int) bool { return profs[i].ID < profs[j].ID })
	p.Profiles = profs
	p.Spread = a.spread
	p.HasSpread = a.hasSpread

	sort.Slice(a.fits, func(i, j int) bool { return a.fits[i].id < a.fits[j].id })
	fits := make([]IDFit, len(a.fits))
	for i := range a.fits {
		fits[i] = IDFit{ID: a.fits[i].id, Fit: a.fits[i].fit, Stratum: a.fits[i].stratum}
	}
	p.Fits = fits

	if a.strata != nil {
		idxs := make([]int, 0, len(a.strata))
		for s := range a.strata {
			idxs = append(idxs, s)
		}
		sort.Ints(idxs)
		tallies := make([]StratumTally, 0, len(idxs))
		for _, s := range idxs {
			tallies = append(tallies, StratumTally{
				Stratum: s,
				Label:   StratumLabel(s, a.phases),
				Tally:   a.strata[s],
			})
		}
		p.Strata = tallies
	}
	if a.sites != nil {
		ords := make([]int, 0, len(a.sites))
		for s := range a.sites {
			ords = append(ords, s)
		}
		sort.Ints(ords)
		tallies := make([]SiteTally, 0, len(ords))
		for _, s := range ords {
			agg := a.sites[s]
			label := "?"
			if a.siteMap != nil {
				label = a.siteMap.label(s)
			}
			tallies = append(tallies, SiteTally{
				Site:   s,
				Label:  label,
				Tally:  agg.tally,
				Shapes: agg.shapes,
				Causes: agg.causes,
			})
		}
		p.Sites = tallies
	}
}
