package harness

import (
	"fmt"
	"sort"

	"repro/internal/classify"
	"repro/internal/stats"
)

// Adaptive campaign planning. A fixed-N campaign spends its whole budget
// blindly; the adaptive planner (Sampling.TargetCI > 0) spends it in
// deterministic rounds, steering experiments toward the strata whose
// outcome rates are still uncertain and stopping each stratum once every
// rate is pinned within ±TargetCI (95% Wilson half-width).
//
// Everything the planner decides is a pure function of fingerprinted
// configuration plus the outcomes of earlier rounds — and each outcome is
// itself a pure function of the seed (experiment i draws from
// xrand.At(Seed, i)). Worker counts, completion order, and kill/resume
// boundaries therefore cannot change a single decision: a resumed campaign
// re-derives the very round sequence the killed one ran, skips the
// journaled experiments, and continues byte-identically. The planner's
// decisions are journaled as "plan" records for audit; resume does not
// need them.
//
// The policy is split from the engine so a coordinator can run the same
// decisions over remote workers: it consumes only (stratum, outcome)
// pairs, which the integer per-stratum tallies of merged PartialResults
// provide, and emits explicit ID sets, which ShardSpec.IDs dispatches.

// minStratumRuns is the floor before a stratum may stop: below it the
// Wilson interval is meaningless whatever its width.
const minStratumRuns = 8

// adaptiveRoundSize fixes the per-round experiment count as a pure
// function of the budget — never of worker count — so round boundaries
// are identical everywhere.
func adaptiveRoundSize(budget int) int {
	r := budget / 8
	if r < 16 {
		r = 16
	}
	if r > 512 {
		r = 512
	}
	if r > budget {
		r = budget
	}
	return r
}

// roundAlloc is one stratum's slice of a planner round.
type roundAlloc struct {
	Stratum int    `json:"stratum"`
	Label   string `json:"label"`
	IDs     []int  `json:"ids"`
}

// adaptivePolicy is the pure decision core: per-stratum ID pools in
// ascending order, per-stratum outcome tallies, and a deterministic
// allocator. It never executes anything.
type adaptivePolicy struct {
	target    float64
	phases    int
	roundSize int
	// pools hold each stratum's not-yet-dispatched IDs, ascending.
	pools map[int][]int
	// order is the sorted stratum index set (iteration must never follow
	// map order).
	order   []int
	tallies map[int]classify.Tally
}

// newAdaptivePolicy buckets the budget's experiment IDs into strata by
// drawing each ID's fault plan from its position-addressable stream —
// exactly the plan the experiment will run.
func newAdaptivePolicy(cfg CampaignConfig, ids []int, strata *Strata, sites []uint64) *adaptivePolicy {
	p := &adaptivePolicy{
		target:    cfg.TargetCI,
		phases:    strata.Phases,
		roundSize: adaptiveRoundSize(len(ids)),
		pools:     make(map[int][]int),
		tallies:   make(map[int]classify.Tally),
	}
	for _, id := range ids {
		s := strata.StratumOf(planFor(cfg, id, sites))
		p.pools[s] = append(p.pools[s], id)
	}
	for s := range p.pools {
		p.order = append(p.order, s)
	}
	sort.Ints(p.order)
	return p
}

// deficit estimates how many more experiments stratum s needs: the Wald
// sample size for its most uncertain outcome rate, floored at
// minStratumRuns, minus what it has — clamped to its remaining pool. A
// stratum that met the target (or ran dry) has deficit 0 and is closed.
func (p *adaptivePolicy) deficit(s int) int {
	pool := p.pools[s]
	if len(pool) == 0 {
		return 0
	}
	t := p.tallies[s]
	if t.Total >= minStratumRuns && maxHalfWidth(t) <= p.target {
		return 0
	}
	need := stats.WaldSampleSize(worstP(t), p.target, stats.Z95)
	if need < minStratumRuns {
		need = minStratumRuns
	}
	d := need - t.Total
	if d < 1 {
		// The cheap Wald estimate says enough, the Wilson stop check says
		// not yet (Wilson is wider near the boundary): keep sampling.
		d = 1
	}
	if d > len(pool) {
		d = len(pool)
	}
	return d
}

// worstP returns the observed outcome proportion with the largest binomial
// variance p(1-p) — the rate that needs the most samples to pin — or 0.5
// before any observation.
func worstP(t classify.Tally) float64 {
	if t.Total == 0 {
		return 0.5
	}
	best, bestVar := 0.5, -1.0
	for o := 0; o < classify.NumOutcomes; o++ {
		pp := float64(t.Counts[o]) / float64(t.Total)
		if v := pp * (1 - pp); v > bestVar {
			bestVar, best = v, pp
		}
	}
	return best
}

// nextRound allocates the next round across the open strata by
// largest-remainder apportionment proportional to their deficits (integer
// arithmetic only, ties to the lowest stratum index), drawing IDs from
// each pool in ascending order. A nil return means every stratum is
// closed: the campaign reached its target or exhausted its budget.
func (p *adaptivePolicy) nextRound() []roundAlloc {
	type open struct{ stratum, deficit int }
	var opens []open
	total := 0
	for _, s := range p.order {
		if d := p.deficit(s); d > 0 {
			opens = append(opens, open{s, d})
			total += d
		}
	}
	if total == 0 {
		return nil
	}
	size := p.roundSize
	if size > total {
		size = total
	}
	quota := make([]int, len(opens))
	assigned := 0
	type rem struct{ i, r int }
	rems := make([]rem, len(opens))
	for i, o := range opens {
		quota[i] = size * o.deficit / total
		assigned += quota[i]
		rems[i] = rem{i: i, r: size * o.deficit % total}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].r != rems[b].r {
			return rems[a].r > rems[b].r
		}
		return opens[rems[a].i].stratum < opens[rems[b].i].stratum
	})
	// size <= total guarantees some quota is below its deficit while
	// assigned < size, so this terminates.
	for k := 0; assigned < size; k = (k + 1) % len(rems) {
		if i := rems[k].i; quota[i] < opens[i].deficit {
			quota[i]++
			assigned++
		}
	}
	out := make([]roundAlloc, 0, len(opens))
	for i, o := range opens {
		if quota[i] == 0 {
			continue
		}
		pool := p.pools[o.stratum]
		take := append([]int(nil), pool[:quota[i]]...)
		p.pools[o.stratum] = pool[quota[i]:]
		out = append(out, roundAlloc{
			Stratum: o.stratum,
			Label:   StratumLabel(o.stratum, p.phases),
			IDs:     take,
		})
	}
	return out
}

// fold feeds one completed round's outcomes back into the policy. Integer
// tallies commute, so the fold order within a round is irrelevant.
func (p *adaptivePolicy) fold(round []roundAlloc, outcomes map[int]classify.Outcome) {
	for _, a := range round {
		t := p.tallies[a.Stratum]
		for _, id := range a.IDs {
			t.Add(outcomes[id])
		}
		p.tallies[a.Stratum] = t
	}
}

// runAdaptive is the engine's sequential planning loop over the shard's
// budget ids: compute a round, execute its not-yet-completed IDs, feed the
// outcomes back, repeat until every stratum meets the target CI or runs
// dry. Replayed journal records participate exactly like live runs — their
// outcomes are pure functions of the seed, so the re-derived decision
// sequence matches the one the killed campaign journaled.
func (e *campaignEngine) runAdaptive(ids []int) error {
	pol := newAdaptivePolicy(e.cfg, ids, e.strata, e.part.GoldenSites)
	for round := 1; ; round++ {
		allocs := pol.nextRound()
		if allocs == nil {
			e.part.AdaptiveDone = true
			return nil
		}
		var torun []int
		for _, a := range allocs {
			for _, id := range a.IDs {
				if !e.completed[id] {
					torun = append(torun, id)
				}
			}
		}
		sort.Ints(torun)
		if len(torun) > 0 {
			// Journal the decision before acting on it. Rounds fully
			// replayed from the journal are not re-recorded: their plan
			// lines were written by the process that ran them.
			if e.journal != nil {
				if err := e.journal.appendPlan(round, e.cfg.TargetCI, allocs, torun); err != nil {
					return fmt.Errorf("harness: checkpoint plan append: %w", err)
				}
			}
			if err := e.runIDs(torun); err != nil {
				return err
			}
		}
		if e.halted {
			// Interrupted mid-round: AdaptiveDone stays false, the caller
			// reports ErrInterrupted, and the journal holds every completed
			// experiment for the resume to replay.
			return nil
		}
		pol.fold(allocs, e.outcomes)
	}
}

// AdaptivePlanner is the exported decision core for coordinators that
// execute adaptive rounds on remote workers. It makes exactly the
// decisions the local engine makes: NextRound yields the experiment IDs of
// the next deterministic round (nil once every stratum met the target CI
// or ran dry), the coordinator executes them wherever it likes — typically
// as explicit-ID ShardSpecs on peer workers — and Fold feeds the round's
// merged per-stratum tallies back. Outcomes are pure functions of the
// seed, so a coordinated adaptive campaign runs the same experiment set,
// and merges to the same bytes, as a local adaptive run.
type AdaptivePlanner struct {
	pol  *adaptivePolicy
	done bool
}

// NewAdaptivePlanner builds the planner for an adaptive configuration
// (Sampling.TargetCI > 0) and its stratification (BuildStrata of the same
// config).
func NewAdaptivePlanner(cfg CampaignConfig, strata *Strata) (*AdaptivePlanner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if !cfg.Adaptive() {
		return nil, &FieldError{Field: "Sampling.TargetCI", Reason: "adaptive planning needs a target CI"}
	}
	ids := make([]int, cfg.Runs)
	for i := range ids {
		ids[i] = i
	}
	return &AdaptivePlanner{pol: newAdaptivePolicy(cfg, ids, strata, strata.sites)}, nil
}

// NextRound returns the next round's experiment IDs in ascending order,
// or nil when the campaign is done (Done() turns true).
func (p *AdaptivePlanner) NextRound() []int {
	if p.done {
		return nil
	}
	allocs := p.pol.nextRound()
	if allocs == nil {
		p.done = true
		return nil
	}
	var ids []int
	for _, a := range allocs {
		ids = append(ids, a.IDs...)
	}
	sort.Ints(ids)
	return ids
}

// Done reports whether every stratum has met the target CI or exhausted
// its pool; the executed subset then finalizes with AdaptiveDone set.
func (p *AdaptivePlanner) Done() bool { return p.done }

// Fold feeds one executed round's per-stratum outcome tallies back into
// the policy. The Strata field of the round's merged PartialResult is
// exactly this shape; integer tallies commute, so worker merge order is
// irrelevant.
func (p *AdaptivePlanner) Fold(tallies []StratumTally) {
	for _, st := range tallies {
		t := p.pol.tallies[st.Stratum]
		for o := 0; o < classify.NumOutcomes; o++ {
			t.Counts[o] += st.Tally.Counts[o]
		}
		t.Total += st.Tally.Total
		p.pol.tallies[st.Stratum] = t
	}
}

// PlanRoundShards splits one planner round's IDs across n workers as
// contiguous near-equal explicit-ID shard specs carrying the campaign
// fingerprint. Shards that would be empty are omitted, so the result may
// be shorter than n.
func PlanRoundShards(cfg CampaignConfig, ids []int, n int) []ShardSpec {
	if n < 1 {
		n = 1
	}
	fp := cfg.Fingerprint()
	base, rem := len(ids)/n, len(ids)%n
	specs := make([]ShardSpec, 0, n)
	from := 0
	for i := 0; i < n && from < len(ids); i++ {
		size := base
		if i < rem {
			size++
		}
		if size == 0 {
			continue
		}
		specs = append(specs, ShardSpec{
			Index:       i,
			Shards:      n,
			IDs:         append([]int(nil), ids[from:from+size]...),
			Runs:        cfg.Runs,
			Fingerprint: fp,
		})
		from += size
	}
	return specs
}

// checkAdaptiveResume diagnoses the one resume mismatch Validate cannot
// catch: pointing an adaptive campaign (TargetCI set) at a journal written
// by the same campaign WITHOUT the adaptive policy, or vice versa. The
// fingerprints differ only by the sampling-policy suffix, so the generic
// mismatch error is technically right but opaque; this returns a typed
// FieldError naming the offending knob instead.
func checkAdaptiveResume(cfg CampaignConfig, spec ShardSpec, wantFP string) error {
	hdrFP, err := journalHeaderFP(cfg.Checkpoint)
	if err != nil || hdrFP == "" || hdrFP == wantFP {
		// Absent, unreadable, or matching journals flow to readJournal,
		// which reports those conditions properly.
		return nil
	}
	legacy := cfg
	legacy.TargetCI = 0
	legacy.Strata = 0
	if hdrFP == journalFingerprint(legacy.Fingerprint(), spec) {
		return &FieldError{Field: "Sampling.TargetCI", Reason: fmt.Sprintf(
			"checkpoint %s was written by a non-adaptive campaign; drop the target CI or start a fresh checkpoint",
			cfg.Checkpoint)}
	}
	return nil
}
