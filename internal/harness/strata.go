package harness

import (
	"fmt"
	"sort"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/stats"
	"repro/internal/transform"
)

// Stratification. The adaptive planner partitions a campaign's experiment
// space by where the (first) fault lands: the instruction class consuming
// the corrupted operand (arith / mem / cmp / ctl, from a one-off golden
// profiling pass with a vm.SiteObserver) crossed with the golden-execution
// phase of the dynamic site (which fraction of the rank's fault-free site
// space precedes it). Both axes are pure functions of the seed and the
// golden execution, so an experiment's stratum is identical no matter
// where, when, or by whom it is computed — the property that lets shards
// tally strata independently and a coordinator steer budget from merged
// tallies alone.

// defaultStrataPhases is the phase count used when TargetCI is set but
// Strata is not.
const defaultStrataPhases = 4

// stratumClasses are the instruction-class buckets, in stratum-index
// order. Sites whose consumer is none of the injectable classes (possible
// at function tails) land in "other".
var stratumClasses = [...]struct {
	class ir.Class
	label string
}{
	{ir.ClassArith, "arith"},
	{ir.ClassMem, "mem"},
	{ir.ClassCmp, "cmp"},
	{ir.ClassControl, "ctl"},
	{ir.ClassNone, "other"},
}

// numStratumClasses is the instruction-class axis length.
const numStratumClasses = len(stratumClasses)

func classBucket(c ir.Class) int {
	for i, b := range stratumClasses {
		if b.class == c {
			return i
		}
	}
	return numStratumClasses - 1 // "other"
}

// Strata maps fault plans to stratum indices for one campaign
// configuration. Index 0 is the catch-all for zero-fault plans (legal in
// multi-fault mode); indices 1..NumStrata()-1 are class × phase cells.
type Strata struct {
	// Phases is the number of golden-execution phases per class.
	Phases int
	// sites are the per-rank golden dynamic site counts.
	sites []uint64
	// classes hold one ir.Class byte per dynamic site, per rank.
	classes [][]byte
}

// BuildStrata profiles the campaign's golden execution and returns its
// stratification. It runs the instrumented program once with a site
// observer (slower than a plain golden run, paid once per campaign); the
// result depends only on (app, params), never on the seed or budget.
func BuildStrata(cfg CampaignConfig) (*Strata, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	prog, err := cfg.App.Build(cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("harness: build %s: %w", cfg.App.Name(), err)
	}
	inst, err := transform.Instrument(prog, cfg.transformOptions())
	if err != nil {
		return nil, fmt.Errorf("harness: instrument %s: %w", cfg.App.Name(), err)
	}
	return buildStrata(inst, cfg)
}

// buildStrata is BuildStrata over an already-instrumented program (the
// engine shares its build). cfg must have defaults applied.
func buildStrata(inst *ir.Program, cfg CampaignConfig) (*Strata, error) {
	sites, classes, _, err := profileSiteSpace(inst, cfg)
	if err != nil {
		return nil, err
	}
	return &Strata{Phases: cfg.Sampling.phases(), sites: sites, classes: classes}, nil
}

// profileSiteSpace runs the one-off golden site-observer profile behind
// both stratification and per-site analytics: per-rank golden site counts,
// one consumer-class byte per dynamic site, and the static fim_inj ordinal
// of every dynamic site. All three are pure functions of (app, params), so
// every shard of a campaign derives the same profile independently.
func profileSiteSpace(inst *ir.Program, cfg CampaignConfig) ([]uint64, [][]byte, [][]int32, error) {
	out, classes, statics := core.RunGoldenSiteClasses(inst, core.RunConfig{Ranks: cfg.Params.Ranks})
	if out.Err != nil {
		return nil, nil, nil, fmt.Errorf("harness: site-class profile of %s failed: %w", cfg.App.Name(), out.Err)
	}
	sites := out.SiteCounts()
	for r, n := range sites {
		if uint64(len(classes[r])) != n {
			return nil, nil, nil, fmt.Errorf("harness: site-class profile of %s: rank %d observed %d of %d sites",
				cfg.App.Name(), r, len(classes[r]), n)
		}
	}
	return sites, classes, statics, nil
}

// NumStrata is the stratum index space size: the zero-fault catch-all plus
// one cell per class × phase.
func (s *Strata) NumStrata() int { return 1 + numStratumClasses*s.Phases }

// StratumOf assigns a fault plan to its stratum: the class × phase cell of
// the plan's first fault, or 0 for an empty plan. Out-of-profile faults
// (impossible for plans drawn against this golden execution) land in 0.
func (s *Strata) StratumOf(plan inject.Plan) int {
	if len(plan.Faults) == 0 {
		return 0
	}
	f := plan.Faults[0]
	if f.Rank < 0 || f.Rank >= len(s.classes) || f.Site >= uint64(len(s.classes[f.Rank])) {
		return 0
	}
	class := ir.Class(s.classes[f.Rank][f.Site])
	phase := int(f.Site * uint64(s.Phases) / s.sites[f.Rank])
	if phase >= s.Phases {
		phase = s.Phases - 1
	}
	return 1 + classBucket(class)*s.Phases + phase
}

// StratumLabel names a stratum index for reports and journals, e.g.
// "arith/p2" (arithmetic consumers, third execution phase) or "none".
func StratumLabel(stratum, phases int) string {
	if stratum <= 0 || phases <= 0 {
		return "none"
	}
	b := (stratum - 1) / phases
	p := (stratum - 1) % phases
	if b >= numStratumClasses {
		return "none"
	}
	return fmt.Sprintf("%s/p%d", stratumClasses[b].label, p)
}

// StratumTally is the mergeable per-stratum aggregate a PartialResult
// carries when the campaign is stratified: pure integer outcome counts, so
// merging is commutative and associative like the campaign tally itself.
type StratumTally struct {
	Stratum int            `json:"stratum"`
	Label   string         `json:"label"`
	Tally   classify.Tally `json:"tally"`
}

// maxHalfWidth is the planner's stopping metric for one stratum: the
// widest 95% Wilson half-width over its per-outcome rates and its
// aggregate vulnerability rate (WO+PEX+C). When it reaches the target,
// every reported rate of the stratum is pinned within ±target.
func maxHalfWidth(t classify.Tally) float64 {
	if t.Total == 0 {
		return 1
	}
	bad := t.Counts[classify.WrongOutput] +
		t.Counts[classify.ProlongedExecution] +
		t.Counts[classify.Crashed]
	w := stats.WilsonHalfWidth(bad, t.Total, stats.Z95)
	for o := 0; o < classify.NumOutcomes; o++ {
		if h := stats.WilsonHalfWidth(t.Counts[o], t.Total, stats.Z95); h > w {
			w = h
		}
	}
	return w
}

// mergeStratumTallies unions two per-stratum tally sets by stratum index.
// Labels must agree — a mismatch means the partials were stratified under
// different configurations and must not combine.
func mergeStratumTallies(a, b []StratumTally) ([]StratumTally, error) {
	if len(b) == 0 {
		return a, nil
	}
	if len(a) == 0 {
		return append([]StratumTally(nil), b...), nil
	}
	byIdx := make(map[int]StratumTally, len(a)+len(b))
	for _, st := range a {
		byIdx[st.Stratum] = st
	}
	for _, st := range b {
		cur, ok := byIdx[st.Stratum]
		if !ok {
			byIdx[st.Stratum] = st
			continue
		}
		if cur.Label != st.Label {
			return nil, fmt.Errorf("%w: stratum %d labeled %q vs %q",
				ErrMergeMismatch, st.Stratum, cur.Label, st.Label)
		}
		for o := 0; o < classify.NumOutcomes; o++ {
			cur.Tally.Counts[o] += st.Tally.Counts[o]
		}
		cur.Tally.Total += st.Tally.Total
		byIdx[st.Stratum] = cur
	}
	out := make([]StratumTally, 0, len(byIdx))
	for _, st := range byIdx {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stratum < out[j].Stratum })
	return out, nil
}

// StratumReport is one row of the final per-stratum vulnerability table.
type StratumReport struct {
	Stratum int            `json:"stratum"`
	Label   string         `json:"label"`
	Tally   classify.Tally `json:"tally"`
	// Rate is the stratum's vulnerability: the fraction of its experiments
	// whose fault was not masked (everything but Vanished and ONA).
	Rate float64 `json:"rate"`
	// HalfWidth is the 95% Wilson half-width of Rate.
	HalfWidth float64 `json:"halfWidth"`
	// MaxHalfWidth is the planner's stopping metric: the widest Wilson
	// half-width over all five outcome rates.
	MaxHalfWidth float64 `json:"maxHalfWidth"`
	// FPS aggregates the stratum's per-run propagation-speed fits (the
	// growth rate A of Eq. 1) as mergeable moments.
	FPS stats.Moments `json:"fps"`
}

// buildStrataReports derives the final vulnerability table from merged
// per-stratum tallies and the merged, ID-sorted fit inputs. Folding the
// fits in ID order keeps the floating-point moments byte-identical across
// worker counts, shard layouts, and merge orders.
func buildStrataReports(tallies []StratumTally, fits []IDFit) []StratumReport {
	if len(tallies) == 0 {
		return nil
	}
	moments := make(map[int]*stats.Moments, len(tallies))
	for _, f := range fits {
		m, ok := moments[f.Stratum]
		if !ok {
			m = &stats.Moments{}
			moments[f.Stratum] = m
		}
		m.Add(f.Fit.A)
	}
	out := make([]StratumReport, 0, len(tallies))
	for _, st := range tallies {
		bad := st.Tally.Counts[classify.WrongOutput] +
			st.Tally.Counts[classify.ProlongedExecution] +
			st.Tally.Counts[classify.Crashed]
		rep := StratumReport{
			Stratum:      st.Stratum,
			Label:        st.Label,
			Tally:        st.Tally,
			HalfWidth:    stats.WilsonHalfWidth(bad, st.Tally.Total, stats.Z95),
			MaxHalfWidth: maxHalfWidth(st.Tally),
		}
		if st.Tally.Total > 0 {
			rep.Rate = float64(bad) / float64(st.Tally.Total)
		}
		if m, ok := moments[st.Stratum]; ok {
			rep.FPS = *m
		}
		out = append(out, rep)
	}
	return out
}
