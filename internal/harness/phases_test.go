package harness

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/classify"
)

// TestPhaseTracingCampaign: with Timings and OnPhase set, every executed
// experiment is traced, the per-outcome histogram counts match the
// deterministic outcome tally, and every trace has its phases populated.
func TestPhaseTracingCampaign(t *testing.T) {
	app := apps.NewHydro()
	timings := NewCampaignTimings()
	var mu sync.Mutex
	var traces []PhaseTrace
	cfg := CampaignConfig{
		App:    app,
		Params: app.TestParams(),

		Timings: timings,
		OnPhase: func(tr PhaseTrace) {
			mu.Lock()
			traces = append(traces, tr)
			mu.Unlock()
		}, Sampling: Sampling{Runs: 12, Seed: 99}, Execution: Execution{Workers: 3},
	}
	res, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != cfg.Runs {
		t.Fatalf("OnPhase saw %d experiments, want %d", len(traces), cfg.Runs)
	}
	if got := timings.Count(); got != uint64(cfg.Runs) {
		t.Errorf("timings counted %d experiments, want %d", got, cfg.Runs)
	}
	for o := 0; o < classify.NumOutcomes; o++ {
		if got, want := timings.ByOutcome[o].Count(), uint64(res.Tally.Counts[o]); got != want {
			t.Errorf("outcome %s: histogram count %d != tally %d", classify.Outcome(o), got, want)
		}
	}
	seen := map[int]bool{}
	for _, tr := range traces {
		if seen[tr.ID] {
			t.Errorf("experiment %d traced twice", tr.ID)
		}
		seen[tr.ID] = true
		if tr.Execute <= 0 || tr.Total < tr.Execute {
			t.Errorf("experiment %d: implausible phases %+v", tr.ID, tr)
		}
	}
}

// TestPhaseTracingDeterminism: tracing must not perturb results — the
// same campaign with and without hooks yields identical aggregates.
func TestPhaseTracingDeterminism(t *testing.T) {
	app := apps.NewHydro()
	cfg := CampaignConfig{App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 8, Seed: 3}, Execution: Execution{Workers: 2}}
	plain, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Timings = NewCampaignTimings()
	cfg.OnPhase = func(PhaseTrace) {}
	traced, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(traced)
	if string(a) != string(b) {
		t.Error("tracing changed campaign results")
	}
}

// TestShardTimingsMerge: shards run with tracing carry their histograms
// in the PartialResult, and merging reproduces the unsharded campaign's
// distribution counts — outcome-for-outcome — plus byte-identical
// scientific results. (Latencies are wall-clock and so not
// deterministic; the counts are.)
func TestShardTimingsMerge(t *testing.T) {
	app := apps.NewHydro()
	cfg := CampaignConfig{
		App:    app,
		Params: app.TestParams(), Sampling: Sampling{Runs: 18, Seed: 5150}, Execution: Execution{Workers: 2},
	}
	refCfg := cfg
	refCfg.Timings = NewCampaignTimings()
	ref, err := RunCampaign(refCfg)
	if err != nil {
		t.Fatal(err)
	}

	specs, err := PlanShards(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	var parts []*PartialResult
	for _, spec := range specs {
		scfg := cfg
		scfg.Timings = NewCampaignTimings()
		p, err := RunShard(scfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		if p.Timings == nil || p.Timings.Count() == 0 {
			t.Fatalf("shard %d carried no timings", spec.Index)
		}
		// Round-trip through JSON like the service transport does.
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back PartialResult
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, &back)
	}

	acc := parts[0].Clone()
	for _, p := range parts[1:] {
		if err := acc.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := acc.Timings.Count(); got != uint64(cfg.Runs) {
		t.Errorf("merged timings count %d, want %d", got, cfg.Runs)
	}
	for o := 0; o < classify.NumOutcomes; o++ {
		if got, want := acc.Timings.ByOutcome[o].Count(), refCfg.Timings.ByOutcome[o].Count(); got != want {
			t.Errorf("outcome %s: merged count %d != unsharded count %d", classify.Outcome(o), got, want)
		}
		if got, want := acc.Timings.ByOutcome[o].Count(), uint64(ref.Tally.Counts[o]); got != want {
			t.Errorf("outcome %s: merged count %d != tally %d", classify.Outcome(o), got, want)
		}
	}
	merged, err := acc.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(ref)
	b, _ := json.Marshal(merged)
	if string(a) != string(b) {
		t.Error("merged sharded result differs from unsharded run")
	}
}

// TestJournalTraceStamp: cfg.Trace lands in the checkpoint journal
// header, and a resume under the same fingerprint still works (the
// trace is observational, never validated).
func TestJournalTraceStamp(t *testing.T) {
	app := apps.NewHydro()
	path := filepath.Join(t.TempDir(), "trace.ckpt.jsonl")
	cfg := CampaignConfig{
		App:    app,
		Params: app.TestParams(),

		Trace: "abc123/s0", Sampling: Sampling{Runs: 4, Seed: 11}, Execution: Execution{Workers: 1}, Persistence: Persistence{Checkpoint: path},
	}
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		t.Fatal("empty journal")
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Trace != "abc123/s0" {
		t.Errorf("journal header trace = %q, want abc123/s0", hdr.Trace)
	}
	cfg.Resume = true
	cfg.Trace = "different-resume-trace"
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatalf("resume under a new trace failed: %v", err)
	}
}

// TestCampaignTimingsMergeErrors: nil handling and layout mismatches.
func TestCampaignTimingsMergeErrors(t *testing.T) {
	var nilT *CampaignTimings
	nilT.Observe(PhaseTrace{}) // no-op
	if nilT.Count() != 0 || nilT.Clone() != nil {
		t.Error("nil CampaignTimings misbehaved")
	}
	a := NewCampaignTimings()
	if err := a.Merge(nil); err != nil {
		t.Errorf("nil merge: %v", err)
	}
	a.Observe(PhaseTrace{Outcome: classify.Vanished, Total: 1, Execute: 1})
	c := a.Clone()
	if c.Count() != a.Count() {
		t.Error("clone lost observations")
	}
	c.Observe(PhaseTrace{Outcome: classify.Vanished})
	if c.Count() == a.Count() {
		t.Error("clone aliases the original")
	}
}
