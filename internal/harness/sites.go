package harness

import (
	"fmt"
	"sort"

	"repro/internal/analytics"
	"repro/internal/classify"
	"repro/internal/inject"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/transform"
)

// Per-site propagation analytics (Sampling.Sites). Each experiment's fault
// plan is attributed to the static fim_inj site of its first fault via the
// golden dyn→static profile (the same one-off site-observer run behind
// stratification), and its outcome, CML trajectory shape, and cleanse
// cause are tallied per site. Everything is a pure integer count over
// seed-pure per-experiment records, so per-site tallies merge exactly like
// StratumTally and the ranked table is byte-identical across worker
// counts, shard layouts, snapshot-fork scheduling, and checkpoint resume.

// siteMap resolves planned faults to static injection sites: per-rank
// dyn→static ordinal arrays from the golden site-observer profile, plus
// one label per static site from the transform's SiteInfo table. Both are
// pure functions of (app, params), so every shard of a campaign derives
// the identical map independently.
type siteMap struct {
	statics [][]int32
	labels  []string
}

func newSiteMap(infos []transform.SiteInfo, statics [][]int32) *siteMap {
	labels := make([]string, len(infos))
	for i, in := range infos {
		labels[i] = fmt.Sprintf("%s#%d/%s",
			in.Func, in.Index, stratumClasses[classBucket(in.Class)].label)
	}
	return &siteMap{statics: statics, labels: labels}
}

// staticOf maps the plan's first fault to its static site ordinal.
func (m *siteMap) staticOf(plan inject.Plan) (int, bool) {
	if len(plan.Faults) == 0 {
		return 0, false
	}
	f := plan.Faults[0]
	if f.Rank < 0 || f.Rank >= len(m.statics) || f.Site >= uint64(len(m.statics[f.Rank])) {
		return 0, false
	}
	return int(m.statics[f.Rank][f.Site]), true
}

// label names a static site for reports and journals.
func (m *siteMap) label(site int) string {
	if site >= 0 && site < len(m.labels) {
		return m.labels[site]
	}
	return "?"
}

// patternFor condenses one experiment into its propagation-pattern record:
// the static site of its first fault, the CML trajectory shape, and the
// cleanse cause. Nil for zero-fault plans (legal in multi-fault mode) —
// there is nothing to attribute. Every input is a seed-pure field of the
// summary or the injected rank's retained CML points, so the record is
// deterministic and journals replay it exactly.
func (m *siteMap) patternFor(plan inject.Plan, sum ExperimentSummary, points []trace.Point) *analytics.Pattern {
	site, ok := m.staticOf(plan)
	if !ok {
		return nil
	}
	final := 0
	if n := len(points); n > 0 {
		final = points[n-1].CML
	}
	return &analytics.Pattern{
		Site:  site,
		Shape: analytics.ClassifyShape(points),
		Cause: analytics.ClassifyCause(sum.Fired, sum.MaxCML > 0, final, sum.Outcome),
	}
}

// SiteTally is the mergeable per-static-site aggregate a PartialResult
// carries when per-site analytics are enabled (Sampling.Sites): outcome
// counts plus propagation-pattern counts. Pure integers, so merging is
// commutative and associative exactly like StratumTally.
type SiteTally struct {
	Site   int                   `json:"site"`
	Label  string                `json:"label"`
	Tally  classify.Tally        `json:"tally"`
	Shapes analytics.ShapeCounts `json:"shapes"`
	Causes analytics.CauseCounts `json:"causes"`
}

// mergeSiteTallies unions two per-site tally sets by static site ordinal.
// Labels must agree — a mismatch means the partials were built against
// different programs and must not combine.
func mergeSiteTallies(a, b []SiteTally) ([]SiteTally, error) {
	if len(b) == 0 {
		return a, nil
	}
	if len(a) == 0 {
		return append([]SiteTally(nil), b...), nil
	}
	bySite := make(map[int]SiteTally, len(a)+len(b))
	for _, st := range a {
		bySite[st.Site] = st
	}
	for _, st := range b {
		cur, ok := bySite[st.Site]
		if !ok {
			bySite[st.Site] = st
			continue
		}
		if cur.Label != st.Label {
			return nil, fmt.Errorf("%w: site %d labeled %q vs %q",
				ErrMergeMismatch, st.Site, cur.Label, st.Label)
		}
		for o := 0; o < classify.NumOutcomes; o++ {
			cur.Tally.Counts[o] += st.Tally.Counts[o]
		}
		cur.Tally.Total += st.Tally.Total
		cur.Shapes.Add(st.Shapes)
		cur.Causes.Add(st.Causes)
		bySite[st.Site] = cur
	}
	out := make([]SiteTally, 0, len(bySite))
	for _, st := range bySite {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out, nil
}

// SiteReport is one row of the final per-site vulnerability ranking,
// ordered most-vulnerable first: descending Wilson lower bound on
// P(WO or Crash | flip at site), ties broken by descending point rate and
// then ascending site ordinal.
type SiteReport struct {
	Site   int                   `json:"site"`
	Label  string                `json:"label"`
	Tally  classify.Tally        `json:"tally"`
	Shapes analytics.ShapeCounts `json:"shapes"`
	Causes analytics.CauseCounts `json:"causes"`
	// Rate is the point estimate of P(WO or Crash | flip at site).
	Rate float64 `json:"rate"`
	// HalfWidth is the 95% Wilson half-width of Rate.
	HalfWidth float64 `json:"halfWidth"`
	// LowerBound is the Wilson lower confidence bound, the ranking key.
	LowerBound float64 `json:"lowerBound"`
}

// buildSiteReports derives the ranked vulnerability table from merged
// per-site tallies. Nil in, nil out — legacy partials without site tallies
// finalize byte-identically to earlier releases.
func buildSiteReports(tallies []SiteTally) []SiteReport {
	if len(tallies) == 0 {
		return nil
	}
	in := make([]analytics.SiteStat, len(tallies))
	byOrd := make(map[int]SiteTally, len(tallies))
	for i, st := range tallies {
		in[i] = analytics.SiteStat{
			Site:  st.Site,
			Label: st.Label,
			Bad:   st.Tally.Counts[classify.WrongOutput] + st.Tally.Counts[classify.Crashed],
			Total: st.Tally.Total,
		}
		byOrd[st.Site] = st
	}
	ranked := analytics.RankSites(in, stats.Z95)
	out := make([]SiteReport, len(ranked))
	for i, r := range ranked {
		st := byOrd[r.Site]
		out[i] = SiteReport{
			Site:       r.Site,
			Label:      r.Label,
			Tally:      st.Tally,
			Shapes:     st.Shapes,
			Causes:     st.Causes,
			Rate:       r.Rate,
			HalfWidth:  r.HalfWidth,
			LowerBound: r.LowerBound,
		}
	}
	return out
}

// ProtectTop selects the static site ordinals to protect: the top pct% of
// totalSites static sites, taken from the ranked report (fewer when fewer
// sites were ever observed). The result is sorted ascending — the shape
// CampaignConfig.Protect requires.
func ProtectTop(sites []SiteReport, pct float64, totalSites int) []int {
	ranked := make([]analytics.RankedSite, len(sites))
	for i, s := range sites {
		ranked[i] = analytics.RankedSite{
			Site: s.Site, Label: s.Label,
			Rate: s.Rate, HalfWidth: s.HalfWidth, LowerBound: s.LowerBound,
		}
	}
	return analytics.TopPercent(ranked, pct, totalSites)
}
