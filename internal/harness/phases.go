package harness

import (
	"fmt"
	"time"

	"repro/internal/classify"
	"repro/internal/obs"
)

// PhaseTrace is the timing record of one executed experiment, split into
// the four phases of the injection pipeline: drawing the fault plan
// (inject), rewinding state from a campaign snapshot (restore; zero on the
// re-execution path), the instrumented VM run (execute), and outcome
// classification plus the per-run model fit (classify). Total is the
// experiment's whole wall time (it can slightly exceed the phase sum:
// gate waits and scheduling are not attributed to any phase).
//
// Tracing is off unless CampaignConfig.Timings or OnPhase is set; the
// disabled cost is a couple of nil checks per experiment.
type PhaseTrace struct {
	// ID is the experiment's campaign-wide ID.
	ID      int
	Outcome classify.Outcome
	Inject  time.Duration
	// Restore is the snapshot-fork rewind time; zero for experiments that
	// re-executed from step 0.
	Restore time.Duration
	Execute time.Duration
	// Classify covers classification and model fitting.
	Classify time.Duration
	Total    time.Duration
	// Forked reports whether the experiment forked from a campaign
	// snapshot; the restore-cost fields below are meaningful only then.
	Forked bool
	// RestoreBytes is the number of bytes the snapshot restore actually
	// copied. With delta restore this is proportional to the state the
	// fork's previous occupant dirtied, not to golden-state size.
	RestoreBytes int64
	// RestoreFrac is the fraction of memory blocks the restore rewrote
	// (1.0 on the full-copy path).
	RestoreFrac float64
}

// CampaignTimings aggregates PhaseTraces into mergeable fixed-bucket
// histograms: total latency per outcome class plus one histogram per
// phase. Shard runs stamp their timings into the PartialResult, and
// PartialResult.Merge folds them together exactly (see obs.Histogram) —
// the same carry-and-merge discipline as stats.Moments, applied to
// distributions. Timings never influence results and are excluded from
// the campaign fingerprint.
type CampaignTimings struct {
	// ByOutcome holds total experiment latency per outcome class,
	// indexed by classify.Outcome.
	ByOutcome [classify.NumOutcomes]*obs.Histogram `json:"byOutcome"`
	Inject    *obs.Histogram                       `json:"inject"`
	// Restore records the snapshot-fork rewind phase. Every executed
	// experiment is observed (zero for re-execution-path runs), so the
	// phase counts stay symmetric across modes; partials from older
	// builds carry a nil Restore, which Merge treats as empty.
	Restore  *obs.Histogram `json:"restore,omitempty"`
	Execute  *obs.Histogram `json:"execute"`
	Classify *obs.Histogram `json:"classify"`
	// RestoreFrac records the dirty-block fraction of forked restores
	// (delta restores rewrite only the blocks dirtied since the last
	// fork; full copies observe 1.0). Unlike Restore, only forked
	// experiments are observed — its count doubles as the fork count.
	// Partials from older builds carry nil, which Merge treats as empty.
	RestoreFrac *obs.Histogram `json:"restoreFrac,omitempty"`
	// RestoreBytes records the bytes copied per forked restore, same
	// observation rule as RestoreFrac.
	RestoreBytes *obs.Histogram `json:"restoreBytes,omitempty"`
}

// NewCampaignTimings returns timings over the stack's standard latency
// buckets. Every campaign uses the same fixed layout so any two
// CampaignTimings merge.
func NewCampaignTimings() *CampaignTimings {
	t := &CampaignTimings{
		Inject:       obs.NewHistogram(obs.LatencyBuckets()),
		Restore:      obs.NewHistogram(obs.LatencyBuckets()),
		Execute:      obs.NewHistogram(obs.LatencyBuckets()),
		Classify:     obs.NewHistogram(obs.LatencyBuckets()),
		RestoreFrac:  obs.NewHistogram(obs.FractionBuckets()),
		RestoreBytes: obs.NewHistogram(obs.SizeBuckets()),
	}
	for i := range t.ByOutcome {
		t.ByOutcome[i] = obs.NewHistogram(obs.LatencyBuckets())
	}
	return t
}

// Observe folds one experiment's phase timings in. Safe on a nil
// receiver and for concurrent callers (worker goroutines observe
// directly).
func (t *CampaignTimings) Observe(tr PhaseTrace) {
	if t == nil {
		return
	}
	if o := int(tr.Outcome); o >= 0 && o < classify.NumOutcomes {
		t.ByOutcome[o].ObserveDuration(tr.Total)
	}
	t.Inject.ObserveDuration(tr.Inject)
	t.Restore.ObserveDuration(tr.Restore)
	t.Execute.ObserveDuration(tr.Execute)
	t.Classify.ObserveDuration(tr.Classify)
	if tr.Forked {
		t.RestoreFrac.Observe(tr.RestoreFrac)
		t.RestoreBytes.Observe(float64(tr.RestoreBytes))
	}
}

// Count returns the number of experiments observed (via the phase
// histograms, which see every trace regardless of outcome).
func (t *CampaignTimings) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.Execute.Count()
}

// Merge folds other into t. Both sides must use the same bucket layout;
// a nil other is a no-op.
func (t *CampaignTimings) Merge(other *CampaignTimings) error {
	if other == nil {
		return nil
	}
	if t == nil {
		return fmt.Errorf("harness: merge timings into nil")
	}
	for i := range t.ByOutcome {
		if t.ByOutcome[i] == nil {
			t.ByOutcome[i] = obs.NewHistogram(obs.LatencyBuckets())
		}
		if err := t.ByOutcome[i].Merge(other.ByOutcome[i]); err != nil {
			return fmt.Errorf("harness: merge timings (outcome %s): %w", classify.Outcome(i), err)
		}
	}
	for _, m := range []struct {
		dst     **obs.Histogram
		src     *obs.Histogram
		buckets func() []float64
		n       string
	}{
		{&t.Inject, other.Inject, obs.LatencyBuckets, "inject"},
		{&t.Restore, other.Restore, obs.LatencyBuckets, "restore"},
		{&t.Execute, other.Execute, obs.LatencyBuckets, "execute"},
		{&t.Classify, other.Classify, obs.LatencyBuckets, "classify"},
		{&t.RestoreFrac, other.RestoreFrac, obs.FractionBuckets, "restoreFrac"},
		{&t.RestoreBytes, other.RestoreBytes, obs.SizeBuckets, "restoreBytes"},
	} {
		if *m.dst == nil {
			*m.dst = obs.NewHistogram(m.buckets())
		}
		if err := (*m.dst).Merge(m.src); err != nil {
			return fmt.Errorf("harness: merge timings (%s): %w", m.n, err)
		}
	}
	return nil
}

// Clone returns an independent deep copy (nil in, nil out).
func (t *CampaignTimings) Clone() *CampaignTimings {
	if t == nil {
		return nil
	}
	c := NewCampaignTimings()
	if err := c.Merge(t); err != nil {
		// Same fixed layout on both sides by construction.
		panic(err)
	}
	return c
}
