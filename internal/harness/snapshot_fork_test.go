package harness

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apps"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/ir"
)

// countResumes wraps the coreRunResumed indirection so a test can prove a
// campaign actually took the snapshot-fork path (a schedule that silently
// fell back to re-execution would make the differential comparison
// vacuous). Campaigns under test run with Workers: 1, so no atomics.
func countResumes(t *testing.T) *int {
	t.Helper()
	n := new(int)
	orig := coreRunResumed
	coreRunResumed = func(prog *ir.Program, cfg core.RunConfig, snap *core.CampaignSnapshot) core.RunOutcome {
		*n++
		return orig(prog, cfg, snap)
	}
	t.Cleanup(func() { coreRunResumed = orig })
	return n
}

// TestSnapshotForkByteIdentical is the headline differential suite for the
// snapshot-fork fast path: for every application of the study, serial and
// at four ranks, a fixed-seed campaign run in snapshot mode must be
// byte-identical to the same campaign re-executing every experiment from
// step 0 — across the full JSON results, every rendered figure and table,
// and the checkpoint journal.
func TestSnapshotForkByteIdentical(t *testing.T) {
	for _, app := range apps.All() {
		for _, ranks := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s-r%d", app.Name(), ranks), func(t *testing.T) {
				params := app.TestParams()
				params.Ranks = ranks
				base := CampaignConfig{
					App:    app,
					Params: params, Sampling: Sampling{Runs: 12, Seed: 2015}, Execution: Execution{SampleEvery: 64, Workers: 1},
				}
				dir := t.TempDir()

				reexec := base
				reexec.Checkpoint = filepath.Join(dir, "reexec.journal")
				want, err := RunCampaign(reexec)
				if err != nil {
					t.Fatal(err)
				}

				resumed := countResumes(t)
				snapped := base
				snapped.Snapshots = 3
				snapped.Checkpoint = filepath.Join(dir, "snapshot.journal")
				got, err := RunCampaign(snapped)
				if err != nil {
					t.Fatal(err)
				}
				if *resumed == 0 {
					t.Error("snapshot campaign never forked from a snapshot")
				}

				assertStudyIdentical(t, "snapshot vs re-execution", want, got)

				wj, err := os.ReadFile(reexec.Checkpoint)
				if err != nil {
					t.Fatal(err)
				}
				gj, err := os.ReadFile(snapped.Checkpoint)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wj, gj) {
					t.Errorf("checkpoint journals differ (%d vs %d bytes)", len(wj), len(gj))
				}
			})
		}
	}
}

// TestShardMergeMixedSnapshotModes pins that Snapshots is a pure
// performance strategy, invisible to sharding: a campaign split across
// shards that disagree about snapshot mode must merge byte-identical to
// the unsharded re-execution run, and the shards' phase timings — which DO
// differ by mode — must still merge cleanly.
func TestShardMergeMixedSnapshotModes(t *testing.T) {
	app := apps.NewMD()
	cfg := CampaignConfig{
		App:    app,
		Params: app.TestParams(), Sampling: Sampling{Runs: 18, Seed: 777}, Execution: Execution{SampleEvery: 64, Workers: 1},
	}
	want, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	specs, err := PlanShards(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	merged := NewCampaignTimings()
	parts := make([]*PartialResult, len(specs))
	for i, spec := range specs {
		scfg := cfg
		scfg.Timings = NewCampaignTimings()
		if i%2 == 0 {
			scfg.Snapshots = 2
		}
		p, err := RunShard(scfg, spec)
		if err != nil {
			t.Fatalf("shard %d: %v", spec.Index, err)
		}
		if err := merged.Merge(p.Timings); err != nil {
			t.Fatalf("merge shard %d timings: %v", spec.Index, err)
		}
		parts[i] = p
	}
	got, err := MergePartials(parts...)
	if err != nil {
		t.Fatal(err)
	}
	assertStudyIdentical(t, "mixed-mode shards vs unsharded", want, got)
	if gotN, wantN := merged.Count(), uint64(cfg.Runs); gotN != wantN {
		t.Errorf("merged timings counted %d experiments, want %d", gotN, wantN)
	}
	if gotN := merged.Restore.Count(); gotN != uint64(cfg.Runs) {
		t.Errorf("restore histogram counted %d, want %d (every executed experiment observes the phase)",
			gotN, cfg.Runs)
	}
}

// TestTimingsMergeTolerantOfLegacyRestore: partials from builds that
// predate the restore phase carry a nil Restore histogram; merging them —
// in either direction — must work and keep the other phases exact.
func TestTimingsMergeTolerantOfLegacyRestore(t *testing.T) {
	trace := PhaseTrace{Outcome: classify.Vanished, Inject: 1, Restore: 2, Execute: 3, Classify: 4, Total: 10}

	legacy := NewCampaignTimings()
	legacy.Restore = nil // old-schema partial
	legacy.Observe(trace)
	legacy.Observe(trace)

	modern := NewCampaignTimings()
	modern.Observe(trace)

	if err := modern.Merge(legacy); err != nil {
		t.Fatalf("merge legacy into modern: %v", err)
	}
	if got := modern.Count(); got != 3 {
		t.Errorf("merged count = %d, want 3", got)
	}
	if got := modern.Restore.Count(); got != 1 {
		t.Errorf("restore count = %d, want 1 (legacy side had none)", got)
	}

	dst := NewCampaignTimings()
	dst.Restore = nil
	if err := dst.Merge(modern); err != nil {
		t.Fatalf("merge modern into legacy-shaped: %v", err)
	}
	if dst.Restore == nil || dst.Restore.Count() != 1 {
		t.Errorf("legacy-shaped dst did not adopt the restore histogram: %+v", dst.Restore)
	}
}

// FuzzSnapshotPlan fuzzes the snapshot scheduling decisions against
// brute-force oracles: for arbitrary (monotone) cut profiles, fault plans,
// and budgets, bestCutIndex must pick exactly the latest cut at or before
// every fault, chooseSeqs must stay within budget while always serving the
// experiment with the latest faults, and no experiment is ever left
// unrunnable — a plan with no usable cut simply maps to re-execution.
func FuzzSnapshotPlan(f *testing.F) {
	f.Add([]byte{2, 4, 1, 2, 3, 4, 5, 6, 7, 8}, []byte{0, 10, 1, 3}, 2)
	f.Add([]byte{1, 1, 0}, []byte{}, 1)
	f.Add([]byte{4, 8, 9, 9, 9, 9, 0, 0, 0, 0, 1, 2, 3, 4}, []byte{3, 200, 0, 0, 1, 1, 2, 9}, 5)
	f.Fuzz(func(t *testing.T, profile []byte, faultBytes []byte, budget int) {
		if len(profile) < 2 {
			return
		}
		ranks := 1 + int(profile[0])%4
		ncuts := 1 + int(profile[1])%8
		profile = profile[2:]

		// Build cuts with non-decreasing per-rank site counts (the shape
		// RunGoldenProfile guarantees), consuming fuzz bytes as increments.
		cuts := make([]core.SiteCut, ncuts)
		sites := make([]uint64, ranks)
		bi := 0
		nextByte := func() uint64 {
			if len(profile) == 0 {
				return 0
			}
			b := profile[bi%len(profile)]
			bi++
			return uint64(b)
		}
		for i := range cuts {
			for r := 0; r < ranks; r++ {
				sites[r] += nextByte() % 16
			}
			cuts[i] = core.SiteCut{Seq: uint64(i) * 3, Sites: append([]uint64(nil), sites...)}
		}

		// Decode fault plans: (rank, site) pairs, ranks intentionally
		// allowed out of range.
		var plans []inject.Plan
		for i := 0; i+2 < len(faultBytes); i += 3 {
			plans = append(plans, inject.Plan{Faults: []inject.Fault{{
				Rank: int(faultBytes[i])%(ranks+2) - 1,
				Site: uint64(faultBytes[i+1])*2 + uint64(faultBytes[i+2])%3,
			}}})
		}

		best := make([]int, 0, len(plans))
		for _, plan := range plans {
			idx := bestCutIndex(cuts, plan)

			oracle := -1
			for i := len(cuts) - 1; i >= 0; i-- {
				if cuts[i].Usable(plan) {
					oracle = i
					break
				}
			}
			if idx != oracle {
				t.Fatalf("bestCutIndex = %d, oracle = %d (cuts %v, plan %v)", idx, oracle, cuts, plan)
			}
			if idx >= 0 {
				if !cuts[idx].Usable(plan) {
					t.Fatalf("chosen cut %d not usable for %v", idx, plan)
				}
				// Preceding-or-equal: every fault lies at or after the cut.
				for _, ft := range plan.Faults {
					if cuts[idx].Sites[ft.Rank] > ft.Site {
						t.Fatalf("cut %d site %d past fault %v", idx, cuts[idx].Sites[ft.Rank], ft)
					}
				}
				best = append(best, idx)
			}
			// idx < 0 is the never-skip contract: the experiment still
			// runs, from step 0 (sched.Best returns nil there).
		}

		if budget < 0 {
			budget = -budget
		}
		budget %= 8
		seqs := chooseSeqs(cuts, append([]int(nil), best...), budget)
		if len(seqs) > budget {
			t.Fatalf("chooseSeqs returned %d seqs over budget %d", len(seqs), budget)
		}
		if len(best) > 0 && budget > 0 {
			if len(seqs) == 0 {
				t.Fatal("chooseSeqs returned nothing despite usable experiments and budget")
			}
			// The experiment with the latest best cut must always be
			// served: its cut's seq is in the selection.
			maxBest := best[0]
			for _, b := range best {
				if b > maxBest {
					maxBest = b
				}
			}
			found := false
			for _, s := range seqs {
				if s == cuts[maxBest].Seq {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("latest needed cut seq %d missing from %v", cuts[maxBest].Seq, seqs)
			}
		}
		valid := make(map[uint64]bool, len(best))
		for _, b := range best {
			valid[cuts[b].Seq] = true
		}
		seen := make(map[uint64]bool, len(seqs))
		for _, s := range seqs {
			if !valid[s] {
				t.Fatalf("chooseSeqs picked seq %d no experiment asked for", s)
			}
			if seen[s] {
				t.Fatalf("chooseSeqs returned duplicate seq %d", s)
			}
			seen[s] = true
		}

		// Nil-schedule safety: campaigns without snapshots re-execute.
		var nilSched *snapSchedule
		for _, plan := range plans {
			if nilSched.Best(plan) != nil {
				t.Fatal("nil schedule returned a snapshot")
			}
		}
	})
}
