package harness

import (
	"testing"

	"repro/internal/apps"
)

// TestSnapshotPackSharedAcrossCampaigns checks that two campaigns over
// the same configuration share one pack — second campaign re-uses the
// cached quiesce profile and captured snapshots instead of re-profiling
// and re-capturing — and still produce byte-identical studies.
func TestSnapshotPackSharedAcrossCampaigns(t *testing.T) {
	resetPacks()
	t.Cleanup(resetPacks)
	app := apps.All()[0]
	cfg := CampaignConfig{
		App:    app,
		Params: app.TestParams(), Sampling: Sampling{Runs: 10, Seed: 77}, Execution: Execution{SampleEvery: 64, Workers: 1, Snapshots: 3},
	}
	first, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := packKey{app: app.Name(), params: cfg.Params, sample: cfg.SampleEvery}
	packMu.Lock()
	p := packs[key]
	packMu.Unlock()
	if p == nil {
		t.Fatal("snapshot campaign left no pack behind")
	}
	if !p.profiled || len(p.cuts) == 0 || len(p.snaps) == 0 {
		t.Fatalf("pack not populated: profiled=%v cuts=%d snaps=%d",
			p.profiled, len(p.cuts), len(p.snaps))
	}
	cutsBefore := &p.cuts[0]
	snapsBefore := len(p.snaps)

	second, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	packMu.Lock()
	p2 := packs[key]
	packMu.Unlock()
	if p2 != p {
		t.Fatal("second campaign built a fresh pack instead of sharing")
	}
	if &p.cuts[0] != cutsBefore {
		t.Error("second campaign re-profiled the golden execution")
	}
	if len(p.snaps) != snapsBefore {
		t.Errorf("second campaign over identical pending IDs recaptured: %d snaps, had %d",
			len(p.snaps), snapsBefore)
	}
	assertStudyIdentical(t, "pack-shared second campaign", first, second)
}

// TestPackLRUEviction fills the registry past its capacity and checks
// the oldest configuration is evicted.
func TestPackLRUEviction(t *testing.T) {
	resetPacks()
	t.Cleanup(resetPacks)
	app := apps.All()[0]
	base := CampaignConfig{
		App:    app,
		Params: app.TestParams(), Sampling: Sampling{Runs: 2, Seed: 1}, Execution: Execution{SampleEvery: 64, Workers: 1, Snapshots: 1},
	}
	firstKey := packKey{app: app.Name(), params: base.Params, sample: base.SampleEvery}
	for i := 0; i <= maxPacks; i++ {
		cfg := base
		cfg.SampleEvery = uint64(64 + i)
		if _, err := RunCampaign(cfg); err != nil {
			t.Fatal(err)
		}
	}
	packMu.Lock()
	defer packMu.Unlock()
	if len(packs) != maxPacks {
		t.Fatalf("registry holds %d packs, want %d", len(packs), maxPacks)
	}
	if _, ok := packs[firstKey]; ok {
		t.Error("least recently used pack survived eviction")
	}
}
