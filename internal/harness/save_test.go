package harness

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/classify"
	"repro/internal/inject"
	"repro/internal/trace"
)

// sampleResults builds a small but field-rich result set so round-trip
// tests exercise nested structures, not just the envelope.
func sampleResults() []*CampaignResult {
	return []*CampaignResult{{
		App:  "hydro",
		Runs: 2,
		Tally: func() classify.Tally {
			var t classify.Tally
			t.Add(classify.Vanished)
			t.Add(classify.Crashed)
			return t
		}(),
		Experiments: []ExperimentSummary{
			{
				ID:      0,
				Plan:    inject.Plan{Faults: []inject.Fault{{Rank: 1, Site: 7, Bit: 13}}},
				Planned: true,
				Outcome: classify.Vanished,
				InjRank: 1,
				Fired:   true,
				Cycles:  1234,
			},
			{ID: 1, Planned: false, Outcome: classify.Crashed, Diag: "experiment panic: boom"},
		},
		Profiles: []Profile{{
			ID:      0,
			Outcome: classify.Vanished,
			Points:  []trace.Point{{Cycles: 10, CML: 1}, {Cycles: 20, CML: 3}},
		}},
		BestSpread:   SpreadSeries{ID: 0, Points: []trace.SpreadPoint{{Time: 10, Ranks: 1}}},
		StructTotals: map[string]int{"e": 3, "(heap)": 1},
	}}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, name := range []string{"results.json", "results.json.gz"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), name)
			want := sampleResults()
			if err := SaveResults(path, want); err != nil {
				t.Fatalf("SaveResults: %v", err)
			}
			got, err := LoadResults(path)
			if err != nil {
				t.Fatalf("LoadResults: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got[0], want[0])
			}
		})
	}
}

func TestLoadResultsGzipIsActuallyCompressed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json.gz")
	if err := SaveResults(path, sampleResults()); err != nil {
		t.Fatalf("SaveResults: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := gzip.NewReader(f); err != nil {
		t.Errorf("file is not valid gzip: %v", err)
	}
}

func TestLoadResultsRejectsVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	// A well-formed v1 file, as written before ExperimentSummary gained
	// Planned/Diag. Loading must fail loudly, not silently misread.
	if err := os.WriteFile(path, []byte(`{"version":1,"results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadResults(path)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("LoadResults(v1 file) err = %v, want version mismatch", err)
	}
}

func TestLoadResultsTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"r.json", "r.json.gz"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name)
			if err := SaveResults(path, sampleResults()); err != nil {
				t.Fatalf("SaveResults: %v", err)
			}
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadResults(path); err == nil {
				t.Error("LoadResults(truncated) = nil error, want failure")
			}
		})
	}
}

func TestLoadResultsMissingFile(t *testing.T) {
	if _, err := LoadResults(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("LoadResults(missing) = nil error, want failure")
	}
}
