package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"

	"repro/internal/trace"
)

// The checkpoint journal makes long campaigns restartable: one JSONL file
// holding a header line that fingerprints the campaign configuration,
// followed by one record per completed experiment. Records carry everything
// the streaming aggregator consumes (summary, profile points, spread
// series, per-structure totals), so a resumed campaign replays them into a
// fresh aggregator and produces results identical to an uninterrupted run.
// Every record is flushed as written: a killed campaign loses at most the
// in-flight line, and readJournal tolerates a truncated tail.

const journalVersion = 1

type journalHeader struct {
	Kind        string `json:"kind"`
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	// Trace is the campaign or shard span ID active when the journal was
	// created — observability only, never validated on resume (a journal
	// outlives the trace that wrote it).
	Trace string `json:"trace,omitempty"`
}

// journalRecord is one completed experiment on disk.
type journalRecord struct {
	Kind      string              `json:"kind"`
	Sum       ExperimentSummary   `json:"sum"`
	Points    []trace.Point       `json:"points,omitempty"`
	Spread    []trace.SpreadPoint `json:"spread,omitempty"`
	StructCML map[string]int      `json:"structCML,omitempty"`
}

func (r journalRecord) toExpOut() expOut {
	return expOut{sum: r.Sum, points: r.Points, spread: r.Spread, structCML: r.StructCML}
}

// planRecord journals one adaptive planner decision: the round number, the
// per-stratum allocation, and the IDs actually dispatched (allocated minus
// journal-replayed). Audit and test material — resume re-derives decisions
// from the replayed experiments — and invisible to pre-adaptive readers,
// which skip every record whose kind is not "exp".
type planRecord struct {
	Kind     string       `json:"kind"` // "plan"
	Round    int          `json:"round"`
	TargetCI float64      `json:"targetCI"`
	Allocs   []roundAlloc `json:"allocs"`
	Run      []int        `json:"run"`
}

// ErrFingerprintMismatch reports a checkpoint journal, shard spec, or
// partial result that belongs to a different campaign configuration than
// the one in hand. Match it with errors.Is.
var ErrFingerprintMismatch = errors.New("campaign fingerprint mismatch")

// Fingerprint hashes the configuration fields that determine
// per-experiment results. It binds checkpoint journals, shard specs, and
// partial results to their campaign: merging or resuming under a different
// seed, workload, or fault model is refused rather than silently mixing
// incompatible experiments. Zero-value defaults that are result-
// determining (HangFactor) are normalized first, so the fingerprint of a
// config equals the fingerprint of the campaign it runs.
func (cfg CampaignConfig) Fingerprint() string {
	if cfg.HangFactor == 0 {
		cfg.HangFactor = 4
	}
	if cfg.Strata == 0 {
		cfg.Strata = cfg.Sampling.phases()
	}
	return cfg.fingerprint()
}

// fingerprint hashes the configuration fields that determine per-experiment
// results, binding a journal to its campaign: resuming under a different
// seed, workload, or fault model is refused rather than silently mixing
// incompatible experiments. Fields that only shape aggregation or
// scheduling (Workers, KeepProfiles, MaxSummaries, StopAfter) are excluded.
// Sampling-policy fields (TargetCI, Strata) are appended only when set, so
// every pre-existing fixed-N configuration keeps the fingerprint it had
// before the policy existed and its journals stay resumable.
func (cfg CampaignConfig) fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "app=%s|params=%+v|runs=%d|seed=%d|lambda=%g|hang=%g|sample=%d",
		cfg.App.Name(), cfg.Params, cfg.Runs, cfg.Seed,
		cfg.MultiFaultLambda, cfg.HangFactor, cfg.SampleEvery)
	if cfg.stratified() {
		fmt.Fprintf(h, "|ci=%g|strata=%d", cfg.TargetCI, cfg.Strata)
	}
	// Append-only-when-set, like the adaptive suffix: configurations
	// without per-site analytics or protection keep their historical
	// fingerprints, so existing journals and archive entries stay valid.
	if cfg.Sites {
		fmt.Fprintf(h, "|sites=1")
	}
	if len(cfg.Protect) > 0 {
		fmt.Fprintf(h, "|protect=%s", protectKey(cfg.Protect))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// protectKey condenses a protection site list into a stable hash token,
// used both in the fingerprint and as the snapshot-pack cache
// discriminator.
func protectKey(protect []int) string {
	if len(protect) == 0 {
		return ""
	}
	h := fnv.New64a()
	for _, s := range protect {
		fmt.Fprintf(h, "%d,", s)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// journalFingerprint derives the checkpoint-journal fingerprint for one
// shard: the campaign fingerprint plus the shard's ID range, so a shard
// cannot resume from a sibling's journal. Full-range runs keep the bare
// campaign fingerprint — journals written before sharding existed stay
// resumable.
func journalFingerprint(campaignFP string, spec ShardSpec) string {
	if len(spec.IDs) > 0 {
		h := fnv.New64a()
		for _, id := range spec.IDs {
			fmt.Fprintf(h, "%d,", id)
		}
		return fmt.Sprintf("%s|ids=%016x", campaignFP, h.Sum64())
	}
	if spec.From == 0 && spec.To == spec.Runs {
		return campaignFP
	}
	return fmt.Sprintf("%s|shard=%d-%d", campaignFP, spec.From, spec.To)
}

// journalWriter appends records to the checkpoint file.
type journalWriter struct {
	f   *os.File
	bw  *bufio.Writer
	enc *json.Encoder
}

// openJournal opens the checkpoint journal for writing. A fresh campaign
// truncates and writes the header; a resume appends below the existing
// records (or starts a fresh journal when none exists yet).
func openJournal(path, fingerprint, trace string, resume bool) (*journalWriter, error) {
	flags := os.O_CREATE | os.O_WRONLY
	writeHeader := true
	if resume {
		if _, err := os.Stat(path); err == nil {
			flags |= os.O_APPEND
			writeHeader = false
		}
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: checkpoint: %w", err)
	}
	w := &journalWriter{f: f, bw: bufio.NewWriter(f)}
	w.enc = json.NewEncoder(w.bw)
	if writeHeader {
		hdr := journalHeader{Kind: "header", Version: journalVersion, Fingerprint: fingerprint, Trace: trace}
		if err := w.enc.Encode(hdr); err != nil {
			f.Close()
			return nil, fmt.Errorf("harness: checkpoint header: %w", err)
		}
		if err := w.bw.Flush(); err != nil {
			f.Close()
			return nil, fmt.Errorf("harness: checkpoint header: %w", err)
		}
	}
	return w, nil
}

// append journals one completed experiment and flushes it to the OS, so a
// kill after this returns cannot lose the record.
func (w *journalWriter) append(o expOut) error {
	rec := journalRecord{
		Kind:      "exp",
		Sum:       o.sum,
		Points:    o.points,
		Spread:    o.spread,
		StructCML: o.structCML,
	}
	if err := w.enc.Encode(rec); err != nil {
		return err
	}
	return w.bw.Flush()
}

// appendPlan journals one adaptive planner decision, flushed like every
// experiment record.
func (w *journalWriter) appendPlan(round int, target float64, allocs []roundAlloc, run []int) error {
	rec := planRecord{Kind: "plan", Round: round, TargetCI: target, Allocs: allocs, Run: run}
	if err := w.enc.Encode(rec); err != nil {
		return err
	}
	return w.bw.Flush()
}

func (w *journalWriter) Close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// LoadJournalSummaries reads the per-experiment summaries of a checkpoint
// journal in journal order, without validating the fingerprint: it serves
// observability (streaming completed experiments to a late subscriber),
// not resume, which must go through RunCampaign's guarded path. A missing
// file yields an empty slice; a truncated tail is dropped like readJournal
// drops it.
func LoadJournalSummaries(path string) ([]ExperimentSummary, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 256<<20)
	var sums []ExperimentSummary
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return sums, nil // truncated tail: keep what parsed
		}
		if rec.Kind != "exp" {
			continue
		}
		sums = append(sums, rec.Sum)
	}
	if err := sc.Err(); err != nil {
		return sums, fmt.Errorf("harness: checkpoint %s: %w", path, err)
	}
	return sums, nil
}

// journalHeaderFP reads just the fingerprint of a journal's header line,
// returning "" when the journal does not exist or is unparseable (callers
// fall through to readJournal for proper diagnostics).
func journalHeaderFP(path string) (string, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 256<<20)
	if !sc.Scan() {
		return "", nil
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Kind != "header" {
		return "", nil
	}
	return hdr.Fingerprint, nil
}

// readJournal loads the completed-experiment records of a checkpoint
// journal, validating the header against the campaign fingerprint. It
// returns found=false when no journal exists yet (a resume that starts
// from scratch). A truncated final line — the signature of a killed
// campaign — is dropped silently, along with anything after it.
func readJournal(path, fingerprint string) (recs []journalRecord, found bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 256<<20)
	if !sc.Scan() {
		return nil, false, fmt.Errorf("harness: checkpoint %s: empty journal", path)
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Kind != "header" {
		return nil, false, fmt.Errorf("harness: checkpoint %s: malformed header", path)
	}
	if hdr.Version != journalVersion {
		return nil, false, fmt.Errorf("harness: checkpoint %s: journal version %d, want %d",
			path, hdr.Version, journalVersion)
	}
	if hdr.Fingerprint != fingerprint {
		return nil, false, fmt.Errorf(
			"harness: checkpoint %s was written by a different campaign (%w: journal %s, want %s)",
			path, ErrFingerprintMismatch, hdr.Fingerprint, fingerprint)
	}
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return recs, true, nil // truncated tail: keep what parsed
		}
		if rec.Kind != "exp" {
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, true, fmt.Errorf("harness: checkpoint %s: %w", path, err)
	}
	return recs, true, nil
}
