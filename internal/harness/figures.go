package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analytics"
	"repro/internal/classify"
	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/transform"
	"repro/internal/vm"
)

// This file regenerates the paper's figures and tables as text. Each
// Format* function corresponds to one exhibit of the evaluation (see
// DESIGN.md's experiment index).

// FormatFig5 renders the fault-injection coverage histogram (paper Fig. 5):
// injection times of all fired faults, normalized by the injected rank's
// fault-free cycle count, binned uniformly, with a χ² uniformity verdict.
func FormatFig5(res *CampaignResult, bins int) string {
	if bins <= 0 {
		bins = 50
	}
	h := stats.NewHistogram(0, 1, bins)
	for _, e := range res.Experiments {
		// Unplanned runs (multi-fault mode can draw zero faults) have no
		// injection; without the Planned gate they would be misread as
		// rank-0 injections at cycle 0.
		if !e.Planned || !e.Fired || e.InjRank >= len(res.GoldenSites) {
			continue
		}
		g := res.Golden.Cycles
		if g == 0 {
			continue
		}
		h.Add(float64(e.InjCycle) / float64(g))
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5 — injection coverage over execution time (%s, %d injections, %d bins)\n",
		res.App, h.N, bins)
	chi2, dof := h.ChiSquareUniform()
	fmt.Fprintf(&sb, "chi2 = %.1f (dof %d), uniform at 1%% level: %v, expected/bin = %.1f\n",
		chi2, dof, h.ChiSquareUniformOK(), h.ExpectedUniform())
	// Render a compact bar chart (merge into 20 display bins).
	display := 20
	merged := make([]int, display)
	for i, c := range h.Counts {
		merged[i*display/len(h.Counts)] += c
	}
	maxC := 1
	for _, c := range merged {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range merged {
		fmt.Fprintf(&sb, "%4.2f |%-40s %d\n", float64(i)/float64(display),
			strings.Repeat("#", c*40/maxC), c)
	}
	return sb.String()
}

// FormatFig6 renders the outcome breakdown (paper Fig. 6): percentage of
// runs per class, with CO = V + ONA as the black-box view reports it.
func FormatFig6(results []*CampaignResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 6 — outcome of fault injection (single fault, random rank)\n")
	fmt.Fprintf(&sb, "%-10s %6s %6s %6s %6s   (runs)\n", "App", "CO%", "WO%", "PEX%", "C%")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-10s %6.1f %6.1f %6.1f %6.1f   (%d)\n",
			r.App,
			r.Tally.PercentCO(),
			r.Tally.Percent(classify.WrongOutput),
			r.Tally.Percent(classify.ProlongedExecution),
			r.Tally.Percent(classify.Crashed),
			r.Tally.Total)
	}
	return sb.String()
}

// FormatFig7 renders representative propagation profiles (paper Fig. 7a-e):
// the injected rank's CML time series for up to KeepProfiles runs per
// outcome class.
func FormatFig7(res *CampaignResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 7 — fault propagation profiles (%s)\n", res.App)
	for _, p := range res.Profiles {
		fmt.Fprintf(&sb, "run %d [%s]: ", p.ID, p.Outcome)
		pts := downsample(p.Points, 16)
		parts := make([]string, len(pts))
		for i, pt := range pts {
			parts[i] = fmt.Sprintf("%.2fms:%d", model.CyclesToSeconds(pt.Cycles)*1e3, pt.CML)
		}
		sb.WriteString(strings.Join(parts, " "))
		sb.WriteByte('\n')
	}
	if len(res.Profiles) == 0 {
		sb.WriteString("(no propagating runs recorded)\n")
	}
	return sb.String()
}

func downsample(pts []trace.Point, n int) []trace.Point {
	if len(pts) <= n || n < 2 {
		return pts
	}
	out := make([]trace.Point, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pts[i*(len(pts)-1)/(n-1)])
	}
	return out
}

// FormatFig7f renders the maximum percentage of contaminated memory state
// per application (paper Fig. 7f).
func FormatFig7f(results []*CampaignResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 7f — max percentage of contaminated memory state\n")
	fmt.Fprintf(&sb, "%-10s %10s %12s %12s\n", "App", "max %", "median %", "mem words")
	for _, r := range results {
		var pcts []float64
		for _, e := range r.Experiments {
			pcts = append(pcts, e.ContamPct)
		}
		maxP, medP := 0.0, 0.0
		if len(pcts) > 0 {
			maxP = stats.Max(pcts)
			medP = stats.Percentile(pcts, 50)
		}
		fmt.Fprintf(&sb, "%-10s %10.2f %12.2f %12d\n", r.App, maxP, medP, r.AllocatedWords)
	}
	return sb.String()
}

// FormatFig8 renders corrupted-MPI-rank spread over global time (paper
// Fig. 8) for the campaign's widest-spreading run.
func FormatFig8(results []*CampaignResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 8 — corrupted MPI ranks over time (widest-spreading run per app)\n")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-10s run %d: ", r.App, r.BestSpread.ID)
		if len(r.BestSpread.Points) == 0 {
			sb.WriteString("(no cross-rank contamination)\n")
			continue
		}
		parts := make([]string, 0, len(r.BestSpread.Points))
		for _, p := range r.BestSpread.Points {
			parts = append(parts, fmt.Sprintf("%.2fms:%d", model.CyclesToSeconds(p.Time)*1e3, p.Ranks))
		}
		if len(parts) > 16 {
			parts = parts[:16]
		}
		sb.WriteString(strings.Join(parts, " "))
		fmt.Fprintf(&sb, "  (final: %d/%d ranks)\n",
			r.BestSpread.Points[len(r.BestSpread.Points)-1].Ranks, r.Params.Ranks)
	}
	return sb.String()
}

// FormatTable2 renders the fault propagation speed factors (paper Table 2).
func FormatTable2(results []*CampaignResult) string {
	var sb strings.Builder
	sb.WriteString("Table 2 — fault propagation speed factors\n")
	fmt.Fprintf(&sb, "%-10s %14s %14s %8s %10s\n", "App", "FPS (CML/s)", "StdDev", "fits", "valid.err")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-10s %14.4g %14.4g %8d %10.4f\n",
			r.App, r.Model.FPS, r.Model.StdDev, len(r.Model.Fits), r.Model.ValidationErr)
	}
	return sb.String()
}

// FormatCOBreakdown renders the §4.3 analysis: the fraction of
// correct-output runs whose memory state was nevertheless contaminated
// (ONA), which a black-box analysis cannot see.
func FormatCOBreakdown(results []*CampaignResult) string {
	var sb strings.Builder
	sb.WriteString("CO breakdown — Vanished vs Output-Not-Affected (paper §4.3)\n")
	fmt.Fprintf(&sb, "%-10s %8s %8s %8s %22s\n", "App", "CO runs", "V", "ONA", "%CO with contaminated")
	for _, r := range results {
		v := r.Tally.Counts[classify.Vanished]
		ona := r.Tally.Counts[classify.OutputNotAffected]
		co := v + ona
		pct := 0.0
		if co > 0 {
			pct = 100 * float64(ona) / float64(co)
		}
		fmt.Fprintf(&sb, "%-10s %8d %8d %8d %21.1f%%\n", r.App, co, v, ona, pct)
	}
	return sb.String()
}

// Table1Row is one row of the paper's Table 1 reproduction.
type Table1Row struct {
	N            int
	Op           string
	Result       int64
	FaultyResult int64
	Contaminates bool
}

// Table1 reproduces the paper's Table 1 by actually executing each
// operation under the FPM with a bit-1 flip of a (a=19 -> a'=17).
func Table1() ([]Table1Row, error) {
	type tcase struct {
		name string
		emit func(f *ir.FuncBuilder, a ir.Reg) ir.Reg
	}
	cases := []tcase{
		{"b = a + 5", func(f *ir.FuncBuilder, a ir.Reg) ir.Reg { return f.Add(ir.R(a), ir.ImmI(5)) }},
		{"b = 13", func(f *ir.FuncBuilder, a ir.Reg) ir.Reg {
			f.Add(ir.R(a), ir.ImmI(5)) // the corrupted use, result discarded
			return f.CI(13)
		}},
		{"b = a >> 1", func(f *ir.FuncBuilder, a ir.Reg) ir.Reg { return f.AShr(ir.R(a), ir.ImmI(1)) }},
		{"b = a >> 2", func(f *ir.FuncBuilder, a ir.Reg) ir.Reg { return f.AShr(ir.R(a), ir.ImmI(2)) }},
	}
	var rows []Table1Row
	for i, tc := range cases {
		b := ir.NewBuilder()
		aAddr := b.Global("a", 1)
		bAddr := b.Global("b", 1)
		b.GlobalInit("a", []uint64{19})
		b.GlobalInit("b", []uint64{5})
		f := b.Func("main", 0, 0)
		aReg := f.Load(ir.ImmI(aAddr))
		res := tc.emit(f, aReg)
		f.Store(ir.R(res), ir.ImmI(bAddr))
		f.Ret()
		prog, err := b.Build()
		if err != nil {
			return nil, err
		}
		inst, err := transform.Instrument(prog, transform.DefaultOptions())
		if err != nil {
			return nil, err
		}
		inj := inject.NewRankInjector(inject.Plan{Faults: []inject.Fault{{Site: 0, Bit: 1}}}, 0)
		v := vm.New(inst, vm.Config{Injector: inj})
		if err := v.Run(); err != nil {
			return nil, err
		}
		faulty, _ := v.Mem().Read(int64(bAddr))
		pristine := v.Table().PristineOr(int64(bAddr), faulty)
		_, cont := v.Table().Pristine(int64(bAddr))
		rows = append(rows, Table1Row{
			N: i + 1, Op: tc.name,
			Result:       int64(pristine),
			FaultyResult: int64(faulty),
			Contaminates: cont,
		})
	}
	return rows, nil
}

// FormatTable1 renders the Table 1 reproduction.
func FormatTable1() (string, error) {
	rows, err := Table1()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Table 1 — operand-dependent propagation (a=19, bit-1 flip: a'=17)\n")
	fmt.Fprintf(&sb, "%-3s %-12s %10s %14s %8s\n", "N", "Op", "Result", "Faulty Result", "Cont.?")
	for _, r := range rows {
		cont := "No"
		if r.Contaminates {
			cont = "Yes"
		}
		fmt.Fprintf(&sb, "%-3d %-12s %10d %14d %8s\n", r.N, r.Op, r.Result, r.FaultyResult, cont)
	}
	return sb.String(), nil
}

// FormatStructVulnerability renders the DVF-style per-data-structure
// contamination breakdown (an extension in the spirit of the paper's §6
// comparison with the data vulnerability factor): which structures
// accumulate the campaign's corrupted locations.
func FormatStructVulnerability(results []*CampaignResult) string {
	var sb strings.Builder
	sb.WriteString("Structure vulnerability — end-of-run contaminated locations by data structure\n")
	for _, r := range results {
		type kv struct {
			name string
			n    int
		}
		var rows []kv
		total := 0
		for k, v := range r.StructTotals {
			rows = append(rows, kv{k, v})
			total += v
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].name < rows[j].name
		})
		fmt.Fprintf(&sb, "%s (total %d):", r.App, total)
		if total == 0 {
			sb.WriteString(" (none)\n")
			continue
		}
		max := 6
		for i, row := range rows {
			if i == max {
				fmt.Fprintf(&sb, " …(+%d more)", len(rows)-max)
				break
			}
			fmt.Fprintf(&sb, "  %s=%d (%.0f%%)", row.name, row.n, 100*float64(row.n)/float64(total))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatStrata renders a stratified campaign's per-stratum vulnerability
// table: one row per instruction-class × execution-phase stratum with its
// outcome tally, vulnerability rate ± the 95% Wilson half-width, and the
// stratum's mean propagation speed. Empty for non-stratified campaigns,
// so legacy renderings are unchanged.
func FormatStrata(res *CampaignResult) string {
	if len(res.Strata) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Per-stratum vulnerability — %s (class × phase, 95%% Wilson CI)\n", res.App)
	sb.WriteString("stratum     runs  V/ONA/WO/PEX/C        vuln rate        FPS mean\n")
	for _, s := range res.Strata {
		c := s.Tally.Counts
		fmt.Fprintf(&sb, "%-10s %5d  %4d/%4d/%3d/%3d/%3d  %.3f ±%.3f", s.Label, s.Tally.Total,
			c[classify.Vanished], c[classify.OutputNotAffected], c[classify.WrongOutput],
			c[classify.ProlongedExecution], c[classify.Crashed], s.Rate, s.HalfWidth)
		if s.FPS.N > 0 {
			fmt.Fprintf(&sb, "  %.4g (n=%d)", s.FPS.Mean, s.FPS.N)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderStudy renders one campaign's full study — every per-campaign
// figure and table of the evaluation — as a single deterministic text
// document. It is the byte-identity surface of the determinism claims:
// two results are "the same study" exactly when their RenderStudy
// outputs (and JSON encodings) are byte-equal, which is how sharded
// runs, snapshot-mode runs, and archive cache hits are all proven
// equivalent to a plain run.
func RenderStudy(res *CampaignResult) string {
	rs := []*CampaignResult{res}
	var sb strings.Builder
	sb.WriteString(FormatFig5(res, 10))
	sb.WriteString(FormatFig6(rs))
	sb.WriteString(FormatFig7(res))
	sb.WriteString(FormatFig7f(rs))
	sb.WriteString(FormatFig8(rs))
	sb.WriteString(FormatTable2(rs))
	sb.WriteString(FormatCOBreakdown(rs))
	sb.WriteString(FormatStructVulnerability(rs))
	// Empty for non-stratified campaigns, so their rendered bytes are
	// exactly what they were before strata existed.
	sb.WriteString(FormatStrata(res))
	// Likewise empty for campaigns without per-site analytics — including
	// archive cache-hit results whose PartialResult predates the field —
	// so legacy results render byte-identically.
	sb.WriteString(FormatSites(res))
	return sb.String()
}

// formatSitesRows caps the rendered ranking; the full table is in the
// JSON result and the /v1/archive sites view.
const formatSitesRows = 15

// FormatSites renders the per-site vulnerability ranking: one row per
// observed static injection site, most vulnerable first (descending Wilson
// lower bound on P(WO or Crash | flip at site)), with the FlipTracker-style
// propagation-pattern tallies (trajectory shapes none/spike/plateau/growth
// and cleanse causes nofire/truncated/overwritten/dead/propagated). Empty
// for campaigns without per-site analytics — the PR 9 "empty for legacy
// results" rule — so archive cache hits predating the feature render
// byte-identically to their original output.
func FormatSites(res *CampaignResult) string {
	if len(res.Sites) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Per-site vulnerability — %s (ranked by Wilson lower bound on P(WO|C), 95%% CI)\n", res.App)
	sb.WriteString("site  label                runs  V/ONA/WO/PEX/C        P(WO|C)         shapes n/s/p/g   causes nf/tr/ow/de/pr\n")
	rows := len(res.Sites)
	if rows > formatSitesRows {
		rows = formatSitesRows
	}
	for _, s := range res.Sites[:rows] {
		c := s.Tally.Counts
		fmt.Fprintf(&sb, "%4d  %-20s %4d  %4d/%4d/%3d/%3d/%3d  %.3f ±%.3f     %3d/%3d/%3d/%3d  %3d/%3d/%3d/%3d/%3d\n",
			s.Site, s.Label, s.Tally.Total,
			c[classify.Vanished], c[classify.OutputNotAffected], c[classify.WrongOutput],
			c[classify.ProlongedExecution], c[classify.Crashed],
			s.Rate, s.HalfWidth,
			s.Shapes[analytics.ShapeNone], s.Shapes[analytics.ShapeSpike],
			s.Shapes[analytics.ShapePlateau], s.Shapes[analytics.ShapeGrowth],
			s.Causes[analytics.CauseNoFire], s.Causes[analytics.CauseTruncated],
			s.Causes[analytics.CauseOverwritten], s.Causes[analytics.CauseDeadOnExit],
			s.Causes[analytics.CausePropagated])
	}
	if n := len(res.Sites) - rows; n > 0 {
		fmt.Fprintf(&sb, "(+%d more sites)\n", n)
	}
	return sb.String()
}

// FormatProtection renders the selective-protection evaluation for one
// app: the WO+Crash rate (with 95% Wilson half-width) and golden cycle
// count of a baseline campaign against those of the same campaign with
// the top-ranked sites protected, plus the coverage and instruction
// overhead the protection buys. Protection never changes the experiment
// plans — both campaigns flip the same bits at the same dynamic sites —
// so the rate delta is attributable to the duplicated operands alone.
func FormatProtection(pct float64, protected, totalSites int, base, prot *CampaignResult) string {
	var sb strings.Builder
	coverage := 0.0
	if totalSites > 0 {
		coverage = float64(protected) / float64(totalSites) * 100
	}
	fmt.Fprintf(&sb, "Selective protection — %s (top %g%% of %d sites: %d protected, %.1f%% coverage)\n",
		base.App, pct, totalSites, protected, coverage)
	sb.WriteString("           runs   WO+C rate        golden cycles   overhead\n")
	row := func(name string, res *CampaignResult, overhead string) {
		bad := res.Tally.Counts[classify.WrongOutput] + res.Tally.Counts[classify.Crashed]
		rate := 0.0
		if res.Tally.Total > 0 {
			rate = float64(bad) / float64(res.Tally.Total)
		}
		hw := stats.WilsonHalfWidth(bad, res.Tally.Total, stats.Z95)
		fmt.Fprintf(&sb, "%-10s %4d   %.4f ±%.4f   %13d   %s\n",
			name, res.Tally.Total, rate, hw, res.Golden.Cycles, overhead)
	}
	row("baseline", base, "—")
	overhead := "—"
	if base.Golden.Cycles > 0 {
		delta := int64(prot.Golden.Cycles) - int64(base.Golden.Cycles)
		overhead = fmt.Sprintf("%+.2f%%", float64(delta)/float64(base.Golden.Cycles)*100)
	}
	row("protected", prot, overhead)
	return sb.String()
}

// SortedFPS returns app names ordered by descending FPS, for shape
// comparisons against the paper's Table 2 ordering.
func SortedFPS(results []*CampaignResult) []string {
	rs := append([]*CampaignResult(nil), results...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Model.FPS > rs[j].Model.FPS })
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.App
	}
	return names
}
