package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/transform"
	"repro/internal/xrand"
)

// CampaignConfig parameterizes a statistical fault-injection campaign over
// one application (paper §4: 5,000 runs, one fault per run into a randomly
// selected MPI process; reduced counts for tests and benchmarks).
type CampaignConfig struct {
	App    apps.App
	Params apps.Params
	// Runs is the number of injection experiments.
	Runs int
	// Seed drives all campaign randomness deterministically. Experiment i
	// draws from the position-addressable stream xrand.At(Seed, i), so
	// results do not depend on worker count, completion order, or whether
	// the campaign was resumed from a checkpoint.
	Seed uint64
	// MultiFaultLambda, when positive, switches to the LLFI++ multi-fault
	// mode: each rank receives Poisson(lambda) faults per run.
	MultiFaultLambda float64
	// HangFactor multiplies the golden cycle count into the hang budget.
	HangFactor float64
	// SampleEvery subsamples CML traces (cycles between samples).
	SampleEvery uint64
	// Workers bounds experiment-level parallelism (0: GOMAXPROCS).
	Workers int
	// Snapshots, when positive, enables the snapshot-fork fast path: up to
	// this many full-state snapshots of the golden execution are captured
	// at quiesce points chosen to precede the shard's planned injections,
	// and each experiment forks from the best usable snapshot instead of
	// re-executing the clean prefix (0 disables; every experiment runs
	// from step 0). Purely a performance strategy — results are
	// byte-identical either way — so it is excluded from the checkpoint
	// fingerprint, and shards of one campaign may mix modes freely.
	Snapshots int
	// KeepProfiles bounds how many representative CML profiles are kept
	// per outcome class (0: 2, as plotted in the paper's Fig. 7).
	KeepProfiles int
	// MaxSummaries bounds the retained per-experiment summaries (0: keep
	// all). When set, CampaignResult.Experiments holds the MaxSummaries
	// lowest-ID summaries while the tally, structure totals, and model
	// still cover every run.
	MaxSummaries int
	// Checkpoint, when set, journals every completed experiment to this
	// JSONL path so a killed campaign can be resumed.
	Checkpoint string
	// Resume replays the Checkpoint journal, skipping already-completed
	// experiments. The journal must have been written by a campaign with
	// the same result-determining configuration.
	Resume bool
	// Progress, when non-nil, receives live metrics (see Progress).
	Progress *Progress
	// StopAfter, when positive, interrupts the campaign after roughly that
	// many newly executed experiments: RunCampaign journals what finished
	// and returns ErrInterrupted. It simulates a mid-campaign kill for
	// checkpoint testing and gives operators a bounded-work mode.
	StopAfter int
	// OnExperiment, when non-nil, observes every experiment folded into the
	// aggregate — replayed checkpoint records first (resumed=true), then
	// live completions in completion order. It is called from the single
	// aggregation goroutine, so implementations need no locking against
	// each other but must not block for long: the callback is on the
	// campaign's critical path. It does not influence results and is
	// excluded from the checkpoint fingerprint.
	OnExperiment func(sum ExperimentSummary, resumed bool)
	// Trace is an operator- or service-assigned span ID stamped into the
	// checkpoint journal header (and the service's logs and events) so one
	// grep follows a campaign or shard across processes. Purely
	// observational: excluded from the fingerprint, never
	// result-determining.
	Trace string
	// Timings, when non-nil, aggregates per-outcome and per-phase latency
	// histograms over every executed (not resumed) experiment;
	// RunShardContext stamps them into the PartialResult so shard timings
	// merge back at the coordinator. Observed from worker goroutines
	// (CampaignTimings is concurrency-safe). Excluded from the
	// fingerprint.
	Timings *CampaignTimings
	// OnPhase, when non-nil, observes each executed experiment's phase
	// timings as it completes. Unlike OnExperiment it is called directly
	// from worker goroutines, concurrently — implementations must be
	// thread-safe and fast. It does not influence results and is excluded
	// from the fingerprint. When both Timings and OnPhase are nil, phase
	// tracing is disabled and experiments pay only a nil check.
	OnPhase func(PhaseTrace)
	// Gate, when non-nil, is a token bucket shared between concurrent
	// campaigns: every experiment holds one token while it executes, so the
	// total experiment parallelism across all campaigns sharing the channel
	// is bounded by its capacity (fill it with that many empty structs).
	// The per-campaign Workers setting still bounds this campaign alone.
	// Like Workers, the gate shapes scheduling only — results are
	// position-addressed by seed — so it is excluded from the fingerprint.
	Gate chan struct{}

	// reuse carries a worker's recyclable run infrastructure (per-rank VM
	// state, MPI job fabric) into runExperiment. Set per worker goroutine
	// on its private copy of the config; purely an allocation
	// optimization, so it is excluded from the checkpoint fingerprint and
	// never result-determining.
	reuse *core.Reuse
}

// ErrInterrupted reports a campaign stopped before completing every run;
// the checkpoint journal holds the completed experiments.
var ErrInterrupted = errors.New("harness: campaign interrupted")

// FieldError reports one invalid CampaignConfig field. Validate returns
// the first violation; callers can errors.As for the field name.
type FieldError struct {
	Field  string
	Reason string
}

func (e *FieldError) Error() string {
	return fmt.Sprintf("harness: invalid config: %s: %s", e.Field, e.Reason)
}

// Validate checks the configuration without running anything. It is called
// by RunCampaign and RunShardContext, so callers only need it to fail fast
// (e.g. at submission time) before spending a golden run.
func (cfg CampaignConfig) Validate() error {
	switch {
	case cfg.App == nil:
		return &FieldError{Field: "App", Reason: "must be set"}
	case cfg.Runs <= 0:
		return &FieldError{Field: "Runs", Reason: "must be > 0"}
	case cfg.MultiFaultLambda < 0:
		return &FieldError{Field: "MultiFaultLambda", Reason: "must be >= 0"}
	case cfg.HangFactor < 0:
		return &FieldError{Field: "HangFactor", Reason: "must be >= 0"}
	case cfg.Workers < 0:
		return &FieldError{Field: "Workers", Reason: "must be >= 0"}
	case cfg.Snapshots < 0:
		return &FieldError{Field: "Snapshots", Reason: "must be >= 0"}
	case cfg.KeepProfiles < 0:
		return &FieldError{Field: "KeepProfiles", Reason: "must be >= 0"}
	case cfg.MaxSummaries < 0:
		return &FieldError{Field: "MaxSummaries", Reason: "must be >= 0"}
	case cfg.StopAfter < 0:
		return &FieldError{Field: "StopAfter", Reason: "must be >= 0"}
	case cfg.Resume && cfg.Checkpoint == "":
		return &FieldError{Field: "Resume", Reason: "requires a Checkpoint path"}
	}
	return nil
}

// withDefaults resolves the zero-value conventions into concrete settings.
// Defaults that are result-determining (HangFactor) must be applied before
// fingerprinting, which is why Fingerprint normalizes the same way.
func (cfg CampaignConfig) withDefaults() CampaignConfig {
	if cfg.HangFactor == 0 {
		cfg.HangFactor = 4
	}
	if cfg.KeepProfiles == 0 {
		cfg.KeepProfiles = 2
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return cfg
}

// ExperimentSummary is the retained record of one injection run.
type ExperimentSummary struct {
	ID      int
	Plan    inject.Plan
	Outcome classify.Outcome
	// Planned reports whether the plan contained at least one fault.
	// Multi-fault mode legitimately draws zero-fault plans; those runs
	// must not masquerade as injections into rank 0.
	Planned bool
	// InjRank is the rank of the first planned fault (meaningless unless
	// Planned).
	InjRank int
	// InjCycle is the rank-local application cycle of the first applied
	// fault (0 when the fault never fired).
	InjCycle uint64
	// Fired reports whether any planned fault actually applied.
	Fired bool
	// MaxCML is the peak of the injected rank's CML.
	MaxCML int
	// TotalPeakCML sums every rank's peak CML.
	TotalPeakCML int
	// ContamPct is TotalPeakCML over the application memory extent, in
	// percent (paper Fig. 7f).
	ContamPct float64
	// RanksContaminated counts ranks whose memory was ever contaminated.
	RanksContaminated int
	// Cycles is the run's maximum application cycle count.
	Cycles uint64
	// Fit is the per-run propagation model, when one could be fitted.
	Fit    model.RunFit
	HasFit bool
	// Diag carries the recovered panic diagnostic when the experiment
	// infrastructure itself failed; such runs classify as Crashed.
	Diag string `json:",omitempty"`
}

// Profile is a retained CML(t) series with its classification (Fig. 7).
type Profile struct {
	ID      int
	Outcome classify.Outcome
	Points  []trace.Point
}

// SpreadSeries is a retained corrupted-ranks-over-time series (Fig. 8).
type SpreadSeries struct {
	ID     int
	Points []trace.SpreadPoint
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	App         string
	Params      apps.Params
	Runs        int
	Golden      classify.Golden
	GoldenSites []uint64
	// AllocatedWords is the per-job application memory extent.
	AllocatedWords int64

	Tally       classify.Tally
	Experiments []ExperimentSummary
	Profiles    []Profile
	BestSpread  SpreadSeries
	Model       model.AppModel
	// StructTotals sums end-of-run contamination per data structure over
	// all experiments (the DVF-style breakdown).
	StructTotals map[string]int
}

// coreRun and coreRunResumed indirect the core entry points so tests can
// inject infrastructure failures.
var (
	coreRun        = core.Run
	coreRunResumed = core.RunResumed
)

// RunCampaign executes the campaign: a golden profiling run, then Runs
// fault-injection experiments streamed through a single-pass aggregator.
// Completed experiments are journaled to cfg.Checkpoint when set, and
// cfg.Resume restarts a killed campaign where it left off, with results
// identical to an uninterrupted run.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	return RunCampaignContext(context.Background(), cfg)
}

// RunCampaignContext is RunCampaign with cancellation: when ctx is
// cancelled the campaign stops handing out new experiments, waits for the
// in-flight ones, journals everything that finished, and returns an error
// wrapping both ErrInterrupted and the context's cause. A cancelled
// campaign with a Checkpoint therefore leaves a resumable journal, and
// resuming it yields results identical to an uninterrupted run.
//
// It is a thin wrapper over RunShardContext: the whole campaign is the
// [0, Runs) shard, finalized in place.
func RunCampaignContext(ctx context.Context, cfg CampaignConfig) (*CampaignResult, error) {
	part, err := RunShardContext(ctx, cfg, ShardSpec{Shards: 1, To: cfg.Runs, Runs: cfg.Runs})
	if err != nil {
		return nil, err
	}
	return part.Finalize()
}

// RunShard is RunShardContext with a background context.
func RunShard(cfg CampaignConfig, spec ShardSpec) (*PartialResult, error) {
	return RunShardContext(context.Background(), cfg, spec)
}

// RunShardContext executes the experiments in spec's ID range [From, To)
// and returns their mergeable partial aggregate. Experiment i draws from
// xrand.At(Seed, i) regardless of sharding, so running a campaign as any
// partition of shards — in any processes, merged in any order — finalizes
// into results byte-identical to the single-process run. When spec carries
// a Fingerprint it must match the configuration; cfg.Checkpoint journals
// are per-shard (give each shard its own path).
func RunShardContext(ctx context.Context, cfg CampaignConfig, spec ShardSpec) (*PartialResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if spec.Runs == 0 {
		spec.Runs = cfg.Runs
	}
	if err := spec.validate(cfg); err != nil {
		return nil, err
	}
	// Snapshot-fork campaigns draw the instrumented program from the
	// configuration's process-wide pack, so repeated campaigns over the
	// same configuration share one build, one quiesce profile and the
	// captured golden snapshots (see pack.go).
	var (
		pack *snapshotPack
		inst *ir.Program
	)
	if cfg.Snapshots > 0 {
		p, err := packFor(cfg)
		if err != nil {
			return nil, err
		}
		pack, inst = p, p.inst
	} else {
		prog, err := cfg.App.Build(cfg.Params)
		if err != nil {
			return nil, fmt.Errorf("harness: build %s: %w", cfg.App.Name(), err)
		}
		in, err := transform.Instrument(prog, transform.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("harness: instrument %s: %w", cfg.App.Name(), err)
		}
		inst = in
	}

	// Golden (fault-free) run: reference outputs, cycle budget, and the
	// per-rank dynamic injection-site space.
	var golden core.RunOutcome
	if pack != nil {
		golden = pack.golden(cfg)
	} else {
		golden = coreRun(inst, core.RunConfig{Ranks: cfg.Params.Ranks, SampleEvery: cfg.SampleEvery})
	}
	if golden.Err != nil {
		return nil, fmt.Errorf("harness: golden run of %s failed: %w", cfg.App.Name(), golden.Err)
	}
	part := &PartialResult{
		Fingerprint: cfg.fingerprint(),
		App:         cfg.App.Name(),
		Params:      cfg.Params,
		Runs:        cfg.Runs,
		Golden: classify.Golden{
			Outputs:    golden.Outputs,
			Cycles:     golden.Cycles,
			Iterations: golden.Iterations,
		},
		GoldenSites:    golden.SiteCounts(),
		AllocatedWords: golden.AllocatedTotal,
		KeepProfiles:   cfg.KeepProfiles,
		MaxSummaries:   cfg.MaxSummaries,
	}
	hasSites := false
	for _, n := range part.GoldenSites {
		if n > 0 {
			hasSites = true
			break
		}
	}
	if !hasSites {
		return nil, fmt.Errorf("inject: no rank has injection sites")
	}

	criteria := classify.DefaultCriteria()
	cycleLimit := uint64(float64(golden.Cycles) * cfg.HangFactor)

	// completed is indexed by offset into the shard's ID range.
	agg := newAggregator(cfg)
	completed := make([]bool, spec.Size())
	resumed := 0
	var journal *journalWriter
	if cfg.Checkpoint != "" {
		// The journal fingerprint binds the file to this shard's range as
		// well as the campaign config (full-range runs keep the legacy
		// campaign-only hash, so existing journals stay resumable).
		fp := journalFingerprint(part.Fingerprint, spec)
		if cfg.Resume {
			recs, _, err := readJournal(cfg.Checkpoint, fp)
			if err != nil {
				return nil, err
			}
			for _, rec := range recs {
				id := rec.Sum.ID
				if id < spec.From || id >= spec.To || completed[id-spec.From] {
					continue
				}
				completed[id-spec.From] = true
				resumed++
				agg.add(rec.toExpOut())
				if cfg.OnExperiment != nil {
					cfg.OnExperiment(rec.Sum, true)
				}
			}
		}
		jw, err := openJournal(cfg.Checkpoint, fp, cfg.Trace, cfg.Resume)
		if err != nil {
			return nil, err
		}
		journal = jw
		defer journal.Close()
	}

	var pending []int
	for off := range completed {
		if !completed[off] {
			pending = append(pending, spec.From+off)
		}
	}

	// Snapshot-fork schedule: profile the golden execution's quiesce
	// points, capture snapshots where this shard's plans can use them.
	// Failure to build one (or Snapshots: 0) just means every experiment
	// re-executes from step 0 — results are identical either way.
	var sched *snapSchedule
	if pack != nil && len(pending) > 0 {
		sched = pack.schedule(cfg, part.GoldenSites, pending)
	}

	cfg.Progress.begin(spec.Size(), cfg.Workers)
	cfg.Progress.noteResumed(resumed)

	// Streaming execution: workers pull experiment IDs, run them, and feed
	// completions to the single aggregation loop below. Memory stays
	// O(workers + retained results) instead of O(runs).
	work := make(chan int)
	outs := make(chan expOut, cfg.Workers)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	// Cancellation stops work intake; in-flight experiments drain through
	// the aggregation loop below so they are journaled before returning.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			halt()
		case <-watchDone:
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker reuse bundle: the address spaces, contamination
			// tables and MPI job fabric are allocated once here and
			// recycled through every experiment this worker runs.
			wcfg := cfg
			wcfg.reuse = core.NewReuse(cfg.Params.Ranks)
			// Phase tracing costs ~two time.Now calls per experiment when
			// enabled and a nil check when not.
			traced := cfg.Timings != nil || cfg.OnPhase != nil
			for id := range work {
				if cfg.Gate != nil {
					<-cfg.Gate
				}
				cfg.Progress.noteStart()
				t0 := time.Now()
				var tr *PhaseTrace
				if traced {
					tr = &PhaseTrace{ID: id}
				}
				plan := planFor(cfg, id, part.GoldenSites)
				if tr != nil {
					tr.Inject = time.Since(t0)
				}
				o := runExperiment(id, inst, plan, wcfg, criteria, part.Golden, cycleLimit, sched, tr)
				elapsed := time.Since(t0)
				cfg.Progress.noteDone(o.sum.Outcome, elapsed)
				if tr != nil {
					tr.Outcome = o.sum.Outcome
					tr.Total = elapsed
					cfg.Timings.Observe(*tr)
					if cfg.OnPhase != nil {
						cfg.OnPhase(*tr)
					}
				}
				if cfg.Gate != nil {
					cfg.Gate <- struct{}{}
				}
				outs <- o
			}
		}()
	}
	go func() {
		defer close(work)
		for _, id := range pending {
			select {
			case work <- id:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outs)
	}()

	var journalErr error
	executed := 0
	for o := range outs {
		if journal != nil && journalErr == nil {
			if err := journal.append(o); err != nil {
				journalErr = fmt.Errorf("harness: checkpoint append: %w", err)
				halt()
			}
		}
		agg.add(o)
		executed++
		if cfg.OnExperiment != nil {
			cfg.OnExperiment(o.sum, false)
		}
		if cfg.StopAfter > 0 && executed >= cfg.StopAfter {
			halt()
		}
	}
	halt()
	if journalErr != nil {
		return nil, journalErr
	}
	if resumed+executed < spec.Size() {
		if cause := context.Cause(ctx); cause != nil {
			return nil, fmt.Errorf("%w after %d of %d experiments: %v",
				ErrInterrupted, resumed+executed, spec.Size(), cause)
		}
		return nil, fmt.Errorf("%w after %d of %d experiments",
			ErrInterrupted, resumed+executed, spec.Size())
	}
	agg.intoPartial(part)
	part.Timings = cfg.Timings
	if spec.Size() > 0 {
		part.Ranges = []IDRange{{From: spec.From, To: spec.To}}
	}
	return part, nil
}

// planFor draws experiment id's fault plan from its position-addressable
// random stream. RunCampaign validated that at least one rank has
// injection sites, so single-fault planning cannot fail here.
func planFor(cfg CampaignConfig, id int, sites []uint64) inject.Plan {
	r := xrand.At(cfg.Seed, uint64(id))
	if cfg.MultiFaultLambda > 0 {
		return inject.MultiFaultPlan(r, sites, cfg.MultiFaultLambda)
	}
	p, _ := inject.UniformSinglePlan(r, sites)
	return p
}

// expOut is the per-experiment material the aggregation step consumes.
type expOut struct {
	sum       ExperimentSummary
	points    []trace.Point
	spread    []trace.SpreadPoint
	structCML map[string]int
}

// runExperiment executes one fault-injection run and condenses it. A panic
// anywhere in the experiment pipeline is contained here: the run classifies
// as Crashed with the diagnostic retained, and the campaign continues.
// When tr is non-nil the restore, execute and classify phases are timed
// into it (a panicking experiment leaves whatever phases completed).
func runExperiment(id int, inst *ir.Program, plan inject.Plan, cfg CampaignConfig,
	criteria classify.Criteria, golden classify.Golden, cycleLimit uint64,
	sched *snapSchedule, tr *PhaseTrace) (out expOut) {

	defer func() {
		if p := recover(); p != nil {
			out = expOut{sum: ExperimentSummary{
				ID:      id,
				Plan:    plan,
				Planned: len(plan.Faults) > 0,
				Outcome: classify.Crashed,
				Diag:    fmt.Sprintf("experiment panic: %v\n%s", p, debug.Stack()),
			}}
		}
	}()

	var phaseStart time.Time
	if tr != nil {
		phaseStart = time.Now()
	}
	rcfg := core.RunConfig{
		Ranks:       cfg.Params.Ranks,
		CycleLimit:  cycleLimit,
		Plan:        plan,
		SampleEvery: cfg.SampleEvery,
		Reuse:       cfg.reuse,
	}
	var run core.RunOutcome
	if snap := sched.Best(plan); snap != nil {
		run = coreRunResumed(inst, rcfg, snap)
	} else {
		run = coreRun(inst, rcfg)
	}
	if tr != nil {
		now := time.Now()
		tr.Restore = run.RestoreDur
		tr.Execute = now.Sub(phaseStart) - run.RestoreDur
		tr.Forked = run.Forked
		tr.RestoreBytes = run.RestoreBytes
		tr.RestoreFrac = run.RestoreFrac()
		phaseStart = now
	}
	sum := ExperimentSummary{
		ID:           id,
		Plan:         plan,
		Planned:      len(plan.Faults) > 0,
		Outcome:      criteria.Classify(golden, run.ToRunResult()),
		TotalPeakCML: run.MaxCMLTotal,
		Cycles:       run.Cycles,
	}
	if sum.Planned {
		sum.InjRank = plan.Faults[0].Rank
	}
	if run.AllocatedTotal > 0 {
		sum.ContamPct = 100 * float64(run.MaxCMLTotal) / float64(run.AllocatedTotal)
	}
	// Casualty ranks (cut down at a scheduling-dependent moment after a
	// peer crashed) carry no reliable observations; skipping them keeps
	// every summary field a pure function of the seed.
	var points []trace.Point
	if sum.Planned && sum.InjRank < len(run.Ranks) && !run.Ranks[sum.InjRank].Casualty {
		rr := run.Ranks[sum.InjRank]
		sum.MaxCML = rr.MaxCML
		points = rr.Points
		if len(rr.InjCycles) > 0 {
			sum.InjCycle = rr.InjCycles[0]
			sum.Fired = true
		}
	}
	for i := range run.Ranks {
		if run.Ranks[i].Ever && !run.Ranks[i].Casualty {
			sum.RanksContaminated++
		}
	}
	// Fit the propagation model from the injected rank's CML series,
	// starting at the first contamination (the paper fits the growth
	// segment of each profile).
	if fit, err := model.FitRun(points); err == nil {
		sum.Fit = fit
		sum.HasFit = true
	}
	if tr != nil {
		tr.Classify = time.Since(phaseStart)
	}
	return expOut{sum: sum, points: points, spread: run.Spread.Series(), structCML: run.StructCML}
}
