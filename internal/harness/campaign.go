package harness

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/apps"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/transform"
	"repro/internal/xrand"
)

// CampaignConfig parameterizes a statistical fault-injection campaign over
// one application (paper §4: 5,000 runs, one fault per run into a randomly
// selected MPI process; reduced counts for tests and benchmarks).
type CampaignConfig struct {
	App    apps.App
	Params apps.Params
	// Runs is the number of injection experiments.
	Runs int
	// Seed drives all campaign randomness deterministically.
	Seed uint64
	// MultiFaultLambda, when positive, switches to the LLFI++ multi-fault
	// mode: each rank receives Poisson(lambda) faults per run.
	MultiFaultLambda float64
	// HangFactor multiplies the golden cycle count into the hang budget.
	HangFactor float64
	// SampleEvery subsamples CML traces (cycles between samples).
	SampleEvery uint64
	// Workers bounds experiment-level parallelism (0: GOMAXPROCS).
	Workers int
	// KeepProfiles bounds how many representative CML profiles are kept
	// per outcome class (0: 2, as plotted in the paper's Fig. 7).
	KeepProfiles int
}

// ExperimentSummary is the retained record of one injection run.
type ExperimentSummary struct {
	ID      int
	Plan    inject.Plan
	Outcome classify.Outcome
	// InjRank is the rank of the first planned fault.
	InjRank int
	// InjCycle is the rank-local application cycle of the first applied
	// fault (0 when the fault never fired).
	InjCycle uint64
	// Fired reports whether any planned fault actually applied.
	Fired bool
	// MaxCML is the peak of the injected rank's CML.
	MaxCML int
	// TotalPeakCML sums every rank's peak CML.
	TotalPeakCML int
	// ContamPct is TotalPeakCML over the application memory extent, in
	// percent (paper Fig. 7f).
	ContamPct float64
	// RanksContaminated counts ranks whose memory was ever contaminated.
	RanksContaminated int
	// Cycles is the run's maximum application cycle count.
	Cycles uint64
	// Fit is the per-run propagation model, when one could be fitted.
	Fit    model.RunFit
	HasFit bool
}

// Profile is a retained CML(t) series with its classification (Fig. 7).
type Profile struct {
	ID      int
	Outcome classify.Outcome
	Points  []trace.Point
}

// SpreadSeries is a retained corrupted-ranks-over-time series (Fig. 8).
type SpreadSeries struct {
	ID     int
	Points []trace.SpreadPoint
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	App         string
	Params      apps.Params
	Runs        int
	Golden      classify.Golden
	GoldenSites []uint64
	// AllocatedWords is the per-job application memory extent.
	AllocatedWords int64

	Tally       classify.Tally
	Experiments []ExperimentSummary
	Profiles    []Profile
	BestSpread  SpreadSeries
	Model       model.AppModel
	// StructTotals sums end-of-run contamination per data structure over
	// all experiments (the DVF-style breakdown).
	StructTotals map[string]int
}

// RunCampaign executes the campaign.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	if cfg.Runs <= 0 {
		return nil, fmt.Errorf("harness: campaign needs Runs > 0")
	}
	if cfg.HangFactor == 0 {
		cfg.HangFactor = 4
	}
	if cfg.KeepProfiles == 0 {
		cfg.KeepProfiles = 2
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	prog, err := cfg.App.Build(cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("harness: build %s: %w", cfg.App.Name(), err)
	}
	inst, err := transform.Instrument(prog, transform.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("harness: instrument %s: %w", cfg.App.Name(), err)
	}

	// Golden (fault-free) run: reference outputs, cycle budget, and the
	// per-rank dynamic injection-site space.
	golden := core.Run(inst, core.RunConfig{Ranks: cfg.Params.Ranks, SampleEvery: cfg.SampleEvery})
	if golden.Err != nil {
		return nil, fmt.Errorf("harness: golden run of %s failed: %w", cfg.App.Name(), golden.Err)
	}
	res := &CampaignResult{
		App:    cfg.App.Name(),
		Params: cfg.Params,
		Runs:   cfg.Runs,
		Golden: classify.Golden{
			Outputs:    golden.Outputs,
			Cycles:     golden.Cycles,
			Iterations: golden.Iterations,
		},
		GoldenSites:    golden.SiteCounts(),
		AllocatedWords: golden.AllocatedTotal,
	}

	criteria := classify.DefaultCriteria()
	cycleLimit := uint64(float64(golden.Cycles) * cfg.HangFactor)
	master := xrand.New(cfg.Seed)
	plans := make([]inject.Plan, cfg.Runs)
	for i := range plans {
		r := master.Split()
		if cfg.MultiFaultLambda > 0 {
			plans[i] = inject.MultiFaultPlan(r, res.GoldenSites, cfg.MultiFaultLambda)
		} else {
			p, err := inject.UniformSinglePlan(r, res.GoldenSites)
			if err != nil {
				return nil, err
			}
			plans[i] = p
		}
	}

	outs := make([]expOut, cfg.Runs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i := 0; i < cfg.Runs; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			outs[i] = runExperiment(i, inst, plans[i], cfg, criteria, res.Golden, cycleLimit)
		}(i)
	}
	wg.Wait()

	perClass := make(map[classify.Outcome]int)
	bestSpreadLen := 0
	res.StructTotals = make(map[string]int)
	for i := range outs {
		o := &outs[i]
		for k, v := range o.structCML {
			res.StructTotals[k] += v
		}
		res.Tally.Add(o.sum.Outcome)
		res.Experiments = append(res.Experiments, o.sum)
		if len(o.points) >= 3 && perClass[o.sum.Outcome] < cfg.KeepProfiles {
			perClass[o.sum.Outcome]++
			res.Profiles = append(res.Profiles, Profile{
				ID: o.sum.ID, Outcome: o.sum.Outcome, Points: o.points,
			})
		}
		if len(o.spread) > bestSpreadLen {
			bestSpreadLen = len(o.spread)
			res.BestSpread = SpreadSeries{ID: o.sum.ID, Points: o.spread}
		}
	}
	var fits []model.RunFit
	for i := range res.Experiments {
		if res.Experiments[i].HasFit {
			fits = append(fits, res.Experiments[i].Fit)
		}
	}
	res.Model = model.BuildAppModel(res.App, fits)
	return res, nil
}

// expOut is the per-experiment material the aggregation step consumes.
type expOut struct {
	sum       ExperimentSummary
	points    []trace.Point
	spread    []trace.SpreadPoint
	structCML map[string]int
}

// runExperiment executes one fault-injection run and condenses it.
func runExperiment(id int, inst *ir.Program, plan inject.Plan, cfg CampaignConfig,
	criteria classify.Criteria, golden classify.Golden, cycleLimit uint64) expOut {

	run := core.Run(inst, core.RunConfig{
		Ranks:       cfg.Params.Ranks,
		CycleLimit:  cycleLimit,
		Plan:        plan,
		SampleEvery: cfg.SampleEvery,
	})
	sum := ExperimentSummary{
		ID:           id,
		Plan:         plan,
		Outcome:      criteria.Classify(golden, run.ToRunResult()),
		TotalPeakCML: run.MaxCMLTotal,
		Cycles:       run.Cycles,
	}
	if len(plan.Faults) > 0 {
		sum.InjRank = plan.Faults[0].Rank
	}
	if run.AllocatedTotal > 0 {
		sum.ContamPct = 100 * float64(run.MaxCMLTotal) / float64(run.AllocatedTotal)
	}
	var points []trace.Point
	if sum.InjRank < len(run.Ranks) {
		rr := run.Ranks[sum.InjRank]
		sum.MaxCML = rr.MaxCML
		points = rr.Points
		if len(rr.InjCycles) > 0 {
			sum.InjCycle = rr.InjCycles[0]
			sum.Fired = true
		}
	}
	for i := range run.Ranks {
		if run.Ranks[i].Ever {
			sum.RanksContaminated++
		}
	}
	// Fit the propagation model from the injected rank's CML series,
	// starting at the first contamination (the paper fits the growth
	// segment of each profile).
	if fit, err := model.FitRun(points); err == nil {
		sum.Fit = fit
		sum.HasFit = true
	}
	return expOut{sum: sum, points: points, spread: run.Spread.Series(), structCML: run.StructCML}
}
