package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/analytics"
	"repro/internal/apps"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/transform"
	"repro/internal/xrand"
)

// Sampling is the statistical half of a campaign configuration: what to
// inject, how much, and — when adaptive — when the estimates are good
// enough to stop. Every field is result-determining and fingerprinted.
type Sampling struct {
	// Runs is the number of injection experiments (adaptive campaigns
	// treat it as the experiment budget and ID space; see TargetCI).
	Runs int
	// Seed drives all campaign randomness deterministically. Experiment i
	// draws from the position-addressable stream xrand.At(Seed, i), so
	// results do not depend on worker count, completion order, or whether
	// the campaign was resumed from a checkpoint.
	Seed uint64
	// TargetCI, when positive, switches the campaign to adaptive
	// sequential sampling: injection sites are partitioned into strata
	// (instruction class × golden-execution phase), experiments are spent
	// in deterministic rounds steered toward the strata with the widest
	// outcome-rate confidence intervals, and a stratum stops once every
	// outcome rate is known within ±TargetCI (95% Wilson half-width).
	// Runs remains the hard budget and ID space; the planner executes a
	// deterministic subset of it.
	TargetCI float64
	// Strata is the number of golden-execution phases per instruction
	// class in the stratification (0: 4 when TargetCI is set, otherwise
	// stratification is off). Setting Strata without TargetCI annotates
	// every experiment and the final report with per-stratum statistics
	// while still executing the full fixed-Runs campaign.
	Strata int
	// MultiFaultLambda, when positive, switches to the LLFI++ multi-fault
	// mode: each rank receives Poisson(lambda) faults per run.
	MultiFaultLambda float64
	// Sites, when set, enables per-site propagation analytics: every
	// experiment is attributed to the static fim_inj site of its first
	// fault (via the one-off golden site-observer profile), its CML
	// trajectory shape and cleanse cause are recorded in the summary, and
	// the campaign carries mergeable per-site tallies that finalize into a
	// Wilson-ranked vulnerability table (CampaignResult.Sites).
	// Result-determining (summaries gain a pattern record), so it is
	// fingerprinted.
	Sites bool
}

// Validate checks the sampling policy in isolation.
func (s Sampling) Validate() error {
	switch {
	case s.Runs <= 0:
		return &FieldError{Field: "Runs", Reason: "must be > 0"}
	case s.TargetCI < 0:
		return &FieldError{Field: "TargetCI", Reason: "must be >= 0"}
	case s.TargetCI >= 1:
		return &FieldError{Field: "TargetCI", Reason: "is a rate half-width, must be < 1"}
	case s.Strata < 0:
		return &FieldError{Field: "Strata", Reason: "must be >= 0"}
	case s.MultiFaultLambda < 0:
		return &FieldError{Field: "MultiFaultLambda", Reason: "must be >= 0"}
	}
	return nil
}

// Adaptive reports whether the policy uses sequential stopping.
func (s Sampling) Adaptive() bool { return s.TargetCI > 0 }

// stratified reports whether experiments are assigned to strata at all
// (adaptive campaigns always are; fixed-N campaigns opt in via Strata).
func (s Sampling) stratified() bool { return s.TargetCI > 0 || s.Strata > 0 }

// phases resolves the Strata zero-value default.
func (s Sampling) phases() int {
	if s.Strata > 0 {
		return s.Strata
	}
	if s.TargetCI > 0 {
		return defaultStrataPhases
	}
	return 0
}

// Execution groups the knobs that shape how experiments run, not what they
// compute: parallelism, the snapshot-fork fast path, the hang budget and
// trace sampling. HangFactor and SampleEvery are result-determining (they
// are fingerprinted); Workers and Snapshots only schedule.
type Execution struct {
	// Workers bounds experiment-level parallelism (0: GOMAXPROCS).
	Workers int
	// Snapshots, when positive, enables the snapshot-fork fast path: up to
	// this many full-state snapshots of the golden execution are captured
	// at quiesce points chosen to precede the shard's planned injections,
	// and each experiment forks from the best usable snapshot instead of
	// re-executing the clean prefix (0 disables; every experiment runs
	// from step 0). Purely a performance strategy — results are
	// byte-identical either way — so it is excluded from the checkpoint
	// fingerprint, and shards of one campaign may mix modes freely.
	Snapshots int
	// HangFactor multiplies the golden cycle count into the hang budget.
	HangFactor float64
	// SampleEvery subsamples CML traces (cycles between samples).
	SampleEvery uint64
}

// Validate checks the execution settings in isolation.
func (e Execution) Validate() error {
	switch {
	case e.HangFactor < 0:
		return &FieldError{Field: "HangFactor", Reason: "must be >= 0"}
	case e.Workers < 0:
		return &FieldError{Field: "Workers", Reason: "must be >= 0"}
	case e.Snapshots < 0:
		return &FieldError{Field: "Snapshots", Reason: "must be >= 0"}
	}
	return nil
}

// Retention bounds what the aggregator keeps per campaign. Both caps shape
// the retained result, never the per-experiment outcomes, so they are
// excluded from the fingerprint (but partials with different retention do
// not merge).
type Retention struct {
	// KeepProfiles bounds how many representative CML profiles are kept
	// per outcome class (0: 2, as plotted in the paper's Fig. 7).
	KeepProfiles int
	// MaxSummaries bounds the retained per-experiment summaries (0: keep
	// all). When set, CampaignResult.Experiments holds the MaxSummaries
	// lowest-ID summaries while the tally, structure totals, and model
	// still cover every run.
	MaxSummaries int
}

// Validate checks the retention caps in isolation.
func (r Retention) Validate() error {
	switch {
	case r.KeepProfiles < 0:
		return &FieldError{Field: "KeepProfiles", Reason: "must be >= 0"}
	case r.MaxSummaries < 0:
		return &FieldError{Field: "MaxSummaries", Reason: "must be >= 0"}
	}
	return nil
}

// Persistence groups the checkpoint-journal settings.
type Persistence struct {
	// Checkpoint, when set, journals every completed experiment (and, for
	// adaptive campaigns, every planner decision) to this JSONL path so a
	// killed campaign can be resumed.
	Checkpoint string
	// Resume replays the Checkpoint journal, skipping already-completed
	// experiments. The journal must have been written by a campaign with
	// the same result-determining configuration.
	Resume bool
}

// Validate checks the persistence settings in isolation.
func (p Persistence) Validate() error {
	if p.Resume && p.Checkpoint == "" {
		return &FieldError{Field: "Resume", Reason: "requires a Checkpoint path"}
	}
	return nil
}

// CampaignConfig parameterizes a statistical fault-injection campaign over
// one application (paper §4: 5,000 runs, one fault per run into a randomly
// selected MPI process; reduced counts for tests and benchmarks). The
// knobs are grouped into typed sections — Sampling (what to inject and
// when to stop), Execution (how experiments run), Retention (what the
// aggregate keeps) and Persistence (checkpoint journaling) — embedded
// here, so existing field reads (cfg.Runs, cfg.Workers, …) keep working
// through Go field promotion while constructors name the sections.
type CampaignConfig struct {
	App    apps.App
	Params apps.Params

	Sampling
	Execution
	Retention
	Persistence

	// Protect lists static fim_inj site ordinals to protect: the transform
	// restores each listed site's injected operand from its source register
	// right after the injection point, correcting any flip there at the
	// cost of one application cycle per dynamic execution — the
	// selective-protection scenario evaluated by `campaign -protect-top`.
	// Must be strictly ascending. Result-determining (it changes the
	// program under test), so it is fingerprinted; protection never changes
	// the number or order of injection sites, so a given seed draws
	// identical fault plans with and without it.
	Protect []int

	// Progress, when non-nil, receives live metrics (see Progress).
	Progress *Progress
	// StopAfter, when positive, interrupts the campaign after roughly that
	// many newly executed experiments: RunCampaign journals what finished
	// and returns ErrInterrupted. It simulates a mid-campaign kill for
	// checkpoint testing and gives operators a bounded-work mode.
	StopAfter int
	// OnExperiment, when non-nil, observes every experiment folded into the
	// aggregate — replayed checkpoint records first (resumed=true), then
	// live completions in completion order. It is called from the single
	// aggregation goroutine, so implementations need no locking against
	// each other but must not block for long: the callback is on the
	// campaign's critical path. It does not influence results and is
	// excluded from the checkpoint fingerprint.
	OnExperiment func(sum ExperimentSummary, resumed bool)
	// Trace is an operator- or service-assigned span ID stamped into the
	// checkpoint journal header (and the service's logs and events) so one
	// grep follows a campaign or shard across processes. Purely
	// observational: excluded from the fingerprint, never
	// result-determining.
	Trace string
	// Timings, when non-nil, aggregates per-outcome and per-phase latency
	// histograms over every executed (not resumed) experiment;
	// RunShardContext stamps them into the PartialResult so shard timings
	// merge back at the coordinator. Observed from worker goroutines
	// (CampaignTimings is concurrency-safe). Excluded from the
	// fingerprint.
	Timings *CampaignTimings
	// OnPhase, when non-nil, observes each executed experiment's phase
	// timings as it completes. Unlike OnExperiment it is called directly
	// from worker goroutines, concurrently — implementations must be
	// thread-safe and fast. It does not influence results and is excluded
	// from the fingerprint. When both Timings and OnPhase are nil, phase
	// tracing is disabled and experiments pay only a nil check.
	OnPhase func(PhaseTrace)
	// Gate, when non-nil, is a token bucket shared between concurrent
	// campaigns: every experiment holds one token while it executes, so the
	// total experiment parallelism across all campaigns sharing the channel
	// is bounded by its capacity (fill it with that many empty structs).
	// The per-campaign Workers setting still bounds this campaign alone.
	// Like Workers, the gate shapes scheduling only — results are
	// position-addressed by seed — so it is excluded from the fingerprint.
	Gate chan struct{}

	// reuse carries a worker's recyclable run infrastructure (per-rank VM
	// state, MPI job fabric) into runExperiment. Set per worker goroutine
	// on its private copy of the config; purely an allocation
	// optimization, so it is excluded from the checkpoint fingerprint and
	// never result-determining.
	reuse *core.Reuse
}

// ErrInterrupted reports a campaign stopped before completing every run;
// the checkpoint journal holds the completed experiments.
var ErrInterrupted = errors.New("harness: campaign interrupted")

// FieldError reports one invalid CampaignConfig field. Validate returns
// the first violation; callers can errors.As for the field name.
type FieldError struct {
	Field  string
	Reason string
}

func (e *FieldError) Error() string {
	return fmt.Sprintf("harness: invalid config: %s: %s", e.Field, e.Reason)
}

// Validate checks the configuration without running anything. It is called
// by RunCampaign and RunShardContext, so callers only need it to fail fast
// (e.g. at submission time) before spending a golden run. Section-level
// checks are delegated to each sub-struct's Validate.
func (cfg CampaignConfig) Validate() error {
	if cfg.App == nil {
		return &FieldError{Field: "App", Reason: "must be set"}
	}
	if err := cfg.Sampling.Validate(); err != nil {
		return err
	}
	if err := cfg.Execution.Validate(); err != nil {
		return err
	}
	if err := cfg.Retention.Validate(); err != nil {
		return err
	}
	if err := cfg.Persistence.Validate(); err != nil {
		return err
	}
	if cfg.StopAfter < 0 {
		return &FieldError{Field: "StopAfter", Reason: "must be >= 0"}
	}
	for i, s := range cfg.Protect {
		if s < 0 {
			return &FieldError{Field: "Protect", Reason: "site ordinals must be >= 0"}
		}
		if i > 0 && s <= cfg.Protect[i-1] {
			return &FieldError{Field: "Protect", Reason: "must be strictly ascending"}
		}
	}
	return nil
}

// transformOptions derives the FPM pass options from the campaign
// configuration: the default injection classes plus the
// selective-protection site list.
func (cfg CampaignConfig) transformOptions() transform.Options {
	o := transform.DefaultOptions()
	o.Protect = cfg.Protect
	return o
}

// withDefaults resolves the zero-value conventions into concrete settings.
// Defaults that are result-determining (HangFactor, the adaptive phase
// count) must be applied before fingerprinting, which is why Fingerprint
// normalizes the same way.
func (cfg CampaignConfig) withDefaults() CampaignConfig {
	if cfg.HangFactor == 0 {
		cfg.HangFactor = 4
	}
	if cfg.Strata == 0 {
		cfg.Strata = cfg.Sampling.phases()
	}
	if cfg.KeepProfiles == 0 {
		cfg.KeepProfiles = 2
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return cfg
}

// ExperimentSummary is the retained record of one injection run.
type ExperimentSummary struct {
	ID      int
	Plan    inject.Plan
	Outcome classify.Outcome
	// Planned reports whether the plan contained at least one fault.
	// Multi-fault mode legitimately draws zero-fault plans; those runs
	// must not masquerade as injections into rank 0.
	Planned bool
	// InjRank is the rank of the first planned fault (meaningless unless
	// Planned).
	InjRank int
	// InjCycle is the rank-local application cycle of the first applied
	// fault (0 when the fault never fired).
	InjCycle uint64
	// Fired reports whether any planned fault actually applied.
	Fired bool
	// MaxCML is the peak of the injected rank's CML.
	MaxCML int
	// TotalPeakCML sums every rank's peak CML.
	TotalPeakCML int
	// ContamPct is TotalPeakCML over the application memory extent, in
	// percent (paper Fig. 7f).
	ContamPct float64
	// RanksContaminated counts ranks whose memory was ever contaminated.
	RanksContaminated int
	// Cycles is the run's maximum application cycle count.
	Cycles uint64
	// Fit is the per-run propagation model, when one could be fitted.
	Fit    model.RunFit
	HasFit bool
	// Stratum is the experiment's sampling stratum when the campaign is
	// stratified — the class × phase cell of the plan's first fault (see
	// Strata) — and 0 otherwise, omitted from JSON so unstratified journals
	// and partials keep their historical bytes.
	Stratum int `json:",omitempty"`
	// Pattern is the propagation-pattern record when per-site analytics are
	// enabled (Sampling.Sites): the static site of the first fault, the CML
	// trajectory shape, and the cleanse cause. Nil otherwise (and for
	// zero-fault plans), omitted from JSON so legacy journals and partials
	// keep their historical bytes.
	Pattern *analytics.Pattern `json:",omitempty"`
	// Diag carries the recovered panic diagnostic when the experiment
	// infrastructure itself failed; such runs classify as Crashed.
	Diag string `json:",omitempty"`
}

// Profile is a retained CML(t) series with its classification (Fig. 7).
type Profile struct {
	ID      int
	Outcome classify.Outcome
	Points  []trace.Point
}

// SpreadSeries is a retained corrupted-ranks-over-time series (Fig. 8).
type SpreadSeries struct {
	ID     int
	Points []trace.SpreadPoint
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	App         string
	Params      apps.Params
	Runs        int
	Golden      classify.Golden
	GoldenSites []uint64
	// AllocatedWords is the per-job application memory extent.
	AllocatedWords int64

	Tally       classify.Tally
	Experiments []ExperimentSummary
	Profiles    []Profile
	BestSpread  SpreadSeries
	Model       model.AppModel
	// StructTotals sums end-of-run contamination per data structure over
	// all experiments (the DVF-style breakdown).
	StructTotals map[string]int
	// Strata is the per-stratum vulnerability table when the campaign was
	// stratified (nil otherwise). For adaptive campaigns Tally.Total — the
	// experiments actually spent — may be well below Runs, the budget.
	Strata []StratumReport
	// Sites is the per-site vulnerability ranking when per-site analytics
	// were enabled (Sampling.Sites), ordered most-vulnerable first; nil
	// otherwise, so legacy results render and serialize unchanged.
	Sites []SiteReport
}

// coreRun and coreRunResumed indirect the core entry points so tests can
// inject infrastructure failures.
var (
	coreRun        = core.Run
	coreRunResumed = core.RunResumed
)

// RunCampaign executes the campaign: a golden profiling run, then Runs
// fault-injection experiments streamed through a single-pass aggregator.
// Completed experiments are journaled to cfg.Checkpoint when set, and
// cfg.Resume restarts a killed campaign where it left off, with results
// identical to an uninterrupted run.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	return RunCampaignContext(context.Background(), cfg)
}

// RunCampaignContext is RunCampaign with cancellation: when ctx is
// cancelled the campaign stops handing out new experiments, waits for the
// in-flight ones, journals everything that finished, and returns an error
// wrapping both ErrInterrupted and the context's cause. A cancelled
// campaign with a Checkpoint therefore leaves a resumable journal, and
// resuming it yields results identical to an uninterrupted run.
//
// It is a thin wrapper over RunShardContext: the whole campaign is the
// [0, Runs) shard, finalized in place.
func RunCampaignContext(ctx context.Context, cfg CampaignConfig) (*CampaignResult, error) {
	part, err := RunShardContext(ctx, cfg, ShardSpec{Shards: 1, To: cfg.Runs, Runs: cfg.Runs})
	if err != nil {
		return nil, err
	}
	return part.Finalize()
}

// RunShard is RunShardContext with a background context.
func RunShard(cfg CampaignConfig, spec ShardSpec) (*PartialResult, error) {
	return RunShardContext(context.Background(), cfg, spec)
}

// RunShardContext executes the experiments in spec's ID range [From, To)
// and returns their mergeable partial aggregate. Experiment i draws from
// xrand.At(Seed, i) regardless of sharding, so running a campaign as any
// partition of shards — in any processes, merged in any order — finalizes
// into results byte-identical to the single-process run. When spec carries
// a Fingerprint it must match the configuration; cfg.Checkpoint journals
// are per-shard (give each shard its own path).
func RunShardContext(ctx context.Context, cfg CampaignConfig, spec ShardSpec) (*PartialResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if spec.Runs == 0 {
		spec.Runs = cfg.Runs
	}
	if err := spec.validate(cfg); err != nil {
		return nil, err
	}
	// Snapshot-fork campaigns draw the instrumented program from the
	// configuration's process-wide pack, so repeated campaigns over the
	// same configuration share one build, one quiesce profile and the
	// captured golden snapshots (see pack.go).
	var (
		pack      *snapshotPack
		inst      *ir.Program
		siteInfos []transform.SiteInfo
	)
	if cfg.Snapshots > 0 {
		p, err := packFor(cfg)
		if err != nil {
			return nil, err
		}
		pack, inst, siteInfos = p, p.inst, p.sites
	} else {
		prog, err := cfg.App.Build(cfg.Params)
		if err != nil {
			return nil, fmt.Errorf("harness: build %s: %w", cfg.App.Name(), err)
		}
		in, infos, err := transform.InstrumentSites(prog, cfg.transformOptions())
		if err != nil {
			return nil, fmt.Errorf("harness: instrument %s: %w", cfg.App.Name(), err)
		}
		inst, siteInfos = in, infos
	}

	// Golden (fault-free) run: reference outputs, cycle budget, and the
	// per-rank dynamic injection-site space.
	var golden core.RunOutcome
	if pack != nil {
		golden = pack.golden(cfg)
	} else {
		golden = coreRun(inst, core.RunConfig{Ranks: cfg.Params.Ranks, SampleEvery: cfg.SampleEvery})
	}
	if golden.Err != nil {
		return nil, fmt.Errorf("harness: golden run of %s failed: %w", cfg.App.Name(), golden.Err)
	}
	part := &PartialResult{
		Fingerprint: cfg.fingerprint(),
		App:         cfg.App.Name(),
		Params:      cfg.Params,
		Runs:        cfg.Runs,
		Golden: classify.Golden{
			Outputs:    golden.Outputs,
			Cycles:     golden.Cycles,
			Iterations: golden.Iterations,
		},
		GoldenSites:    golden.SiteCounts(),
		AllocatedWords: golden.AllocatedTotal,
		KeepProfiles:   cfg.KeepProfiles,
		MaxSummaries:   cfg.MaxSummaries,
	}
	hasSites := false
	for _, n := range part.GoldenSites {
		if n > 0 {
			hasSites = true
			break
		}
	}
	if !hasSites {
		return nil, fmt.Errorf("inject: no rank has injection sites")
	}

	criteria := classify.DefaultCriteria()
	cycleLimit := uint64(float64(golden.Cycles) * cfg.HangFactor)

	// Stratified and per-site-analytic campaigns profile the golden
	// execution once more with a site observer, mapping every (rank, site)
	// to its instruction class and static fim_inj ordinal. One profiling
	// run serves both consumers.
	var strata *Strata
	var sites *siteMap
	if cfg.stratified() || cfg.Sites {
		gsites, classes, statics, err := profileSiteSpace(inst, cfg)
		if err != nil {
			return nil, err
		}
		if cfg.stratified() {
			strata = &Strata{Phases: cfg.Sampling.phases(), sites: gsites, classes: classes}
		}
		if cfg.Sites {
			sites = newSiteMap(siteInfos, statics)
		}
	}
	// The planner engages only for whole-range adaptive shards. An
	// explicit-ID shard is already one planner's decision: its worker
	// executes the round verbatim and stays policy-free.
	adaptive := cfg.Adaptive() && len(spec.IDs) == 0

	e := &campaignEngine{
		ctx:        ctx,
		cfg:        cfg,
		inst:       inst,
		part:       part,
		criteria:   criteria,
		cycleLimit: cycleLimit,
		strata:     strata,
		sites:      sites,
		agg:        newAggregator(cfg),
		completed:  make(map[int]bool, spec.Size()),
		reuse:      make([]*core.Reuse, cfg.Workers),
	}
	e.agg.siteMap = sites
	if adaptive {
		e.outcomes = make(map[int]classify.Outcome, spec.Size())
	}

	ids := spec.ids()
	if cfg.Checkpoint != "" {
		// The journal fingerprint binds the file to this shard's range as
		// well as the campaign config (full-range runs keep the legacy
		// campaign-only hash, so existing journals stay resumable).
		fp := journalFingerprint(part.Fingerprint, spec)
		if cfg.Resume {
			if adaptive {
				// An adaptive resume from a fixed-N journal is the one
				// mismatch a config-level Validate cannot catch; diagnose it
				// as the field error it is instead of a bare hash mismatch.
				if err := checkAdaptiveResume(cfg, spec, fp); err != nil {
					return nil, err
				}
			}
			recs, _, err := readJournal(cfg.Checkpoint, fp)
			if err != nil {
				return nil, err
			}
			inShard := make(map[int]bool, len(ids))
			for _, id := range ids {
				inShard[id] = true
			}
			for _, rec := range recs {
				id := rec.Sum.ID
				if !inShard[id] || e.completed[id] {
					continue
				}
				e.completed[id] = true
				e.resumed++
				e.agg.add(rec.toExpOut())
				if e.outcomes != nil {
					e.outcomes[id] = rec.Sum.Outcome
				}
				if cfg.OnExperiment != nil {
					cfg.OnExperiment(rec.Sum, true)
				}
			}
		}
		jw, err := openJournal(cfg.Checkpoint, fp, cfg.Trace, cfg.Resume)
		if err != nil {
			return nil, err
		}
		e.journal = jw
		defer e.journal.Close()
	}

	var pending []int
	for _, id := range ids {
		if !e.completed[id] {
			pending = append(pending, id)
		}
	}

	// Snapshot-fork schedule: profile the golden execution's quiesce
	// points, capture snapshots where this shard's plans can use them.
	// Failure to build one (or Snapshots: 0) just means every experiment
	// re-executes from step 0 — results are identical either way. Adaptive
	// shards schedule over the whole pending budget: a superset of what the
	// planner will spend, which can only make the captured cuts less
	// tailored, never change a result.
	if pack != nil && len(pending) > 0 {
		e.sched = pack.schedule(cfg, part.GoldenSites, pending)
	}

	cfg.Progress.begin(spec.Size(), cfg.Workers)
	cfg.Progress.noteResumed(e.resumed)

	if adaptive {
		if err := e.runAdaptive(ids); err != nil {
			return nil, err
		}
		if !part.AdaptiveDone {
			spent := e.resumed + e.executed
			if cause := context.Cause(ctx); cause != nil {
				return nil, fmt.Errorf("%w after %d of budget %d: %v",
					ErrInterrupted, spent, spec.Size(), cause)
			}
			return nil, fmt.Errorf("%w after %d of budget %d",
				ErrInterrupted, spent, spec.Size())
		}
	} else {
		if err := e.runIDs(pending); err != nil {
			return nil, err
		}
		if e.resumed+e.executed < spec.Size() {
			if cause := context.Cause(ctx); cause != nil {
				return nil, fmt.Errorf("%w after %d of %d experiments: %v",
					ErrInterrupted, e.resumed+e.executed, spec.Size(), cause)
			}
			return nil, fmt.Errorf("%w after %d of %d experiments",
				ErrInterrupted, e.resumed+e.executed, spec.Size())
		}
	}
	e.agg.intoPartial(part)
	part.Timings = cfg.Timings
	part.Ranges = completedRanges(ids, e.completed)
	return part, nil
}

// completedRanges coalesces the completed subset of ids (ascending) into
// normalized ID ranges.
func completedRanges(ids []int, completed map[int]bool) []IDRange {
	var out []IDRange
	for _, id := range ids {
		if !completed[id] {
			continue
		}
		if n := len(out); n > 0 && out[n-1].To == id {
			out[n-1].To = id + 1
			continue
		}
		out = append(out, IDRange{From: id, To: id + 1})
	}
	return out
}

// campaignEngine is the execution core shared by fixed-N and adaptive
// campaigns: a worker pool that runs an arbitrary set of experiment IDs
// through one streaming aggregator, journaling every completion. Fixed-N
// shards call runIDs once over their pending range; the adaptive planner
// calls it once per round, reusing the same workers' run infrastructure.
type campaignEngine struct {
	ctx        context.Context
	cfg        CampaignConfig
	inst       *ir.Program
	part       *PartialResult
	criteria   classify.Criteria
	cycleLimit uint64
	sched      *snapSchedule
	strata     *Strata
	sites      *siteMap
	agg        *aggregator
	journal    *journalWriter

	// completed marks every finished experiment (replayed or executed);
	// outcomes mirrors their classifications for the adaptive planner (nil
	// for fixed-N shards, which never read outcomes back).
	completed map[int]bool
	outcomes  map[int]classify.Outcome

	// reuse holds one recyclable run-infrastructure bundle per worker slot,
	// allocated lazily and persisted across adaptive rounds.
	reuse []*core.Reuse

	resumed  int
	executed int
	// halted records that work intake stopped early (cancellation or
	// StopAfter); subsequent runIDs calls are no-ops.
	halted bool
}

// runIDs executes the given experiment IDs on the engine's worker pool and
// folds every completion into the aggregate (and journal). It returns an
// error only for journal failures; cancellation and StopAfter set
// e.halted, and in-flight experiments drain into the aggregate either way
// so they are journaled before the engine unwinds.
func (e *campaignEngine) runIDs(ids []int) error {
	if e.halted || len(ids) == 0 {
		return nil
	}
	cfg := e.cfg
	work := make(chan int)
	outs := make(chan expOut, cfg.Workers)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	// Cancellation stops work intake; in-flight experiments drain through
	// the aggregation loop below so they are journaled before returning.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-e.ctx.Done():
			halt()
		case <-watchDone:
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker reuse bundle: the address spaces, contamination
			// tables and MPI job fabric are allocated once per worker slot
			// and recycled through every experiment — and, for adaptive
			// campaigns, across planner rounds.
			if e.reuse[w] == nil {
				e.reuse[w] = core.NewReuse(cfg.Params.Ranks)
			}
			wcfg := cfg
			wcfg.reuse = e.reuse[w]
			// Phase tracing costs ~two time.Now calls per experiment when
			// enabled and a nil check when not.
			traced := cfg.Timings != nil || cfg.OnPhase != nil
			for id := range work {
				if cfg.Gate != nil {
					<-cfg.Gate
				}
				cfg.Progress.noteStart()
				t0 := time.Now()
				var tr *PhaseTrace
				if traced {
					tr = &PhaseTrace{ID: id}
				}
				plan := planFor(cfg, id, e.part.GoldenSites)
				if tr != nil {
					tr.Inject = time.Since(t0)
				}
				o := runExperiment(id, e.inst, plan, wcfg, e.criteria, e.part.Golden, e.cycleLimit, e.sched, tr)
				if e.strata != nil {
					o.sum.Stratum = e.strata.StratumOf(plan)
				}
				if e.sites != nil {
					o.sum.Pattern = e.sites.patternFor(plan, o.sum, o.points)
				}
				elapsed := time.Since(t0)
				cfg.Progress.noteDone(o.sum.Outcome, elapsed)
				if tr != nil {
					tr.Outcome = o.sum.Outcome
					tr.Total = elapsed
					cfg.Timings.Observe(*tr)
					if cfg.OnPhase != nil {
						cfg.OnPhase(*tr)
					}
				}
				if cfg.Gate != nil {
					cfg.Gate <- struct{}{}
				}
				outs <- o
			}
		}(w)
	}
	go func() {
		defer close(work)
		for _, id := range ids {
			select {
			case work <- id:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outs)
	}()

	var journalErr error
	for o := range outs {
		if e.journal != nil && journalErr == nil {
			if err := e.journal.append(o); err != nil {
				journalErr = fmt.Errorf("harness: checkpoint append: %w", err)
				e.halted = true
				halt()
			}
		}
		e.agg.add(o)
		e.completed[o.sum.ID] = true
		if e.outcomes != nil {
			e.outcomes[o.sum.ID] = o.sum.Outcome
		}
		e.executed++
		if cfg.OnExperiment != nil {
			cfg.OnExperiment(o.sum, false)
		}
		if cfg.StopAfter > 0 && e.executed >= cfg.StopAfter {
			e.halted = true
			halt()
		}
	}
	halt()
	// Cancellation is observed here, on the engine's own goroutine, rather
	// than in the watcher above (which would race with the loop's writes).
	if e.ctx.Err() != nil {
		e.halted = true
	}
	return journalErr
}

// planFor draws experiment id's fault plan from its position-addressable
// random stream. RunCampaign validated that at least one rank has
// injection sites, so single-fault planning cannot fail here.
func planFor(cfg CampaignConfig, id int, sites []uint64) inject.Plan {
	r := xrand.At(cfg.Seed, uint64(id))
	if cfg.MultiFaultLambda > 0 {
		return inject.MultiFaultPlan(r, sites, cfg.MultiFaultLambda)
	}
	p, _ := inject.UniformSinglePlan(r, sites)
	return p
}

// expOut is the per-experiment material the aggregation step consumes.
type expOut struct {
	sum       ExperimentSummary
	points    []trace.Point
	spread    []trace.SpreadPoint
	structCML map[string]int
}

// runExperiment executes one fault-injection run and condenses it. A panic
// anywhere in the experiment pipeline is contained here: the run classifies
// as Crashed with the diagnostic retained, and the campaign continues.
// When tr is non-nil the restore, execute and classify phases are timed
// into it (a panicking experiment leaves whatever phases completed).
func runExperiment(id int, inst *ir.Program, plan inject.Plan, cfg CampaignConfig,
	criteria classify.Criteria, golden classify.Golden, cycleLimit uint64,
	sched *snapSchedule, tr *PhaseTrace) (out expOut) {

	defer func() {
		if p := recover(); p != nil {
			out = expOut{sum: ExperimentSummary{
				ID:      id,
				Plan:    plan,
				Planned: len(plan.Faults) > 0,
				Outcome: classify.Crashed,
				Diag:    fmt.Sprintf("experiment panic: %v\n%s", p, debug.Stack()),
			}}
		}
	}()

	var phaseStart time.Time
	if tr != nil {
		phaseStart = time.Now()
	}
	rcfg := core.RunConfig{
		Ranks:       cfg.Params.Ranks,
		CycleLimit:  cycleLimit,
		Plan:        plan,
		SampleEvery: cfg.SampleEvery,
		Reuse:       cfg.reuse,
	}
	var run core.RunOutcome
	if snap := sched.Best(plan); snap != nil {
		run = coreRunResumed(inst, rcfg, snap)
	} else {
		run = coreRun(inst, rcfg)
	}
	if tr != nil {
		now := time.Now()
		tr.Restore = run.RestoreDur
		tr.Execute = now.Sub(phaseStart) - run.RestoreDur
		tr.Forked = run.Forked
		tr.RestoreBytes = run.RestoreBytes
		tr.RestoreFrac = run.RestoreFrac()
		phaseStart = now
	}
	sum := ExperimentSummary{
		ID:           id,
		Plan:         plan,
		Planned:      len(plan.Faults) > 0,
		Outcome:      criteria.Classify(golden, run.ToRunResult()),
		TotalPeakCML: run.MaxCMLTotal,
		Cycles:       run.Cycles,
	}
	if sum.Planned {
		sum.InjRank = plan.Faults[0].Rank
	}
	if run.AllocatedTotal > 0 {
		sum.ContamPct = 100 * float64(run.MaxCMLTotal) / float64(run.AllocatedTotal)
	}
	// Casualty ranks (cut down at a scheduling-dependent moment after a
	// peer crashed) carry no reliable observations; skipping them keeps
	// every summary field a pure function of the seed.
	var points []trace.Point
	if sum.Planned && sum.InjRank < len(run.Ranks) && !run.Ranks[sum.InjRank].Casualty {
		rr := run.Ranks[sum.InjRank]
		sum.MaxCML = rr.MaxCML
		points = rr.Points
		if len(rr.InjCycles) > 0 {
			sum.InjCycle = rr.InjCycles[0]
			sum.Fired = true
		}
	}
	for i := range run.Ranks {
		if run.Ranks[i].Ever && !run.Ranks[i].Casualty {
			sum.RanksContaminated++
		}
	}
	// Fit the propagation model from the injected rank's CML series,
	// starting at the first contamination (the paper fits the growth
	// segment of each profile).
	if fit, err := model.FitRun(points); err == nil {
		sum.Fit = fit
		sum.HasFit = true
	}
	if tr != nil {
		tr.Classify = time.Since(phaseStart)
	}
	return expOut{sum: sum, points: points, spread: run.Spread.Series(), structCML: run.StructCML}
}
