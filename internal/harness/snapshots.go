package harness

import (
	"sort"

	"repro/internal/core"
	"repro/internal/inject"
)

// Snapshot-fork scheduling. With CampaignConfig.Snapshots > 0 a shard pays
// up to two extra golden executions up front — one to profile the quiesce
// points (core.RunGoldenProfile), one to capture full state at the chosen
// cuts (core.RunGoldenCapture) — and each experiment then forks from the
// best captured snapshot that precedes all of its planned faults, skipping
// the clean prefix. Both phases are cached in the configuration's
// process-wide snapshotPack (see pack.go): campaigns after the first skip
// the profile run entirely and capture only cuts the pack is missing.
// Snapshot placement is purely a performance strategy: results are
// byte-identical with any placement (including none), which is why
// Snapshots is excluded from the checkpoint fingerprint.

// snapSchedule holds a shard's captured snapshots, ordered by seq. It is
// shared read-only across worker goroutines; forking restores copy out of
// the snapshot, never into it.
type snapSchedule struct {
	snaps []*core.CampaignSnapshot
}

// Best returns the latest captured snapshot every planned fault lies at or
// after, or nil when the experiment must re-execute from step 0.
func (s *snapSchedule) Best(plan inject.Plan) *core.CampaignSnapshot {
	if s == nil {
		return nil
	}
	for i := len(s.snaps) - 1; i >= 0; i-- {
		if s.snaps[i].Usable(plan) {
			return s.snaps[i]
		}
	}
	return nil
}

// bestCutIndex returns the index of the latest cut usable for the plan, or
// -1 when even the earliest cut is past one of the faults. Cuts are in seq
// order and their per-rank site counts are monotone, so usability is a
// prefix property and binary search applies.
func bestCutIndex(cuts []core.SiteCut, plan inject.Plan) int {
	// sort.Search finds the first unusable cut; everything before it is
	// usable.
	n := sort.Search(len(cuts), func(i int) bool { return !cuts[i].Usable(plan) })
	return n - 1
}

// chooseSeqs picks at most budget snapshot seqs as quantiles of the
// per-experiment best-usable-cut distribution, so the captured cuts sit
// where the campaign's fault plans can actually use them. best holds one
// usable-cut index per experiment (unusable experiments excluded); it is
// sorted in place.
func chooseSeqs(cuts []core.SiteCut, best []int, budget int) []uint64 {
	if len(best) == 0 || budget <= 0 {
		return nil
	}
	sort.Ints(best)
	seqs := make([]uint64, 0, budget)
	seen := make(map[uint64]bool, budget)
	for k := 0; k < budget; k++ {
		// Upper-end-inclusive quantiles: k = budget-1 lands on the max, so
		// the experiments with the latest faults — the ones with the most
		// prefix to skip — always get a late cut.
		idx := ((k+1)*len(best) - 1) / budget
		seq := cuts[best[idx]].Seq
		if !seen[seq] {
			seen[seq] = true
			seqs = append(seqs, seq)
		}
	}
	return seqs
}

// schedule profiles the golden execution (once per pack; later campaigns
// reuse the cached cuts), chooses cut seqs for the shard's pending
// experiments, and captures snapshots at the seqs the pack is still
// missing. It returns nil — campaign falls back to re-execution for every
// experiment — when profiling fails or no pending plan can use any cut.
func (p *snapshotPack) schedule(cfg CampaignConfig, sites []uint64, pending []int) *snapSchedule {
	p.mu.Lock()
	defer p.mu.Unlock()
	rcfg := core.RunConfig{Ranks: cfg.Params.Ranks, SampleEvery: cfg.SampleEvery, Reuse: p.reuse}
	if !p.profiled {
		out, cuts := core.RunGoldenProfile(p.inst, rcfg)
		if out.Err != nil || len(cuts) == 0 {
			return nil
		}
		p.cuts, p.profiled = cuts, true
	}
	best := make([]int, 0, len(pending))
	for _, id := range pending {
		if b := bestCutIndex(p.cuts, planFor(cfg, id, sites)); b >= 0 {
			best = append(best, b)
		}
	}
	seqs := chooseSeqs(p.cuts, best, cfg.Snapshots)
	if len(seqs) == 0 {
		return nil
	}
	var missing []uint64
	for _, s := range seqs {
		if p.snaps[s] == nil {
			missing = append(missing, s)
		}
	}
	if len(missing) > 0 {
		out, snaps := core.RunGoldenCapture(p.inst, rcfg, missing)
		if out.Err != nil {
			return nil
		}
		for _, cs := range snaps {
			p.snaps[cs.Cut.Seq] = cs
		}
		p.trim(seqs)
	}
	sched := &snapSchedule{snaps: make([]*core.CampaignSnapshot, 0, len(seqs))}
	for _, s := range seqs {
		if cs := p.snaps[s]; cs != nil {
			sched.snaps = append(sched.snaps, cs)
		}
	}
	if len(sched.snaps) == 0 {
		return nil
	}
	sort.Slice(sched.snaps, func(i, j int) bool {
		return sched.snaps[i].Cut.Seq < sched.snaps[j].Cut.Seq
	})
	return sched
}
