package harness

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/transform"
)

func buildInstrumented(t testing.TB, app apps.App, p apps.Params) *ir.Program {
	t.Helper()
	prog, err := app.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := transform.Instrument(prog, transform.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestRunFaultFreeMatchesReference(t *testing.T) {
	app := apps.NewHydro()
	p := app.TestParams()
	inst := buildInstrumented(t, app, p)
	out := core.Run(inst, core.RunConfig{Ranks: p.Ranks})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	want, err := app.Reference(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Outputs) != len(want) {
		t.Fatalf("outputs = %v, want %v", out.Outputs, want)
	}
	for i := range want {
		if out.Outputs[i] != want[i] {
			t.Errorf("output %d = %v, want %v", i, out.Outputs[i], want[i])
		}
	}
	if out.AllocatedTotal == 0 {
		t.Error("no allocated words recorded")
	}
}

func TestCampaignSmokeHydro(t *testing.T) {
	app := apps.NewHydro()
	res, err := RunCampaign(CampaignConfig{
		App:    app,
		Params: app.TestParams(), Sampling: Sampling{Runs: 20, Seed: 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Total != 20 {
		t.Errorf("tally total = %d", res.Tally.Total)
	}
	if len(res.Experiments) != 20 {
		t.Errorf("experiments = %d", len(res.Experiments))
	}
	// At least some experiments should contaminate memory (the paper
	// reports >98% of CO runs contaminated).
	contaminated := 0
	for _, e := range res.Experiments {
		if e.TotalPeakCML > 0 {
			contaminated++
		}
	}
	if contaminated == 0 {
		t.Error("no experiment contaminated memory")
	}
	if len(res.GoldenSites) != app.TestParams().Ranks {
		t.Errorf("golden sites = %v", res.GoldenSites)
	}
}

func TestCampaignDeterministicAcrossRuns(t *testing.T) {
	app := apps.NewFE()
	cfg := CampaignConfig{App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 8, Seed: 7}}
	a, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Experiments {
		if a.Experiments[i].Outcome != b.Experiments[i].Outcome {
			t.Errorf("experiment %d outcome differs: %v vs %v",
				i, a.Experiments[i].Outcome, b.Experiments[i].Outcome)
		}
		if a.Experiments[i].TotalPeakCML != b.Experiments[i].TotalPeakCML {
			t.Errorf("experiment %d CML differs", i)
		}
	}
}

func TestCampaignMultiFault(t *testing.T) {
	app := apps.NewHydro()
	res, err := RunCampaign(CampaignConfig{
		App:    app,
		Params: app.TestParams(), Sampling: Sampling{Runs: 10, Seed: 3, MultiFaultLambda: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, e := range res.Experiments {
		if len(e.Plan.Faults) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("lambda=2 produced no multi-fault plans")
	}
}

func TestCampaignRejectsBadConfig(t *testing.T) {
	if _, err := RunCampaign(CampaignConfig{App: apps.NewHydro()}); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestOutcomeDistributionHasVariety(t *testing.T) {
	// Across apps and enough runs, the campaign should produce at least
	// two distinct outcome classes (all-one-class indicates a broken
	// classifier or injector).
	app := apps.NewMD()
	res, err := RunCampaign(CampaignConfig{
		App:    app,
		Params: app.TestParams(), Sampling: Sampling{Runs: 30, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	classes := 0
	for o := classify.Vanished; o <= classify.Crashed; o++ {
		if res.Tally.Counts[o] > 0 {
			classes++
		}
	}
	if classes < 2 {
		t.Errorf("outcome distribution degenerate: %v", res.Tally.Counts)
	}
}
