package harness

import (
	"os"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/classify"
	"repro/internal/model"
	"repro/internal/trace"
)

func fakeResult(app string) *CampaignResult {
	r := &CampaignResult{
		App:            app,
		Params:         apps.Params{Ranks: 4, Size: 8, Steps: 10},
		Runs:           10,
		Golden:         classify.Golden{Cycles: 10000},
		GoldenSites:    []uint64{100, 100, 100, 100},
		AllocatedWords: 400,
	}
	outcomes := []classify.Outcome{
		classify.Vanished, classify.OutputNotAffected, classify.OutputNotAffected,
		classify.WrongOutput, classify.ProlongedExecution, classify.Crashed,
	}
	for i, o := range outcomes {
		r.Tally.Add(o)
		r.Experiments = append(r.Experiments, ExperimentSummary{
			ID: i, Outcome: o, Fired: true,
			InjCycle: uint64(1000 * i), ContamPct: float64(5 * i),
		})
	}
	r.Profiles = []Profile{{
		ID: 1, Outcome: classify.OutputNotAffected,
		Points: []trace.Point{{Cycles: 100, CML: 1}, {Cycles: 200, CML: 5}, {Cycles: 300, CML: 9}},
	}}
	r.BestSpread = SpreadSeries{ID: 1, Points: []trace.SpreadPoint{
		{Time: 100, Ranks: 1}, {Time: 300, Ranks: 2}, {Time: 500, Ranks: 4},
	}}
	r.Model = model.AppModel{App: app, FPS: 123456, StdDev: 999,
		Fits: []model.RunFit{{A: 123456}}}
	return r
}

func TestFormatFig5ContainsHistogram(t *testing.T) {
	text := FormatFig5(fakeResult("LULESH"), 10)
	for _, want := range []string{"Figure 5", "chi2", "LULESH"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestFormatFig6Percentages(t *testing.T) {
	text := FormatFig6([]*CampaignResult{fakeResult("APPX")})
	if !strings.Contains(text, "APPX") {
		t.Fatalf("missing app name:\n%s", text)
	}
	// 3 CO of 6 runs = 50%.
	if !strings.Contains(text, "50.0") {
		t.Errorf("CO%% not rendered:\n%s", text)
	}
}

func TestFormatFig7RendersProfiles(t *testing.T) {
	text := FormatFig7(fakeResult("A"))
	if !strings.Contains(text, "run 1 [ONA]") {
		t.Errorf("profile header missing:\n%s", text)
	}
	empty := fakeResult("B")
	empty.Profiles = nil
	if !strings.Contains(FormatFig7(empty), "no propagating runs") {
		t.Error("empty profile case not handled")
	}
}

func TestFormatFig7fStats(t *testing.T) {
	text := FormatFig7f([]*CampaignResult{fakeResult("A")})
	if !strings.Contains(text, "25.00") { // max ContamPct = 5*5
		t.Errorf("max%% missing:\n%s", text)
	}
}

func TestFormatFig8Spread(t *testing.T) {
	text := FormatFig8([]*CampaignResult{fakeResult("A")})
	if !strings.Contains(text, "final: 4/4 ranks") {
		t.Errorf("spread not rendered:\n%s", text)
	}
	none := fakeResult("B")
	none.BestSpread = SpreadSeries{}
	if !strings.Contains(FormatFig8([]*CampaignResult{none}), "no cross-rank contamination") {
		t.Error("empty spread case not handled")
	}
}

func TestFormatTable2AndSortedFPS(t *testing.T) {
	a := fakeResult("A")
	b := fakeResult("B")
	b.Model.FPS = 999999999
	text := FormatTable2([]*CampaignResult{a, b})
	if !strings.Contains(text, "Table 2") || !strings.Contains(text, "A") {
		t.Errorf("table malformed:\n%s", text)
	}
	order := SortedFPS([]*CampaignResult{a, b})
	if order[0] != "B" || order[1] != "A" {
		t.Errorf("SortedFPS = %v", order)
	}
}

func TestFormatCOBreakdown(t *testing.T) {
	text := FormatCOBreakdown([]*CampaignResult{fakeResult("A")})
	// 2 ONA of 3 CO runs = 66.7%.
	if !strings.Contains(text, "66.7%") {
		t.Errorf("ONA share missing:\n%s", text)
	}
}

func TestFormatTable1MatchesPaper(t *testing.T) {
	text, err := FormatTable1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"b = a + 5", "Yes", "No", "24", "22"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q:\n%s", want, text)
		}
	}
}

func TestDownsample(t *testing.T) {
	pts := make([]trace.Point, 100)
	for i := range pts {
		pts[i] = trace.Point{Cycles: int64(i)}
	}
	ds := downsample(pts, 10)
	if len(ds) != 10 {
		t.Fatalf("len = %d", len(ds))
	}
	if ds[0].Cycles != 0 || ds[9].Cycles != 99 {
		t.Errorf("endpoints not preserved: %v ... %v", ds[0], ds[9])
	}
	short := pts[:5]
	if len(downsample(short, 10)) != 5 {
		t.Error("short series must pass through")
	}
}

func TestSaveLoadResultsRoundTrip(t *testing.T) {
	results := []*CampaignResult{fakeResult("A"), fakeResult("B")}
	results[0].StructTotals = map[string]int{"e": 5, "(heap)": 2}
	for _, path := range []string{
		t.TempDir() + "/r.json",
		t.TempDir() + "/r.json.gz",
	} {
		if err := SaveResults(path, results); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		got, err := LoadResults(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(got) != 2 || got[0].App != "A" || got[1].App != "B" {
			t.Fatalf("%s: loaded %+v", path, got)
		}
		if got[0].Tally.Total != results[0].Tally.Total {
			t.Errorf("%s: tally lost", path)
		}
		if got[0].StructTotals["e"] != 5 {
			t.Errorf("%s: struct totals lost", path)
		}
		if len(got[0].Profiles) != 1 || got[0].Profiles[0].Points[2].CML != 9 {
			t.Errorf("%s: profiles lost", path)
		}
	}
}

func TestLoadResultsErrors(t *testing.T) {
	if _, err := LoadResults("/nonexistent/x.json"); err == nil {
		t.Error("missing file accepted")
	}
	p := t.TempDir() + "/bad.json"
	os.WriteFile(p, []byte("{nope"), 0o644)
	if _, err := LoadResults(p); err == nil {
		t.Error("corrupt file accepted")
	}
	// Wrong version.
	p2 := t.TempDir() + "/v9.json"
	os.WriteFile(p2, []byte(`{"version":9,"results":[]}`), 0o644)
	if _, err := LoadResults(p2); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestFormatStructVulnerability(t *testing.T) {
	r := fakeResult("A")
	r.StructTotals = map[string]int{"e": 30, "p": 10, "(heap)": 60}
	text := FormatStructVulnerability([]*CampaignResult{r})
	if !strings.Contains(text, "(heap)=60 (60%)") {
		t.Errorf("breakdown missing:\n%s", text)
	}
	empty := fakeResult("B")
	empty.StructTotals = map[string]int{}
	if !strings.Contains(FormatStructVulnerability([]*CampaignResult{empty}), "(none)") {
		t.Error("empty case not handled")
	}
}
