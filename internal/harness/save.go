package harness

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Campaign results serialize to JSON (gzip-compressed when the filename
// ends in .gz) so expensive campaigns can be rendered, re-analyzed or
// compared later without re-running (cmd/figures).

// resultsFile is the on-disk envelope.
type resultsFile struct {
	// Version guards against schema drift.
	Version int               `json:"version"`
	Results []*CampaignResult `json:"results"`
}

// resultsVersion 2: ExperimentSummary gained Planned and Diag, and
// campaigns may retain a bounded subset of summaries (MaxSummaries).
// Files written by earlier versions are rejected rather than silently
// misread (v1 summaries conflate "no fault planned" with "rank 0").
const resultsVersion = 2

// SaveResults writes campaign results to path.
func SaveResults(path string, results []*CampaignResult) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	env := resultsFile{Version: resultsVersion, Results: results}
	if strings.HasSuffix(path, ".gz") {
		zw := gzip.NewWriter(f)
		if err := json.NewEncoder(zw).Encode(env); err != nil {
			zw.Close()
			return err
		}
		return zw.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	return enc.Encode(env)
}

// LoadResults reads campaign results from path.
func LoadResults(path string) ([]*CampaignResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var env resultsFile
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		if err := json.NewDecoder(zr).Decode(&env); err != nil {
			return nil, err
		}
	} else if err := json.NewDecoder(f).Decode(&env); err != nil {
		return nil, err
	}
	if env.Version != resultsVersion {
		return nil, fmt.Errorf("harness: results file version %d, want %d", env.Version, resultsVersion)
	}
	return env.Results, nil
}
