package harness

import (
	"fmt"
	"sync"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/transform"
)

// Shared golden snapshot packs.
//
// A pack is the process-wide cache of everything a snapshot-fork campaign
// derives from the golden execution of one (app, params, sampleEvery)
// configuration: the instrumented program, the quiesce-point profile, and
// the captured snapshots themselves, keyed by quiesce seq. Snapshot
// placement is purely a performance strategy — results are byte-identical
// with any placement, including none — so sharing profile and capture work
// across campaigns (repeated benches, service tenants re-running a
// configuration, shards of one campaign in one process) cannot change
// results; it only removes redundant golden re-execution and capture
// allocations.
//
// Snapshots stored in a pack are immutable once captured: forks copy out
// of them, never into them, and incremental capture only fills seqs that
// are missing from the pack. Evicting a map entry therefore never
// invalidates a running campaign — its schedule keeps referencing the
// evicted snapshots, which stay alive and read-only until the campaign
// drops them. For the same reason evicted snapshots are NOT released into
// the shell pool (a pooled shell would be overwritten in place by the next
// capture while a campaign may still be forking from it).
const (
	// maxPacks bounds the number of cached configurations (LRU beyond it).
	maxPacks = 4
	// maxPackSnaps bounds the per-pack snapshot map; past it, snapshots
	// not chosen by the schedule being built are dropped for GC.
	maxPackSnaps = 256
)

// packKey identifies one golden configuration. Everything the cached
// artifacts depend on is in the key: the instrumented program is a
// function of (app, params, protect), the cut profile and captures
// additionally of (ranks, sampleEvery) — and ranks is part of params.
type packKey struct {
	app     string
	params  apps.Params
	sample  uint64
	protect string
}

type snapshotPack struct {
	// mu serializes the golden-phase runs (golden, profile, capture) of
	// campaigns sharing the pack: they all execute on the pack's Reuse
	// bundle. Experiment workers never take it — they read captured
	// snapshots, which are immutable.
	mu    sync.Mutex
	inst  *ir.Program
	sites []transform.SiteInfo
	reuse *core.Reuse

	profiled bool
	cuts     []core.SiteCut
	snaps    map[uint64]*core.CampaignSnapshot
}

var (
	packMu  sync.Mutex
	packs   = map[packKey]*snapshotPack{}
	packLRU []packKey // least recently used first
)

// packFor returns the process-wide pack for the campaign's configuration,
// building and instrumenting the program on first use. Build and
// instrument failures are returned with the same wrapping the
// non-snapshot path uses, and are not cached.
func packFor(cfg CampaignConfig) (*snapshotPack, error) {
	key := packKey{
		app:     cfg.App.Name(),
		params:  cfg.Params,
		sample:  cfg.SampleEvery,
		protect: protectKey(cfg.Protect),
	}
	packMu.Lock()
	defer packMu.Unlock()
	if p, ok := packs[key]; ok {
		touchPack(key)
		return p, nil
	}
	prog, err := cfg.App.Build(cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("harness: build %s: %w", cfg.App.Name(), err)
	}
	inst, infos, err := transform.InstrumentSites(prog, cfg.transformOptions())
	if err != nil {
		return nil, fmt.Errorf("harness: instrument %s: %w", cfg.App.Name(), err)
	}
	p := &snapshotPack{
		inst:  inst,
		sites: infos,
		reuse: core.NewReuse(cfg.Params.Ranks),
		snaps: make(map[uint64]*core.CampaignSnapshot),
	}
	packs[key] = p
	packLRU = append(packLRU, key)
	for len(packs) > maxPacks {
		delete(packs, packLRU[0])
		packLRU = packLRU[1:]
	}
	return p, nil
}

// touchPack moves key to the most-recently-used end. Caller holds packMu.
func touchPack(key packKey) {
	for i, k := range packLRU {
		if k == key {
			packLRU = append(append(packLRU[:i:i], packLRU[i+1:]...), key)
			return
		}
	}
}

// resetPacks drops every cached pack (tests only).
func resetPacks() {
	packMu.Lock()
	defer packMu.Unlock()
	packs = make(map[packKey]*snapshotPack)
	packLRU = nil
}

// golden runs the fault-free golden execution on the pack's reuse bundle.
// The outcome is identical to a Reuse-less run (pooling never changes
// observables); escaping result slices are freshly allocated per run.
func (p *snapshotPack) golden(cfg CampaignConfig) core.RunOutcome {
	p.mu.Lock()
	defer p.mu.Unlock()
	return coreRun(p.inst, core.RunConfig{
		Ranks:       cfg.Params.Ranks,
		SampleEvery: cfg.SampleEvery,
		Reuse:       p.reuse,
	})
}

// trim bounds the snapshot map, preferring to keep the seqs the current
// schedule chose. Caller holds p.mu.
func (p *snapshotPack) trim(keep []uint64) {
	if len(p.snaps) <= maxPackSnaps {
		return
	}
	kept := make(map[uint64]bool, len(keep))
	for _, s := range keep {
		kept[s] = true
	}
	for s := range p.snaps {
		if len(p.snaps) <= maxPackSnaps {
			break
		}
		if !kept[s] {
			delete(p.snaps, s)
		}
	}
}
