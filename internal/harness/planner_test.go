package harness

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/apps"
	"repro/internal/classify"
)

// The adaptive planner's determinism contract: every decision is a pure
// function of fingerprinted configuration plus seed-determined outcomes,
// so worker counts, kill/resume boundaries, shard layouts, and merge
// orders cannot change the executed experiment set or the final bytes.

func adaptiveConfig(runs int, target float64) CampaignConfig {
	app := apps.NewHydro()
	return CampaignConfig{
		App:       app,
		Params:    app.TestParams(),
		Sampling:  Sampling{Runs: runs, Seed: 2015, TargetCI: target},
		Execution: Execution{SampleEvery: 64},
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestAdaptiveWorkerCountInvariance(t *testing.T) {
	serial := adaptiveConfig(80, 0.25)
	serial.Workers = 1
	wide := adaptiveConfig(80, 0.25)
	wide.Workers = 8

	a, err := RunCampaign(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(wide)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tally.Total >= 80 {
		t.Fatalf("adaptive campaign spent the whole budget (%d); the target CI never engaged", a.Tally.Total)
	}
	assertResultsIdentical(t, "adaptive workers 1 vs 8", a, b)
	if !jsonEqual(t, a, b) {
		t.Error("adaptive results not byte-identical across worker counts")
	}
}

// TestAdaptiveResumeMatchesUninterrupted kills an adaptive campaign
// mid-round and resumes it: the re-derived round sequence must spend the
// same experiments and produce the same bytes as an uninterrupted run.
func TestAdaptiveResumeMatchesUninterrupted(t *testing.T) {
	full, err := RunCampaign(adaptiveConfig(80, 0.25))
	if err != nil {
		t.Fatal(err)
	}

	ck := t.TempDir() + "/adaptive.ckpt.jsonl"
	interrupted := adaptiveConfig(80, 0.25)
	interrupted.Checkpoint = ck
	interrupted.StopAfter = full.Tally.Total / 2
	if _, err := RunCampaign(interrupted); err == nil {
		t.Fatal("interrupted adaptive campaign returned no error")
	}

	resume := adaptiveConfig(80, 0.25)
	resume.Checkpoint = ck
	resume.Resume = true
	got, err := RunCampaign(resume)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "adaptive resumed vs uninterrupted", full, got)
	if !jsonEqual(t, full, got) {
		t.Error("adaptive resume not byte-identical to uninterrupted run")
	}
}

// TestAdaptiveUnreachableTargetDegeneratesToFixedN pins the API redesign's
// compatibility anchor: an adaptive campaign whose target can never be met
// exhausts every stratum and must be byte-identical to the fixed-size
// stratified campaign over the same budget.
func TestAdaptiveUnreachableTargetDegeneratesToFixedN(t *testing.T) {
	adaptive := adaptiveConfig(40, 1e-9)
	fixed := adaptiveConfig(40, 0)
	fixed.Strata = defaultStrataPhases // stratified reporting, no stopping policy

	a, err := RunCampaign(adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tally.Total != 40 {
		t.Fatalf("unreachable target spent %d of 40", a.Tally.Total)
	}
	f, err := RunCampaign(fixed)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "unreachable target vs fixed-N", a, f)
	if !jsonEqual(t, a, f) {
		t.Error("exhausted adaptive campaign not byte-identical to fixed-N stratified run")
	}
}

// TestAdaptiveCoordinatedRoundsMatchLocal drives the exported planner the
// way a coordinator does — rounds split into explicit-ID shards, executed
// via RunShardContext, merged in opposite orders — and requires both merge
// orders and the local engine to agree byte-for-byte.
func TestAdaptiveCoordinatedRoundsMatchLocal(t *testing.T) {
	cfg := adaptiveConfig(80, 0.25)
	local, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	strata, err := BuildStrata(cfg)
	if err != nil {
		t.Fatal(err)
	}
	planner, err := NewAdaptivePlanner(cfg, strata)
	if err != nil {
		t.Fatal(err)
	}
	var fwd, rev *PartialResult
	for round := 1; ; round++ {
		ids := planner.NextRound()
		if ids == nil {
			break
		}
		specs := PlanRoundShards(cfg, ids, 3)
		parts := make([]*PartialResult, len(specs))
		for i, spec := range specs {
			p, err := RunShard(cfg, spec)
			if err != nil {
				t.Fatalf("round %d shard %d: %v", round, i, err)
			}
			parts[i] = p
		}
		roundAcc := parts[0].Clone()
		for _, p := range parts[1:] {
			if err := roundAcc.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		planner.Fold(roundAcc.Strata)
		// Accumulate the same parts forward and reverse: merge order must
		// not matter.
		for _, p := range parts {
			fwd = mergeInto(t, fwd, p)
		}
		for i := len(parts) - 1; i >= 0; i-- {
			rev = mergeInto(t, rev, parts[i])
		}
	}
	if !planner.Done() {
		t.Fatal("planner never converged")
	}
	fwd.AdaptiveDone = true
	rev.AdaptiveDone = true
	a, err := fwd.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := rev.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "forward vs reverse merge", a, b)
	assertResultsIdentical(t, "coordinated vs local", a, local)
	if !jsonEqual(t, a, b) || !jsonEqual(t, a, local) {
		t.Error("coordinated adaptive rounds not byte-identical to the local engine")
	}
}

// TestAdaptiveResumeFromNonAdaptiveJournal pins the typed diagnosis: a
// -target-ci resume pointed at a journal written by the same campaign
// without the adaptive policy fails with a FieldError naming the knob,
// not an opaque fingerprint hash.
func TestAdaptiveResumeFromNonAdaptiveJournal(t *testing.T) {
	ck := t.TempDir() + "/fixed.ckpt.jsonl"
	fixed := adaptiveConfig(12, 0)
	fixed.Checkpoint = ck
	if _, err := RunCampaign(fixed); err != nil {
		t.Fatal(err)
	}

	adaptive := adaptiveConfig(12, 0.25)
	adaptive.Checkpoint = ck
	adaptive.Resume = true
	_, err := RunCampaign(adaptive)
	var fe *FieldError
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want a FieldError", err)
	}
	if fe.Field != "Sampling.TargetCI" {
		t.Fatalf("FieldError names %q, want Sampling.TargetCI", fe.Field)
	}
}

// TestLegacyFingerprintUnchanged pins the exact fingerprint of a
// pre-redesign configuration: the typed sub-struct regrouping and the
// adaptive suffix must not disturb journals or archives written before
// either existed.
func TestLegacyFingerprintUnchanged(t *testing.T) {
	app := apps.NewHydro()
	cfg := CampaignConfig{App: app, Params: app.TestParams(), Sampling: Sampling{Runs: 40, Seed: 7}}
	if got, want := cfg.Fingerprint(), "64fdd2fe141fad53"; got != want {
		t.Errorf("legacy fingerprint drifted: %s, want %s", got, want)
	}
	adaptive := cfg
	adaptive.TargetCI = 0.2
	if got := adaptive.Fingerprint(); got == cfg.Fingerprint() {
		t.Error("adaptive policy does not alter the fingerprint; incompatible journals would merge")
	}
}

func TestAdaptiveRoundSize(t *testing.T) {
	cases := []struct{ budget, want int }{
		{1, 1}, {10, 10}, {100, 16}, {200, 25}, {5000, 512}, {100000, 512},
	}
	for _, tc := range cases {
		if got := adaptiveRoundSize(tc.budget); got != tc.want {
			t.Errorf("adaptiveRoundSize(%d) = %d, want %d", tc.budget, got, tc.want)
		}
	}
}

func TestWorstP(t *testing.T) {
	if got := worstP(classify.Tally{}); got != 0.5 {
		t.Errorf("worstP(empty) = %v, want 0.5", got)
	}
	var t1 classify.Tally
	t1.Counts[classify.Vanished] = 9
	t1.Counts[classify.Crashed] = 1
	t1.Total = 10
	// 0.9 and 0.1 tie on variance; either pins the same sample size.
	if got := worstP(t1); got != 0.9 && got != 0.1 {
		t.Errorf("worstP(9/1) = %v, want 0.9 or 0.1", got)
	}
}

func TestPlanRoundShards(t *testing.T) {
	cfg := adaptiveConfig(40, 0.25)
	ids := []int{0, 3, 5, 8, 13, 21, 34}
	specs := PlanRoundShards(cfg, ids, 3)
	if len(specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(specs))
	}
	var union []int
	for _, s := range specs {
		if s.Size() != len(s.IDs) {
			t.Errorf("spec %d Size %d != len(IDs) %d", s.Index, s.Size(), len(s.IDs))
		}
		if s.Fingerprint != cfg.Fingerprint() {
			t.Errorf("spec %d fingerprint %s, want %s", s.Index, s.Fingerprint, cfg.Fingerprint())
		}
		union = append(union, s.IDs...)
	}
	if len(union) != len(ids) {
		t.Fatalf("specs cover %d IDs, want %d", len(union), len(ids))
	}
	for i, id := range union {
		if id != ids[i] {
			t.Fatalf("union[%d] = %d, want %d", i, id, ids[i])
		}
	}
	// More workers than IDs: empty shards are omitted, coverage intact.
	small := PlanRoundShards(cfg, []int{4, 7}, 5)
	if len(small) != 2 || small[0].IDs[0] != 4 || small[1].IDs[0] != 7 {
		t.Fatalf("sparse split wrong: %+v", small)
	}
}

func mergeInto(t *testing.T, acc, p *PartialResult) *PartialResult {
	t.Helper()
	if acc == nil {
		return p.Clone()
	}
	if err := acc.Merge(p); err != nil {
		t.Fatal(err)
	}
	return acc
}

func jsonEqual(t *testing.T, a, b *CampaignResult) bool {
	t.Helper()
	return string(mustJSON(t, a)) == string(mustJSON(t, b))
}
