package harness

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/vm"
)

// TestCleanInterpByteIdentical is the differential gate for the clean-mode
// interpreter: for every application of the study, a fixed-seed campaign
// run with the clean interpreter enabled (the default) must be
// byte-identical — full JSON results, every figure and table — to the same
// campaign forced through the full dual-chain interpreter everywhere. A
// third leg runs the clean interpreter in snapshot-fork mode, covering the
// mode handoff through Snapshot/RestoreSnap.
//
// TestSnapshotForkByteIdentical does not cover this: both of its campaigns
// run whatever interpreter is enabled, so a clean-mode bug would cancel
// out there.
func TestCleanInterpByteIdentical(t *testing.T) {
	if !vm.CleanInterpEnabled() {
		t.Skip("clean interpreter disabled for this process")
	}
	for _, app := range apps.All() {
		t.Run(app.Name(), func(t *testing.T) {
			base := CampaignConfig{
				App:    app,
				Params: app.TestParams(), Sampling: Sampling{Runs: 12, Seed: 2015}, Execution: Execution{SampleEvery: 64, Workers: 1},
			}

			vm.SetCleanInterp(false)
			want, err := RunCampaign(base)
			vm.SetCleanInterp(true)
			if err != nil {
				t.Fatal(err)
			}

			before := vm.CleanModeSwitches()
			got, err := RunCampaign(base)
			if err != nil {
				t.Fatal(err)
			}
			if vm.CleanModeSwitches() == before {
				t.Error("campaign never switched interpreter modes: differential is vacuous")
			}
			assertStudyIdentical(t, "clean vs full interpreter", want, got)

			snapped := base
			snapped.Snapshots = 3
			gotSnap, err := RunCampaign(snapped)
			if err != nil {
				t.Fatal(err)
			}
			assertStudyIdentical(t, "clean snapshot-fork vs full re-execution", want, gotSnap)
		})
	}
}
