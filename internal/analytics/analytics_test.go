package analytics

import (
	"reflect"
	"testing"

	"repro/internal/classify"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestClassifyShape(t *testing.T) {
	cases := []struct {
		name   string
		points []trace.Point
		want   Shape
	}{
		{"empty", nil, ShapeNone},
		{"never contaminated", []trace.Point{{Cycles: 0, CML: 0}, {Cycles: 100, CML: 0}}, ShapeNone},
		{"spike cleansed", []trace.Point{{Cycles: 10, CML: 5}, {Cycles: 50, CML: 2}, {Cycles: 100, CML: 0}}, ShapeSpike},
		{"plateau early peak", []trace.Point{{Cycles: 0, CML: 0}, {Cycles: 10, CML: 5}, {Cycles: 20, CML: 5}, {Cycles: 100, CML: 5}}, ShapePlateau},
		{"growth late peak", []trace.Point{{Cycles: 0, CML: 0}, {Cycles: 10, CML: 1}, {Cycles: 90, CML: 9}, {Cycles: 100, CML: 9}}, ShapeGrowth},
		// A single contaminated point: peak at the very end of a
		// zero-length interval — levels off by the <= rule.
		{"single point", []trace.Point{{Cycles: 42, CML: 3}}, ShapePlateau},
	}
	for _, tc := range cases {
		if got := ClassifyShape(tc.points); got != tc.want {
			t.Errorf("%s: shape = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestClassifyCause(t *testing.T) {
	cases := []struct {
		name    string
		fired   bool
		ever    bool
		final   int
		outcome classify.Outcome
		want    Cause
	}{
		{"never fired", false, false, 0, classify.Vanished, CauseNoFire},
		{"propagated to wrong output", true, true, 7, classify.WrongOutput, CausePropagated},
		{"propagated to crash", true, false, 0, classify.Crashed, CausePropagated},
		{"masked before any store", true, false, 0, classify.Vanished, CauseTruncated},
		{"overwritten clean", true, true, 0, classify.Vanished, CauseOverwritten},
		{"dead residue at exit", true, true, 3, classify.OutputNotAffected, CauseDeadOnExit},
	}
	for _, tc := range cases {
		if got := ClassifyCause(tc.fired, tc.ever, tc.final, tc.outcome); got != tc.want {
			t.Errorf("%s: cause = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestShapeCauseNames(t *testing.T) {
	for s := Shape(0); int(s) < NumShapes; s++ {
		if s.String() == "?" {
			t.Errorf("shape %d has no name", s)
		}
	}
	for c := Cause(0); int(c) < NumCauses; c++ {
		if c.String() == "?" {
			t.Errorf("cause %d has no name", c)
		}
	}
	if Shape(NumShapes).String() != "?" || Cause(NumCauses).String() != "?" {
		t.Error("out-of-range shape/cause must stringify as ?")
	}
}

func TestRankSitesOrdering(t *testing.T) {
	in := []SiteStat{
		{Site: 0, Bad: 5, Total: 10},   // rate 0.5 on decent evidence
		{Site: 1, Bad: 1, Total: 1},    // rate 1.0 on one observation: wide interval
		{Site: 2, Bad: 90, Total: 100}, // rate 0.9, tight interval: most vulnerable
		{Site: 3, Bad: 0, Total: 20},   // never bad
	}
	ranked := RankSites(in, stats.Z95)
	order := make([]int, len(ranked))
	for i, r := range ranked {
		order[i] = r.Site
	}
	// The tight 0.9 beats everything; the single-observation site keeps a
	// wide interval (half-width ~0.40 at n=1), discounting but not erasing
	// its perfect rate; the never-bad site ranks last at lower bound 0.
	if !reflect.DeepEqual(order, []int{2, 1, 0, 3}) {
		t.Fatalf("ranking order = %v, want [2 1 0 3]", order)
	}
	for i, r := range ranked {
		if r.LowerBound < 0 || r.LowerBound > r.Rate {
			t.Errorf("site %d: lower bound %g outside [0, rate %g]", r.Site, r.LowerBound, r.Rate)
		}
		if i > 0 && r.LowerBound > ranked[i-1].LowerBound {
			t.Errorf("ranking not monotonic at row %d", i)
		}
	}
}

func TestRankSitesTieBreak(t *testing.T) {
	// Identical evidence: deterministic ascending-site order.
	in := []SiteStat{
		{Site: 9, Bad: 2, Total: 4},
		{Site: 3, Bad: 2, Total: 4},
		{Site: 6, Bad: 2, Total: 4},
	}
	ranked := RankSites(in, stats.Z95)
	got := []int{ranked[0].Site, ranked[1].Site, ranked[2].Site}
	if !reflect.DeepEqual(got, []int{3, 6, 9}) {
		t.Errorf("tied sites ordered %v, want ascending ordinals", got)
	}
}

func TestTopPercent(t *testing.T) {
	ranked := []RankedSite{{Site: 7}, {Site: 2}, {Site: 9}, {Site: 0}, {Site: 4}}
	cases := []struct {
		name  string
		pct   float64
		total int
		want  []int
	}{
		{"zero pct", 0, 100, nil},
		{"zero total", 10, 0, nil},
		{"ceil of fraction", 10, 25, []int{2, 7, 9}},  // ceil(2.5) = 3 top rows, sorted
		{"tiny pct floors to one", 0.1, 10, []int{7}}, // at least one site
		{"capped at observed", 100, 100, []int{0, 2, 4, 7, 9}},
	}
	for _, tc := range cases {
		if got := TopPercent(ranked, tc.pct, tc.total); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: TopPercent = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCountsAdd(t *testing.T) {
	a := ShapeCounts{1, 2, 3, 4}
	a.Add(ShapeCounts{10, 20, 30, 40})
	if a != (ShapeCounts{11, 22, 33, 44}) {
		t.Errorf("ShapeCounts.Add = %v", a)
	}
	c := CauseCounts{1, 0, 0, 0, 1}
	c.Add(CauseCounts{0, 1, 1, 1, 0})
	if c != (CauseCounts{1, 1, 1, 1, 1}) {
		t.Errorf("CauseCounts.Add = %v", c)
	}
}
