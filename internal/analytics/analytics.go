// Package analytics mines per-experiment propagation traces for the
// resilience patterns FlipTracker names (corrupted locations overwritten,
// masked by truncation, dead on exit), and ranks static injection sites by
// vulnerability — the probability that a flip at the site ends in Wrong
// Output or a Crash — with Wilson confidence intervals.
//
// Everything here is a pure function of per-experiment observables that are
// themselves deterministic functions of the campaign seed (CML trace
// points, fire/contamination flags, outcome classes), so pattern records
// and rankings are byte-identical across worker counts, shard layouts,
// snapshot-fork scheduling, and checkpoint resume — the same determinism
// contract the rest of the harness keeps.
package analytics

import (
	"sort"

	"repro/internal/classify"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Shape classifies the CML trajectory of one experiment's injected rank.
type Shape int

// Trajectory shapes.
const (
	// ShapeNone: the rank's memory was never contaminated.
	ShapeNone Shape = iota
	// ShapeSpike: contamination appeared and was fully cleansed before the
	// run ended (final CML zero).
	ShapeSpike
	// ShapePlateau: the peak was reached in the first half of the
	// contaminated interval and residue persisted to the end.
	ShapePlateau
	// ShapeGrowth: contamination was still at (or climbing toward) its peak
	// in the second half of the run — unbounded propagation.
	ShapeGrowth
	numShapes
)

// NumShapes is the number of trajectory shapes.
const NumShapes = int(numShapes)

var shapeNames = [NumShapes]string{"none", "spike", "plateau", "growth"}

// String returns the shape's short name.
func (s Shape) String() string {
	if s >= 0 && int(s) < NumShapes {
		return shapeNames[s]
	}
	return "?"
}

// ClassifyShape assigns the trajectory shape of one CML series (the
// injected rank's retained points, final sample included). The rule is a
// pure function of the points, which are a deterministic function of the
// seed and the fingerprinted SampleEvery setting.
func ClassifyShape(points []trace.Point) Shape {
	maxCML, maxAt := 0, int64(0)
	firstAt, contaminated := int64(0), false
	for _, p := range points {
		if p.CML > 0 && !contaminated {
			contaminated = true
			firstAt = p.Cycles
		}
		if p.CML > maxCML {
			maxCML = p.CML
			maxAt = p.Cycles
		}
	}
	if maxCML == 0 {
		return ShapeNone
	}
	if points[len(points)-1].CML == 0 {
		return ShapeSpike
	}
	end := points[len(points)-1].Cycles
	// Peak in the first half of the contaminated interval: the trajectory
	// leveled off (plateau); otherwise it was still growing at exit.
	if 2*(maxAt-firstAt) <= end-firstAt {
		return ShapePlateau
	}
	return ShapeGrowth
}

// Cause classifies why an experiment's fault did — or did not — survive to
// the program's output: the FlipTracker cleanse taxonomy.
type Cause int

// Cleanse causes.
const (
	// CauseNoFire: the planned fault never fired (control flow ended before
	// its dynamic site, or the injected rank was a casualty).
	CauseNoFire Cause = iota
	// CauseTruncated: the flip fired but the injected rank's memory was
	// never contaminated — the corruption was masked (truncated, shifted
	// out, or logically absorbed) before any store.
	CauseTruncated
	// CauseOverwritten: memory was contaminated but every corrupted
	// location was overwritten with clean values before the run ended, and
	// the output stayed correct.
	CauseOverwritten
	// CauseDeadOnExit: corrupted locations survived to the end of the run
	// but the output was still correct — the residue was dead state.
	CauseDeadOnExit
	// CausePropagated: the fault reached the outcome (Wrong Output,
	// Prolonged Execution, or Crash) — nothing cleansed it.
	CausePropagated
	numCauses
)

// NumCauses is the number of cleanse causes.
const NumCauses = int(numCauses)

var causeNames = [NumCauses]string{"nofire", "truncated", "overwritten", "dead", "propagated"}

// String returns the cause's short name.
func (c Cause) String() string {
	if c >= 0 && int(c) < NumCauses {
		return causeNames[c]
	}
	return "?"
}

// ClassifyCause derives the cleanse cause of one experiment from its
// injected rank's observables: whether the fault fired, whether the rank's
// memory was ever contaminated, its end-of-run CML, and the run's outcome
// class. The fpm.Table's contaminate/cleanse bookkeeping is what makes
// "ever contaminated, zero at exit" observable as an overwrite.
func ClassifyCause(fired, ever bool, finalCML int, outcome classify.Outcome) Cause {
	switch {
	case !fired:
		return CauseNoFire
	case !outcome.IsCorrectOutput():
		return CausePropagated
	case !ever:
		return CauseTruncated
	case finalCML == 0:
		return CauseOverwritten
	default:
		return CauseDeadOnExit
	}
}

// Pattern is the compact per-experiment propagation record folded into
// per-site tallies: which static site the (first) fault targeted, the CML
// trajectory shape, and the cleanse cause.
type Pattern struct {
	// Site is the static fim_inj ordinal of the plan's first fault (as
	// stamped by transform.Instrument).
	Site  int   `json:"site"`
	Shape Shape `json:"shape"`
	Cause Cause `json:"cause"`
}

// ShapeCounts tallies experiments by trajectory shape, indexed by Shape.
// Pure integer counts, so merging is commutative and associative.
type ShapeCounts [NumShapes]int

// Add folds other into c.
func (c *ShapeCounts) Add(other ShapeCounts) {
	for i := range c {
		c[i] += other[i]
	}
}

// CauseCounts tallies experiments by cleanse cause, indexed by Cause.
type CauseCounts [NumCauses]int

// Add folds other into c.
func (c *CauseCounts) Add(other CauseCounts) {
	for i := range c {
		c[i] += other[i]
	}
}

// SiteStat is one static site's outcome evidence: how many experiments
// targeted it and how many ended badly (Wrong Output or Crash).
type SiteStat struct {
	Site  int
	Label string
	Bad   int
	Total int
}

// RankedSite is one row of the vulnerability ranking.
type RankedSite struct {
	Site  int
	Label string
	Bad   int
	Total int
	// Rate is the point estimate of P(WO or Crash | flip at site).
	Rate float64
	// HalfWidth is the 95% Wilson half-width of Rate.
	HalfWidth float64
	// LowerBound is the Wilson lower confidence bound, the ranking key: it
	// discounts sites whose high rate rests on few observations.
	LowerBound float64
}

// RankSites orders sites by vulnerability: descending Wilson lower bound,
// ties broken by ascending site ordinal so the ranking is deterministic.
func RankSites(in []SiteStat, z float64) []RankedSite {
	out := make([]RankedSite, 0, len(in))
	for _, s := range in {
		r := RankedSite{Site: s.Site, Label: s.Label, Bad: s.Bad, Total: s.Total}
		if s.Total > 0 {
			r.Rate = float64(s.Bad) / float64(s.Total)
			r.HalfWidth = stats.WilsonHalfWidth(s.Bad, s.Total, z)
			if lb := r.Rate - r.HalfWidth; lb > 0 {
				r.LowerBound = lb
			}
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LowerBound != out[j].LowerBound {
			return out[i].LowerBound > out[j].LowerBound
		}
		if out[i].Rate != out[j].Rate {
			return out[i].Rate > out[j].Rate
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// TopPercent selects the most vulnerable sites to protect: the first
// ceil(pct% of totalSites) rows of the ranking (fewer when fewer sites were
// ever observed), returned as sorted static site ordinals — the shape
// transform.Options.Protect and CampaignConfig.Protect take.
func TopPercent(ranked []RankedSite, pct float64, totalSites int) []int {
	if pct <= 0 || totalSites <= 0 {
		return nil
	}
	n := (totalSites*int(pct*100) + 9999) / 10000 // ceil(totalSites * pct/100)
	if n < 1 {
		n = 1
	}
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]int, 0, n)
	for _, r := range ranked[:n] {
		out = append(out, r.Site)
	}
	sort.Ints(out)
	return out
}
