package inject

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestFaultString(t *testing.T) {
	f := Fault{Rank: 2, Site: 100, Bit: 63}
	if s := f.String(); s != "rank 2 site 100 bit 63" {
		t.Errorf("String = %q", s)
	}
}

func TestPlanForRankSorted(t *testing.T) {
	p := Plan{Faults: []Fault{
		{Rank: 1, Site: 50}, {Rank: 0, Site: 10}, {Rank: 1, Site: 5}, {Rank: 1, Site: 20},
	}}
	fs := p.ForRank(1)
	if len(fs) != 3 {
		t.Fatalf("ForRank(1) = %v", fs)
	}
	for i := 1; i < len(fs); i++ {
		if fs[i-1].Site > fs[i].Site {
			t.Errorf("not sorted: %v", fs)
		}
	}
	if len(p.ForRank(5)) != 0 {
		t.Error("unknown rank returned faults")
	}
}

func TestUniformSinglePlanBounds(t *testing.T) {
	r := xrand.New(1)
	counts := []uint64{0, 100, 50, 0}
	for i := 0; i < 500; i++ {
		p, err := UniformSinglePlan(r, counts)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Faults) != 1 {
			t.Fatalf("plan has %d faults", len(p.Faults))
		}
		f := p.Faults[0]
		if f.Rank != 1 && f.Rank != 2 {
			t.Errorf("fault in rank %d with zero sites", f.Rank)
		}
		if f.Site >= counts[f.Rank] {
			t.Errorf("site %d out of range for rank %d", f.Site, f.Rank)
		}
		if f.Bit > 63 {
			t.Errorf("bit %d out of range", f.Bit)
		}
	}
}

func TestUniformSinglePlanNoSites(t *testing.T) {
	if _, err := UniformSinglePlan(xrand.New(1), []uint64{0, 0}); err == nil {
		t.Error("plan created with no injectable sites")
	}
}

func TestUniformSinglePlanRankDistribution(t *testing.T) {
	r := xrand.New(9)
	counts := []uint64{10, 10, 10, 10}
	hits := make([]int, 4)
	const n = 4000
	for i := 0; i < n; i++ {
		p, err := UniformSinglePlan(r, counts)
		if err != nil {
			t.Fatal(err)
		}
		hits[p.Faults[0].Rank]++
	}
	for rk, h := range hits {
		if h < n/4-200 || h > n/4+200 {
			t.Errorf("rank %d selected %d times, want ~%d", rk, h, n/4)
		}
	}
}

func TestMultiFaultPlanPoisson(t *testing.T) {
	r := xrand.New(3)
	counts := []uint64{1000, 1000}
	total := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		p := MultiFaultPlan(r, counts, 1.5)
		total += len(p.Faults)
		for _, f := range p.Faults {
			if f.Site >= counts[f.Rank] {
				t.Fatalf("site out of range: %v", f)
			}
		}
	}
	// Expected faults per trial = lambda * ranks = 3.
	mean := float64(total) / trials
	if math.Abs(mean-3) > 0.5 {
		t.Errorf("mean faults per plan = %v, want ~3", mean)
	}
	// Lambda zero yields empty plans.
	if p := MultiFaultPlan(r, counts, 0); len(p.Faults) != 0 {
		t.Errorf("lambda 0 produced faults: %v", p)
	}
}

func TestRankInjectorAppliesPlannedFlips(t *testing.T) {
	plan := Plan{Faults: []Fault{
		{Rank: 0, Site: 3, Bit: 0},
		{Rank: 0, Site: 7, Bit: 63},
		{Rank: 1, Site: 2, Bit: 5}, // other rank: ignored
	}}
	ri := NewRankInjector(plan, 0)
	for site := uint64(0); site < 10; site++ {
		val, flipped := ri.OnSite(site, 0)
		switch site {
		case 3:
			if !flipped || val != 1 {
				t.Errorf("site 3: val=%d flipped=%v", val, flipped)
			}
		case 7:
			if !flipped || val != 1<<63 {
				t.Errorf("site 7: val=%#x flipped=%v", val, flipped)
			}
		default:
			if flipped || val != 0 {
				t.Errorf("site %d: unexpected flip", site)
			}
		}
	}
	if len(ri.Applied()) != 2 {
		t.Errorf("applied = %v", ri.Applied())
	}
	if ri.Pending() != 0 {
		t.Errorf("pending = %d", ri.Pending())
	}
}

func TestRankInjectorSameSiteTwice(t *testing.T) {
	plan := Plan{Faults: []Fault{
		{Site: 4, Bit: 0},
		{Site: 4, Bit: 1},
	}}
	ri := NewRankInjector(plan, 0)
	val, flipped := ri.OnSite(4, 0)
	if !flipped || val != 0b11 {
		t.Errorf("double fault at one site: val=%#b flipped=%v", val, flipped)
	}
}

func TestRankInjectorSkippedSites(t *testing.T) {
	// If execution ends before a planned site, it stays pending.
	ri := NewRankInjector(Plan{Faults: []Fault{{Site: 100, Bit: 1}}}, 0)
	for s := uint64(0); s < 50; s++ {
		ri.OnSite(s, 7)
	}
	if ri.Pending() != 1 {
		t.Errorf("pending = %d, want 1", ri.Pending())
	}
	// A site counter that jumps past the planned site (diverged control
	// flow) must not re-apply at a later site.
	ri2 := NewRankInjector(Plan{Faults: []Fault{{Site: 10, Bit: 1}}}, 0)
	if _, flipped := ri2.OnSite(50, 7); flipped {
		t.Error("fault applied past its site")
	}
	if ri2.Pending() != 1 {
		t.Errorf("pending = %d, want 1 (skipped, not applied)", ri2.Pending())
	}
}

func TestInjectorFlipIsInvolutionProperty(t *testing.T) {
	f := func(val uint64, bit uint8) bool {
		plan := Plan{Faults: []Fault{{Site: 0, Bit: uint(bit % 64)}}}
		a := NewRankInjector(plan, 0)
		once, _ := a.OnSite(0, val)
		b := NewRankInjector(plan, 0)
		twice, _ := b.OnSite(0, once)
		return twice == val && once != val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkOnSite(b *testing.B) {
	ri := NewRankInjector(Plan{Faults: []Fault{{Site: uint64(b.N) + 1, Bit: 3}}}, 0)
	for i := 0; i < b.N; i++ {
		ri.OnSite(uint64(i), uint64(i))
	}
}
