// Package inject implements LLFI++, the paper's extended fault injector
// (§3.1): single-bit flips applied to live register operands at uniformly
// distributed dynamic instruction sites, across one or more MPI ranks, with
// zero or more faults per rank per run.
//
// The workflow mirrors the paper's accelerated statistical fault injection:
//
//  1. profile: run the instrumented program fault-free once per rank and
//     read the dynamic site count from the VM (vm.VM.Sites);
//  2. plan: draw (rank, site, bit) triples uniformly;
//  3. run: give each rank's VM a RankInjector for its share of the plan.
package inject

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/xrand"
)

// Fault is one planned bit flip: at the site-th dynamic fim_inj execution
// of the given rank, flip the given bit of the operand value.
type Fault struct {
	Rank int
	Site uint64
	Bit  uint // 0..63
}

// String renders the fault for logs.
func (f Fault) String() string {
	return fmt.Sprintf("rank %d site %d bit %d", f.Rank, f.Site, f.Bit)
}

// Plan is the set of faults of one experiment run.
type Plan struct {
	Faults []Fault
}

// ForRank extracts the faults aimed at one rank, ordered by site.
func (p Plan) ForRank(rank int) []Fault {
	return p.AppendForRank(nil, rank)
}

// AppendForRank is ForRank appending into fs, so a pooled injector can
// refill its fault list without allocating.
func (p Plan) AppendForRank(fs []Fault, rank int) []Fault {
	start := len(fs)
	for _, f := range p.Faults {
		if f.Rank == rank {
			fs = append(fs, f)
		}
	}
	added := fs[start:]
	slices.SortFunc(added, func(a, b Fault) int {
		switch {
		case a.Site < b.Site:
			return -1
		case a.Site > b.Site:
			return 1
		}
		return 0
	})
	return fs
}

// UniformSinglePlan plans one fault: a uniformly chosen rank, a uniformly
// chosen dynamic site within that rank's fault-free execution, and a
// uniformly chosen bit. siteCounts[r] is rank r's dynamic site count from
// the profiling run. Ranks with zero sites are excluded.
func UniformSinglePlan(r *xrand.Rand, siteCounts []uint64) (Plan, error) {
	var candidates []int
	for rank, n := range siteCounts {
		if n > 0 {
			candidates = append(candidates, rank)
		}
	}
	if len(candidates) == 0 {
		return Plan{}, fmt.Errorf("inject: no rank has injection sites")
	}
	rank := candidates[r.Intn(len(candidates))]
	return Plan{Faults: []Fault{{
		Rank: rank,
		Site: r.Uint64n(siteCounts[rank]),
		Bit:  uint(r.Intn(64)),
	}}}, nil
}

// MultiFaultPlan plans zero or more faults per rank (the LLFI++ extension):
// each rank receives a Poisson(lambda)-distributed number of faults at
// uniform sites. The total may be zero.
func MultiFaultPlan(r *xrand.Rand, siteCounts []uint64, lambda float64) Plan {
	var plan Plan
	for rank, n := range siteCounts {
		if n == 0 {
			continue
		}
		for k := poisson(r, lambda); k > 0; k-- {
			plan.Faults = append(plan.Faults, Fault{
				Rank: rank,
				Site: r.Uint64n(n),
				Bit:  uint(r.Intn(64)),
			})
		}
	}
	return plan
}

// poisson draws from a Poisson distribution via Knuth's method; adequate
// for the small lambdas used in fault plans.
func poisson(r *xrand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k // defensive bound
		}
	}
}

// Applied records a flip that actually happened.
type Applied struct {
	Fault  Fault
	Before uint64
	After  uint64
}

// RankInjector applies one rank's share of a plan. It implements
// vm.Injector. Not safe for concurrent use; each rank owns one.
type RankInjector struct {
	faults  []Fault // sorted by site
	next    int
	applied []Applied
}

// NewRankInjector builds the injector for rank from the plan.
func NewRankInjector(plan Plan, rank int) *RankInjector {
	return &RankInjector{faults: plan.ForRank(rank)}
}

// Reset refills a pooled injector for a new run, reusing its backing
// storage. Equivalent to NewRankInjector(plan, rank).
func (ri *RankInjector) Reset(plan Plan, rank int) {
	ri.faults = plan.AppendForRank(ri.faults[:0], rank)
	ri.next = 0
	ri.applied = ri.applied[:0]
}

// NextSite implements vm.SitePlanner: the dynamic site of the next planned
// fault, or ^uint64(0) when none remain. The VM uses it to skip the
// per-site injector call (and the full dual-chain interpreter) on the vast
// fault-free majority of sites.
func (ri *RankInjector) NextSite() uint64 {
	if ri.next < len(ri.faults) {
		return ri.faults[ri.next].Site
	}
	return ^uint64(0)
}

// OnSite implements vm.Injector: it flips the planned bit when the dynamic
// site index matches the next planned fault.
func (ri *RankInjector) OnSite(site uint64, val uint64) (uint64, bool) {
	flipped := false
	// Several faults may target the same site; apply each once.
	for ri.next < len(ri.faults) && ri.faults[ri.next].Site <= site {
		f := ri.faults[ri.next]
		if f.Site == site {
			after := val ^ (1 << (f.Bit & 63))
			ri.applied = append(ri.applied, Applied{Fault: f, Before: val, After: after})
			val = after
			flipped = true
		}
		ri.next++
	}
	return val, flipped
}

// Applied returns the flips that fired during the run. Faults planned past
// the end of the actual execution (possible when control flow diverges
// after an earlier fault) do not appear.
func (ri *RankInjector) Applied() []Applied { return ri.applied }

// Pending returns how many planned faults never fired.
func (ri *RankInjector) Pending() int {
	n := len(ri.faults) - len(ri.applied)
	if n < 0 {
		return 0
	}
	return n
}
