// Package obs is the dependency-free observability kit for the fault
// propagation stack: counters, gauges, fixed-bucket mergeable
// histograms, a Prometheus text-format renderer, and trace IDs.
//
// The design constraint that shapes everything here is the sharded
// campaign path: a shard's metrics must ride back to the coordinator
// inside its PartialResult and merge losslessly, the same way
// stats.Moments merges Welford accumulators. That rules out quantile
// sketches and adaptive bucketing — two histograms merge exactly only
// when they share one fixed bucket layout decided up front. Fixed
// buckets make Merge a vector add: associative, commutative, and
// byte-identical regardless of which shard observed which sample.
//
// All collector methods are nil-receiver-safe no-ops, so call sites can
// instrument unconditionally and pay only a nil check when metrics are
// disabled.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// TraceHeader is the HTTP header that carries a campaign's trace ID
// from submitter to coordinator and from coordinator to worker.
const TraceHeader = "X-Faultprop-Trace"

// traceFallback makes NewTraceID still unique-ish if crypto/rand ever
// fails (it effectively cannot on supported platforms).
var traceFallback atomic.Uint64

// NewTraceID returns a fresh 16-hex-char random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%015x", traceFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// ShardSpan derives the span ID for shard index i of a traced campaign.
// The parent ID stays a prefix so one grep finds the whole campaign
// across coordinator and worker logs, journals, and events.
func ShardSpan(trace string, i int) string {
	return fmt.Sprintf("%s/s%d", trace, i)
}

// CleanTrace validates an externally supplied trace ID: at most 64
// bytes of [A-Za-z0-9._/-]. Anything else returns "" so callers fall
// back to a generated ID instead of stamping junk into logs and
// journals.
func CleanTrace(s string) string {
	if len(s) == 0 || len(s) > 64 {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '/' || c == '-':
		default:
			return ""
		}
	}
	return s
}
