package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Label is one name=value pair attached to a metric series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Registry holds named metric families and renders them in Prometheus
// text exposition format. Registration is idempotent: asking for an
// existing name+labels series returns the same collector, so hot paths
// can cache the pointer and cold paths can just re-register.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

type family struct {
	name, help, typ string
	series          []*series
}

type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) lookup(name, help, typ string, labels []Label) (*family, *series) {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	for _, s := range f.series {
		if labelsEqual(s.labels, labels) {
			return f, s
		}
	}
	s := &series{labels: append([]Label(nil), labels...)}
	f.series = append(f.series, s)
	return f, s
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s := r.lookup(name, help, "counter", labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s := r.lookup(name, help, "gauge", labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge series whose value is read from fn at
// render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s := r.lookup(name, help, "gauge", labels)
	s.gaugeFn = fn
}

// Histogram registers (or returns the existing) histogram series over
// the given bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s := r.lookup(name, help, "histogram", labels)
	if s.hist == nil {
		s.hist = NewHistogram(bounds)
	}
	return s.hist
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (one # HELP/# TYPE header per family, series in
// registration order).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		r.mu.Lock()
		series := append([]*series(nil), f.series...)
		r.mu.Unlock()
		for _, s := range series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.counter != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelSet(s.labels, "", ""), s.counter.Value())
		return err
	case s.gaugeFn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelSet(s.labels, "", ""), formatFloat(s.gaugeFn()))
		return err
	case s.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelSet(s.labels, "", ""), formatFloat(s.gauge.Value()))
		return err
	case s.hist != nil:
		d := s.hist.Snapshot()
		cum := uint64(0)
		for i, b := range d.Bounds {
			cum += d.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, labelSet(s.labels, "le", formatFloat(b)), cum); err != nil {
				return err
			}
		}
		if len(d.Counts) > 0 {
			cum += d.Counts[len(d.Counts)-1]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelSet(s.labels, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelSet(s.labels, "", ""), formatFloat(d.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelSet(s.labels, "", ""), d.Count)
		return err
	}
	return nil
}

// labelSet renders {a="1",b="2"} with an optional extra label appended
// (used for the histogram "le" edge). Empty sets render as "".
func labelSet(labels []Label, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
