package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBuckets: samples land in the right buckets (bounds are
// inclusive upper edges; overflow goes to the implicit +Inf bucket).
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	d := h.Snapshot()
	want := []uint64{2, 2, 2, 2} // (-inf,1] (1,2] (2,4] (4,+inf)
	for i, c := range want {
		if d.Counts[i] != c {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, d.Counts[i], c, d.Counts)
		}
	}
	if d.Count != 8 || d.Sum != 0.5+1+1.5+2+3+4+5+100 {
		t.Errorf("count=%d sum=%v", d.Count, d.Sum)
	}
}

// TestHistogramMergeLossless: partitioning a sample set across shards
// and merging reproduces the whole-set histogram exactly — the property
// that lets shard partials carry latency distributions. Values are
// dyadic rationals so float summation is exact in any order.
func TestHistogramMergeLossless(t *testing.T) {
	bounds := LatencyBuckets()
	whole := NewHistogram(bounds)
	shards := []*Histogram{NewHistogram(bounds), NewHistogram(bounds), NewHistogram(bounds)}
	for i := 0; i < 3000; i++ {
		v := float64(i%977) / 1024 // dyadic: exact in float64
		whole.Observe(v)
		shards[i%3].Observe(v)
	}
	merged := NewHistogram(bounds)
	for _, s := range shards {
		if err := merged.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	if !merged.Equal(whole) {
		t.Errorf("merged != whole:\n%+v\n%+v", merged.Snapshot(), whole.Snapshot())
	}
}

// TestHistogramMergeBoundsMismatch: merging incompatible layouts is an
// error, not silent corruption.
func TestHistogramMergeBoundsMismatch(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	if err := a.Merge(NewHistogram([]float64{1, 3})); err == nil {
		t.Error("mismatched bounds merged without error")
	}
	if err := a.Merge(NewHistogram([]float64{1, 2, 3})); err == nil {
		t.Error("mismatched bound count merged without error")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("nil merge: %v", err)
	}
	empty := &Histogram{}
	if err := a.Merge(empty); err != nil {
		t.Errorf("zero-value merge: %v", err)
	}
}

// TestHistogramJSONRoundTrip: the wire form survives encode/decode —
// this is how timings ride inside shard PartialResults.
func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	h.ObserveDuration(3 * time.Millisecond)
	h.ObserveDuration(250 * time.Millisecond)
	h.Observe(90) // +Inf bucket
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(h) {
		t.Errorf("round trip changed histogram:\n%+v\n%+v", back.Snapshot(), h.Snapshot())
	}
	if err := json.Unmarshal([]byte(`{"bounds":[1],"counts":[1,2,3]}`), &back); err == nil {
		t.Error("inconsistent counts/bounds accepted")
	}
}

// TestNilCollectors: nil receivers are usable no-ops so instrumentation
// can be unconditional.
func TestNilCollectors(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil collectors reported nonzero values")
	}
	if d := h.Snapshot(); d.Count != 0 || len(d.Bounds) != 0 {
		t.Errorf("nil snapshot: %+v", d)
	}
}

// TestCounterGaugeConcurrent: atomic collectors tolerate concurrent
// writers (run under -race in CI).
func TestCounterGaugeConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram([]float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Set(float64(j))
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("counter=%d hist=%d, want 8000", c.Value(), h.Count())
	}
}

// TestRegistryPrometheus: the text renderer emits well-formed families
// with labels, cumulative le buckets, sum, and count.
func TestRegistryPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs ever submitted.").Add(3)
	r.Gauge("queue_depth", "Queued jobs.", L("prio", "high")).Set(2)
	r.GaugeFunc("uptime_seconds", "Seconds up.", func() float64 { return 1.5 })
	h := r.Histogram("latency_seconds", "Experiment latency.", []float64{0.1, 1}, L("outcome", "Masked"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE jobs_total counter",
		"jobs_total 3",
		`queue_depth{prio="high"} 2`,
		"uptime_seconds 1.5",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{outcome="Masked",le="0.1"} 1`,
		`latency_seconds_bucket{outcome="Masked",le="1"} 2`,
		`latency_seconds_bucket{outcome="Masked",le="+Inf"} 3`,
		`latency_seconds_sum{outcome="Masked"} 5.55`,
		`latency_seconds_count{outcome="Masked"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryIdempotent: re-registering a name+labels series returns
// the same collector.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "help")
	b := r.Counter("c", "help")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	h1 := r.Histogram("h", "help", []float64{1}, L("k", "v"))
	h2 := r.Histogram("h", "help", []float64{1}, L("k", "v"))
	h3 := r.Histogram("h", "help", []float64{1}, L("k", "w"))
	if h1 != h2 || h1 == h3 {
		t.Error("histogram series identity broken")
	}
}

// TestTraceIDs: IDs are fresh, hex, and CleanTrace filters junk.
func TestTraceIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 || seen[id] {
			t.Fatalf("bad or duplicate trace id %q", id)
		}
		if CleanTrace(id) != id {
			t.Fatalf("generated id %q rejected by CleanTrace", id)
		}
		seen[id] = true
	}
	if got := ShardSpan("abc", 3); got != "abc/s3" {
		t.Errorf("ShardSpan = %q", got)
	}
	if CleanTrace("ok-id_1/s2.x") == "" {
		t.Error("valid trace rejected")
	}
	for _, bad := range []string{"", strings.Repeat("a", 65), "sp ace", "new\nline", "quo\"te", "héx"} {
		if CleanTrace(bad) != "" {
			t.Errorf("CleanTrace(%q) accepted", bad)
		}
	}
}

// TestGaugeNegativeAndInf: gauges hold any float.
func TestGaugeNegativeAndInf(t *testing.T) {
	var g Gauge
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Errorf("gauge = %v", g.Value())
	}
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Errorf("gauge = %v", g.Value())
	}
}
