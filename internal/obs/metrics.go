package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable level metric. The zero value is ready to use; a
// nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative-style histogram that merges
// losslessly: two histograms over the same bounds combine by adding
// bucket counts and sums, so shard partials can carry latency
// distributions back to the coordinator exactly (see the package doc
// for why the buckets are fixed rather than adaptive).
//
// Bounds are inclusive upper edges in ascending order; an implicit
// +Inf bucket catches overflow. A nil *Histogram is a no-op.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf bucket
	count  uint64
	sum    float64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. It panics on unsorted, empty, or NaN bounds — bucket layouts
// are compiled-in constants, not runtime data.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || (i > 0 && b <= bounds[i-1]) {
			panic("obs: histogram bounds must be ascending and not NaN")
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]uint64, len(h.bounds)+1)
	return h
}

// LatencyBuckets returns the stack's standard latency bucket layout:
// roughly exponential from 50µs to 60s. Experiments at test scale land
// in the bottom decades, full-scale apps and hang timeouts at the top.
func LatencyBuckets() []float64 {
	return []float64{
		0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
}

// FractionBuckets returns the standard layout for ratio metrics in
// [0, 1] (e.g. the dirty-block fraction of a delta restore): fine at the
// low end, where block-granular restores of lightly-dirtying forks land,
// with 1.0 as the exact full-copy bucket.
func FractionBuckets() []float64 {
	return []float64{
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 0.75, 0.9, 1,
	}
}

// SizeBuckets returns the standard layout for byte-size metrics:
// power-of-four from 1KiB to 1GiB, wide enough to separate delta
// restores (KiB range at test scale) from full golden-state copies
// (tens of MiB and up).
func SizeBuckets() []float64 {
	return []float64{
		1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
		1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Merge adds other's buckets into h. Both histograms must share the
// same bounds; merging a nil or empty histogram is a no-op.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	o := other.Snapshot()
	return h.merge(o)
}

func (h *Histogram) merge(o HistogramData) error {
	if o.Count == 0 && len(o.Bounds) == 0 {
		return nil
	}
	if h == nil {
		return fmt.Errorf("obs: merge into nil histogram")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(o.Bounds) != len(h.bounds) {
		return fmt.Errorf("obs: histogram bucket layouts differ: %d vs %d bounds", len(h.bounds), len(o.Bounds))
	}
	for i, b := range h.bounds {
		if o.Bounds[i] != b {
			return fmt.Errorf("obs: histogram bucket layouts differ at bound %d: %v vs %v", i, b, o.Bounds[i])
		}
	}
	for i, c := range o.Counts {
		h.counts[i] += c
	}
	h.count += o.Count
	h.sum += o.Sum
	return nil
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// HistogramData is the wire form of a Histogram: the JSON shape that
// rides inside shard PartialResults and journals.
type HistogramData struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot returns a consistent copy of the histogram's state.
func (h *Histogram) Snapshot() HistogramData {
	if h == nil {
		return HistogramData{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramData{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
	}
}

// MarshalJSON encodes the histogram as its HistogramData snapshot.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(h.Snapshot())
}

// UnmarshalJSON restores a histogram from its HistogramData form.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var d HistogramData
	if err := json.Unmarshal(data, &d); err != nil {
		return err
	}
	if len(d.Counts) != len(d.Bounds)+1 {
		return fmt.Errorf("obs: histogram data has %d counts for %d bounds", len(d.Counts), len(d.Bounds))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.bounds = d.Bounds
	h.counts = d.Counts
	h.count = d.Count
	h.sum = d.Sum
	return nil
}

// Equal reports whether two histograms hold identical bounds, counts,
// and sums. Mainly for tests of merge losslessness.
func (h *Histogram) Equal(other *Histogram) bool {
	a, b := h.Snapshot(), other.Snapshot()
	if a.Count != b.Count || a.Sum != b.Sum ||
		len(a.Bounds) != len(b.Bounds) || len(a.Counts) != len(b.Counts) {
		return false
	}
	for i := range a.Bounds {
		if a.Bounds[i] != b.Bounds[i] {
			return false
		}
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			return false
		}
	}
	return true
}
