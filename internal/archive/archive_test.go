package archive

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testMeta(fp string) Meta {
	return Meta{
		Fingerprint: fp,
		App:         "LULESH",
		Runs:        14,
		Seed:        5,
		Archived:    time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		SourceJob:   "job-1",
		Outcomes:    map[string]int{"V": 3, "C": 11},
		FPS:         1.25,
	}
}

func mustOpen(t *testing.T) *Archive {
	t.Helper()
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return a
}

func TestPutGetRoundTrip(t *testing.T) {
	a := mustOpen(t)
	result := []byte(`{"app":"LULESH","runs":14}`)
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := os.WriteFile(jpath, []byte("line1\nline2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := a.Put(testMeta("cafe0123"), result, jpath); err != nil {
		t.Fatalf("Put: %v", err)
	}
	rec, err := a.Get("cafe0123")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(rec.Result, result) {
		t.Fatalf("result bytes differ: got %q want %q", rec.Result, result)
	}
	if rec.Meta.App != "LULESH" || rec.Meta.Runs != 14 || rec.Meta.FPS != 1.25 {
		t.Fatalf("meta mismatch: %+v", rec.Meta)
	}
	if rec.Journal == "" {
		t.Fatal("expected archived journal path")
	}
	jdata, err := os.ReadFile(rec.Journal)
	if err != nil || string(jdata) != "line1\nline2\n" {
		t.Fatalf("journal content: %q err %v", jdata, err)
	}

	// Journal copy lands byte-identical at the destination.
	dst := filepath.Join(t.TempDir(), "replay.jsonl")
	copied, err := rec.CopyJournal(dst)
	if err != nil || !copied {
		t.Fatalf("CopyJournal: copied=%v err=%v", copied, err)
	}
	ddata, _ := os.ReadFile(dst)
	if !bytes.Equal(ddata, jdata) {
		t.Fatal("copied journal differs from archived journal")
	}
}

func TestGetMissing(t *testing.T) {
	a := mustOpen(t)
	if _, err := a.Get("deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if a.Has("deadbeef") {
		t.Fatal("Has reported a missing entry")
	}
}

func TestPutWithoutJournal(t *testing.T) {
	a := mustOpen(t)
	if err := a.Put(testMeta("ab12"), []byte("{}"), ""); err != nil {
		t.Fatalf("Put: %v", err)
	}
	rec, err := a.Get("ab12")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if rec.Journal != "" {
		t.Fatalf("expected no journal, got %q", rec.Journal)
	}
	if copied, err := rec.CopyJournal(filepath.Join(t.TempDir(), "x")); copied || err != nil {
		t.Fatalf("CopyJournal on journal-less record: copied=%v err=%v", copied, err)
	}
	// A journal path that does not exist archives cleanly with no journal.
	if err := a.Put(testMeta("cd34"), []byte("{}"), filepath.Join(t.TempDir(), "nope.jsonl")); err != nil {
		t.Fatalf("Put with missing journal path: %v", err)
	}
	if rec, err := a.Get("cd34"); err != nil || rec.Journal != "" {
		t.Fatalf("Get: journal=%q err=%v", rec.Journal, err)
	}
}

func TestTruncatedResultIsCorrupt(t *testing.T) {
	a := mustOpen(t)
	if err := a.Put(testMeta("feed01"), []byte(`{"app":"LULESH","tally":[1,2,3,4,5]}`), ""); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(a.Dir(), "entries", "feed01", "result.json")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get("feed01"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated result: want ErrCorrupt, got %v", err)
	}
	// Eviction heals the slot for a later Put.
	if err := a.Remove("feed01"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := a.Get("feed01"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after Remove: want ErrNotFound, got %v", err)
	}
	if err := a.Put(testMeta("feed01"), []byte("{}"), ""); err != nil {
		t.Fatalf("re-Put after eviction: %v", err)
	}
	if _, err := a.Get("feed01"); err != nil {
		t.Fatalf("Get after heal: %v", err)
	}
}

func TestModifiedResultIsCorrupt(t *testing.T) {
	a := mustOpen(t)
	if err := a.Put(testMeta("beef02"), []byte(`{"runs":14}`), ""); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(a.Dir(), "entries", "beef02", "result.json")
	// Same length, different bytes: size check alone would miss this.
	if err := os.WriteFile(p, []byte(`{"runs":41}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get("beef02"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("modified result: want ErrCorrupt, got %v", err)
	}
}

func TestTruncatedJournalIsCorrupt(t *testing.T) {
	a := mustOpen(t)
	jpath := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(jpath, []byte("a\nb\nc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := a.Put(testMeta("0a0b"), []byte("{}"), jpath); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(a.Dir(), "entries", "0a0b", "journal.jsonl")
	if err := os.WriteFile(p, []byte("a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get("0a0b"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated journal: want ErrCorrupt, got %v", err)
	}
}

func TestFingerprintMismatchIsCorrupt(t *testing.T) {
	a := mustOpen(t)
	if err := a.Put(testMeta("1111"), []byte("{}"), ""); err != nil {
		t.Fatal(err)
	}
	// Rename the entry directory: manifest now names a different
	// fingerprint than its directory.
	if err := os.Rename(
		filepath.Join(a.Dir(), "entries", "1111"),
		filepath.Join(a.Dir(), "entries", "2222"),
	); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get("2222"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("fingerprint mismatch: want ErrCorrupt, got %v", err)
	}
	// The mismatched entry is also invisible to List.
	metas, err := a.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 0 {
		t.Fatalf("List surfaced mismatched entry: %+v", metas)
	}
}

func TestMissingManifestIsCorrupt(t *testing.T) {
	a := mustOpen(t)
	if err := a.Put(testMeta("3333"), []byte("{}"), ""); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(a.Dir(), "entries", "3333", "manifest.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get("3333"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing manifest: want ErrCorrupt, got %v", err)
	}
}

func TestMalformedManifestIsCorrupt(t *testing.T) {
	a := mustOpen(t)
	if err := a.Put(testMeta("4444"), []byte("{}"), ""); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(a.Dir(), "entries", "4444", "manifest.json")
	if err := os.WriteFile(p, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Get("4444"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("malformed manifest: want ErrCorrupt, got %v", err)
	}
}

func TestConcurrentPutFirstWriterWins(t *testing.T) {
	a := mustOpen(t)
	// Deterministic campaigns mean every writer carries identical bytes;
	// the archive just has to commit exactly one complete copy without
	// erroring or tearing.
	result := []byte(`{"app":"CoMD","runs":8}`)
	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = a.Put(testMeta("race01"), result, "")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	rec, err := a.Get("race01")
	if err != nil {
		t.Fatalf("Get after concurrent Put: %v", err)
	}
	if !bytes.Equal(rec.Result, result) {
		t.Fatalf("result bytes differ after concurrent Put: %q", rec.Result)
	}
	entries, _ := a.Stats()
	if entries != 1 {
		t.Fatalf("want 1 entry, have %d", entries)
	}
	// Staging area fully drained: every loser cleaned up after itself.
	stale, err := os.ReadDir(filepath.Join(a.Dir(), "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 0 {
		t.Fatalf("staging leftovers after concurrent Put: %d", len(stale))
	}
}

func TestPutExistingIsNoOp(t *testing.T) {
	a := mustOpen(t)
	if err := a.Put(testMeta("aaaa"), []byte("first"), ""); err != nil {
		t.Fatal(err)
	}
	// Second Put (same fingerprint, hypothetically different bytes — can't
	// happen with deterministic campaigns) leaves the incumbent untouched.
	if err := a.Put(testMeta("aaaa"), []byte("second"), ""); err != nil {
		t.Fatal(err)
	}
	rec, err := a.Get("aaaa")
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Result) != "first" {
		t.Fatalf("incumbent overwritten: %q", rec.Result)
	}
}

func TestOpenClearsStaging(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-Put: a staged entry that never committed.
	stage := filepath.Join(dir, "tmp", "dead-123")
	if err := os.MkdirAll(stage, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stage, "result.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stage); !os.IsNotExist(err) {
		t.Fatal("Open left crash leftovers in staging")
	}
	_ = a
}

func TestListOrderAndStats(t *testing.T) {
	a := mustOpen(t)
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	for i, fp := range []string{"fff", "aaa", "bbb"} {
		m := testMeta(fp)
		// Reverse chronological insertion order vs fingerprint order.
		m.Archived = base.Add(time.Duration(len("fff")-i) * time.Hour)
		if err := a.Put(m, []byte(fmt.Sprintf(`{"i":%d}`, i)), ""); err != nil {
			t.Fatal(err)
		}
	}
	metas, err := a.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 3 {
		t.Fatalf("want 3 entries, have %d", len(metas))
	}
	// Ordered by Archived ascending: bbb (1h), aaa (2h), fff (3h).
	want := []string{"bbb", "aaa", "fff"}
	for i, m := range metas {
		if m.Fingerprint != want[i] {
			t.Fatalf("List order: got %s at %d, want %s", m.Fingerprint, i, want[i])
		}
	}
	entries, bytes := a.Stats()
	if entries != 3 || bytes <= 0 {
		t.Fatalf("Stats: entries=%d bytes=%d", entries, bytes)
	}
}

func TestInvalidFingerprintRejected(t *testing.T) {
	a := mustOpen(t)
	for _, fp := range []string{"", "../escape", "a/b", "a b", string(make([]byte, 200))} {
		if err := a.Put(Meta{Fingerprint: fp}, []byte("{}"), ""); err == nil {
			t.Fatalf("Put accepted invalid fingerprint %q", fp)
		}
		if _, err := a.Get(fp); err == nil {
			t.Fatalf("Get accepted invalid fingerprint %q", fp)
		}
	}
}
