// Package archive is the persistent campaign archive: a disk-backed,
// crash-safe store of completed campaign results keyed by the campaign
// configuration fingerprint. Because campaigns are fully deterministic —
// a fingerprint names exactly one result, byte for byte — the archive
// doubles as a result cache: a repeat submission of an identical
// fingerprint can be served straight from disk and is indistinguishable
// from a fresh run.
//
// Layout: one content-addressed directory per entry under entries/,
// named by the fingerprint, holding
//
//	manifest.json   entry metadata plus per-file checksums
//	result.json     the marshalled campaign result, byte-exact
//	journal.jsonl   the checkpoint journal (optional; absent for merged
//	                coordinated results, which have no single journal)
//
// Commits are atomic: an entry is staged under tmp/ — every file written
// and synced — then renamed into entries/ in one step, so a crash mid-Put
// leaves either no entry or a complete one, never a torn one. Reads verify
// the manifest's checksums; any corruption (truncated file, flipped bytes,
// a manifest naming a different fingerprint than its directory) surfaces
// as ErrCorrupt, which callers treat as a cache miss — a damaged archive
// degrades to re-running campaigns, never to serving a wrong result.
package archive

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Sentinel errors. Both are "miss" conditions for cache users; ErrCorrupt
// additionally signals that the entry should be evicted so a later Put can
// heal the slot.
var (
	// ErrNotFound: no entry exists for the fingerprint.
	ErrNotFound = errors.New("archive: no entry for fingerprint")
	// ErrCorrupt: an entry exists but failed integrity verification
	// (truncated or modified file, malformed manifest, or a manifest
	// whose fingerprint does not match its directory).
	ErrCorrupt = errors.New("archive: entry is corrupt")
)

// Meta is one entry's manifest metadata: enough to list and summarize
// archived campaigns (per-app trends, FPS over time) without loading the
// full results.
type Meta struct {
	// Fingerprint is the cache key: the campaign configuration
	// fingerprint, extended with any result-shaping knobs the caller
	// folds in (see the service's cache-key derivation).
	Fingerprint string `json:"fingerprint"`
	App         string `json:"app"`
	Runs        int    `json:"runs"`
	Seed        uint64 `json:"seed"`
	// MaxSummaries records the retained-summary cap baked into the
	// archived result (0: all summaries retained).
	MaxSummaries int `json:"maxSummaries,omitempty"`
	// Archived is when the entry was committed.
	Archived time.Time `json:"archived"`
	// SourceJob is the job ID whose completion produced the entry.
	SourceJob string `json:"sourceJob,omitempty"`
	// Tenant is the submitting tenant of the source job.
	Tenant string `json:"tenant,omitempty"`
	Label  string `json:"label,omitempty"`
	// Outcomes counts runs per outcome class; FPS is the fitted fault
	// propagation speed. Both are denormalized from the result so trend
	// queries never load result.json.
	Outcomes map[string]int `json:"outcomes,omitempty"`
	FPS      float64        `json:"fps,omitempty"`
}

// manifest is the on-disk manifest.json: the metadata plus integrity
// checksums of every payload file in the entry.
type manifest struct {
	Meta
	// Files maps payload file name to its fnv64a checksum and size.
	Files map[string]fileSum `json:"files"`
}

type fileSum struct {
	Bytes int64  `json:"bytes"`
	Sum   string `json:"sum"`
}

// Record is one verified entry: its metadata, the exact result bytes that
// were archived, and the path of the archived journal ("" when the entry
// has none).
type Record struct {
	Meta    Meta
	Result  []byte
	Journal string
}

const (
	manifestFile = "manifest.json"
	resultFile   = "result.json"
	journalFile  = "journal.jsonl"
)

// Archive is the handle on one archive directory. It is safe for
// concurrent use by multiple goroutines; concurrent Puts of the same
// fingerprint resolve first-writer-wins (the results are identical by
// determinism, so the loser simply discards its staging copy).
type Archive struct {
	dir     string
	entries string
	tmp     string
}

// Open opens (creating if needed) the archive rooted at dir and clears
// any staging leftovers from a previous crash.
func Open(dir string) (*Archive, error) {
	a := &Archive{
		dir:     dir,
		entries: filepath.Join(dir, "entries"),
		tmp:     filepath.Join(dir, "tmp"),
	}
	for _, d := range []string{a.entries, a.tmp} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("archive: open: %w", err)
		}
	}
	// Staged-but-never-committed entries are garbage from a crash mid-Put;
	// a committed entry is never under tmp/, so this cannot lose data.
	if stale, err := os.ReadDir(a.tmp); err == nil {
		for _, e := range stale {
			os.RemoveAll(filepath.Join(a.tmp, e.Name()))
		}
	}
	return a, nil
}

// Dir returns the archive root directory.
func (a *Archive) Dir() string { return a.dir }

// validFingerprint rejects keys that could escape the entries directory
// or collide with staging names. Campaign fingerprints are short hex
// strings (plus the service's "-maxN" cache-key suffix), so the character
// class is deliberately tight.
func validFingerprint(fp string) error {
	if fp == "" || len(fp) > 128 {
		return fmt.Errorf("archive: invalid fingerprint %q", fp)
	}
	for _, r := range fp {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_':
		default:
			return fmt.Errorf("archive: invalid fingerprint %q", fp)
		}
	}
	return nil
}

func (a *Archive) entryDir(fp string) string { return filepath.Join(a.entries, fp) }

func checksum(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// writeSynced writes data to path and syncs it, so the subsequent commit
// rename cannot expose a half-written payload after a crash.
func writeSynced(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Put commits one entry: meta plus the exact result bytes, plus a copy of
// the checkpoint journal at journalPath when one exists (pass "" or a
// missing path for none). An entry that already exists is left untouched
// and Put returns nil — with deterministic campaigns the incumbent bytes
// are the same, and first-writer-wins resolves concurrent Puts without
// tearing either copy.
func (a *Archive) Put(meta Meta, result []byte, journalPath string) error {
	if err := validFingerprint(meta.Fingerprint); err != nil {
		return err
	}
	target := a.entryDir(meta.Fingerprint)
	if _, err := os.Stat(target); err == nil {
		return nil
	}

	stage, err := os.MkdirTemp(a.tmp, meta.Fingerprint+"-*")
	if err != nil {
		return fmt.Errorf("archive: put: %w", err)
	}
	defer os.RemoveAll(stage)

	m := manifest{Meta: meta, Files: map[string]fileSum{
		resultFile: {Bytes: int64(len(result)), Sum: checksum(result)},
	}}
	if err := writeSynced(filepath.Join(stage, resultFile), result); err != nil {
		return fmt.Errorf("archive: put result: %w", err)
	}
	if journalPath != "" {
		jdata, err := os.ReadFile(journalPath)
		switch {
		case err == nil:
			if err := writeSynced(filepath.Join(stage, journalFile), jdata); err != nil {
				return fmt.Errorf("archive: put journal: %w", err)
			}
			m.Files[journalFile] = fileSum{Bytes: int64(len(jdata)), Sum: checksum(jdata)}
		case os.IsNotExist(err):
			// No journal (e.g. a coordinated job): the entry archives
			// without one and cache hits replay no experiment history.
		default:
			return fmt.Errorf("archive: put journal: %w", err)
		}
	}
	mdata, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("archive: put manifest: %w", err)
	}
	if err := writeSynced(filepath.Join(stage, manifestFile), append(mdata, '\n')); err != nil {
		return fmt.Errorf("archive: put manifest: %w", err)
	}

	if err := os.Rename(stage, target); err != nil {
		// A concurrent Put won the rename; its complete entry stands.
		if _, statErr := os.Stat(target); statErr == nil {
			return nil
		}
		return fmt.Errorf("archive: commit: %w", err)
	}
	return nil
}

// Get loads and verifies one entry. ErrNotFound when no entry exists;
// ErrCorrupt when the entry fails integrity verification (callers treat
// both as a miss, and should Remove a corrupt entry so a later Put heals
// the slot).
func (a *Archive) Get(fp string) (*Record, error) {
	if err := validFingerprint(fp); err != nil {
		return nil, err
	}
	dir := a.entryDir(fp)
	m, err := a.readManifest(dir)
	if err != nil {
		return nil, err
	}
	if m.Fingerprint != fp {
		return nil, fmt.Errorf("%w: manifest names fingerprint %s, directory is %s",
			ErrCorrupt, m.Fingerprint, fp)
	}
	rsum, ok := m.Files[resultFile]
	if !ok {
		return nil, fmt.Errorf("%w: manifest lists no result file", ErrCorrupt)
	}
	result, err := verifiedRead(filepath.Join(dir, resultFile), rsum)
	if err != nil {
		return nil, err
	}
	rec := &Record{Meta: m.Meta, Result: result}
	if jsum, ok := m.Files[journalFile]; ok {
		jpath := filepath.Join(dir, journalFile)
		if _, err := verifiedRead(jpath, jsum); err != nil {
			return nil, err
		}
		rec.Journal = jpath
	}
	return rec, nil
}

// readManifest loads and parses one entry's manifest, mapping a missing
// entry to ErrNotFound and everything malformed to ErrCorrupt.
func (a *Archive) readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if os.IsNotExist(err) {
		if _, derr := os.Stat(dir); derr == nil {
			// The directory exists but its manifest is gone: a damaged
			// entry, not a clean miss.
			return nil, fmt.Errorf("%w: missing manifest", ErrCorrupt)
		}
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: malformed manifest: %v", ErrCorrupt, err)
	}
	return &m, nil
}

// verifiedRead reads a payload file and checks it against its manifest
// checksum; any mismatch — truncation, growth, or flipped bytes — is
// ErrCorrupt.
func verifiedRead(path string, want fileSum) ([]byte, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s missing", ErrCorrupt, filepath.Base(path))
	}
	if err != nil {
		return nil, fmt.Errorf("archive: %w", err)
	}
	if int64(len(data)) != want.Bytes || checksum(data) != want.Sum {
		return nil, fmt.Errorf("%w: %s fails verification (%d bytes sum %s, manifest says %d bytes sum %s)",
			ErrCorrupt, filepath.Base(path), len(data), checksum(data), want.Bytes, want.Sum)
	}
	return data, nil
}

// Has reports whether a verified entry exists for the fingerprint.
func (a *Archive) Has(fp string) bool {
	_, err := a.Get(fp)
	return err == nil
}

// Remove deletes one entry (corrupt-entry eviction, or operator cleanup).
// Removing a missing entry is a no-op.
func (a *Archive) Remove(fp string) error {
	if err := validFingerprint(fp); err != nil {
		return err
	}
	if err := os.RemoveAll(a.entryDir(fp)); err != nil {
		return fmt.Errorf("archive: remove: %w", err)
	}
	return nil
}

// List returns the metadata of every readable entry, ordered by archive
// time then fingerprint (a stable, replayable order for trend queries).
// Corrupt entries are skipped, not surfaced: listing is a summary view,
// and the submission path owns eviction.
func (a *Archive) List() ([]Meta, error) {
	dirs, err := os.ReadDir(a.entries)
	if err != nil {
		return nil, fmt.Errorf("archive: list: %w", err)
	}
	var out []Meta
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		m, err := a.readManifest(filepath.Join(a.entries, d.Name()))
		if err != nil || m.Fingerprint != d.Name() {
			continue
		}
		out = append(out, m.Meta)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Archived.Equal(out[j].Archived) {
			return out[i].Archived.Before(out[j].Archived)
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out, nil
}

// Stats walks the archive and returns its entry count and total payload
// bytes (manifest included) — the size gauges exported by the service.
func (a *Archive) Stats() (entries int, bytes int64) {
	dirs, err := os.ReadDir(a.entries)
	if err != nil {
		return 0, 0
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		entries++
		files, err := os.ReadDir(filepath.Join(a.entries, d.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if info, err := f.Info(); err == nil {
				bytes += info.Size()
			}
		}
	}
	return entries, bytes
}

// CopyJournal streams an entry's archived journal to dst (the job store's
// journal slot for a cache-hit job, so event-stream replay works exactly
// like it does for a freshly run job). It is a no-op returning false when
// the record carries no journal.
func (r *Record) CopyJournal(dst string) (bool, error) {
	if r.Journal == "" {
		return false, nil
	}
	src, err := os.Open(r.Journal)
	if err != nil {
		return false, fmt.Errorf("archive: copy journal: %w", err)
	}
	defer src.Close()
	tmp := dst + ".tmp"
	out, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return false, fmt.Errorf("archive: copy journal: %w", err)
	}
	if _, err := io.Copy(out, src); err != nil {
		out.Close()
		os.Remove(tmp)
		return false, fmt.Errorf("archive: copy journal: %w", err)
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return false, fmt.Errorf("archive: copy journal: %w", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return false, fmt.Errorf("archive: copy journal: %w", err)
	}
	return true, nil
}

// String renders a Meta compactly for logs.
func (m Meta) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s app=%s runs=%d seed=%d", m.Fingerprint, m.App, m.Runs, m.Seed)
	if m.SourceJob != "" {
		fmt.Fprintf(&b, " job=%s", m.SourceJob)
	}
	return b.String()
}
