package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"

	"repro/internal/archive"
	"repro/internal/harness"
)

// TestClassifyCategories pins the taxonomy: every routed error lands in
// exactly one of the four categories, including when wrapped, and
// unknown errors take the conservative Retriable default.
func TestClassifyCategories(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Category
	}{
		{"nil", nil, CategoryNone},

		// Fatal: integrity violations halt the job.
		{"fingerprint mismatch", ErrFingerprintMismatch, CategoryFatal},
		{"corrupt archive entry", archive.ErrCorrupt, CategoryFatal},
		{"wrapped fingerprint mismatch",
			fmt.Errorf("shard 3: %w", ErrFingerprintMismatch), CategoryFatal},

		// Permanent: configuration errors reject immediately.
		{"invalid spec", ErrInvalidSpec, CategoryPermanent},
		{"job not found", ErrJobNotFound, CategoryPermanent},
		{"worker not found", ErrWorkerNotFound, CategoryPermanent},
		{"no result", ErrNoResult, CategoryPermanent},
		{"no partial", ErrNoPartial, CategoryPermanent},
		{"no archive entry", ErrNoArchiveEntry, CategoryPermanent},
		{"archive disabled", ErrArchiveDisabled, CategoryPermanent},
		{"peer 404", &peerError{status: 404, message: "no such job"}, CategoryPermanent},
		{"wrapped invalid spec",
			fmt.Errorf("submit: %w", ErrInvalidSpec), CategoryPermanent},

		// Transient: infrastructure pressure clears as load drains.
		{"queue full", ErrQueueFull, CategoryTransient},
		{"rate limited", ErrRateLimited, CategoryTransient},
		{"quota exceeded", ErrQuotaExceeded, CategoryTransient},
		{"deadline exceeded", context.DeadlineExceeded, CategoryTransient},
		{"peer 429", &peerError{status: 429, message: "slow down"}, CategoryTransient},
		{"peer 500", &peerError{status: 500, message: "boom"}, CategoryTransient},
		{"peer 503", &peerError{status: 503, message: "draining"}, CategoryTransient},
		{"net error",
			&net.OpError{Op: "dial", Err: errors.New("connection refused")},
			CategoryTransient},

		// Retriable: may clear on its own; no worker implicated.
		{"interrupted campaign", harness.ErrInterrupted, CategoryRetriable},
		{"unknown error", errors.New("something odd"), CategoryRetriable},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestClassifyCode maps wire codes (from failed worker jobs) through the
// same taxonomy, with empty/unknown codes defaulting to Retriable.
func TestClassifyCode(t *testing.T) {
	cases := []struct {
		code string
		want Category
	}{
		{"fingerprint_mismatch", CategoryFatal},
		{"invalid_spec", CategoryPermanent},
		{"job_not_found", CategoryPermanent},
		{"queue_full", CategoryTransient},
		{"rate_limited", CategoryTransient},
		{"quota_exceeded", CategoryTransient},
		{"", CategoryRetriable},
		{"some_future_code", CategoryRetriable},
	}
	for _, tc := range cases {
		if got := ClassifyCode(tc.code); got != tc.want {
			t.Errorf("ClassifyCode(%q) = %s, want %s", tc.code, got, tc.want)
		}
	}
}

// TestAggregatePrecedence pins FATAL > PERMANENT > RETRIABLE > TRANSIENT:
// when failures from many shards fold into one verdict, the worst
// category observed wins regardless of order or multiplicity.
func TestAggregatePrecedence(t *testing.T) {
	// The precedence chain itself.
	if !(CategoryFatal > CategoryPermanent &&
		CategoryPermanent > CategoryRetriable &&
		CategoryRetriable > CategoryTransient &&
		CategoryTransient > CategoryNone) {
		t.Fatal("category constants are not ordered FATAL > PERMANENT > RETRIABLE > TRANSIENT > none")
	}

	cases := []struct {
		name string
		in   []Category
		want Category
	}{
		{"empty", nil, CategoryNone},
		{"single transient", []Category{CategoryTransient}, CategoryTransient},
		{"retriable beats transient",
			[]Category{CategoryTransient, CategoryRetriable, CategoryTransient},
			CategoryRetriable},
		{"permanent beats retriable",
			[]Category{CategoryRetriable, CategoryPermanent, CategoryTransient},
			CategoryPermanent},
		{"fatal beats everything",
			[]Category{CategoryTransient, CategoryFatal, CategoryPermanent, CategoryRetriable},
			CategoryFatal},
		{"order independent",
			[]Category{CategoryFatal, CategoryTransient},
			CategoryFatal},
	}
	for _, tc := range cases {
		if got := Aggregate(tc.in...); got != tc.want {
			t.Errorf("Aggregate(%s) = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestCategoryStrings: the String form appears in logs and error
// messages; keep it stable.
func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		CategoryNone:      "none",
		CategoryTransient: "transient",
		CategoryRetriable: "retriable",
		CategoryPermanent: "permanent",
		CategoryFatal:     "fatal",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Category(%d).String() = %q, want %q", int(c), c.String(), s)
		}
	}
}
