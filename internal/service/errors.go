package service

import (
	"errors"

	"repro/internal/harness"
)

// Sentinel errors for the service API. Handlers translate them to HTTP
// status codes plus a machine-readable "code" field in the JSON error
// body, and the typed client maps the code back to the same sentinels —
// so errors.Is(err, service.ErrJobNotFound) holds on both sides of the
// wire.
var (
	// ErrJobNotFound: the job ID names no known job.
	ErrJobNotFound = errors.New("service: no such job")
	// ErrQueueFull: the daemon's bounded queue rejected the submission;
	// retry later or raise -max-queue.
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrInvalidSpec: the submitted JobSpec failed validation.
	ErrInvalidSpec = errors.New("service: invalid job spec")
	// ErrNoResult: the job has no stored result (not done, or a shard job
	// — those expose a partial instead).
	ErrNoResult = errors.New("service: job has no result")
	// ErrNoPartial: the job has no stored partial aggregate (not a shard
	// job, or not done yet).
	ErrNoPartial = errors.New("service: job has no partial result")
	// ErrWorkerNotFound: the worker name names no registered peer.
	ErrWorkerNotFound = errors.New("service: no such worker")
	// ErrFingerprintMismatch re-exports the harness sentinel: a shard,
	// journal, or partial belongs to a different campaign configuration.
	ErrFingerprintMismatch = harness.ErrFingerprintMismatch
	// ErrRateLimited: the tenant's submission token bucket is dry; retry
	// after a short backoff.
	ErrRateLimited = errors.New("service: tenant rate limit exceeded")
	// ErrQuotaExceeded: the tenant already has its quota of active jobs;
	// retry once some finish.
	ErrQuotaExceeded = errors.New("service: tenant quota exceeded")
	// ErrArchiveDisabled: the daemon runs without a campaign archive
	// (no -archive-dir), so archive queries have nothing to answer.
	ErrArchiveDisabled = errors.New("service: campaign archive is disabled")
	// ErrNoArchiveEntry: the archive holds no (readable) entry for the
	// fingerprint.
	ErrNoArchiveEntry = errors.New("service: no archive entry for fingerprint")
)

// wireCodes maps sentinels to the stable "code" strings carried in error
// bodies (and in JobStatus.ErrorCode for failed jobs). Codes are API
// surface: never renumber, only add.
var wireCodes = []struct {
	err  error
	code string
}{
	{ErrJobNotFound, "job_not_found"},
	{ErrQueueFull, "queue_full"},
	{ErrInvalidSpec, "invalid_spec"},
	{ErrNoResult, "no_result"},
	{ErrNoPartial, "no_partial"},
	{ErrWorkerNotFound, "worker_not_found"},
	{ErrFingerprintMismatch, "fingerprint_mismatch"},
	{ErrRateLimited, "rate_limited"},
	{ErrQuotaExceeded, "quota_exceeded"},
	{ErrArchiveDisabled, "archive_disabled"},
	{ErrNoArchiveEntry, "no_archive_entry"},
}

// ErrorCode returns the wire code for err, or "" for errors with no
// stable code.
func ErrorCode(err error) string {
	for _, wc := range wireCodes {
		if errors.Is(err, wc.err) {
			return wc.code
		}
	}
	return ""
}

// ErrorForCode returns the sentinel for a wire code, or nil for unknown
// codes (including ""). The typed client chains the sentinel under its
// APIError so errors.Is sees through the HTTP transport.
func ErrorForCode(code string) error {
	for _, wc := range wireCodes {
		if wc.code == code {
			return wc.err
		}
	}
	return nil
}
