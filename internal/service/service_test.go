package service_test

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/service/client"
)

// testDaemon is one running service instance over a store directory, with
// a client pointed at it.
type testDaemon struct {
	srv  *service.Server
	http *httptest.Server
	c    *client.Client
}

func startDaemon(t *testing.T, dir string, cfg service.Config) *testDaemon {
	t.Helper()
	cfg.Dir = dir
	if cfg.ProgressEvery == 0 {
		cfg.ProgressEvery = 20 * time.Millisecond
	}
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	c, err := client.New(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	d := &testDaemon{srv: srv, http: hs, c: c}
	t.Cleanup(func() { d.stop(t) })
	return d
}

// stop drains and closes; safe to call twice.
func (d *testDaemon) stop(t *testing.T) {
	t.Helper()
	if d.http == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := d.srv.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
	d.http.Close()
	d.http = nil
}

// waitDone polls until the job settles, failing the test on timeout.
func waitDone(t *testing.T, c *client.Client, id string) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not settle", id)
	return service.JobStatus{}
}

// assertSameCampaign requires the service-produced result to match a local
// run in every determinism-bearing aggregate: tally, experiments, and the
// propagation model (FPS and per-run fits).
func assertSameCampaign(t *testing.T, label string, local, remote *harness.CampaignResult) {
	t.Helper()
	if !reflect.DeepEqual(local.Tally, remote.Tally) {
		t.Errorf("%s: tally differs: %v vs %v", label, local.Tally, remote.Tally)
	}
	if !reflect.DeepEqual(local.Model, remote.Model) {
		t.Errorf("%s: model differs: FPS %v vs %v (%d vs %d fits)", label,
			local.Model.FPS, remote.Model.FPS, len(local.Model.Fits), len(remote.Model.Fits))
	}
	if !reflect.DeepEqual(local.Experiments, remote.Experiments) {
		t.Errorf("%s: experiments differ (%d vs %d)", label, len(local.Experiments), len(remote.Experiments))
	}
	if !reflect.DeepEqual(local.StructTotals, remote.StructTotals) {
		t.Errorf("%s: struct totals differ", label)
	}
}

// TestTransportDeterminism is the acceptance gate for the service: a fixed
// seed must yield identical tallies, experiments, and FPS fits whether the
// campaign runs locally or through the daemon (submit + stream + fetch via
// the typed client), and the tally streamed in the final result event must
// agree with both.
func TestTransportDeterminism(t *testing.T) {
	app := apps.NewHydro()
	// The daemon job runs in snapshot-fork mode while the local reference
	// re-executes every experiment: Snapshots is a performance strategy
	// only, so the transport gate doubles as the cross-mode differential.
	spec := service.JobSpec{App: "LULESH", Scale: "test", Runs: 14, Seed: 5, SampleEvery: 64, Snapshots: 3}

	local, err := harness.RunCampaign(harness.CampaignConfig{
		App: app, Params: app.TestParams(), Sampling: harness.Sampling{Runs: spec.Runs, Seed: spec.Seed}, Execution: harness.Execution{SampleEvery: spec.SampleEvery},
	})
	if err != nil {
		t.Fatal(err)
	}

	d := startDaemon(t, t.TempDir(), service.Config{JobSlots: 1})
	var streamed *service.Event
	experiments := 0
	remote, err := d.c.Run(context.Background(), spec, func(ev service.Event) error {
		switch ev.Kind {
		case service.EventExperiment:
			experiments++
		case service.EventResult:
			e := ev
			streamed = &e
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameCampaign(t, "local vs daemon", local, remote)
	if experiments != spec.Runs {
		t.Errorf("stream carried %d experiment events, want %d", experiments, spec.Runs)
	}
	if streamed == nil || streamed.Tally == nil {
		t.Fatal("stream ended without a result event")
	}
	if !reflect.DeepEqual(*streamed.Tally, local.Tally) {
		t.Errorf("streamed tally %v differs from local %v", *streamed.Tally, local.Tally)
	}
	if streamed.FPS != local.Model.FPS {
		t.Errorf("streamed FPS %v differs from local %v", streamed.FPS, local.Model.FPS)
	}

	// A watcher attaching after completion replays the full experiment
	// history from the journal before the terminal event.
	jobs, err := d.c.Jobs(context.Background())
	if err != nil || len(jobs) != 1 {
		t.Fatalf("job list: %v (%d jobs)", err, len(jobs))
	}
	replayed := 0
	final, err := d.c.Watch(context.Background(), jobs[0].ID, func(ev service.Event) error {
		if ev.Kind == service.EventExperiment {
			if !ev.Experiment.Resumed {
				t.Errorf("experiment %d replayed to a late watcher without the resumed flag", ev.Experiment.ID)
			}
			replayed++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone {
		t.Errorf("late watch settled as %s", final.State)
	}
	if replayed != spec.Runs {
		t.Errorf("late watcher replayed %d experiments, want %d", replayed, spec.Runs)
	}
}

// TestDaemonKillRestartResumes drains the daemon mid-campaign (the SIGTERM
// path), restarts it over the same store, and requires (a) the job resumes
// from its journal without re-running completed experiments, (b) the final
// result is identical to an uninterrupted local run — the kill+restart leg
// of the transport-determinism acceptance criterion.
func TestDaemonKillRestartResumes(t *testing.T) {
	dir := t.TempDir()
	spec := service.JobSpec{App: "LULESH", Scale: "test", Runs: 60, Seed: 42, SampleEvery: 64}

	d1 := startDaemon(t, dir, service.Config{JobSlots: 1, WorkerPool: 1})
	st, err := d1.c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for a handful of journaled experiments, then pull the plug.
	deadline := time.Now().Add(time.Minute)
	for {
		cur, err := d1.c.Job(context.Background(), st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Progress != nil && cur.Progress.Done >= 5 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job settled as %s before the daemon could be killed; raise Runs", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started making progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	d1.stop(t)

	// The interrupted job must be persisted as queued, not lost.
	d2 := startDaemon(t, dir, service.Config{JobSlots: 1})
	final := waitDone(t, d2.c, st.ID)
	if final.State != service.StateDone {
		t.Fatalf("restarted job settled as %s (%s), want done", final.State, final.Error)
	}
	if final.Resumed == 0 {
		t.Error("restarted job re-ran every experiment instead of resuming from its journal")
	}
	if final.Resumed >= spec.Runs {
		t.Errorf("resumed %d of %d experiments: nothing was left to run after the kill", final.Resumed, spec.Runs)
	}

	remote, err := d2.c.Result(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	app := apps.NewHydro()
	local, err := harness.RunCampaign(harness.CampaignConfig{
		App: app, Params: app.TestParams(), Sampling: harness.Sampling{Runs: spec.Runs, Seed: spec.Seed}, Execution: harness.Execution{SampleEvery: spec.SampleEvery},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameCampaign(t, "kill+restart vs local", local, remote)
}

// TestMetricsUnderConcurrentJobs submits two jobs onto two slots plus one
// that must queue, and requires /metrics to report the queue depth,
// per-job progress, and per-outcome counts while both slots are busy.
func TestMetricsUnderConcurrentJobs(t *testing.T) {
	d := startDaemon(t, t.TempDir(), service.Config{JobSlots: 2, WorkerPool: 2})
	ctx := context.Background()
	a, err := d.c.Submit(ctx, service.JobSpec{App: "LULESH", Scale: "test", Runs: 120, Seed: 1, SampleEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.c.Submit(ctx, service.JobSpec{App: "miniFE", Scale: "test", Runs: 120, Seed: 2, SampleEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	q, err := d.c.Submit(ctx, service.JobSpec{App: "MCB", Scale: "test", Runs: 5, Seed: 3, SampleEvery: 64})
	if err != nil {
		t.Fatal(err)
	}

	// Both slots busy, third job queued, per-job progress advancing, and
	// outcome counters accumulating.
	deadline := time.Now().Add(time.Minute)
	var m service.Metrics
	for {
		if m, err = d.c.Metrics(ctx); err != nil {
			t.Fatal(err)
		}
		progressed := 0
		for _, jm := range m.Jobs {
			if jm.State == service.StateRunning && jm.Done > 0 {
				progressed++
			}
		}
		total := 0
		for _, n := range m.Outcomes {
			total += n
		}
		if m.RunningJobs == 2 && m.QueueDepth >= 1 && progressed == 2 && total > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never showed 2 running + 1 queued with progress; last: %+v", m)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if m.JobSlots != 2 || m.WorkerPool != 2 {
		t.Errorf("metrics capacity = %d slots / %d workers, want 2/2", m.JobSlots, m.WorkerPool)
	}
	if m.WorkersBusy > m.WorkerPool {
		t.Errorf("workersBusy %d exceeds the pool %d: the gate is not shared", m.WorkersBusy, m.WorkerPool)
	}

	// Cancel the queued job, let the rest finish, and check terminal
	// accounting.
	if _, err := d.c.Cancel(ctx, q.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, d.c, a.ID)
	waitDone(t, d.c, b.ID)
	if st := waitDone(t, d.c, q.ID); st.State != service.StateCancelled {
		t.Errorf("queued job settled as %s, want cancelled", st.State)
	}
	m, err = d.c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsDone != 2 || m.JobsCancelled != 1 {
		t.Errorf("terminal accounting: done %d cancelled %d, want 2/1", m.JobsDone, m.JobsCancelled)
	}
	if m.Outcomes["V"]+m.Outcomes["ONA"]+m.Outcomes["WO"]+m.Outcomes["PEX"]+m.Outcomes["C"] != 240 {
		t.Errorf("outcome counters %v do not sum to the 240 completed runs", m.Outcomes)
	}
}

// TestSchedulerPriority fills the single slot with a long job, then queues
// a low-priority and a high-priority job; the high-priority one must be
// dispatched first.
func TestSchedulerPriority(t *testing.T) {
	d := startDaemon(t, t.TempDir(), service.Config{JobSlots: 1, WorkerPool: 1})
	ctx := context.Background()
	long, err := d.c.Submit(ctx, service.JobSpec{App: "LULESH", Scale: "test", Runs: 60, Seed: 9, SampleEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	low, err := d.c.Submit(ctx, service.JobSpec{App: "LULESH", Scale: "test", Runs: 4, Seed: 10, SampleEvery: 64, Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	high, err := d.c.Submit(ctx, service.JobSpec{App: "LULESH", Scale: "test", Runs: 4, Seed: 11, SampleEvery: 64, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, d.c, long.ID)
	lowSt := waitDone(t, d.c, low.ID)
	highSt := waitDone(t, d.c, high.ID)
	if !highSt.Started.Before(lowSt.Started) {
		t.Errorf("priority 5 job started %v, after priority 0 job at %v",
			highSt.Started, lowSt.Started)
	}
}

// TestCancelRunningJob cancels a job mid-flight and requires a terminal
// cancelled state with its journal retained on disk.
func TestCancelRunningJob(t *testing.T) {
	d := startDaemon(t, t.TempDir(), service.Config{JobSlots: 1, WorkerPool: 1})
	ctx := context.Background()
	st, err := d.c.Submit(ctx, service.JobSpec{App: "LULESH", Scale: "test", Runs: 200, Seed: 4, SampleEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		cur, err := d.c.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Progress != nil && cur.Progress.Done > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := d.c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, d.c, st.ID)
	if final.State != service.StateCancelled {
		t.Fatalf("cancelled job settled as %s", final.State)
	}
	if _, err := d.c.Result(ctx, st.ID); err == nil {
		t.Error("cancelled job served a result")
	}
}

// TestSubmitValidation: malformed specs are rejected with a 4xx the client
// surfaces as an APIError, and unknown jobs 404.
func TestSubmitValidation(t *testing.T) {
	d := startDaemon(t, t.TempDir(), service.Config{})
	ctx := context.Background()
	cases := []service.JobSpec{
		{App: "no-such-app", Runs: 5},
		{App: "LULESH", Runs: 0},
		{App: "LULESH", Runs: 5, Scale: "galactic"},
		{App: "LULESH", Runs: 5, Snapshots: -1},
	}
	for _, spec := range cases {
		if _, err := d.c.Submit(ctx, spec); err == nil {
			t.Errorf("spec %+v was accepted", spec)
		}
	}
	if _, err := d.c.Job(ctx, "999"); err == nil {
		t.Error("unknown job id returned a status")
	}
}
