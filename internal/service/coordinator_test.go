package service_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
)

// startWorkerFleet spins up n independent worker daemons and returns their
// API base URLs. Workers are plain daemons — no coordinator-specific mode.
func startWorkerFleet(t *testing.T, n int) ([]*testDaemon, []string) {
	t.Helper()
	var fleet []*testDaemon
	var urls []string
	for i := 0; i < n; i++ {
		d := startDaemon(t, t.TempDir(), service.Config{
			ProgressEvery: 10 * time.Millisecond,
		})
		fleet = append(fleet, d)
		urls = append(urls, d.http.URL)
	}
	return fleet, urls
}

func localReference(t *testing.T, spec service.JobSpec) *harness.CampaignResult {
	t.Helper()
	cfg, err := spec.CampaignConfig()
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCoordinatedShardDeterminism is the scale-out acceptance gate: a
// campaign split into 4 shards across 2 worker processes and merged by
// the coordinator must be byte-identical — experiments, tallies, and FPS
// fits — to the same campaign run in one process.
func TestCoordinatedShardDeterminism(t *testing.T) {
	spec := service.JobSpec{App: "LULESH", Scale: "test", Runs: 22, Seed: 909, SampleEvery: 64, Shards: 4}
	local := localReference(t, spec)

	_, urls := startWorkerFleet(t, 2)
	coord := startDaemon(t, t.TempDir(), service.Config{
		ProgressEvery: 10 * time.Millisecond,
		Heartbeat:     100 * time.Millisecond,
		Peers:         urls,
	})

	ctx := context.Background()
	st, err := coord.c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, coord.c, st.ID)
	if final.State != service.StateDone {
		t.Fatalf("coordinated job settled as %s: %s", final.State, final.Error)
	}
	merged, err := coord.c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCampaign(t, "coordinated", local, merged)

	lj, _ := json.Marshal(local)
	mj, _ := json.Marshal(merged)
	if string(lj) != string(mj) {
		t.Errorf("merged result JSON is not byte-identical to the local run (%d vs %d bytes)", len(lj), len(mj))
	}
	if final.Tally == nil || final.Tally.Total != spec.Runs {
		t.Errorf("terminal status tally = %+v, want total %d", final.Tally, spec.Runs)
	}
}

// TestCoordinatorRedispatchOnWorkerDeath kills one of two workers right
// after submission: its shards must re-dispatch onto the survivor and the
// merged result must still equal the single-process run.
func TestCoordinatorRedispatchOnWorkerDeath(t *testing.T) {
	spec := service.JobSpec{App: "LULESH", Scale: "test", Runs: 60, Seed: 31, SampleEvery: 64, Shards: 6}
	local := localReference(t, spec)

	fleet, urls := startWorkerFleet(t, 2)
	coord := startDaemon(t, t.TempDir(), service.Config{
		ProgressEvery: 10 * time.Millisecond,
		Heartbeat:     50 * time.Millisecond,
		Peers:         urls,
	})

	ctx := context.Background()
	st, err := coord.c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Kill worker 1's network endpoint mid-campaign. Its in-flight shards
	// fail their polls and must requeue onto worker 0.
	time.Sleep(20 * time.Millisecond)
	fleet[1].http.Close()

	final := waitDone(t, coord.c, st.ID)
	if final.State != service.StateDone {
		t.Fatalf("job settled as %s after worker death: %s", final.State, final.Error)
	}
	merged, err := coord.c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCampaign(t, "redispatched", local, merged)

	workers, err := coord.c.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	alive := 0
	for _, w := range workers {
		if w.Alive {
			alive++
		}
	}
	if alive != 1 {
		t.Errorf("want exactly 1 alive worker after the kill, got %d of %d", alive, len(workers))
	}
}

// TestCoordinatorRestartResumesShards drains the coordinator mid-campaign
// and restarts it over the same store: journaled shards must load from
// disk (not re-run) and only the missing shards execute.
func TestCoordinatorRestartResumesShards(t *testing.T) {
	spec := service.JobSpec{App: "LULESH", Scale: "test", Runs: 64, Seed: 440, SampleEvery: 64, Shards: 8}
	local := localReference(t, spec)

	_, urls := startWorkerFleet(t, 2)
	dir := t.TempDir()
	cfg := service.Config{
		ProgressEvery: 10 * time.Millisecond,
		Heartbeat:     100 * time.Millisecond,
		Peers:         urls,
	}
	coord := startDaemon(t, dir, cfg)

	st, err := coord.c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for at least one shard to land in the journal, then drain.
	journal := filepath.Join(dir, "job-"+st.ID+".shards.jsonl")
	deadline := time.Now().Add(time.Minute)
	for {
		if data, err := os.ReadFile(journal); err == nil && strings.Count(string(data), "\n") >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no shard completed before the drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	coord.stop(t)

	before, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	journaled := strings.Count(string(before), "\n")

	restarted := startDaemon(t, dir, cfg)
	final := waitDone(t, restarted.c, st.ID)
	if final.State != service.StateDone {
		t.Fatalf("restarted job settled as %s: %s", final.State, final.Error)
	}
	if final.Resumed == 0 {
		t.Errorf("restarted coordinator reports 0 resumed runs; want the %d journaled shards' runs to replay from disk", journaled)
	}
	merged, err := restarted.c.Result(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCampaign(t, "restarted", local, merged)
}

// TestCompatRedirectsGone pins the removal of the pre-versioning
// /api/v1/* redirects: they were promised for one release (PR 4) and
// that release has passed, so legacy paths now 404 instead of silently
// keeping an extra API surface alive.
func TestCompatRedirectsGone(t *testing.T) {
	d := startDaemon(t, t.TempDir(), service.Config{})
	resp, err := http.Get(d.http.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /api/v1/jobs = %d, want 404 (compat redirects removed)", resp.StatusCode)
	}
}

// TestErrorSentinelsOverWire: the wire codes in error bodies must map
// back to the service sentinels on the client side, so errors.Is works
// across the HTTP transport.
func TestErrorSentinelsOverWire(t *testing.T) {
	d := startDaemon(t, t.TempDir(), service.Config{})
	ctx := context.Background()

	if _, err := d.c.Job(ctx, "999"); !errors.Is(err, service.ErrJobNotFound) {
		t.Errorf("Job(999) = %v, want errors.Is ErrJobNotFound", err)
	}
	if _, err := d.c.Submit(ctx, service.JobSpec{App: "nope", Runs: 1}); !errors.Is(err, service.ErrInvalidSpec) {
		t.Errorf("Submit(bad app) = %v, want errors.Is ErrInvalidSpec", err)
	}
	if err := d.c.RemoveWorker(ctx, "ghost"); !errors.Is(err, service.ErrWorkerNotFound) {
		t.Errorf("RemoveWorker(ghost) = %v, want errors.Is ErrWorkerNotFound", err)
	}

	st, err := d.c.Submit(ctx, service.JobSpec{App: "LULESH", Scale: "test", Runs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.c.Partial(ctx, st.ID); !errors.Is(err, service.ErrNoPartial) {
		t.Errorf("Partial(unsharded job) = %v, want errors.Is ErrNoPartial", err)
	}
	waitDone(t, d.c, st.ID)

	v, err := d.c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.API != service.APIVersion {
		t.Errorf("version API = %q, want %q", v.API, service.APIVersion)
	}
	caps := strings.Join(v.Capabilities, ",")
	if !strings.Contains(caps, "shards") || !strings.Contains(caps, "coordinate") {
		t.Errorf("capabilities %v missing shards/coordinate", v.Capabilities)
	}
}

// TestQueueFull: a daemon with MaxQueue=1 accepts one queued job beyond
// the running one and rejects the next with ErrQueueFull over the wire.
func TestQueueFull(t *testing.T) {
	d := startDaemon(t, t.TempDir(), service.Config{JobSlots: 1, MaxQueue: 1})
	ctx := context.Background()

	long := service.JobSpec{App: "LULESH", Scale: "test", Runs: 4000, Seed: 3}
	first, err := d.c.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the first job occupies the slot so the next sits queued.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := d.c.Job(ctx, first.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	second, err := d.c.Submit(ctx, long)
	if err != nil {
		t.Fatalf("second submit (fills the queue): %v", err)
	}
	if _, err := d.c.Submit(ctx, long); !errors.Is(err, service.ErrQueueFull) {
		t.Errorf("third submit = %v, want errors.Is ErrQueueFull", err)
	}
	for _, id := range []string{first.ID, second.ID} {
		if _, err := d.c.Cancel(ctx, id); err != nil {
			t.Errorf("cancel %s: %v", id, err)
		}
	}
	waitDone(t, d.c, first.ID)
	waitDone(t, d.c, second.ID)
}

// TestWorkerRegistration exercises the runtime worker API: register,
// list, deregister.
func TestWorkerRegistration(t *testing.T) {
	d := startDaemon(t, t.TempDir(), service.Config{})
	ctx := context.Background()

	info, err := d.c.RegisterWorker(ctx, "wk-a", "127.0.0.1:9999")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "wk-a" || info.URL != "http://127.0.0.1:9999" || !info.Alive {
		t.Errorf("registered worker = %+v", info)
	}
	list, err := d.c.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "wk-a" {
		t.Errorf("workers = %+v, want [wk-a]", list)
	}
	if err := d.c.RemoveWorker(ctx, "wk-a"); err != nil {
		t.Fatal(err)
	}
	if list, _ = d.c.Workers(ctx); len(list) != 0 {
		t.Errorf("workers after remove = %+v, want empty", list)
	}
}
