package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/archive"
	"repro/internal/classify"
	"repro/internal/harness"
)

// Campaign archive wiring: completed jobs are archived under their cache
// key, and a repeat submission of an identical key is served straight
// from the archive — a terminal job materializes instantly, its result
// bytes exactly those of the original run, its journal copied so event
// streams replay the full experiment history.

// cacheKey derives the archive key for a spec's campaign configuration.
// The campaign fingerprint covers every field that determines
// per-experiment results (app, params, runs, seed, fault model,
// sampling), and deliberately excludes pure scheduling knobs (Workers,
// Shards, Snapshots) — results are byte-identical across those, so they
// must share a cache slot. MaxSummaries is the one excluded field that
// DOES shape the stored result (it caps the retained per-experiment
// summaries), so it is folded into the key as a suffix: runs differing
// only in MaxSummaries cache separately instead of serving each other's
// truncated (or untruncated) summary sets.
func cacheKey(fingerprint string, maxSummaries int) string {
	if maxSummaries > 0 {
		return fmt.Sprintf("%s-max%d", fingerprint, maxSummaries)
	}
	return fingerprint
}

// specCacheKey computes the cache key for a validated spec ("" for shard
// jobs, which are partial campaigns and never cached whole).
func specCacheKey(spec JobSpec) string {
	if spec.Shard != nil {
		return ""
	}
	cfg, err := spec.CampaignConfig()
	if err != nil {
		return ""
	}
	return cacheKey(cfg.Fingerprint(), spec.MaxSummaries)
}

// lookupCache consults the archive for key. On a verified hit it returns
// the record; on any miss — no entry, or a corrupt one (which it evicts
// so the slot heals on the next Put) — it returns nil. Counted into the
// cache-hit/miss metrics either way.
func (s *Server) lookupCache(key, trace string) *archive.Record {
	if s.archive == nil || key == "" {
		return nil
	}
	rec, err := s.archive.Get(key)
	switch {
	case err == nil:
		s.obs.cacheHits.Inc()
		return rec
	case errors.Is(err, archive.ErrCorrupt):
		// A damaged entry must degrade to a miss, never a wrong result.
		// Evict it so the fresh run's Put repairs the slot.
		s.log.Warn("archive entry corrupt, evicting", "fingerprint", key,
			"trace", trace, "err", err)
		if rerr := s.archive.Remove(key); rerr != nil {
			s.log.Warn("archive eviction failed", "fingerprint", key, "err", rerr)
		}
	case !errors.Is(err, archive.ErrNotFound):
		s.log.Warn("archive read failed", "fingerprint", key, "trace", trace, "err", err)
	}
	s.obs.cacheMisses.Inc()
	return nil
}

// serveCached materializes a cache hit as a terminal job: a fresh job ID
// whose stored result is byte-for-byte the archived original and whose
// journal is a copy of the original's, so GET result, the rendered
// study, and Watch streams are indistinguishable from a fresh run. The
// only tells are CacheHit on the status and the zero-width
// Started→Finished interval.
func (s *Server) serveCached(spec JobSpec, trace, tenant, key string, rec *archive.Record) (JobStatus, error) {
	var res harness.CampaignResult
	if err := json.Unmarshal(rec.Result, &res); err != nil {
		// The entry verified against its checksum but does not decode: it
		// was archived corrupt. Evict and report a miss upstream.
		s.log.Warn("archived result undecodable, evicting", "fingerprint", key, "err", err)
		_ = s.archive.Remove(key)
		return JobStatus{}, fmt.Errorf("%w: undecodable result: %v", archive.ErrCorrupt, err)
	}
	id := s.store.NewID()
	if _, err := rec.CopyJournal(s.store.JournalPath(id)); err != nil {
		return JobStatus{}, err
	}
	if err := s.store.SaveResultBytes(id, rec.Result); err != nil {
		return JobStatus{}, err
	}
	now := time.Now().UTC()
	tally := res.Tally
	j := &job{
		status: JobStatus{
			ID:          id,
			Spec:        spec,
			State:       StateDone,
			Created:     now,
			Started:     now,
			Finished:    now,
			Trace:       trace,
			Tenant:      tenant,
			Fingerprint: key,
			CacheHit:    true,
			Tally:       &tally,
			FPS:         res.Model.FPS,
		},
		hub: newHub(trace, s.cfg.StreamBuffer, s.obs.streamDrops),
	}
	// The hub closes at birth: watchers of a settled job replay the
	// journal and then receive the terminal result event, exactly like
	// watchers attaching to any finished job.
	j.hub.close()
	if err := s.store.SaveStatus(j.status); err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	s.log.Info("job served from archive", "job", id, "trace", trace,
		"tenant", tenant, "fingerprint", key, "source_job", rec.Meta.SourceJob)
	return j.snapshot(), nil
}

// archiveResult commits a finished job's result to the archive
// (best-effort: an archive failure is logged, never fails the job — the
// result is already persisted in the job store).
func (s *Server) archiveResult(st JobStatus, res *harness.CampaignResult, data []byte) {
	if s.archive == nil || st.Spec.Shard != nil || st.Fingerprint == "" {
		return
	}
	outcomes := make(map[string]int)
	for o := 0; o < classify.NumOutcomes; o++ {
		if n := res.Tally.Counts[o]; n > 0 {
			outcomes[classify.Outcome(o).String()] = n
		}
	}
	meta := archive.Meta{
		Fingerprint:  st.Fingerprint,
		App:          st.Spec.App,
		Runs:         st.Spec.Runs,
		Seed:         st.Spec.Seed,
		MaxSummaries: st.Spec.MaxSummaries,
		Archived:     time.Now().UTC(),
		SourceJob:    st.ID,
		Tenant:       st.Tenant,
		Label:        st.Spec.Label,
		Outcomes:     outcomes,
		FPS:          res.Model.FPS,
	}
	// Coordinated jobs have no single experiment journal (their shards
	// journaled on the workers); Put archives without one and cache hits
	// for them replay no experiment history — the same view a watcher
	// gets attaching to the finished coordinated job itself.
	if err := s.archive.Put(meta, data, s.store.JournalPath(st.ID)); err != nil {
		s.log.Warn("archive put failed", "job", st.ID, "trace", st.Trace,
			"fingerprint", st.Fingerprint, "err", err)
		return
	}
	s.log.Info("job archived", "job", st.ID, "trace", st.Trace, "fingerprint", st.Fingerprint)
}

// ArchiveList is the GET /v1/archive document: totals plus every entry's
// metadata in archive-time order.
type ArchiveList struct {
	Entries int            `json:"entries"`
	Bytes   int64          `json:"bytes"`
	Items   []archive.Meta `json:"items"`
}

// ArchiveRecord is the GET /v1/archive/{fingerprint} document: one
// entry's metadata and its full campaign result.
type ArchiveRecord struct {
	Meta   archive.Meta            `json:"meta"`
	Result *harness.CampaignResult `json:"result"`
}

// ArchiveSites is the GET /v1/archive/{fingerprint}/sites document: the
// per-site vulnerability ranking of one archived campaign, without the
// rest of the result payload. Sites is empty (never null) for entries
// archived before per-site analytics existed or for campaigns run with
// site sampling off — the legacy-results rule: absent data renders as
// empty, never as an error.
type ArchiveSites struct {
	Fingerprint string               `json:"fingerprint"`
	App         string               `json:"app"`
	Sites       []harness.SiteReport `json:"sites"`
}

// TrendPoint is one archived campaign inside an app's trend series.
type TrendPoint struct {
	Fingerprint string    `json:"fingerprint"`
	Archived    time.Time `json:"archived"`
	Runs        int       `json:"runs"`
	Seed        uint64    `json:"seed"`
	// FPS is the campaign's fitted fault propagation speed; Rates are
	// per-outcome fractions of runs, so campaigns of different sizes
	// compare directly.
	FPS   float64            `json:"fps,omitempty"`
	Rates map[string]float64 `json:"rates,omitempty"`
}

// AppTrend is one app's outcome-rate and FPS-over-time series in the
// GET /v1/archive/trends document.
type AppTrend struct {
	App    string       `json:"app"`
	Points []TrendPoint `json:"points"`
}

// ArchiveList lists the archive's entries. ErrArchiveDisabled when the
// daemon runs without one.
func (s *Server) ArchiveList() (ArchiveList, error) {
	if s.archive == nil {
		return ArchiveList{}, ErrArchiveDisabled
	}
	items, err := s.archive.List()
	if err != nil {
		return ArchiveList{}, err
	}
	entries, bytes := s.archive.Stats()
	if items == nil {
		items = []archive.Meta{}
	}
	return ArchiveList{Entries: entries, Bytes: bytes, Items: items}, nil
}

// ArchiveEntry loads one archived campaign by fingerprint (the cache
// key). A missing, corrupt, or malformed entry is ErrNoArchiveEntry —
// queries never distinguish damage from absence; only the submission
// path evicts.
func (s *Server) ArchiveEntry(fp string) (ArchiveRecord, error) {
	if s.archive == nil {
		return ArchiveRecord{}, ErrArchiveDisabled
	}
	rec, err := s.archive.Get(fp)
	if err != nil {
		return ArchiveRecord{}, fmt.Errorf("%w: %s", ErrNoArchiveEntry, fp)
	}
	var res harness.CampaignResult
	if err := json.Unmarshal(rec.Result, &res); err != nil {
		return ArchiveRecord{}, fmt.Errorf("%w: %s", ErrNoArchiveEntry, fp)
	}
	return ArchiveRecord{Meta: rec.Meta, Result: &res}, nil
}

// ArchiveSiteRanking loads the per-site vulnerability ranking of one
// archived campaign. It shares ArchiveEntry's lookup semantics (missing,
// corrupt, and malformed entries are all ErrNoArchiveEntry); an archived
// result without per-site tallies yields an empty ranking.
func (s *Server) ArchiveSiteRanking(fp string) (ArchiveSites, error) {
	rec, err := s.ArchiveEntry(fp)
	if err != nil {
		return ArchiveSites{}, err
	}
	sites := rec.Result.Sites
	if sites == nil {
		sites = []harness.SiteReport{}
	}
	return ArchiveSites{Fingerprint: rec.Meta.Fingerprint, App: rec.Meta.App, Sites: sites}, nil
}

// ArchiveTrends groups the archive by app into archive-time-ordered
// series of outcome rates and FPS — the repeat-query-over-history view
// (how did vulnerability and propagation speed move across campaigns?)
// that needs no result payloads, only manifests.
func (s *Server) ArchiveTrends() ([]AppTrend, error) {
	if s.archive == nil {
		return nil, ErrArchiveDisabled
	}
	items, err := s.archive.List()
	if err != nil {
		return nil, err
	}
	byApp := make(map[string]*AppTrend)
	var apps []string
	for _, m := range items {
		tr := byApp[m.App]
		if tr == nil {
			tr = &AppTrend{App: m.App}
			byApp[m.App] = tr
			apps = append(apps, m.App)
		}
		p := TrendPoint{
			Fingerprint: m.Fingerprint,
			Archived:    m.Archived,
			Runs:        m.Runs,
			Seed:        m.Seed,
			FPS:         m.FPS,
		}
		if m.Runs > 0 && len(m.Outcomes) > 0 {
			p.Rates = make(map[string]float64, len(m.Outcomes))
			for o, n := range m.Outcomes {
				p.Rates[o] = float64(n) / float64(m.Runs)
			}
		}
		tr.Points = append(tr.Points, p)
	}
	sort.Strings(apps)
	out := make([]AppTrend, 0, len(apps))
	for _, app := range apps {
		out = append(out, *byApp[app])
	}
	return out, nil
}
