package service

import (
	"repro/internal/classify"
	"repro/internal/harness"
	"repro/internal/obs"
)

// serverObs bundles the daemon's metrics registry and the collectors the
// hot paths observe into. Histograms here are the live, daemon-lifetime
// view; per-job CampaignTimings additionally ride inside shard partials
// so a coordinator's registry also absorbs its workers' distributions.
type serverObs struct {
	reg *obs.Registry

	// queueWait: submission-to-start latency of dispatched jobs.
	queueWait *obs.Histogram
	// shardDur: wall time of completed coordinated shards (dispatch to
	// merged partial, including transport and polling).
	shardDur *obs.Histogram
	// streamDrops: subscribers disconnected for lagging.
	streamDrops *obs.Counter
	// cacheHits/cacheMisses: submissions served from the campaign archive
	// vs run fresh (corrupt archive entries count as misses).
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	// httpRequests: API requests served, by method.
	httpRequests map[string]*obs.Counter

	// expLatency: whole-experiment wall time per outcome class.
	expLatency [classify.NumOutcomes]*obs.Histogram
	// phase latencies of the injection pipeline.
	injectLat, restoreLat, execLat, classifyLat *obs.Histogram
	// restoreBytes: total bytes copied by snapshot-fork restores.
	restoreBytes *obs.Counter
	// restoreFrac: dirty-block fraction per forked restore (1.0 = full
	// copy; delta restores land proportional to what the fork dirtied).
	restoreFrac *obs.Histogram
}

func newServerObs() *serverObs {
	reg := obs.NewRegistry()
	o := &serverObs{
		reg: reg,
		queueWait: reg.Histogram("faultpropd_queue_wait_seconds",
			"Time jobs spent queued before starting.", obs.LatencyBuckets()),
		shardDur: reg.Histogram("faultpropd_shard_seconds",
			"Wall time of coordinated shards, dispatch to merged partial.", obs.LatencyBuckets()),
		streamDrops: reg.Counter("faultpropd_stream_drops_total",
			"Event-stream subscribers dropped for lagging."),
		cacheHits: reg.Counter("faultpropd_cache_hits_total",
			"Submissions served from the campaign archive."),
		cacheMisses: reg.Counter("faultpropd_cache_misses_total",
			"Submissions not served from the archive (absent or corrupt entry)."),
		injectLat: reg.Histogram("faultpropd_experiment_phase_seconds",
			"Experiment phase latency.", obs.LatencyBuckets(), obs.L("phase", "inject")),
		restoreLat: reg.Histogram("faultpropd_experiment_phase_seconds",
			"Experiment phase latency.", obs.LatencyBuckets(), obs.L("phase", "restore")),
		restoreBytes: reg.Counter("faultpropd_restore_bytes_total",
			"Bytes copied by snapshot-fork restores."),
		restoreFrac: reg.Histogram("faultpropd_restore_dirty_fraction",
			"Dirty-block fraction per forked restore (1.0 = full copy).", obs.FractionBuckets()),
		execLat: reg.Histogram("faultpropd_experiment_phase_seconds",
			"Experiment phase latency.", obs.LatencyBuckets(), obs.L("phase", "execute")),
		classifyLat: reg.Histogram("faultpropd_experiment_phase_seconds",
			"Experiment phase latency.", obs.LatencyBuckets(), obs.L("phase", "classify")),
		httpRequests: make(map[string]*obs.Counter),
	}
	for i := range o.expLatency {
		o.expLatency[i] = reg.Histogram("faultpropd_experiment_seconds",
			"Experiment wall time by outcome class.", obs.LatencyBuckets(),
			obs.L("outcome", classify.Outcome(i).String()))
	}
	for _, m := range []string{"GET", "POST", "DELETE"} {
		o.httpRequests[m] = reg.Counter("faultpropd_http_requests_total",
			"API requests served, by method.", obs.L("method", m))
	}
	return o
}

// observePhase folds one locally executed experiment's phase timings into
// the registry histograms.
func (o *serverObs) observePhase(tr harness.PhaseTrace) {
	if i := int(tr.Outcome); i >= 0 && i < classify.NumOutcomes {
		o.expLatency[i].ObserveDuration(tr.Total)
	}
	o.injectLat.ObserveDuration(tr.Inject)
	o.restoreLat.ObserveDuration(tr.Restore)
	o.execLat.ObserveDuration(tr.Execute)
	o.classifyLat.ObserveDuration(tr.Classify)
	if tr.Forked {
		o.restoreBytes.Add(uint64(tr.RestoreBytes))
		o.restoreFrac.Observe(tr.RestoreFrac)
	}
}

// absorbTimings merges a shard partial's carried histograms into the
// registry, so a coordinator's /v1/metrics covers experiments that ran on
// its workers. Layouts are fixed stack-wide, so a mismatch cannot happen
// with our own partials; a foreign layout is simply skipped.
func (o *serverObs) absorbTimings(t *harness.CampaignTimings) {
	if t == nil {
		return
	}
	for i := range o.expLatency {
		_ = o.expLatency[i].Merge(t.ByOutcome[i])
	}
	_ = o.injectLat.Merge(t.Inject)
	_ = o.restoreLat.Merge(t.Restore)
	_ = o.execLat.Merge(t.Execute)
	_ = o.classifyLat.Merge(t.Classify)
	_ = o.restoreFrac.Merge(t.RestoreFrac)
	// The bytes histogram carries the shard's exact per-restore copy
	// sizes; its sum feeds the daemon-lifetime counter.
	o.restoreBytes.Add(uint64(t.RestoreBytes.Sum()))
}

// countRequest bumps the per-method request counter (unknown methods are
// uncounted rather than growing the label set unboundedly).
func (o *serverObs) countRequest(method string) {
	o.httpRequests[method].Inc()
}
