package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
)

// The coordinator turns one submitted job with Shards > 1 into a fleet of
// shard jobs on registered peer workers:
//
//	plan    PlanShards carves [0, Runs) into fingerprint-guarded specs
//	journal completed shards recorded in job-<id>.shards.jsonl, partials
//	        parked on disk — a coordinator restart re-runs only the
//	        missing shards
//	dispatch each pending shard goes to the least-loaded alive worker;
//	        worker death (failed heartbeat, failed polls) requeues the
//	        shard with backoff onto surviving workers
//	merge   partials merge order-independently; the finalized result is
//	        byte-identical to a single-process run of the same spec
//
// The coordinator publishes merged progress events on the job's stream,
// so watchers see one campaign, not N shards.

// maxShardAttempts bounds re-dispatches of one shard before the whole job
// fails: transient worker deaths retry, a systematically failing shard
// does not loop forever.
const maxShardAttempts = 5

// shardJournalRecord is one completed shard in the coordinator's journal.
type shardJournalRecord struct {
	Shard  int    `json:"shard"`
	Worker string `json:"worker"`
	// Path is the partial's on-disk location, owned by this record.
	Path string `json:"path"`
}

// shardTask is the dispatch-loop state of one shard.
type shardTask struct {
	spec     harness.ShardSpec
	attempts int
	notAfter time.Time // backoff: do not dispatch before this
}

// shardOutcome is what one dispatch goroutine reports back.
type shardOutcome struct {
	task    *shardTask
	worker  WorkerInfo
	partial *harness.PartialResult
	// elapsed is the shard's wall time, submit to fetched partial
	// (set on success; feeds the shard-duration histogram).
	elapsed time.Duration
	err     error
	// category classifies err under the failure taxonomy and alone
	// decides the route: Fatal halts the job, Permanent rejects it with
	// the wire code, Transient requeues with backoff and dead-marks the
	// worker, Retriable requeues with backoff without implicating the
	// worker.
	category Category
}

// runCoordinated executes a Shards > 1 job by decomposition: it returns
// the merged result, or an error (wrapping ErrInterrupted for
// cancel/drain, like the local path, so runJob's settlement logic treats
// both transports identically).
func (s *Server) runCoordinated(ctx context.Context, j *job, st JobStatus) (*harness.CampaignResult, error) {
	cfg, err := st.Spec.CampaignConfig()
	if err != nil {
		return nil, err
	}
	specs, err := harness.PlanShards(cfg, st.Spec.Shards)
	if err != nil {
		return nil, err
	}
	fingerprint := cfg.Fingerprint()

	// Replay the shard journal: shards whose partials are already on disk
	// (a previous coordinator run) are not re-dispatched.
	parts := make([]*harness.PartialResult, len(specs))
	journal, err := s.openShardJournal(st.ID, fingerprint, specs, parts)
	if err != nil {
		return nil, err
	}
	defer journal.close()
	resumedRuns := 0
	for i, p := range parts {
		if p != nil {
			resumedRuns += specs[i].Size()
		}
	}

	var pending []*shardTask
	for i := range specs {
		if parts[i] == nil {
			pending = append(pending, &shardTask{spec: specs[i]})
		}
	}
	remaining := len(pending)

	// inflight tracks dispatched shards for progress merging and
	// teardown. The map and the flight fields are guarded by j.mu: the
	// dispatch goroutines update progress through it while the loop below
	// reads it.
	type flight struct {
		worker WorkerInfo
		jobID  string
		done   int // last polled per-shard progress
	}
	inflight := make(map[*shardTask]*flight)
	outcomes := make(chan shardOutcome)

	publishProgress := func(started time.Time) {
		snap := harness.Snapshot{
			Total:   cfg.Runs,
			Resumed: resumedRuns,
			Elapsed: time.Since(started),
		}
		for i, p := range parts {
			if p == nil {
				continue
			}
			snap.Done += specs[i].Size()
			for o := range p.Tally.Counts {
				snap.Outcomes[o] += p.Tally.Counts[o]
			}
		}
		j.mu.Lock()
		for _, f := range inflight {
			snap.Done += f.done
			snap.Running++
		}
		if snap.Elapsed > 0 {
			snap.RunsPerSec = float64(snap.Done-resumedRuns) / snap.Elapsed.Seconds()
		}
		cp := snap
		j.coordProg = &cp
		j.mu.Unlock()
		j.hub.publish(Event{Kind: EventProgress, Job: st.ID, State: StateRunning, Progress: &snap})
	}

	dispatch := func(t *shardTask, w WorkerInfo) {
		j.mu.Lock()
		inflight[t] = &flight{worker: w}
		j.mu.Unlock()
		go func() {
			out := s.runShardOn(ctx, w, st, t, func(done int) {
				j.mu.Lock()
				if f := inflight[t]; f != nil {
					f.done = done
				}
				j.mu.Unlock()
			}, func(jobID string) {
				j.mu.Lock()
				if f := inflight[t]; f != nil {
					f.jobID = jobID
				}
				j.mu.Unlock()
			})
			select {
			case outcomes <- out:
			case <-ctx.Done():
				// The interrupted path reads teardown info straight from
				// inflight; nobody drains this outcome.
			}
		}()
	}

	started := time.Now()
	tick := time.NewTicker(s.cfg.ProgressEvery)
	defer tick.Stop()

	assign := func() {
		now := time.Now()
		var rest []*shardTask
		noWorker := false
		for _, t := range pending {
			if noWorker || now.Before(t.notAfter) {
				rest = append(rest, t)
				continue
			}
			w, ok := s.registry.acquire()
			if !ok {
				noWorker = true
				rest = append(rest, t)
				continue
			}
			dispatch(t, w)
		}
		pending = rest
	}
	assign()

	interrupted := func() error {
		// Best-effort cancel of in-flight worker jobs so workers do not
		// burn cycles on a campaign nobody will merge. Their journals
		// remain; a re-dispatch starts a fresh worker job.
		tctx, tcancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer tcancel()
		type teardown struct {
			url, name, jobID string
		}
		j.mu.Lock()
		var tds []teardown
		for _, f := range inflight {
			tds = append(tds, teardown{url: f.worker.URL, name: f.worker.Name, jobID: f.jobID})
		}
		j.mu.Unlock()
		for _, td := range tds {
			if td.jobID != "" {
				s.peers.cancel(tctx, td.url, td.jobID)
			}
			s.registry.release(td.name)
		}
		doneShards := len(specs) - remaining
		if cause := context.Cause(ctx); cause != nil {
			return fmt.Errorf("%w after %d of %d shards: %v",
				harness.ErrInterrupted, doneShards, len(specs), cause)
		}
		return fmt.Errorf("%w after %d of %d shards",
			harness.ErrInterrupted, doneShards, len(specs))
	}

	for remaining > 0 {
		select {
		case <-ctx.Done():
			return nil, interrupted()
		case <-tick.C:
			assign()
			publishProgress(started)
		case out := <-outcomes:
			j.mu.Lock()
			delete(inflight, out.task)
			j.mu.Unlock()
			s.registry.release(out.worker.Name)
			switch {
			case out.err == nil:
				idx := out.task.spec.Index
				parts[idx] = out.partial
				if err := journal.record(shardJournalRecord{
					Shard:  idx,
					Worker: out.worker.Name,
					Path:   s.store.ShardPartialPath(st.ID, idx),
				}, out.partial); err != nil {
					return nil, err
				}
				remaining--
				s.obs.shardDur.ObserveDuration(out.elapsed)
				// Fold the shard's phase-latency histograms into this
				// coordinator's registry: /v1/metrics then covers
				// experiments that ran on workers, not just local ones.
				s.obs.absorbTimings(out.partial.Timings)
				s.log.Info("shard done", "job", st.ID, "trace", st.Trace,
					"shard", idx, "worker", out.worker.Name, "elapsed", out.elapsed)
				publishProgress(started)
			case out.category == CategoryFatal:
				// Integrity violation (fingerprint mismatch): halt at once —
				// retrying could silently merge incompatible experiments.
				return nil, fmt.Errorf("shard %d on worker %s: fatal: %w",
					out.task.spec.Index, out.worker.Name, out.err)
			case out.category == CategoryPermanent:
				// Configuration error: no amount of re-dispatching fixes a
				// wrong request. The wrapped sentinel keeps its wire code,
				// so the job's ErrorCode tells clients exactly why.
				return nil, fmt.Errorf("shard %d on worker %s: %w",
					out.task.spec.Index, out.worker.Name, out.err)
			default:
				// Our own teardown (cancel, drain) surfaces as a context
				// error from the dispatch goroutine racing the ctx.Done
				// case above; that is not a worker failure, so do not mark
				// the worker dead or burn a dispatch attempt.
				if ctx.Err() != nil {
					return nil, interrupted()
				}
				// Transient infrastructure failure (worker died, poll
				// failed, 5xx/429): mark the worker dead so assignment
				// skips it until a heartbeat revives it. Retriable failures
				// (worker job cancelled under us, unclassified flake) also
				// requeue with backoff but do not implicate the worker.
				if out.category == CategoryTransient {
					s.registry.markAlive(out.worker.Name, false)
				}
				out.task.attempts++
				if out.task.attempts >= maxShardAttempts {
					return nil, fmt.Errorf("shard %d failed after %d attempts (%s): %w",
						out.task.spec.Index, out.task.attempts, out.category, out.err)
				}
				out.task.notAfter = time.Now().Add(s.cfg.ProgressEvery << out.task.attempts)
				pending = append(pending, out.task)
				s.log.Warn("shard requeued", "job", st.ID, "trace", st.Trace,
					"shard", out.task.spec.Index, "worker", out.worker.Name,
					"category", out.category.String(),
					"attempt", out.task.attempts, "err", out.err)
				assign()
			}
		}
	}

	res, err := harness.MergePartials(nonNil(parts)...)
	if err != nil {
		return nil, fmt.Errorf("merge shards: %w", err)
	}
	return res, nil
}

// runShardOn runs one shard to completion on one worker: submit, poll
// until terminal, fetch the partial, sanity-check its fingerprint.
func (s *Server) runShardOn(ctx context.Context, w WorkerInfo, st JobStatus,
	t *shardTask, onProgress func(done int), onSubmit func(jobID string)) shardOutcome {

	spec := st.Spec
	spec.Shards = 0
	spec.Shard = &t.spec
	spec.Label = fmt.Sprintf("shard %d/%d of job %s", t.spec.Index, t.spec.Shards, st.ID)
	spec.Priority = st.Spec.Priority

	// The shard's span ID derives from the job's trace, so the worker's
	// journal, events, and logs correlate back to this submission.
	begun := time.Now()
	span := obs.ShardSpan(st.Trace, t.spec.Index)
	wjob, err := s.peers.submit(ctx, w.URL, spec, span, st.Tenant)
	if err != nil {
		return shardOutcome{task: t, worker: w, err: err, category: Classify(err)}
	}
	onSubmit(wjob.ID)
	s.log.Debug("shard dispatched", "job", st.ID, "trace", span,
		"shard", t.spec.Index, "worker", w.Name, "worker_job", wjob.ID)

	for {
		select {
		case <-ctx.Done():
			return shardOutcome{task: t, worker: w, err: ctx.Err()}
		case <-time.After(s.cfg.ProgressEvery):
		}
		cur, err := s.peers.job(ctx, w.URL, wjob.ID)
		if err != nil {
			return shardOutcome{task: t, worker: w, err: err, category: Classify(err)}
		}
		if cur.Progress != nil {
			onProgress(cur.Progress.Done)
		} else if cur.Tally != nil {
			onProgress(cur.Tally.Total)
		}
		switch cur.State {
		case StateDone:
			part, err := s.peers.partial(ctx, w.URL, wjob.ID)
			if err != nil {
				return shardOutcome{task: t, worker: w, err: err, category: Classify(err)}
			}
			if part.Fingerprint != t.spec.Fingerprint {
				return shardOutcome{task: t, worker: w, category: CategoryFatal,
					err: fmt.Errorf("%w: worker %s returned %s, want %s",
						ErrFingerprintMismatch, w.Name, part.Fingerprint, t.spec.Fingerprint)}
			}
			return shardOutcome{task: t, worker: w, partial: part, elapsed: time.Since(begun)}
		case StateFailed:
			// The worker's ErrorCode names the cause; classify it under
			// the taxonomy, and when it maps to a sentinel, wrap that
			// sentinel so the wire code survives into this job's failure.
			err := fmt.Errorf("worker job %s failed: %s", wjob.ID, cur.Error)
			if sentinel := ErrorForCode(cur.ErrorCode); sentinel != nil {
				err = fmt.Errorf("worker job %s failed: %w: %s", wjob.ID, sentinel, cur.Error)
			}
			return shardOutcome{task: t, worker: w, err: err,
				category: ClassifyCode(cur.ErrorCode)}
		case StateCancelled:
			// Someone cancelled the worker job out from under us: not an
			// infrastructure fault, so retriable — re-dispatch without
			// dead-marking the worker.
			return shardOutcome{task: t, worker: w, category: CategoryRetriable,
				err: fmt.Errorf("worker job %s was cancelled", wjob.ID)}
		}
	}
}

// shardJournal appends completed-shard records, persisting each shard's
// partial before its journal line so a record always points at a readable
// partial.
type shardJournal struct {
	s *Server
	f *os.File
}

// openShardJournal opens (resuming if present) the shard journal for a
// coordinated job. Journaled shards with loadable, fingerprint-matching
// partials are placed into parts; everything else re-runs.
func (s *Server) openShardJournal(jobID, fingerprint string, specs []harness.ShardSpec,
	parts []*harness.PartialResult) (*shardJournal, error) {

	path := s.store.ShardJournalPath(jobID)
	if data, err := os.ReadFile(path); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var rec shardJournalRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				break // truncated tail: ignore it and everything after
			}
			if rec.Shard < 0 || rec.Shard >= len(specs) || parts[rec.Shard] != nil {
				continue
			}
			part, err := s.store.LoadPartial(rec.Path)
			if err != nil || part.Fingerprint != fingerprint {
				continue // missing or foreign partial: shard re-runs
			}
			parts[rec.Shard] = part
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: shard journal: %w", err)
	}
	return &shardJournal{s: s, f: f}, nil
}

// record persists one completed shard: partial first, then the journal
// line, flushed.
func (j *shardJournal) record(rec shardJournalRecord, part *harness.PartialResult) error {
	if err := j.s.store.SavePartial(rec.Path, part); err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: shard journal: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("service: shard journal: %w", err)
	}
	return j.f.Sync()
}

func (j *shardJournal) close() { _ = j.f.Close() }

func nonNil(parts []*harness.PartialResult) []*harness.PartialResult {
	out := make([]*harness.PartialResult, 0, len(parts))
	for _, p := range parts {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}
