package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
)

// The coordinator turns one submitted job with Shards > 1 into a fleet of
// shard jobs on registered peer workers:
//
//	plan    PlanShards carves [0, Runs) into fingerprint-guarded specs
//	journal completed shards recorded in job-<id>.shards.jsonl, partials
//	        parked on disk — a coordinator restart re-runs only the
//	        missing shards
//	dispatch each pending shard goes to the least-loaded alive worker;
//	        worker death (failed heartbeat, failed polls) requeues the
//	        shard with backoff onto surviving workers
//	merge   partials merge order-independently; the finalized result is
//	        byte-identical to a single-process run of the same spec
//
// A job that also carries an adaptive sampling policy (JobSpec.Sampling
// with a target CI) is coordinated round by round instead: the
// coordinator owns the planner, workers stay policy-blind executors of
// explicit-ID shard specs, and each round's merged per-stratum tallies
// steer the next round's allocation.
//
// The coordinator publishes merged progress events on the job's stream,
// so watchers see one campaign, not N shards.

// maxShardAttempts bounds re-dispatches of one shard before the whole job
// fails: transient worker deaths retry, a systematically failing shard
// does not loop forever.
const maxShardAttempts = 5

// shardJournalRecord is one completed shard in the coordinator's journal.
type shardJournalRecord struct {
	Shard  int    `json:"shard"`
	Worker string `json:"worker"`
	// Path is the partial's on-disk location, owned by this record.
	Path string `json:"path"`
}

// shardTask is the dispatch-loop state of one shard.
type shardTask struct {
	spec     harness.ShardSpec
	attempts int
	notAfter time.Time // backoff: do not dispatch before this
	// key is the shard's journal identity and partial-path index. The
	// fixed plan uses the spec index; the adaptive coordinator keys
	// (round, slot) pairs so every round's shards journal distinctly.
	key int
	// slot is the task's position in its caller's parts slice.
	slot int
}

// shardOutcome is what one dispatch goroutine reports back.
type shardOutcome struct {
	task    *shardTask
	worker  WorkerInfo
	partial *harness.PartialResult
	// elapsed is the shard's wall time, submit to fetched partial
	// (set on success; feeds the shard-duration histogram).
	elapsed time.Duration
	err     error
	// category classifies err under the failure taxonomy and alone
	// decides the route: Fatal halts the job, Permanent rejects it with
	// the wire code, Transient requeues with backoff and dead-marks the
	// worker, Retriable requeues with backoff without implicating the
	// worker.
	category Category
}

// runCoordinated executes a Shards > 1 job by decomposition: it returns
// the merged result, or an error (wrapping ErrInterrupted for
// cancel/drain, like the local path, so runJob's settlement logic treats
// both transports identically). Adaptive jobs take the round-planning
// path; fixed jobs dispatch the whole shard plan at once.
func (s *Server) runCoordinated(ctx context.Context, j *job, st JobStatus) (*harness.CampaignResult, error) {
	cfg, err := st.Spec.CampaignConfig()
	if err != nil {
		return nil, err
	}
	if st.Spec.Adaptive() {
		return s.runAdaptiveCoordinated(ctx, j, st, cfg)
	}
	specs, err := harness.PlanShards(cfg, st.Spec.Shards)
	if err != nil {
		return nil, err
	}
	fingerprint := cfg.Fingerprint()

	// Replay the shard journal: shards whose partials are already on disk
	// (a previous coordinator run) are not re-dispatched.
	saved := s.replayShardPartials(st.ID, fingerprint)
	journal, err := s.appendShardJournal(st.ID)
	if err != nil {
		return nil, err
	}
	defer journal.close()

	parts := make([]*harness.PartialResult, len(specs))
	resumedRuns := 0
	var pending []*shardTask
	for i := range specs {
		if p := saved[i]; p != nil {
			parts[i] = p
			resumedRuns += specs[i].Size()
			continue
		}
		pending = append(pending, &shardTask{spec: specs[i], key: i, slot: i})
	}

	onDone := func(t *shardTask, worker string, part *harness.PartialResult) error {
		parts[t.slot] = part
		return journal.record(shardJournalRecord{
			Shard:  t.key,
			Worker: worker,
			Path:   s.store.ShardPartialPath(st.ID, t.key),
		}, part)
	}
	base := func() harness.Snapshot {
		snap := harness.Snapshot{Total: cfg.Runs, Resumed: resumedRuns}
		for i, p := range parts {
			if p == nil {
				continue
			}
			snap.Done += specs[i].Size()
			for o := range p.Tally.Counts {
				snap.Outcomes[o] += p.Tally.Counts[o]
			}
		}
		return snap
	}
	if err := s.runShardSet(ctx, j, st, pending, len(specs), time.Now(), onDone, base); err != nil {
		return nil, err
	}

	res, err := harness.MergePartials(nonNil(parts)...)
	if err != nil {
		return nil, fmt.Errorf("merge shards: %w", err)
	}
	return res, nil
}

// runAdaptiveCoordinated drives an adaptive campaign over peer workers.
// The coordinator owns the sampling policy — the same pure decision core
// the local engine runs — and the workers never see it: each round's
// experiment IDs are split into explicit-ID shard specs, dispatched with
// the usual retry taxonomy, and the round's merged per-stratum tallies
// fold back into the planner to steer the next round. Because outcomes
// are pure functions of the seed, the coordinated campaign executes the
// same experiment set as a local adaptive run and merges to the same
// bytes.
//
// Completed round shards journal exactly like fixed shards, keyed by
// (round, slot). On coordinator restart the planner re-derives the
// identical round sequence, consumes the journaled partials, and
// dispatches only what is missing.
func (s *Server) runAdaptiveCoordinated(ctx context.Context, j *job, st JobStatus,
	cfg harness.CampaignConfig) (*harness.CampaignResult, error) {

	strata, err := harness.BuildStrata(cfg)
	if err != nil {
		return nil, err
	}
	planner, err := harness.NewAdaptivePlanner(cfg, strata)
	if err != nil {
		return nil, err
	}
	fingerprint := cfg.Fingerprint()
	nShards := st.Spec.Shards

	saved := s.replayShardPartials(st.ID, fingerprint)
	journal, err := s.appendShardJournal(st.ID)
	if err != nil {
		return nil, err
	}
	defer journal.close()

	started := time.Now()
	var acc *harness.PartialResult
	resumedRuns := 0
	for round := 1; ; round++ {
		ids := planner.NextRound()
		if ids == nil {
			break
		}
		specs := harness.PlanRoundShards(cfg, ids, nShards)
		parts := make([]*harness.PartialResult, len(specs))
		var pending []*shardTask
		for i := range specs {
			key := (round-1)*nShards + i
			if p := saved[key]; p != nil {
				parts[i] = p
				resumedRuns += specs[i].Size()
				continue
			}
			pending = append(pending, &shardTask{spec: specs[i], key: key, slot: i})
		}
		if len(pending) > 0 {
			onDone := func(t *shardTask, worker string, part *harness.PartialResult) error {
				parts[t.slot] = part
				return journal.record(shardJournalRecord{
					Shard:  t.key,
					Worker: worker,
					Path:   s.store.ShardPartialPath(st.ID, t.key),
				}, part)
			}
			base := func() harness.Snapshot {
				snap := harness.Snapshot{Total: cfg.Runs, Resumed: resumedRuns}
				fold := func(p *harness.PartialResult) {
					snap.Done += p.Tally.Total
					for o := range p.Tally.Counts {
						snap.Outcomes[o] += p.Tally.Counts[o]
					}
				}
				if acc != nil {
					fold(acc)
				}
				for _, p := range parts {
					if p != nil {
						fold(p)
					}
				}
				return snap
			}
			s.log.Info("adaptive round", "job", st.ID, "trace", st.Trace,
				"round", round, "experiments", len(ids), "shards", len(pending))
			if err := s.runShardSet(ctx, j, st, pending, len(specs), started, onDone, base); err != nil {
				return nil, err
			}
		}
		roundAcc := parts[0].Clone()
		for _, p := range parts[1:] {
			if err := roundAcc.Merge(p); err != nil {
				return nil, fmt.Errorf("merge round %d shards: %w", round, err)
			}
		}
		planner.Fold(roundAcc.Strata)
		if acc == nil {
			acc = roundAcc
		} else if err := acc.Merge(roundAcc); err != nil {
			return nil, fmt.Errorf("merge round %d: %w", round, err)
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("adaptive campaign planned zero experiments")
	}
	// The planner closed every stratum; the executed subset stands in for
	// the whole budget when the accumulated partial finalizes.
	acc.AdaptiveDone = true
	res, err := acc.Finalize()
	if err != nil {
		return nil, fmt.Errorf("finalize adaptive campaign: %w", err)
	}
	s.log.Info("adaptive campaign converged", "job", st.ID, "trace", st.Trace,
		"spent", acc.Tally.Total, "budget", cfg.Runs, "fingerprint", fingerprint)
	return res, nil
}

// runShardSet dispatches a set of shard tasks across the registered
// workers and runs them all to completion. Worker selection, the retry
// taxonomy, merged-progress publication, and cancel/drain teardown are
// shared between the fixed-plan coordinator (one set for the whole
// campaign) and the adaptive coordinator (one set per planner round).
// onDone persists each fetched partial before the task counts as done;
// base seeds each progress snapshot with the completed work the caller
// already tracks (journal-resumed shards, earlier rounds); total sizes
// the set's shard plan for interruption messages.
func (s *Server) runShardSet(ctx context.Context, j *job, st JobStatus,
	pending []*shardTask, total int, started time.Time,
	onDone func(t *shardTask, worker string, part *harness.PartialResult) error,
	base func() harness.Snapshot) error {

	remaining := len(pending)

	// inflight tracks dispatched shards for progress merging and
	// teardown. The map and the flight fields are guarded by j.mu: the
	// dispatch goroutines update progress through it while the loop below
	// reads it.
	type flight struct {
		worker WorkerInfo
		jobID  string
		done   int // last polled per-shard progress
	}
	inflight := make(map[*shardTask]*flight)
	outcomes := make(chan shardOutcome)

	publishProgress := func() {
		snap := base()
		snap.Elapsed = time.Since(started)
		j.mu.Lock()
		for _, f := range inflight {
			snap.Done += f.done
			snap.Running++
		}
		if snap.Elapsed > 0 {
			snap.RunsPerSec = float64(snap.Done-snap.Resumed) / snap.Elapsed.Seconds()
		}
		cp := snap
		j.coordProg = &cp
		j.mu.Unlock()
		j.hub.publish(Event{Kind: EventProgress, Job: st.ID, State: StateRunning, Progress: &snap})
	}

	dispatch := func(t *shardTask, w WorkerInfo) {
		j.mu.Lock()
		inflight[t] = &flight{worker: w}
		j.mu.Unlock()
		go func() {
			out := s.runShardOn(ctx, w, st, t, func(done int) {
				j.mu.Lock()
				if f := inflight[t]; f != nil {
					f.done = done
				}
				j.mu.Unlock()
			}, func(jobID string) {
				j.mu.Lock()
				if f := inflight[t]; f != nil {
					f.jobID = jobID
				}
				j.mu.Unlock()
			})
			select {
			case outcomes <- out:
			case <-ctx.Done():
				// The interrupted path reads teardown info straight from
				// inflight; nobody drains this outcome.
			}
		}()
	}

	tick := time.NewTicker(s.cfg.ProgressEvery)
	defer tick.Stop()

	assign := func() {
		now := time.Now()
		var rest []*shardTask
		noWorker := false
		for _, t := range pending {
			if noWorker || now.Before(t.notAfter) {
				rest = append(rest, t)
				continue
			}
			w, ok := s.registry.acquire()
			if !ok {
				noWorker = true
				rest = append(rest, t)
				continue
			}
			dispatch(t, w)
		}
		pending = rest
	}
	assign()

	interrupted := func() error {
		// Best-effort cancel of in-flight worker jobs so workers do not
		// burn cycles on a campaign nobody will merge. Their journals
		// remain; a re-dispatch starts a fresh worker job.
		tctx, tcancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer tcancel()
		type teardown struct {
			url, name, jobID string
		}
		j.mu.Lock()
		var tds []teardown
		for _, f := range inflight {
			tds = append(tds, teardown{url: f.worker.URL, name: f.worker.Name, jobID: f.jobID})
		}
		j.mu.Unlock()
		for _, td := range tds {
			if td.jobID != "" {
				s.peers.cancel(tctx, td.url, td.jobID)
			}
			s.registry.release(td.name)
		}
		doneShards := total - remaining
		if cause := context.Cause(ctx); cause != nil {
			return fmt.Errorf("%w after %d of %d shards: %v",
				harness.ErrInterrupted, doneShards, total, cause)
		}
		return fmt.Errorf("%w after %d of %d shards",
			harness.ErrInterrupted, doneShards, total)
	}

	for remaining > 0 {
		select {
		case <-ctx.Done():
			return interrupted()
		case <-tick.C:
			assign()
			publishProgress()
		case out := <-outcomes:
			j.mu.Lock()
			delete(inflight, out.task)
			j.mu.Unlock()
			s.registry.release(out.worker.Name)
			switch {
			case out.err == nil:
				if err := onDone(out.task, out.worker.Name, out.partial); err != nil {
					return err
				}
				remaining--
				s.obs.shardDur.ObserveDuration(out.elapsed)
				// Fold the shard's phase-latency histograms into this
				// coordinator's registry: /v1/metrics then covers
				// experiments that ran on workers, not just local ones.
				s.obs.absorbTimings(out.partial.Timings)
				s.log.Info("shard done", "job", st.ID, "trace", st.Trace,
					"shard", out.task.key, "worker", out.worker.Name, "elapsed", out.elapsed)
				publishProgress()
			case out.category == CategoryFatal:
				// Integrity violation (fingerprint mismatch): halt at once —
				// retrying could silently merge incompatible experiments.
				return fmt.Errorf("shard %d on worker %s: fatal: %w",
					out.task.key, out.worker.Name, out.err)
			case out.category == CategoryPermanent:
				// Configuration error: no amount of re-dispatching fixes a
				// wrong request. The wrapped sentinel keeps its wire code,
				// so the job's ErrorCode tells clients exactly why.
				return fmt.Errorf("shard %d on worker %s: %w",
					out.task.key, out.worker.Name, out.err)
			default:
				// Our own teardown (cancel, drain) surfaces as a context
				// error from the dispatch goroutine racing the ctx.Done
				// case above; that is not a worker failure, so do not mark
				// the worker dead or burn a dispatch attempt.
				if ctx.Err() != nil {
					return interrupted()
				}
				// Transient infrastructure failure (worker died, poll
				// failed, 5xx/429): mark the worker dead so assignment
				// skips it until a heartbeat revives it. Retriable failures
				// (worker job cancelled under us, unclassified flake) also
				// requeue with backoff but do not implicate the worker.
				if out.category == CategoryTransient {
					s.registry.markAlive(out.worker.Name, false)
				}
				out.task.attempts++
				if out.task.attempts >= maxShardAttempts {
					return fmt.Errorf("shard %d failed after %d attempts (%s): %w",
						out.task.key, out.task.attempts, out.category, out.err)
				}
				out.task.notAfter = time.Now().Add(s.cfg.ProgressEvery << out.task.attempts)
				pending = append(pending, out.task)
				s.log.Warn("shard requeued", "job", st.ID, "trace", st.Trace,
					"shard", out.task.key, "worker", out.worker.Name,
					"category", out.category.String(),
					"attempt", out.task.attempts, "err", out.err)
				assign()
			}
		}
	}
	return nil
}

// runShardOn runs one shard to completion on one worker: submit, poll
// until terminal, fetch the partial, sanity-check its fingerprint.
func (s *Server) runShardOn(ctx context.Context, w WorkerInfo, st JobStatus,
	t *shardTask, onProgress func(done int), onSubmit func(jobID string)) shardOutcome {

	spec := st.Spec
	spec.Shards = 0
	spec.Shard = &t.spec
	spec.Label = fmt.Sprintf("shard %d/%d of job %s", t.spec.Index, t.spec.Shards, st.ID)
	spec.Priority = st.Spec.Priority

	// The shard's span ID derives from the job's trace, so the worker's
	// journal, events, and logs correlate back to this submission.
	begun := time.Now()
	span := obs.ShardSpan(st.Trace, t.key)
	wjob, err := s.peers.submit(ctx, w.URL, spec, span, st.Tenant)
	if err != nil {
		return shardOutcome{task: t, worker: w, err: err, category: Classify(err)}
	}
	onSubmit(wjob.ID)
	s.log.Debug("shard dispatched", "job", st.ID, "trace", span,
		"shard", t.key, "worker", w.Name, "worker_job", wjob.ID)

	for {
		select {
		case <-ctx.Done():
			return shardOutcome{task: t, worker: w, err: ctx.Err()}
		case <-time.After(s.cfg.ProgressEvery):
		}
		cur, err := s.peers.job(ctx, w.URL, wjob.ID)
		if err != nil {
			return shardOutcome{task: t, worker: w, err: err, category: Classify(err)}
		}
		if cur.Progress != nil {
			onProgress(cur.Progress.Done)
		} else if cur.Tally != nil {
			onProgress(cur.Tally.Total)
		}
		switch cur.State {
		case StateDone:
			part, err := s.peers.partial(ctx, w.URL, wjob.ID)
			if err != nil {
				return shardOutcome{task: t, worker: w, err: err, category: Classify(err)}
			}
			if part.Fingerprint != t.spec.Fingerprint {
				return shardOutcome{task: t, worker: w, category: CategoryFatal,
					err: fmt.Errorf("%w: worker %s returned %s, want %s",
						ErrFingerprintMismatch, w.Name, part.Fingerprint, t.spec.Fingerprint)}
			}
			return shardOutcome{task: t, worker: w, partial: part, elapsed: time.Since(begun)}
		case StateFailed:
			// The worker's ErrorCode names the cause; classify it under
			// the taxonomy, and when it maps to a sentinel, wrap that
			// sentinel so the wire code survives into this job's failure.
			err := fmt.Errorf("worker job %s failed: %s", wjob.ID, cur.Error)
			if sentinel := ErrorForCode(cur.ErrorCode); sentinel != nil {
				err = fmt.Errorf("worker job %s failed: %w: %s", wjob.ID, sentinel, cur.Error)
			}
			return shardOutcome{task: t, worker: w, err: err,
				category: ClassifyCode(cur.ErrorCode)}
		case StateCancelled:
			// Someone cancelled the worker job out from under us: not an
			// infrastructure fault, so retriable — re-dispatch without
			// dead-marking the worker.
			return shardOutcome{task: t, worker: w, category: CategoryRetriable,
				err: fmt.Errorf("worker job %s was cancelled", wjob.ID)}
		}
	}
}

// shardJournal appends completed-shard records, persisting each shard's
// partial before its journal line so a record always points at a readable
// partial.
type shardJournal struct {
	s *Server
	f *os.File
}

// replayShardPartials reads a coordinated job's shard journal (if any)
// and loads every journaled partial that still exists and matches the
// campaign fingerprint, keyed by the journal record's shard key.
// Everything it does not return re-runs.
func (s *Server) replayShardPartials(jobID, fingerprint string) map[int]*harness.PartialResult {
	out := make(map[int]*harness.PartialResult)
	data, err := os.ReadFile(s.store.ShardJournalPath(jobID))
	if err != nil {
		return out
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec shardJournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // truncated tail: ignore it and everything after
		}
		if rec.Shard < 0 || out[rec.Shard] != nil {
			continue
		}
		part, err := s.store.LoadPartial(rec.Path)
		if err != nil || part.Fingerprint != fingerprint {
			continue // missing or foreign partial: shard re-runs
		}
		out[rec.Shard] = part
	}
	return out
}

// appendShardJournal opens (creating if absent) the append handle of a
// coordinated job's shard journal.
func (s *Server) appendShardJournal(jobID string) (*shardJournal, error) {
	f, err := os.OpenFile(s.store.ShardJournalPath(jobID), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: shard journal: %w", err)
	}
	return &shardJournal{s: s, f: f}, nil
}

// record persists one completed shard: partial first, then the journal
// line, flushed.
func (j *shardJournal) record(rec shardJournalRecord, part *harness.PartialResult) error {
	if err := j.s.store.SavePartial(rec.Path, part); err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: shard journal: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("service: shard journal: %w", err)
	}
	return j.f.Sync()
}

func (j *shardJournal) close() { _ = j.f.Close() }

func nonNil(parts []*harness.PartialResult) []*harness.PartialResult {
	out := make([]*harness.PartialResult, 0, len(parts))
	for _, p := range parts {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}
