package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/harness"
)

// Store persists jobs under one directory so a killed daemon recovers its
// whole queue on restart. Each job owns three files keyed by its numeric
// ID:
//
//	job-<id>.json         the JobStatus record (spec, state, error, tally)
//	job-<id>.ckpt.jsonl   the harness checkpoint journal (completed experiments)
//	job-<id>.result.json  the final CampaignResult, written once on success
//
// Shard jobs and coordinated jobs add:
//
//	job-<id>.partial.json          a shard job's mergeable PartialResult
//	job-<id>.shards.jsonl          a coordinator's shard-completion journal
//	job-<id>.shard-<n>.partial.json  fetched partial of shard n, owned by the journal
//
// Status records are replaced atomically (write temp + rename), so a kill
// mid-update leaves the previous consistent record. The journal is owned by
// the harness and is crash-safe by construction (flushed per record,
// truncated tails tolerated on replay).
type Store struct {
	dir string

	mu     sync.Mutex
	nextID int
}

// OpenStore opens (creating if needed) the job directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: store: %w", err)
	}
	s := &Store{dir: dir, nextID: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "job-") || !strings.HasSuffix(name, ".json") ||
			strings.HasSuffix(name, ".result.json") || strings.HasSuffix(name, ".partial.json") {
			continue
		}
		if id, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "job-"), ".json")); err == nil && id >= s.nextID {
			s.nextID = id + 1
		}
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// NewID allocates the next job ID.
func (s *Store) NewID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	return strconv.Itoa(id)
}

func (s *Store) statusPath(id string) string {
	return filepath.Join(s.dir, "job-"+id+".json")
}

// JournalPath is the harness checkpoint journal for one job.
func (s *Store) JournalPath(id string) string {
	return filepath.Join(s.dir, "job-"+id+".ckpt.jsonl")
}

func (s *Store) resultPath(id string) string {
	return filepath.Join(s.dir, "job-"+id+".result.json")
}

// SaveStatus atomically replaces the job's status record. Live-only fields
// (Progress) are stripped: they are meaningless across a restart.
func (s *Store) SaveStatus(st JobStatus) error {
	st.Progress = nil
	data, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		return fmt.Errorf("service: store: %w", err)
	}
	tmp := s.statusPath(st.ID) + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("service: store: %w", err)
	}
	if err := os.Rename(tmp, s.statusPath(st.ID)); err != nil {
		return fmt.Errorf("service: store: %w", err)
	}
	return nil
}

// LoadAll reads every job status record, sorted by numeric ID (submission
// order).
func (s *Store) LoadAll() ([]JobStatus, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("service: store: %w", err)
	}
	var jobs []JobStatus
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "job-") || !strings.HasSuffix(name, ".json") ||
			strings.HasSuffix(name, ".result.json") || strings.HasSuffix(name, ".partial.json") ||
			strings.HasSuffix(name, ".tmp") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			return nil, fmt.Errorf("service: store: %w", err)
		}
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			return nil, fmt.Errorf("service: store: %s: %w", name, err)
		}
		jobs = append(jobs, st)
	}
	sort.Slice(jobs, func(i, j int) bool {
		a, _ := strconv.Atoi(jobs[i].ID)
		b, _ := strconv.Atoi(jobs[j].ID)
		return a < b
	})
	return jobs, nil
}

func (s *Store) partialPath(id string) string {
	return filepath.Join(s.dir, "job-"+id+".partial.json")
}

// ShardJournalPath is the coordinator's shard-completion journal for one
// job: one JSON line per finished shard, appended after the shard's
// partial is persisted, so a coordinator restart re-dispatches only the
// shards with no journal entry.
func (s *Store) ShardJournalPath(id string) string {
	return filepath.Join(s.dir, "job-"+id+".shards.jsonl")
}

// ShardPartialPath is where a coordinator parks the fetched partial of
// one completed shard of job id.
func (s *Store) ShardPartialPath(id string, shard int) string {
	return filepath.Join(s.dir, fmt.Sprintf("job-%s.shard-%d.partial.json", id, shard))
}

// SavePartial atomically writes a mergeable partial aggregate to path.
func (s *Store) SavePartial(path string, part *harness.PartialResult) error {
	data, err := json.Marshal(part)
	if err != nil {
		return fmt.Errorf("service: store partial: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("service: store partial: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("service: store partial: %w", err)
	}
	return nil
}

// LoadPartial reads a partial aggregate from path. os.IsNotExist(err)
// when none was stored.
func (s *Store) LoadPartial(path string) (*harness.PartialResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var part harness.PartialResult
	if err := json.Unmarshal(data, &part); err != nil {
		return nil, fmt.Errorf("service: store partial %s: %w", path, err)
	}
	return &part, nil
}

// SaveResult writes the final campaign result of a done job.
func (s *Store) SaveResult(id string, res *harness.CampaignResult) error {
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("service: store result: %w", err)
	}
	return s.SaveResultBytes(id, data)
}

// SaveResultBytes atomically writes pre-marshalled result bytes — the
// path the archive cache uses, so a cache-hit job's stored result is
// byte-for-byte the original run's.
func (s *Store) SaveResultBytes(id string, data []byte) error {
	tmp := s.resultPath(id) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("service: store result: %w", err)
	}
	if err := os.Rename(tmp, s.resultPath(id)); err != nil {
		return fmt.Errorf("service: store result: %w", err)
	}
	return nil
}

// LoadResult reads a done job's campaign result. os.IsNotExist(err) when
// the job has no stored result.
func (s *Store) LoadResult(id string) (*harness.CampaignResult, error) {
	data, err := os.ReadFile(s.resultPath(id))
	if err != nil {
		return nil, err
	}
	var res harness.CampaignResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("service: store result %s: %w", id, err)
	}
	return &res, nil
}
