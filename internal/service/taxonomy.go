package service

import (
	"context"
	"errors"
	"net"

	"repro/internal/archive"
	"repro/internal/harness"
)

// Failure taxonomy. Every error the service routes — a shard dispatch
// failing, a worker job settling failed, an admission rejection — is
// classified into one of four categories, and the category alone decides
// the route:
//
//	Transient  infrastructure hiccups (network failures, timeouts, an
//	           overloaded peer answering 429/5xx, a full queue): retry
//	           with backoff, and mark the implicated worker dead so new
//	           work routes around it until a heartbeat revives it.
//	Retriable  failures that may clear on their own without implicating
//	           infrastructure (an interrupted campaign, a worker job
//	           cancelled out from under us): retry with backoff, but do
//	           not dead-mark the worker.
//	Permanent  configuration errors (invalid spec, unknown job, any
//	           other 4xx): reject immediately with the wire code — no
//	           amount of retrying fixes a wrong request.
//	Fatal      integrity violations (fingerprint mismatch, corrupt
//	           archive entry): halt the job at once; retrying could
//	           silently mix incompatible results.
//
// When several failures aggregate into one verdict (a multi-shard job),
// precedence is FATAL > PERMANENT > RETRIABLE > TRANSIENT: the worst
// category observed determines the outcome.
type Category int

// Categories, declared in ascending precedence so Aggregate is max().
const (
	CategoryNone Category = iota
	CategoryTransient
	CategoryRetriable
	CategoryPermanent
	CategoryFatal
)

func (c Category) String() string {
	switch c {
	case CategoryTransient:
		return "transient"
	case CategoryRetriable:
		return "retriable"
	case CategoryPermanent:
		return "permanent"
	case CategoryFatal:
		return "fatal"
	default:
		return "none"
	}
}

// Classify maps an error to its taxonomy category. nil maps to
// CategoryNone; an unrecognizable error defaults to CategoryRetriable —
// the conservative route: it retries a bounded number of times without
// condemning a worker or a spec on no evidence.
func Classify(err error) Category {
	if err == nil {
		return CategoryNone
	}
	// Integrity first: a fingerprint mismatch or corrupt archive entry
	// must halt even when wrapped in transport errors.
	if errors.Is(err, ErrFingerprintMismatch) || errors.Is(err, archive.ErrCorrupt) {
		return CategoryFatal
	}
	switch {
	case errors.Is(err, ErrInvalidSpec),
		errors.Is(err, ErrJobNotFound),
		errors.Is(err, ErrWorkerNotFound),
		errors.Is(err, ErrNoResult),
		errors.Is(err, ErrNoPartial),
		errors.Is(err, ErrNoArchiveEntry),
		errors.Is(err, ErrArchiveDisabled):
		return CategoryPermanent
	case errors.Is(err, ErrQueueFull),
		errors.Is(err, ErrRateLimited),
		errors.Is(err, ErrQuotaExceeded),
		errors.Is(err, context.DeadlineExceeded):
		// Pressure rejections clear as load drains: quota frees when jobs
		// finish, token buckets refill, queues empty.
		return CategoryTransient
	case errors.Is(err, harness.ErrInterrupted):
		return CategoryRetriable
	}
	var pe *peerError
	if errors.As(err, &pe) {
		// 429 and 5xx are the worker saying "not now"; other 4xx mean the
		// request itself is wrong and a retry would repeat the mistake.
		if pe.status == 429 || pe.status >= 500 {
			return CategoryTransient
		}
		if pe.status >= 400 {
			return CategoryPermanent
		}
		return CategoryRetriable
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return CategoryTransient
	}
	return CategoryRetriable
}

// ClassifyCode maps a wire error code (JobStatus.ErrorCode of a failed
// job) to its category. An empty or unknown code classifies Retriable:
// the failure reproduced no recognizable cause, so it gets bounded
// retries without dead-marking anything.
func ClassifyCode(code string) Category {
	if code == "" {
		return CategoryRetriable
	}
	if err := ErrorForCode(code); err != nil {
		return Classify(err)
	}
	return CategoryRetriable
}

// Aggregate folds many categories into one verdict under the
// FATAL > PERMANENT > RETRIABLE > TRANSIENT precedence: the highest
// category observed determines the outcome.
func Aggregate(cats ...Category) Category {
	worst := CategoryNone
	for _, c := range cats {
		if c > worst {
			worst = c
		}
	}
	return worst
}
