package service

import (
	"context"
	"fmt"
	"net/url"
	"strings"
	"sync"
	"time"
)

// WorkerInfo is the client-visible record of one registered peer worker —
// another faultpropd instance this daemon can dispatch shard jobs to.
type WorkerInfo struct {
	// Name identifies the worker (defaults to its URL host:port).
	Name string `json:"name"`
	// URL is the worker's API base, e.g. "http://10.0.0.7:7207".
	URL        string    `json:"url"`
	Registered time.Time `json:"registered"`
	// LastSeen is the time of the last successful heartbeat (or the
	// registration time before the first one).
	LastSeen time.Time `json:"lastSeen"`
	// Alive reports whether the last heartbeat succeeded. Dead workers
	// receive no new shards; their in-flight shards are re-dispatched.
	Alive bool `json:"alive"`
	// Active counts shard jobs this daemon currently has in flight on the
	// worker.
	Active int `json:"active"`
}

// registry tracks peer workers and their liveness. Liveness is probed
// from the coordinator side: a periodic GET /v1/version per worker, so
// workers need no coordinator-specific behavior to participate — any
// reachable faultpropd is a valid worker.
type registry struct {
	mu      sync.Mutex
	workers map[string]*WorkerInfo
}

func newRegistry() *registry {
	return &registry{workers: make(map[string]*WorkerInfo)}
}

// add registers (or re-registers) a worker. A re-registration under the
// same name updates the URL and revives the worker.
func (r *registry) add(name, rawURL string) (WorkerInfo, error) {
	if !strings.Contains(rawURL, "://") {
		rawURL = "http://" + rawURL
	}
	u, err := url.Parse(rawURL)
	if err != nil || u.Host == "" {
		return WorkerInfo{}, fmt.Errorf("%w: worker url %q", ErrInvalidSpec, rawURL)
	}
	base := strings.TrimSuffix(u.String(), "/")
	if name == "" {
		name = u.Host
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now().UTC()
	if w, ok := r.workers[name]; ok {
		w.URL = base
		w.Alive = true
		w.LastSeen = now
		return *w, nil
	}
	w := &WorkerInfo{Name: name, URL: base, Registered: now, LastSeen: now, Alive: true}
	r.workers[name] = w
	return *w, nil
}

// remove deregisters a worker.
func (r *registry) remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.workers[name]; !ok {
		return ErrWorkerNotFound
	}
	delete(r.workers, name)
	return nil
}

// list returns all workers, sorted by name.
func (r *registry) list() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, *w)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// markAlive records a heartbeat outcome. It reports whether the worker's
// liveness changed, so callers can log transitions without spamming one
// line per probe.
func (r *registry) markAlive(name string, alive bool) (changed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[name]; ok {
		changed = w.Alive != alive
		w.Alive = alive
		if alive {
			w.LastSeen = time.Now().UTC()
		}
	}
	return changed
}

// acquire picks the alive worker with the fewest in-flight shards and
// increments its count; ok is false when no worker is alive.
func (r *registry) acquire() (WorkerInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best *WorkerInfo
	for _, w := range r.workers {
		if !w.Alive {
			continue
		}
		if best == nil || w.Active < best.Active ||
			(w.Active == best.Active && w.Name < best.Name) {
			best = w
		}
	}
	if best == nil {
		return WorkerInfo{}, false
	}
	best.Active++
	return *best, true
}

// release decrements a worker's in-flight count.
func (r *registry) release(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[name]; ok && w.Active > 0 {
		w.Active--
	}
}

// heartbeatLoop probes every registered worker each interval until ctx is
// done. A probe failure marks the worker dead immediately — the dispatch
// loop stops assigning to it and re-dispatches its shards when their
// polls fail; a later success revives it.
func (s *Server) heartbeatLoop(ctx context.Context) {
	t := time.NewTicker(s.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, w := range s.registry.list() {
			pctx, cancel := context.WithTimeout(ctx, s.cfg.Heartbeat)
			err := s.peers.ping(pctx, w.URL)
			cancel()
			if s.registry.markAlive(w.Name, err == nil) {
				if err == nil {
					s.log.Info("worker revived", "worker", w.Name, "url", w.URL)
				} else {
					s.log.Warn("worker dead", "worker", w.Name, "url", w.URL, "err", err)
				}
			}
		}
	}
}
