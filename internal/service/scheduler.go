package service

import (
	"context"
	"sync"
	"time"

	"repro/internal/harness"
)

// stopReason records why a running job's context was cancelled, so the run
// loop can tell a client cancellation (terminal) from a daemon drain (the
// job returns to the queue and resumes on the next start).
type stopReason int

const (
	stopNone stopReason = iota
	stopCancel
	stopDrain
)

// job is the server-side record of one campaign: its client-visible
// status, its live progress, its event stream, and its cancellation
// handle while running.
type job struct {
	mu     sync.Mutex
	status JobStatus
	prog   *harness.Progress
	// coordProg is the merged progress of a coordinated (sharded) job,
	// synthesized by the coordinator from its shard polls. Guarded by mu.
	coordProg *harness.Snapshot
	hub       *hub
	cancel    context.CancelFunc
	reason    stopReason
	// queuedAt is when the job last entered the queue (submission, daemon
	// restart, or drain requeue); the queue-wait metric measures from here
	// rather than Created so requeued jobs do not skew it. Guarded by mu.
	queuedAt time.Time
}

// noteQueued stamps the queue-entry time.
func (j *job) noteQueued() {
	j.mu.Lock()
	j.queuedAt = time.Now()
	j.mu.Unlock()
}

// snapshot returns the client-visible status, with a live progress
// snapshot attached while the job runs.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.status
	if st.State == StateRunning {
		if j.prog != nil {
			s := j.prog.Snapshot()
			st.Progress = &s
		} else if j.coordProg != nil {
			s := *j.coordProg
			st.Progress = &s
		}
	}
	return st
}

// requestStop cancels the job's campaign context with the given reason.
// The first reason wins: a drain racing a client cancel keeps whichever
// arrived first.
func (j *job) requestStop(r stopReason) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.reason == stopNone {
		j.reason = r
	}
	if j.cancel != nil {
		j.cancel()
	}
}

// scheduler queues jobs and dispatches them onto a bounded number of job
// slots. Within the slots, higher Priority runs first and ties run in
// submission order; the per-experiment parallelism of everything running
// is additionally bounded by the server's shared worker gate, so one
// greedy job cannot starve the pool. The run callback executes a job to
// completion (or requeue) synchronously.
type scheduler struct {
	slots int
	run   func(*job)

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*job
	running  int
	draining bool
	wg       sync.WaitGroup
}

func newScheduler(slots int, run func(*job)) *scheduler {
	s := &scheduler{slots: slots, run: run}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// start launches the dispatch loop. It exits when drain is called.
func (s *scheduler) start() {
	go func() {
		for {
			s.mu.Lock()
			for !s.draining && (len(s.queue) == 0 || s.running >= s.slots) {
				s.cond.Wait()
			}
			if s.draining {
				s.mu.Unlock()
				return
			}
			j := s.pop()
			s.running++
			s.wg.Add(1)
			s.mu.Unlock()
			go func() {
				defer func() {
					s.mu.Lock()
					s.running--
					s.mu.Unlock()
					s.cond.Broadcast()
					s.wg.Done()
				}()
				s.run(j)
			}()
		}
	}()
}

// pop removes and returns the best queued job: highest priority, then
// lowest ID (submission order). Caller holds s.mu.
func (s *scheduler) pop() *job {
	best := 0
	for i := 1; i < len(s.queue); i++ {
		a, b := s.queue[i], s.queue[best]
		if a.status.Spec.Priority > b.status.Spec.Priority {
			best = i
		}
	}
	j := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return j
}

// enqueue adds a job to the queue.
func (s *scheduler) enqueue(j *job) {
	s.mu.Lock()
	s.queue = append(s.queue, j)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// remove takes a queued job out of the queue (a cancel before dispatch).
// It reports whether the job was still queued.
func (s *scheduler) remove(j *job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.queue {
		if s.queue[i] == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return true
		}
	}
	return false
}

// counts returns (queued, running).
func (s *scheduler) counts() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), s.running
}

// drain stops dispatching; queued jobs stay queued.
func (s *scheduler) drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// wait blocks until every dispatched job has finished.
func (s *scheduler) wait() { s.wg.Wait() }
