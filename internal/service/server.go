package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/classify"
	"repro/internal/harness"
	"repro/internal/obs"
)

// Config sizes a Server.
type Config struct {
	// Dir is the job store directory (status records, checkpoint journals,
	// results). Required.
	Dir string
	// JobSlots bounds concurrently running campaigns (0: 2).
	JobSlots int
	// WorkerPool bounds total experiment parallelism across all running
	// campaigns, shared fairly through a token gate (0: GOMAXPROCS).
	WorkerPool int
	// ProgressEvery is the interval between streamed progress events for a
	// running job (0: 500ms). It also paces the coordinator's shard polls
	// and dispatch backoff.
	ProgressEvery time.Duration
	// MaxQueue bounds jobs waiting for a slot; submissions beyond it are
	// rejected with ErrQueueFull (0: unbounded).
	MaxQueue int
	// Peers pre-registers worker URLs for coordinated (sharded) jobs;
	// more can be added at runtime via POST /v1/workers.
	Peers []string
	// Heartbeat is the interval between liveness probes of registered
	// workers (0: 2s). A worker that fails a probe is marked dead: it
	// receives no new shards and its in-flight shards re-dispatch.
	Heartbeat time.Duration
	// Log receives the daemon's structured logs: request lines, job
	// lifecycle, worker liveness transitions, slow-experiment warnings
	// (nil: discard).
	Log *slog.Logger
	// SlowExperiment, when positive, logs a warning for any experiment
	// whose wall time meets or exceeds it (0: disabled).
	SlowExperiment time.Duration
	// StreamBuffer sizes each event-stream subscriber's channel (0: 256).
	// A subscriber that falls this many events behind is disconnected with
	// an explicit "truncated" event and counted in the stream-drop metric.
	StreamBuffer int
	// ArchiveDir, when set, enables the persistent campaign archive:
	// completed jobs are committed to it keyed by their cache key
	// (campaign fingerprint, plus a -max<N> suffix when MaxSummaries
	// shapes the retained summaries), and a repeat submission of an
	// identical key is served straight from the archive as a cache hit —
	// byte-identical result, journal replayed for watchers, surviving
	// daemon restarts. Empty disables archiving and the /v1/archive API.
	ArchiveDir string
	// TenantQuota bounds each tenant's concurrently active (non-terminal)
	// jobs; submissions beyond it are rejected with ErrQuotaExceeded
	// (0: unlimited).
	TenantQuota int
	// TenantRate is each tenant's sustained submission rate in jobs per
	// second, enforced by a token bucket (0: unlimited).
	TenantRate float64
	// TenantBurst is the token bucket's capacity — how many submissions a
	// tenant can burst above the sustained rate (0: max(TenantRate, 1)).
	TenantBurst int
}

// Server is the faultpropd campaign service: it owns the job store, the
// scheduler, and the HTTP API. Create with New, call Start to recover
// persisted jobs and begin dispatching, serve Handler over HTTP, and stop
// with Drain.
type Server struct {
	cfg       Config
	store     *Store
	sched     *scheduler
	gate      chan struct{}
	mux       *http.ServeMux
	registry  *registry
	peers     *peerClient
	hbStop    context.CancelFunc
	obs       *serverObs
	log       *slog.Logger
	archive   *archive.Archive
	admission *admission

	mu   sync.Mutex
	jobs map[string]*job
}

// New creates a Server over the given store directory. Call Start before
// serving traffic.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("service: Config.Dir is required")
	}
	if cfg.JobSlots <= 0 {
		cfg.JobSlots = 2
	}
	if cfg.WorkerPool <= 0 {
		cfg.WorkerPool = runtime.GOMAXPROCS(0)
	}
	if cfg.ProgressEvery <= 0 {
		cfg.ProgressEvery = 500 * time.Millisecond
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	if cfg.StreamBuffer <= 0 {
		cfg.StreamBuffer = defaultSubscriberBuffer
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		store:     store,
		gate:      make(chan struct{}, cfg.WorkerPool),
		jobs:      make(map[string]*job),
		registry:  newRegistry(),
		peers:     newPeerClient(),
		obs:       newServerObs(),
		log:       cfg.Log,
		admission: newAdmission(cfg.TenantRate, cfg.TenantBurst),
	}
	if cfg.ArchiveDir != "" {
		arch, err := archive.Open(cfg.ArchiveDir)
		if err != nil {
			return nil, err
		}
		s.archive = arch
		// Size gauges read the archive lazily at scrape time, so they stay
		// honest across restarts and external cleanup.
		s.obs.reg.GaugeFunc("faultpropd_archive_entries",
			"Entries in the campaign archive.", func() float64 {
				entries, _ := arch.Stats()
				return float64(entries)
			})
		s.obs.reg.GaugeFunc("faultpropd_archive_bytes",
			"Total on-disk bytes of the campaign archive.", func() float64 {
				_, bytes := arch.Stats()
				return float64(bytes)
			})
	}
	for _, p := range cfg.Peers {
		if _, err := s.registry.add("", p); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.WorkerPool; i++ {
		s.gate <- struct{}{}
	}
	s.sched = newScheduler(cfg.JobSlots, s.runJob)
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Start recovers persisted jobs and begins dispatching. Jobs that were
// queued or running when the previous daemon stopped return to the queue
// and resume from their checkpoint journals: completed experiments replay
// from disk instead of re-running.
func (s *Server) Start() error {
	persisted, err := s.store.LoadAll()
	if err != nil {
		return err
	}
	for _, st := range persisted {
		j := &job{status: st, hub: newHub(st.Trace, s.cfg.StreamBuffer, s.obs.streamDrops)}
		if st.State.Terminal() {
			j.hub.close()
			s.mu.Lock()
			s.jobs[st.ID] = j
			s.mu.Unlock()
			continue
		}
		j.status.State = StateQueued
		j.status.Started = time.Time{}
		j.status.Progress = nil
		if err := s.store.SaveStatus(j.status); err != nil {
			return err
		}
		s.mu.Lock()
		s.jobs[st.ID] = j
		s.mu.Unlock()
		j.noteQueued()
		s.sched.enqueue(j)
		s.log.Info("job recovered", "job", st.ID, "trace", st.Trace)
	}
	s.sched.start()
	hbCtx, hbStop := context.WithCancel(context.Background())
	s.hbStop = hbStop
	go s.heartbeatLoop(hbCtx)
	return nil
}

// Drain gracefully stops the server: no new jobs are dispatched, running
// campaigns are interrupted (their journals hold every completed
// experiment and their status records return to queued), and Drain waits
// for them to settle or for ctx to expire.
func (s *Server) Drain(ctx context.Context) error {
	if s.hbStop != nil {
		s.hbStop()
	}
	s.sched.drain()
	s.mu.Lock()
	for _, j := range s.jobs {
		j.requestStop(stopDrain)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.sched.wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
}

// Handler returns the HTTP API handler, wrapped with request counting
// and structured request logs (reads at debug, mutations at info).
func (s *Server) Handler() http.Handler { return s.requestLogger(s.mux) }

// statusWriter records the response status for the request log. It
// implements http.Flusher unconditionally (forwarding when the wrapped
// writer supports it) because the streaming endpoint requires one.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) requestLogger(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.obs.countRequest(r.Method)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		attrs := []any{"method", r.Method, "path", r.URL.Path,
			"status", sw.status, "elapsed", time.Since(start)}
		if t := obs.CleanTrace(r.Header.Get(obs.TraceHeader)); t != "" {
			attrs = append(attrs, "trace", t)
		}
		if r.Method == http.MethodGet || r.Method == http.MethodHead {
			s.log.Debug("request", attrs...)
		} else {
			s.log.Info("request", attrs...)
		}
	})
}

// Submit validates and persists a new job and queues it for execution.
// When the daemon's queue bound (Config.MaxQueue) is reached the
// submission is rejected with ErrQueueFull. The job gets a fresh trace
// ID; to propagate one from upstream use SubmitTrace.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	return s.SubmitTrace(spec, "")
}

// SubmitTrace is Submit with a caller-supplied trace ID (a coordinator's
// shard span, or any upstream correlation ID). The submission is
// accounted to the default tenant; SubmitTenant carries an explicit one.
func (s *Server) SubmitTrace(spec JobSpec, trace string) (JobStatus, error) {
	return s.SubmitTenant(spec, trace, "")
}

// SubmitTenant is the full submission path: validate, admit the tenant
// (token-bucket rate limit, active-job quota), consult the campaign
// archive — an archived identical configuration is served directly as a
// terminal cache-hit job — and otherwise queue a fresh run. An empty
// trace gets a fresh ID; an empty tenant is the default tenant. The
// trace is stamped into the job's status, events, journal header, and
// log lines.
func (s *Server) SubmitTenant(spec JobSpec, trace, tenant string) (JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	tenant = cleanTenant(tenant)
	// Shard jobs are a coordinator's internal decomposition: admission was
	// already charged to the parent job on the coordinator, and caching
	// whole campaigns under partial-campaign keys would be wrong.
	if spec.Shard == nil {
		if err := s.admit(tenant); err != nil {
			s.log.Warn("submission rejected", "tenant", tenant,
				"category", Classify(err).String(), "err", err)
			return JobStatus{}, err
		}
	}
	if spec.Scale == "" {
		spec.Scale = "default"
	}
	if trace = obs.CleanTrace(trace); trace == "" {
		trace = obs.NewTraceID()
	}
	key := specCacheKey(spec)
	if rec := s.lookupCache(key, trace); rec != nil {
		st, err := s.serveCached(spec, trace, tenant, key, rec)
		if err == nil {
			return st, nil
		}
		// A hit that failed to materialize (undecodable entry, store I/O)
		// falls through to a fresh run rather than failing the submission.
		s.log.Warn("cache hit not served, running fresh", "trace", trace,
			"fingerprint", key, "err", err)
	}
	// The queue bound applies only to jobs that would actually queue —
	// cache hits above consume no slot.
	if s.cfg.MaxQueue > 0 {
		if queued, _ := s.sched.counts(); queued >= s.cfg.MaxQueue {
			return JobStatus{}, fmt.Errorf("%w: %d jobs queued (max %d)",
				ErrQueueFull, queued, s.cfg.MaxQueue)
		}
	}
	j := &job{
		status: JobStatus{
			ID:          s.store.NewID(),
			Spec:        spec,
			State:       StateQueued,
			Created:     time.Now().UTC(),
			Trace:       trace,
			Tenant:      tenant,
			Fingerprint: key,
		},
		hub: newHub(trace, s.cfg.StreamBuffer, s.obs.streamDrops),
	}
	if err := s.store.SaveStatus(j.status); err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	s.jobs[j.status.ID] = j
	s.mu.Unlock()
	j.noteQueued()
	s.sched.enqueue(j)
	s.log.Info("job submitted", "job", j.status.ID, "trace", trace, "tenant", tenant,
		"runs", spec.Runs, "shards", spec.Shards, "priority", spec.Priority)
	return j.snapshot(), nil
}

// Cancel stops a queued or running job. Cancelling a terminal job is a
// no-op that returns its current status.
func (s *Server) Cancel(id string) (JobStatus, error) {
	j := s.job(id)
	if j == nil {
		return JobStatus{}, ErrJobNotFound
	}
	if s.sched.remove(j) {
		j.mu.Lock()
		j.status.State = StateCancelled
		j.status.Finished = time.Now().UTC()
		st := j.status
		j.mu.Unlock()
		if err := s.store.SaveStatus(st); err != nil {
			return st, err
		}
		j.hub.publish(Event{Kind: EventState, Job: st.ID, State: StateCancelled})
		j.hub.close()
		return st, nil
	}
	j.requestStop(stopCancel)
	return j.snapshot(), nil
}

// Job returns one job's status.
func (s *Server) Job(id string) (JobStatus, error) {
	j := s.job(id)
	if j == nil {
		return JobStatus{}, ErrJobNotFound
	}
	return j.snapshot(), nil
}

// Jobs lists every known job in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	list := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		list = append(list, j)
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(list))
	for i, j := range list {
		out[i] = j.snapshot()
	}
	sort.Slice(out, func(i, k int) bool {
		a, _ := strconv.Atoi(out[i].ID)
		b, _ := strconv.Atoi(out[k].ID)
		return a < b
	})
	return out
}

// Result loads a done job's full campaign result. ErrNoResult when the
// job is known but has no stored result (not done yet, or a shard job —
// those expose a partial instead).
func (s *Server) Result(id string) (*harness.CampaignResult, error) {
	j := s.job(id)
	if j == nil {
		return nil, ErrJobNotFound
	}
	res, err := s.store.LoadResult(id)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: job %s (state %s)", ErrNoResult, id, j.snapshot().State)
	}
	return res, err
}

// Partial loads a done shard job's mergeable partial aggregate.
// ErrNoPartial when the job is known but stored no partial (not a shard
// job, or not done yet).
func (s *Server) Partial(id string) (*harness.PartialResult, error) {
	j := s.job(id)
	if j == nil {
		return nil, ErrJobNotFound
	}
	part, err := s.store.LoadPartial(s.store.partialPath(id))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: job %s (state %s)", ErrNoPartial, id, j.snapshot().State)
	}
	return part, err
}

// Workers lists the registered peer workers.
func (s *Server) Workers() []WorkerInfo { return s.registry.list() }

// RegisterWorker adds (or revives) a peer worker for coordinated jobs.
func (s *Server) RegisterWorker(name, url string) (WorkerInfo, error) {
	return s.registry.add(name, url)
}

// RemoveWorker deregisters a peer worker. In-flight shards on it finish
// or re-dispatch on their own; it just receives no new ones.
func (s *Server) RemoveWorker(name string) error { return s.registry.remove(name) }

// Version describes this daemon's API surface for clients and for
// coordinator-side compatibility checks.
func (s *Server) Version() VersionInfo {
	caps := []string{
		"jobs", "stream", "metrics", "partials", "shards", "coordinate", "workers", "tenants", "adaptive", "sites",
	}
	if s.archive != nil {
		caps = append(caps, "archive")
	}
	return VersionInfo{
		Service:      "faultpropd",
		API:          APIVersion,
		Capabilities: caps,
	}
}


func (s *Server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// runJob executes one campaign to completion, cancellation, or drain. It
// is the scheduler's run callback and runs on a dedicated goroutine.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	coordinated := false
	var prog *harness.Progress

	j.mu.Lock()
	// A drain or cancel may have raced dispatch; honor it before starting.
	if j.reason != stopNone {
		alreadyStopped := j.reason
		j.mu.Unlock()
		s.settleStopped(j, alreadyStopped, nil)
		return
	}
	j.cancel = cancel
	coordinated = j.status.Spec.Shards > 1
	if coordinated {
		// Merged progress arrives through j.coordProg instead.
		j.prog = nil
	} else {
		prog = &harness.Progress{}
		j.prog = prog
	}
	j.status.State = StateRunning
	j.status.Started = time.Now().UTC()
	j.status.Error = ""
	j.status.ErrorCode = ""
	st := j.status
	queuedAt := j.queuedAt
	j.mu.Unlock()

	if !queuedAt.IsZero() {
		s.obs.queueWait.ObserveDuration(time.Since(queuedAt))
	}
	s.log.Info("job started", "job", st.ID, "trace", st.Trace,
		"coordinated", coordinated, "queue_wait", time.Since(queuedAt))

	if err := s.store.SaveStatus(st); err != nil {
		s.fail(j, fmt.Errorf("persist: %w", err))
		return
	}
	j.hub.publish(Event{Kind: EventState, Job: st.ID, State: StateRunning})

	if coordinated {
		res, err := s.runCoordinated(ctx, j, st)
		j.mu.Lock()
		j.cancel = nil
		if j.coordProg != nil {
			j.status.Resumed = j.coordProg.Resumed
		}
		reason := j.reason
		j.mu.Unlock()
		switch {
		case err == nil:
			s.finish(j, res)
		case errors.Is(err, harness.ErrInterrupted) && reason != stopNone:
			s.settleStopped(j, reason, err)
		default:
			s.fail(j, err)
		}
		return
	}

	cfg, err := st.Spec.CampaignConfig()
	if err != nil {
		s.fail(j, err)
		return
	}
	cfg.Workers = s.cfg.WorkerPool
	cfg.Gate = s.gate
	cfg.Progress = prog
	cfg.Checkpoint = s.store.JournalPath(st.ID)
	// Resume is unconditional: a fresh job has no journal yet (the harness
	// starts one), and a redispatched job replays its completed
	// experiments instead of re-running them.
	cfg.Resume = true
	cfg.Trace = st.Trace
	// Timings ride in shard partials so the coordinator's metrics absorb
	// them; OnPhase feeds this daemon's own registry live.
	cfg.Timings = harness.NewCampaignTimings()
	cfg.OnPhase = func(tr harness.PhaseTrace) {
		s.obs.observePhase(tr)
		if s.cfg.SlowExperiment > 0 && tr.Total >= s.cfg.SlowExperiment {
			s.log.Warn("slow experiment", "job", st.ID, "trace", st.Trace,
				"experiment", tr.ID, "outcome", tr.Outcome.String(),
				"total", tr.Total, "execute", tr.Execute)
		}
	}
	cfg.OnExperiment = func(sum harness.ExperimentSummary, resumed bool) {
		j.hub.publish(Event{Kind: EventExperiment, Job: st.ID, Experiment: &ExperimentEvent{
			ID:      sum.ID,
			Outcome: sum.Outcome.String(),
			Rank:    sum.InjRank,
			Cycle:   sum.InjCycle,
			Fired:   sum.Fired,
			MaxCML:  sum.MaxCML,
			Resumed: resumed,
		}})
	}

	// Periodic progress events for watchers.
	tickDone := make(chan struct{})
	go func() {
		t := time.NewTicker(s.cfg.ProgressEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				snap := prog.Snapshot()
				j.hub.publish(Event{Kind: EventProgress, Job: st.ID, State: StateRunning, Progress: &snap})
			case <-tickDone:
				return
			}
		}
	}()

	var res *harness.CampaignResult
	var part *harness.PartialResult
	if st.Spec.Shard != nil {
		part, err = harness.RunShardContext(ctx, cfg, *st.Spec.Shard)
	} else {
		res, err = harness.RunCampaignContext(ctx, cfg)
	}
	close(tickDone)

	j.mu.Lock()
	j.cancel = nil
	j.status.Resumed = prog.Snapshot().Resumed
	reason := j.reason
	j.mu.Unlock()

	switch {
	case err == nil && part != nil:
		s.finishPartial(j, part)
	case err == nil:
		s.finish(j, res)
	case errors.Is(err, harness.ErrInterrupted) && reason != stopNone:
		s.settleStopped(j, reason, err)
	default:
		s.fail(j, err)
	}
}

// finish records a successful campaign: result persisted, status done,
// result event streamed, stream closed, and the result committed to the
// campaign archive (when one is configured) under the job's cache key.
// The result is marshalled exactly once — the bytes in the job store and
// the bytes in the archive are the same bytes, which is what makes a
// later cache hit provably byte-identical.
func (s *Server) finish(j *job, res *harness.CampaignResult) {
	data, err := json.Marshal(res)
	if err != nil {
		s.fail(j, fmt.Errorf("service: store result: %w", err))
		return
	}
	if err := s.store.SaveResultBytes(j.status.ID, data); err != nil {
		s.fail(j, err)
		return
	}
	tally := res.Tally
	j.mu.Lock()
	st := j.status
	j.mu.Unlock()
	st.State = StateDone
	st.Finished = time.Now().UTC()
	st.Tally = &tally
	st.FPS = res.Model.FPS
	st.Strata = res.Strata
	// Archive before the done status becomes visible (in memory or on
	// disk): a client that polls the job to completion and immediately
	// resubmits the same spec must find the entry — flipping the status
	// first would open a cache-miss window.
	s.archiveResult(st, res, data)
	j.mu.Lock()
	j.status = st
	j.mu.Unlock()
	if err := s.store.SaveStatus(st); err != nil {
		s.fail(j, err)
		return
	}
	j.hub.publish(Event{Kind: EventResult, Job: st.ID, State: StateDone, Tally: &tally, FPS: st.FPS})
	j.hub.close()
	s.log.Info("job done", "job", st.ID, "trace", st.Trace,
		"runs", tally.Total, "elapsed", st.Finished.Sub(st.Started))
}

// finishPartial records a successful shard job: the mergeable partial is
// persisted where the coordinator's fetch (GET /v1/jobs/{id}/partial)
// finds it, the status goes done, and the stream closes. No FPS model is
// attached — fits are recomputed by whoever merges the shards.
func (s *Server) finishPartial(j *job, part *harness.PartialResult) {
	if err := s.store.SavePartial(s.store.partialPath(j.status.ID), part); err != nil {
		s.fail(j, err)
		return
	}
	tally := part.Tally
	j.mu.Lock()
	j.status.State = StateDone
	j.status.Finished = time.Now().UTC()
	j.status.Tally = &tally
	st := j.status
	j.mu.Unlock()
	if err := s.store.SaveStatus(st); err != nil {
		s.fail(j, err)
		return
	}
	j.hub.publish(Event{Kind: EventResult, Job: st.ID, State: StateDone, Tally: &tally})
	j.hub.close()
	s.log.Info("shard job done", "job", st.ID, "trace", st.Trace,
		"runs", tally.Total, "elapsed", st.Finished.Sub(st.Started))
}

// settleStopped resolves an interrupted job: a client cancel is terminal,
// a drain returns the job to the queue so the next daemon start resumes
// it from its journal.
func (s *Server) settleStopped(j *job, reason stopReason, cause error) {
	j.mu.Lock()
	if reason == stopCancel {
		j.status.State = StateCancelled
		j.status.Finished = time.Now().UTC()
	} else {
		j.status.State = StateQueued
		j.status.Started = time.Time{}
		j.status.Finished = time.Time{}
	}
	if cause != nil {
		j.status.Error = cause.Error()
	}
	st := j.status
	j.mu.Unlock()
	// Persistence failure here must not look like success; surface it in
	// the stored record on the next save, but keep the in-memory state.
	_ = s.store.SaveStatus(st)
	j.hub.publish(Event{Kind: EventState, Job: st.ID, State: st.State, Error: st.Error})
	if st.State.Terminal() {
		j.hub.close()
		s.log.Info("job cancelled", "job", st.ID, "trace", st.Trace)
	} else {
		s.log.Info("job requeued by drain", "job", st.ID, "trace", st.Trace)
	}
}

// fail marks a job failed. The wire code of the cause (when it has one)
// lands in JobStatus.ErrorCode, so a coordinator polling a failed shard
// job can tell fatal causes from transient ones without string matching.
func (s *Server) fail(j *job, err error) {
	j.mu.Lock()
	j.status.State = StateFailed
	j.status.Finished = time.Now().UTC()
	j.status.Error = err.Error()
	j.status.ErrorCode = ErrorCode(err)
	st := j.status
	j.mu.Unlock()
	_ = s.store.SaveStatus(st)
	j.hub.publish(Event{Kind: EventState, Job: st.ID, State: StateFailed, Error: st.Error})
	j.hub.close()
	s.log.Error("job failed", "job", st.ID, "trace", st.Trace,
		"err", st.Error, "code", st.ErrorCode)
}

// Metrics assembles the service metrics document.
func (s *Server) Metrics() Metrics {
	queued, running := s.sched.counts()
	m := Metrics{
		QueueDepth:  queued,
		RunningJobs: running,
		JobSlots:    s.cfg.JobSlots,
		WorkerPool:  s.cfg.WorkerPool,
		StreamDrops:  s.obs.streamDrops.Value(),
		CacheHits:    s.obs.cacheHits.Value(),
		CacheMisses:  s.obs.cacheMisses.Value(),
		RestoreBytes: s.obs.restoreBytes.Value(),
		Outcomes:    make(map[string]int),
	}
	if s.archive != nil {
		m.ArchiveEntries, m.ArchiveBytes = s.archive.Stats()
	}
	for _, st := range s.Jobs() {
		switch st.State {
		case StateDone:
			m.JobsDone++
		case StateFailed:
			m.JobsFailed++
		case StateCancelled:
			m.JobsCancelled++
		}
		var outcomes [classify.NumOutcomes]int
		jm := JobMetrics{
			ID:       st.ID,
			State:    st.State,
			Priority: st.Spec.Priority,
			Total:    st.Spec.Runs,
			Resumed:  st.Resumed,
		}
		switch {
		case st.Progress != nil:
			jm.Done = st.Progress.Done
			jm.RunsPerSec = st.Progress.RunsPerSec
			outcomes = st.Progress.Outcomes
			m.WorkersBusy += st.Progress.Running
			m.RunsPerSec += st.Progress.RunsPerSec
		case st.Tally != nil:
			jm.Done = st.Tally.Total
			outcomes = st.Tally.Counts
		}
		for o := 0; o < classify.NumOutcomes; o++ {
			if outcomes[o] > 0 {
				m.Outcomes[classify.Outcome(o).String()] += outcomes[o]
			}
		}
		if !st.State.Terminal() {
			m.Jobs = append(m.Jobs, jm)
		}
	}
	if m.WorkerPool > 0 {
		m.Utilization = float64(m.WorkersBusy) / float64(m.WorkerPool)
	}
	return m
}

// routes installs the HTTP API. All paths live under /v1/ (the
// pre-versioning /api/v1/ compat redirects served their one promised
// release and are gone).
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Version())
	})
	s.mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decode job spec: %w", err))
			return
		}
		st, err := s.SubmitTenant(spec, r.Header.Get(obs.TraceHeader), r.Header.Get(TenantHeader))
		if err != nil {
			// Taxonomy-driven rejection: transient pressure (full queue,
			// rate limit, quota) answers 429 + Retry-After — the request
			// is fine, try again shortly; permanent spec errors answer
			// 400 — retrying repeats the mistake. Both carry wire codes.
			if Classify(err) == CategoryTransient {
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusTooManyRequests, err)
				return
			}
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, st)
	})
	s.mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	s.mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Job(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	cancel := func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		if errors.Is(err, ErrJobNotFound) {
			httpError(w, http.StatusNotFound, err)
			return
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	}
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", cancel)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", cancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		res, err := s.Result(r.PathValue("id"))
		if errors.Is(err, ErrJobNotFound) {
			httpError(w, http.StatusNotFound, err)
			return
		}
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	s.mux.HandleFunc("GET /v1/jobs/{id}/partial", func(w http.ResponseWriter, r *http.Request) {
		part, err := s.Partial(r.PathValue("id"))
		if errors.Is(err, ErrJobNotFound) {
			httpError(w, http.StatusNotFound, err)
			return
		}
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, part)
	})
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		// JSON by default (the typed client's contract); the Prometheus
		// text form — including the registry histograms — on request.
		if r.URL.Query().Get("format") == "prometheus" ||
			strings.Contains(r.Header.Get("Accept"), "text/plain") {
			s.handlePromMetrics(w, r)
			return
		}
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	s.mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Workers())
	})
	s.mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Name string `json:"name"`
			URL  string `json:"url"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decode worker: %w", err))
			return
		}
		info, err := s.RegisterWorker(req.Name, req.URL)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})
	s.mux.HandleFunc("DELETE /v1/workers/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.RemoveWorker(r.PathValue("name")); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	archiveErr := func(w http.ResponseWriter, err error) {
		switch {
		case errors.Is(err, ErrArchiveDisabled), errors.Is(err, ErrNoArchiveEntry):
			httpError(w, http.StatusNotFound, err)
		default:
			httpError(w, http.StatusInternalServerError, err)
		}
	}
	s.mux.HandleFunc("GET /v1/archive", func(w http.ResponseWriter, r *http.Request) {
		list, err := s.ArchiveList()
		if err != nil {
			archiveErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, list)
	})
	s.mux.HandleFunc("GET /v1/archive/trends", func(w http.ResponseWriter, r *http.Request) {
		trends, err := s.ArchiveTrends()
		if err != nil {
			archiveErr(w, err)
			return
		}
		if trends == nil {
			trends = []AppTrend{}
		}
		writeJSON(w, http.StatusOK, trends)
	})
	s.mux.HandleFunc("GET /v1/archive/{fingerprint}", func(w http.ResponseWriter, r *http.Request) {
		rec, err := s.ArchiveEntry(r.PathValue("fingerprint"))
		if err != nil {
			archiveErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rec)
	})
	s.mux.HandleFunc("GET /v1/archive/{fingerprint}/sites", func(w http.ResponseWriter, r *http.Request) {
		sites, err := s.ArchiveSiteRanking(r.PathValue("fingerprint"))
		if err != nil {
			archiveErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, sites)
	})
	s.mux.HandleFunc("GET /metrics", s.handlePromMetrics)
}

// handleStream serves a job's event stream as NDJSON (default) or SSE
// (Accept: text/event-stream). The stream is lossless for experiments: a
// watcher attaching at any point — mid-run, or after the job settled —
// first receives every journaled experiment, then live events. It ends
// with a terminal event; for a done job that event carries the tally and
// FPS, so a watcher needs no extra round trip for the headline numbers.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, ErrJobNotFound)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("service: streaming unsupported"))
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	// Subscribe before snapshotting so no event between the snapshot and
	// the subscription is lost.
	sub, unsubscribe := j.hub.subscribe()
	defer unsubscribe()
	trace := j.snapshot().Trace
	enc := json.NewEncoder(w)
	write := func(e Event) bool {
		// Synthetic events (journal replay, the terminal epilogue) are
		// built here rather than published through the hub, so stamp the
		// job's trace on them too — every streamed event correlates.
		if e.Trace == "" {
			e.Trace = trace
		}
		if sse {
			fmt.Fprintf(w, "data: ")
		}
		if err := enc.Encode(e); err != nil {
			return false
		}
		if sse {
			fmt.Fprintf(w, "\n")
		}
		flusher.Flush()
		return true
	}

	// A terminal state must be the stream's last event (watchers stop on
	// it), so for a settled job the opening status is withheld and only
	// the closing event reports it — after the history replays.
	st := j.snapshot()
	if !st.State.Terminal() {
		if !write(Event{Kind: EventState, Job: st.ID, State: st.State, Error: st.Error, Progress: st.Progress}) {
			return
		}
	}

	// The journal is flushed before each experiment event publishes, so
	// replaying it here (after subscribing, before forwarding) makes the
	// stream lossless: experiments completed before this watcher attached
	// come from disk, later ones arrive live, and the overlap dedups by
	// experiment ID. A finished job replays its entire history.
	seen := make(map[int]bool)
	sums, err := harness.LoadJournalSummaries(s.store.JournalPath(st.ID))
	if err == nil {
		for _, sum := range sums {
			seen[sum.ID] = true
			ok := write(Event{Kind: EventExperiment, Job: st.ID, Experiment: &ExperimentEvent{
				ID:      sum.ID,
				Outcome: sum.Outcome.String(),
				Rank:    sum.InjRank,
				Cycle:   sum.InjCycle,
				Fired:   sum.Fired,
				MaxCML:  sum.MaxCML,
				Resumed: true,
			}})
			if !ok {
				return
			}
		}
	}
	sentTerminal := false

	for {
		select {
		case e, ok := <-sub.ch:
			if !ok {
				// sub.truncated was written under the hub lock strictly
				// before the close we just observed, so reading it here is
				// safe. A truncated watcher lagged and was dropped: tell it
				// so explicitly — the job is still running, and the client
				// reconnects and recovers missed experiments from the
				// journal replay. Only a graceful close (job settled) gets
				// the terminal-state epilogue.
				if sub.truncated {
					st := j.snapshot()
					write(Event{Kind: EventTruncated, Job: st.ID, Trace: st.Trace})
					s.log.Warn("event stream truncated", "job", st.ID,
						"trace", st.Trace, "remote", r.RemoteAddr)
					return
				}
				// Hub closed (job settled): report the job's current state
				// as the final event unless a terminal event already went
				// out.
				if !sentTerminal {
					st := j.snapshot()
					final := Event{Kind: EventState, Job: st.ID, State: st.State, Error: st.Error}
					if st.State == StateDone {
						final.Kind = EventResult
						final.Tally = st.Tally
						final.FPS = st.FPS
					}
					write(final)
				}
				return
			}
			if e.Experiment != nil {
				if seen[e.Experiment.ID] {
					continue
				}
				seen[e.Experiment.ID] = true
			}
			if !write(e) {
				return
			}
			if e.State.Terminal() {
				sentTerminal = true
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handlePromMetrics renders Metrics in the Prometheus text exposition
// format.
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE faultpropd_queue_depth gauge\nfaultpropd_queue_depth %d\n", m.QueueDepth)
	fmt.Fprintf(w, "# TYPE faultpropd_jobs_running gauge\nfaultpropd_jobs_running %d\n", m.RunningJobs)
	fmt.Fprintf(w, "# TYPE faultpropd_job_slots gauge\nfaultpropd_job_slots %d\n", m.JobSlots)
	fmt.Fprintf(w, "# TYPE faultpropd_worker_pool gauge\nfaultpropd_worker_pool %d\n", m.WorkerPool)
	fmt.Fprintf(w, "# TYPE faultpropd_workers_busy gauge\nfaultpropd_workers_busy %d\n", m.WorkersBusy)
	fmt.Fprintf(w, "# TYPE faultpropd_worker_utilization gauge\nfaultpropd_worker_utilization %g\n", m.Utilization)
	fmt.Fprintf(w, "# TYPE faultpropd_runs_per_sec gauge\nfaultpropd_runs_per_sec %g\n", m.RunsPerSec)
	fmt.Fprintf(w, "# TYPE faultpropd_jobs_done_total counter\nfaultpropd_jobs_done_total %d\n", m.JobsDone)
	fmt.Fprintf(w, "# TYPE faultpropd_jobs_failed_total counter\nfaultpropd_jobs_failed_total %d\n", m.JobsFailed)
	fmt.Fprintf(w, "# TYPE faultpropd_jobs_cancelled_total counter\nfaultpropd_jobs_cancelled_total %d\n", m.JobsCancelled)
	fmt.Fprintf(w, "# TYPE faultpropd_runs_total counter\n")
	for o := 0; o < classify.NumOutcomes; o++ {
		name := classify.Outcome(o).String()
		fmt.Fprintf(w, "faultpropd_runs_total{outcome=%q} %d\n", name, m.Outcomes[name])
	}
	fmt.Fprintf(w, "# TYPE faultpropd_job_runs_done gauge\n")
	for _, jm := range m.Jobs {
		fmt.Fprintf(w, "faultpropd_job_runs_done{job=%q,state=%q} %d\n", jm.ID, jm.State, jm.Done)
	}
	// Registry-backed series: queue wait, shard duration, stream drops,
	// request counts, and the per-phase / per-outcome experiment latency
	// histograms (including distributions absorbed from worker partials).
	s.obs.reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// httpError writes the JSON error body. When the cause chains to a
// sentinel with a wire code, the body carries it in "code" so clients can
// map the error back to the sentinel (errors.Is across the transport).
func httpError(w http.ResponseWriter, status int, err error) {
	body := map[string]string{"error": err.Error()}
	if code := ErrorCode(err); code != "" {
		body["code"] = code
	}
	writeJSON(w, status, body)
}
