// Package service implements faultpropd, the campaign service daemon: a
// long-running HTTP server that accepts fault-injection campaign jobs over
// a JSON API, schedules them on a bounded worker pool with per-job
// priorities, persists every job through the harness checkpoint journal so
// a killed daemon resumes all in-flight work on restart, and streams live
// results (per-experiment summaries, progress metrics, final tallies) to
// any number of watchers.
//
// The HTTP surface (all request/response bodies are JSON):
//
//	POST   /api/v1/jobs             submit a JobSpec, returns JobStatus
//	GET    /api/v1/jobs             list all jobs
//	GET    /api/v1/jobs/{id}        one job's status
//	GET    /api/v1/jobs/{id}/stream NDJSON event stream (SSE with Accept: text/event-stream)
//	GET    /api/v1/jobs/{id}/result final CampaignResult of a finished job
//	POST   /api/v1/jobs/{id}/cancel cancel a queued or running job
//	DELETE /api/v1/jobs/{id}        alias for cancel
//	GET    /api/v1/metrics          service metrics, JSON
//	GET    /metrics                 service metrics, Prometheus text format
//	GET    /healthz                 liveness probe
package service

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/classify"
	"repro/internal/harness"
)

// JobSpec is a campaign submission: the same knobs cmd/campaign exposes for
// a local run, minus scheduling concerns (worker counts and checkpoint
// paths belong to the daemon).
type JobSpec struct {
	// App names the proxy application (LULESH, LAMMPS, miniFE, AMG2013,
	// MCB).
	App string `json:"app"`
	// Scale selects the workload size: "default" (campaign scale, the
	// default) or "test" (unit-test scale).
	Scale string `json:"scale,omitempty"`
	// Runs is the number of injection experiments.
	Runs int `json:"runs"`
	// Seed drives all campaign randomness; a job is reproducible from its
	// spec alone.
	Seed uint64 `json:"seed"`
	// MultiFaultLambda, when positive, switches to Poisson multi-fault
	// mode.
	MultiFaultLambda float64 `json:"multiFaultLambda,omitempty"`
	// HangFactor multiplies the golden cycle count into the hang budget
	// (0: harness default).
	HangFactor float64 `json:"hangFactor,omitempty"`
	// SampleEvery subsamples CML traces (cycles between samples).
	SampleEvery uint64 `json:"sampleEvery,omitempty"`
	// MaxSummaries bounds retained per-experiment summaries (0: keep all).
	MaxSummaries int `json:"maxSummaries,omitempty"`
	// Priority orders the queue: higher runs first, ties run in submission
	// order.
	Priority int `json:"priority,omitempty"`
	// Label is a free-form operator annotation.
	Label string `json:"label,omitempty"`
}

// Validate checks the spec without building anything.
func (s JobSpec) Validate() error {
	if apps.ByName(s.App) == nil {
		return fmt.Errorf("service: unknown app %q", s.App)
	}
	if s.Runs <= 0 {
		return fmt.Errorf("service: job needs runs > 0")
	}
	switch s.Scale {
	case "", "default", "test":
	default:
		return fmt.Errorf("service: unknown scale %q (want default or test)", s.Scale)
	}
	return nil
}

// CampaignConfig translates the spec into the harness configuration that a
// local run with the same flags would produce, so results are identical
// across transports. Scheduling fields (Workers, Checkpoint, Gate,
// Progress, hooks) are left for the scheduler to fill in.
func (s JobSpec) CampaignConfig() (harness.CampaignConfig, error) {
	if err := s.Validate(); err != nil {
		return harness.CampaignConfig{}, err
	}
	app := apps.ByName(s.App)
	p := app.DefaultParams()
	if s.Scale == "test" {
		p = app.TestParams()
	}
	return harness.CampaignConfig{
		App:              app,
		Params:           p,
		Runs:             s.Runs,
		Seed:             s.Seed,
		MultiFaultLambda: s.MultiFaultLambda,
		HangFactor:       s.HangFactor,
		SampleEvery:      s.SampleEvery,
		MaxSummaries:     s.MaxSummaries,
	}, nil
}

// JobState is the lifecycle state of a job.
type JobState string

const (
	// StateQueued: accepted, waiting for a job slot. Jobs that were running
	// when the daemon stopped return to StateQueued with their journal
	// intact and resume from it.
	StateQueued JobState = "queued"
	// StateRunning: executing experiments.
	StateRunning JobState = "running"
	// StateDone: completed every run; the result is fetchable.
	StateDone JobState = "done"
	// StateFailed: the campaign returned an error other than cancellation.
	StateFailed JobState = "failed"
	// StateCancelled: cancelled by a client; terminal.
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobStatus is the client-visible record of one job.
type JobStatus struct {
	ID      string    `json:"id"`
	Spec    JobSpec   `json:"spec"`
	State   JobState  `json:"state"`
	Created time.Time `json:"created"`
	Started time.Time `json:"started"`
	// Finished is set on terminal states; for a job returned to the queue
	// by a daemon restart it stays zero.
	Finished time.Time `json:"finished"`
	Error    string    `json:"error,omitempty"`
	// Resumed counts experiments replayed from the checkpoint journal the
	// last time the job (re)started — nonzero after a daemon restart.
	Resumed int `json:"resumed,omitempty"`
	// Progress is a live snapshot, present while the job runs.
	Progress *harness.Snapshot `json:"progress,omitempty"`
	// Tally and FPS summarize a done job (the full CampaignResult is at
	// /api/v1/jobs/{id}/result).
	Tally *classify.Tally `json:"tally,omitempty"`
	FPS   float64         `json:"fps,omitempty"`
}

// EventKind discriminates stream events.
type EventKind string

const (
	// EventState: the job changed lifecycle state (Status carries it).
	EventState EventKind = "state"
	// EventExperiment: one experiment completed (replayed journal records
	// stream first on resume, flagged Resumed).
	EventExperiment EventKind = "experiment"
	// EventProgress: a periodic progress snapshot.
	EventProgress EventKind = "progress"
	// EventResult: the job finished; Tally and FPS carry the final
	// aggregate. Always the last event of a successful stream.
	EventResult EventKind = "result"
)

// Event is one NDJSON stream record.
type Event struct {
	Kind EventKind `json:"kind"`
	Job  string    `json:"job"`
	// Seq orders events within one job's stream.
	Seq        uint64            `json:"seq"`
	State      JobState          `json:"state,omitempty"`
	Error      string            `json:"error,omitempty"`
	Experiment *ExperimentEvent  `json:"experiment,omitempty"`
	Progress   *harness.Snapshot `json:"progress,omitempty"`
	Tally      *classify.Tally   `json:"tally,omitempty"`
	FPS        float64           `json:"fps,omitempty"`
}

// ExperimentEvent condenses one completed experiment for streaming; the
// full summaries live in the job's result.
type ExperimentEvent struct {
	ID      int    `json:"id"`
	Outcome string `json:"outcome"`
	Rank    int    `json:"rank"`
	Cycle   uint64 `json:"cycle,omitempty"`
	Fired   bool   `json:"fired"`
	MaxCML  int    `json:"maxCML,omitempty"`
	// Resumed marks records delivered from the checkpoint journal (a
	// daemon restart, or a watcher attaching after the experiment ran)
	// rather than observed live.
	Resumed bool `json:"resumed,omitempty"`
}

// Metrics is the /api/v1/metrics document.
type Metrics struct {
	// QueueDepth counts jobs waiting for a slot; RunningJobs counts jobs
	// currently executing.
	QueueDepth  int `json:"queueDepth"`
	RunningJobs int `json:"runningJobs"`
	// JobSlots and WorkerPool echo the daemon's configured capacity.
	JobSlots   int `json:"jobSlots"`
	WorkerPool int `json:"workerPool"`
	// WorkersBusy counts experiments executing right now across all jobs.
	WorkersBusy int `json:"workersBusy"`
	// Utilization is WorkersBusy over WorkerPool, in [0, 1].
	Utilization float64 `json:"utilization"`
	// RunsPerSec sums the live throughput of all running jobs.
	RunsPerSec float64 `json:"runsPerSec"`
	// JobsDone/Failed/Cancelled count terminal jobs this daemon lifetime
	// plus those loaded from the store.
	JobsDone      int `json:"jobsDone"`
	JobsFailed    int `json:"jobsFailed"`
	JobsCancelled int `json:"jobsCancelled"`
	// Outcomes counts completed experiments per outcome class, summed over
	// terminal tallies and live progress.
	Outcomes map[string]int `json:"outcomes"`
	// Jobs carries per-job progress for queued and running jobs.
	Jobs []JobMetrics `json:"jobs"`
}

// JobMetrics is one queued or running job inside Metrics.
type JobMetrics struct {
	ID         string   `json:"id"`
	State      JobState `json:"state"`
	Priority   int      `json:"priority"`
	Done       int      `json:"done"`
	Total      int      `json:"total"`
	Resumed    int      `json:"resumed,omitempty"`
	RunsPerSec float64  `json:"runsPerSec,omitempty"`
}
