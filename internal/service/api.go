// Package service implements faultpropd, the campaign service daemon: a
// long-running HTTP server that accepts fault-injection campaign jobs over
// a JSON API, schedules them on a bounded worker pool with per-job
// priorities, persists every job through the harness checkpoint journal so
// a killed daemon resumes all in-flight work on restart, and streams live
// results (per-experiment summaries, progress metrics, final tallies) to
// any number of watchers.
//
// A daemon can also act as a shard coordinator: a job submitted with
// Shards > 1 is decomposed into fingerprint-guarded shard jobs dispatched
// to registered peer workers (other faultpropd instances), their partial
// aggregates merged into a result byte-identical to a single-process run.
//
// The HTTP surface, versioned under /v1/ (all request/response bodies are
// JSON; error bodies carry {"error": message, "code": machine-code}):
//
//	GET    /v1/version          API version and capability document
//	POST   /v1/jobs             submit a JobSpec, returns JobStatus
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        one job's status
//	GET    /v1/jobs/{id}/stream NDJSON event stream (SSE with Accept: text/event-stream)
//	GET    /v1/jobs/{id}/result final CampaignResult of a finished job
//	GET    /v1/jobs/{id}/partial mergeable PartialResult of a finished shard job
//	POST   /v1/jobs/{id}/cancel cancel a queued or running job
//	DELETE /v1/jobs/{id}        alias for cancel
//	GET    /v1/metrics          service metrics: JSON by default, the
//	                            Prometheus text form (with queue-wait,
//	                            shard-duration, and per-phase/per-outcome
//	                            experiment-latency histograms) on
//	                            ?format=prometheus or Accept: text/plain
//	GET    /v1/workers          list registered peer workers
//	POST   /v1/workers          register a peer worker {"name","url"}
//	DELETE /v1/workers/{name}   deregister a peer worker
//	GET    /v1/archive          campaign archive listing (entry metadata + totals)
//	GET    /v1/archive/trends   per-app outcome-rate and FPS-over-time series
//	GET    /v1/archive/{fp}     one archived campaign (metadata + full result)
//	GET    /v1/archive/{fp}/sites  per-site vulnerability ranking of an archived campaign
//	GET    /metrics             service metrics, Prometheus text format
//	GET    /healthz             liveness probe
//
// Submissions may carry an X-Faultprop-Trace header; the daemon stamps
// the trace (or a generated one) on the job's status, every stream
// event, its checkpoint journal header, and its log lines, and a
// coordinator forwards a per-shard span ("trace/sN") to its workers.
// An X-Faultprop-Tenant header attributes the submission to a tenant for
// admission control (per-tenant active-job quotas and token-bucket rate
// limits); without one, the "default" tenant is charged.
//
// When the daemon runs with an archive (-archive-dir), every completed
// campaign is committed to it keyed by configuration fingerprint, and a
// repeat submission of an identical fingerprint is answered from the
// archive: the job is born done (JobStatus.CacheHit), its result bytes
// exactly those of the original run, its event stream replaying the
// archived journal. The pre-versioning /api/v1/* compat redirects were
// removed after their one promised release; clients speak /v1/*.
package service

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/classify"
	"repro/internal/harness"
)

// JobSpec is a campaign submission: the same knobs cmd/campaign exposes for
// a local run, minus scheduling concerns (worker counts and checkpoint
// paths belong to the daemon).
type JobSpec struct {
	// App names the proxy application (LULESH, LAMMPS, miniFE, AMG2013,
	// MCB).
	App string `json:"app"`
	// Scale selects the workload size: "default" (campaign scale, the
	// default) or "test" (unit-test scale).
	Scale string `json:"scale,omitempty"`
	// Runs is the number of injection experiments.
	Runs int `json:"runs"`
	// Seed drives all campaign randomness; a job is reproducible from its
	// spec alone.
	Seed uint64 `json:"seed"`
	// MultiFaultLambda, when positive, switches to Poisson multi-fault
	// mode.
	MultiFaultLambda float64 `json:"multiFaultLambda,omitempty"`
	// HangFactor multiplies the golden cycle count into the hang budget
	// (0: harness default).
	HangFactor float64 `json:"hangFactor,omitempty"`
	// SampleEvery subsamples CML traces (cycles between samples).
	SampleEvery uint64 `json:"sampleEvery,omitempty"`
	// MaxSummaries bounds retained per-experiment summaries (0: keep all).
	MaxSummaries int `json:"maxSummaries,omitempty"`
	// Snapshots, when positive, enables the snapshot-fork fast path with
	// that many golden-state snapshots per campaign (or shard): experiments
	// fork from the latest snapshot preceding their faults instead of
	// re-executing the clean prefix. Purely a performance strategy —
	// results are byte-identical either way — so it is excluded from the
	// campaign fingerprint and coordinators may mix modes across workers.
	Snapshots int `json:"snapshots,omitempty"`
	// Priority orders the queue: higher runs first, ties run in submission
	// order.
	Priority int `json:"priority,omitempty"`
	// Label is a free-form operator annotation.
	Label string `json:"label,omitempty"`
	// Shards, when > 1, makes this a coordinated job: the daemon splits
	// the campaign into that many shard jobs, dispatches them to its
	// registered peer workers, and merges the partial aggregates into a
	// result byte-identical to an unsharded run.
	Shards int `json:"shards,omitempty"`
	// Shard marks this job as one shard of a coordinated campaign. Set by
	// coordinators when dispatching to workers, not by end users; the
	// worker runs only the spec's ID range and exposes a PartialResult
	// instead of a CampaignResult.
	Shard *harness.ShardSpec `json:"shard,omitempty"`
	// Sampling, when present, selects the adaptive stratified sampling
	// policy (daemons advertising the "adaptive" capability). The legacy
	// flat fields (Runs, Seed, MultiFaultLambda) remain authoritative for
	// the fixed-size portion of the policy; this object only adds the
	// adaptive knobs on top.
	Sampling *SamplingSpec `json:"sampling,omitempty"`
}

// SamplingSpec is the adaptive sampling policy of a JobSpec: the campaign
// stops each stratum once the vulnerability estimate is tight enough
// instead of spending the whole Runs budget. Runs stays the hard budget
// ceiling.
type SamplingSpec struct {
	// TargetCI, in (0, 1), is the target 95% Wilson confidence-interval
	// half-width per stratum; 0 disables adaptive stopping.
	TargetCI float64 `json:"targetCI,omitempty"`
	// Strata is the number of golden-execution phases per instruction
	// class used to stratify injection sites (0: harness default).
	Strata int `json:"strata,omitempty"`
	// Sites enables per-site propagation analytics (daemons advertising the
	// "sites" capability): every experiment is attributed to the static
	// injection site of its first fault and the result carries a
	// Wilson-ranked per-site vulnerability table, also served from
	// GET /v1/archive/{fingerprint}/sites.
	Sites bool `json:"sites,omitempty"`
	// Protect lists static fim_inj site ordinals to protect (strictly
	// ascending): the transform corrects any flip at a listed site right
	// after the injection point — the selective-protection scenario. It
	// changes the program under test, so it is part of the campaign
	// fingerprint.
	Protect []int `json:"protect,omitempty"`
}

// Validate checks the spec without building anything. Violations wrap
// ErrInvalidSpec.
func (s JobSpec) Validate() error {
	if apps.ByName(s.App) == nil {
		return fmt.Errorf("%w: unknown app %q", ErrInvalidSpec, s.App)
	}
	if s.Runs <= 0 {
		return fmt.Errorf("%w: job needs runs > 0", ErrInvalidSpec)
	}
	switch s.Scale {
	case "", "default", "test":
	default:
		return fmt.Errorf("%w: unknown scale %q (want default or test)", ErrInvalidSpec, s.Scale)
	}
	if s.Shards < 0 {
		return fmt.Errorf("%w: shards must be >= 0", ErrInvalidSpec)
	}
	if s.Snapshots < 0 {
		return fmt.Errorf("%w: snapshots must be >= 0", ErrInvalidSpec)
	}
	if s.Shards > 1 && s.Shard != nil {
		return fmt.Errorf("%w: shards and shard are mutually exclusive", ErrInvalidSpec)
	}
	if s.Shard != nil {
		if s.Shard.From < 0 || s.Shard.From > s.Shard.To || s.Shard.To > s.Runs {
			return fmt.Errorf("%w: shard range [%d,%d) outside campaign [0,%d)",
				ErrInvalidSpec, s.Shard.From, s.Shard.To, s.Runs)
		}
	}
	if s.Sampling != nil {
		if s.Sampling.TargetCI < 0 || s.Sampling.TargetCI >= 1 {
			return fmt.Errorf("%w: sampling.targetCI must be in [0, 1)", ErrInvalidSpec)
		}
		if s.Sampling.Strata < 0 {
			return fmt.Errorf("%w: sampling.strata must be >= 0", ErrInvalidSpec)
		}
		for i, p := range s.Sampling.Protect {
			if p < 0 {
				return fmt.Errorf("%w: sampling.protect ordinals must be >= 0", ErrInvalidSpec)
			}
			if i > 0 && p <= s.Sampling.Protect[i-1] {
				return fmt.Errorf("%w: sampling.protect must be strictly ascending", ErrInvalidSpec)
			}
		}
	}
	return nil
}

// Adaptive reports whether the spec requests adaptive sequential stopping.
func (s JobSpec) Adaptive() bool {
	return s.Sampling != nil && s.Sampling.TargetCI > 0
}

// CampaignConfig translates the spec into the harness configuration that a
// local run with the same flags would produce, so results are identical
// across transports. Scheduling fields (Workers, Checkpoint, Gate,
// Progress, hooks) are left for the scheduler to fill in.
func (s JobSpec) CampaignConfig() (harness.CampaignConfig, error) {
	if err := s.Validate(); err != nil {
		return harness.CampaignConfig{}, err
	}
	app := apps.ByName(s.App)
	p := app.DefaultParams()
	if s.Scale == "test" {
		p = app.TestParams()
	}
	var targetCI float64
	var strata int
	var sites bool
	var protect []int
	if s.Sampling != nil {
		targetCI = s.Sampling.TargetCI
		strata = s.Sampling.Strata
		sites = s.Sampling.Sites
		protect = s.Sampling.Protect
	}
	return harness.CampaignConfig{
		App:     app,
		Params:  p,
		Protect: protect,
		Sampling: harness.Sampling{
			Runs:             s.Runs,
			Seed:             s.Seed,
			MultiFaultLambda: s.MultiFaultLambda,
			TargetCI:         targetCI,
			Strata:           strata,
			Sites:            sites,
		},
		Execution: harness.Execution{
			HangFactor:  s.HangFactor,
			SampleEvery: s.SampleEvery,
			Snapshots:   s.Snapshots,
		},
		Retention: harness.Retention{MaxSummaries: s.MaxSummaries},
	}, nil
}

// JobState is the lifecycle state of a job.
type JobState string

const (
	// StateQueued: accepted, waiting for a job slot. Jobs that were running
	// when the daemon stopped return to StateQueued with their journal
	// intact and resume from it.
	StateQueued JobState = "queued"
	// StateRunning: executing experiments.
	StateRunning JobState = "running"
	// StateDone: completed every run; the result is fetchable.
	StateDone JobState = "done"
	// StateFailed: the campaign returned an error other than cancellation.
	StateFailed JobState = "failed"
	// StateCancelled: cancelled by a client; terminal.
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobStatus is the client-visible record of one job.
type JobStatus struct {
	ID      string    `json:"id"`
	Spec    JobSpec   `json:"spec"`
	State   JobState  `json:"state"`
	Created time.Time `json:"created"`
	Started time.Time `json:"started"`
	// Finished is set on terminal states; for a job returned to the queue
	// by a daemon restart it stays zero.
	Finished time.Time `json:"finished"`
	Error    string    `json:"error,omitempty"`
	// ErrorCode is the machine-readable code of Error when the failure
	// maps to a service sentinel (see ErrorForCode); coordinators use it
	// to tell a retryable worker failure from a fatal one (e.g.
	// "fingerprint_mismatch") without string matching.
	ErrorCode string `json:"errorCode,omitempty"`
	// Resumed counts experiments replayed from the checkpoint journal the
	// last time the job (re)started — nonzero after a daemon restart.
	Resumed int `json:"resumed,omitempty"`
	// Trace is the job's span ID: taken from the submitter's
	// X-Faultprop-Trace header when present (so one trace follows a
	// campaign coordinator→worker), generated otherwise. It is stamped
	// into the job's events, its checkpoint journal header, and the
	// daemon's structured logs.
	Trace string `json:"trace,omitempty"`
	// Tenant is the submitting tenant (the X-Faultprop-Tenant header;
	// "default" when none was sent) — the unit of admission control:
	// per-tenant quotas and rate limits account here.
	Tenant string `json:"tenant,omitempty"`
	// Fingerprint is the job's archive cache key: the campaign
	// configuration fingerprint, suffixed "-max<N>" when MaxSummaries
	// caps the retained summaries (that cap shapes the stored result but
	// is outside the fingerprint). Identical fingerprints are identical
	// campaigns; GET /v1/archive/{fingerprint} finds the archived result.
	// Empty for shard jobs, which are never archived whole.
	Fingerprint string `json:"fingerprint,omitempty"`
	// CacheHit marks a job served straight from the campaign archive: it
	// was born terminal, its result byte-identical to the archived
	// original run's.
	CacheHit bool `json:"cacheHit,omitempty"`
	// Progress is a live snapshot, present while the job runs.
	Progress *harness.Snapshot `json:"progress,omitempty"`
	// Tally and FPS summarize a done job (the full CampaignResult is at
	// /v1/jobs/{id}/result; shard jobs expose /v1/jobs/{id}/partial and
	// leave FPS zero — the model is only built after the merge).
	Tally *classify.Tally `json:"tally,omitempty"`
	FPS   float64         `json:"fps,omitempty"`
	// Strata is the per-stratum vulnerability table of a done stratified
	// job: one row per instruction-class × execution-phase stratum with
	// its tally, vulnerability rate, and CI half-width.
	Strata []harness.StratumReport `json:"strata,omitempty"`
}

// EventKind discriminates stream events.
type EventKind string

const (
	// EventState: the job changed lifecycle state (Status carries it).
	EventState EventKind = "state"
	// EventExperiment: one experiment completed (replayed journal records
	// stream first on resume, flagged Resumed).
	EventExperiment EventKind = "experiment"
	// EventProgress: a periodic progress snapshot.
	EventProgress EventKind = "progress"
	// EventResult: the job finished; Tally and FPS carry the final
	// aggregate. Always the last event of a successful stream.
	EventResult EventKind = "result"
	// EventTruncated: this watcher lagged too far behind a running job and
	// the daemon dropped it to protect the stream. Always the last event
	// of a truncated stream; the job itself keeps running. Clients should
	// reconnect — the journal replay on resubscribe restores every missed
	// experiment, deduplicated by experiment ID.
	EventTruncated EventKind = "truncated"
)

// Event is one NDJSON stream record.
type Event struct {
	Kind EventKind `json:"kind"`
	Job  string    `json:"job"`
	// Seq orders events within one job's stream.
	Seq uint64 `json:"seq"`
	// Trace is the job's span ID, stamped on every event by the hub.
	Trace      string            `json:"trace,omitempty"`
	State      JobState          `json:"state,omitempty"`
	Error      string            `json:"error,omitempty"`
	Experiment *ExperimentEvent  `json:"experiment,omitempty"`
	Progress   *harness.Snapshot `json:"progress,omitempty"`
	Tally      *classify.Tally   `json:"tally,omitempty"`
	FPS        float64           `json:"fps,omitempty"`
}

// ExperimentEvent condenses one completed experiment for streaming; the
// full summaries live in the job's result.
type ExperimentEvent struct {
	ID      int    `json:"id"`
	Outcome string `json:"outcome"`
	Rank    int    `json:"rank"`
	Cycle   uint64 `json:"cycle,omitempty"`
	Fired   bool   `json:"fired"`
	MaxCML  int    `json:"maxCML,omitempty"`
	// Resumed marks records delivered from the checkpoint journal (a
	// daemon restart, or a watcher attaching after the experiment ran)
	// rather than observed live.
	Resumed bool `json:"resumed,omitempty"`
}

// APIVersion is the current HTTP API version prefix.
const APIVersion = "v1"

// VersionInfo is the GET /v1/version capability document: what API this
// daemon speaks and which optional features it supports. Clients and
// coordinators feature-detect from Capabilities instead of sniffing
// routes.
type VersionInfo struct {
	Service string `json:"service"`
	// API is the version prefix ("v1").
	API string `json:"api"`
	// Capabilities lists supported feature tags: "jobs", "stream",
	// "metrics", "shards" (accepts shard jobs, serves partials),
	// "coordinate" (decomposes Shards > 1 jobs across peer workers),
	// "adaptive" (accepts JobSpec.Sampling adaptive stopping policies).
	Capabilities []string `json:"capabilities"`
}

// Metrics is the /v1/metrics document.
type Metrics struct {
	// QueueDepth counts jobs waiting for a slot; RunningJobs counts jobs
	// currently executing.
	QueueDepth  int `json:"queueDepth"`
	RunningJobs int `json:"runningJobs"`
	// JobSlots and WorkerPool echo the daemon's configured capacity.
	JobSlots   int `json:"jobSlots"`
	WorkerPool int `json:"workerPool"`
	// WorkersBusy counts experiments executing right now across all jobs.
	WorkersBusy int `json:"workersBusy"`
	// Utilization is WorkersBusy over WorkerPool, in [0, 1].
	Utilization float64 `json:"utilization"`
	// RunsPerSec sums the live throughput of all running jobs.
	RunsPerSec float64 `json:"runsPerSec"`
	// JobsDone/Failed/Cancelled count terminal jobs this daemon lifetime
	// plus those loaded from the store.
	JobsDone      int `json:"jobsDone"`
	JobsFailed    int `json:"jobsFailed"`
	JobsCancelled int `json:"jobsCancelled"`
	// StreamDrops counts event-stream subscribers disconnected for
	// lagging (they receive EventTruncated and are expected to
	// reconnect).
	StreamDrops uint64 `json:"streamDrops"`
	// CacheHits counts submissions served straight from the campaign
	// archive; CacheMisses counts submissions that ran fresh with an
	// archive configured (absent or corrupt entry).
	CacheHits   uint64 `json:"cacheHits"`
	CacheMisses uint64 `json:"cacheMisses"`
	// ArchiveEntries and ArchiveBytes size the campaign archive (zero
	// when the daemon runs without one).
	ArchiveEntries int   `json:"archiveEntries"`
	ArchiveBytes   int64 `json:"archiveBytes"`
	// RestoreBytes totals the bytes copied by snapshot-fork restores
	// (local experiments plus absorbed shard partials). With delta
	// restore this grows with what forks actually dirty, not with
	// golden-state size times fork count.
	RestoreBytes uint64 `json:"restoreBytes"`
	// Outcomes counts completed experiments per outcome class, summed over
	// terminal tallies and live progress.
	Outcomes map[string]int `json:"outcomes"`
	// Jobs carries per-job progress for queued and running jobs.
	Jobs []JobMetrics `json:"jobs"`
}

// JobMetrics is one queued or running job inside Metrics.
type JobMetrics struct {
	ID         string   `json:"id"`
	State      JobState `json:"state"`
	Priority   int      `json:"priority"`
	Done       int      `json:"done"`
	Total      int      `json:"total"`
	Resumed    int      `json:"resumed,omitempty"`
	RunsPerSec float64  `json:"runsPerSec,omitempty"`
}
