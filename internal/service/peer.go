package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
)

// peerClient is the coordinator's minimal HTTP client for dispatching
// shard jobs to peer workers. It is deliberately not the public typed
// client (internal/service/client imports this package, so using it here
// would cycle); it speaks the same /v1 wire protocol and decodes error
// codes back into the shared sentinels.
type peerClient struct {
	hc *http.Client
}

func newPeerClient() *peerClient {
	return &peerClient{hc: &http.Client{Timeout: 30 * time.Second}}
}

// peerError is a non-2xx response from a worker, carrying the decoded
// sentinel (when the code mapped) for errors.Is.
type peerError struct {
	status  int
	message string
	wrapped error
}

func (e *peerError) Error() string {
	return fmt.Sprintf("service: worker returned %d: %s", e.status, e.message)
}

func (e *peerError) Unwrap() error { return e.wrapped }

// retryablePeer reports whether a worker call may be retried: transport
// errors and 5xx are transient, 4xx are not. Context cancellation and
// deadline expiry are never retryable — they mean the *caller* is done
// (coordinator teardown, drain), not that the worker is unhealthy, and
// retrying them would misclassify teardown as worker death.
func retryablePeer(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var pe *peerError
	if errors.As(err, &pe) {
		return pe.status >= 500
	}
	return err != nil
}

// do runs one request against a worker base URL and decodes the JSON
// response into out (when non-nil).
func (p *peerClient) do(ctx context.Context, method, base, path string, body, out any) error {
	return p.doHeaders(ctx, method, base, path, body, out, "", "")
}

// doHeaders is do with an optional trace ID (X-Faultprop-Trace) and
// tenant (X-Faultprop-Tenant) forwarded as headers.
func (p *peerClient) doHeaders(ctx context.Context, method, base, path string, body, out any, trace, tenant string) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("service: peer encode: %w", err)
		}
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("service: peer: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return fmt.Errorf("service: peer %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &peerError{status: resp.StatusCode, message: msg, wrapped: ErrorForCode(e.Code)}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("service: peer decode: %w", err)
	}
	return nil
}

// doRetry is do with a small bounded backoff for idempotent calls.
func (p *peerClient) doRetry(ctx context.Context, method, base, path string, body, out any) error {
	backoff := 100 * time.Millisecond
	var err error
	for attempt := 0; ; attempt++ {
		if err = p.do(ctx, method, base, path, body, out); err == nil || !retryablePeer(err) {
			return err
		}
		if attempt >= 3 {
			return err
		}
		select {
		case <-time.After(backoff << attempt):
		case <-ctx.Done():
			// The caller gave up while we were backing off. Surface the
			// cancellation — errors.Is(err, context.Canceled) must hold —
			// not the stale transport error from the last attempt, which
			// would make a deliberate teardown look like a worker failure.
			return fmt.Errorf("service: peer %s %s: %w (last attempt: %v)",
				method, path, ctx.Err(), err)
		}
	}
}

// ping checks a worker's liveness and API compatibility.
func (p *peerClient) ping(ctx context.Context, base string) error {
	var v VersionInfo
	if err := p.do(ctx, http.MethodGet, base, "/v1/version", nil, &v); err != nil {
		return err
	}
	if v.API != APIVersion {
		return fmt.Errorf("service: worker %s speaks API %q, want %q", base, v.API, APIVersion)
	}
	return nil
}

// submit queues a shard job on a worker, propagating the shard's span ID
// in the X-Faultprop-Trace header (so the worker's journal, events, and
// logs carry it) and the parent job's tenant in X-Faultprop-Tenant (for
// accounting; shard jobs bypass worker-side admission). Submission is
// not retried (it is not idempotent); a failed submit requeues the shard
// instead.
func (p *peerClient) submit(ctx context.Context, base string, spec JobSpec, trace, tenant string) (JobStatus, error) {
	var st JobStatus
	err := p.doHeaders(ctx, http.MethodPost, base, "/v1/jobs", spec, &st, trace, tenant)
	return st, err
}

// job polls one job's status.
func (p *peerClient) job(ctx context.Context, base, id string) (JobStatus, error) {
	var st JobStatus
	err := p.doRetry(ctx, http.MethodGet, base, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// cancel best-effort stops a worker job (coordinator teardown).
func (p *peerClient) cancel(ctx context.Context, base, id string) {
	_ = p.do(ctx, http.MethodPost, base, "/v1/jobs/"+id+"/cancel", nil, nil)
}

// partial fetches a finished shard job's mergeable aggregate.
func (p *peerClient) partial(ctx context.Context, base, id string) (*harness.PartialResult, error) {
	var part harness.PartialResult
	if err := p.doRetry(ctx, http.MethodGet, base, "/v1/jobs/"+id+"/partial", nil, &part); err != nil {
		return nil, err
	}
	return &part, nil
}
