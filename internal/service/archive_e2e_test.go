package service_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/service/client"
)

// rawResult fetches a job's stored result over plain HTTP so tests can
// compare the exact bytes the daemon serves, not a decode/re-encode.
func rawResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result %s = %d", id, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestCacheHitByteIdentity is the archive acceptance gate: resubmitting
// an identical spec must be served from the archive as a terminal
// cache-hit job whose result bytes, rendered study, and replayed event
// stream are indistinguishable from the original run.
func TestCacheHitByteIdentity(t *testing.T) {
	arch := t.TempDir()
	d := startDaemon(t, t.TempDir(), service.Config{ArchiveDir: arch})
	ctx := context.Background()
	spec := service.JobSpec{App: "LULESH", Scale: "test", Runs: 14, Seed: 5, SampleEvery: 64}

	first, err := d.c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	fst := waitDone(t, d.c, first.ID)
	if fst.State != service.StateDone || fst.CacheHit {
		t.Fatalf("first run settled as %s cacheHit=%v: %s", fst.State, fst.CacheHit, fst.Error)
	}
	if fst.Fingerprint == "" {
		t.Fatal("finished job carries no fingerprint")
	}
	firstBytes := rawResult(t, d.http.URL, first.ID)

	second, err := d.c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID == first.ID {
		t.Fatal("cache hit reused the original job ID")
	}
	sst := waitDone(t, d.c, second.ID)
	if sst.State != service.StateDone || !sst.CacheHit {
		t.Fatalf("resubmission settled as %s cacheHit=%v: %s", sst.State, sst.CacheHit, sst.Error)
	}
	if sst.Fingerprint != fst.Fingerprint {
		t.Errorf("fingerprints differ: %q vs %q", sst.Fingerprint, fst.Fingerprint)
	}
	if sst.Tally == nil || fst.Tally == nil || *sst.Tally != *fst.Tally {
		t.Errorf("terminal tallies differ: %+v vs %+v", sst.Tally, fst.Tally)
	}

	secondBytes := rawResult(t, d.http.URL, second.ID)
	if string(firstBytes) != string(secondBytes) {
		t.Errorf("cache-hit result is not byte-identical (%d vs %d bytes)",
			len(firstBytes), len(secondBytes))
	}

	// The rendered study — every figure and table — must also match.
	orig, err := d.c.Result(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := d.c.Result(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if harness.RenderStudy(orig) != harness.RenderStudy(cached) {
		t.Error("rendered study differs between original and cache hit")
	}

	// Watching the cache-hit job replays the copied journal: the full
	// experiment history, then the terminal result event.
	experiments, gotResult := 0, false
	if _, err := d.c.Watch(ctx, second.ID, func(ev service.Event) error {
		switch ev.Kind {
		case service.EventExperiment:
			experiments++
		case service.EventResult:
			gotResult = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if experiments != spec.Runs {
		t.Errorf("cache-hit stream replayed %d experiments, want %d", experiments, spec.Runs)
	}
	if !gotResult {
		t.Error("cache-hit stream ended without a result event")
	}

	// Cache traffic and archive size are part of the metrics surface,
	// in both the JSON document and the Prometheus text format.
	m, err := d.c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", m.CacheHits, m.CacheMisses)
	}
	if m.ArchiveEntries != 1 || m.ArchiveBytes <= 0 {
		t.Errorf("archive entries/bytes = %d/%d, want 1 entry with nonzero bytes",
			m.ArchiveEntries, m.ArchiveBytes)
	}
	resp, err := http.Get(d.http.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"faultpropd_cache_hits_total 1",
		"faultpropd_cache_misses_total 1",
		"faultpropd_archive_entries 1",
		"faultpropd_archive_bytes",
	} {
		if !strings.Contains(string(prom), series) {
			t.Errorf("prometheus text missing %q", series)
		}
	}

	v, err := d.c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(v.Capabilities, ","), "archive") {
		t.Errorf("capabilities %v missing archive", v.Capabilities)
	}
}

// TestArchiveSitesView covers GET /v1/archive/{fingerprint}/sites: a
// sites-enabled job's archived ranking is served as-is, a legacy
// (sites-off) entry yields an empty non-null ranking, and the daemon
// advertises the "sites" capability.
func TestArchiveSitesView(t *testing.T) {
	d := startDaemon(t, t.TempDir(), service.Config{ArchiveDir: t.TempDir()})
	ctx := context.Background()

	v, err := d.c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(v.Capabilities, ","), "sites") {
		t.Errorf("capabilities %v missing sites", v.Capabilities)
	}

	withSites := service.JobSpec{App: "LULESH", Scale: "test", Runs: 14, Seed: 5,
		SampleEvery: 64, Sampling: &service.SamplingSpec{Sites: true}}
	st, err := d.c.Submit(ctx, withSites)
	if err != nil {
		t.Fatal(err)
	}
	done := waitDone(t, d.c, st.ID)
	if done.State != service.StateDone {
		t.Fatalf("sites job settled as %s: %s", done.State, done.Error)
	}
	ranking, err := d.c.ArchiveSites(ctx, done.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranking.Sites) == 0 {
		t.Fatal("archived sites view is empty for a sites-enabled job")
	}
	res, err := d.c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) != len(ranking.Sites) || res.Sites[0] != ranking.Sites[0] {
		t.Errorf("sites view diverges from the stored result: %d vs %d rows",
			len(ranking.Sites), len(res.Sites))
	}

	// A legacy entry — archived without per-site analytics — serves an
	// empty ranking, not an error and not null.
	legacy := service.JobSpec{App: "LULESH", Scale: "test", Runs: 14, Seed: 5, SampleEvery: 64}
	lst, err := d.c.Submit(ctx, legacy)
	if err != nil {
		t.Fatal(err)
	}
	ldone := waitDone(t, d.c, lst.ID)
	if ldone.Fingerprint == done.Fingerprint {
		t.Fatal("sites-on and sites-off jobs share a fingerprint")
	}
	lranking, err := d.c.ArchiveSites(ctx, ldone.Fingerprint)
	if err != nil {
		t.Fatalf("legacy sites view: %v", err)
	}
	if lranking.Sites == nil || len(lranking.Sites) != 0 {
		t.Errorf("legacy sites view = %v, want empty non-null", lranking.Sites)
	}

	// Unknown fingerprints are a wire-coded miss.
	if _, err := d.c.ArchiveSites(ctx, "no-such-entry"); !errors.Is(err, service.ErrNoArchiveEntry) {
		t.Errorf("missing entry error = %v, want ErrNoArchiveEntry", err)
	}
}

// TestCacheHitSurvivesRestart: the archive outlives the daemon. A fresh
// daemon process over an EMPTY job store but the SAME archive directory
// must serve the resubmission from the archive, byte-identical.
func TestCacheHitSurvivesRestart(t *testing.T) {
	arch := t.TempDir()
	spec := service.JobSpec{App: "LULESH", Scale: "test", Runs: 14, Seed: 5, SampleEvery: 64}

	d1 := startDaemon(t, t.TempDir(), service.Config{ArchiveDir: arch})
	first, err := d1.c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, d1.c, first.ID)
	firstBytes := rawResult(t, d1.http.URL, first.ID)
	orig, err := d1.c.Result(context.Background(), first.ID)
	if err != nil {
		t.Fatal(err)
	}
	d1.stop(t)

	// New process, new (empty) data dir: only the archive carries history.
	d2 := startDaemon(t, t.TempDir(), service.Config{ArchiveDir: arch})
	second, err := d2.c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sst := waitDone(t, d2.c, second.ID)
	if sst.State != service.StateDone || !sst.CacheHit {
		t.Fatalf("post-restart resubmission settled as %s cacheHit=%v: %s",
			sst.State, sst.CacheHit, sst.Error)
	}
	secondBytes := rawResult(t, d2.http.URL, second.ID)
	if string(firstBytes) != string(secondBytes) {
		t.Errorf("post-restart cache hit not byte-identical (%d vs %d bytes)",
			len(firstBytes), len(secondBytes))
	}
	cached, err := d2.c.Result(context.Background(), second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if harness.RenderStudy(orig) != harness.RenderStudy(cached) {
		t.Error("rendered study differs across the restart")
	}
}

// TestCorruptEntryDegradesToFreshRun: damage to an archived entry must
// never crash the daemon or serve a wrong result — the submission runs
// fresh, and its archival heals the slot for the next hit.
func TestCorruptEntryDegradesToFreshRun(t *testing.T) {
	arch := t.TempDir()
	d := startDaemon(t, t.TempDir(), service.Config{ArchiveDir: arch})
	ctx := context.Background()
	spec := service.JobSpec{App: "LULESH", Scale: "test", Runs: 14, Seed: 5, SampleEvery: 64}

	first, err := d.c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	fst := waitDone(t, d.c, first.ID)
	firstBytes := rawResult(t, d.http.URL, first.ID)

	// Truncate the archived result behind the daemon's back.
	resFile := filepath.Join(arch, "entries", fst.Fingerprint, "result.json")
	data, err := os.ReadFile(resFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(resFile, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	second, err := d.c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	sst := waitDone(t, d.c, second.ID)
	if sst.State != service.StateDone {
		t.Fatalf("resubmission over corrupt entry settled as %s: %s", sst.State, sst.Error)
	}
	if sst.CacheHit {
		t.Fatal("corrupt entry served as a cache hit")
	}
	if got := rawResult(t, d.http.URL, second.ID); string(got) != string(firstBytes) {
		t.Error("fresh rerun after corruption does not match the original result")
	}

	// The fresh run's archival healed the slot: third submission hits.
	third, err := d.c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	tst := waitDone(t, d.c, third.ID)
	if !tst.CacheHit {
		t.Error("slot did not heal: third submission was not a cache hit")
	}
}

// TestTenantQuotaOverWire: per-tenant active-job quotas reject the
// overflow submission with a wire-coded error (errors.Is works through
// HTTP) while leaving other tenants unaffected.
func TestTenantQuotaOverWire(t *testing.T) {
	d := startDaemon(t, t.TempDir(), service.Config{JobSlots: 1, TenantQuota: 1})
	ctx := context.Background()
	alice, err := client.New(d.http.URL, client.WithTenant("alice"))
	if err != nil {
		t.Fatal(err)
	}
	bob, err := client.New(d.http.URL, client.WithTenant("bob"))
	if err != nil {
		t.Fatal(err)
	}

	long := service.JobSpec{App: "LULESH", Scale: "test", Runs: 4000, Seed: 3}
	st, err := alice.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "alice" {
		t.Errorf("job tenant = %q, want alice", st.Tenant)
	}
	if _, err := alice.Submit(ctx, long); !errors.Is(err, service.ErrQuotaExceeded) {
		t.Errorf("alice's second submit = %v, want errors.Is ErrQuotaExceeded", err)
	}
	// Quotas are per tenant: bob is not crowded out by alice.
	bst, err := bob.Submit(ctx, long)
	if err != nil {
		t.Fatalf("bob's submit rejected: %v", err)
	}
	for _, id := range []string{st.ID, bst.ID} {
		if _, err := d.c.Cancel(ctx, id); err != nil {
			t.Errorf("cancel %s: %v", id, err)
		}
		waitDone(t, d.c, id)
	}
	// With alice's job settled, her quota frees again.
	st2, err := alice.Submit(ctx, service.JobSpec{App: "LULESH", Scale: "test", Runs: 4, Seed: 3})
	if err != nil {
		t.Fatalf("alice's submit after quota freed: %v", err)
	}
	waitDone(t, d.c, st2.ID)
}

// TestTenantRateLimitOverWire: the token bucket rejects a tenant's burst
// overflow with ErrRateLimited (HTTP 429) but keeps buckets per tenant.
func TestTenantRateLimitOverWire(t *testing.T) {
	// A refill rate this slow makes the test deterministic: one token in
	// the bucket, and no realistic test duration refills the next one.
	d := startDaemon(t, t.TempDir(), service.Config{TenantRate: 0.0001, TenantBurst: 1})
	ctx := context.Background()
	alice, err := client.New(d.http.URL, client.WithTenant("alice"))
	if err != nil {
		t.Fatal(err)
	}
	bob, err := client.New(d.http.URL, client.WithTenant("bob"))
	if err != nil {
		t.Fatal(err)
	}

	spec := service.JobSpec{App: "LULESH", Scale: "test", Runs: 4, Seed: 1}
	st, err := alice.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Submit(ctx, spec); !errors.Is(err, service.ErrRateLimited) {
		t.Errorf("alice's burst overflow = %v, want errors.Is ErrRateLimited", err)
	}
	bst, err := bob.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("bob rejected by alice's bucket: %v", err)
	}
	waitDone(t, d.c, st.ID)
	waitDone(t, d.c, bst.ID)
}

// TestArchiveEndpoints exercises the history query API: list, single
// entry, per-app trends, and the not-found/disabled sentinels.
func TestArchiveEndpoints(t *testing.T) {
	arch := t.TempDir()
	d := startDaemon(t, t.TempDir(), service.Config{ArchiveDir: arch})
	ctx := context.Background()
	spec := service.JobSpec{App: "LULESH", Scale: "test", Runs: 14, Seed: 5, SampleEvery: 64}

	st, err := d.c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	fst := waitDone(t, d.c, st.ID)

	list, err := d.c.Archive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if list.Entries != 1 || len(list.Items) != 1 {
		t.Fatalf("archive list = %d entries, %d items; want 1/1", list.Entries, len(list.Items))
	}
	m := list.Items[0]
	if m.Fingerprint != fst.Fingerprint || m.App != "LULESH" || m.Runs != spec.Runs || m.SourceJob != st.ID {
		t.Errorf("archived meta = %+v, want fingerprint %s / LULESH / %d runs / source %s",
			m, fst.Fingerprint, spec.Runs, st.ID)
	}

	rec, err := d.c.ArchiveEntry(ctx, fst.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Result == nil || rec.Result.Tally.Total != spec.Runs {
		t.Errorf("archived result tally = %+v, want total %d", rec.Result, spec.Runs)
	}

	trends, err := d.c.ArchiveTrends(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(trends) != 1 || trends[0].App != "LULESH" || len(trends[0].Points) != 1 {
		t.Fatalf("trends = %+v, want one LULESH series with one point", trends)
	}
	var rateSum float64
	for _, r := range trends[0].Points[0].Rates {
		rateSum += r
	}
	if rateSum < 0.999 || rateSum > 1.001 {
		t.Errorf("trend outcome rates sum to %g, want 1", rateSum)
	}

	if _, err := d.c.ArchiveEntry(ctx, "no-such-fingerprint"); !errors.Is(err, service.ErrNoArchiveEntry) {
		t.Errorf("ArchiveEntry(missing) = %v, want errors.Is ErrNoArchiveEntry", err)
	}

	// A daemon without an archive answers archive queries with the
	// disabled sentinel and omits the capability.
	plain := startDaemon(t, t.TempDir(), service.Config{})
	if _, err := plain.c.Archive(ctx); !errors.Is(err, service.ErrArchiveDisabled) {
		t.Errorf("Archive() without archive = %v, want errors.Is ErrArchiveDisabled", err)
	}
	v, err := plain.c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.Join(v.Capabilities, ","), "archive") {
		t.Errorf("archiveless capabilities %v advertise archive", v.Capabilities)
	}
}
