package service_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/client"
)

// promValue extracts the value of the first sample in a Prometheus text
// body whose series starts with prefix (name plus any label prelude).
func promValue(t *testing.T, body, prefix string) (float64, bool) {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parse prometheus line %q: %v", line, err)
		}
		return v, true
	}
	return 0, false
}

func fetchProm(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus metrics Content-Type = %q, want text/plain", ct)
	}
	return string(body)
}

// TestTracePropagationAndMergedHistograms is the coordinated-observability
// acceptance test: a trace ID set at submission must appear on the job's
// status, in its stream events, and — extended with per-shard span
// suffixes — in each worker's journal header and shard-job status; and
// the coordinator's merged experiment-latency histograms must count
// exactly the per-outcome totals of the same campaign run unsharded
// (latencies are wall clock, but which outcome each experiment lands in
// is deterministic, so the merged counts are exact).
func TestTracePropagationAndMergedHistograms(t *testing.T) {
	const traceID = "it-trace-42"
	spec := service.JobSpec{App: "LULESH", Scale: "test", Runs: 24, Seed: 77, SampleEvery: 64, Shards: 4}
	local := localReference(t, spec)

	workerDirs := []string{t.TempDir(), t.TempDir()}
	var urls []string
	var workers []*testDaemon
	for _, dir := range workerDirs {
		d := startDaemon(t, dir, service.Config{ProgressEvery: 10 * time.Millisecond})
		workers = append(workers, d)
		urls = append(urls, d.http.URL)
	}
	coord := startDaemon(t, t.TempDir(), service.Config{
		ProgressEvery: 10 * time.Millisecond,
		Heartbeat:     100 * time.Millisecond,
		Peers:         urls,
	})

	// Submit over raw HTTP so the X-Faultprop-Trace header is exercised
	// end to end, not just the Go API.
	body := fmt.Sprintf(`{"app":%q,"scale":%q,"runs":%d,"seed":%d,"sampleEvery":%d,"shards":%d}`,
		spec.App, spec.Scale, spec.Runs, spec.Seed, spec.SampleEvery, spec.Shards)
	req, err := http.NewRequest(http.MethodPost, coord.http.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d: %s", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte(`"trace": "`+traceID+`"`)) {
		t.Errorf("submitted status %s does not echo trace %q", raw, traceID)
	}
	st, err := coord.c.Jobs(context.Background())
	if err != nil || len(st) != 1 {
		t.Fatalf("jobs = %v, %v", st, err)
	}
	id := st[0].ID
	if st[0].Trace != traceID {
		t.Errorf("job trace = %q, want %q", st[0].Trace, traceID)
	}

	final := waitDone(t, coord.c, id)
	if final.State != service.StateDone {
		t.Fatalf("job settled as %s: %s", final.State, final.Error)
	}

	// Every worker-side shard job carries a span derived from the trace,
	// and the span is stamped into the shard's journal header on disk.
	ctx := context.Background()
	shardJobs := 0
	for wi, d := range workers {
		jobs, err := d.c.Jobs(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, wj := range jobs {
			shardJobs++
			if !strings.HasPrefix(wj.Trace, traceID+"/s") {
				t.Errorf("worker %d job %s trace = %q, want prefix %q", wi, wj.ID, wj.Trace, traceID+"/s")
			}
			journal := filepath.Join(workerDirs[wi], "job-"+wj.ID+".ckpt.jsonl")
			data, err := os.ReadFile(journal)
			if err != nil {
				t.Errorf("worker %d journal: %v", wi, err)
				continue
			}
			header, _, _ := strings.Cut(string(data), "\n")
			if !strings.Contains(header, `"trace":"`+traceID+`/s`) {
				t.Errorf("worker %d journal header %q lacks span of trace %q", wi, header, traceID)
			}
		}
	}
	if shardJobs < spec.Shards {
		t.Errorf("workers ran %d shard jobs, want at least %d", shardJobs, spec.Shards)
	}

	// Stream events of the finished job all carry the trace.
	events := 0
	if _, err := coord.c.Watch(ctx, id, func(ev service.Event) error {
		events++
		if ev.Trace != traceID {
			return fmt.Errorf("event %d (%s) trace = %q, want %q", events, ev.Kind, ev.Trace, traceID)
		}
		return nil
	}); err != nil {
		t.Errorf("watch: %v", err)
	}
	if events == 0 {
		t.Error("finished job streamed no events")
	}

	// The coordinator's registry absorbed the shard partials' histograms:
	// per-outcome experiment counts must equal the unsharded run's tally,
	// and the shard-duration histogram must have one sample per shard.
	prom := fetchProm(t, coord.http.URL)
	total := 0.0
	for o := 0; o < classify.NumOutcomes; o++ {
		name := classify.Outcome(o).String()
		got, _ := promValue(t, prom, fmt.Sprintf("faultpropd_experiment_seconds_count{outcome=%q}", name))
		if int(got) != local.Tally.Counts[o] {
			t.Errorf("merged histogram count for %s = %v, want %d (unsharded tally)",
				name, got, local.Tally.Counts[o])
		}
		total += got
	}
	if int(total) != spec.Runs {
		t.Errorf("merged histogram total = %v, want %d", total, spec.Runs)
	}
	if n, ok := promValue(t, prom, "faultpropd_shard_seconds_count"); !ok || int(n) != spec.Shards {
		t.Errorf("shard duration samples = %v (present %v), want %d", n, ok, spec.Shards)
	}
}

// TestMetricsEndpointFormats: GET /v1/metrics stays JSON for typed
// clients and serves the Prometheus text form — including the phase and
// queue-wait histograms — on ?format=prometheus or Accept: text/plain.
func TestMetricsEndpointFormats(t *testing.T) {
	d := startDaemon(t, t.TempDir(), service.Config{JobSlots: 1})
	ctx := context.Background()
	st, err := d.c.Submit(ctx, service.JobSpec{App: "LULESH", Scale: "test", Runs: 6, Seed: 11, SampleEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, d.c, st.ID)

	// JSON default (the typed client path) still decodes.
	m, err := d.c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsDone != 1 {
		t.Errorf("metrics JobsDone = %d, want 1", m.JobsDone)
	}

	prom := fetchProm(t, d.http.URL)
	for _, want := range []string{
		`faultpropd_experiment_seconds_bucket{outcome=`,
		`faultpropd_experiment_phase_seconds_bucket{phase="execute"`,
		`faultpropd_experiment_phase_seconds_bucket{phase="inject"`,
		`faultpropd_experiment_phase_seconds_bucket{phase="classify"`,
		`faultpropd_queue_wait_seconds_count`,
		`faultpropd_http_requests_total{method="POST"}`,
		`faultpropd_stream_drops_total`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus output lacks %q", want)
		}
	}
	if n, ok := promValue(t, prom, "faultpropd_queue_wait_seconds_count"); !ok || n < 1 {
		t.Errorf("queue wait samples = %v (present %v), want >= 1", n, ok)
	}
	total := 0.0
	for o := 0; o < classify.NumOutcomes; o++ {
		v, _ := promValue(t, prom, fmt.Sprintf("faultpropd_experiment_seconds_count{outcome=%q}", classify.Outcome(o).String()))
		total += v
	}
	if int(total) != 6 {
		t.Errorf("experiment latency samples = %v, want 6", total)
	}

	// Accept-based negotiation reaches the same renderer.
	req, _ := http.NewRequest(http.MethodGet, d.http.URL+"/v1/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "faultpropd_queue_wait_seconds_count") {
		t.Error("Accept: text/plain did not yield the Prometheus form")
	}

	// The unversioned scrape endpoint carries the registry series too.
	resp, err = http.Get(d.http.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "faultpropd_experiment_phase_seconds_bucket") {
		t.Error("GET /metrics lacks the registry histograms")
	}
}

// slowFirstStream throttles the first event-stream connection through a
// handler: every write on that connection sleeps, so the subscriber's
// hub channel overflows and the daemon truncates it. Loopback socket
// buffers are far larger than any test campaign's event volume, so
// without the throttle a laggard can never form naturally here.
type slowFirstStream struct {
	next      http.Handler
	throttled atomic.Int32
}

func (s *slowFirstStream) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, "/stream") && s.throttled.CompareAndSwap(0, 1) {
		s.next.ServeHTTP(&slowWriter{ResponseWriter: w}, r)
		return
	}
	s.next.ServeHTTP(w, r)
}

type slowWriter struct{ http.ResponseWriter }

func (w *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(5 * time.Millisecond)
	return w.ResponseWriter.Write(p)
}

func (w *slowWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestStreamTruncationAndReconnect is the slow-subscriber E2E test: a
// watcher that cannot keep up with a running job's event stream must be
// cut with an explicit truncated event (not a silent close), the drop
// must land in the stream-drop metric, and the client's Watch must
// reconnect and — thanks to the journal replay on resubscribe — still
// observe every experiment exactly once by ID.
func TestStreamTruncationAndReconnect(t *testing.T) {
	srv, err := service.New(service.Config{
		Dir:           t.TempDir(),
		JobSlots:      1,
		WorkerPool:    2,
		ProgressEvery: 2 * time.Millisecond,
		StreamBuffer:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(&slowFirstStream{next: srv.Handler()})
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = srv.Drain(ctx)
	}()
	c, err := client.New(hs.URL, client.WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	const runs = 400
	ctx := context.Background()
	st, err := c.Submit(ctx, service.JobSpec{App: "LULESH", Scale: "test", Runs: runs, Seed: 7, SampleEvery: 64})
	if err != nil {
		t.Fatal(err)
	}

	truncations := 0
	seen := make(map[int]bool)
	final, err := c.Watch(ctx, st.ID, func(ev service.Event) error {
		switch ev.Kind {
		case service.EventTruncated:
			truncations++
		case service.EventExperiment:
			seen[ev.Experiment.ID] = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if final.State != service.StateDone {
		t.Fatalf("job settled as %s: %s", final.State, final.Error)
	}
	if truncations == 0 {
		t.Error("throttled watcher was never truncated; want an explicit truncated event")
	}
	if len(seen) != runs {
		t.Errorf("watcher observed %d distinct experiments across reconnects, want %d", len(seen), runs)
	}
	if drops := srv.Metrics().StreamDrops; drops < 1 {
		t.Errorf("StreamDrops = %d, want >= 1", drops)
	}
}
