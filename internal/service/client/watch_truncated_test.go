package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// TestWatchReconnectsOnTruncated: a stream the daemon cut with an
// explicit truncated event must reconnect immediately — without spending
// the retry budget reserved for transport failures — and run to the
// terminal event on the new connection. The truncated event itself is
// still delivered to the callback so watchers can count their drops.
func TestWatchReconnectsOnTruncated(t *testing.T) {
	var streams atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/7/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		if streams.Add(1) == 1 {
			// First connection: the watcher "lagged" and is truncated.
			enc.Encode(service.Event{Kind: service.EventState, Job: "7", State: service.StateRunning})
			enc.Encode(service.Event{Kind: service.EventTruncated, Job: "7"})
			return
		}
		// Reconnect: replay an experiment, then finish.
		enc.Encode(service.Event{Kind: service.EventExperiment, Job: "7",
			Experiment: &service.ExperimentEvent{ID: 0, Outcome: "Vanished"}})
		enc.Encode(service.Event{Kind: service.EventResult, Job: "7", State: service.StateDone})
	})
	mux.HandleFunc("GET /v1/jobs/7", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.JobStatus{ID: "7", State: service.StateDone})
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	// WithRetries(0): the reconnect must not need any retry budget.
	c, err := New(hs.URL, WithRetries(0), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	st, err := c.Watch(context.Background(), "7", func(ev service.Event) error {
		kinds = append(kinds, string(ev.Kind))
		return nil
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if st.State != service.StateDone {
		t.Errorf("final state = %s, want done", st.State)
	}
	if n := streams.Load(); n != 2 {
		t.Errorf("stream connections = %d, want 2 (truncation + reconnect)", n)
	}
	got := strings.Join(kinds, ",")
	if got != "state,truncated,experiment,result" {
		t.Errorf("event kinds = %s, want state,truncated,experiment,result", got)
	}
}
