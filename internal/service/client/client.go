// Package client is the typed Go client for faultpropd, the campaign
// service daemon (internal/service). It covers the whole job lifecycle —
// submit, watch the live event stream, cancel, fetch the final result —
// with context cancellation everywhere and bounded retry on transient
// failures of idempotent calls.
//
// The client speaks the versioned /v1 API. Error responses carry a wire
// code that the client maps back to the service sentinels, so
// errors.Is(err, service.ErrJobNotFound) (and the rest) hold across the
// HTTP transport.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/service"
)

// Client talks to one faultpropd instance.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
	tenant  string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times idempotent requests are retried after
// transient failures (connection errors, 5xx). Default 3.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base retry backoff, doubled per attempt. Default
// 100ms.
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithTenant stamps every request with the given tenant identity
// (X-Faultprop-Tenant). The daemon accounts the tenant's submissions
// against its quota and rate limit; without this option, requests are
// charged to the "default" tenant.
func WithTenant(tenant string) Option { return func(c *Client) { c.tenant = tenant } }

// New creates a client for the daemon at base, e.g. "http://127.0.0.1:7207"
// (a bare host:port is given the http scheme).
func New(base string, opts ...Option) (*Client, error) {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("client: base URL: %w", err)
	}
	c := &Client{
		base:    strings.TrimSuffix(u.String(), "/"),
		hc:      &http.Client{},
		retries: 3,
		backoff: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// APIError is a non-2xx response from the daemon. When the daemon sent a
// wire code, Code holds it and Unwrap chains to the matching service
// sentinel — errors.Is(err, service.ErrJobNotFound) works through the
// transport.
type APIError struct {
	Status  int
	Message string
	Code    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: daemon returned %d: %s", e.Status, e.Message)
}

// Unwrap returns the service sentinel for the response's wire code, or
// nil when the daemon sent no (or an unknown) code.
func (e *APIError) Unwrap() error { return service.ErrorForCode(e.Code) }

// retryable reports whether an attempt may be retried: transport errors,
// 5xx responses, and 429 (pressure rejections — full queue, rate limit,
// quota — clear as load drains) are transient; other 4xx are not.
func retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status >= 500 || apiErr.Status == http.StatusTooManyRequests
	}
	return err != nil
}

// do runs one request and decodes a JSON response into out (when non-nil).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.tenant != "" {
		req.Header.Set(service.TenantHeader, c.tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg, Code: e.Code}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// doRetry is do with bounded exponential backoff; only for idempotent
// requests.
func (c *Client) doRetry(ctx context.Context, method, path string, body, out any) error {
	var err error
	for attempt := 0; ; attempt++ {
		if err = c.do(ctx, method, path, body, out); err == nil || !retryable(err) {
			return err
		}
		if attempt >= c.retries {
			return err
		}
		select {
		case <-time.After(c.backoff << attempt):
		case <-ctx.Done():
			return fmt.Errorf("client: %w (last error: %v)", ctx.Err(), err)
		}
	}
}

// Submit queues a new campaign job. Submission is not idempotent, so it is
// never retried; callers that need at-most-once semantics on flaky links
// should list jobs before resubmitting.
func (c *Client) Submit(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.doRetry(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Strata fetches a job's per-stratum vulnerability table: one row per
// instruction-class × execution-phase stratum with its outcome tally,
// vulnerability rate, and confidence-interval half-width. Populated once
// a stratified job is done; empty for non-stratified campaigns (and for
// daemons that predate the "adaptive" capability).
func (c *Client) Strata(ctx context.Context, id string) ([]harness.StratumReport, error) {
	st, err := c.Job(ctx, id)
	if err != nil {
		return nil, err
	}
	return st.Strata, nil
}

// Jobs lists every job the daemon knows.
func (c *Client) Jobs(ctx context.Context) ([]service.JobStatus, error) {
	var list []service.JobStatus
	err := c.doRetry(ctx, http.MethodGet, "/v1/jobs", nil, &list)
	return list, err
}

// Cancel stops a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/cancel", nil, &st)
	return st, err
}

// Result fetches a done job's full campaign result.
func (c *Client) Result(ctx context.Context, id string) (*harness.CampaignResult, error) {
	var res harness.CampaignResult
	if err := c.doRetry(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Metrics fetches the service metrics document.
func (c *Client) Metrics(ctx context.Context) (service.Metrics, error) {
	var m service.Metrics
	err := c.doRetry(ctx, http.MethodGet, "/v1/metrics", nil, &m)
	return m, err
}

// Version fetches the daemon's API version and capability list.
func (c *Client) Version(ctx context.Context) (service.VersionInfo, error) {
	var v service.VersionInfo
	err := c.doRetry(ctx, http.MethodGet, "/v1/version", nil, &v)
	return v, err
}

// Partial fetches a done shard job's mergeable partial aggregate.
func (c *Client) Partial(ctx context.Context, id string) (*harness.PartialResult, error) {
	var part harness.PartialResult
	if err := c.doRetry(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/partial", nil, &part); err != nil {
		return nil, err
	}
	return &part, nil
}

// Workers lists the daemon's registered peer workers.
func (c *Client) Workers(ctx context.Context) ([]service.WorkerInfo, error) {
	var list []service.WorkerInfo
	err := c.doRetry(ctx, http.MethodGet, "/v1/workers", nil, &list)
	return list, err
}

// RegisterWorker adds (or revives) a peer worker on the daemon, making it
// a dispatch target for coordinated (Shards > 1) jobs. An empty name
// defaults to the worker URL's host:port.
func (c *Client) RegisterWorker(ctx context.Context, name, workerURL string) (service.WorkerInfo, error) {
	var info service.WorkerInfo
	err := c.do(ctx, http.MethodPost, "/v1/workers",
		map[string]string{"name": name, "url": workerURL}, &info)
	return info, err
}

// RemoveWorker deregisters a peer worker from the daemon.
func (c *Client) RemoveWorker(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/workers/"+url.PathEscape(name), nil, nil)
}

// Archive lists the daemon's campaign archive: totals plus every entry's
// metadata in archive-time order. Daemons without an archive answer
// service.ErrArchiveDisabled (through the wire code).
func (c *Client) Archive(ctx context.Context) (service.ArchiveList, error) {
	var list service.ArchiveList
	err := c.doRetry(ctx, http.MethodGet, "/v1/archive", nil, &list)
	return list, err
}

// ArchiveEntry fetches one archived campaign by fingerprint (a job's
// JobStatus.Fingerprint): its metadata and full result.
func (c *Client) ArchiveEntry(ctx context.Context, fingerprint string) (service.ArchiveRecord, error) {
	var rec service.ArchiveRecord
	err := c.doRetry(ctx, http.MethodGet, "/v1/archive/"+url.PathEscape(fingerprint), nil, &rec)
	return rec, err
}

// ArchiveSites fetches the per-site vulnerability ranking of one
// archived campaign. Entries archived without site sampling return an
// empty (non-null) ranking.
func (c *Client) ArchiveSites(ctx context.Context, fingerprint string) (service.ArchiveSites, error) {
	var sites service.ArchiveSites
	err := c.doRetry(ctx, http.MethodGet, "/v1/archive/"+url.PathEscape(fingerprint)+"/sites", nil, &sites)
	return sites, err
}

// ArchiveTrends fetches the per-app outcome-rate and FPS-over-time
// series computed over the whole archive.
func (c *Client) ArchiveTrends(ctx context.Context) ([]service.AppTrend, error) {
	var trends []service.AppTrend
	err := c.doRetry(ctx, http.MethodGet, "/v1/archive/trends", nil, &trends)
	return trends, err
}

// errTruncated marks a stream the daemon cut because this watcher lagged
// (Event.Kind "truncated"). The job is still running; Watch reconnects
// immediately — the reconnect's journal replay recovers anything missed.
var errTruncated = errors.New("client: watch: stream truncated by daemon")

// Watch streams a job's events, invoking fn for each one until the job
// reaches a terminal state, ctx is cancelled, or fn returns an error
// (which Watch returns). A dropped connection before the terminal event
// reconnects with the client's retry budget; a stream the daemon
// truncated for lagging reconnects immediately without consuming it. The
// server replays history on reconnect, so fn may observe duplicate state
// events (experiment events dedup server-side per connection, so fn
// should dedup by experiment ID across reconnects if it must count them
// exactly once). Watch returns the job's terminal status.
func (c *Client) Watch(ctx context.Context, id string, fn func(service.Event) error) (service.JobStatus, error) {
	attempt := 0
	for {
		terminal, err := c.watchOnce(ctx, id, fn)
		if errors.Is(err, errTruncated) && ctx.Err() == nil {
			continue
		}
		if terminal || !retryable(err) {
			if err != nil {
				return service.JobStatus{}, err
			}
			return c.Job(ctx, id)
		}
		if attempt >= c.retries {
			return service.JobStatus{}, fmt.Errorf("client: watch job %s: %w", id, err)
		}
		select {
		case <-time.After(c.backoff << attempt):
		case <-ctx.Done():
			return service.JobStatus{}, ctx.Err()
		}
		attempt++
	}
}

// watchOnce runs one streaming connection. terminal reports whether a
// terminal event arrived (the stream completed its job).
func (c *Client) watchOnce(ctx context.Context, id string, fn func(service.Event) error) (terminal bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/stream", nil)
	if err != nil {
		return false, fmt.Errorf("client: %w", err)
	}
	if c.tenant != "" {
		req.Header.Set(service.TenantHeader, c.tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, fmt.Errorf("client: watch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return false, &APIError{Status: resp.StatusCode, Message: msg, Code: e.Code}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return false, fmt.Errorf("client: watch: decode event: %w", err)
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return true, err
			}
		}
		if ev.Kind == service.EventTruncated {
			return false, errTruncated
		}
		if ev.State.Terminal() {
			return true, nil
		}
	}
	if err := sc.Err(); err != nil {
		return false, fmt.Errorf("client: watch: %w", err)
	}
	// EOF without a terminal event: the connection dropped mid-stream.
	return false, fmt.Errorf("client: watch: stream ended before job %s settled", id)
}

// Run is the full lifecycle in one call: submit the spec, watch its stream
// (fn may be nil), and fetch the final result. A cancelled ctx leaves the
// job running on the daemon — cancel it explicitly for teardown. A job
// that settles as failed or cancelled returns an error carrying the
// terminal status.
func (c *Client) Run(ctx context.Context, spec service.JobSpec, fn func(service.Event) error) (*harness.CampaignResult, error) {
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	final, err := c.Watch(ctx, st.ID, fn)
	if err != nil {
		return nil, err
	}
	if final.State != service.StateDone {
		return nil, fmt.Errorf("client: job %s settled as %s: %s", st.ID, final.State, final.Error)
	}
	return c.Result(ctx, st.ID)
}
