package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// TestRetryTransient5xx: idempotent requests ride out transient 5xx and
// succeed once the daemon recovers.
func TestRetryTransient5xx(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(service.JobStatus{ID: "7", State: service.StateDone})
	}))
	defer hs.Close()
	c, err := New(hs.URL, WithRetries(3), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Job(context.Background(), "7")
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if st.ID != "7" || calls.Load() != 3 {
		t.Errorf("got %+v after %d calls, want ID 7 after 3", st, calls.Load())
	}
}

// TestNoRetryOn4xx: client errors are not retried and surface as APIError.
func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "no such job"})
	}))
	defer hs.Close()
	c, err := New(hs.URL, WithRetries(3), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Job(context.Background(), "x")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("got %v, want 404 APIError", err)
	}
	if calls.Load() != 1 {
		t.Errorf("4xx was retried %d times", calls.Load()-1)
	}
}

// TestRetryBudgetExhausted: a daemon that never recovers fails after the
// configured attempts.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer hs.Close()
	c, err := New(hs.URL, WithRetries(2), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Job(context.Background(), "x"); err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if calls.Load() != 3 {
		t.Errorf("made %d attempts, want 3 (1 + 2 retries)", calls.Load())
	}
}

// TestSubmitNotRetried: submission is not idempotent, so even a 5xx must
// not be resubmitted.
func TestSubmitNotRetried(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "hiccup", http.StatusInternalServerError)
	}))
	defer hs.Close()
	c, err := New(hs.URL, WithRetries(5), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(context.Background(), service.JobSpec{App: "LULESH", Runs: 1}); err == nil {
		t.Fatal("failed submit reported success")
	}
	if calls.Load() != 1 {
		t.Errorf("submit was sent %d times", calls.Load())
	}
}

// TestWatchContextCancellation: a cancelled context ends a watch promptly
// with the context's error.
func TestWatchContextCancellation(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		// Hold the stream open without a terminal event.
		<-r.Context().Done()
	}))
	defer hs.Close()
	c, err := New(hs.URL, WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := c.Watch(ctx, "1", nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled watch reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch did not return after context cancellation")
	}
}

// TestBareHostPort: a scheme-less address gets http.
func TestBareHostPort(t *testing.T) {
	c, err := New("127.0.0.1:7207")
	if err != nil {
		t.Fatal(err)
	}
	if c.base != "http://127.0.0.1:7207" {
		t.Errorf("base = %q", c.base)
	}
}
