package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestPeerRetryCancelledContext is the regression test for doRetry's
// cancellation handling: when the caller's context dies while doRetry is
// backing off after a transient failure, the returned error must surface
// the cancellation (errors.Is(err, context.Canceled)), not the stale
// transport error from the last attempt — and no further attempts may be
// made. Before the fix, doRetry returned the old 5xx error on ctx.Done,
// so a deliberate coordinator teardown was indistinguishable from a
// worker failure.
func TestPeerRetryCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var requests atomic.Int32
	ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		// The caller gives up while the client is backing off.
		cancel()
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ws.Close()

	p := newPeerClient()
	err := p.doRetry(ctx, http.MethodGet, ws.URL, "/v1/jobs/1", nil, nil)
	if err == nil {
		t.Fatal("doRetry returned nil; want a cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("doRetry error = %v; want errors.Is(err, context.Canceled)", err)
	}
	if n := requests.Load(); n != 1 {
		t.Errorf("worker saw %d requests after cancellation; want exactly 1", n)
	}
}

// TestRetryablePeerContextErrors: context errors are never retryable —
// they mean the caller is done, not that the worker is unhealthy.
func TestRetryablePeerContextErrors(t *testing.T) {
	for _, err := range []error{context.Canceled, context.DeadlineExceeded} {
		if retryablePeer(err) {
			t.Errorf("retryablePeer(%v) = true; want false", err)
		}
	}
	if !retryablePeer(&peerError{status: 503, message: "busy"}) {
		t.Error("retryablePeer(503) = false; want true")
	}
	if retryablePeer(&peerError{status: 404, message: "nope"}) {
		t.Error("retryablePeer(404) = true; want false")
	}
}

// TestPeerDeadlineSurfaces: a deadline expiring mid-backoff behaves like
// a cancel — the deadline error is what comes back.
func TestPeerDeadlineSurfaces(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer ws.Close()

	p := newPeerClient()
	err := p.doRetry(ctx, http.MethodGet, ws.URL, "/v1/jobs/1", nil, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("doRetry error = %v; want errors.Is(err, context.DeadlineExceeded)", err)
	}
}
