package service

import (
	"testing"

	"repro/internal/obs"
)

// TestHubTruncatesLaggard: a subscriber whose channel fills is dropped
// with its truncated flag set and counted in the drop metric, while a
// keeping-up subscriber and the hub itself are unaffected. Before the
// explicit flag, a dropped laggard saw exactly what a graceful close
// looks like and clients could not tell "job finished" from "you lagged".
func TestHubTruncatesLaggard(t *testing.T) {
	drops := &obs.Counter{}
	h := newHub("tr-1", 2, drops)

	laggard, cancelLaggard := h.subscribe()
	defer cancelLaggard()
	reader, cancelReader := h.subscribe()
	defer cancelReader()

	// Fill the laggard's buffer (2), then one more publish overflows it.
	for i := 0; i < 3; i++ {
		h.publish(Event{Kind: EventProgress, Job: "1"})
		// Keep the reader drained so only the laggard overflows.
		e := <-reader.ch
		if e.Trace != "tr-1" {
			t.Fatalf("event trace = %q, want tr-1", e.Trace)
		}
		if e.Seq != uint64(i+1) {
			t.Fatalf("event seq = %d, want %d", e.Seq, i+1)
		}
	}

	// The laggard still has its 2 buffered events, then a closed channel
	// with the truncated flag up.
	for i := 0; i < 2; i++ {
		if _, ok := <-laggard.ch; !ok {
			t.Fatalf("laggard channel closed after %d events, want 2 buffered first", i)
		}
	}
	if _, ok := <-laggard.ch; ok {
		t.Fatal("laggard channel still open after overflow")
	}
	if !laggard.truncated {
		t.Error("laggard.truncated = false after overflow drop")
	}
	if got := drops.Value(); got != 1 {
		t.Errorf("drop counter = %d, want 1", got)
	}

	// The surviving subscriber keeps receiving, and a graceful close is
	// distinguishable: channel closed, truncated false.
	h.publish(Event{Kind: EventProgress, Job: "1"})
	if _, ok := <-reader.ch; !ok {
		t.Fatal("reader lost its subscription when the laggard was dropped")
	}
	h.close()
	if _, ok := <-reader.ch; ok {
		t.Fatal("reader channel open after hub close")
	}
	if reader.truncated {
		t.Error("reader.truncated = true on graceful close")
	}
	if got := drops.Value(); got != 1 {
		t.Errorf("drop counter after graceful close = %d, want still 1", got)
	}
}
