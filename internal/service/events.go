package service

import "sync"

// hub fans one job's event stream out to any number of subscribers. Events
// are delivered best-effort: a subscriber that falls subscriberBuffer
// events behind is disconnected rather than allowed to stall the job
// (stream handlers then report the job's current status as a final event,
// and the durable truth is always fetchable from the store). The hub closes
// when the job reaches a terminal state, which closes every subscriber
// channel after its buffered events drain.
type hub struct {
	mu     sync.Mutex
	seq    uint64
	subs   map[chan Event]struct{}
	closed bool
}

const subscriberBuffer = 256

func newHub() *hub {
	return &hub{subs: make(map[chan Event]struct{})}
}

// subscribe registers a new subscriber. The returned cancel is idempotent
// and safe to call after the hub closed.
func (h *hub) subscribe() (<-chan Event, func()) {
	ch := make(chan Event, subscriberBuffer)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(ch)
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			h.mu.Lock()
			defer h.mu.Unlock()
			if _, ok := h.subs[ch]; ok {
				delete(h.subs, ch)
				close(ch)
			}
		})
	}
}

// publish stamps the event's sequence number and delivers it to every
// subscriber that has room, dropping laggards.
func (h *hub) publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	e.Seq = h.seq
	for ch := range h.subs {
		select {
		case ch <- e:
		default:
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// close ends the stream: every subscriber channel closes once its buffered
// events are drained, and future publishes are dropped.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}
