package service

import (
	"sync"

	"repro/internal/obs"
)

// hub fans one job's event stream out to any number of subscribers. Events
// are delivered best-effort: a subscriber that falls buffer-size events
// behind is disconnected rather than allowed to stall the job. A dropped
// subscriber's channel closes exactly like a graceful close, so the
// subscriber struct carries an explicit truncated flag — stream handlers
// use it to end the stream with EventTruncated instead of a misleading
// non-terminal "final" status, and clients reconnect (the journal replay
// makes the resumed stream lossless). The hub closes when the job reaches
// a terminal state, which closes every subscriber channel after its
// buffered events drain.
type hub struct {
	mu     sync.Mutex
	seq    uint64
	trace  string
	buffer int
	subs   map[*subscriber]struct{}
	closed bool
	// drops counts subscribers disconnected for lagging (the daemon-wide
	// stream-drop metric; nil-safe).
	drops *obs.Counter
}

// subscriber is one attached stream. truncated is written under the hub
// lock strictly before ch is closed, so a reader that observed the close
// may read it without further synchronization.
type subscriber struct {
	ch        chan Event
	truncated bool
}

const defaultSubscriberBuffer = 256

// newHub creates the event hub for one job. Every published event is
// stamped with the job's trace ID; laggard drops are counted into drops.
func newHub(trace string, buffer int, drops *obs.Counter) *hub {
	if buffer <= 0 {
		buffer = defaultSubscriberBuffer
	}
	return &hub{subs: make(map[*subscriber]struct{}), trace: trace, buffer: buffer, drops: drops}
}

// subscribe registers a new subscriber. The returned cancel is idempotent
// and safe to call after the hub closed.
func (h *hub) subscribe() (*subscriber, func()) {
	sub := &subscriber{ch: make(chan Event, h.buffer)}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(sub.ch)
		return sub, func() {}
	}
	h.subs[sub] = struct{}{}
	var once sync.Once
	return sub, func() {
		once.Do(func() {
			h.mu.Lock()
			defer h.mu.Unlock()
			if _, ok := h.subs[sub]; ok {
				delete(h.subs, sub)
				close(sub.ch)
			}
		})
	}
}

// publish stamps the event's sequence number and trace ID and delivers it
// to every subscriber that has room. A laggard is marked truncated,
// counted, and disconnected.
func (h *hub) publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	e.Seq = h.seq
	if e.Trace == "" {
		e.Trace = h.trace
	}
	for sub := range h.subs {
		select {
		case sub.ch <- e:
		default:
			sub.truncated = true
			delete(h.subs, sub)
			close(sub.ch)
			h.drops.Inc()
		}
	}
}

// close ends the stream: every subscriber channel closes once its buffered
// events are drained, and future publishes are dropped.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for sub := range h.subs {
		delete(h.subs, sub)
		close(sub.ch)
	}
}
