package service

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// TenantHeader carries the submitting tenant's identity. Absent or empty,
// the submission is accounted to the "default" tenant. Tenancy is an
// accounting and admission boundary, not an authentication one: the
// daemon trusts the header the way it trusts the rest of its API.
const TenantHeader = "X-Faultprop-Tenant"

// DefaultTenant is the accounting bucket of submissions that carry no
// tenant header.
const DefaultTenant = "default"

// cleanTenant normalizes a tenant identity from the wire: trimmed,
// length-capped, empty mapped to DefaultTenant.
func cleanTenant(t string) string {
	t = strings.TrimSpace(t)
	if t == "" {
		return DefaultTenant
	}
	if len(t) > 64 {
		t = t[:64]
	}
	return t
}

// admission is the per-tenant submission gate: a token-bucket rate limit
// (steady rate plus burst headroom) applied at submit time. Quotas on
// concurrently active jobs are enforced separately by the server, which
// counts live jobs per tenant — that count survives restarts for free
// because jobs are persisted.
type admission struct {
	rate  float64 // tokens per second (<= 0: unlimited)
	burst float64 // bucket capacity
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

// bucket is one tenant's token bucket, refilled lazily on use.
type bucket struct {
	tokens float64
	last   time.Time
}

// newAdmission builds the gate. rate <= 0 disables rate limiting; burst
// defaults to max(rate, 1) so a fresh tenant can always submit at least
// once.
func newAdmission(rate float64, burst int) *admission {
	b := float64(burst)
	if b <= 0 {
		b = rate
	}
	if b < 1 {
		b = 1
	}
	return &admission{
		rate:    rate,
		burst:   b,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// allow spends one token from the tenant's bucket, or rejects with
// ErrRateLimited when the bucket is dry.
func (a *admission) allow(tenant string) error {
	if a == nil || a.rate <= 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	bk := a.buckets[tenant]
	if bk == nil {
		bk = &bucket{tokens: a.burst, last: now}
		a.buckets[tenant] = bk
	}
	if dt := now.Sub(bk.last).Seconds(); dt > 0 {
		bk.tokens += dt * a.rate
		if bk.tokens > a.burst {
			bk.tokens = a.burst
		}
	}
	bk.last = now
	if bk.tokens < 1 {
		return fmt.Errorf("%w: tenant %q exceeds %g submissions/sec (burst %g)",
			ErrRateLimited, tenant, a.rate, a.burst)
	}
	bk.tokens--
	return nil
}

// activeFor counts a tenant's live (non-terminal) jobs — the quantity the
// per-tenant quota bounds. Shard jobs dispatched by a coordinator are
// excluded: they are internal decomposition, already accounted through
// their parent job.
func (s *Server) activeFor(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if !j.status.State.Terminal() && j.status.Tenant == tenant && j.status.Spec.Shard == nil {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// admit runs the tenant admission checks for one submission: token-bucket
// rate first (cheap, no lock on the job table), then the active-job
// quota. Both rejections classify Transient — they clear as load drains —
// and surface distinct wire codes.
func (s *Server) admit(tenant string) error {
	if err := s.admission.allow(tenant); err != nil {
		return err
	}
	if q := s.cfg.TenantQuota; q > 0 {
		if active := s.activeFor(tenant); active >= q {
			return fmt.Errorf("%w: tenant %q has %d active jobs (quota %d)",
				ErrQuotaExceeded, tenant, active, q)
		}
	}
	return nil
}
