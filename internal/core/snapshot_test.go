package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/transform"
	"repro/internal/vm"
)

// buildCrossCutProg builds a two-rank program with a point-to-point message
// that stays in flight across several collective rounds: rank 0 sends
// before the first barrier, rank 1 receives only after the timestep loop.
// Snapshots taken at the intermediate quiesce points must therefore carry
// the queued message through the cut.
func buildCrossCutProg(iters int64) *ir.Program {
	b := ir.NewBuilder()
	acc := b.Global("acc", 16)
	box := b.Global("box", 4)
	sendSlot := b.Global("send", 1)
	redSlot := b.Global("red", 1)
	f := b.Func("main", 0, 0)
	rank := f.MPIRank()
	i := f.NewReg()
	s := f.NewReg()
	f.If(ir.R(f.ICmp(ir.ICmpEQ, ir.R(rank), ir.ImmI(0))), func() {
		f.For(i, ir.ImmI(0), ir.ImmI(4), func() {
			f.St(ir.R(f.Mul(ir.R(i), ir.ImmI(7))), ir.ImmI(box), ir.R(i))
		})
		f.MPISend(ir.ImmI(box), ir.ImmI(4), ir.ImmI(1), ir.ImmI(42))
	})
	f.MPIBarrier()
	f.For(s, ir.ImmI(0), ir.ImmI(iters), func() {
		f.Tick(ir.R(s))
		f.For(i, ir.ImmI(0), ir.ImmI(16), func() {
			old := f.Ld(ir.ImmI(acc), ir.R(i))
			f.St(ir.R(f.FAdd(ir.R(old), ir.ImmF(1.5))), ir.ImmI(acc), ir.R(i))
		})
		sum := f.CF(0)
		f.For(i, ir.ImmI(0), ir.ImmI(16), func() {
			f.Op3(ir.FAdd, sum, ir.R(sum), ir.R(f.Ld(ir.ImmI(acc), ir.R(i))))
		})
		f.Store(ir.R(sum), ir.ImmI(sendSlot))
		f.MPIAllreduceF(ir.ImmI(sendSlot), ir.ImmI(redSlot), ir.ImmI(1), ir.ReduceSum)
	})
	f.If(ir.R(f.ICmp(ir.ICmpEQ, ir.R(rank), ir.ImmI(1))), func() {
		f.MPIRecv(ir.ImmI(box), ir.ImmI(4), ir.ImmI(0), ir.ImmI(42))
	})
	f.For(i, ir.ImmI(0), ir.ImmI(4), func() {
		f.OutputI(ir.R(f.Ld(ir.ImmI(box), ir.R(i))))
	})
	f.OutputF(ir.R(f.Load(ir.ImmI(redSlot))))
	f.Iterations(ir.ImmI(iters))
	f.Ret()
	return b.MustBuild()
}

// condense projects a RunOutcome onto the observables campaigns consume.
// Per-rank state of casualty ranks is excluded, exactly as the harness
// excludes it: the cycle at which a rank notices the job-wide abort flag
// depends on goroutine scheduling, so only the casualty classification
// itself is deterministic there.
func condense(o RunOutcome) map[string]any {
	ranks := make([]map[string]any, len(o.Ranks))
	for i, rr := range o.Ranks {
		ranks[i] = map[string]any{"casualty": rr.Casualty}
		if rr.Casualty {
			continue
		}
		ranks[i]["trap"] = trapKind(rr.Err)
		ranks[i]["failed"] = rr.Err != nil
		ranks[i]["outputs"] = rr.Outputs
		ranks[i]["cycles"] = rr.Cycles
		ranks[i]["sites"] = rr.Sites
		ranks[i]["inj"] = rr.InjCycles
		ranks[i]["iters"] = rr.Iterations
		ranks[i]["maxCML"] = rr.MaxCML
		ranks[i]["finalCML"] = rr.FinalCML
		ranks[i]["ever"] = rr.Ever
		ranks[i]["alloc"] = rr.AllocatedWords
		ranks[i]["points"] = rr.Points
		ranks[i]["contam"] = rr.Contaminated
		ranks[i]["first"] = rr.FirstContam
		ranks[i]["structCML"] = rr.StructCML
	}
	return map[string]any{
		"ranks":   ranks,
		"trap":    trapKind(o.Err),
		"failed":  o.Err != nil,
		"outputs": o.Outputs,
		"cycles":  o.Cycles,
		"iters":   o.Iterations,
		"ever":    o.Ever,
		"maxCML":  o.MaxCMLTotal,
		"alloc":   o.AllocatedTotal,
		"spread":  o.Spread.Series(),
		"struct":  o.StructCML,
	}
}

func trapKind(err error) vm.TrapKind {
	if t := vm.AsTrap(err); t != nil {
		return t.Kind
	}
	return vm.TrapKind(-1)
}

// TestGoldenCaptureResumeByteIdentical is the core-level differential
// property: for every captured cut and a spread of fault plans usable from
// it, RunResumed must equal Run in every deterministic observable — with an
// in-flight point-to-point message crossing the cuts. The short MPI timeout
// keeps plans that desynchronize the collective schedule (a corrupted trip
// count making one rank exit early) from stalling the test; the timeout
// outcome itself is deterministic, so it still must match across modes.
func TestGoldenCaptureResumeByteIdentical(t *testing.T) {
	prog := buildCrossCutProg(8)
	inst, err := transform.Instrument(prog, transform.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rcfg := RunConfig{Ranks: 2, SampleEvery: 8, Timeout: 2 * time.Second}

	golden, cuts := RunGoldenProfile(inst, rcfg)
	if golden.Err != nil {
		t.Fatal(golden.Err)
	}
	if len(cuts) < 3 {
		t.Fatalf("expected several quiesce points, got %d", len(cuts))
	}
	for i := 1; i < len(cuts); i++ {
		for r := range cuts[i].Sites {
			if cuts[i].Sites[r] < cuts[i-1].Sites[r] {
				t.Fatalf("cut %d rank %d sites %d < cut %d's %d",
					i, r, cuts[i].Sites[r], i-1, cuts[i-1].Sites[r])
			}
		}
	}

	pick := []int{0, len(cuts) / 2, len(cuts) - 1}
	seqs := make([]uint64, 0, len(pick))
	for _, i := range pick {
		seqs = append(seqs, cuts[i].Seq)
	}
	capOut, snaps := RunGoldenCapture(inst, rcfg, seqs)
	if capOut.Err != nil {
		t.Fatal(capOut.Err)
	}
	if len(snaps) != len(seqs) {
		t.Fatalf("captured %d of %d cuts", len(snaps), len(seqs))
	}
	for i, snap := range snaps {
		if want := cuts[pick[i]].Sites; !reflect.DeepEqual(snap.Cut.Sites, want) {
			t.Fatalf("capture at seq %d saw sites %v, profile saw %v",
				snap.Cut.Seq, snap.Cut.Sites, want)
		}
	}

	total := golden.SiteCounts()
	cycleLimit := golden.Cycles * 4
	checked := 0
	for _, snap := range snaps {
		for rank := 0; rank < 2; rank++ {
			base := snap.Cut.Sites[rank]
			if base >= total[rank] {
				continue
			}
			for k := uint64(0); k < 2; k++ {
				site := base + (2*k+1)*(total[rank]-base)/4
				plan := inject.Plan{Faults: []inject.Fault{{Rank: rank, Site: site, Bit: uint(11 + 7*k)}}}
				if !snap.Usable(plan) {
					t.Fatalf("cut %d not usable for its own site range (rank %d site %d)", snap.Cut.Seq, rank, site)
				}
				ecfg := rcfg
				ecfg.CycleLimit = cycleLimit
				ecfg.Plan = plan
				want := condense(Run(inst, ecfg))
				got := condense(RunResumed(inst, ecfg, snap))
				if !reflect.DeepEqual(got, want) {
					t.Errorf("cut %d, fault %v: resumed run diverged\n got: %v\nwant: %v",
						snap.Cut.Seq, plan.Faults[0], got, want)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no (cut, fault) pairs checked")
	}

	// Fault-free resume from the last cut reproduces the golden run.
	wantGolden := condense(Run(inst, rcfg))
	gotGolden := condense(RunResumed(inst, rcfg, snaps[len(snaps)-1]))
	if !reflect.DeepEqual(gotGolden, wantGolden) {
		t.Error("fault-free resume diverged from golden")
	}
}

// TestResumeWithReuseMatchesFresh checks the pooled path: resuming through
// a Reuse bundle dirtied by prior unrelated runs must equal a fresh-state
// resume.
func TestResumeWithReuseMatchesFresh(t *testing.T) {
	prog := buildCrossCutProg(6)
	inst, err := transform.Instrument(prog, transform.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rcfg := RunConfig{Ranks: 2, SampleEvery: 4, Timeout: 2 * time.Second}
	golden, cuts := RunGoldenProfile(inst, rcfg)
	if golden.Err != nil || len(cuts) == 0 {
		t.Fatalf("profile: err=%v cuts=%d", golden.Err, len(cuts))
	}
	_, snaps := RunGoldenCapture(inst, rcfg, []uint64{cuts[len(cuts)/2].Seq})
	if len(snaps) != 1 {
		t.Fatalf("captured %d snapshots", len(snaps))
	}
	snap := snaps[0]
	total := golden.SiteCounts()
	plan := inject.Plan{Faults: []inject.Fault{{
		Rank: 0, Site: snap.Cut.Sites[0] + (total[0]-snap.Cut.Sites[0])/2, Bit: 17,
	}}}
	if !snap.Usable(plan) {
		t.Fatal("plan not usable from the midpoint cut")
	}
	ecfg := rcfg
	ecfg.CycleLimit = golden.Cycles * 4
	ecfg.Plan = plan
	want := condense(RunResumed(inst, ecfg, snap))

	reuse := NewReuse(2)
	dirty := rcfg
	dirty.Reuse = reuse
	dirty.Plan = inject.Plan{Faults: []inject.Fault{{Rank: 1, Site: 0, Bit: 60}}}
	dirty.CycleLimit = golden.Cycles * 4
	for i := 0; i < 2; i++ {
		Run(inst, dirty) // dirty the pooled state, possibly crashing ranks
	}
	pooled := ecfg
	pooled.Reuse = reuse
	for i := 0; i < 2; i++ {
		got := condense(RunResumed(inst, pooled, snap))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("pooled resume %d diverged from fresh resume", i)
		}
	}
}
