package core

import (
	"sort"
	"sync"

	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/mpi"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Snapshot-fork orchestration. A campaign runs the golden execution twice
// up front: once with a profiling hook that maps each quiesce point to the
// per-rank dynamic site counts reached there (RunGoldenProfile), and — once
// the campaign has chosen which cuts pay off for its fault plans — once
// more with a capture hook that records full job state at the chosen cuts
// (RunGoldenCapture). Experiments whose faults all lie at or after a
// captured cut then fork from it via RunResumed instead of re-executing
// the clean prefix.
//
// Multi-rank capture uses a park-and-capture protocol: quiesce points fire
// on every rank at the same collective round, each rank snapshots its own
// VM and recorder at the hook (no cross-goroutine reads), then parks; the
// last rank to park is the only runner left, captures the message-passing
// world, and releases the others. A rank that dies instead of parking
// kills the job, whose done channel unblocks any parked sibling.

// SiteCut maps one quiesce point of a golden execution to the per-rank
// dynamic site counts reached there: Sites[r] is the first site index of
// rank r that has NOT yet executed at the cut.
type SiteCut struct {
	Seq   uint64
	Sites []uint64
}

// Usable reports whether every fault of the plan lies at or after the cut,
// i.e. whether an experiment with this plan may fork from a snapshot taken
// there.
func (c SiteCut) Usable(plan inject.Plan) bool {
	for _, f := range plan.Faults {
		if f.Rank < 0 || f.Rank >= len(c.Sites) || c.Sites[f.Rank] > f.Site {
			return false
		}
	}
	return true
}

// CampaignSnapshot is the full state of a job at one quiesce cut: every
// rank's VM and trace recorder plus the message-passing world. One
// snapshot forks any number of experiments.
type CampaignSnapshot struct {
	Cut      SiteCut
	vms      []*vm.Snapshot
	recs     []*trace.RecorderSnap
	world    *mpi.WorldSnap
	captured bool
}

// Usable reports whether an experiment with this plan may fork from the
// snapshot.
func (s *CampaignSnapshot) Usable(plan inject.Plan) bool {
	return s != nil && s.captured && s.Cut.Usable(plan)
}

// profileHook records the site count at each quiesce point of one rank.
type profileHook struct {
	sites []uint64
}

func (p *profileHook) Quiesce(v *vm.VM, seq uint64) {
	p.sites = append(p.sites, v.Sites())
}

// RunGoldenProfile is Run for a fault-free golden execution that also
// returns the quiesce-point profile. The cuts are nil when the golden run
// fails (a broken program) — callers fall back to re-execution mode.
func RunGoldenProfile(prog *ir.Program, cfg RunConfig) (RunOutcome, []SiteCut) {
	ranks := cfg.Ranks
	if ranks <= 0 {
		ranks = 1
	}
	profs := make([]*profileHook, ranks)
	hooks := make([]vm.QuiesceHook, ranks)
	for r := range hooks {
		profs[r] = &profileHook{}
		hooks[r] = profs[r]
	}
	out := runWith(prog, cfg, extras{hooks: hooks})
	if out.Err != nil {
		return out, nil
	}
	// Every rank passes the same collective rounds, so the per-rank seq
	// sequences agree in length; take the min defensively.
	n := len(profs[0].sites)
	for _, p := range profs {
		n = min(n, len(p.sites))
	}
	cuts := make([]SiteCut, n)
	for s := range cuts {
		cut := SiteCut{Seq: uint64(s), Sites: make([]uint64, ranks)}
		for r, p := range profs {
			cut.Sites[r] = p.sites[s]
		}
		cuts[s] = cut
	}
	return out, cuts
}

// RunGoldenSiteClasses is Run for a fault-free golden execution that also
// records, per rank, the injection class of every dynamic site (one
// ir.Class byte per site, indexed by site number) and the static fim_inj
// ordinal the transform stamped on it (one int32 per site). It is the
// profiling pass behind stratified campaigns and per-site analytics: the
// class arrays map any planned (rank, site) fault to its instruction-class
// stratum, and the static arrays map it to its static injection site.
// Observation forces the full interpreter, so this run is slower than a
// plain golden run; the arrays are nil when the golden run fails.
func RunGoldenSiteClasses(prog *ir.Program, cfg RunConfig) (RunOutcome, [][]byte, [][]int32) {
	ranks := cfg.Ranks
	if ranks <= 0 {
		ranks = 1
	}
	classes := make([][]byte, ranks)
	statics := make([][]int32, ranks)
	observers := make([]vm.SiteObserver, ranks)
	for r := range observers {
		r := r
		observers[r] = func(site uint64, static int32, class ir.Class) {
			// Sites arrive in order; append lands the entry at index site.
			classes[r] = append(classes[r], byte(class))
			statics[r] = append(statics[r], static)
		}
	}
	out := runWith(prog, cfg, extras{observers: observers})
	if out.Err != nil {
		return out, nil, nil
	}
	return out, classes, statics
}

// capturer coordinates park-and-capture across the ranks of one golden
// capture run.
type capturer struct {
	job  *mpi.Job
	dead <-chan struct{}

	want  map[uint64]*CampaignSnapshot
	ranks int

	mu      sync.Mutex
	parked  int
	release chan struct{}
}

func (c *capturer) bind(j *mpi.Job) {
	c.job = j
	c.dead = j.Done()
}

// park blocks the calling rank until every rank of the job has parked at
// the cut; the last parker captures the world state while it is the only
// runner, then releases everyone.
func (c *capturer) park(cs *CampaignSnapshot) {
	c.mu.Lock()
	c.parked++
	if c.parked == c.ranks {
		cs.world = c.job.SnapshotWorld(cs.world)
		cs.captured = true
		c.parked = 0
		close(c.release)
		c.release = make(chan struct{})
		c.mu.Unlock()
		return
	}
	ch := c.release
	c.mu.Unlock()
	select {
	case <-ch:
	case <-c.dead:
		// A sibling died before parking; the job is going down. Returning
		// lets this rank run into the abort flag and stop.
	}
}

// rankCapture is one rank's capture hook.
type rankCapture struct {
	c    *capturer
	rank int
}

func (h *rankCapture) Quiesce(v *vm.VM, seq uint64) {
	cs, ok := h.c.want[seq]
	if !ok {
		return
	}
	cs.vms[h.rank] = v.Snapshot(cs.vms[h.rank])
	if rec, ok := v.Tracer().(*trace.Recorder); ok {
		cs.recs[h.rank] = rec.Snapshot(cs.recs[h.rank])
	}
	cs.Cut.Sites[h.rank] = v.Sites()
	h.c.park(cs)
}

// RunGoldenCapture re-executes the golden run and captures full campaign
// snapshots at the given quiesce seqs (as reported by RunGoldenProfile).
// It returns the snapshots actually captured, ordered by seq; seqs past
// the end of the execution are silently dropped.
func RunGoldenCapture(prog *ir.Program, cfg RunConfig, seqs []uint64) (RunOutcome, []*CampaignSnapshot) {
	ranks := cfg.Ranks
	if ranks <= 0 {
		ranks = 1
	}
	want := make(map[uint64]*CampaignSnapshot, len(seqs))
	snaps := make([]*CampaignSnapshot, 0, len(seqs))
	for _, s := range seqs {
		if _, dup := want[s]; dup {
			continue
		}
		var cs *CampaignSnapshot
		if cfg.Reuse != nil {
			// Pooled shells carry the backing buffers of retired captures;
			// vm/trace/mpi Snapshot() overwrite them in place.
			cs = cfg.Reuse.takeSnapshotShell(s, ranks)
		} else {
			cs = &CampaignSnapshot{
				Cut:  SiteCut{Seq: s, Sites: make([]uint64, ranks)},
				vms:  make([]*vm.Snapshot, ranks),
				recs: make([]*trace.RecorderSnap, ranks),
			}
		}
		want[s] = cs
		snaps = append(snaps, cs)
	}
	c := &capturer{want: want, ranks: ranks, release: make(chan struct{})}
	hooks := make([]vm.QuiesceHook, ranks)
	for r := range hooks {
		hooks[r] = &rankCapture{c: c, rank: r}
	}
	out := runWith(prog, cfg, extras{hooks: hooks, onJob: c.bind})
	kept := snaps[:0]
	for _, cs := range snaps {
		if cs.captured {
			kept = append(kept, cs)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Cut.Seq < kept[j].Cut.Seq })
	return out, kept
}
