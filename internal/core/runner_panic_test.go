package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// brokenProgram hand-assembles a Program that bypasses builder validation:
// its single instruction writes register 5 of a 1-register file, which
// makes the VM index out of range and panic.
func brokenProgram() *ir.Program {
	fn := &ir.Func{
		Name:    "main",
		NumRegs: 1,
		Code: []ir.Instr{
			{Op: ir.Add, Dst: 5, A: ir.ImmI(1), B: ir.ImmI(2)},
			{Op: ir.Ret},
		},
	}
	return &ir.Program{
		Funcs:  []*ir.Func{fn},
		ByName: map[string]int{"main": 0},
	}
}

func TestRunContainsRankPanic(t *testing.T) {
	// An interpreter panic in one rank must surface as that rank's error —
	// and the job's root cause — instead of crashing the process.
	out := Run(brokenProgram(), RunConfig{Ranks: 2})
	if out.Err == nil {
		t.Fatal("panicking program reported no error")
	}
	if !strings.Contains(out.Err.Error(), "panic") {
		t.Fatalf("root cause does not mention the panic: %v", out.Err)
	}
	if out.Ranks[0].Err == nil {
		t.Fatal("panicking rank has no error")
	}
}
