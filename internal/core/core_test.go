package core

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/transform"
	"repro/internal/vm"
	"repro/internal/xrand"
)

func TestRootCausePriority(t *testing.T) {
	peer := &vm.Trap{Kind: vm.TrapPeerFailure}
	oob := &vm.Trap{Kind: vm.TrapOOB}
	ranks := []RankResult{{Err: peer}, {Err: oob}, {}}
	if got := rootCause(ranks); got != oob {
		t.Errorf("rootCause = %v, want the OOB trap", got)
	}
	ranks = []RankResult{{Err: peer}, {}}
	if got := rootCause(ranks); got != peer {
		t.Errorf("rootCause = %v, want the peer trap", got)
	}
	if got := rootCause([]RankResult{{}, {}}); got != nil {
		t.Errorf("rootCause = %v, want nil", got)
	}
}

// buildLoopProg builds a two-rank program: each rank repeatedly updates an
// accumulator array and allreduces a checksum.
func buildLoopProg(iters int64) *ir.Program {
	b := ir.NewBuilder()
	acc := b.Global("acc", 16)
	sendSlot := b.Global("send", 1)
	redSlot := b.Global("red", 1)
	f := b.Func("main", 0, 0)
	i := f.NewReg()
	s := f.NewReg()
	f.For(s, ir.ImmI(0), ir.ImmI(iters), func() {
		f.Tick(ir.R(s))
		f.For(i, ir.ImmI(0), ir.ImmI(16), func() {
			old := f.Ld(ir.ImmI(acc), ir.R(i))
			f.St(ir.R(f.FAdd(ir.R(old), ir.ImmF(1.5))), ir.ImmI(acc), ir.R(i))
		})
		sum := f.CF(0)
		f.For(i, ir.ImmI(0), ir.ImmI(16), func() {
			f.Op3(ir.FAdd, sum, ir.R(sum), ir.R(f.Ld(ir.ImmI(acc), ir.R(i))))
		})
		f.Store(ir.R(sum), ir.ImmI(sendSlot))
		f.MPIAllreduceF(ir.ImmI(sendSlot), ir.ImmI(redSlot), ir.ImmI(1), ir.ReduceSum)
	})
	f.OutputF(ir.R(f.Load(ir.ImmI(redSlot))))
	f.Iterations(ir.ImmI(iters))
	f.Ret()
	return b.MustBuild()
}

func TestAnalyzerGoldenAndInjection(t *testing.T) {
	a, err := NewAnalyzer(buildLoopProg(20), 2, transform.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Golden().Err != nil {
		t.Fatal(a.Golden().Err)
	}
	sites := a.SiteCounts()
	if len(sites) != 2 || sites[0] == 0 {
		t.Fatalf("sites = %v", sites)
	}
	r := xrand.New(5)
	sawContamination := false
	for k := 0; k < 20 && !sawContamination; k++ {
		plan, err := a.PlanUniform(r)
		if err != nil {
			t.Fatal(err)
		}
		out := a.Analyze(plan)
		if out.Run.Ever {
			sawContamination = true
		}
		if out.Class == classify.Vanished && out.Run.Ever {
			t.Error("Vanished class with contaminated memory")
		}
	}
	if !sawContamination {
		t.Error("20 injections, no contamination at all")
	}
}

// buildSoloProg is buildLoopProg without MPI: the taint ablation is a
// within-process comparison (the taint model has no message piggyback).
func buildSoloProg(iters int64) *ir.Program {
	b := ir.NewBuilder()
	acc := b.Global("acc", 16)
	out := b.Global("out", 1)
	f := b.Func("main", 0, 0)
	i := f.NewReg()
	s := f.NewReg()
	f.For(s, ir.ImmI(0), ir.ImmI(iters), func() {
		f.Tick(ir.R(s))
		f.For(i, ir.ImmI(0), ir.ImmI(16), func() {
			old := f.Ld(ir.ImmI(acc), ir.R(i))
			scaled := f.FMul(ir.R(old), ir.ImmF(0.5))
			f.St(ir.R(f.FAdd(ir.R(scaled), ir.ImmF(1.5))), ir.ImmI(acc), ir.R(i))
		})
		sum := f.CF(0)
		f.For(i, ir.ImmI(0), ir.ImmI(16), func() {
			f.Op3(ir.FAdd, sum, ir.R(sum), ir.R(f.Ld(ir.ImmI(acc), ir.R(i))))
		})
		f.Store(ir.R(sum), ir.ImmI(out))
	})
	f.OutputF(ir.R(f.Load(ir.ImmI(out))))
	f.Iterations(ir.ImmI(iters))
	f.Ret()
	return b.MustBuild()
}

func TestTaintOverestimatesDualChain(t *testing.T) {
	// The naive taint tracker must never report fewer corrupted locations
	// than the exact dual-chain FPM on the same single-process run, and
	// should overestimate on at least some runs (the paper's argument for
	// the dual-chain design).
	prog := buildSoloProg(12)
	inst, err := transform.Instrument(prog, transform.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	golden := Run(inst, RunConfig{Ranks: 1})
	if golden.Err != nil {
		t.Fatal(golden.Err)
	}
	r := xrand.New(33)
	checked, over := 0, 0
	for k := 0; k < 40; k++ {
		plan, err := inject.UniformSinglePlan(r, golden.SiteCounts())
		if err != nil {
			t.Fatal(err)
		}
		run := Run(inst, RunConfig{
			Ranks:      1,
			Plan:       plan,
			CycleLimit: golden.Cycles * 4,
			TrackTaint: true,
		})
		if run.Err != nil {
			continue
		}
		if run.TaintPeakTotal < run.MaxCMLTotal {
			t.Errorf("taint (%d) below exact CML (%d) — taint must overestimate",
				run.TaintPeakTotal, run.MaxCMLTotal)
		}
		if run.TaintPeakTotal > run.MaxCMLTotal {
			over++
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no clean runs to compare")
	}
	if over == 0 {
		t.Error("taint never overestimated; ablation shows nothing")
	}
}

func TestMemoryLevelInjectionNeverVanishes(t *testing.T) {
	// Direct memory injection (the contrasted model, paper §6) bypasses
	// processor-level masking: the fault always lands in memory.
	prog := buildLoopProg(12)
	inst, err := transform.Instrument(prog, transform.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	run := Run(inst, RunConfig{
		Ranks: 2,
		MemFaults: map[int][]vm.MemFault{
			0: {{AtCycle: 100, AddrUnit: 0.3, Bit: 7}},
		},
	})
	if run.Ranks[0].MemFaultsApplied != 1 {
		t.Fatalf("memory fault did not apply: %+v", run.Ranks[0])
	}
	if !run.Ranks[0].Ever {
		t.Error("memory-level fault did not contaminate memory")
	}
}

func TestRunOutcomeSiteCountsShape(t *testing.T) {
	inst, err := transform.Instrument(buildLoopProg(3), transform.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	run := Run(inst, RunConfig{Ranks: 3})
	if run.Err != nil {
		t.Fatal(run.Err)
	}
	counts := run.SiteCounts()
	if len(counts) != 3 {
		t.Fatalf("counts = %v", counts)
	}
	for r, c := range counts {
		if c == 0 {
			t.Errorf("rank %d: zero sites", r)
		}
	}
	rr := run.ToRunResult()
	if rr.Err != nil || len(rr.Outputs) == 0 {
		t.Errorf("ToRunResult = %+v", rr)
	}
}
