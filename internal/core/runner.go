// Package core is the paper's primary contribution glued end to end: the
// fault propagation framework for MPI applications (§3). It wires the
// FPM-instrumented program, the LLFI++ injector, the MPI runtime, the
// contamination tables and the trace recorders into one parallel job, and
// exposes the per-experiment analysis pipeline (golden profiling, fault
// planning, injected execution, outcome classification and propagation
// model fitting) that campaigns are built from.
package core

import (
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/classify"
	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/mpi"
	"repro/internal/trace"
	"repro/internal/vm"
)

// RunConfig parameterizes one parallel execution of an (instrumented or
// plain) program.
type RunConfig struct {
	// Ranks is the number of MPI processes.
	Ranks int
	// MemWords sizes each rank's address space (0: VM default).
	MemWords int64
	// CycleLimit kills a rank as hung; 0 disables. Campaigns use a
	// multiple of the golden cycle count.
	CycleLimit uint64
	// Plan is the fault plan; an empty plan runs fault-free.
	Plan inject.Plan
	// SampleEvery subsamples the CML trace (0: keep every change).
	SampleEvery uint64
	// Timeout bounds blocking MPI calls (0: a generous default).
	Timeout time.Duration
	// TrackTaint enables the naive-taint tracker in every rank's VM (for
	// the dual-chain vs. taint ablation).
	TrackTaint bool
	// MemFaults maps rank -> direct memory-level faults (the
	// injection-model ablation).
	MemFaults map[int][]vm.MemFault
	// Reuse, when non-nil, recycles the allocation-heavy run infrastructure
	// (per-rank VM state and the MPI job fabric) across consecutive Run
	// calls. A Reuse must be owned by a single worker: pass it to one Run
	// at a time.
	Reuse *Reuse
}

// Reuse bundles what a campaign worker recycles between experiments: one
// vm.State per rank, the MPI job (mailbox channels, endpoints and their
// timers), the per-rank injectors and trace recorders, and the runner's own
// scratch. Observable results are identical with or without it.
type Reuse struct {
	states []*vm.State
	job    *mpi.Job
	injs   []*inject.RankInjector
	recs   []*trace.Recorder
	// ptsHint/ticksHint remember the previous run's series lengths so the
	// recorder's escaping slices are allocated once at the right size.
	ptsHint   []int
	ticksHint []int
	rs        []rankState
	done      chan int
	// regions caches RegionsOf(regionsProg), a pure function of the
	// program that every run needs.
	regionsProg *ir.Program
	regions     []StructRegion
	// snapPool holds retired CampaignSnapshot shells whose backing buffers
	// (MemSnap/TableSnap/RecorderSnap/WorldSnap arrays) RunGoldenCapture
	// reuses for fresh captures, so repeated golden captures at different
	// cuts allocate once instead of per capture.
	snapPool []*CampaignSnapshot
}

// ReleaseSnapshot returns a retired snapshot's backing buffers to the
// pool for a later RunGoldenCapture with this Reuse. The snapshot must no
// longer seed restores.
func (ru *Reuse) ReleaseSnapshot(cs *CampaignSnapshot) {
	if cs == nil {
		return
	}
	cs.captured = false
	ru.snapPool = append(ru.snapPool, cs)
}

// takeSnapshotShell hands out a pooled shell for a capture at seq, or
// allocates one.
func (ru *Reuse) takeSnapshotShell(seq uint64, ranks int) *CampaignSnapshot {
	for i := len(ru.snapPool) - 1; i >= 0; i-- {
		cs := ru.snapPool[i]
		if len(cs.vms) == ranks {
			ru.snapPool = append(ru.snapPool[:i], ru.snapPool[i+1:]...)
			cs.Cut.Seq = seq
			cs.captured = false
			return cs
		}
	}
	return &CampaignSnapshot{
		Cut:  SiteCut{Seq: seq, Sites: make([]uint64, ranks)},
		vms:  make([]*vm.Snapshot, ranks),
		recs: make([]*trace.RecorderSnap, ranks),
	}
}

// NewReuse prepares a reuse bundle for jobs of the given rank count.
func NewReuse(ranks int) *Reuse {
	r := &Reuse{
		states:    make([]*vm.State, ranks),
		injs:      make([]*inject.RankInjector, ranks),
		recs:      make([]*trace.Recorder, ranks),
		ptsHint:   make([]int, ranks),
		ticksHint: make([]int, ranks),
		rs:        make([]rankState, ranks),
		done:      make(chan int, ranks),
	}
	for i := range r.states {
		r.states[i] = vm.NewState()
		r.injs[i] = inject.NewRankInjector(inject.Plan{}, i)
		r.recs[i] = &trace.Recorder{}
	}
	return r
}

type rankState struct {
	v   *vm.VM
	rec *trace.Recorder
	inj *inject.RankInjector
}

// RankResult is one rank's observation of a run.
type RankResult struct {
	Err error
	// Casualty marks a rank that died of TrapPeerFailure after another
	// rank took the job down. Such a rank stopped at whatever point it
	// happened to notice the abort — a scheduling-dependent moment — so
	// its final observations are excluded from the run's aggregates to
	// keep them a pure function of the seed. The raw fields below are
	// still populated for diagnostics.
	Casualty       bool
	Outputs        []float64
	Cycles         uint64
	Sites          uint64
	InjCycles      []uint64
	Iterations     int64
	MaxCML         int
	FinalCML       int
	Ever           bool
	AllocatedWords int64
	Points         []trace.Point
	FirstContam    int64
	Contaminated   bool
	// TaintPeak is the naive-taint peak count (when TrackTaint is on).
	TaintPeak int
	// MemFaultsApplied counts direct memory faults that fired.
	MemFaultsApplied int
	// StructCML attributes the rank's end-of-run contamination to data
	// structures (global name, "(heap)", or "(stack)").
	StructCML map[string]int
}

// RunOutcome aggregates a run across ranks.
type RunOutcome struct {
	Ranks []RankResult
	// Err is the root-cause failure: the first non-peer trap if any rank
	// died, nil when the job completed.
	Err error
	// Outputs is the rank-major concatenation of all rank outputs (only
	// meaningful when Err is nil).
	Outputs []float64
	// Cycles is the maximum application cycles over ranks.
	Cycles uint64
	// Iterations is the maximum reported solver iteration count.
	Iterations int64
	// Ever reports whether any rank's memory was ever contaminated.
	Ever bool
	// MaxCMLTotal is the sum over ranks of each rank's peak CML.
	MaxCMLTotal int
	// TaintPeakTotal sums each rank's naive-taint peak (TrackTaint runs).
	TaintPeakTotal int
	// AllocatedTotal is the summed application memory extent, the
	// denominator for contamination percentages.
	AllocatedTotal int64
	// Spread is the corrupted-ranks-over-time aggregation (Fig. 8).
	Spread *trace.RankSpread
	// StructCML aggregates end-of-run contamination by data structure
	// across ranks.
	StructCML map[string]int
	// RestoreDur is the wall-clock time spent restoring snapshot state
	// before execution (zero for from-scratch runs).
	RestoreDur time.Duration
	// Forked marks a run started from a snapshot; the restore stats below
	// are only meaningful when set.
	Forked bool
	// RestoreBytes totals the bytes copied while restoring snapshot state
	// across all ranks (delta restores copy only dirtied blocks).
	RestoreBytes int64
	// RestoreDirtyBlocks / RestoreTotalBlocks sum the per-rank memory
	// dirty-block counts and address-space block counts; their ratio is
	// the dirty fraction a delta restore actually rewrote.
	RestoreDirtyBlocks int
	RestoreTotalBlocks int
}

// RestoreFrac returns the fraction of memory blocks rewritten by the
// restore (1 for full-copy restores, 0 for from-scratch runs).
func (o *RunOutcome) RestoreFrac() float64 {
	if o.RestoreTotalBlocks == 0 {
		return 0
	}
	return float64(o.RestoreDirtyBlocks) / float64(o.RestoreTotalBlocks)
}

// extras carries the snapshot-fork hooks through the shared runner body:
// a snapshot to resume from, per-rank quiesce hooks (golden profiling and
// capture), and a job observer for wiring capture coordination.
type extras struct {
	snap      *CampaignSnapshot
	hooks     []vm.QuiesceHook
	onJob     func(*mpi.Job)
	observers []vm.SiteObserver
}

// Run executes prog on cfg.Ranks ranks and collects per-rank observations.
// The program is typically FPM-instrumented; plain programs run too (with
// no sites and no contamination tracking).
func Run(prog *ir.Program, cfg RunConfig) RunOutcome {
	return runWith(prog, cfg, extras{})
}

// RunResumed executes prog starting from a captured campaign snapshot
// instead of from step 0: each rank's VM is forked from the snapshot and
// the job's message-passing world is rewound to the same cut, so the run is
// observably identical to a from-scratch execution of the same plan. The
// plan must be Usable with the snapshot.
func RunResumed(prog *ir.Program, cfg RunConfig, snap *CampaignSnapshot) RunOutcome {
	return runWith(prog, cfg, extras{snap: snap})
}

func runWith(prog *ir.Program, cfg RunConfig, ex extras) RunOutcome {
	if cfg.Ranks <= 0 {
		cfg.Ranks = 1
	}
	var job *mpi.Job
	if cfg.Reuse != nil && cfg.Reuse.job != nil && cfg.Reuse.job.Recycle(cfg.Ranks, cfg.Timeout) {
		job = cfg.Reuse.job
	} else {
		job = mpi.NewJob(cfg.Ranks, cfg.Timeout)
	}
	if cfg.Reuse != nil {
		// Keep the job for the next run; Recycle rejects it if this run
		// aborts it.
		cfg.Reuse.job = job
	}
	if ex.onJob != nil {
		ex.onJob(job)
	}
	var restoreStart time.Time
	if ex.snap != nil {
		if len(ex.snap.vms) != cfg.Ranks {
			panic(fmt.Sprintf("core: snapshot of %d ranks resumed with %d", len(ex.snap.vms), cfg.Ranks))
		}
		restoreStart = time.Now()
		job.RestoreWorld(ex.snap.world)
	} else {
		// A recycled job may still hold the previous fork's snapshot world
		// (Recycle keeps it so same-cut re-forks skip the refill); a
		// from-scratch run needs it empty.
		job.ClearWorld()
	}
	out := RunOutcome{
		Ranks:     make([]RankResult, cfg.Ranks),
		Spread:    &trace.RankSpread{},
		StructCML: make(map[string]int),
	}
	var regions []StructRegion
	if cfg.Reuse != nil && cfg.Reuse.regionsProg == prog {
		regions = cfg.Reuse.regions
	} else {
		regions = RegionsOf(prog)
		if cfg.Reuse != nil {
			cfg.Reuse.regionsProg, cfg.Reuse.regions = prog, regions
		}
	}

	var states []rankState
	var done chan int
	if cfg.Reuse != nil && len(cfg.Reuse.rs) == cfg.Ranks {
		states, done = cfg.Reuse.rs, cfg.Reuse.done
	} else {
		states = make([]rankState, cfg.Ranks)
		done = make(chan int, cfg.Ranks)
	}
	// Build every VM before starting any rank: a construction panic must
	// not escape while goroutines are already mutating (possibly pooled)
	// state of earlier ranks.
	for r := 0; r < cfg.Ranks; r++ {
		var rec *trace.Recorder
		var injr *inject.RankInjector
		var st *vm.State
		ptsHint, ticksHint := 0, 0
		if cfg.Reuse != nil && r < len(cfg.Reuse.states) {
			st = cfg.Reuse.states[r]
			rec = cfg.Reuse.recs[r]
			ptsHint, ticksHint = cfg.Reuse.ptsHint[r], cfg.Reuse.ticksHint[r]
			if ex.snap == nil {
				rec.Reset(cfg.SampleEvery, ptsHint, ticksHint)
			}
			injr = cfg.Reuse.injs[r]
			injr.Reset(cfg.Plan, r)
		} else {
			rec = &trace.Recorder{SampleEvery: cfg.SampleEvery}
			injr = inject.NewRankInjector(cfg.Plan, r)
		}
		var quiesce vm.QuiesceHook
		if r < len(ex.hooks) {
			quiesce = ex.hooks[r]
		}
		var observer vm.SiteObserver
		if r < len(ex.observers) {
			observer = ex.observers[r]
		}
		v := vm.New(prog, vm.Config{
			MemWords:     cfg.MemWords,
			CycleLimit:   cfg.CycleLimit,
			Injector:     injr,
			MPI:          job.Endpoint(r),
			Tracer:       rec,
			Abort:        job.Flag(),
			TrackTaint:   cfg.TrackTaint,
			MemFaults:    cfg.MemFaults[r],
			State:        st,
			Quiesce:      quiesce,
			SiteObserver: observer,
			ForkRestore:  ex.snap != nil,
		})
		if ex.snap != nil {
			// Fork rank r from the cut: VM state and the trace history its
			// re-executed prefix would have produced.
			rs := v.RestoreSnap(ex.snap.vms[r])
			rec.RestoreSnap(ex.snap.recs[r], ptsHint, ticksHint)
			out.RestoreBytes += rs.Bytes
			out.RestoreDirtyBlocks += rs.DirtyBlocks
			out.RestoreTotalBlocks += rs.TotalBlocks
		}
		states[r] = rankState{v: v, rec: rec, inj: injr}
	}
	if ex.snap != nil {
		out.Forked = true
		out.RestoreDur = time.Since(restoreStart)
	}
	for r := 0; r < cfg.Ranks; r++ {
		go func(r int) {
			defer func() { done <- r }()
			// A panic escaping the VM (an interpreter bug surfaced by a
			// hostile program or fault plan) must not take down the whole
			// campaign process: contain it to this rank and classify the
			// run as crashed, like any other fatal rank failure.
			defer func() {
				if p := recover(); p != nil {
					out.Ranks[r].Err = fmt.Errorf("core: rank %d panic: %v\n%s",
						r, p, debug.Stack())
					job.Kill()
				}
			}()
			run := states[r].v.Run
			if ex.snap != nil {
				run = states[r].v.Resume
			}
			if err := run(); err != nil {
				out.Ranks[r].Err = err
				// A dead rank takes the job down, as under real MPI.
				job.Kill()
			} else {
				// A cleanly finished rank never communicates again; announce
				// the departure so peers blocked on it fail fast (a fault
				// that corrupts a trip count desynchronizes the collective
				// schedule, which would otherwise stall until the wall-clock
				// safety timeout).
				job.Leave(r)
			}
		}(r)
	}
	for i := 0; i < cfg.Ranks; i++ {
		<-done
	}

	for r := 0; r < cfg.Ranks; r++ {
		st := states[r]
		rr := &out.Ranks[r]
		if t := vm.AsTrap(rr.Err); t != nil && t.Kind == vm.TrapPeerFailure {
			rr.Casualty = true
		}
		rr.Outputs = st.v.Outputs()
		rr.Cycles = st.v.Cycles()
		rr.Sites = st.v.Sites()
		rr.InjCycles = append(rr.InjCycles, st.v.InjectionCycles()...)
		rr.Iterations = st.v.Iterations()
		rr.MaxCML = st.v.Table().Peak()
		rr.FinalCML = st.v.Table().Len()
		rr.Ever = st.v.Table().Ever()
		rr.AllocatedWords = st.v.Mem().AllocatedWords()
		rr.TaintPeak = st.v.TaintPeak()
		rr.MemFaultsApplied = st.v.MemFaultsApplied()
		if st.v.Table().Len() > 0 {
			rr.StructCML = make(map[string]int)
			AttributeTable(regions, st.v.Table(),
				1+prog.GlobalWords, st.v.Mem().AllocatedWords(), rr.StructCML)
		}
		// No shared Clock is configured: with a nil clock the VM reports
		// rank-local cycles as time, keeping every trace observable a
		// deterministic function of the seed.
		st.rec.Finish(st.v.Cycles(), st.v.Cycles(), st.v.Table().Len())
		rr.Points = st.rec.Points()
		if t, ok := st.rec.FirstContamination(); ok {
			rr.FirstContam = t
			rr.Contaminated = true
		}
		// Every observation that touches the VM's memory or table is made
		// by now; the rank's pooled buffers can go back for the next run.
		if cfg.Reuse != nil && r < len(cfg.Reuse.states) && cfg.Reuse.states[r] != nil {
			cfg.Reuse.states[r].Reclaim(st.v)
			cfg.Reuse.ptsHint[r] = len(rr.Points)
			cfg.Reuse.ticksHint[r] = len(st.rec.Ticks())
		}
		if rr.Casualty {
			continue
		}
		for k, v := range rr.StructCML {
			out.StructCML[k] += v
		}
		if rr.Contaminated {
			out.Spread.Note(rr.FirstContam)
		}
		out.Ever = out.Ever || rr.Ever
		out.MaxCMLTotal += rr.MaxCML
		out.TaintPeakTotal += rr.TaintPeak
		out.AllocatedTotal += rr.AllocatedWords
		if rr.Cycles > out.Cycles {
			out.Cycles = rr.Cycles
		}
		if rr.Iterations > out.Iterations {
			out.Iterations = rr.Iterations
		}
	}
	out.Err = rootCause(out.Ranks)
	if out.Err == nil {
		for r := 0; r < cfg.Ranks; r++ {
			out.Outputs = append(out.Outputs, out.Ranks[r].Outputs...)
		}
	}
	return out
}

// rootCause picks the most informative failure: any trap that is not a
// secondary peer-failure casualty wins; otherwise the first error seen.
func rootCause(ranks []RankResult) error {
	var first error
	for i := range ranks {
		err := ranks[i].Err
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if t := vm.AsTrap(err); t != nil && t.Kind != vm.TrapPeerFailure {
			return err
		}
	}
	return first
}

// ToRunResult converts a RunOutcome into the classifier's shape.
func (o RunOutcome) ToRunResult() classify.RunResult {
	return classify.RunResult{
		Err:              o.Err,
		Outputs:          o.Outputs,
		Cycles:           o.Cycles,
		Iterations:       o.Iterations,
		EverContaminated: o.Ever,
	}
}

// SiteCounts extracts per-rank dynamic site counts (for fault planning).
func (o RunOutcome) SiteCounts() []uint64 {
	counts := make([]uint64, len(o.Ranks))
	for i := range o.Ranks {
		counts[i] = o.Ranks[i].Sites
	}
	return counts
}
