package core

import (
	"fmt"

	"repro/internal/classify"
	"repro/internal/inject"
	"repro/internal/ir"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/transform"
	"repro/internal/xrand"
)

// Analyzer is the per-program front door to the framework: it instruments a
// program once, profiles the fault-free execution (golden outputs, cycle
// budget, dynamic injection-site space), and then analyzes individual
// injection experiments against that baseline.
type Analyzer struct {
	// Plain is the original program; Instrumented the FPM-transformed one.
	Plain        *ir.Program
	Instrumented *ir.Program
	Ranks        int
	Criteria     classify.Criteria
	// SampleEvery subsamples CML traces of analyzed runs.
	SampleEvery uint64

	golden Outcome
}

// Outcome couples a run with its golden-relative classification material.
type Outcome struct {
	Run RunOutcome
	// Class is the outcome class (meaningless for the golden run itself).
	Class classify.Outcome
	// Fit is the injected rank's propagation model, when fittable.
	Fit    model.RunFit
	HasFit bool
	// Points is the injected rank's CML series.
	Points []trace.Point
}

// NewAnalyzer instruments prog with opts and establishes the golden
// baseline over the given rank count.
func NewAnalyzer(prog *ir.Program, ranks int, opts transform.Options) (*Analyzer, error) {
	inst, err := transform.Instrument(prog, opts)
	if err != nil {
		return nil, err
	}
	a := &Analyzer{
		Plain:        prog,
		Instrumented: inst,
		Ranks:        ranks,
		Criteria:     classify.DefaultCriteria(),
	}
	a.golden.Run = Run(inst, RunConfig{Ranks: ranks, SampleEvery: a.SampleEvery})
	if a.golden.Run.Err != nil {
		return nil, fmt.Errorf("core: golden run failed: %w", a.golden.Run.Err)
	}
	return a, nil
}

// Golden returns the fault-free baseline run.
func (a *Analyzer) Golden() RunOutcome { return a.golden.Run }

// GoldenRef returns the classifier's view of the baseline.
func (a *Analyzer) GoldenRef() classify.Golden {
	return classify.Golden{
		Outputs:    a.golden.Run.Outputs,
		Cycles:     a.golden.Run.Cycles,
		Iterations: a.golden.Run.Iterations,
	}
}

// SiteCounts returns the per-rank dynamic injection-site space.
func (a *Analyzer) SiteCounts() []uint64 { return a.golden.Run.SiteCounts() }

// PlanUniform draws a single-fault plan uniformly over ranks, dynamic sites
// and bits (the paper's per-experiment procedure).
func (a *Analyzer) PlanUniform(r *xrand.Rand) (inject.Plan, error) {
	return inject.UniformSinglePlan(r, a.SiteCounts())
}

// Analyze runs one injection experiment and classifies it against the
// golden baseline, fitting the propagation model of the injected rank.
func (a *Analyzer) Analyze(plan inject.Plan) Outcome {
	run := Run(a.Instrumented, RunConfig{
		Ranks:       a.Ranks,
		CycleLimit:  a.golden.Run.Cycles * 4,
		Plan:        plan,
		SampleEvery: a.SampleEvery,
	})
	out := Outcome{
		Run:   run,
		Class: a.Criteria.Classify(a.GoldenRef(), run.ToRunResult()),
	}
	if len(plan.Faults) > 0 {
		r := plan.Faults[0].Rank
		if r < len(run.Ranks) {
			out.Points = run.Ranks[r].Points
		}
	}
	if fit, err := model.FitRun(out.Points); err == nil {
		out.Fit = fit
		out.HasFit = true
	}
	return out
}
