package core

import (
	"testing"

	"repro/internal/fpm"
	"repro/internal/ir"
	"repro/internal/vm"
)

func buildStructProg() *ir.Program {
	b := ir.NewBuilder()
	b.Global("alpha", 4) // addresses 1..4
	b.Global("beta", 2)  // addresses 5..6
	f := b.Func("main", 0, 0)
	f.Alloc(ir.ImmI(3)) // heap: 7..9
	f.Ret()
	return b.MustBuild()
}

func TestRegionsOfSorted(t *testing.T) {
	prog := buildStructProg()
	regions := RegionsOf(prog)
	if len(regions) != 2 || regions[0].Name != "alpha" || regions[1].Name != "beta" {
		t.Fatalf("regions = %+v", regions)
	}
}

func TestAttributeTable(t *testing.T) {
	prog := buildStructProg()
	regions := RegionsOf(prog)
	table := fpm.NewTable()
	table.Record(1, 0)  // alpha
	table.Record(4, 0)  // alpha
	table.Record(5, 0)  // beta
	table.Record(8, 0)  // heap
	table.Record(90, 0) // beyond heap: stack
	out := make(map[string]int)
	globalEnd := int64(1 + prog.GlobalWords) // 7
	heapEnd := int64(9)                      // allocated words = globals(6)+heap(3)
	AttributeTable(regions, table, globalEnd, heapEnd, out)
	want := map[string]int{"alpha": 2, "beta": 1, "(heap)": 1, "(stack)": 1}
	for k, v := range want {
		if out[k] != v {
			t.Errorf("%s = %d, want %d (all: %v)", k, out[k], v, out)
		}
	}
}

func TestStructCMLEndToEnd(t *testing.T) {
	// Contaminate a named global via a memory fault and confirm the
	// attribution names it in the run outcome.
	b := ir.NewBuilder()
	b.Global("field", 16)
	f := b.Func("main", 0, 0)
	i := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(3000), func() {})
	f.Ret()
	prog := b.MustBuild()
	run := Run(prog, RunConfig{
		Ranks: 1,
		MemFaults: map[int][]vm.MemFault{
			0: {{AtCycle: 10, AddrUnit: 0.5, Bit: 3}},
		},
	})
	if run.Err != nil {
		t.Fatal(run.Err)
	}
	if run.StructCML["field"] != 1 {
		t.Errorf("StructCML = %v, want field=1", run.StructCML)
	}
}
