package core

import (
	"sort"

	"repro/internal/fpm"
	"repro/internal/ir"
)

// Structure-level attribution: contaminated addresses classified by the
// application data structure (named global, heap, or stack) they fall in.
// This is the framework's answer to the data vulnerability factor (DVF)
// comparison in the paper's §6: unlike the scalar DVF, the FPM observes
// which structures actually became contaminated, per run.

// StructRegion is one attributable region of the address space.
type StructRegion struct {
	Name string
	Base int64
	Size int64
}

// RegionsOf derives the attributable regions of a program: its globals in
// address order, then the heap and stack catch-alls.
func RegionsOf(prog *ir.Program) []StructRegion {
	regions := make([]StructRegion, 0, len(prog.Globals)+2)
	for _, g := range prog.Globals {
		regions = append(regions, StructRegion{Name: g.Name, Base: g.Base, Size: g.Size})
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].Base < regions[j].Base })
	return regions
}

// AttributeTable classifies a contamination table's addresses by region.
// heapEnd is the allocated extent (globals+heap); addresses beyond it are
// stack locals.
func AttributeTable(regions []StructRegion, table *fpm.Table, globalEnd, heapEnd int64, out map[string]int) {
	for _, addr := range table.Addresses() {
		out[regionName(regions, addr, globalEnd, heapEnd)]++
	}
}

func regionName(regions []StructRegion, addr, globalEnd, heapEnd int64) string {
	if addr >= 1 && addr < globalEnd {
		// Binary search over sorted global regions.
		i := sort.Search(len(regions), func(i int) bool {
			return regions[i].Base+regions[i].Size > addr
		})
		if i < len(regions) && addr >= regions[i].Base {
			return regions[i].Name
		}
		return "(globals)"
	}
	if addr >= globalEnd && addr < heapEnd+1 {
		return "(heap)"
	}
	return "(stack)"
}
